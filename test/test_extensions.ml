(* Tests for the extension layer: the Path model of [8], perturbation
   robustness (epsilon-NE), the exact simplex LP and the max-min defense,
   fictitious play, and the Price of Defense. *)

open Netgraph
module Q = Exact.Q

let q = Alcotest.testable Q.pp Q.equal

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let model ~g ~nu ~k = Defender.Model.make ~graph:g ~nu ~k

(* --- Path model --- *)

let test_is_path () =
  let g = Gen.grid 2 3 in
  (* edges of grid 2x3: listed by generator; find a path by vertices *)
  let edge u v = Option.get (Graph.find_edge g u v) in
  Alcotest.(check bool) "two incident edges" true
    (Defender.Path_model.is_path g [ edge 0 1; edge 1 2 ]);
  Alcotest.(check bool) "single edge" true
    (Defender.Path_model.is_path g [ edge 0 1 ]);
  Alcotest.(check bool) "disjoint edges" false
    (Defender.Path_model.is_path g [ edge 0 1; edge 4 5 ]);
  Alcotest.(check bool) "fork is no path" false
    (Defender.Path_model.is_path g [ edge 0 1; edge 1 2; edge 1 4 ]);
  Alcotest.(check bool) "cycle is no path" false
    (Defender.Path_model.is_path g [ edge 0 1; edge 1 4; edge 4 3; edge 3 0 ]);
  Alcotest.(check bool) "empty is no path" false (Defender.Path_model.is_path g [])

let test_is_path_rejects_path_plus_cycle () =
  (* The degree profile alone would accept this: triangle + disjoint edge. *)
  let g = Graph.make ~n:5 [ (0, 1); (1, 2); (0, 2); (3, 4) ] in
  Alcotest.(check bool) "triangle + edge rejected" false
    (Defender.Path_model.is_path g [ 0; 1; 2; 3 ])

let test_enumerate_paths () =
  let p4 = Gen.path 4 in
  Alcotest.(check int) "P4 1-paths" 3
    (List.length (Defender.Path_model.enumerate_paths p4 ~k:1));
  Alcotest.(check int) "P4 2-paths" 2
    (List.length (Defender.Path_model.enumerate_paths p4 ~k:2));
  Alcotest.(check int) "P4 3-paths" 1
    (List.length (Defender.Path_model.enumerate_paths p4 ~k:3));
  let c5 = Gen.cycle 5 in
  Alcotest.(check int) "C5 2-paths" 5
    (List.length (Defender.Path_model.enumerate_paths c5 ~k:2));
  (* every enumerated tuple really is a path *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "is path" true
        (Defender.Path_model.is_path c5 (Defender.Tuple.to_list t)))
    (Defender.Path_model.enumerate_paths c5 ~k:3)

let test_hamiltonian_path () =
  (match Defender.Path_model.hamiltonian_path (Gen.path 5) with
  | Some p -> Alcotest.(check int) "path graph ham" 5 (List.length p)
  | None -> Alcotest.fail "P5 has a Hamiltonian path");
  Alcotest.(check bool) "cycle has one" true
    (Defender.Path_model.has_hamiltonian_path (Gen.cycle 6));
  Alcotest.(check bool) "star does not" false
    (Defender.Path_model.has_hamiltonian_path (Gen.star 5));
  Alcotest.(check bool) "petersen does" true
    (Defender.Path_model.has_hamiltonian_path (Gen.petersen ()));
  Alcotest.(check bool) "K(1,3) does not" false
    (Defender.Path_model.has_hamiltonian_path (Gen.complete_bipartite 1 3));
  (* validity: consecutive vertices adjacent, all distinct *)
  match Defender.Path_model.hamiltonian_path (Gen.grid 3 3) with
  | None -> Alcotest.fail "grid 3x3 has a Hamiltonian path"
  | Some p ->
      let g = Gen.grid 3 3 in
      Alcotest.(check int) "covers all" 9 (List.length (List.sort_uniq compare p));
      let rec adjacent = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "consecutive adjacent" true (Graph.is_adjacent g a b);
            adjacent rest
        | _ -> ()
      in
      adjacent p

let test_path_model_pure_ne () =
  (* P5 with k = 4: Hamiltonian path = the graph itself. *)
  let g = Gen.path 5 in
  Alcotest.(check bool) "P5 k=4" true
    (Defender.Path_model.pure_ne_exists (model ~g ~nu:2 ~k:4));
  Alcotest.(check bool) "P5 k=3" false
    (Defender.Path_model.pure_ne_exists (model ~g ~nu:2 ~k:3));
  (* star: rho = n-1 gives Tuple-model pure NE at k=4, but no Hamiltonian
     path, so the Path model never has one. *)
  let s = Gen.star 5 in
  Alcotest.(check bool) "star tuple-model k=4" true
    (Defender.Pure_nash.exists (model ~g:s ~nu:2 ~k:4));
  Alcotest.(check bool) "star path-model k=4" false
    (Defender.Path_model.pure_ne_exists (model ~g:s ~nu:2 ~k:4));
  (* constructed profile defends every vertex *)
  match Defender.Path_model.construct_pure_ne (model ~g ~nu:2 ~k:4) with
  | None -> Alcotest.fail "construction should succeed"
  | Some prof ->
      Alcotest.(check int) "covers all vertices" 5
        (List.length (Defender.Tuple.vertices g prof.Defender.Profile.tp_choice))

let test_path_model_thresholds () =
  let rho, path_k = Defender.Path_model.pure_thresholds (Gen.cycle 6) in
  Alcotest.(check int) "C6 tuple threshold" 3 rho;
  Alcotest.(check (option int)) "C6 path threshold" (Some 5) path_k;
  let rho_s, path_s = Defender.Path_model.pure_thresholds (Gen.star 5) in
  Alcotest.(check int) "star tuple threshold" 4 rho_s;
  Alcotest.(check (option int)) "star path threshold" None path_s

let test_path_model_mixed_verify () =
  (* On a path graph with k=1, the matching NE is also a Path-model NE
     (single edges are paths and the best responses coincide). *)
  let g = Gen.path 6 in
  let m = model ~g ~nu:3 ~k:1 in
  let prof = ok (Defender.Matching_nash.solve_auto m) in
  Alcotest.(check bool) "matching NE is path-model NE" true
    (Defender.Verify.verdict_is_confirmed (Defender.Path_model.is_mixed_ne prof));
  (* A profile whose support is not made of paths is rejected. *)
  let m2 = model ~g ~nu:3 ~k:2 in
  let non_path =
    Defender.Profile.uniform m2 ~vp_support:[ 0 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 0; 2 ] ]
  in
  match Defender.Path_model.is_mixed_ne non_path with
  | Defender.Verify.Refuted _ -> ()
  | v -> Alcotest.fail ("expected refutation: " ^ Defender.Verify.verdict_to_string v)

(* --- Robustness --- *)

let ne_profile () =
  let g = Gen.path 6 in
  ok (Defender.Tuple_nash.a_tuple_auto (model ~g ~nu:4 ~k:2))

let test_regret_zero_at_ne () =
  let prof = ne_profile () in
  let r = Defender.Robustness.regret prof in
  Alcotest.check q "attacker regret 0" Q.zero r.Defender.Robustness.attacker;
  Alcotest.check q "defender regret 0" Q.zero r.Defender.Robustness.defender;
  Alcotest.(check bool) "0-NE" true
    (Defender.Robustness.is_epsilon_ne prof ~epsilon:Q.zero)

let test_tilt_vp_regret () =
  let prof = ne_profile () in
  (* Tilt one attacker toward VC vertex 0.  In this equilibrium every
     vertex has the same hit probability, so the tilted attacker itself
     loses nothing — but the load shift unbalances the defender's support
     tuples, giving the DEFENDER positive regret. *)
  let eps = Q.make 1 10 in
  let tilted = Defender.Robustness.tilt_vp prof 0 ~epsilon:eps ~towards:0 in
  let r = Defender.Robustness.regret tilted in
  Alcotest.check q "attacker regret stays zero" Q.zero r.Defender.Robustness.attacker;
  Alcotest.(check bool) "defender regret positive" true
    Q.(r.Defender.Robustness.defender > zero);
  Alcotest.(check bool) "still an eps'-NE for generous eps'" true
    (Defender.Robustness.is_epsilon_ne tilted ~epsilon:Q.one)

let test_tilt_tp_regret_scales_linearly () =
  let prof = ne_profile () in
  let towards = List.hd (Defender.Profile.tp_support prof) in
  let regret_at eps =
    Defender.Robustness.max_regret
      (Defender.Robustness.regret
         (Defender.Robustness.tilt_tp prof ~epsilon:eps ~towards))
  in
  let r1 = regret_at (Q.make 1 10) in
  let r2 = regret_at (Q.make 2 10) in
  let r3 = regret_at (Q.make 3 10) in
  Alcotest.(check bool) "positive" true Q.(r1 > zero);
  (* exact linearity of the attacker regret in the tilt *)
  Alcotest.check q "doubling" r2 (Q.mul_int r1 2);
  Alcotest.check q "tripling" r3 (Q.mul_int r1 3)

let test_tilt_validation () =
  let prof = ne_profile () in
  Alcotest.check_raises "epsilon out of range"
    (Invalid_argument "Robustness: epsilon outside [0, 1]") (fun () ->
      ignore (Defender.Robustness.tilt_vp prof 0 ~epsilon:(Q.of_int 2) ~towards:0));
  (* tilting with epsilon = 0 is the identity on payoffs *)
  let t0 =
    Defender.Robustness.tilt_tp prof ~epsilon:Q.zero
      ~towards:(List.hd (Defender.Profile.tp_support prof))
  in
  Alcotest.check q "no-op tilt keeps gain" (Defender.Gain.defender_gain prof)
    (Defender.Gain.defender_gain t0)

(* --- Simplex --- *)

let qa = Array.map Q.of_int

let test_simplex_textbook () =
  (* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> opt 36 at (2,6) *)
  let a =
    [|
      qa [| 1; 0 |];
      qa [| 0; 2 |];
      qa [| 3; 2 |];
    |]
  in
  let b = qa [| 4; 12; 18 |] in
  let c = qa [| 3; 5 |] in
  match Lp.Simplex.maximize ~a ~b ~c with
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded LP"
  | Lp.Simplex.Optimal { objective; x; dual; _ } ->
      Alcotest.check q "objective 36" (Q.of_int 36) objective;
      Alcotest.check q "x" (Q.of_int 2) x.(0);
      Alcotest.check q "y" (Q.of_int 6) x.(1);
      Alcotest.(check bool) "primal feasible" true (Lp.Simplex.feasible ~a ~b ~x);
      (* weak duality tightness: b . dual = objective *)
      let dual_value =
        Array.fold_left Q.add Q.zero (Array.mapi (fun i yi -> Q.mul yi b.(i)) dual)
      in
      Alcotest.check q "strong duality" objective dual_value

let test_simplex_fractional_optimum () =
  (* max x + y st 2x + y <= 3; x + 2y <= 3 -> opt 2 at (1,1); then tweak:
     max 2x + y, same constraints -> x=3/2, y=0 obj 3. *)
  let a = [| qa [| 2; 1 |]; qa [| 1; 2 |] |] in
  let b = qa [| 3; 3 |] in
  (match Lp.Simplex.maximize ~a ~b ~c:(qa [| 1; 1 |]) with
  | Lp.Simplex.Optimal { objective; _ } ->
      Alcotest.check q "sym objective" (Q.of_int 2) objective
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded");
  match Lp.Simplex.maximize ~a ~b ~c:(qa [| 2; 1 |]) with
  | Lp.Simplex.Optimal { objective; x; _ } ->
      Alcotest.check q "asym objective" (Q.of_int 3) objective;
      Alcotest.check q "x = 3/2" (Q.make 3 2) x.(0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded"

let test_simplex_unbounded () =
  (* max x with only y constrained. *)
  let a = [| qa [| 0; 1 |] |] in
  let b = qa [| 1 |] in
  let c = qa [| 1; 0 |] in
  match Lp.Simplex.maximize ~a ~b ~c with
  | Lp.Simplex.Unbounded -> ()
  | Lp.Simplex.Optimal _ -> Alcotest.fail "expected unbounded"

let test_simplex_zero_problem () =
  (* degenerate: zero objective on a feasible region *)
  let a = [| qa [| 1; 1 |] |] in
  let b = qa [| 5 |] in
  let c = qa [| 0; 0 |] in
  match Lp.Simplex.maximize ~a ~b ~c with
  | Lp.Simplex.Optimal { objective; _ } -> Alcotest.check q "zero" Q.zero objective
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded"

let test_simplex_validation () =
  Alcotest.check_raises "negative rhs"
    (Invalid_argument "Simplex.maximize: negative right-hand side (packing form)")
    (fun () ->
      ignore
        (Lp.Simplex.maximize ~a:[| qa [| 1 |] |] ~b:[| Q.of_int (-1) |] ~c:(qa [| 1 |])));
  Alcotest.check_raises "ragged" (Invalid_argument "Simplex.maximize: ragged matrix")
    (fun () ->
      ignore (Lp.Simplex.maximize ~a:[| qa [| 1; 2 |] |] ~b:(qa [| 1 |]) ~c:(qa [| 1 |])))

(* --- Minimax defense --- *)

let test_minimax_known_values () =
  let check name g expected =
    let d = Defender.Minimax.solve g in
    Alcotest.check q (name ^ " rho*") expected d.Defender.Minimax.rho_star;
    Alcotest.(check bool) (name ^ " certified") true (Defender.Minimax.certified g d)
  in
  check "C5" (Gen.cycle 5) (Q.make 5 2);
  check "C7" (Gen.cycle 7) (Q.make 7 2);
  check "K4" (Gen.complete 4) (Q.of_int 2);
  check "K5" (Gen.complete 5) (Q.make 5 2);
  check "P4" (Gen.path 4) (Q.of_int 2);
  check "star6" (Gen.star 6) (Q.of_int 5);
  check "petersen" (Gen.petersen ()) (Q.of_int 5);
  check "K(3,3)" (Gen.complete_bipartite 3 3) (Q.of_int 3)

let test_minimax_bipartite_equals_integral () =
  (* On bipartite graphs rho* = rho (fractional = integral), so the NE
     defense and the max-min defense have the same strength. *)
  let rng = Prng.Rng.create 61 in
  for _ = 1 to 10 do
    let g = Gen.random_bipartite rng ~a:4 ~b:5 ~p:0.3 in
    let d = Defender.Minimax.solve g in
    Alcotest.check q "rho* = rho"
      (Q.of_int (Matching.Edge_cover.rho g))
      d.Defender.Minimax.rho_star;
    Alcotest.(check bool) "certified" true (Defender.Minimax.certified g d)
  done

let test_minimax_beats_integral_on_odd_cycles () =
  (* C5: max-min hit 2/5 > 1/3 (best integral cover of size 3). *)
  let d = Defender.Minimax.solve (Gen.cycle 5) in
  Alcotest.check q "value 2/5" (Q.make 2 5) d.Defender.Minimax.value;
  Alcotest.(check bool) "beats 1/3" true Q.(d.Defender.Minimax.value > make 1 3)

let test_minimax_matches_matching_ne_floor () =
  (* When a matching NE exists on a bipartite graph, its hit floor
     1/|IS| equals the max-min value. *)
  List.iter
    (fun g ->
      let prof = ok (Defender.Matching_nash.solve_auto (model ~g ~nu:2 ~k:1)) in
      let is_size = List.length (Defender.Profile.vp_support_union prof) in
      let d = Defender.Minimax.solve g in
      Alcotest.check q "NE floor = max-min value" (Q.make 1 is_size)
        d.Defender.Minimax.value)
    [ Gen.path 6; Gen.cycle 8; Gen.star 7; Gen.grid 2 4 ]

(* --- Fictitious play --- *)

let test_fictitious_converges_to_ne_value () =
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  let r = Sim.Fictitious.run (Prng.Rng.create 5) m ~rounds:20_000 in
  let expected = 8.0 /. 3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "tail avg %.4f near %.4f" r.Sim.Fictitious.tail_avg_gain expected)
    true
    (abs_float (r.Sim.Fictitious.tail_avg_gain -. expected) < 0.05 *. expected)

let test_fictitious_converges_to_minimax_without_ne () =
  (* C5 admits no matching NE; fictitious play still converges — to the
     LP max-min value nu * 2/5. *)
  let g = Gen.cycle 5 in
  let m = model ~g ~nu:3 ~k:1 in
  let r = Sim.Fictitious.run (Prng.Rng.create 5) m ~rounds:20_000 in
  let expected = 3.0 *. 0.4 in
  Alcotest.(check bool)
    (Printf.sprintf "tail avg %.4f near %.4f" r.Sim.Fictitious.tail_avg_gain expected)
    true
    (abs_float (r.Sim.Fictitious.tail_avg_gain -. expected) < 0.05 *. expected)

let test_fictitious_bookkeeping () =
  let g = Gen.grid 2 3 in
  let m = model ~g ~nu:2 ~k:2 in
  let r = Sim.Fictitious.run (Prng.Rng.create 9) m ~rounds:500 in
  Alcotest.(check int) "rounds" 500 r.Sim.Fictitious.rounds;
  let freq_total = Array.fold_left ( +. ) 0.0 r.Sim.Fictitious.attack_frequency in
  Alcotest.(check (float 1e-9)) "attack frequencies sum to 1" 1.0 freq_total;
  let scan_total = Array.fold_left ( +. ) 0.0 r.Sim.Fictitious.scan_frequency in
  Alcotest.(check (float 1e-9)) "scan marginals sum to k" 2.0 scan_total;
  Alcotest.(check int) "series length" 500 (Array.length r.Sim.Fictitious.gain_series);
  Alcotest.check_raises "needs 2 rounds"
    (Invalid_argument "Fictitious.run: need at least two rounds") (fun () ->
      ignore (Sim.Fictitious.run (Prng.Rng.create 1) m ~rounds:1))

(* --- Gauss --- *)

let qa = Array.map Q.of_int

let test_gauss_unique () =
  (* x + y = 3, x - y = 1 -> (2, 1) *)
  match Lp.Gauss.solve ~a:[| qa [| 1; 1 |]; qa [| 1; -1 |] |] ~b:(qa [| 3; 1 |]) with
  | Lp.Gauss.Unique x ->
      Alcotest.check q "x" (Q.of_int 2) x.(0);
      Alcotest.check q "y" Q.one x.(1)
  | _ -> Alcotest.fail "expected unique solution"

let test_gauss_underdetermined () =
  match Lp.Gauss.solve ~a:[| qa [| 1; 1 |] |] ~b:(qa [| 3 |]) with
  | Lp.Gauss.Underdetermined -> ()
  | _ -> Alcotest.fail "expected underdetermined"

let test_gauss_inconsistent () =
  match
    Lp.Gauss.solve ~a:[| qa [| 1; 1 |]; qa [| 2; 2 |] |] ~b:(qa [| 1; 3 |])
  with
  | Lp.Gauss.Inconsistent -> ()
  | _ -> Alcotest.fail "expected inconsistent"

let test_gauss_redundant_rows () =
  (* consistent duplicates reduce to a unique solution *)
  match
    Lp.Gauss.solve
      ~a:[| qa [| 1; 0 |]; qa [| 0; 1 |]; qa [| 1; 1 |] |]
      ~b:(qa [| 2; 3; 5 |])
  with
  | Lp.Gauss.Unique x ->
      Alcotest.check q "x" (Q.of_int 2) x.(0);
      Alcotest.check q "y" (Q.of_int 3) x.(1)
  | _ -> Alcotest.fail "expected unique solution"

(* --- Support solver --- *)

let test_support_solver_recovers_matching_ne () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:2 ~k:1 in
  let t id = Defender.Tuple.of_list g [ id ] in
  match Defender.Support_solver.solve m ~vp_support:[ 0; 2 ] ~tp_support:[ t 0; t 2 ] with
  | Ok prof ->
      Alcotest.check q "uniform attacker" (Q.make 1 2)
        (Dist.Finite.prob (Defender.Profile.vp_strategy prof 0) 0);
      Alcotest.check q "gain" Q.one (Defender.Gain.defender_gain prof)
  | Error f -> Alcotest.fail (Defender.Support_solver.failure_to_string f)

let test_support_solver_failures () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:2 ~k:1 in
  let t id = Defender.Tuple.of_list g [ id ] in
  (* |S| < |T|: defender system underdetermined. *)
  (match
     Defender.Support_solver.solve m ~vp_support:[ 0 ]
       ~tp_support:[ t 0; t 1 ]
   with
  | Error `Ambiguous -> ()
  | Error f -> Alcotest.fail ("expected ambiguous: " ^ Defender.Support_solver.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected failure");
  (* Hit(0) = p0 while Hit(1) = p0 + p1 forces p1 = 0. *)
  (match
     Defender.Support_solver.solve m ~vp_support:[ 0; 1 ] ~tp_support:[ t 0; t 1 ]
   with
  | Error `Nonpositive -> ()
  | Error f ->
      Alcotest.fail ("expected nonpositive: " ^ Defender.Support_solver.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected failure");
  (* S={1,3} with T={e0,e1}: Hit(1) = p0+p1 must equal Hit(3) = 0, which
     contradicts normalization — inconsistent. *)
  match
    Defender.Support_solver.solve m ~vp_support:[ 1; 3 ] ~tp_support:[ t 0; t 1 ]
  with
  | Error `Inconsistent -> ()
  | Error f ->
      Alcotest.fail ("expected inconsistent: " ^ Defender.Support_solver.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected failure"

let test_support_solver_detects_non_equilibrium () =
  (* P5: S = {1,3} with T = {e1=(1,2), e3=(3,4)} equalizes hits at 1/2
     each, but vertex 0 is never scanned — attackers would deviate. *)
  let g = Gen.path 5 in
  let m = model ~g ~nu:2 ~k:1 in
  let t id = Defender.Tuple.of_list g [ id ] in
  match
    Defender.Support_solver.solve m ~vp_support:[ 1; 3 ] ~tp_support:[ t 1; t 3 ]
  with
  | Error (`Not_equilibrium _) -> ()
  | Error f ->
      Alcotest.fail ("expected non-equilibrium: " ^ Defender.Support_solver.failure_to_string f)
  | Ok _ -> Alcotest.fail "vertex 0 is a free haven; cannot be an NE"

let test_support_search_paw () =
  (* The paw graph (triangle + pendant): exactly two symmetric
     equilibria, both with gain 1 (= nu/rho = 2/2). *)
  let paw = Graph.make ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  let m = Defender.Model.make ~graph:paw ~nu:2 ~k:1 in
  let candidates = List.init (Graph.m paw) (fun id -> Defender.Tuple.of_list paw [ id ]) in
  let nes = Defender.Support_solver.search m ~candidate_tuples:candidates in
  Alcotest.(check int) "two equilibria" 2 (List.length nes);
  List.iter
    (fun p -> Alcotest.check q "gain nu/rho" Q.one (Defender.Gain.defender_gain p))
    nes

let test_support_search_c5_full_support_ne () =
  (* C5 admits no matching NE, yet support enumeration finds its unique
     symmetric equilibrium: full supports, gain nu * 2/5 — exactly the
     minimax value (the game is strategically zero-sum). *)
  let g = Gen.cycle 5 in
  let nu = 3 in
  let m = model ~g ~nu ~k:1 in
  let candidates = List.init 5 (fun id -> Defender.Tuple.of_list g [ id ]) in
  match Defender.Support_solver.search m ~candidate_tuples:candidates with
  | [ ne ] ->
      Alcotest.(check int) "full attacker support" 5
        (List.length (Defender.Profile.vp_support_union ne));
      Alcotest.(check int) "full defender support" 5
        (List.length (Defender.Profile.tp_support ne));
      let minimax = (Defender.Minimax.solve g).Defender.Minimax.value in
      Alcotest.check q "gain = nu * minimax value"
        (Q.mul_int minimax nu)
        (Defender.Gain.defender_gain ne)
  | nes -> Alcotest.failf "expected exactly one equilibrium, got %d" (List.length nes)

let test_support_search_guards () =
  let g = Gen.grid 3 3 in
  let m = model ~g ~nu:1 ~k:1 in
  Alcotest.check_raises "n too large"
    (Invalid_argument "Support_solver.search: graph too large (n > 8)") (fun () ->
      ignore (Defender.Support_solver.search m ~candidate_tuples:[]))

(* --- Price of defense --- *)

let test_price_of_defense () =
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  (* |IS| = 3, k = 2: PoD = 3/2 *)
  Alcotest.check q "PoD = |IS|/k" (Q.make 3 2) (Defender.Gain.price_of_defense prof);
  Alcotest.check q "matches prediction"
    (Defender.Gain.predicted_price_of_defense m ~is_size:3)
    (Defender.Gain.price_of_defense prof);
  (* PoD is independent of nu *)
  let m8 = model ~g ~nu:8 ~k:2 in
  let prof8 = ok (Defender.Tuple_nash.a_tuple_auto m8) in
  Alcotest.check q "independent of nu" (Q.make 3 2)
    (Defender.Gain.price_of_defense prof8)

let () =
  Alcotest.run "extensions"
    [
      ( "path model",
        [
          Alcotest.test_case "is_path" `Quick test_is_path;
          Alcotest.test_case "rejects path+cycle" `Quick
            test_is_path_rejects_path_plus_cycle;
          Alcotest.test_case "enumerate paths" `Quick test_enumerate_paths;
          Alcotest.test_case "hamiltonian path" `Quick test_hamiltonian_path;
          Alcotest.test_case "pure NE" `Quick test_path_model_pure_ne;
          Alcotest.test_case "thresholds" `Quick test_path_model_thresholds;
          Alcotest.test_case "mixed verification" `Quick test_path_model_mixed_verify;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "zero regret at NE" `Quick test_regret_zero_at_ne;
          Alcotest.test_case "tilted attacker regret" `Quick test_tilt_vp_regret;
          Alcotest.test_case "tilt scales linearly" `Quick
            test_tilt_tp_regret_scales_linearly;
          Alcotest.test_case "validation" `Quick test_tilt_validation;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook LP" `Quick test_simplex_textbook;
          Alcotest.test_case "fractional optimum" `Quick test_simplex_fractional_optimum;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "zero objective" `Quick test_simplex_zero_problem;
          Alcotest.test_case "validation" `Quick test_simplex_validation;
        ] );
      ( "minimax defense",
        [
          Alcotest.test_case "known values" `Quick test_minimax_known_values;
          Alcotest.test_case "bipartite = integral" `Quick
            test_minimax_bipartite_equals_integral;
          Alcotest.test_case "beats integral on C5" `Quick
            test_minimax_beats_integral_on_odd_cycles;
          Alcotest.test_case "matches NE floor" `Quick
            test_minimax_matches_matching_ne_floor;
        ] );
      ( "fictitious play",
        [
          Alcotest.test_case "converges to NE value" `Slow
            test_fictitious_converges_to_ne_value;
          Alcotest.test_case "converges to minimax on C5" `Slow
            test_fictitious_converges_to_minimax_without_ne;
          Alcotest.test_case "bookkeeping" `Quick test_fictitious_bookkeeping;
        ] );
      ( "gauss",
        [
          Alcotest.test_case "unique" `Quick test_gauss_unique;
          Alcotest.test_case "underdetermined" `Quick test_gauss_underdetermined;
          Alcotest.test_case "inconsistent" `Quick test_gauss_inconsistent;
          Alcotest.test_case "redundant rows" `Quick test_gauss_redundant_rows;
        ] );
      ( "support solver",
        [
          Alcotest.test_case "recovers matching NE" `Quick
            test_support_solver_recovers_matching_ne;
          Alcotest.test_case "failure modes" `Quick test_support_solver_failures;
          Alcotest.test_case "detects non-equilibrium" `Quick
            test_support_solver_detects_non_equilibrium;
          Alcotest.test_case "paw census" `Quick test_support_search_paw;
          Alcotest.test_case "C5 full-support NE" `Quick
            test_support_search_c5_full_support_ne;
          Alcotest.test_case "guards" `Quick test_support_search_guards;
        ] );
      ( "price of defense",
        [ Alcotest.test_case "PoD = |IS|/k" `Quick test_price_of_defense ] );
    ]
