(* Tests for the game model: instances, tuples, profiles, profits. *)

open Netgraph
module Q = Exact.Q

let q = Alcotest.testable Q.pp Q.equal

let p4 () = Gen.path 4
let model ?(nu = 2) ?(k = 1) g = Defender.Model.make ~graph:g ~nu ~k

(* --- Model --- *)

let test_model_validation () =
  let g = p4 () in
  Alcotest.check_raises "nu = 0"
    (Invalid_argument "Model.make: need at least one vertex player") (fun () ->
      ignore (Defender.Model.make ~graph:g ~nu:0 ~k:1));
  Alcotest.check_raises "k = 0" (Invalid_argument "Model.make: k = 0 outside [1, m = 3]")
    (fun () -> ignore (Defender.Model.make ~graph:g ~nu:1 ~k:0));
  Alcotest.check_raises "k > m" (Invalid_argument "Model.make: k = 4 outside [1, m = 3]")
    (fun () -> ignore (Defender.Model.make ~graph:g ~nu:1 ~k:4));
  let disconnected = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected rejected" true
    (try
       ignore (Defender.Model.make ~graph:disconnected ~nu:1 ~k:1);
       false
     with Invalid_argument _ -> true)

let test_model_accessors () =
  let m = model ~nu:3 ~k:2 (p4 ()) in
  Alcotest.(check int) "nu" 3 (Defender.Model.nu m);
  Alcotest.(check int) "k" 2 (Defender.Model.k m);
  Alcotest.(check int) "edge model k" 1 (Defender.Model.k (Defender.Model.edge_model m));
  Alcotest.(check int) "with_k" 3 (Defender.Model.k (Defender.Model.with_k m ~k:3));
  Alcotest.(check (option int)) "C(3,2)" (Some 3) (Defender.Model.tuple_space_size m)

let test_tuple_space_size () =
  let g = Gen.complete 6 in
  (* m = 15 *)
  let check k expected =
    Alcotest.(check (option int))
      (Printf.sprintf "C(15,%d)" k)
      (Some expected)
      (Defender.Model.tuple_space_size (model ~k g))
  in
  check 1 15;
  check 2 105;
  check 5 3003;
  check 15 1

(* Sizes whose intermediate products used to trip the int-wrap
   heuristic: the exact Q.binomial path returns the true count whenever
   it fits in an int, and None (not a wrapped value) when it does not. *)
let test_tuple_space_size_large () =
  let star_model m k =
    model ~k (Gen.star (m + 1))
    (* star on m+1 vertices has exactly m edges *)
  in
  Alcotest.(check (option int))
    "C(40,20)" (Some 137_846_528_820)
    (Defender.Model.tuple_space_size (star_model 40 20));
  Alcotest.(check (option int))
    "C(62,31)" (Some 465_428_353_255_261_088)
    (Defender.Model.tuple_space_size (star_model 62 31));
  Alcotest.(check (option int))
    "C(66,33) overflows int" None
    (Defender.Model.tuple_space_size (star_model 66 33));
  Alcotest.(check string)
    "C(66,33) exact" "7219428434016265740"
    (Q.to_string (Defender.Model.tuple_space_size_exact (star_model 66 33)));
  Alcotest.(check string)
    "C(300,150) exact"
    "93759702772827452793193754439064084879232655700081358920472352712975170021839591675861424"
    (Q.to_string (Defender.Model.tuple_space_size_exact (star_model 300 150)))

(* --- Tuple --- *)

let test_tuple_of_list () =
  let g = p4 () in
  let t = Defender.Tuple.of_list g [ 2; 0 ] in
  Alcotest.(check (list int)) "sorted" [ 0; 2 ] (Defender.Tuple.to_list t);
  Alcotest.(check int) "size" 2 (Defender.Tuple.size t);
  Alcotest.check_raises "duplicate" (Invalid_argument "Tuple.of_list: duplicate edge in tuple")
    (fun () -> ignore (Defender.Tuple.of_list g [ 1; 1 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Tuple.of_list: empty tuple") (fun () ->
      ignore (Defender.Tuple.of_list g []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Tuple.of_list: edge id 9 out of range") (fun () ->
      ignore (Defender.Tuple.of_list g [ 9 ]))

let test_tuple_vertices_covers () =
  let g = p4 () in
  (* edges: 0:(0,1) 1:(1,2) 2:(2,3) *)
  let t = Defender.Tuple.of_list g [ 0; 2 ] in
  Alcotest.(check (list int)) "V(t)" [ 0; 1; 2; 3 ] (Defender.Tuple.vertices g t);
  Alcotest.(check bool) "covers 1" true (Defender.Tuple.covers g t 1);
  let t' = Defender.Tuple.of_list g [ 1 ] in
  Alcotest.(check bool) "does not cover 0" false (Defender.Tuple.covers g t' 0);
  Alcotest.(check bool) "contains edge" true (Defender.Tuple.contains_edge t 2);
  Alcotest.(check bool) "not contains" false (Defender.Tuple.contains_edge t 1)

let test_tuple_enumerate () =
  let g = p4 () in
  let tuples = Defender.Tuple.enumerate g ~k:2 in
  Alcotest.(check int) "C(3,2)" 3 (List.length tuples);
  let as_lists = List.map Defender.Tuple.to_list tuples in
  Alcotest.(check (list (list int))) "lexicographic" [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]
    as_lists;
  Alcotest.(check int) "fold matches" 3
    (Defender.Tuple.fold_enumerate g ~k:2 ~init:0 ~f:(fun acc _ -> acc + 1));
  Alcotest.check_raises "limit guard"
    (Invalid_argument "Tuple.enumerate: C(28,14) exceeds limit 1000") (fun () ->
      ignore (Defender.Tuple.enumerate ~limit:1000 (Gen.complete 8) ~k:14))

let test_tuple_unions () =
  let g = p4 () in
  let t1 = Defender.Tuple.of_list g [ 0 ] and t2 = Defender.Tuple.of_list g [ 2 ] in
  Alcotest.(check (list int)) "edge union" [ 0; 2 ] (Defender.Tuple.edge_union [ t1; t2 ]);
  Alcotest.(check (list int)) "vertex union" [ 0; 1; 2; 3 ]
    (Defender.Tuple.vertex_union g [ t1; t2 ])

(* --- Profile --- *)

let test_pure_profile () =
  let g = p4 () in
  let m = model ~nu:2 ~k:1 g in
  let t = Defender.Tuple.of_list g [ 1 ] in
  let p = Defender.Profile.make_pure m ~vp_choices:[ 0; 2 ] ~tp_choice:t in
  Alcotest.(check int) "stored choices" 2 (Array.length p.Defender.Profile.vp_choices);
  Alcotest.check_raises "arity" (Invalid_argument "Profile.make_pure: wrong number of vertex-player choices")
    (fun () -> ignore (Defender.Profile.make_pure m ~vp_choices:[ 0 ] ~tp_choice:t));
  Alcotest.check_raises "tuple size" (Invalid_argument "Profile: tuple size 2, expected k = 1")
    (fun () ->
      ignore
        (Defender.Profile.make_pure m ~vp_choices:[ 0; 2 ]
           ~tp_choice:(Defender.Tuple.of_list g [ 0; 1 ])))

let test_mixed_profile_validation () =
  let g = p4 () in
  let m = model ~nu:1 ~k:1 g in
  let t0 = Defender.Tuple.of_list g [ 0 ] and t1 = Defender.Tuple.of_list g [ 1 ] in
  Alcotest.check_raises "bad tuple total"
    (Invalid_argument "Profile.make_mixed: tuple probabilities sum to 3/4") (fun () ->
      ignore
        (Defender.Profile.make_mixed m
           ~vp:[ Dist.Finite.point 0 ]
           ~tp:[ (t0, Q.make 1 2); (t1, Q.make 1 4) ]));
  Alcotest.check_raises "duplicate tuple"
    (Invalid_argument "Profile.make_mixed: duplicate tuple in support") (fun () ->
      ignore
        (Defender.Profile.make_mixed m
           ~vp:[ Dist.Finite.point 0 ]
           ~tp:[ (t0, Q.make 1 2); (t0, Q.make 1 2) ]));
  Alcotest.check_raises "empty tp"
    (Invalid_argument "Profile.make_mixed: empty tuple-player strategy") (fun () ->
      ignore (Defender.Profile.make_mixed m ~vp:[ Dist.Finite.point 0 ] ~tp:[]))

let test_uniform_profile () =
  let g = p4 () in
  let m = model ~nu:2 ~k:1 g in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0; 2 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 1; 3 ] ~tp_support:tuples in
  Alcotest.(check (list int)) "vp support" [ 1; 3 ] (Defender.Profile.vp_support prof 0);
  Alcotest.(check (list int)) "vp union" [ 1; 3 ] (Defender.Profile.vp_support_union prof);
  Alcotest.(check (list int)) "tp edges" [ 0; 2 ] (Defender.Profile.tp_support_edges prof);
  List.iter
    (fun (_, p) -> Alcotest.check q "uniform tuple prob" (Q.make 1 2) p)
    (Defender.Profile.tp_strategy prof)

let test_hit_and_load () =
  let g = p4 () in
  let m = model ~nu:2 ~k:1 g in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0; 2 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 1; 3 ] ~tp_support:tuples in
  (* Hit(0) = P(tuple {0}) = 1/2; Hit(1) = 1/2; Hit(2) = 1/2; Hit(3) = 1/2 *)
  Alcotest.check q "hit 0" (Q.make 1 2) (Defender.Profile.hit_prob prof 0);
  Alcotest.check q "hit 3" (Q.make 1 2) (Defender.Profile.hit_prob prof 3);
  (* loads: each player uniform on {1,3}: m(1) = m(3) = 1 *)
  Alcotest.check q "load 1" Q.one (Defender.Profile.expected_load prof 1);
  Alcotest.check q "load 0" Q.zero (Defender.Profile.expected_load prof 0);
  (* edge 0 = (0,1): load = 1 *)
  Alcotest.check q "edge load" Q.one (Defender.Profile.expected_load_edge prof 0);
  let t02 = Defender.Tuple.of_list g [ 0; 2 ] in
  Alcotest.check q "tuple load" (Q.of_int 2) (Defender.Profile.expected_load_tuple prof t02)

let test_tuples_hitting () =
  let g = p4 () in
  let m = model ~nu:1 ~k:1 g in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0; 1; 2 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 0 ] ~tp_support:tuples in
  Alcotest.(check int) "vertex 1 hit by edges 0,1" 2
    (List.length (Defender.Profile.tuples_hitting prof 1));
  Alcotest.(check int) "vertex 0 hit by edge 0" 1
    (List.length (Defender.Profile.tuples_hitting prof 0))

let test_replace () =
  let g = p4 () in
  let m = model ~nu:2 ~k:1 g in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 3 ] ~tp_support:tuples in
  let prof' = Defender.Profile.replace_vp prof 0 (Dist.Finite.point 2) in
  Alcotest.(check (list int)) "player 0 moved" [ 2 ] (Defender.Profile.vp_support prof' 0);
  Alcotest.(check (list int)) "player 1 unchanged" [ 3 ] (Defender.Profile.vp_support prof' 1);
  let prof'' =
    Defender.Profile.replace_tp prof [ (Defender.Tuple.of_list g [ 2 ], Q.one) ]
  in
  Alcotest.(check (list int)) "tp moved" [ 2 ] (Defender.Profile.tp_support_edges prof'');
  Alcotest.(check bool) "purity" true (Defender.Profile.is_pure prof'')

(* --- Profit --- *)

let test_pure_profits () =
  let g = p4 () in
  let m = model ~nu:3 ~k:1 g in
  let t = Defender.Tuple.of_list g [ 1 ] in
  (* covers vertices 1 and 2 *)
  let p = Defender.Profile.make_pure m ~vp_choices:[ 0; 1; 2 ] ~tp_choice:t in
  Alcotest.(check int) "vp0 escapes" 1 (Defender.Profit.pure_vp m p 0);
  Alcotest.(check int) "vp1 caught" 0 (Defender.Profit.pure_vp m p 1);
  Alcotest.(check int) "vp2 caught" 0 (Defender.Profit.pure_vp m p 2);
  Alcotest.(check int) "tp catches 2" 2 (Defender.Profit.pure_tp m p)

let test_expected_profits_degenerate () =
  (* Point masses must reproduce the pure profits. *)
  let g = p4 () in
  let m = model ~nu:2 ~k:1 g in
  let t = Defender.Tuple.of_list g [ 0 ] in
  let pure = Defender.Profile.make_pure m ~vp_choices:[ 1; 3 ] ~tp_choice:t in
  let mixed = Defender.Profile.of_pure m pure in
  Alcotest.check q "vp0 expected = pure" (Q.of_int (Defender.Profit.pure_vp m pure 0))
    (Defender.Profit.expected_vp mixed 0);
  Alcotest.check q "tp expected = pure" (Q.of_int (Defender.Profit.pure_tp m pure))
    (Defender.Profit.expected_tp mixed)

let test_expected_profit_equation1 () =
  (* Equation (1): IP_i = sum_v P(v) (1 - Hit(v)). *)
  let g = p4 () in
  let m = model ~nu:1 ~k:1 g in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0; 1 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 0; 3 ] ~tp_support:tuples in
  (* Hit(0) = 1/2 (edge 0), Hit(3) = 0; IP = 1/2*(1/2) + 1/2*1 = 3/4 *)
  Alcotest.check q "equation (1)" (Q.make 3 4) (Defender.Profit.expected_vp prof 0)

let test_expected_profit_equation2 () =
  (* Equation (2): IP_tp = sum_t P(t) m(t). *)
  let g = p4 () in
  let m = model ~nu:2 ~k:1 g in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0; 1 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 1 ] ~tp_support:tuples in
  (* both players on vertex 1: m(1) = 2; each support edge covers vertex 1:
     IP_tp = 1/2*2 + 1/2*2 = 2 *)
  Alcotest.check q "equation (2)" (Q.of_int 2) (Defender.Profit.expected_tp prof);
  Alcotest.check q "payoff of tuple" (Q.of_int 2)
    (Defender.Profit.tp_payoff_of_tuple prof (Defender.Tuple.of_list g [ 1 ]))

(* --- Profile serialization --- *)

let test_profile_io_roundtrip () =
  let g = Gen.grid 3 3 in
  let m = Defender.Model.make ~graph:g ~nu:4 ~k:2 in
  let prof =
    match Defender.Tuple_nash.a_tuple_auto m with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let text = Defender.Profile_io.to_string prof in
  let reloaded = Defender.Profile_io.of_string m text in
  Alcotest.(check (list int)) "vp support preserved"
    (Defender.Profile.vp_support_union prof)
    (Defender.Profile.vp_support_union reloaded);
  Alcotest.(check (list int)) "tp edges preserved"
    (Defender.Profile.tp_support_edges prof)
    (Defender.Profile.tp_support_edges reloaded);
  Alcotest.check q "gain preserved exactly" (Defender.Profit.expected_tp prof)
    (Defender.Profit.expected_tp reloaded);
  (* non-uniform probabilities survive too *)
  let custom =
    Defender.Profile.make_mixed (model ~nu:1 ~k:1 (p4 ()))
      ~vp:[ Dist.Finite.make [ (0, Q.make 1 3); (2, Q.make 2 3) ] ]
      ~tp:
        [
          (Defender.Tuple.of_list (p4 ()) [ 0 ], Q.make 1 7);
          (Defender.Tuple.of_list (p4 ()) [ 2 ], Q.make 6 7);
        ]
  in
  let m14 = model ~nu:1 ~k:1 (p4 ()) in
  let back = Defender.Profile_io.of_string m14 (Defender.Profile_io.to_string custom) in
  Alcotest.check q "non-uniform prob preserved" (Q.make 6 7)
    (List.assoc
       (Defender.Tuple.of_list (p4 ()) [ 2 ])
       (List.map (fun (t, p) -> (t, p)) (Defender.Profile.tp_strategy back)))

let test_profile_io_rejects () =
  let m = model ~nu:1 ~k:1 (p4 ()) in
  Alcotest.check_raises "bad header" (Invalid_argument "Profile_io: bad header")
    (fun () -> ignore (Defender.Profile_io.of_string m "nonsense\nnu 1 k 1\n"));
  Alcotest.check_raises "wrong nu/k"
    (Invalid_argument "Profile_io: profile does not match the model (nu or k)")
    (fun () ->
      ignore (Defender.Profile_io.of_string m "profile v1\nnu 2 k 1\ntp 0:1/1\n"));
  Alcotest.check_raises "missing tp" (Invalid_argument "Profile_io: missing tp line")
    (fun () ->
      ignore (Defender.Profile_io.of_string m "profile v1\nnu 1 k 1\nvp 0 0:1/1\n"))

(* vp payoffs + profit conservation property *)
let props =
  let scenario_gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let r = Prng.Rng.create seed in
           let g = Gen.gnp_connected r ~n:(4 + Prng.Rng.int r 6) ~p:0.3 in
           let nu = 1 + Prng.Rng.int r 4 in
           let k = 1 + Prng.Rng.int r (min 3 (Graph.m g)) in
           let m = Defender.Model.make ~graph:g ~nu ~k in
           (* random uniform-support profile *)
           let vertices = Array.init (Graph.n g) Fun.id in
           let support_size = 1 + Prng.Rng.int r (Graph.n g) in
           let vp_support =
             Array.to_list (Prng.Rng.sample_without_replacement r ~count:support_size vertices)
           in
           let edge_ids = Array.init (Graph.m g) Fun.id in
           let tuple_count = 1 + Prng.Rng.int r 3 in
           let tuples =
             List.init tuple_count (fun _ ->
                 Defender.Tuple.of_list g
                   (Array.to_list
                      (Prng.Rng.sample_without_replacement r ~count:k edge_ids)))
             |> List.sort_uniq Defender.Tuple.compare
           in
           Defender.Profile.uniform m ~vp_support ~tp_support:tuples)
         QCheck.Gen.int)
  in
  [
    QCheck.Test.make ~name:"hit probabilities within [0,1]" ~count:100 scenario_gen
      (fun prof ->
        let g = Defender.Model.graph (Defender.Profile.model prof) in
        List.for_all
          (fun v ->
            let h = Defender.Profile.hit_prob prof v in
            Q.( >= ) h Q.zero && Q.( <= ) h Q.one)
          (List.init (Graph.n g) Fun.id));
    QCheck.Test.make ~name:"total load equals nu" ~count:100 scenario_gen (fun prof ->
        let model = Defender.Profile.model prof in
        let g = Defender.Model.graph model in
        Q.equal
          (Q.of_int (Defender.Model.nu model))
          (Q.sum (List.map (Defender.Profile.expected_load prof) (List.init (Graph.n g) Fun.id))));
    QCheck.Test.make ~name:"defender profit bounded by nu" ~count:100 scenario_gen
      (fun prof ->
        let nu = Defender.Model.nu (Defender.Profile.model prof) in
        let ip = Defender.Profit.expected_tp prof in
        Q.( >= ) ip Q.zero && Q.( <= ) ip (Q.of_int nu));
    QCheck.Test.make ~name:"vp profit = 1 - hit on support" ~count:100 scenario_gen
      (fun prof ->
        List.for_all
          (fun v ->
            Q.equal
              (Defender.Profit.vp_payoff_of_vertex prof v)
              (Q.sub Q.one (Defender.Profile.hit_prob prof v)))
          (Defender.Profile.vp_support prof 0));
  ]

let () =
  Alcotest.run "model"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "accessors" `Quick test_model_accessors;
          Alcotest.test_case "tuple space size" `Quick test_tuple_space_size;
          Alcotest.test_case "tuple space size (large)" `Quick
            test_tuple_space_size_large;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "of_list" `Quick test_tuple_of_list;
          Alcotest.test_case "vertices/covers" `Quick test_tuple_vertices_covers;
          Alcotest.test_case "enumerate" `Quick test_tuple_enumerate;
          Alcotest.test_case "unions" `Quick test_tuple_unions;
        ] );
      ( "profile",
        [
          Alcotest.test_case "pure" `Quick test_pure_profile;
          Alcotest.test_case "mixed validation" `Quick test_mixed_profile_validation;
          Alcotest.test_case "uniform" `Quick test_uniform_profile;
          Alcotest.test_case "hit and load" `Quick test_hit_and_load;
          Alcotest.test_case "tuples hitting" `Quick test_tuples_hitting;
          Alcotest.test_case "replace" `Quick test_replace;
        ] );
      ( "profile-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_profile_io_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_profile_io_rejects;
        ] );
      ( "profit",
        [
          Alcotest.test_case "pure profits" `Quick test_pure_profits;
          Alcotest.test_case "degenerate mixed" `Quick test_expected_profits_degenerate;
          Alcotest.test_case "equation (1)" `Quick test_expected_profit_equation1;
          Alcotest.test_case "equation (2)" `Quick test_expected_profit_equation2;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
