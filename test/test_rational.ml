(* Unit and property tests for the exact rational substrate. *)

module Q = Exact.Q

let q = Alcotest.testable Q.pp Q.equal

let check_q = Alcotest.check q

let test_normalization () =
  check_q "6/8 = 3/4" (Q.make 3 4) (Q.make 6 8);
  check_q "-6/8 = -3/4" (Q.make (-3) 4) (Q.make 6 (-8));
  check_q "0/5 = 0" Q.zero (Q.make 0 5);
  Alcotest.(check int) "den of -2/-4" 2 (Q.den (Q.make (-2) (-4)));
  Alcotest.(check int) "num of -2/-4" 1 (Q.num (Q.make (-2) (-4)));
  Alcotest.(check int) "den always positive" 3 (Q.den (Q.make 5 (-3)) * -1 * -1)

let test_zero_denominator () =
  Alcotest.check_raises "make x/0" Q.Division_by_zero (fun () ->
      ignore (Q.make 1 0));
  Alcotest.check_raises "div by zero" Q.Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Q.Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let test_arithmetic () =
  check_q "1/2 + 1/3" (Q.make 5 6) (Q.add (Q.make 1 2) (Q.make 1 3));
  check_q "1/2 - 1/3" (Q.make 1 6) (Q.sub (Q.make 1 2) (Q.make 1 3));
  check_q "2/3 * 3/4" (Q.make 1 2) (Q.mul (Q.make 2 3) (Q.make 3 4));
  check_q "(1/2) / (3/4)" (Q.make 2 3) (Q.div (Q.make 1 2) (Q.make 3 4));
  check_q "neg" (Q.make (-1) 2) (Q.neg (Q.make 1 2));
  check_q "inv -2/3" (Q.make (-3) 2) (Q.inv (Q.make (-2) 3));
  check_q "mul_int" (Q.make 3 2) (Q.mul_int (Q.make 1 2) 3);
  check_q "div_int" (Q.make 1 6) (Q.div_int (Q.make 1 2) 3);
  check_q "abs" (Q.make 1 2) (Q.abs (Q.make (-1) 2))

let test_comparisons () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(make 1 3 < make 1 2);
  Alcotest.(check bool) "1/2 <= 1/2" true Q.(make 1 2 <= make 2 4);
  Alcotest.(check bool) "2/3 > 1/2" true Q.(make 2 3 > make 1 2);
  Alcotest.(check int) "sign neg" (-1) (Q.sign (Q.make (-3) 7));
  Alcotest.(check int) "sign zero" 0 (Q.sign Q.zero);
  check_q "min" (Q.make 1 3) (Q.min (Q.make 1 3) (Q.make 1 2));
  check_q "max" (Q.make 1 2) (Q.max (Q.make 1 3) (Q.make 1 2))

let test_aggregates () =
  check_q "sum" Q.one (Q.sum [ Q.make 1 2; Q.make 1 3; Q.make 1 6 ]);
  check_q "sum empty" Q.zero (Q.sum []);
  check_q "average" (Q.make 1 2) (Q.average [ Q.make 1 4; Q.make 3 4 ]);
  check_q "min_list" (Q.make 1 4) (Q.min_list [ Q.make 1 2; Q.make 1 4; Q.one ]);
  check_q "max_list" Q.one (Q.max_list [ Q.make 1 2; Q.make 1 4; Q.one ]);
  Alcotest.check_raises "average of []" (Invalid_argument "Q.average: empty list")
    (fun () -> ignore (Q.average []))

let test_conversions () =
  Alcotest.(check string) "to_string fraction" "5/6" (Q.to_string (Q.make 5 6));
  Alcotest.(check string) "to_string integer" "7" (Q.to_string (Q.make 14 2));
  Alcotest.(check bool) "is_integer" true (Q.is_integer (Q.make 14 2));
  Alcotest.(check bool) "not is_integer" false (Q.is_integer (Q.make 1 2));
  Alcotest.(check int) "to_int_exn" 7 (Q.to_int_exn (Q.make 14 2));
  Alcotest.(check (float 1e-12)) "to_float" 0.5 (Q.to_float (Q.make 1 2));
  Alcotest.(check bool) "is_zero" true (Q.is_zero (Q.sub Q.one Q.one))

(* Formerly [check_raises Q.Overflow] cases: the tower now promotes to
   arbitrary precision and the result must be exactly right. *)
let test_promotion () =
  let big = Q.of_int max_int in
  let succ = Q.add big Q.one in
  Alcotest.(check bool) "max_int + 1 promotes" false (Q.is_small succ);
  Alcotest.(check string) "max_int + 1 exact" "4611686018427387904"
    (Q.to_string succ);
  check_q "promotion round-trips: (max+1) - 1 demotes" big (Q.sub succ Q.one);
  let doubled = Q.mul big (Q.of_int 2) in
  Alcotest.(check bool) "2 * max_int promotes" false (Q.is_small doubled);
  Alcotest.(check string) "2 * max_int exact" "9223372036854775806"
    (Q.to_string doubled);
  check_q "big / 2 demotes back" big (Q.div_int doubled 2);
  (* Knuth-reduced operations that fit must stay on the fast path. *)
  check_q "large but reducible" (Q.of_int max_int)
    (Q.mul (Q.make max_int 3) (Q.of_int 3));
  Alcotest.(check bool) "reducible product stays small" true
    (Q.is_small (Q.mul (Q.make max_int 3) (Q.of_int 3)));
  (* A denominator product beyond the native range: 1/p over enough
     distinct primes that the lcm exceeds max_int (the seed code raised
     Q.Overflow here; regression for the promotion path). *)
  let primes =
    [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61 ]
  in
  let s = Q.sum (List.map (fun p -> Q.make 1 p) primes) in
  Alcotest.(check bool) "prime-harmonic sum promotes" false (Q.is_small s);
  (* Verify exactly: multiply by the product of the primes and compare
     against the integer sum of cofactor products. *)
  let product = List.fold_left (fun acc p -> Q.mul_int acc p) Q.one primes in
  let cofactors =
    Q.sum
      (List.map
         (fun p ->
           List.fold_left
             (fun acc q -> if q = p then acc else Q.mul_int acc q)
             Q.one primes)
         primes)
  in
  check_q "cleared denominators match" cofactors (Q.mul s product);
  (* min_int is representable (promoted), and arithmetic on it is exact. *)
  let m = Q.of_int min_int in
  Alcotest.(check bool) "min_int promotes" false (Q.is_small m);
  Alcotest.(check string) "min_int exact" "-4611686018427387904" (Q.to_string m);
  check_q "min_int + max_int = -1" Q.minus_one (Q.add m (Q.of_int max_int));
  Alcotest.check_raises "num of a big value raises Overflow" Q.Overflow
    (fun () -> ignore (Q.num succ))

(* Property tests: the rationals form an ordered field. *)
let small_q =
  QCheck.map
    (fun (n, d) -> Q.make n (1 + abs d))
    QCheck.(pair (int_range (-1000) 1000) (int_range 0 1000))

(* Rationals whose components sit just below the native range, so sums and
   products straddle the promotion boundary: some stay on the fast path,
   most promote, and differences demote again. *)
let boundary_q =
  QCheck.map
    (fun (a, b, flip) ->
      let q = Q.make (max_int - a) (1 + b) in
      if flip then Q.neg q else q)
    QCheck.(triple (int_range 0 1_000_000) (int_range 0 1_000_000) bool)

(* Mix of the two regimes; cross-representation operations hit every
   promote/demote combination. *)
let straddle_q = QCheck.oneof [ small_q; boundary_q ]

let props =
  [
    QCheck.Test.make ~name:"add commutative" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    QCheck.Test.make ~name:"add associative" ~count:500
      QCheck.(triple small_q small_q small_q)
      (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)));
    QCheck.Test.make ~name:"mul commutative" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.equal (Q.mul a b) (Q.mul b a));
    QCheck.Test.make ~name:"mul distributes over add" ~count:500
      QCheck.(triple small_q small_q small_q)
      (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    QCheck.Test.make ~name:"additive inverse" ~count:500 small_q (fun a ->
        Q.is_zero (Q.add a (Q.neg a)));
    QCheck.Test.make ~name:"multiplicative inverse" ~count:500 small_q (fun a ->
        Q.is_zero a || Q.equal Q.one (Q.mul a (Q.inv a)));
    QCheck.Test.make ~name:"sub then add roundtrips" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.equal a (Q.add (Q.sub a b) b));
    QCheck.Test.make ~name:"normalized invariant" ~count:500 small_q (fun a ->
        let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
        Q.den a > 0 && (Q.is_zero a || gcd (abs (Q.num a)) (Q.den a) = 1));
    QCheck.Test.make ~name:"compare agrees with float compare" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) ->
        let fc = compare (Q.to_float a) (Q.to_float b) in
        fc = 0 || compare (Q.compare a b) 0 = compare fc 0);
    QCheck.Test.make ~name:"compare antisymmetric" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    QCheck.Test.make ~name:"triangle: |a+b| <= |a|+|b|" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) ->
        Q.( <= ) (Q.abs (Q.add a b)) (Q.add (Q.abs a) (Q.abs b)));
    (* Cross-validation of the small and big paths around the promotion
       boundary: the tower must satisfy the same field identities whether
       intermediates promote or not. *)
    QCheck.Test.make ~name:"boundary: a+b-b = a" ~count:500
      QCheck.(pair straddle_q straddle_q)
      (fun (a, b) -> Q.equal a (Q.sub (Q.add a b) b));
    QCheck.Test.make ~name:"boundary: a*b/b = a" ~count:500
      QCheck.(pair straddle_q straddle_q)
      (fun (a, b) -> Q.is_zero b || Q.equal a (Q.div (Q.mul a b) b));
    QCheck.Test.make ~name:"boundary: compare antisymmetric across reps"
      ~count:500
      QCheck.(pair straddle_q straddle_q)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    QCheck.Test.make ~name:"boundary: to_string/of_string round-trip"
      ~count:500
      QCheck.(pair straddle_q straddle_q)
      (fun (a, b) ->
        let p = Q.mul a b in
        Q.equal a (Q.of_string (Q.to_string a))
        && Q.equal p (Q.of_string (Q.to_string p)));
    QCheck.Test.make ~name:"boundary: demotion is canonical" ~count:500
      QCheck.(pair boundary_q boundary_q)
      (fun (a, b) ->
        (* a + b promotes (or not); (a+b) - b must be structurally equal
           to a, i.e. land back in the same representation. *)
        let back = Q.sub (Q.add a b) b in
        Q.equal back a && Q.is_small back = Q.is_small a);
    QCheck.Test.make ~name:"boundary: to_big/of_big round-trip" ~count:500
      straddle_q
      (fun a ->
        let n, d = Q.to_big a in
        Q.equal a (Q.of_big ~num:n ~den:(Exact.Bigint.make ~sign:1 d)));
  ]

let () =
  Alcotest.run "rational"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "promotion" `Quick test_promotion;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
