(* Tests for the exact zero-sum matrix-game solver (Lp.Matrix_game) and
   the simplex robustness it rests on: equilibrium certificates on
   random matrices, agreement with the independently derived Minimax LP
   on single-edge covering games, degenerate shapes (duplicate rows,
   dominated columns, 1×n), warm restarts, and anti-cycling regressions
   (Beale's example) for the degenerate tableaux the double-oracle loop
   feeds the simplex repeatedly. *)

open Netgraph
module Q = Exact.Q
module MG = Lp.Matrix_game

let q = Alcotest.testable Q.pp Q.equal
let qi = Q.of_int
let matrix rows = Array.of_list (List.map (fun r -> Array.of_list (List.map qi r)) rows)

(* --- shapes and known values --- *)

let test_one_by_n () =
  (* One row: the minimizer picks the smallest entry. *)
  let m = matrix [ [ 3; 1; 4 ] ] in
  let sol = MG.solve m in
  Alcotest.check q "value = min entry" (qi 1) sol.MG.value;
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium m sol);
  let m = matrix [ [ 2 ]; [ 7 ]; [ 5 ] ] in
  let sol = MG.solve m in
  Alcotest.check q "n×1: value = max entry" (qi 7) sol.MG.value;
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium m sol)

let test_constant_and_identity () =
  let m = matrix [ [ -2; -2 ]; [ -2; -2 ] ] in
  let sol = MG.solve m in
  Alcotest.check q "constant matrix" (qi (-2)) sol.MG.value;
  let id = matrix [ [ 1; 0 ]; [ 0; 1 ] ] in
  let sol = MG.solve id in
  Alcotest.check q "matching pennies value" (Q.make 1 2) sol.MG.value;
  Alcotest.check q "row mix uniform" (Q.make 1 2) sol.MG.row_strategy.(0);
  Alcotest.check q "col mix uniform" (Q.make 1 2) sol.MG.col_strategy.(1);
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium id sol)

let test_rock_paper_scissors () =
  let m = matrix [ [ 0; -1; 1 ]; [ 1; 0; -1 ]; [ -1; 1; 0 ] ] in
  let sol = MG.solve m in
  Alcotest.check q "value 0" Q.zero sol.MG.value;
  Array.iter (Alcotest.check q "row uniform" (Q.make 1 3)) sol.MG.row_strategy;
  Array.iter (Alcotest.check q "col uniform" (Q.make 1 3)) sol.MG.col_strategy;
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium m sol)

(* --- degeneracies the double-oracle loop produces --- *)

let test_duplicate_rows () =
  let base = matrix [ [ 1; 0 ]; [ 0; 1 ] ] in
  let dup = matrix [ [ 1; 0 ]; [ 0; 1 ]; [ 0; 1 ] ] in
  let sb = MG.solve base and sd = MG.solve dup in
  Alcotest.check q "duplicating a row keeps the value" sb.MG.value sd.MG.value;
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium dup sd)

let test_dominated_column () =
  (* Column 2 dominates column 0 entrywise (worse for the minimizer),
     so appending it changes nothing. *)
  let base = matrix [ [ 1; 0 ]; [ 0; 1 ] ] in
  let ext = matrix [ [ 1; 0; 2 ]; [ 0; 1; 1 ] ] in
  let sb = MG.solve base and se = MG.solve ext in
  Alcotest.check q "dominated column keeps the value" sb.MG.value se.MG.value;
  Alcotest.check q "dominated column unused" Q.zero se.MG.col_strategy.(2);
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium ext se)

let test_rejects_malformed () =
  Alcotest.check_raises "empty" (Invalid_argument "Matrix_game.solve: empty matrix")
    (fun () -> ignore (MG.solve [||]));
  Alcotest.check_raises "ragged"
    (Invalid_argument "Matrix_game.solve: ragged matrix") (fun () ->
      ignore (MG.solve [| [| Q.one; Q.zero |]; [| Q.one |] |]))

(* --- agreement with the Minimax LP --- *)

(* The k=1 defender game in matrix form: rows = edges (maximizer),
   columns = vertices, payoff = interception indicator.  Its value is
   the max-min interception probability, independently computed by
   Minimax.solve as 1/ρ*(G). *)
let covering_matrix g =
  Array.init (Graph.m g) (fun id ->
      let e = Graph.edge g id in
      Array.init (Graph.n g) (fun v ->
          if v = e.Graph.u || v = e.Graph.v then Q.one else Q.zero))

let test_vs_minimax () =
  List.iter
    (fun (name, g) ->
      let sol = MG.solve (covering_matrix g) in
      let mm = Defender.Minimax.solve g in
      Alcotest.check q
        (Printf.sprintf "%s: matrix-game value = 1/rho*" name)
        mm.Defender.Minimax.value sol.MG.value;
      Alcotest.(check bool)
        (Printf.sprintf "%s: certificate" name)
        true
        (MG.is_equilibrium (covering_matrix g) sol))
    [
      ("P4", Gen.path 4);
      ("C5", Gen.cycle 5);
      ("C6", Gen.cycle 6);
      ("star5", Gen.star 5);
      ("K4", Gen.complete 4);
      ("petersen", Gen.petersen ());
    ]

(* --- random-matrix equilibrium property --- *)

let arb_matrix =
  QCheck.make
    ~print:(fun m ->
      String.concat "; "
        (Array.to_list
           (Array.map
              (fun row ->
                String.concat ","
                  (Array.to_list (Array.map Q.to_string row)))
              m)))
    QCheck.Gen.(
      int_range 1 4 >>= fun rows ->
      int_range 1 4 >>= fun cols ->
      list_repeat (rows * cols) (map qi (int_range (-5) 5)) >>= fun entries ->
      let entries = Array.of_list entries in
      return
        (Array.init rows (fun i ->
             Array.init cols (fun j -> entries.((i * cols) + j)))))

let prop_random_equilibrium =
  QCheck.Test.make ~name:"Matrix_game.solve returns an exact equilibrium"
    ~count:300 arb_matrix (fun m -> MG.is_equilibrium m (MG.solve m))

let prop_value_in_range =
  QCheck.Test.make ~name:"game value lies between matrix min and max"
    ~count:300 arb_matrix (fun m ->
      let sol = MG.solve m in
      let mn =
        Array.fold_left (fun a r -> Array.fold_left Q.min a r) m.(0).(0) m
      and mx =
        Array.fold_left (fun a r -> Array.fold_left Q.max a r) m.(0).(0) m
      in
      Q.( <= ) mn sol.MG.value && Q.( <= ) sol.MG.value mx)

(* --- warm restarts --- *)

let test_warm_column_growth () =
  (* Append columns (including a useless duplicate) and re-solve warm:
     the answer must match the cold solve exactly. *)
  let base = matrix [ [ 1; 0 ]; [ 0; 1 ] ] in
  let sb = MG.solve base in
  let ext = matrix [ [ 1; 0; 1; 2 ]; [ 0; 1; 0; 2 ] ] in
  let warm = MG.warm ~rows:2 ~cols:2 sb in
  let sw = MG.solve ~warm ext and sc = MG.solve ext in
  Alcotest.check q "warm value = cold value" sc.MG.value sw.MG.value;
  Alcotest.(check bool) "warm certificate" true (MG.is_equilibrium ext sw)

let test_warm_shape_mismatch_falls_back () =
  (* A row was added since the basis was recorded: the token must be
     ignored and the solve still exact. *)
  let base = matrix [ [ 1; 0 ]; [ 0; 1 ] ] in
  let sb = MG.solve base in
  let taller = matrix [ [ 1; 0 ]; [ 0; 1 ]; [ 1; 1 ] ] in
  let warm = MG.warm ~rows:2 ~cols:2 sb in
  let sw = MG.solve ~warm taller in
  (* The new row intercepts both columns, so the value jumps to 1 —
     obtained despite the now-useless warm token. *)
  Alcotest.check q "fallback solve correct" Q.one sw.MG.value;
  Alcotest.(check bool) "certificate" true (MG.is_equilibrium taller sw)

let prop_warm_equals_cold =
  (* Random base + random appended columns: the warm restart reaches the
     same (unique) game value and a valid equilibrium.  Strategies may
     differ from the cold solve's when several optimal bases exist —
     only the value is unique. *)
  QCheck.Test.make ~name:"warm restart = cold value on column growth"
    ~count:150
    (QCheck.pair arb_matrix (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun (m, extra) ->
      let rows = Array.length m and cols = Array.length m.(0) in
      let sb = MG.solve m in
      let ext =
        Array.mapi
          (fun i row ->
            Array.append row
              (Array.init extra (fun j -> m.(i).((j + i) mod cols))))
          m
      in
      let warm = MG.warm ~rows ~cols sb in
      let sw = MG.solve ~warm ext and sc = MG.solve ext in
      Q.equal sw.MG.value sc.MG.value && MG.is_equilibrium ext sw)

(* --- simplex robustness: degeneracy and anti-cycling --- *)

let test_beale_cycling () =
  (* Beale's classic cycling example; without an anti-cycling rule the
     textbook largest-coefficient pivot loops forever.  Bland's rule
     must terminate at objective 1/20. *)
  let a =
    [|
      [| Q.make 1 4; qi (-60); Q.make (-1) 25; qi 9 |];
      [| Q.make 1 2; qi (-90); Q.make (-1) 50; qi 3 |];
      [| Q.zero; Q.zero; Q.one; Q.zero |];
    |]
  in
  let b = [| Q.zero; Q.zero; Q.one |] in
  let c = [| Q.make 3 4; qi (-150); Q.make 1 50; qi (-6) |] in
  match Lp.Simplex.maximize ~a ~b ~c with
  | Lp.Simplex.Unbounded -> Alcotest.fail "Beale LP is bounded"
  | Lp.Simplex.Optimal { objective; x; _ } ->
      Alcotest.check q "Beale optimum" (Q.make 1 20) objective;
      Alcotest.(check bool) "optimum feasible" true
        (Lp.Simplex.feasible ~a ~b ~x)

let test_degenerate_duplicate_constraints () =
  let a =
    [| [| Q.one; Q.one |]; [| Q.one; Q.one |]; [| Q.one; Q.zero |] |]
  in
  let b = [| Q.one; Q.one; Q.one |] in
  let c = [| Q.one; Q.one |] in
  match Lp.Simplex.maximize ~a ~b ~c with
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded"
  | Lp.Simplex.Optimal { objective; _ } ->
      Alcotest.check q "duplicate constraints" Q.one objective

let test_simplex_warm_basis_roundtrip () =
  let a = [| [| Q.one; Q.one |]; [| Q.one; Q.zero |] |] in
  let b = [| qi 2; Q.one |] in
  let c = [| qi 3; Q.one |] in
  let cold =
    match Lp.Simplex.maximize ~a ~b ~c with
    | Lp.Simplex.Optimal s -> s
    | Lp.Simplex.Unbounded -> Alcotest.fail "bounded"
  in
  (match Lp.Simplex.maximize_warm ~warm_start:cold.Lp.Simplex.basis ~a ~b ~c with
  | Lp.Simplex.Optimal s ->
      Alcotest.check q "re-solve from own basis" cold.Lp.Simplex.objective
        s.Lp.Simplex.objective
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded");
  Alcotest.check_raises "wrong basis length"
    (Invalid_argument "Simplex.maximize: warm-start basis length <> rows")
    (fun () ->
      ignore (Lp.Simplex.maximize_warm ~warm_start:[| 0 |] ~a ~b ~c));
  Alcotest.check_raises "duplicate basis index"
    (Invalid_argument "Simplex.maximize: duplicate warm-start basis index")
    (fun () ->
      ignore (Lp.Simplex.maximize_warm ~warm_start:[| 1; 1 |] ~a ~b ~c))

let () =
  Alcotest.run "matrix_game"
    [
      ( "shapes",
        [
          Alcotest.test_case "1xn and nx1" `Quick test_one_by_n;
          Alcotest.test_case "constant and identity" `Quick
            test_constant_and_identity;
          Alcotest.test_case "rock-paper-scissors" `Quick
            test_rock_paper_scissors;
          Alcotest.test_case "duplicate rows" `Quick test_duplicate_rows;
          Alcotest.test_case "dominated column" `Quick test_dominated_column;
          Alcotest.test_case "malformed input" `Quick test_rejects_malformed;
        ] );
      ("minimax", [ Alcotest.test_case "k=1 covering games" `Quick test_vs_minimax ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_equilibrium;
          QCheck_alcotest.to_alcotest prop_value_in_range;
          QCheck_alcotest.to_alcotest prop_warm_equals_cold;
        ] );
      ( "warm",
        [
          Alcotest.test_case "column growth" `Quick test_warm_column_growth;
          Alcotest.test_case "shape mismatch falls back" `Quick
            test_warm_shape_mismatch_falls_back;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "Beale anti-cycling" `Quick test_beale_cycling;
          Alcotest.test_case "degenerate duplicate constraints" `Quick
            test_degenerate_duplicate_constraints;
          Alcotest.test_case "warm basis roundtrip" `Quick
            test_simplex_warm_basis_roundtrip;
        ] );
    ]
