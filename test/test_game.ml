(* The functorized game layer: the Induced enumerator against a
   brute-force oracle, the subgraph instance's kernel against the naive
   support-rescanning oracle (exact Q equality, fresh and after patch
   chains), the cycle-rotation equilibrium, the versioned Profile_io
   game tag (v1 = tuple stays byte-stable, v2 carries the tag, cross-
   game loads are rejected), and the game field on the experiment
   wire format. *)

open Netgraph
module Q = Exact.Q
module SG = Defender.Subgraph_game
module Engine = Defender.Subgraph_instance.Engine

let q = Alcotest.testable Q.pp Q.equal

(* --- Induced: connected-subset enumeration vs brute force --- *)

let subsets_of_size n size =
  let rec go start size =
    if size = 0 then [ [] ]
    else
      List.concat
        (List.filter_map
           (fun v ->
             if v + size <= n then
               Some (List.map (fun rest -> v :: rest) (go (v + 1) (size - 1)))
             else None)
           (List.init (n - start) (fun i -> start + i)))
  in
  go 0 size

let brute_connected g size =
  List.filter (Induced.is_connected_subset g) (subsets_of_size (Graph.n g) size)

let test_induced_enumeration () =
  let rng = Prng.Rng.create 42 in
  let graphs =
    [
      ("path5", Gen.path 5);
      ("cycle6", Gen.cycle 6);
      ("star6", Gen.star 6);
      ("petersen", Gen.petersen ());
      ("gnp8", Gen.gnp_connected rng ~n:8 ~p:0.35);
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun size ->
          let expected = brute_connected g size in
          let got =
            List.rev
              (Induced.fold_connected_subsets g ~size ~init:[]
                 ~f:(fun acc vs -> vs :: acc))
          in
          Alcotest.(check int)
            (Printf.sprintf "%s size %d count" name size)
            (List.length expected) (List.length got);
          List.iter
            (fun vs ->
              Alcotest.(check bool)
                (Printf.sprintf "%s size %d sorted" name size)
                true
                (List.sort compare vs = vs))
            got;
          Alcotest.(check bool)
            (Printf.sprintf "%s size %d sets match" name size)
            true
            (List.sort compare got = List.sort compare expected);
          let count = List.length expected in
          Alcotest.(check (option int))
            (Printf.sprintf "%s size %d count within limit" name size)
            (Some count)
            (Induced.count_connected_subsets g ~size ~limit:count);
          if count > 0 then
            Alcotest.(check (option int))
              (Printf.sprintf "%s size %d count over limit" name size)
              None
              (Induced.count_connected_subsets g ~size ~limit:(count - 1)))
        [ 1; 2; 3; 4 ])
    graphs

let test_induced_guards () =
  let g = Gen.path 4 in
  Alcotest.check_raises "size 0"
    (Invalid_argument "Induced.fold_connected_subsets: size 0 outside [1, 4]")
    (fun () ->
      ignore (Induced.fold_connected_subsets g ~size:0 ~init:() ~f:(fun () _ -> ())));
  Alcotest.(check bool) "empty set" false (Induced.is_connected_subset g []);
  Alcotest.(check bool) "disconnected" false (Induced.is_connected_subset g [ 0; 2 ]);
  Alcotest.(check bool) "connected" true (Induced.is_connected_subset g [ 1; 2; 3 ])

(* --- subgraph instance: kernel vs naive oracle --- *)

let random_finite rng g =
  let n = Graph.n g in
  let vertices = Array.init n Fun.id in
  let size = 1 + Prng.Rng.int rng n in
  let support =
    Array.to_list (Prng.Rng.sample_without_replacement rng ~count:size vertices)
  in
  let weights = List.map (fun v -> (v, 1 + Prng.Rng.int rng 6)) support in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  Dist.Finite.make (List.map (fun (v, w) -> (v, Q.make w total)) weights)

let random_tp rng inst =
  let strategies =
    List.init (1 + Prng.Rng.int rng 3) (fun _ -> SG.random_strategy inst rng)
    |> List.sort_uniq SG.Strategy.compare
  in
  let weights =
    List.map (fun t -> (t, 1 + Prng.Rng.int rng 6)) strategies
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  List.map (fun (t, w) -> (t, Q.make w total)) weights

let random_subgraph_profile rng =
  let g = Gen.gnp_connected rng ~n:(4 + Prng.Rng.int rng 4) ~p:0.45 in
  let nu = 1 + Prng.Rng.int rng 3 in
  let lambda = 1 + Prng.Rng.int rng (min 3 (Graph.n g)) in
  let inst = SG.make ~graph:g ~nu ~lambda in
  let vp = List.init nu (fun _ -> random_finite rng g) in
  let tp = random_tp rng inst in
  (inst, Engine.Profile.make_mixed inst ~vp ~tp)

let check_kernel_vs_naive ?(label = "") rng prof =
  let inst = Engine.Profile.instance prof in
  let g = SG.graph inst in
  for v = 0 to Graph.n g - 1 do
    Alcotest.check q
      (Printf.sprintf "%shit_prob %d" label v)
      (Engine.Profile.hit_prob ~naive:true prof v)
      (Engine.Profile.hit_prob prof v);
    Alcotest.check q
      (Printf.sprintf "%sexpected_load %d" label v)
      (Engine.Profile.expected_load ~naive:true prof v)
      (Engine.Profile.expected_load prof v)
  done;
  for id = 0 to Graph.m g - 1 do
    Alcotest.check q
      (Printf.sprintf "%sexpected_load_edge %d" label id)
      (Engine.Profile.expected_load_edge ~naive:true prof id)
      (Engine.Profile.expected_load_edge prof id)
  done;
  for _ = 1 to 3 do
    let t = SG.random_strategy inst rng in
    Alcotest.check q
      (Printf.sprintf "%sexpected_load_strategy" label)
      (Engine.Profile.expected_load_strategy ~naive:true prof t)
      (Engine.Profile.expected_load_strategy prof t)
  done

let test_subgraph_fresh_profiles () =
  let rng = Prng.Rng.create 2718 in
  for i = 1 to 30 do
    let _, prof = random_subgraph_profile rng in
    check_kernel_vs_naive ~label:(Printf.sprintf "fresh %d: " i) rng prof
  done

let test_subgraph_patch_chain () =
  let rng = Prng.Rng.create 3141 in
  for i = 1 to 12 do
    let inst, prof = random_subgraph_profile rng in
    let g = SG.graph inst in
    let nu = SG.nu inst in
    let prof = ref prof in
    for step = 1 to 8 do
      (if Prng.Rng.int rng 2 = 0 then
         let player = Prng.Rng.int rng nu in
         prof := Engine.Profile.replace_vp !prof player (random_finite rng g)
       else prof := Engine.Profile.replace_tp !prof (random_tp rng inst));
      check_kernel_vs_naive
        ~label:(Printf.sprintf "chain %d step %d: " i step)
        rng !prof
    done
  done

(* --- cycle rotation equilibrium and payoffs --- *)

let test_cycle_rotation_ne () =
  List.iter
    (fun (n, nu, lambda) ->
      let inst = SG.make ~graph:(Gen.cycle n) ~nu ~lambda in
      let arcs =
        List.rev (SG.fold_strategies inst ~init:[] ~f:(fun acc s -> s :: acc))
      in
      Alcotest.(check int)
        (Printf.sprintf "C%d lambda=%d arcs" n lambda)
        n (List.length arcs);
      let prof =
        Engine.Profile.uniform inst ~vp_support:(List.init n Fun.id)
          ~tp_support:arcs
      in
      let verdict =
        Engine.Verify.mixed_ne (Engine.Verify.Exhaustive 10_000) prof
      in
      Alcotest.(check bool)
        (Printf.sprintf "C%d lambda=%d confirmed" n lambda)
        true
        (Engine.Verify.verdict_is_confirmed verdict);
      Alcotest.check q
        (Printf.sprintf "C%d lambda=%d gain" n lambda)
        (Q.make (nu * lambda) n)
        (Engine.Profit.expected_tp prof))
    [ (5, 3, 1); (6, 4, 2); (8, 2, 3) ]

let test_subgraph_space_size () =
  (* closed forms: cycles have n arcs per lambda < n, and exactly one
     spanning subset; complete graphs have C(n, lambda) connected
     subsets. *)
  let inst = SG.make ~graph:(Gen.cycle 7) ~nu:1 ~lambda:3 in
  Alcotest.check q "C7 lambda=3" (Q.of_int 7) (SG.space_size inst);
  Alcotest.check q "C7 lambda=7"
    Q.one
    (SG.space_size (SG.make ~graph:(Gen.cycle 7) ~nu:1 ~lambda:7));
  Alcotest.check q "K6 lambda=3"
    (Q.binomial 6 3)
    (SG.space_size (SG.make ~graph:(Gen.complete 6) ~nu:1 ~lambda:3))

(* --- Profile_io: versioned game tag --- *)

let test_io_tuple_v1 () =
  let g = Gen.path 4 in
  let m = Defender.Model.make ~graph:g ~nu:2 ~k:1 in
  let prof =
    Defender.Profile.uniform m ~vp_support:[ 0; 1; 2; 3 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 0 ]; Defender.Tuple.of_list g [ 2 ] ]
  in
  let text = Defender.Profile_io.to_string prof in
  Alcotest.(check bool) "v1 header" true
    (String.length text >= 42
    && String.sub text 0 42 = "# defender mixed configuration\nprofile v1\n");
  let back = Defender.Profile_io.of_string m text in
  Alcotest.check q "round-trip gain"
    (Defender.Profit.expected_tp prof)
    (Defender.Profit.expected_tp back)

let test_io_subgraph_v2 () =
  let g = Gen.cycle 6 in
  let inst = SG.make ~graph:g ~nu:2 ~lambda:2 in
  let arcs =
    List.rev (SG.fold_strategies inst ~init:[] ~f:(fun acc s -> s :: acc))
  in
  let prof =
    Engine.Profile.uniform inst ~vp_support:(List.init 6 Fun.id)
      ~tp_support:arcs
  in
  let text = Engine.Io.to_string prof in
  Alcotest.(check bool) "v2 header with game tag" true
    (String.length text >= 56
    && String.sub text 0 56
       = "# defender mixed configuration\nprofile v2\ngame subgraph\n");
  let back = Engine.Io.of_string inst text in
  Alcotest.check q "round-trip gain"
    (Engine.Profit.expected_tp prof)
    (Engine.Profit.expected_tp back);
  Alcotest.(check bool) "round-trip support" true
    (List.for_all2
       (fun (a, p) (b, p') -> SG.Strategy.equal a b && Q.equal p p')
       (Engine.Profile.tp_strategy prof)
       (Engine.Profile.tp_strategy back))

let test_io_cross_game_rejected () =
  let g = Gen.cycle 6 in
  let inst = SG.make ~graph:g ~nu:2 ~lambda:2 in
  let sub_text =
    Engine.Io.to_string
      (Engine.Profile.uniform inst ~vp_support:(List.init 6 Fun.id)
         ~tp_support:[ SG.round_robin inst ~round:0 ])
  in
  let m = Defender.Model.make ~graph:g ~nu:2 ~k:2 in
  Alcotest.check_raises "subgraph profile into tuple model"
    (Invalid_argument
       "Profile_io: profile is for game subgraph, model is game tuple")
    (fun () -> ignore (Defender.Profile_io.of_string m sub_text));
  let tuple_prof =
    Defender.Profile.uniform m ~vp_support:[ 0; 1 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 0; 3 ] ]
  in
  let tuple_text = Defender.Profile_io.to_string tuple_prof in
  Alcotest.check_raises "tuple v1 profile into subgraph model"
    (Invalid_argument
       "Profile_io: v1 profile is a tuple-game profile, model is game subgraph")
    (fun () -> ignore (Engine.Io.of_string inst tuple_text))

(* --- experiment wire format: the game field --- *)

let test_wire_game_field () =
  let module E = Harness.Experiment in
  let module J = Harness.Json in
  let descr game =
    {
      E.id = "W1";
      claim = "wire fixture";
      expected = "round-trips";
      tag = E.Table;
      game;
      run = (fun ctx -> E.out ctx "hello\n");
    }
  in
  let check_roundtrip game =
    let r = E.run ~scale:E.Smoke (descr game) in
    Alcotest.(check string) "result carries game" game r.E.game;
    match E.result_of_wire (E.result_to_wire r) with
    | Ok r' -> Alcotest.(check string) "wire round-trip" game r'.E.game
    | Error e -> Alcotest.fail e
  in
  check_roundtrip "tuple";
  check_roundtrip "subgraph";
  (* artifact JSON: the field appears only for non-tuple games, so old
     tuple artifacts keep their exact bytes *)
  let member_game r =
    J.member "game" (E.result_to_json r)
  in
  Alcotest.(check bool) "tuple artifact omits game" true
    (member_game (E.run ~scale:E.Smoke (descr "tuple")) = None);
  (match member_game (E.run ~scale:E.Smoke (descr "subgraph")) with
  | Some (J.String "subgraph") -> ()
  | _ -> Alcotest.fail "subgraph artifact lacks game tag");
  (* a wire object without the field decodes as the tuple game *)
  let wire = E.result_to_wire (E.run ~scale:E.Smoke (descr "tuple")) in
  match wire with
  | J.Obj fields -> (
      let stripped = J.Obj (List.filter (fun (k, _) -> k <> "game") fields) in
      match E.result_of_wire stripped with
      | Ok r -> Alcotest.(check string) "absent field defaults" "tuple" r.E.game
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "wire result is not an object"

let () =
  Alcotest.run "game"
    [
      ( "induced",
        [
          Alcotest.test_case "enumeration vs brute force" `Quick
            test_induced_enumeration;
          Alcotest.test_case "guards" `Quick test_induced_guards;
        ] );
      ( "subgraph kernel",
        [
          Alcotest.test_case "fresh profiles vs naive" `Quick
            test_subgraph_fresh_profiles;
          Alcotest.test_case "patch chains vs naive" `Quick
            test_subgraph_patch_chain;
        ] );
      ( "subgraph equilibrium",
        [
          Alcotest.test_case "cycle rotation NE" `Quick test_cycle_rotation_ne;
          Alcotest.test_case "space size closed forms" `Quick
            test_subgraph_space_size;
        ] );
      ( "profile io",
        [
          Alcotest.test_case "tuple v1 byte-stable" `Quick test_io_tuple_v1;
          Alcotest.test_case "subgraph v2 tagged" `Quick test_io_subgraph_v2;
          Alcotest.test_case "cross-game rejected" `Quick
            test_io_cross_game_rejected;
        ] );
      ( "experiment wire",
        [ Alcotest.test_case "game field" `Quick test_wire_game_field ] );
    ]
