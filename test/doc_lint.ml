(* Documentation lint, attached to both @doc and @runtest: every public
   [.mli] under lib/ must open with a [(** ... *)] synopsis, and every
   sublibrary must parse as a library (a dune file with a (name ...)
   field).  Exit 0 when clean; exit 1 listing each offender otherwise,
   so an undocumented interface cannot land.

     doc_lint.exe LIB_DIR        # normally: doc_lint.exe lib *)

let () =
  let root =
    match Sys.argv with
    | [| _; dir |] -> dir
    | _ ->
        prerr_endline "usage: doc_lint.exe LIB_DIR";
        exit 2
  in
  let sublibs = Doc_scan.scan root in
  if sublibs = [] then begin
    Printf.eprintf "doc_lint: no sublibraries found under %s\n" root;
    exit 1
  end;
  let undocumented =
    List.concat_map
      (fun (s : Doc_scan.sublib) ->
        List.filter (fun (m : Doc_scan.mli) -> m.synopsis = None) s.mlis)
      sublibs
  in
  let total =
    List.fold_left (fun n (s : Doc_scan.sublib) -> n + List.length s.mlis) 0 sublibs
  in
  match undocumented with
  | [] ->
      Printf.printf
        "doc_lint: ok (%d .mli files across %d sublibraries, all carry a \
         leading (** ... *) synopsis)\n"
        total (List.length sublibs)
  | offenders ->
      List.iter
        (fun (m : Doc_scan.mli) ->
          Printf.eprintf
            "doc_lint: %s: missing leading (** ... *) synopsis\n" m.path)
        offenders;
      Printf.eprintf "doc_lint: %d of %d .mli file(s) undocumented\n"
        (List.length offenders) total;
      exit 1
