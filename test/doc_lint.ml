(* Documentation lint, attached to both @doc and @runtest: every public
   [.mli] under lib/ must open with a [(** ... *)] synopsis, every
   sublibrary must parse as a library (a dune file with a (name ...)
   field), and no sublibrary may ship with ZERO interface files — a
   library whose every module is implementation-only has no documented
   surface at all, which is how interface gaps slipped in before this
   check existed.  Exit 0 when clean; exit 1 listing each offender
   otherwise, so an undocumented interface cannot land.

     doc_lint.exe LIB_DIR        # normally: doc_lint.exe lib *)

let () =
  let root =
    match Sys.argv with
    | [| _; dir |] -> dir
    | _ ->
        prerr_endline "usage: doc_lint.exe LIB_DIR";
        exit 2
  in
  let sublibs = Doc_scan.scan root in
  if sublibs = [] then begin
    Printf.eprintf "doc_lint: no sublibraries found under %s\n" root;
    exit 1
  end;
  let undocumented =
    List.concat_map
      (fun (s : Doc_scan.sublib) ->
        List.filter (fun (m : Doc_scan.mli) -> m.synopsis = None) s.mlis)
      sublibs
  in
  let bare = List.filter (fun (s : Doc_scan.sublib) -> s.mlis = []) sublibs in
  let total =
    List.fold_left (fun n (s : Doc_scan.sublib) -> n + List.length s.mlis) 0 sublibs
  in
  match (undocumented, bare) with
  | [], [] ->
      Printf.printf
        "doc_lint: ok (%d .mli files across %d sublibraries, all carry a \
         leading (** ... *) synopsis)\n"
        total (List.length sublibs)
  | offenders, bare ->
      List.iter
        (fun (m : Doc_scan.mli) ->
          Printf.eprintf
            "doc_lint: %s: missing leading (** ... *) synopsis\n" m.path)
        offenders;
      List.iter
        (fun (s : Doc_scan.sublib) ->
          Printf.eprintf
            "doc_lint: %s (library %s): no .mli files — every module is an \
             undocumented implementation\n"
            s.dir s.libname)
        bare;
      if offenders <> [] then
        Printf.eprintf "doc_lint: %d of %d .mli file(s) undocumented\n"
          (List.length offenders) total;
      if bare <> [] then
        Printf.eprintf "doc_lint: %d sublibrar%s without any interface file\n"
          (List.length bare)
          (if List.length bare = 1 then "y" else "ies");
      exit 1
