(* Torture tests for the arbitrary-precision substrate (Bignat/Bigint)
   and the promotion boundary of the Q tower, including the
   Harness.Json rationals-as-strings round-trip at big magnitudes. *)

module Q = Exact.Q
module N = Exact.Bignat
module Z = Exact.Bigint

let nat = Alcotest.testable N.pp N.equal
let int_b = Alcotest.testable Z.pp Z.equal
let q = Alcotest.testable Q.pp Q.equal

let n_of_string = N.of_string

(* --- Bignat unit vectors --- *)

let test_nat_conversions () =
  Alcotest.(check string) "zero" "0" (N.to_string N.zero);
  Alcotest.(check string) "one" "1" (N.to_string N.one);
  Alcotest.(check string) "max_int" (string_of_int max_int)
    (N.to_string (N.of_int max_int));
  Alcotest.(check (option int)) "to_int_opt max_int" (Some max_int)
    (N.to_int_opt (N.of_int max_int));
  Alcotest.(check (option int)) "to_int_opt max_int+1" None
    (N.to_int_opt (N.add (N.of_int max_int) N.one));
  (* leading zeros parse; canonical zero *)
  Alcotest.check nat "0000 = 0" N.zero (n_of_string "0000");
  Alcotest.check nat "of_string inverse of to_string"
    (n_of_string "123456789012345678901234567890123456789")
    (n_of_string
       (N.to_string (n_of_string "123456789012345678901234567890123456789")));
  Alcotest.check_raises "of_string rejects garbage"
    (Invalid_argument "Bignat.of_string: not a digit") (fun () ->
      ignore (n_of_string "12a3"));
  Alcotest.check_raises "of_string rejects empty"
    (Invalid_argument "Bignat.of_string: empty string") (fun () ->
      ignore (n_of_string ""))

(* 2^62 = 4611686018427387904; 10^30, factorials, Mersenne-adjacent
   values: known products and quotients crossing many limb boundaries. *)
let test_nat_known_values () =
  let p2_62 = N.add (N.of_int max_int) N.one in
  Alcotest.(check string) "2^62" "4611686018427387904" (N.to_string p2_62);
  Alcotest.(check string) "2^124"
    "21267647932558653966460912964485513216"
    (N.to_string (N.mul p2_62 p2_62));
  (* 20! = 2432902008176640000 fits; 25! doesn't. *)
  let fact n =
    let rec go acc i =
      if i > n then acc else go (N.mul acc (N.of_int i)) (i + 1)
    in
    go N.one 2
  in
  Alcotest.(check string) "20!" "2432902008176640000" (N.to_string (fact 20));
  Alcotest.(check string) "25!" "15511210043330985984000000"
    (N.to_string (fact 25));
  Alcotest.(check string) "50!"
    "30414093201713378043612608166064768844377641568960512000000000000"
    (N.to_string (fact 50));
  (* binomial via factorial quotient: C(200, 10) *)
  let c200_10 =
    fst (N.divmod (fact 200) (N.mul (fact 10) (fact 190)))
  in
  Alcotest.(check string) "C(200,10)" "22451004309013280"
    (N.to_string c200_10)

let test_nat_divmod_vectors () =
  let check_divmod a b =
    let a = n_of_string a and b = n_of_string b in
    let qt, r = N.divmod a b in
    Alcotest.check nat
      (Printf.sprintf "reconstruct %s / %s" (N.to_string a) (N.to_string b))
      a
      (N.add (N.mul qt b) r);
    Alcotest.(check bool) "remainder < divisor" true (N.compare r b < 0)
  in
  (* Knuth D corner cases: qhat overestimates, add-back, single-limb,
     dividend < divisor, exact division, highly skewed lengths. *)
  check_divmod "340282366920938463463374607431768211456" "18446744073709551616";
  check_divmod "340282366920938463463374607431768211455" "18446744073709551617";
  check_divmod "99999999999999999999999999999999999999" "3";
  check_divmod "7" "123456789123456789123456789";
  check_divmod "123456789123456789123456789123456789" "987654321987654321";
  check_divmod "4611686018427387904" "4611686018427387903";
  (* the classical add-back trigger family: u = b^2k - 1, v = b^k + 1 *)
  check_divmod
    "21267647932558653966460912964485513215"
    "4611686018427387905";
  Alcotest.check_raises "divide by zero" Division_by_zero (fun () ->
      ignore (N.divmod N.one N.zero))

let test_nat_gcd_vectors () =
  let check_gcd a b expect =
    Alcotest.check nat
      (Printf.sprintf "gcd %s %s" a b)
      (n_of_string expect)
      (N.gcd (n_of_string a) (n_of_string b))
  in
  check_gcd "0" "123456789012345678901234567890" "123456789012345678901234567890";
  check_gcd "123456789012345678901234567890" "0" "123456789012345678901234567890";
  (* gcd(n!, n! + 1) = 1; gcd(2^124, 2^62) = 2^62; fibonacci pair (worst
     case for Euclid) *)
  check_gcd "15511210043330985984000000" "15511210043330985984000001" "1";
  check_gcd "21267647932558653966460912964485513216" "4611686018427387904"
    "4611686018427387904";
  check_gcd "354224848179261915075" "218922995834555169026" "1";
  check_gcd "362880000000000000000000" "100000000000000000" "100000000000000000"

let test_nat_shift () =
  let big = n_of_string "340282366920938463463374607431768211456" (* 2^128 *) in
  Alcotest.check nat "2^128 >> 66 = 2^62"
    (n_of_string "4611686018427387904")
    (N.shift_right big 66);
  Alcotest.check nat "shift past the end" N.zero (N.shift_right big 129);
  Alcotest.(check int) "bit_length 2^128" 129 (N.bit_length big);
  Alcotest.(check int) "bit_length 0" 0 (N.bit_length N.zero)

(* --- Bigint --- *)

let test_int_signs () =
  let a = Z.of_string "-123456789012345678901234567890" in
  Alcotest.(check string) "neg to_string" "-123456789012345678901234567890"
    (Z.to_string a);
  Alcotest.check int_b "neg . neg = id" a (Z.neg (Z.neg a));
  Alcotest.check int_b "a + (-a) = 0" Z.zero (Z.add a (Z.neg a));
  Alcotest.(check int) "sign" (-1) (Z.sign a);
  Alcotest.check int_b "min_int round-trips" (Z.of_int min_int)
    (Z.of_string (string_of_int min_int));
  Alcotest.(check (option int)) "min_int to_int_opt" (Some min_int)
    (Z.to_int_opt (Z.of_int min_int));
  Alcotest.(check (option int)) "min_int - 1 does not fit" None
    (Z.to_int_opt (Z.sub (Z.of_int min_int) Z.one));
  (* truncated divmod: quotient toward zero, remainder keeps the
     dividend's sign — matching native (/) and (mod) *)
  List.iter
    (fun (a, b) ->
      let qt, r = Z.divmod (Z.of_int a) (Z.of_int b) in
      Alcotest.check int_b
        (Printf.sprintf "%d / %d" a b)
        (Z.of_int (a / b)) qt;
      Alcotest.check int_b
        (Printf.sprintf "%d mod %d" a b)
        (Z.of_int (a mod b)) r)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3) ]

(* --- randomized cross-validation against native arithmetic --- *)

let gen_nat =
  (* numbers up to ~2^186: 3 native chunks multiplied together *)
  QCheck.map
    (fun (a, b, c) ->
      N.add
        (N.mul (N.mul (N.of_int a) (N.of_int b)) (N.of_int c))
        (N.of_int (a lxor b)))
    QCheck.(
      triple (int_range 0 max_int) (int_range 0 max_int) (int_range 1 max_int))

let props =
  [
    QCheck.Test.make ~name:"nat: divmod reconstructs" ~count:300
      QCheck.(pair gen_nat gen_nat)
      (fun (a, b) ->
        QCheck.assume (not (N.is_zero b));
        let qt, r = N.divmod a b in
        N.equal a (N.add (N.mul qt b) r) && N.compare r b < 0);
    QCheck.Test.make ~name:"nat: gcd divides both and is maximal-ish"
      ~count:200
      QCheck.(pair gen_nat gen_nat)
      (fun (a, b) ->
        QCheck.assume (not (N.is_zero a) && not (N.is_zero b));
        let g = N.gcd a b in
        let _, ra = N.divmod a g and _, rb = N.divmod b g in
        N.is_zero ra && N.is_zero rb
        &&
        (* co-primality of the cofactors *)
        let qa, _ = N.divmod a g and qb, _ = N.divmod b g in
        N.equal (N.gcd qa qb) N.one);
    QCheck.Test.make ~name:"nat: string round-trip" ~count:200 gen_nat
      (fun a -> N.equal a (n_of_string (N.to_string a)));
    QCheck.Test.make ~name:"nat: add/sub agree with native on small"
      ~count:300
      QCheck.(pair (int_range 0 1_000_000_000) (int_range 0 1_000_000_000))
      (fun (a, b) ->
        N.equal (N.of_int (a + b)) (N.add (N.of_int a) (N.of_int b))
        && N.equal
             (N.of_int (max a b - min a b))
             (N.sub (N.of_int (max a b)) (N.of_int (min a b))));
    QCheck.Test.make ~name:"nat: mul/divmod agree with native on small"
      ~count:300
      QCheck.(pair (int_range 1 1_000_000_000) (int_range 1 1_000_000_000))
      (fun (a, b) ->
        N.equal (N.of_int (a * b)) (N.mul (N.of_int a) (N.of_int b))
        && N.equal (N.of_int (a / b)) (fst (N.divmod (N.of_int a) (N.of_int b)))
        && N.equal (N.of_int (a mod b)) (snd (N.divmod (N.of_int a) (N.of_int b))));
  ]

(* --- the seed-overflow regression workload --- *)

(* A "long-horizon running average" in exact arithmetic: average of
   1/(step + offset) over thousands of steps.  The common denominator is
   lcm(2..N) which left the native range near N = 43 — the seed Q raised
   Overflow on this loop; the tower must complete and be exactly
   verifiable. *)
let test_running_average_regression () =
  let n = 2000 in
  let terms = List.init n (fun i -> Q.make 1 (i + 2)) in
  let avg = Q.average terms in
  Alcotest.(check bool) "average promoted" false (Q.is_small avg);
  (* H(n+1) - 1 telescoped check: avg * n = sum; re-add terms one by one
     in reverse and subtract — must cancel to exactly zero. *)
  let sum = Q.mul_int avg n in
  let residue = List.fold_left (fun acc t -> Q.sub acc t) sum (List.rev terms) in
  Alcotest.check q "exact cancellation over 2000 promoted terms" Q.zero residue;
  (* spot-check the exact value for a small prefix against the known
     harmonic number: 1/2+1/3+1/4+1/5 = 77/60 *)
  Alcotest.check q "H prefix exact" (Q.make 77 60)
    (Q.sum (List.init 4 (fun i -> Q.make 1 (i + 2))))

(* Big rationals must survive the Harness.Json string encoding exactly
   (experiment artifacts store rationals as strings for this reason). *)
let test_json_round_trip () =
  let big =
    Q.sum (List.map (fun p -> Q.make 1 p) [ 101; 103; 107; 109; 113; 127;
                                            131; 137; 139; 149; 151; 157 ])
  in
  Alcotest.(check bool) "witness is big" false (Q.is_small big);
  let values = [ Q.zero; Q.make (-7) 3; Q.of_int max_int; big; Q.neg big ] in
  let json = Harness.Json.List (List.map (fun v -> Harness.Json.String (Q.to_string v)) values) in
  let text = Harness.Json.to_string json in
  match Harness.Json.of_string text with
  | Error e -> Alcotest.failf "artifact does not re-parse: %s" e
  | Ok (Harness.Json.List items) ->
      List.iter2
        (fun expect item ->
          match item with
          | Harness.Json.String s -> Alcotest.check q "round-trip" expect (Q.of_string s)
          | _ -> Alcotest.fail "expected a string cell")
        values items
  | Ok _ -> Alcotest.fail "expected a list"

let () =
  Alcotest.run "bignum"
    [
      ( "bignat",
        [
          Alcotest.test_case "conversions" `Quick test_nat_conversions;
          Alcotest.test_case "known values" `Quick test_nat_known_values;
          Alcotest.test_case "divmod vectors" `Quick test_nat_divmod_vectors;
          Alcotest.test_case "gcd vectors" `Quick test_nat_gcd_vectors;
          Alcotest.test_case "shift/bit_length" `Quick test_nat_shift;
        ] );
      ("bigint", [ Alcotest.test_case "signs and divmod" `Quick test_int_signs ]);
      ( "regressions",
        [
          Alcotest.test_case "seed-overflow running average" `Quick
            test_running_average_regression;
          Alcotest.test_case "Json round-trip at big magnitude" `Quick
            test_json_round_trip;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
