(* Tests for the persistent worker pool (Harness.Pool), the shared pipe
   machinery (Harness.Wire) and the crash/timeout classification fixes
   in Harness.Parallel: the deadline-race rule, EINTR-hardened pipe I/O
   under a signal storm, worker respawn with one retry, graceful drain,
   and registry sweeps through the pool dispatch engine. *)

module J = Harness.Json
module E = Harness.Experiment
module R = Harness.Registry
module P = Harness.Pool

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* --- Parallel.classify: the timeout/completion race --- *)

(* The regression the pure function exists for: the worker completed
   (exited 0, full payload buffered) in the same select round its
   deadline expired in — the SIGKILL answered ESRCH.  Before the fix the
   raised [timed_out] flag won and a good result was reported as a
   timeout crash. *)
let test_classify_deadline_race () =
  let outcome =
    Harness.Parallel.classify ~timed_out:true ~timeout:(Some 0.5)
      ~status:(Unix.WEXITED 0) ~payload:"{\"x\":1}" ~wall:0.5
  in
  (match outcome with
  | Harness.Parallel.Completed json ->
      Alcotest.(check bool) "payload kept" true
        (J.member "x" json = Some (J.Int 1))
  | Harness.Parallel.Crashed { reason; _ } ->
      Alcotest.failf "completed worker misreported as crashed: %s" reason);
  (* A genuinely killed worker still reports the timeout... *)
  (match
     Harness.Parallel.classify ~timed_out:true ~timeout:(Some 0.5)
       ~status:(Unix.WSIGNALED Sys.sigkill) ~payload:"" ~wall:0.6
   with
  | Harness.Parallel.Crashed { reason; _ } ->
      Alcotest.(check bool) "killed worker is a timeout" true
        (contains reason "timed out after 0.5 s")
  | Harness.Parallel.Completed _ -> Alcotest.fail "killed worker completed?");
  (* ...as does one that exited 0 but died mid-write (truncated payload). *)
  (match
     Harness.Parallel.classify ~timed_out:true ~timeout:(Some 0.5)
       ~status:(Unix.WEXITED 0) ~payload:"{\"x\":" ~wall:0.6
   with
  | Harness.Parallel.Crashed { reason; _ } ->
      Alcotest.(check bool) "truncated payload is a timeout" true
        (contains reason "timed out")
  | Harness.Parallel.Completed _ -> Alcotest.fail "truncated payload completed?");
  (* Without the flag, plain crash classification is untouched. *)
  match
    Harness.Parallel.classify ~timed_out:false ~timeout:None
      ~status:(Unix.WEXITED 3) ~payload:"" ~wall:0.1
  with
  | Harness.Parallel.Crashed { reason; _ } ->
      Alcotest.(check bool) "exit code reported" true
        (contains reason "exited with code 3")
  | Harness.Parallel.Completed _ -> Alcotest.fail "exit 3 completed?"

(* --- Wire: framing and the streaming decoder --- *)

let frame json =
  let payload = J.to_string json in
  string_of_int (String.length payload) ^ "\n" ^ payload

let test_wire_decoder_split_feed () =
  let d = Harness.Wire.decoder () in
  let msg = J.Obj [ ("job", J.Int 7); ("payload", J.List [ J.Int 1 ]) ] in
  let bytes = frame msg in
  (* One byte at a time: no prefix shorter than the whole frame yields
     anything, the full frame yields exactly the message. *)
  String.iteri
    (fun i c ->
      let got =
        Harness.Wire.feed d (Bytes.make 1 c) 1;
        Harness.Wire.next_frame d
      in
      if i < String.length bytes - 1 then
        Alcotest.(check bool)
          (Printf.sprintf "no frame after %d bytes" (i + 1))
          true (got = None)
      else
        Alcotest.(check bool) "full frame decodes" true (got = Some (Ok msg)))
    bytes;
  Alcotest.(check bool) "decoder drained" false (Harness.Wire.partial d);
  (* Two frames plus a partial third in a single feed. *)
  let m1 = J.Int 1 and m2 = J.Obj [ ("k", J.Bool true) ] in
  let all = frame m1 ^ frame m2 ^ "5\n{\"a\"" in
  Harness.Wire.feed d (Bytes.of_string all) (String.length all);
  Alcotest.(check bool) "first frame" true
    (Harness.Wire.next_frame d = Some (Ok m1));
  Alcotest.(check bool) "second frame" true
    (Harness.Wire.next_frame d = Some (Ok m2));
  Alcotest.(check bool) "third incomplete" true
    (Harness.Wire.next_frame d = None);
  Alcotest.(check bool) "partial bytes held" true (Harness.Wire.partial d)

let test_wire_decoder_bad_header () =
  let d = Harness.Wire.decoder () in
  let junk = "nonsense\n{}" in
  Harness.Wire.feed d (Bytes.of_string junk) (String.length junk);
  (match Harness.Wire.next_frame d with
  | Some (Error e) ->
      Alcotest.(check bool) "names the header" true (contains e "nonsense")
  | _ -> Alcotest.fail "bad header accepted");
  let d2 = Harness.Wire.decoder () in
  let long = String.make 30 '1' in
  Harness.Wire.feed d2 (Bytes.of_string long) (String.length long);
  match Harness.Wire.next_frame d2 with
  | Some (Error e) ->
      Alcotest.(check bool) "overlong header rejected" true (contains e "too long")
  | _ -> Alcotest.fail "overlong header accepted"

let test_wire_frame_roundtrip () =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      Harness.Wire.close_quietly rd;
      Harness.Wire.close_quietly wr)
    (fun () ->
      let msg = J.Obj [ ("s", J.String "n\xe2\x9c\x93l\n") ] in
      Harness.Wire.write_frame wr msg;
      (match Harness.Wire.read_frame rd with
      | Some (Ok got) -> Alcotest.(check bool) "round-trips" true (got = msg)
      | Some (Error e) -> Alcotest.failf "frame failed: %s" e
      | None -> Alcotest.fail "unexpected EOF");
      Unix.close wr;
      Alcotest.(check bool) "EOF is None" true
        (Harness.Wire.read_frame rd = None))

(* --- signal storms: EINTR on every pipe path --- *)

(* Flood both sides with SIGALRM while payloads several times the pipe
   buffer stream through: worker writes block and get interrupted
   (Wire.write_all must retry), parent select/reads get interrupted.
   Before write_all retried EINTR, this lost workers to spurious
   exceptions and misreported completed jobs as crashes. *)
let with_parent_storm f =
  let old_handler =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ()))
  in
  let stop = { Unix.it_interval = 0.0; it_value = 0.0 } in
  let storm = { Unix.it_interval = 0.002; it_value = 0.002 } in
  ignore (Unix.setitimer Unix.ITIMER_REAL storm);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL stop);
      Sys.set_signal Sys.sigalrm old_handler)
    f

let storm_job i =
  (* Re-arm inside the worker: interval timers do not survive fork. *)
  Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ()));
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.0005; it_value = 0.0005 });
  J.Obj [ ("i", J.Int i); ("blob", J.String (String.make 200_000 'x')) ]

let check_storm_outcomes outcomes =
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Harness.Parallel.Completed json ->
          Alcotest.(check bool)
            (Printf.sprintf "job %d payload intact" i)
            true
            (J.member "i" json = Some (J.Int i)
            &&
            match J.member "blob" json with
            | Some (J.String s) -> String.length s = 200_000
            | _ -> false)
      | Harness.Parallel.Crashed { reason; _ } ->
          Alcotest.failf "job %d crashed under signal storm: %s" i reason)
    outcomes

let test_parallel_eintr_storm () =
  with_parent_storm (fun () ->
      check_storm_outcomes (Harness.Parallel.run ~jobs:4 40 storm_job))

let test_pool_eintr_storm () =
  with_parent_storm (fun () ->
      check_storm_outcomes (P.run ~jobs:4 40 storm_job))

(* --- Pool basics --- *)

let test_pool_run_basics () =
  let out = P.run ~jobs:3 10 (fun i -> J.Int (i * i)) in
  Alcotest.(check int) "all jobs answered" 10 (Array.length out);
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Harness.Parallel.Completed (J.Int v) ->
          Alcotest.(check int) (Printf.sprintf "job %d" i) (i * i) v
      | _ -> Alcotest.failf "job %d did not complete" i)
    out;
  (* More workers than jobs is clamped, zero jobs is empty. *)
  Alcotest.(check int) "count 0" 0 (Array.length (P.run ~jobs:4 0 (fun _ -> J.Null)));
  Alcotest.check_raises "jobs 0 rejected"
    (Invalid_argument "Pool.run: jobs must be positive") (fun () ->
      ignore (P.run ~jobs:0 1 (fun _ -> J.Null)));
  Alcotest.check_raises "negative timeout rejected"
    (Invalid_argument "Pool.run: timeout must be positive") (fun () ->
      ignore (P.run ~jobs:1 ~timeout:(-1.0) 1 (fun _ -> J.Null)))

(* Workers persist across jobs and batches: every job on a 1-worker pool
   reports the same worker pid, across two separate batches.  This is
   the property fork-per-job cannot have, and the whole point of the
   pool (warm caches live exactly as long as the worker). *)
let test_pool_workers_persist () =
  let p = P.create ~workers:1 (fun _ -> J.Int (Unix.getpid ())) in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  Alcotest.(check int) "worker count" 1 (P.worker_count p);
  let pids =
    List.concat_map
      (fun batch ->
        List.map
          (fun (_, outcome) ->
            match outcome with
            | Harness.Parallel.Completed (J.Int pid) -> pid
            | _ -> Alcotest.fail "job did not complete")
          (P.run_batch p batch))
      [ [ 0; 1; 2 ]; [ 3; 4 ] ]
  in
  Alcotest.(check int) "five answers" 5 (List.length pids);
  Alcotest.(check bool) "one persistent worker served all jobs" true
    (List.for_all (fun pid -> pid = List.hd pids) pids);
  Alcotest.(check bool) "worker is not the test process" true
    (List.hd pids <> Unix.getpid ())

(* --- fault tolerance --- *)

(* A job that kills its worker on first attempt and succeeds on the
   retry (a crash marker file distinguishes the attempts).  The pool
   must respawn the worker and deliver the retried result; the counters
   record exactly one respawn and jobs+1 dispatches. *)
let test_pool_respawn_retry_success () =
  let marker = Filename.temp_file "pool_retry" ".flag" in
  Sys.remove marker;
  Fun.protect ~finally:(fun () -> if Sys.file_exists marker then Sys.remove marker)
  @@ fun () ->
  let module Obs = Harness.Obs in
  let ambient = Obs.level () in
  Obs.set_level Obs.Counters;
  Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
  let snap = Obs.snapshot () in
  let out =
    P.run ~jobs:2 3 (fun i ->
        if i = 1 && not (Sys.file_exists marker) then begin
          let oc = open_out marker in
          close_out oc;
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        J.Int (i * 10))
  in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Harness.Parallel.Completed (J.Int v) ->
          Alcotest.(check int) (Printf.sprintf "job %d" i) (i * 10) v
      | Harness.Parallel.Completed _ ->
          Alcotest.failf "job %d returned an unexpected payload" i
      | Harness.Parallel.Crashed { reason; _ } ->
          Alcotest.failf "job %d crashed despite retry: %s" i reason)
    out;
  Alcotest.(check bool) "first attempt really crashed" true
    (Sys.file_exists marker);
  let d = Obs.delta snap in
  Alcotest.(check bool) "one respawn recorded" true
    (List.mem_assoc "pool.respawns" d.Obs.counters
    && List.assoc "pool.respawns" d.Obs.counters = 1);
  Alcotest.(check bool) "dispatches = jobs + one retry" true
    (List.assoc_opt "pool.dispatches" d.Obs.counters = Some 4)

(* A worker that dies on both attempts: the job is Crashed with the
   signal named, siblings are untouched. *)
let test_pool_persistent_crash () =
  let out =
    P.run ~jobs:2 4 (fun i ->
        if i = 2 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        J.Int i)
  in
  (match out.(2) with
  | Harness.Parallel.Crashed { reason; _ } ->
      Alcotest.(check string) "reason names the signal"
        "worker killed by SIGKILL" reason
  | Harness.Parallel.Completed _ -> Alcotest.fail "crasher completed?");
  List.iter
    (fun i ->
      match out.(i) with
      | Harness.Parallel.Completed (J.Int v) ->
          Alcotest.(check int) (Printf.sprintf "sibling %d" i) i v
      | _ -> Alcotest.failf "sibling %d crashed" i)
    [ 0; 1; 3 ]

(* A timed-out job is killed and reported with the timeout reason and
   no retry (the deadline must not be paid twice); siblings complete. *)
let test_pool_timeout () =
  let module Obs = Harness.Obs in
  let ambient = Obs.level () in
  Obs.set_level Obs.Counters;
  Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
  let snap = Obs.snapshot () in
  let out =
    P.run ~jobs:2 ~timeout:0.2 3 (fun i ->
        if i = 1 then ignore (Unix.select [] [] [] 30.0);
        J.Int i)
  in
  (match out.(1) with
  | Harness.Parallel.Crashed { reason; wall } ->
      Alcotest.(check bool) "reason says timed out" true
        (contains reason "timed out after 0.2 s");
      Alcotest.(check bool) "wall at least the budget" true (wall >= 0.2)
  | Harness.Parallel.Completed _ -> Alcotest.fail "sleeper completed?");
  List.iter
    (fun i ->
      match out.(i) with
      | Harness.Parallel.Completed (J.Int v) ->
          Alcotest.(check int) (Printf.sprintf "fast job %d" i) i v
      | _ -> Alcotest.failf "fast job %d crashed" i)
    [ 0; 2 ];
  let d = Obs.delta snap in
  Alcotest.(check bool) "timeout not retried: dispatches = jobs" true
    (List.assoc_opt "pool.dispatches" d.Obs.counters = Some 3)

(* --- work stealing --- *)

(* 2 workers, 12 jobs dealt round-robin, job 0 sleeps: worker 1 drains
   its own six fast jobs and must steal from worker 0's queue, so the
   batch finishes long before the sleeper alone would let worker 0's
   share.  The steal count is timing-dependent by nature — which is
   exactly why pool.steals is a volatile counter — but under a 0.6 s
   head start at least one steal is certain. *)
let test_pool_work_stealing () =
  let module Obs = Harness.Obs in
  let ambient = Obs.level () in
  Obs.set_level Obs.Counters;
  Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
  let snap = Obs.snapshot () in
  let p =
    P.create ~workers:2 (fun i ->
        if i = 0 then ignore (Unix.select [] [] [] 0.6);
        J.Int i)
  in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  let results = P.run_batch p (List.init 12 Fun.id) in
  Alcotest.(check (list int)) "argument order kept" (List.init 12 Fun.id)
    (List.map fst results);
  List.iter
    (fun (i, outcome) ->
      match outcome with
      | Harness.Parallel.Completed (J.Int v) ->
          Alcotest.(check int) (Printf.sprintf "job %d" i) i v
      | _ -> Alcotest.failf "job %d crashed" i)
    results;
  let d = Obs.delta snap in
  Alcotest.(check bool) "dispatches deterministic" true
    (List.assoc_opt "pool.dispatches" d.Obs.counters = Some 12);
  Alcotest.(check bool) "at least one steal, recorded volatile" true
    (match List.assoc_opt "pool.steals" d.Obs.volatile with
    | Some n -> n >= 1
    | None -> false);
  Alcotest.(check bool) "steals never in the deterministic section" true
    (not (List.mem_assoc "pool.steals" d.Obs.counters))

(* --- health checks and drain --- *)

let test_pool_alive_ping_shutdown () =
  let p =
    P.create ~workers:2 (fun i ->
        (* Job 0 arms a time bomb: the worker answers normally, then the
           default SIGALRM disposition kills it ~1 s later while idle. *)
        if i = 0 then ignore (Unix.alarm 1);
        J.Int i)
  in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  Alcotest.(check (list bool)) "all alive at start" [ true; true ] (P.alive p);
  Alcotest.(check (list bool)) "all answer ping" [ true; true ] (P.ping p);
  let b1 = P.run_batch p [ 0; 1 ] in
  Alcotest.(check int) "first batch done" 2 (List.length b1);
  ignore (Unix.select [] [] [] 1.3);
  (* The bomb went off while the worker sat idle: liveness sees it. *)
  Alcotest.(check (list bool)) "dead worker detected" [ false; true ]
    (P.alive p);
  Alcotest.(check (list bool)) "ping agrees" [ false; true ] (P.ping p);
  (* The next batch respawns the dead slot and completes on both. *)
  let b2 = P.run_batch p [ 5; 6 ] in
  List.iter
    (fun (i, outcome) ->
      match outcome with
      | Harness.Parallel.Completed (J.Int v) ->
          Alcotest.(check int) (Printf.sprintf "job %d after respawn" i) i v
      | _ -> Alcotest.failf "job %d crashed after respawn" i)
    b2;
  Alcotest.(check (list bool)) "full strength again" [ true; true ] (P.alive p);
  P.shutdown p;
  P.shutdown p (* idempotent *);
  Alcotest.(check (list bool)) "drained" [ false; false ] (P.alive p);
  Alcotest.check_raises "run_batch after shutdown"
    (Invalid_argument "Pool.run_batch: pool is shut down") (fun () ->
      ignore (P.run_batch p [ 1 ]))

(* --- asynchronous service interface --- *)

(* Drive a service pool's submit/step cycle the way the daemon does:
   select on resp_fds, hand the readable set to step, collect
   settlements until nothing is pending. *)
let drive ?(budget = 30.0) p =
  let deadline = Unix.gettimeofday () +. budget in
  let out = ref [] in
  while P.pending p > 0 do
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "service pool did not settle in time";
    let fds = P.resp_fds p in
    let readable, _, _ =
      try Unix.select fds [] [] 0.2
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    out := !out @ P.step p ~readable
  done;
  !out

let test_pool_service_submit_step () =
  let p =
    P.create_service ~workers:2 (fun arg ->
        match J.member "x" arg with
        | Some (J.Int x) -> J.Obj [ ("ok", J.Bool true); ("y", J.Int (x * x)) ]
        | _ -> J.Obj [ ("ok", J.Bool false) ])
  in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  List.iter
    (fun t -> P.submit p ~arg:(J.Obj [ ("x", J.Int t) ]) (100 + t))
    [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "five pending" 5 (P.pending p);
  let settled = drive p in
  Alcotest.(check int) "five settled" 5 (List.length settled);
  List.iter
    (fun t ->
      match List.assoc_opt (100 + t) settled with
      | Some (Harness.Parallel.Completed json) ->
          Alcotest.(check bool)
            (Printf.sprintf "ticket %d payload" t)
            true
            (J.member "y" json = Some (J.Int (t * t)))
      | Some (Harness.Parallel.Crashed { reason; _ }) ->
          Alcotest.failf "ticket %d crashed: %s" t reason
      | None -> Alcotest.failf "ticket %d never settled" t)
    [ 0; 1; 2; 3; 4 ];
  (* arg-handler pairing is validated both ways, batch mode is locked. *)
  Alcotest.check_raises "submit without payload"
    (Invalid_argument "Pool.submit: this pool's handler needs a payload")
    (fun () -> P.submit p 9);
  Alcotest.check_raises "run_batch on a service pool"
    (Invalid_argument "Pool.run_batch: service pools take jobs through submit")
    (fun () -> ignore (P.run_batch p [ 1 ]));
  let batch = P.create ~workers:1 (fun i -> J.Int i) in
  Fun.protect ~finally:(fun () -> P.shutdown batch) @@ fun () ->
  Alcotest.check_raises "payload on a batch pool"
    (Invalid_argument "Pool.submit: this pool's handler takes no payload")
    (fun () -> P.submit batch ~arg:J.Null 1)

let test_pool_service_crash_and_deadline () =
  let p =
    P.create_service ~workers:2 ~timeout:0.3 (fun arg ->
        match J.member "op" arg with
        | Some (J.String "crash") -> Unix._exit 9
        | Some (J.String "hang") ->
            ignore (Unix.select [] [] [] 30.0);
            J.Null
        | _ -> J.Obj [ ("fine", J.Bool true) ])
  in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  P.submit p ~arg:(J.Obj [ ("op", J.String "crash") ]) 1;
  P.submit p ~arg:(J.Obj [ ("op", J.String "hang") ]) 2;
  P.submit p ~arg:(J.Obj [ ("op", J.String "echo") ]) 3;
  let settled = drive p in
  (match List.assoc_opt 1 settled with
  | Some (Harness.Parallel.Crashed { reason; _ }) ->
      Alcotest.(check bool) "crash reported after retry" true
        (contains reason "exited with code 9")
  | _ -> Alcotest.fail "crasher did not crash");
  (match List.assoc_opt 2 settled with
  | Some (Harness.Parallel.Crashed { reason; _ }) ->
      Alcotest.(check bool) "deadline enforced" true
        (contains reason "timed out after 0.3 s")
  | _ -> Alcotest.fail "hanger did not time out");
  (match List.assoc_opt 3 settled with
  | Some (Harness.Parallel.Completed json) ->
      Alcotest.(check bool) "sibling fine" true
        (J.member "fine" json = Some (J.Bool true))
  | _ -> Alcotest.fail "sibling lost");
  (* the pool is back at full strength for more submissions *)
  P.submit p ~arg:(J.Obj [ ("op", J.String "echo") ]) 4;
  match drive p with
  | [ (4, Harness.Parallel.Completed _) ] -> ()
  | _ -> Alcotest.fail "pool unusable after crashes"

(* --- worker signal dispositions and orphan reaping --- *)

let poll_until_gone ?(budget = 5.0) pids =
  (* "Gone" means exited: the pid is unknown to the kernel, or its
     /proc stat shows it as a zombie awaiting an init that may or may
     not reap promptly.  Both prove the worker's process ran to exit. *)
  let dead pid =
    match Unix.kill pid 0 with
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
    | exception Unix.Unix_error _ -> false
    | () -> (
        match
          let ic = open_in (Printf.sprintf "/proc/%d/stat" pid) in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> input_line ic)
        with
        | line -> (
            (* state is the first field after the parenthesized comm *)
            match String.rindex_opt line ')' with
            | Some i when i + 2 < String.length line -> line.[i + 2] = 'Z'
            | _ -> false)
        | exception Sys_error _ -> true)
  in
  let deadline = Unix.gettimeofday () +. budget in
  let rec wait () =
    if List.for_all dead pids then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      ignore (Unix.select [] [] [] 0.05);
      wait ()
    end
  in
  wait ()

(* Workers must die to a SIGTERM delivered directly to them (the shape a
   supervisor's process-group signal takes) even when the pool's parent
   had installed a flag-setting handler before forking — the worker_loop
   resets the inherited disposition to the lethal default.  Before the
   reset, the inherited handler swallowed the signal and the worker sat
   in its read loop forever. *)
let test_pool_worker_dies_on_direct_sigterm () =
  let old = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigterm old) @@ fun () ->
  let p = P.create ~workers:2 (fun i -> J.Int i) in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  let pids = P.worker_pids p in
  Alcotest.(check int) "two workers" 2 (List.length pids);
  (* a pong proves the worker reached its frame loop — i.e. is past the
     point where it reset the inherited SIGTERM disposition *)
  Alcotest.(check (list bool)) "workers up" [ true; true ] (P.ping p);
  List.iter (fun pid -> Unix.kill pid Sys.sigterm) pids;
  Alcotest.(check bool) "workers died despite inherited handler" true
    (poll_until_gone pids);
  Alcotest.(check (list bool)) "pool sees both dead" [ false; false ]
    (P.alive p)

(* A pool parent killed outright (SIGKILL: no drain, no atexit) must not
   orphan live workers: the kernel closes the parent's request-pipe
   ends, each worker reads EOF at its next frame boundary and exits. *)
let test_pool_orphans_reaped_on_parent_kill () =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (try
         let p = P.create ~workers:2 (fun i -> J.Int i) in
         Harness.Wire.write_frame w
           (J.List (List.map (fun pid -> J.Int pid) (P.worker_pids p)));
         (* hold the pool open until the parent kills us *)
         ignore (Unix.select [] [] [] 600.0)
       with _ -> Unix._exit 2);
      Unix._exit 0
  | mini ->
      Unix.close w;
      let pids =
        match Harness.Wire.read_frame r with
        | Some (Ok (J.List l)) ->
            List.map (function J.Int p -> p | _ -> Alcotest.fail "bad pid") l
        | _ -> Alcotest.fail "mini-parent never reported its workers"
      in
      Unix.close r;
      Alcotest.(check int) "two workers reported" 2 (List.length pids);
      Unix.kill mini Sys.sigkill;
      ignore (Harness.Wire.waitpid_retry mini);
      Alcotest.(check bool) "workers exit after parent SIGKILL" true
        (poll_until_gone pids)

(* --- registry sweeps through the pool engine --- *)

let descr ~id run =
  {
    E.id;
    claim = "claim " ^ id;
    expected = "expected " ^ id;
    tag = E.Table;
    game = "tuple";
    run;
  }

let with_clean_registry f =
  R.clear ();
  Fun.protect ~finally:R.clear f

let test_registry_pool_matches_sequential () =
  with_clean_registry (fun () ->
      for i = 1 to 5 do
        let id = Printf.sprintf "P%d" i in
        R.register
          (descr ~id (fun ctx ->
               E.outf ctx "result %d\n" (i * i);
               ignore (E.check ctx ~label:"square" (i * i = i * i));
               E.measure ctx "sq" (E.Int (i * i));
               E.measure ctx "q" (E.Rat (Exact.Q.make i (i + 1)))))
      done;
      let seq = R.run ~echo:ignore (R.all ()) in
      let strip results =
        J.to_string (R.strip_timings (R.report_json ~scale:E.Full results))
      in
      List.iter
        (fun jobs ->
          let pooled =
            R.run_parallel ~jobs ~dispatch:`Pool ~echo:ignore (R.all ())
          in
          Alcotest.(check (list string))
            (Printf.sprintf "registration order kept at %d workers" jobs)
            (List.map (fun (r : E.result) -> r.E.id) seq)
            (List.map (fun (r : E.result) -> r.E.id) pooled);
          Alcotest.(check string)
            (Printf.sprintf "stripped artifact byte-identical at %d workers"
               jobs)
            (strip seq) (strip pooled);
          Alcotest.(check bool) "no crashes" true
            ((R.summarize pooled).R.crashed = 0))
        [ 1; 2; 4 ])

let test_registry_pool_crash_isolation () =
  with_clean_registry (fun () ->
      List.iter
        (fun id ->
          R.register
            (descr ~id (fun ctx -> ignore (E.check ctx ~label:"fine" true))))
        [ "C1"; "C2"; "C3" ];
      let results =
        R.run_parallel ~jobs:2 ~dispatch:`Pool ~force_crash:[ "C2" ]
          ~echo:ignore (R.all ())
      in
      let find id =
        match List.find_opt (fun (r : E.result) -> r.E.id = id) results with
        | Some r -> r
        | None -> Alcotest.failf "no result for %s" id
      in
      let c2 = find "C2" in
      Alcotest.(check bool) "forced experiment crashed (after its retry)" true
        (c2.E.verdict = E.Crashed);
      Alcotest.(check bool) "reason names the signal" true
        (List.exists (fun l -> contains l "SIGKILL") c2.E.failed_labels);
      List.iter
        (fun id ->
          Alcotest.(check bool) (id ^ " unaffected") true
            ((find id).E.verdict = E.Pass))
        [ "C1"; "C3" ];
      Alcotest.(check int) "summary counts the crash" 1
        (R.summarize results).R.crashed)

let () =
  Alcotest.run "pool"
    [
      ( "classify",
        [
          Alcotest.test_case "deadline race" `Quick test_classify_deadline_race;
        ] );
      ( "wire",
        [
          Alcotest.test_case "decoder split feed" `Quick
            test_wire_decoder_split_feed;
          Alcotest.test_case "decoder bad header" `Quick
            test_wire_decoder_bad_header;
          Alcotest.test_case "frame roundtrip" `Quick test_wire_frame_roundtrip;
        ] );
      ( "eintr",
        [
          Alcotest.test_case "fork runner under signal storm" `Quick
            test_parallel_eintr_storm;
          Alcotest.test_case "pool under signal storm" `Quick
            test_pool_eintr_storm;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run basics" `Quick test_pool_run_basics;
          Alcotest.test_case "workers persist" `Quick test_pool_workers_persist;
          Alcotest.test_case "respawn + retry success" `Quick
            test_pool_respawn_retry_success;
          Alcotest.test_case "persistent crash" `Quick
            test_pool_persistent_crash;
          Alcotest.test_case "timeout" `Quick test_pool_timeout;
          Alcotest.test_case "work stealing" `Quick test_pool_work_stealing;
          Alcotest.test_case "alive/ping/shutdown" `Quick
            test_pool_alive_ping_shutdown;
        ] );
      ( "service",
        [
          Alcotest.test_case "submit/step" `Quick test_pool_service_submit_step;
          Alcotest.test_case "crash and deadline" `Quick
            test_pool_service_crash_and_deadline;
        ] );
      ( "signals",
        [
          Alcotest.test_case "worker dies on direct SIGTERM" `Quick
            test_pool_worker_dies_on_direct_sigterm;
          Alcotest.test_case "orphans reaped on parent kill" `Quick
            test_pool_orphans_reaped_on_parent_kill;
        ] );
      ( "registry",
        [
          Alcotest.test_case "pool matches sequential" `Quick
            test_registry_pool_matches_sequential;
          Alcotest.test_case "pool crash isolation" `Quick
            test_registry_pool_crash_isolation;
        ] );
    ]
