(* Regression harness for the CLI's error discipline: every subcommand
   fed malformed input must exit 1 with a single-line "error: ..."
   diagnostic on stderr — never a backtrace (the uncaught-exception
   path exits 2).

   Run as: cli_errors.exe path/to/defender_cli.exe
   (the dune rule passes %{exe:../bin/defender_cli.exe}). *)

let cli = ref ""
let failures = ref 0

(* Run the CLI with [args]; capture exit status and stderr. *)
let run args =
  let err_file = Filename.temp_file "cli_errors" ".stderr" in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let err = Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process !cli (Array.of_list (!cli :: args)) Unix.stdin null err
  in
  Unix.close null;
  Unix.close err;
  let _, status = Unix.waitpid [] pid in
  let ic = open_in err_file in
  let n = in_channel_length ic in
  let stderr_text = really_input_string ic n in
  close_in ic;
  Sys.remove err_file;
  (status, stderr_text)

let check name args =
  let status, stderr_text = run args in
  let bad = ref false in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        bad := true;
        incr failures;
        Printf.printf "FAIL %s: %s\n  argv: %s\n  stderr: %s\n" name msg
          (String.concat " " args)
          (String.trim stderr_text))
      fmt
  in
  (match status with
  | Unix.WEXITED 1 -> ()
  | Unix.WEXITED c -> fail "exit %d, wanted 1" c
  | Unix.WSIGNALED s -> fail "killed by signal %d" s
  | Unix.WSTOPPED s -> fail "stopped by signal %d" s);
  let first_line =
    match String.index_opt stderr_text '\n' with
    | Some i -> String.sub stderr_text 0 i
    | None -> stderr_text
  in
  if String.length first_line < 7 || String.sub first_line 0 7 <> "error: "
  then fail "stderr does not start with \"error: \"";
  (* a backtrace would add "Raised at ..." lines after the message *)
  let lines =
    String.split_on_char '\n' stderr_text
    |> List.filter (fun l -> String.trim l <> "")
  in
  if List.length lines > 1 then fail "diagnostic is not a single line";
  if not !bad then Printf.printf "ok   %s\n" name

let () =
  (match Sys.argv with
  | [| _; path |] -> cli := path
  | _ ->
      prerr_endline "usage: cli_errors.exe CLI_PATH";
      exit 2);

  let bogus_profile = Filename.temp_file "cli_errors" ".profile" in
  let oc = open_out bogus_profile in
  output_string oc "this is not a profile\n";
  close_out oc;

  let missing = Filename.temp_file "cli_errors" ".edges" in
  Sys.remove missing;

  (* graph-input validation, shared by the compute subcommands *)
  check "gen: no family" [ "gen" ];
  check "solve: missing edge file" [ "solve"; "--file"; missing; "-k"; "1" ];
  check "solve: malformed family" [ "solve"; "--family"; "frobnicate:9" ];
  check "solve: file and family"
    [ "solve"; "--file"; missing; "--family"; "path:4" ];
  check "analyze: no graph" [ "analyze" ];
  check "simulate: malformed family" [ "simulate"; "--family"; "gnp:banana" ];
  (* semantically invalid model parameters (typed, not cmdliner usage) *)
  check "solve: k out of range"
    [ "solve"; "--family"; "path:4"; "-k"; "99"; "--nu"; "2" ];
  check "pure: nu < 1" [ "pure"; "--family"; "path:4"; "--nu"; "0" ];
  (* malformed saved-profile text *)
  check "verify: bad profile"
    [ "verify"; "--family"; "path:4"; "--load"; bogus_profile ];
  check "verify: missing profile"
    [ "verify"; "--family"; "path:4"; "--load"; missing ];
  (* daemon endpoints: address validation and connection failure *)
  check "serve: no address" [ "serve" ];
  check "serve: two addresses"
    [ "serve"; "--socket"; "/tmp/x.sock"; "--port"; "7001" ];
  check "query: no daemon"
    [ "query"; "--socket"; "/tmp/cli_errors_no_such_daemon.sock";
      "--request"; "{\"op\":\"ping\"}" ];
  check "query: bad request json"
    [ "query"; "--socket"; "/tmp/cli_errors_no_such_daemon.sock";
      "--request"; "{not json" ];
  check "query: malformed family (encoded client-side)"
    [ "query"; "--socket"; "/tmp/cli_errors_no_such_daemon.sock";
      "--family"; "frobnicate:9" ];

  Sys.remove bogus_profile;
  if !failures > 0 then (
    Printf.printf "%d failure(s)\n" !failures;
    exit 1)
  else print_endline "all CLI error-path checks passed"
