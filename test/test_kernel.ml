(* Property tests for the incremental exact-payoff kernel: every kernel
   query must be *exactly* equal (Q.equal, no tolerance) to the naive
   support-rescanning oracle, on fresh profiles and after arbitrary chains
   of replace_vp / replace_tp.  Also covers the fictitious-play
   incremental-vs-naive equivalence and the greedy_response guard
   regressions. *)

open Netgraph
module Q = Exact.Q
module Profile = Defender.Profile
module K = Defender.Payoff_kernel

let q = Alcotest.testable Q.pp Q.equal

(* --- random instances --- *)

let random_finite rng g =
  (* Non-uniform distribution with exact rational weights summing to 1. *)
  let n = Graph.n g in
  let vertices = Array.init n Fun.id in
  let size = 1 + Prng.Rng.int rng n in
  let support =
    Array.to_list (Prng.Rng.sample_without_replacement rng ~count:size vertices)
  in
  let weights = List.map (fun v -> (v, 1 + Prng.Rng.int rng 6)) support in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  Dist.Finite.make (List.map (fun (v, w) -> (v, Q.make w total)) weights)

let random_tp rng g k =
  let edge_ids = Array.init (Graph.m g) Fun.id in
  let tuples =
    List.init
      (1 + Prng.Rng.int rng 3)
      (fun _ ->
        Defender.Tuple.of_list g
          (Array.to_list
             (Prng.Rng.sample_without_replacement rng ~count:k edge_ids)))
    |> List.sort_uniq Defender.Tuple.compare
  in
  let weights = List.map (fun t -> (t, 1 + Prng.Rng.int rng 6)) tuples in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  List.map (fun (t, w) -> (t, Q.make w total)) weights

let random_model_profile rng =
  let g = Gen.gnp_connected rng ~n:(4 + Prng.Rng.int rng 4) ~p:0.45 in
  let nu = 1 + Prng.Rng.int rng 3 in
  let k = 1 + Prng.Rng.int rng (min 3 (Graph.m g)) in
  let m = Defender.Model.make ~graph:g ~nu ~k in
  let vp = List.init nu (fun _ -> random_finite rng g) in
  let tp = random_tp rng g k in
  (m, Profile.make_mixed m ~vp ~tp)

let random_tuple rng g k =
  let edge_ids = Array.init (Graph.m g) Fun.id in
  Defender.Tuple.of_list g
    (Array.to_list (Prng.Rng.sample_without_replacement rng ~count:k edge_ids))

(* Assert every kernel query on [prof] equals the naive oracle exactly. *)
let check_kernel_vs_naive ?(label = "") rng prof =
  let m = Profile.model prof in
  let g = Defender.Model.graph m in
  for v = 0 to Graph.n g - 1 do
    Alcotest.check q
      (Printf.sprintf "%shit_prob %d" label v)
      (Profile.hit_prob ~naive:true prof v)
      (Profile.hit_prob prof v);
    Alcotest.check q
      (Printf.sprintf "%sexpected_load %d" label v)
      (Profile.expected_load ~naive:true prof v)
      (Profile.expected_load prof v)
  done;
  for id = 0 to Graph.m g - 1 do
    Alcotest.check q
      (Printf.sprintf "%sexpected_load_edge %d" label id)
      (Profile.expected_load_edge ~naive:true prof id)
      (Profile.expected_load_edge prof id)
  done;
  for _ = 1 to 3 do
    let t = random_tuple rng g (Defender.Model.k m) in
    Alcotest.check q
      (Printf.sprintf "%sexpected_load_tuple" label)
      (Profile.expected_load_tuple ~naive:true prof t)
      (Profile.expected_load_tuple prof t)
  done

(* Assert the kernel of [prof] has the same tables as a kernel built from
   scratch on the same strategies (catches drift in incremental patches
   that the naive comparison alone would also catch, but localizes it to
   the table level). *)
let check_kernel_vs_fresh ?(label = "") prof =
  let fresh =
    Profile.make_mixed (Profile.model prof)
      ~vp:(Array.to_list (Profile.vp_strategies prof))
      ~tp:(Profile.tp_strategy prof)
  in
  let tables k =
    ( K.hit_table_copy k, K.load_table_copy k, K.edge_load_table_copy k )
  in
  let h1, l1, e1 = tables (Profile.kernel prof) in
  let h2, l2, e2 = tables (Profile.kernel fresh) in
  let eq name a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s%s table = fresh rebuild" label name)
      true
      (Array.length a = Array.length b && Array.for_all2 Q.equal a b)
  in
  eq "hit" h1 h2;
  eq "load" l1 l2;
  eq "edge_load" e1 e2

(* --- fresh profiles --- *)

let test_fresh_profiles () =
  let rng = Prng.Rng.create 1337 in
  for i = 1 to 40 do
    let _, prof = random_model_profile rng in
    check_kernel_vs_naive ~label:(Printf.sprintf "fresh %d: " i) rng prof
  done

(* --- replace_vp chains --- *)

let test_replace_vp_chain () =
  let rng = Prng.Rng.create 7001 in
  for i = 1 to 15 do
    let m, prof = random_model_profile rng in
    let g = Defender.Model.graph m in
    let nu = Defender.Model.nu m in
    let prof = ref prof in
    for step = 1 to 8 do
      let player = Prng.Rng.int rng nu in
      prof := Profile.replace_vp !prof player (random_finite rng g);
      let label = Printf.sprintf "vp chain %d step %d: " i step in
      check_kernel_vs_naive ~label rng !prof;
      check_kernel_vs_fresh ~label !prof
    done
  done

(* --- replace_tp chains --- *)

let test_replace_tp_chain () =
  let rng = Prng.Rng.create 7002 in
  for i = 1 to 15 do
    let m, prof = random_model_profile rng in
    let g = Defender.Model.graph m in
    let k = Defender.Model.k m in
    let prof = ref prof in
    for step = 1 to 5 do
      prof := Profile.replace_tp !prof (random_tp rng g k);
      let label = Printf.sprintf "tp chain %d step %d: " i step in
      check_kernel_vs_naive ~label rng !prof;
      check_kernel_vs_fresh ~label !prof
    done
  done

(* --- interleaved deviations --- *)

let test_interleaved_chain () =
  let rng = Prng.Rng.create 7003 in
  for i = 1 to 15 do
    let m, prof = random_model_profile rng in
    let g = Defender.Model.graph m in
    let nu = Defender.Model.nu m in
    let k = Defender.Model.k m in
    let prof = ref prof in
    for step = 1 to 10 do
      (if Prng.Rng.int rng 2 = 0 then
         let player = Prng.Rng.int rng nu in
         prof := Profile.replace_vp !prof player (random_finite rng g)
       else prof := Profile.replace_tp !prof (random_tp rng g k));
      let label = Printf.sprintf "mixed chain %d step %d: " i step in
      check_kernel_vs_naive ~label rng !prof;
      check_kernel_vs_fresh ~label !prof
    done
  done

(* --- derived consumers agree across both paths --- *)

let test_consumers_agree () =
  let rng = Prng.Rng.create 7004 in
  for _ = 1 to 20 do
    let _, prof = random_model_profile rng in
    Alcotest.check q "vp_best_value naive = kernel"
      (Defender.Best_response.vp_best_value ~naive:true prof)
      (Defender.Best_response.vp_best_value prof);
    Alcotest.check q "tp_best_value naive = kernel"
      (Defender.Best_response.tp_best_value_exhaustive ~naive:true prof)
      (Defender.Best_response.tp_best_value_exhaustive prof);
    Alcotest.check q "expected_tp naive = kernel"
      (Defender.Profit.expected_tp ~naive:true prof)
      (Defender.Profit.expected_tp prof);
    let exhaustive = Defender.Verify.Exhaustive 500_000 in
    Alcotest.(check bool) "characterization naive = kernel" true
      (Defender.Characterization.holds ~naive:true exhaustive prof
      = Defender.Characterization.holds exhaustive prof);
    Alcotest.(check bool) "mixed_ne naive = kernel" true
      (Defender.Verify.verdict_is_confirmed
         (Defender.Verify.mixed_ne ~naive:true exhaustive prof)
      = Defender.Verify.verdict_is_confirmed
          (Defender.Verify.mixed_ne exhaustive prof))
  done

(* --- kernel primitives --- *)

let test_vertex_incidence_sums () =
  (* P4: edges e0=(0,1), e1=(1,2), e2=(2,3); weights 1/2, 1/3, 1/5. *)
  let g = Gen.path 4 in
  let w = [| Q.make 1 2; Q.make 1 3; Q.make 1 5 |] in
  let sums = K.vertex_incidence_sums g w in
  Alcotest.check q "v0" (Q.make 1 2) sums.(0);
  Alcotest.check q "v1" (Q.add (Q.make 1 2) (Q.make 1 3)) sums.(1);
  Alcotest.check q "v2" (Q.add (Q.make 1 3) (Q.make 1 5)) sums.(2);
  Alcotest.check q "v3" (Q.make 1 5) sums.(3);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Payoff_kernel.vertex_incidence_sums: need one weight per edge")
    (fun () -> ignore (K.vertex_incidence_sums g [| Q.one |]))

(* --- fictitious play: incremental vs history-rescanning naive mode --- *)

let fictitious_results_equal a b =
  let open Sim.Fictitious in
  a.rounds = b.rounds
  && a.avg_gain = b.avg_gain
  && a.tail_avg_gain = b.tail_avg_gain
  && a.attack_frequency = b.attack_frequency
  && a.scan_frequency = b.scan_frequency
  && a.gain_series = b.gain_series

let test_fictitious_naive_identical () =
  let configs =
    [
      (Gen.path 6, 3, 2, 60);
      (Gen.cycle 8, 4, 2, 60);
      (Gen.grid 3 4, 5, 3, 40);
    ]
  in
  List.iter
    (fun (g, nu, k, rounds) ->
      let m = Defender.Model.make ~graph:g ~nu ~k in
      let incremental =
        Sim.Fictitious.run (Prng.Rng.create 99) m ~rounds
      in
      let naive =
        Sim.Fictitious.run ~naive:true (Prng.Rng.create 99) m ~rounds
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d bit-for-bit identical" (Graph.n g))
        true
        (fictitious_results_equal incremental naive))
    configs

(* --- greedy_response guard regressions --- *)

let test_greedy_response_guards () =
  let g = Gen.path 3 in
  (* m = 2 edges.  k out of range raises instead of looping/crashing. *)
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Fictitious.greedy_response: k = 0 outside [1, m = 2]")
    (fun () -> ignore (Sim.Fictitious.greedy_response g 0 [| 0; 0; 0 |]));
  Alcotest.check_raises "k > m"
    (Invalid_argument "Fictitious.greedy_response: k = 3 outside [1, m = 2]")
    (fun () -> ignore (Sim.Fictitious.greedy_response g 3 [| 0; 0; 0 |]));
  (* All-zero loads: every pick ties at gain 0, still a valid k-tuple. *)
  let t = Sim.Fictitious.greedy_response g 2 [| 0; 0; 0 |] in
  Alcotest.(check int) "zero loads: full tuple" 2
    (List.length (Defender.Tuple.to_list t));
  (* Negative loads: every gain is below the -1 sentinel, so the old code
     indexed Graph.edge g (-1); the fallback must pick remaining edges. *)
  let t = Sim.Fictitious.greedy_response g 2 [| -5; -5; -5 |] in
  Alcotest.(check int) "negative loads: full tuple" 2
    (List.length (Defender.Tuple.to_list t));
  (* Second pass of k=2 on a star: after the first pick covers the hub,
     remaining gains are all 0 (> -1), fine; with negative leaf loads the
     sentinel path triggers on the second pick. *)
  let s = Gen.star 4 in
  let t = Sim.Fictitious.greedy_response s 2 [| 10; -3; -3; -3 |] in
  Alcotest.(check int) "sentinel on second pick: full tuple" 2
    (List.length (Defender.Tuple.to_list t))

(* --- Finite error attribution --- *)

let test_finite_error_attribution () =
  Alcotest.check_raises "make attributes itself"
    (Invalid_argument "Finite.make: negative probability") (fun () ->
      ignore (Dist.Finite.make [ (0, Q.make 1 2); (1, Q.make (-1) 2) ]));
  Alcotest.check_raises "make reports bad sum"
    (Invalid_argument "Finite.make: probabilities sum to 1/2, not 1")
    (fun () -> ignore (Dist.Finite.make [ (0, Q.make 1 2) ]));
  (* map routes through the shared builder with its own caller name; a
     merging map must stay a valid distribution. *)
  let d = Dist.Finite.make [ (0, Q.make 1 3); (1, Q.make 2 3) ] in
  let merged = Dist.Finite.map d ~f:(fun _ -> 7) in
  Alcotest.check q "map merges mass" Q.one (Dist.Finite.prob merged 7)

let () =
  Alcotest.run "kernel"
    [
      ( "kernel = naive (exact)",
        [
          Alcotest.test_case "fresh profiles" `Quick test_fresh_profiles;
          Alcotest.test_case "replace_vp chains" `Quick test_replace_vp_chain;
          Alcotest.test_case "replace_tp chains" `Quick test_replace_tp_chain;
          Alcotest.test_case "interleaved chains" `Quick test_interleaved_chain;
          Alcotest.test_case "consumers agree" `Quick test_consumers_agree;
          Alcotest.test_case "vertex incidence sums" `Quick
            test_vertex_incidence_sums;
        ] );
      ( "fictitious play",
        [
          Alcotest.test_case "naive mode bit-for-bit" `Quick
            test_fictitious_naive_identical;
          Alcotest.test_case "greedy_response guards" `Quick
            test_greedy_response_guards;
        ] );
      ( "dist",
        [
          Alcotest.test_case "error attribution" `Quick
            test_finite_error_attribution;
        ] );
    ]
