(* Properties of Graph6.canonical — the cache key the daemon's solve
   cache rests on.  The load-bearing direction is soundness-as-a-key:
   every relabeling of a graph maps to ONE canonical string (else the
   cache leaks misses), and at small n, canonical equality coincides
   exactly with isomorphism (else the cache conflates distinct
   instances). *)

module G = Netgraph.Graph
module G6 = Netgraph.Graph6
module Gen = Netgraph.Gen

let rng = Prng.Rng.create 0x5eed_ca40

let shuffle n =
  let perm = Array.init n (fun i -> i) in
  Prng.Rng.shuffle_in_place rng perm;
  perm

let relabel g perm =
  let b = G.Builder.create ~edges_hint:(G.m g) ~n:(G.n g) () in
  G.iter_edges g ~f:(fun _ (e : G.edge) ->
      G.Builder.add_edge b perm.(e.u) perm.(e.v));
  G.Builder.finish b

(* --- invariance: 1000 random relabelings, one key --- *)

let tier1_instances () =
  [
    ("path 6", Gen.path 6);
    ("cycle 8", Gen.cycle 8);
    ("star 5", Gen.star 5);
    ("complete 4", Gen.complete 4);
    ("grid 3x4", Gen.grid 3 4);
    ("petersen", Gen.petersen ());
    ("gnp 12", Gen.gnp rng ~n:12 ~p:0.3);
  ]

let test_relabeling_invariance () =
  List.iter
    (fun (name, g) ->
      let n = G.n g in
      let key = G6.canonical g in
      for trial = 1 to 1000 do
        let g' = relabel g (shuffle n) in
        let key' = G6.canonical g' in
        if key' <> key then
          Alcotest.failf "%s trial %d: canonical drifted (%S vs %S)" name trial
            key key'
      done)
    (tier1_instances ())

(* --- exactness at small n: canonical equality ⟺ isomorphism --- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let edge_set g =
  let acc = ref [] in
  G.iter_edges g ~f:(fun _ (e : G.edge) -> acc := (e.u, e.v) :: !acc);
  List.sort_uniq compare !acc

let isomorphic g h =
  let n = G.n g in
  G.n h = n
  && G.m h = G.m g
  &&
  let eh = edge_set h in
  List.exists
    (fun perm ->
      let p = Array.of_list perm in
      edge_set (relabel g p) = eh)
    (permutations (List.init n (fun i -> i)))

let random_graph n =
  let b = G.Builder.create ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.Rng.int rng 100 < 40 then G.Builder.add_edge b u v
    done
  done;
  G.Builder.finish b

let test_canonical_equality_is_isomorphism () =
  (* random pairs at n <= 6, checked against brute force over all n!
     relabelings.  Mix in relabeled copies so the "isomorphic" branch is
     exercised as often as the "not" branch. *)
  for trial = 1 to 60 do
    let n = 3 + Prng.Rng.int rng 4 in
    let g = random_graph n in
    let h =
      if trial mod 2 = 0 then relabel g (shuffle n) else random_graph n
    in
    let same_key = G6.canonical g = G6.canonical h in
    let iso = isomorphic g h in
    if same_key <> iso then
      Alcotest.failf "trial %d (n=%d): canonical %s but graphs %s isomorphic"
        trial n
        (if same_key then "agrees" else "differs")
        (if iso then "ARE" else "are NOT")
  done

(* --- the canonical string is a faithful encoding of the graph --- *)

let degree_multiset g =
  List.sort compare (List.init (G.n g) (G.degree g))

let test_canonical_decodes_to_isomorph () =
  List.iter
    (fun (name, g) ->
      let g' = G6.decode (G6.canonical g) in
      Alcotest.(check int) (name ^ ": n") (G.n g) (G.n g');
      Alcotest.(check int) (name ^ ": m") (G.m g) (G.m g');
      Alcotest.(check (list int))
        (name ^ ": degree multiset")
        (degree_multiset g) (degree_multiset g'))
    (tier1_instances ())

let test_edge_cases () =
  let empty = G.make ~n:0 [] in
  let one = G.make ~n:1 [] in
  Alcotest.(check string) "n=0 stable" (G6.canonical empty) (G6.canonical empty);
  Alcotest.(check int) "n=0 decodes" 0 (G.n (G6.decode (G6.canonical empty)));
  Alcotest.(check int) "n=1 decodes" 1 (G.n (G6.decode (G6.canonical one)));
  (* isolated vertices and a disconnected graph *)
  let g = G.make ~n:7 [ (0, 1); (1, 2); (4, 5) ] in
  let key = G6.canonical g in
  for _ = 1 to 200 do
    let g' = relabel g (shuffle 7) in
    Alcotest.(check string) "disconnected invariance" key (G6.canonical g')
  done;
  (* regular graphs are the refinement's worst case: every vertex looks
     alike, so the exact search must do the separating *)
  let c6 = Gen.cycle 6 in
  let two_triangles =
    G.make ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  Alcotest.(check bool) "C6 vs 2K3 distinguished" false
    (G6.canonical c6 = G6.canonical two_triangles);
  for _ = 1 to 200 do
    Alcotest.(check string) "C6 invariance" (G6.canonical c6)
      (G6.canonical (relabel c6 (shuffle 6)))
  done

let () =
  Alcotest.run "canonical"
    [
      ( "canonical",
        [
          Alcotest.test_case "1000 relabelings per tier-1 instance" `Quick
            test_relabeling_invariance;
          Alcotest.test_case "equality is isomorphism at small n" `Quick
            test_canonical_equality_is_isomorphism;
          Alcotest.test_case "decodes to an isomorph" `Quick
            test_canonical_decodes_to_isomorph;
          Alcotest.test_case "edge cases and regular graphs" `Quick
            test_edge_cases;
        ] );
    ]
