(* Tests for graph6 serialization and the weighted-attacker extension. *)

open Netgraph
module Q = Exact.Q

let q = Alcotest.testable Q.pp Q.equal

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

(* --- graph6 --- *)

let test_graph6_known_vectors () =
  (* K2 is "A_", the empty 2-vertex graph is "A?" (nauty documentation). *)
  Alcotest.(check string) "K2" "A_" (Graph6.encode (Gen.path 2));
  Alcotest.(check string) "empty pair" "A?" (Graph6.encode (Graph.make ~n:2 []));
  Alcotest.(check bool) "decode K2" true
    (Graph.equal (Graph6.decode "A_") (Gen.path 2));
  (* decoding tolerates a trailing newline *)
  Alcotest.(check bool) "newline tolerated" true
    (Graph.equal (Graph6.decode "A_\n") (Gen.path 2))

let test_graph6_roundtrip_families () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " roundtrip") true
        (Graph.equal g (Graph6.decode (Graph6.encode g))))
    (Gen.atlas_small ())

let test_graph6_large_n_form () =
  (* n = 100 > 62 exercises the 3-byte size header. *)
  let g = Gen.cycle 100 in
  let encoded = Graph6.encode g in
  Alcotest.(check int) "marker 126" 126 (Char.code encoded.[0]);
  Alcotest.(check bool) "roundtrip" true (Graph.equal g (Graph6.decode encoded))

(* Rewrite an encoding's size header into the "~~" 36-bit long form by
   hand; [encode ~force_long:true] must agree with this mechanical
   rewrite, and the decoder must accept both. *)
let to_long_form encoded =
  let n, data_start =
    let b i = Char.code encoded.[i] - 63 in
    if b 0 < 63 then (b 0, 1)
    else ((b 1 lsl 12) lor (b 2 lsl 6) lor b 3, 4)
  in
  let header = Bytes.make 8 '~' in
  for i = 0 to 5 do
    Bytes.set header (2 + i) (Char.chr (((n lsr ((5 - i) * 6)) land 63) + 63))
  done;
  Bytes.to_string header
  ^ String.sub encoded data_start (String.length encoded - data_start)

let test_graph6_long_form () =
  (* Regression: the second byte of "~~" is 126, which the pre-fix
     decoder read as the top chunk of an 18-bit size, yielding a bogus
     ~256k-vertex graph.  K2 in long form is "~~?????A_". *)
  Alcotest.(check bool) "K2 long form" true
    (Graph.equal (Graph6.decode "~~?????A_") (Gen.path 2));
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool)
        (name ^ " long-form decode")
        true
        (Graph.equal g (Graph6.decode (to_long_form (Graph6.encode g)))))
    [ ("C100", Gen.cycle 100) ];
  (* the encoder's own 36-bit form: byte-identical to the mechanical
     header rewrite, and a round trip *)
  Alcotest.(check string) "force_long K2" "~~?????A_"
    (Graph6.encode ~force_long:true (Gen.path 2));
  List.iter
    (fun (name, g) ->
      let s = Graph6.encode ~force_long:true g in
      Alcotest.(check string)
        (name ^ " force_long = rewritten header")
        (to_long_form (Graph6.encode g))
        s;
      Alcotest.(check bool)
        (name ^ " force_long roundtrip")
        true
        (Graph.equal g (Graph6.decode s)))
    [ ("K2", Gen.path 2); ("C100", Gen.cycle 100); ("K5", Gen.complete 5) ]

(* --- sparse6 --- *)

let test_sparse6_roundtrip () =
  List.iter
    (fun (name, g) ->
      let s = Graph6.encode_sparse6 g in
      Alcotest.(check bool) (name ^ " has ':' prefix") true (s.[0] = ':');
      Alcotest.(check bool)
        (name ^ " sparse6 roundtrip")
        true
        (Graph.equal g (Graph6.decode s)))
    (Gen.atlas_small ()
    @ [
        (* power-of-two n exercises nauty's special padding rule when
           vertex n-2 is in play *)
        ("C4", Gen.cycle 4);
        ("C8", Gen.cycle 8);
        ("P8", Gen.path 8);
        ("star8", Gen.star 8);
        ("K8", Gen.complete 8);
        ("grid4x4", Gen.grid 4 4);
        ("edgeless", Graph.make ~n:7 []);
        ("K1", Graph.make ~n:1 []);
        ("last pair only", Graph.make ~n:16 [ (14, 15) ]);
      ])

let test_sparse6_huge_header () =
  (* n = 300000 needs the 36-bit size header but only a handful of
     edges: exactly the sparse6 use case the graph6 matrix form cannot
     touch. *)
  let n = 300_000 in
  let g = Graph.make ~n [ (0, 1); (0, 299_999); (299_998, 299_999) ] in
  let s = Graph6.encode_sparse6 g in
  Alcotest.(check bool) "36-bit header" true
    (String.length s >= 8 && s.[1] = '~' && s.[2] = '~');
  Alcotest.(check bool) "roundtrip" true (Graph.equal g (Graph6.decode s))

let test_sparse6_rejects_malformed () =
  Alcotest.check_raises "graph6 passed to sparse6"
    (Invalid_argument "Graph6.decode: sparse6 input must start with ':'")
    (fun () -> ignore (Graph6.decode_sparse6 "A_"));
  (* ':A' then bits 00 (b=0, x=0 with v=0) encodes the self-loop (0,0) *)
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph6.decode: sparse6 self-loop") (fun () ->
      ignore (Graph6.decode ":AN"));
  Alcotest.check_raises "truncated size"
    (Invalid_argument "Graph6.decode: truncated input") (fun () ->
      ignore (Graph6.decode ":~~???"))

(* Padding audit against McKay's formal description.  The encoder pads
   the last byte with 1 bits, EXCEPT when n is a power of two, at least
   k+1 padding bits remain, and the current vertex is n-2: then a single
   0 bit goes first, because k-bit all-ones is exactly n-1 there and
   all-ones padding would decode as one more group — the self-loop
   {n-1, n-1}.  For every other n, all-ones decodes as an out-of-range
   index and is ignored; for fewer than k+1 spare bits the group is
   incomplete and ignored.  These cases pin each arm of that rule. *)
let test_sparse6_spec_vector () =
  (* The worked example in the sparse6 spec: n = 7 with edges
     0-1, 0-2, 1-2, 5-6 encodes as ":Fa@x^". *)
  let g = Graph.make ~n:7 [ (0, 1); (0, 2); (1, 2); (5, 6) ] in
  Alcotest.(check string) "spec vector encodes" ":Fa@x^"
    (Graph6.encode_sparse6 g);
  Alcotest.(check bool) "spec vector decodes" true
    (Graph.equal g (Graph6.decode ":Fa@x^"))

let test_sparse6_padding_ambiguity () =
  let rt name g =
    Alcotest.(check bool) name true
      (Graph.equal g (Graph6.decode (Graph6.encode_sparse6 g)))
  in
  (* trivial sizes *)
  rt "n=0" (Graph.make ~n:0 []);
  rt "n=1" (Graph.make ~n:1 []);
  rt "n=2 edgeless" (Graph.make ~n:2 []);
  rt "n=2 edge" (Graph.make ~n:2 [ (0, 1) ]);
  (* power-of-two n with the encoding ending on current vertex n-2 and
     >= k+1 spare bits: the single-0-bit exception must fire (all-ones
     would decode as the self-loop {n-1, n-1}) *)
  rt "n=4 triangle + isolated" (Graph.make ~n:4 [ (0, 1); (1, 2); (0, 2) ]);
  rt "n=8 edge (5,6)" (Graph.make ~n:8 [ (5, 6) ]);
  rt "n=16 path prefix + (13,14)"
    (Graph.make ~n:16 [ (0, 1); (1, 2); (2, 3); (13, 14) ]);
  (* same shapes where the exception must NOT fire: last vertex used,
     or too few spare bits for a full group *)
  rt "n=8 edge (6,7)" (Graph.make ~n:8 [ (6, 7) ]);
  rt "n=16 edge (13,14)" (Graph.make ~n:16 [ (13, 14) ]);
  rt "n=16 edge (14,15)" (Graph.make ~n:16 [ (14, 15) ]);
  rt "n=32 edge (29,30)" (Graph.make ~n:32 [ (29, 30) ]);
  rt "n=32 edge (30,31)" (Graph.make ~n:32 [ (30, 31) ]);
  (* non-power-of-two neighbours of the special sizes *)
  rt "n=7 edge (5,6)" (Graph.make ~n:7 [ (5, 6) ]);
  rt "n=9 edge (7,8)" (Graph.make ~n:9 [ (7, 8) ]);
  rt "n=15 edge (13,14)" (Graph.make ~n:15 [ (13, 14) ])

let test_sparse6_exhaustive_small () =
  (* decode ∘ encode is the identity on EVERY graph with n <= 5
     (1 + 1 + 2 + 8 + 64 + 1024 graphs): no padding ambiguity survives
     brute force. *)
  for n = 0 to 5 do
    let pairs = ref [] in
    for v = 1 to n - 1 do
      for u = 0 to v - 1 do
        pairs := (u, v) :: !pairs
      done
    done;
    let pairs = Array.of_list (List.rev !pairs) in
    let npairs = Array.length pairs in
    for mask = 0 to (1 lsl npairs) - 1 do
      let edges = ref [] in
      Array.iteri
        (fun i e -> if mask land (1 lsl i) <> 0 then edges := e :: !edges)
        pairs;
      let g = Graph.make ~n !edges in
      if not (Graph.equal g (Graph6.decode (Graph6.encode_sparse6 g))) then
        Alcotest.failf "n=%d mask=%d: sparse6 roundtrip broken" n mask
    done
  done

let sparse6_props =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let r = Prng.Rng.create seed in
           Gen.gnp r ~n:(1 + Prng.Rng.int r 40) ~p:0.15)
         QCheck.Gen.int)
  in
  [
    QCheck.Test.make ~name:"sparse6 roundtrip on random graphs" ~count:200 gen
      (fun g -> Graph.equal g (Graph6.decode (Graph6.encode_sparse6 g)));
    (* dense draws at n <= 17 keep hammering the padding boundary (the
       byte tail behaves differently at n = 4, 8, 16 vs their
       neighbours) *)
    QCheck.Test.make ~name:"sparse6 roundtrip near power-of-two n" ~count:400
      (QCheck.make
         (QCheck.Gen.map
            (fun seed ->
              let r = Prng.Rng.create seed in
              Gen.gnp r ~n:(2 + Prng.Rng.int r 16) ~p:0.5)
            QCheck.Gen.int))
      (fun g -> Graph.equal g (Graph6.decode (Graph6.encode_sparse6 g)));
    QCheck.Test.make ~name:"sparse6 output is printable ASCII" ~count:100 gen
      (fun g ->
        let s = Graph6.encode_sparse6 g in
        s.[0] = ':'
        && String.for_all
             (fun c -> Char.code c >= 63 && Char.code c <= 126)
             (String.sub s 1 (String.length s - 1)));
  ]

let test_graph6_rejects_malformed () =
  Alcotest.check_raises "empty" (Invalid_argument "Graph6.decode: empty input")
    (fun () -> ignore (Graph6.decode ""));
  Alcotest.check_raises "truncated"
    (Invalid_argument "Graph6.decode: truncated adjacency data") (fun () ->
      ignore (Graph6.decode "D"));
  Alcotest.check_raises "bad char" (Invalid_argument "Graph6.decode: invalid character")
    (fun () -> ignore (Graph6.decode "A\x01"));
  (* strict conformance: a decode-encode round trip must be the identity
     on the input string, so padding bits and trailing bytes are errors *)
  Alcotest.check_raises "nonzero padding"
    (Invalid_argument "Graph6.decode: nonzero padding bits") (fun () ->
      (* K2's single adjacency bit plus a stray bit in the padding *)
      ignore (Graph6.decode "A`"));
  Alcotest.check_raises "trailing bytes"
    (Invalid_argument "Graph6.decode: trailing bytes after adjacency data")
    (fun () -> ignore (Graph6.decode "A_?"));
  Alcotest.check_raises "truncated long-form header"
    (Invalid_argument "Graph6.decode: truncated input") (fun () ->
      ignore (Graph6.decode "~~???"));
  Alcotest.check_raises "oversize long form"
    (Invalid_argument "Graph6.decode: graph too large") (fun () ->
      ignore (Graph6.decode "~~~~~~~~"))

let graph6_props =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let r = Prng.Rng.create seed in
           Gen.gnp r ~n:(1 + Prng.Rng.int r 30) ~p:0.3)
         QCheck.Gen.int)
  in
  [
    QCheck.Test.make ~name:"graph6 roundtrip on random graphs" ~count:100 gen (fun g ->
        Graph.equal g (Graph6.decode (Graph6.encode g)));
    QCheck.Test.make ~name:"graph6 output is printable ASCII" ~count:100 gen (fun g ->
        String.for_all (fun c -> Char.code c >= 63 && Char.code c <= 126)
          (Graph6.encode g));
    (* strictness makes decode a left inverse of encode on strings too *)
    QCheck.Test.make ~name:"graph6 decode-encode is string identity" ~count:100
      gen (fun g ->
        let s = Graph6.encode g in
        Graph6.encode (Graph6.decode s) = s);
  ]

(* --- weighted attackers --- *)

let weighted_setup () =
  let g = Gen.path 6 in
  let m = Defender.Model.make ~graph:g ~nu:3 ~k:2 in
  let w = Defender.Weighted.make m ~weights:[ Q.of_int 5; Q.one; Q.make 1 2 ] in
  (g, m, w)

let test_weighted_validation () =
  let _, m, _ = weighted_setup () in
  Alcotest.check_raises "arity" (Invalid_argument "Weighted.make: need exactly nu weights")
    (fun () -> ignore (Defender.Weighted.make m ~weights:[ Q.one ]));
  Alcotest.check_raises "positivity"
    (Invalid_argument "Weighted.make: weights must be positive") (fun () ->
      ignore (Defender.Weighted.make m ~weights:[ Q.one; Q.zero; Q.one ]))

let test_weighted_loads () =
  let _, m, w = weighted_setup () in
  Alcotest.check q "total weight" (Q.make 13 2) (Defender.Weighted.total_weight w);
  (* all three attackers as point masses on distinct vertices *)
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.point 1; Dist.Finite.point 3; Dist.Finite.point 5 ]
      ~tp:[ (Defender.Tuple.of_list (Defender.Model.graph m) [ 0; 2 ], Q.one) ]
  in
  Alcotest.check q "load at 1 = w0" (Q.of_int 5) (Defender.Weighted.expected_load w prof 1);
  Alcotest.check q "load at 3 = w1" Q.one (Defender.Weighted.expected_load w prof 3);
  Alcotest.check q "load at 0 = 0" Q.zero (Defender.Weighted.expected_load w prof 0);
  (* tuple {e0,e2} covers vertices 0..3: arrested damage 5 + 1 = 6 *)
  Alcotest.check q "arrested damage" (Q.of_int 6) (Defender.Weighted.expected_tp w prof);
  (* attacker 2 escapes with its full half-point of damage *)
  Alcotest.check q "escaped damage" (Q.make 1 2) (Defender.Weighted.expected_vp w prof 2)

let test_weighted_k_matching_is_ne () =
  let g, m, w = weighted_setup () in
  let partition = Option.get (Defender.Matching_nash.find_partition g) in
  let prof = ok (Defender.Weighted.a_tuple w partition) in
  Alcotest.(check bool) "weighted NE verified" true
    (Defender.Verify.verdict_is_confirmed (Defender.Weighted.verify_ne w prof));
  (* gain law generalizes: k*W/|IS| = 2 * (13/2) / 3 = 13/3 *)
  let is_size = List.length partition.Defender.Matching_nash.is in
  Alcotest.check q "weighted gain law"
    (Defender.Weighted.predicted_gain w ~is_size)
    (Defender.Weighted.expected_tp w prof);
  Alcotest.check q "explicit value" (Q.make 13 3) (Defender.Weighted.expected_tp w prof);
  ignore m

let test_weighted_detects_bad_defense () =
  let g, m, w = weighted_setup () in
  (* Defender ignores the heavy attacker's whereabouts: put all attackers
     on vertex 1 but scan only the far end. *)
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.point 1; Dist.Finite.point 1; Dist.Finite.point 1 ]
      ~tp:[ (Defender.Tuple.of_list g [ 3; 4 ], Q.one) ]
  in
  match Defender.Weighted.verify_ne w prof with
  | Defender.Verify.Refuted _ -> ()
  | v ->
      Alcotest.fail
        ("expected weighted refutation: " ^ Defender.Verify.verdict_to_string v)

let test_weighted_reduces_to_unweighted () =
  (* Unit weights recover the ordinary profit. *)
  let g = Gen.grid 2 3 in
  let m = Defender.Model.make ~graph:g ~nu:4 ~k:2 in
  let w = Defender.Weighted.make m ~weights:(List.init 4 (fun _ -> Q.one)) in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  Alcotest.check q "weighted = unweighted at unit weights"
    (Defender.Profit.expected_tp prof)
    (Defender.Weighted.expected_tp w prof);
  Alcotest.(check bool) "verified" true
    (Defender.Verify.verdict_is_confirmed (Defender.Weighted.verify_ne w prof))

let weighted_props =
  let setup_gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let r = Prng.Rng.create seed in
           let g = Gen.random_bipartite r ~a:3 ~b:4 ~p:0.3 in
           let nu = 1 + Prng.Rng.int r 4 in
           let feasible = Defender.Pipeline.max_feasible_k g in
           let k = 1 + Prng.Rng.int r (max 1 feasible) in
           let m = Defender.Model.make ~graph:g ~nu ~k in
           let weights = List.init nu (fun _ -> Q.make (1 + Prng.Rng.int r 9) (1 + Prng.Rng.int r 4)) in
           (m, Defender.Weighted.make m ~weights))
         QCheck.Gen.int)
  in
  [
    QCheck.Test.make ~name:"k-matching NE robust to arbitrary weights" ~count:40
      setup_gen (fun (m, w) ->
        match Defender.Tuple_nash.a_tuple_auto m with
        | Error _ -> QCheck.assume_fail ()
        | Ok prof ->
            Defender.Verify.verdict_is_confirmed (Defender.Weighted.verify_ne w prof));
    QCheck.Test.make ~name:"weighted gain law k*W/|IS|" ~count:40 setup_gen
      (fun (m, w) ->
        match Defender.Tuple_nash.a_tuple_auto m with
        | Error _ -> QCheck.assume_fail ()
        | Ok prof ->
            let is_size = List.length (Defender.Profile.vp_support_union prof) in
            Q.equal
              (Defender.Weighted.predicted_gain w ~is_size)
              (Defender.Weighted.expected_tp w prof));
  ]

let () =
  Alcotest.run "io-weighted"
    [
      ( "graph6",
        [
          Alcotest.test_case "known vectors" `Quick test_graph6_known_vectors;
          Alcotest.test_case "atlas roundtrip" `Quick test_graph6_roundtrip_families;
          Alcotest.test_case "large-n form" `Quick test_graph6_large_n_form;
          Alcotest.test_case "long form (~~)" `Quick test_graph6_long_form;
          Alcotest.test_case "rejects malformed" `Quick test_graph6_rejects_malformed;
        ] );
      ( "sparse6",
        [
          Alcotest.test_case "roundtrip families" `Quick test_sparse6_roundtrip;
          Alcotest.test_case "spec vector" `Quick test_sparse6_spec_vector;
          Alcotest.test_case "padding ambiguity cases" `Quick
            test_sparse6_padding_ambiguity;
          Alcotest.test_case "exhaustive n <= 5" `Quick
            test_sparse6_exhaustive_small;
          Alcotest.test_case "huge header" `Quick test_sparse6_huge_header;
          Alcotest.test_case "rejects malformed" `Quick
            test_sparse6_rejects_malformed;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "validation" `Quick test_weighted_validation;
          Alcotest.test_case "loads and profits" `Quick test_weighted_loads;
          Alcotest.test_case "k-matching NE for any weights" `Quick
            test_weighted_k_matching_is_ne;
          Alcotest.test_case "detects bad defense" `Quick test_weighted_detects_bad_defense;
          Alcotest.test_case "unit weights reduce" `Quick test_weighted_reduces_to_unweighted;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~verbose:false)
          (graph6_props @ sparse6_props @ weighted_props) );
    ]
