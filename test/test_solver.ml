(* Tests for the double-oracle equilibrium solver (Solver.Double_oracle)
   and the exact weighted best-response oracles it column-generates
   with: oracle-vs-enumeration properties, rediscovery of the paper's
   matching NEs (rational equality, zero oracle gap), agreement with the
   Minimax LP at k=1, verified equilibria on instances with no closed
   form, warm seeding, determinism, and the do.* Obs counters. *)

open Netgraph
module Q = Exact.Q
module TG = Defender.Tuple_game
module SG = Defender.Subgraph_game
module DO = Solver.Instances.Tuple
module DOS = Solver.Instances.Subgraph
module SEngine = Defender.Subgraph_instance.Engine

let q = Alcotest.testable Q.pp Q.equal
let model ~g ~nu ~k = Defender.Model.make ~graph:g ~nu ~k

(* --- the weighted oracles are exact: compare against enumeration --- *)

let exhaustive_best_tuple m weight =
  TG.fold_strategies m ~init:Q.zero ~f:(fun acc t ->
      Q.max acc
        (List.fold_left
           (fun s v -> Q.add s weight.(v))
           Q.zero (TG.covered m t)))

let arb_weighted_model =
  QCheck.make
    ~print:(fun (seed, n, k, ws) ->
      Printf.sprintf "seed=%d n=%d k=%d ws=[%s]" seed n k
        (String.concat ";" (List.map string_of_int ws)))
    QCheck.Gen.(
      int_range 0 1000 >>= fun seed ->
      int_range 4 7 >>= fun n ->
      int_range 1 3 >>= fun k ->
      list_repeat n (int_range 0 6) >>= fun ws -> return (seed, n, k, ws))

let prop_tuple_oracle_exact =
  QCheck.Test.make ~name:"tuple weighted oracle = enumeration max" ~count:120
    arb_weighted_model (fun (seed, n, k, ws) ->
      let rng = Prng.Rng.create seed in
      let g = Gen.gnp_connected rng ~n ~p:0.5 in
      let k = min k (Graph.m g) in
      let m = model ~g ~nu:2 ~k in
      let weight = Array.of_list (List.map (fun w -> Q.make w 7) ws) in
      let t = TG.best_response_weighted m ~weight in
      let value =
        List.fold_left
          (fun s v -> Q.add s weight.(v))
          Q.zero (TG.covered m t)
      in
      Q.equal value (exhaustive_best_tuple m weight))

let prop_subgraph_oracle_exact =
  QCheck.Test.make ~name:"subgraph weighted oracle = enumeration max"
    ~count:60 arb_weighted_model (fun (seed, n, lambda, ws) ->
      let rng = Prng.Rng.create seed in
      let g = Gen.gnp_connected rng ~n ~p:0.5 in
      let lambda = min lambda (Graph.n g) in
      let inst = SG.make ~graph:g ~nu:2 ~lambda in
      let weight = Array.of_list (List.map (fun w -> Q.make w 7) ws) in
      let s = SG.best_response_weighted inst ~weight in
      let value =
        Array.fold_left (fun acc v -> Q.add acc weight.(v)) Q.zero s
      in
      let best =
        SG.fold_strategies inst ~init:Q.zero ~f:(fun acc s' ->
            Q.max acc
              (Array.fold_left (fun a v -> Q.add a weight.(v)) Q.zero s'))
      in
      Q.equal value best)

let test_oracle_rejects_bad_weights () =
  let m = model ~g:(Gen.path 4) ~nu:1 ~k:1 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Tuple_game.best_response_weighted: |weight| <> n")
    (fun () ->
      ignore (TG.best_response_weighted m ~weight:[| Q.one |]))

(* --- D1-style: the loop rediscovers matching NEs exactly --- *)

let test_rediscovers_matching_ne () =
  List.iter
    (fun (name, g, nu, ks) ->
      List.iter
        (fun k ->
          let m = model ~g ~nu ~k in
          let char =
            match Defender.Tuple_nash.a_tuple_auto m with
            | Ok p -> p
            | Error e -> Alcotest.failf "%s k=%d: characterization: %s" name k e
          in
          let r = DO.solve m in
          let gain = Defender.Gain.defender_gain char in
          Alcotest.check q
            (Printf.sprintf "%s k=%d: nu*value = characterization gain" name k)
            gain
            (Q.mul_int r.DO.value nu);
          let prof = DO.profile m r in
          Alcotest.(check bool)
            (Printf.sprintf "%s k=%d: NE (exhaustive)" name k)
            true
            (Defender.Verify.verdict_is_confirmed
               (Defender.Verify.mixed_ne (Defender.Verify.Exhaustive 200_000)
                  prof));
          Alcotest.(check bool)
            (Printf.sprintf "%s k=%d: NE (oracle mode)" name k)
            true
            (Defender.Verify.verdict_is_confirmed
               (Defender.Verify.mixed_ne Defender.Verify.Oracle prof)))
        ks)
    [
      ("P6", Gen.path 6, 2, [ 1; 2; 3 ]);
      ("C6", Gen.cycle 6, 3, [ 1; 2; 3 ]);
      ("K33", Gen.complete_bipartite 3 3, 2, [ 1; 2 ]);
    ]

let test_k1_equals_minimax () =
  (* At k=1 the game value is the max-min interception probability
     1/rho*(G), for ANY graph — including those without matching NEs. *)
  List.iter
    (fun (name, g) ->
      let m = model ~g ~nu:2 ~k:1 in
      let r = DO.solve m in
      let mm = Defender.Minimax.solve g in
      Alcotest.check q
        (Printf.sprintf "%s: DO value = 1/rho*" name)
        mm.Defender.Minimax.value r.DO.value)
    [
      ("C5", Gen.cycle 5);
      ("K4", Gen.complete 4);
      ("petersen", Gen.petersen ());
      ("wheel6", Gen.wheel 6);
    ]

(* --- D2-style: verified NE where no closed form exists --- *)

let test_no_closed_form_instances () =
  List.iter
    (fun (name, g, nu, k) ->
      let m = model ~g ~nu ~k in
      (match Defender.Tuple_nash.a_tuple_auto m with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: unexpectedly has a closed form" name);
      let r = DO.solve m in
      let prof = DO.profile m r in
      Alcotest.(check bool)
        (Printf.sprintf "%s: NE (oracle mode)" name)
        true
        (Defender.Verify.verdict_is_confirmed
           (Defender.Verify.mixed_ne Defender.Verify.Oracle prof));
      Alcotest.(check bool)
        (Printf.sprintf "%s: NE (exhaustive)" name)
        true
        (Defender.Verify.verdict_is_confirmed
           (Defender.Verify.mixed_ne (Defender.Verify.Exhaustive 200_000) prof));
      Alcotest.check q
        (Printf.sprintf "%s: gain = nu*value" name)
        (Q.mul_int r.DO.value nu)
        (Defender.Gain.defender_gain prof))
    [
      ("C5 k=2", Gen.cycle 5, 2, 2);
      ("petersen k=2", Gen.petersen (), 3, 2);
      ("wheel6 k=2", Gen.wheel 6, 2, 2);
    ]

(* --- the subgraph game through the same loop --- *)

let test_subgraph_cycle () =
  (* Vertex-transitive instance: value = lambda/n, gain = nu*lambda/n. *)
  let inst = SG.make ~graph:(Gen.cycle 6) ~nu:3 ~lambda:2 in
  let r = DOS.solve inst in
  Alcotest.check q "C6 lambda=2 value" (Q.make 2 6) r.DOS.value;
  let prof = DOS.profile inst r in
  Alcotest.(check bool) "verified (oracle)" true
    (SEngine.Verify.verdict_is_confirmed
       (SEngine.Verify.mixed_ne SEngine.Verify.Oracle prof));
  Alcotest.(check bool) "verified (exhaustive)" true
    (SEngine.Verify.verdict_is_confirmed
       (SEngine.Verify.mixed_ne (SEngine.Verify.Exhaustive 100_000) prof))

let test_subgraph_no_closed_form () =
  let inst = SG.make ~graph:(Gen.petersen ()) ~nu:2 ~lambda:2 in
  let r = DOS.solve inst in
  Alcotest.check q "petersen lambda=2 value" (Q.make 2 10) r.DOS.value;
  let prof = DOS.profile inst r in
  Alcotest.(check bool) "verified (oracle)" true
    (SEngine.Verify.verdict_is_confirmed
       (SEngine.Verify.mixed_ne SEngine.Verify.Oracle prof))

(* --- seeding, convergence accounting, determinism --- *)

let test_warm_seed_one_iteration () =
  (* Seeding the restricted sets with a known equilibrium's supports
     turns the loop into a one-iteration checker of that equilibrium. *)
  let g = Gen.cycle 6 in
  let m = model ~g ~nu:3 ~k:1 in
  let char =
    match Defender.Tuple_nash.a_tuple_auto m with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let r =
    DO.solve m
      ~init_vertices:(Defender.Profile.vp_support char 0)
      ~init_strategies:(List.map fst (Defender.Profile.tp_strategy char))
  in
  Alcotest.(check int) "one iteration" 1 r.DO.stats.DO.iterations;
  Alcotest.(check string) "byte-identical to characterization profile"
    (Defender.Profile_io.to_string char)
    (Defender.Profile_io.to_string (DO.profile m r))

let test_iteration_reports () =
  let m = model ~g:(Gen.petersen ()) ~nu:2 ~k:2 in
  let trace = ref [] in
  let r = DO.solve m ~on_iteration:(fun it -> trace := it :: !trace) in
  let trace = List.rev !trace in
  Alcotest.(check int) "one report per iteration" r.DO.stats.DO.iterations
    (List.length trace);
  List.iter
    (fun it ->
      Alcotest.(check bool) "lower <= value" true
        (Q.( <= ) it.DO.lower it.DO.value);
      Alcotest.(check bool) "value <= upper" true
        (Q.( <= ) it.DO.value it.DO.upper))
    trace;
  let last = List.nth trace (List.length trace - 1) in
  Alcotest.check q "final gap zero" last.DO.lower last.DO.upper;
  Alcotest.(check int) "oracle calls = 2 per iteration"
    (2 * r.DO.stats.DO.iterations)
    r.DO.stats.DO.oracle_calls

let test_deterministic () =
  let m = model ~g:(Gen.petersen ()) ~nu:2 ~k:2 in
  let r1 = DO.solve m and r2 = DO.solve m in
  Alcotest.(check string) "same profile bytes"
    (Defender.Profile_io.to_string (DO.profile m r1))
    (Defender.Profile_io.to_string (DO.profile m r2));
  Alcotest.(check int) "same iterations" r1.DO.stats.DO.iterations
    r2.DO.stats.DO.iterations

let test_do_counters () =
  let old = Obs.level () in
  Obs.set_level Obs.Counters;
  Fun.protect ~finally:(fun () -> Obs.set_level old) @@ fun () ->
  let snap = Obs.snapshot () in
  let m = model ~g:(Gen.cycle 5) ~nu:2 ~k:2 in
  let r = DO.solve m in
  let d = Obs.delta snap in
  let get name =
    match List.assoc_opt name d.Obs.counters with Some v -> v | None -> 0
  in
  Alcotest.(check int) "do.iterations" r.DO.stats.DO.iterations
    (get "do.iterations");
  Alcotest.(check int) "do.oracle_calls" r.DO.stats.DO.oracle_calls
    (get "do.oracle_calls");
  Alcotest.(check int) "do.support_size"
    (Dist.Finite.support_size r.DO.sigma + List.length r.DO.tp)
    (get "do.support_size")

let () =
  Alcotest.run "solver"
    [
      ( "oracles",
        [
          QCheck_alcotest.to_alcotest prop_tuple_oracle_exact;
          QCheck_alcotest.to_alcotest prop_subgraph_oracle_exact;
          Alcotest.test_case "bad weights rejected" `Quick
            test_oracle_rejects_bad_weights;
        ] );
      ( "double-oracle",
        [
          Alcotest.test_case "rediscovers matching NEs" `Quick
            test_rediscovers_matching_ne;
          Alcotest.test_case "k=1 value = minimax" `Quick test_k1_equals_minimax;
          Alcotest.test_case "no closed form, verified NE" `Quick
            test_no_closed_form_instances;
          Alcotest.test_case "subgraph game on C6" `Quick test_subgraph_cycle;
          Alcotest.test_case "subgraph game on Petersen" `Quick
            test_subgraph_no_closed_form;
        ] );
      ( "loop",
        [
          Alcotest.test_case "warm seed converges in one iteration" `Quick
            test_warm_seed_one_iteration;
          Alcotest.test_case "iteration reports and bounds" `Quick
            test_iteration_reports;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "do.* counters" `Quick test_do_counters;
        ] );
    ]
