(* Tests for the Monte-Carlo simulation substrate: the round engine, the
   policy workloads and better-response dynamics. *)

open Netgraph
module Rng = Prng.Rng
module Q = Exact.Q

let model ~g ~nu ~k = Defender.Model.make ~graph:g ~nu ~k

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let ne_profile () =
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  ok (Defender.Tuple_nash.a_tuple_auto m)

(* --- Engine --- *)

let test_engine_basic_counts () =
  let prof = ne_profile () in
  let stats = Sim.Engine.play (Rng.create 1) prof ~rounds:500 in
  Alcotest.(check int) "rounds" 500 stats.Sim.Engine.rounds;
  Alcotest.(check bool) "caught within [0, nu*rounds]" true
    (stats.Sim.Engine.total_caught >= 0 && stats.Sim.Engine.total_caught <= 4 * 500);
  Alcotest.(check int) "per-player stats arity" 4
    (Array.length stats.Sim.Engine.per_player_escapes);
  Array.iteri
    (fun i esc ->
      Alcotest.(check bool)
        (Printf.sprintf "player %d escapes bounded" i)
        true
        (esc >= 0 && esc <= 500))
    stats.Sim.Engine.per_player_escapes

let test_engine_matches_analytic () =
  let prof = ne_profile () in
  let stats = Sim.Engine.play (Rng.create 7) prof ~rounds:20_000 in
  Alcotest.(check bool) "empirical mean within CI of exact value" true
    (Sim.Engine.agrees_with_analytic stats prof);
  (* escape rates near 1 - k/|IS| = 1/3 *)
  for i = 0 to 3 do
    let rate = Sim.Engine.escape_rate stats i in
    Alcotest.(check bool)
      (Printf.sprintf "player %d escape rate near 1/3" i)
      true
      (abs_float (rate -. (1.0 /. 3.0)) < 0.02)
  done

let test_engine_deterministic_profile () =
  (* Pure profile: attacker caught every single round. *)
  let g = Gen.path 2 in
  let m = model ~g ~nu:2 ~k:1 in
  let prof =
    Defender.Profile.of_pure m
      (Defender.Profile.make_pure m ~vp_choices:[ 0; 1 ]
         ~tp_choice:(Defender.Tuple.of_list g [ 0 ]))
  in
  let stats = Sim.Engine.play (Rng.create 3) prof ~rounds:100 in
  Alcotest.(check int) "everyone caught always" 200 stats.Sim.Engine.total_caught;
  Alcotest.(check (float 1e-9)) "zero variance" 0.0 stats.Sim.Engine.stddev_caught;
  Alcotest.(check bool) "agrees with analytic" true
    (Sim.Engine.agrees_with_analytic stats prof)

let test_engine_record () =
  let prof = ne_profile () in
  let recorded = ref 0 in
  let check_round (r : Sim.Engine.round) =
    incr recorded;
    Alcotest.(check int) "choices arity" 4 (Array.length r.Sim.Engine.choices);
    Alcotest.(check bool) "caught consistent" true
      (r.Sim.Engine.caught >= 0 && r.Sim.Engine.caught <= 4)
  in
  ignore (Sim.Engine.play ~record:check_round (Rng.create 5) prof ~rounds:50);
  Alcotest.(check int) "all rounds recorded" 50 !recorded

let test_engine_reproducible () =
  let prof = ne_profile () in
  let a = Sim.Engine.play (Rng.create 11) prof ~rounds:1000 in
  let b = Sim.Engine.play (Rng.create 11) prof ~rounds:1000 in
  Alcotest.(check int) "same totals for same seed" a.Sim.Engine.total_caught
    b.Sim.Engine.total_caught

let test_engine_validation () =
  let prof = ne_profile () in
  Alcotest.check_raises "zero rounds"
    (Invalid_argument "Engine.play: rounds must be positive") (fun () ->
      ignore (Sim.Engine.play (Rng.create 1) prof ~rounds:0))

(* --- Workload --- *)

let test_workload_ne_defense_is_uniform_over_attackers () =
  (* Against the NE defense, adaptive attackers gain nothing: catch rate
     stays at the equilibrium value. *)
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let ne_def = Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy prof) in
  let adaptive = Sim.Workload.Attacker_adaptive { epsilon = 0.1 } in
  let outcome =
    Sim.Workload.run (Rng.create 2) m ~attacker:adaptive ~defender:ne_def
      ~rounds:20_000
  in
  (* equilibrium floor: with the NE defense, ANY attacker behaviour yields
     at least the uniform-hit floor only in expectation over vertices the
     attackers pick; adaptive attackers at best reach escape 1 - k/|IS|
     on IS vertices, but may do worse.  Catch rate must be at least the
     NE value minus noise... at least, it cannot drop below the value on
     minimum-hit vertices: k/|IS| * nu = 8/3 per round / nu. *)
  let ne_value = Q.to_float (Defender.Gain.defender_gain prof) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f >= NE value %.3f - slack" outcome.Sim.Workload.mean_caught
       ne_value)
    true
    (outcome.Sim.Workload.mean_caught >= ne_value -. 0.15)

let test_workload_policies_run () =
  let g = Gen.grid 2 3 in
  let m = model ~g ~nu:3 ~k:2 in
  let attackers =
    [
      Sim.Workload.Attacker_uniform;
      Sim.Workload.Attacker_fixed (Dist.Finite.uniform [ 0; 5 ]);
      Sim.Workload.Attacker_hotspot { targets = [ 0; 1 ]; concentration = 0.8 };
      Sim.Workload.Attacker_adaptive { epsilon = 0.2 };
    ]
  in
  let defenders =
    [
      Sim.Workload.Defender_uniform_tuple;
      Sim.Workload.Defender_greedy { epsilon = 0.1 };
      Sim.Workload.Defender_round_robin;
    ]
  in
  List.iter
    (fun attacker ->
      List.iter
        (fun defender ->
          let o = Sim.Workload.run (Rng.create 9) m ~attacker ~defender ~rounds:300 in
          Alcotest.(check int) "series length" 300
            (Array.length o.Sim.Workload.caught_series);
          Alcotest.(check bool) "mean bounded" true
            (o.Sim.Workload.mean_caught >= 0.0 && o.Sim.Workload.mean_caught <= 3.0))
        defenders)
    attackers

let test_workload_greedy_beats_uniform_on_hotspot () =
  (* Hotspot attackers concentrated on two adjacent vertices: the greedy
     defender should catch far more than the uniform-tuple defender. *)
  let g = Gen.grid 2 3 in
  let m = model ~g ~nu:3 ~k:1 in
  let attacker =
    Sim.Workload.Attacker_hotspot { targets = [ 0; 1 ]; concentration = 0.95 }
  in
  let greedy =
    Sim.Workload.run (Rng.create 21) m ~attacker
      ~defender:(Sim.Workload.Defender_greedy { epsilon = 0.05 })
      ~rounds:4000
  in
  let uniform =
    Sim.Workload.run (Rng.create 21) m ~attacker
      ~defender:Sim.Workload.Defender_uniform_tuple ~rounds:4000
  in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.2f > uniform %.2f" greedy.Sim.Workload.mean_caught
       uniform.Sim.Workload.mean_caught)
    true
    (greedy.Sim.Workload.mean_caught > uniform.Sim.Workload.mean_caught)

let test_workload_flaky_degrades_linearly () =
  (* Failure injection: a flaky NE defense loses exactly the failed
     fraction of its gain against NE attackers. *)
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let attacker = Sim.Workload.Attacker_fixed (Defender.Profile.vp_strategy prof 0) in
  let gain_at f =
    let base = Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy prof) in
    let defender =
      if f = 0.0 then base else Sim.Workload.Defender_flaky { base; failure_rate = f }
    in
    (Sim.Workload.run (Rng.create 77) m ~attacker ~defender ~rounds:30_000)
      .Sim.Workload.mean_caught
  in
  let full = gain_at 0.0 in
  let analytic = Q.to_float (Defender.Gain.defender_gain prof) in
  Alcotest.(check bool) "full gain matches analytic" true
    (abs_float (full -. analytic) < 0.05);
  List.iter
    (fun f ->
      let measured = gain_at f in
      let predicted = (1.0 -. f) *. analytic in
      Alcotest.(check bool)
        (Printf.sprintf "f=%.2f: %.3f near %.3f" f measured predicted)
        true
        (abs_float (measured -. predicted) < 0.06))
    [ 0.25; 0.5; 0.75 ];
  Alcotest.(check string) "policy name" "flaky(fixed/NE, f=0.50)"
    (Sim.Workload.policy_name
       (Sim.Workload.Defender_flaky
          { base = Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy prof);
            failure_rate = 0.5 }));
  Alcotest.check_raises "failure rate validated"
    (Invalid_argument "Workload.run: failure_rate outside [0, 1)") (fun () ->
      ignore
        (Sim.Workload.run (Rng.create 1) m ~attacker
           ~defender:
             (Sim.Workload.Defender_flaky
                { base = Sim.Workload.Defender_uniform_tuple; failure_rate = 1.5 })
           ~rounds:10))

let test_workload_validation () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:2 in
  Alcotest.check_raises "wrong tuple size"
    (Invalid_argument "Workload.run: fixed defender tuple size <> k") (fun () ->
      ignore
        (Sim.Workload.run (Rng.create 1) m ~attacker:Sim.Workload.Attacker_uniform
           ~defender:
             (Sim.Workload.Defender_fixed [ (Defender.Tuple.of_list g [ 0 ], Q.one) ])
           ~rounds:10));
  Alcotest.(check string) "policy names" "greedy"
    (Sim.Workload.policy_name (Sim.Workload.Defender_greedy { epsilon = 0.1 }));
  Alcotest.(check string) "attacker names" "adaptive"
    (Sim.Workload.attacker_name (Sim.Workload.Attacker_adaptive { epsilon = 0.1 }))

(* --- Dynamics --- *)

let test_dynamics_converges_when_pure_ne_exists () =
  (* K4 with k = 2: an edge cover of size 2 exists, dynamics must converge. *)
  let g = Gen.complete 4 in
  let m = model ~g ~nu:2 ~k:2 in
  match Sim.Dynamics.run (Rng.create 13) m ~max_steps:10_000 with
  | Sim.Dynamics.Converged { profile; _ } ->
      Alcotest.(check bool) "converged profile is pure NE" true
        (Defender.Pure_nash.is_pure_ne m profile)
  | Sim.Dynamics.Cycling _ -> Alcotest.fail "K4 k=2 dynamics should converge"

let test_dynamics_cycles_when_no_pure_ne () =
  (* P6 with k = 1: n = 6 >= 3 = 2k+1, no pure NE, dynamics churn forever. *)
  let g = Gen.path 6 in
  let m = model ~g ~nu:2 ~k:1 in
  match Sim.Dynamics.run (Rng.create 17) m ~max_steps:3000 with
  | Sim.Dynamics.Cycling { steps } -> Alcotest.(check int) "budget exhausted" 3000 steps
  | Sim.Dynamics.Converged _ -> Alcotest.fail "P6 k=1 has no pure NE"

let test_dynamics_agrees_with_theorem31_on_atlas () =
  List.iter
    (fun (name, g) ->
      if Graph.m g >= 2 then begin
        let k = 2 in
        let m = model ~g ~nu:2 ~k in
        let converged =
          Sim.Dynamics.is_converged (Sim.Dynamics.run (Rng.create 19) m ~max_steps:4000)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: dynamics converge iff pure NE exists" name)
          (Defender.Pure_nash.exists m) converged
      end)
    (Gen.atlas_small ())

let test_dynamics_record () =
  let g = Gen.path 5 in
  let m = model ~g ~nu:1 ~k:1 in
  let steps = ref 0 in
  let record (r : Sim.Dynamics.step_record) =
    incr steps;
    Alcotest.(check bool) "caught in range" true
      (r.Sim.Dynamics.caught_after >= 0 && r.Sim.Dynamics.caught_after <= 1)
  in
  ignore (Sim.Dynamics.run ~record (Rng.create 23) m ~max_steps:200);
  Alcotest.(check bool) "steps recorded" true (!steps > 0)

(* --- Convergence traces --- *)

module C = Sim.Convergence

let pt i value lower upper =
  { C.iteration = i; value; lower; upper }

let qt = Alcotest.testable Q.pp Q.equal

let test_convergence_basic () =
  let t = C.create () in
  Alcotest.(check int) "empty" 0 (C.length t);
  Alcotest.(check bool) "no final" true (C.final t = None);
  Alcotest.(check (list (pair int int)) "no points" [])
    (List.map (fun _ -> (0, 0)) (C.points t));
  C.record t (pt 1 Q.one Q.zero Q.one);
  C.record t (pt 2 (Q.make 1 2) (Q.make 1 2) Q.one);
  Alcotest.(check int) "length" 2 (C.length t);
  Alcotest.(check (list qt)) "gaps" [ Q.one; Q.make 1 2 ] (C.gaps t)

let test_convergence_gapless () =
  let t = C.create () in
  C.record t (pt 1 Q.one Q.zero Q.one);
  Alcotest.check_raises "gap rejected"
    (Invalid_argument "Convergence.record: iteration 3 after 1 (gapless)")
    (fun () -> C.record t (pt 3 Q.one Q.zero Q.one))

let test_convergence_envelope () =
  (* Regression: the envelope's FIRST entry must use the first point's
     bounds, not the final refs ([::] has no evaluation-order
     guarantee, and an earlier version computed the head after the
     mutating map over the tail). *)
  let t = C.create () in
  C.record t (pt 1 Q.one Q.zero Q.one);
  C.record t (pt 2 (Q.make 1 2) (Q.make 1 2) Q.one);
  C.record t (pt 3 Q.one Q.zero Q.one);
  C.record t (pt 4 (Q.make 2 3) (Q.make 2 3) (Q.make 2 3));
  Alcotest.(check (list qt)) "envelope"
    [ Q.one; Q.make 1 2; Q.make 1 2; Q.zero ]
    (C.envelope t);
  Alcotest.(check bool) "non-increasing" true
    (let rec scan = function
       | a :: (b :: _ as rest) -> Q.( >= ) a b && scan rest
       | _ -> true
     in
     scan (C.envelope t));
  Alcotest.(check (option int)) "converged at 4" (Some 4) (C.converged_at t)

let test_convergence_not_converged () =
  let t = C.create () in
  C.record t (pt 1 Q.one Q.zero Q.one);
  Alcotest.(check (option int)) "open gap" None (C.converged_at t)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "basic counts" `Quick test_engine_basic_counts;
          Alcotest.test_case "matches analytic" `Quick test_engine_matches_analytic;
          Alcotest.test_case "deterministic profile" `Quick
            test_engine_deterministic_profile;
          Alcotest.test_case "record callback" `Quick test_engine_record;
          Alcotest.test_case "reproducible" `Quick test_engine_reproducible;
          Alcotest.test_case "validation" `Quick test_engine_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "NE defense floor" `Quick
            test_workload_ne_defense_is_uniform_over_attackers;
          Alcotest.test_case "all policies run" `Quick test_workload_policies_run;
          Alcotest.test_case "greedy beats uniform on hotspot" `Quick
            test_workload_greedy_beats_uniform_on_hotspot;
          Alcotest.test_case "flaky defense degrades linearly" `Slow
            test_workload_flaky_degrades_linearly;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "converges with pure NE" `Quick
            test_dynamics_converges_when_pure_ne_exists;
          Alcotest.test_case "cycles without pure NE" `Quick
            test_dynamics_cycles_when_no_pure_ne;
          Alcotest.test_case "atlas agreement with thm 3.1" `Quick
            test_dynamics_agrees_with_theorem31_on_atlas;
          Alcotest.test_case "record callback" `Quick test_dynamics_record;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "basic recording" `Quick test_convergence_basic;
          Alcotest.test_case "gapless validation" `Quick
            test_convergence_gapless;
          Alcotest.test_case "envelope head regression" `Quick
            test_convergence_envelope;
          Alcotest.test_case "open gap" `Quick test_convergence_not_converged;
        ] );
    ]
