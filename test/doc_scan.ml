(* Shared scanner for the in-tree documentation pipeline (doc_lint.exe
   and doc_gen.exe).  odoc is deliberately not a dependency: every
   library in this project is private, so dune generates no odoc rules,
   and the container does not ship the tool.  Instead the contract is
   enforced directly on the sources: each public [.mli] under lib/ must
   open with an odoc-style [(** ... *)] synopsis, which this module
   locates and extracts. *)

type mli = {
  path : string;  (** repo-relative, e.g. "lib/core/model.mli" *)
  modname : string;  (** OCaml module name, e.g. "Model" *)
  synopsis : string option;
      (** first sentence of the leading [(** ... *)] comment, whitespace
          collapsed; [None] when the file does not open with one *)
}

type sublib = {
  dir : string;  (** e.g. "lib/core" *)
  libname : string;  (** the [(name ...)] field of the sublibrary's dune file *)
  mlis : mli list;  (** sorted by filename *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* The body of the leading (** ... *) comment, or None if the first
   non-whitespace token is anything else.  Comment nesting is respected
   — OCaml comments nest, and several synopses quote [(* ... *)]. *)
let leading_doc_comment text =
  let n = String.length text in
  let i = ref 0 in
  while !i < n && is_space text.[!i] do incr i done;
  if !i + 3 > n || String.sub text !i 3 <> "(**" then None
  else begin
    let start = !i + 3 in
    let depth = ref 1 and j = ref start and close = ref (-1) in
    while !close < 0 && !j + 1 < n do
      (match (text.[!j], text.[!j + 1]) with
      | '(', '*' ->
          incr depth;
          incr j
      | '*', ')' ->
          decr depth;
          if !depth = 0 then close := !j else incr j
      | _ -> ());
      incr j
    done;
    if !close < 0 then None else Some (String.sub text start (!close - start))
  end

let collapse_ws s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "" && w <> "\r")
  |> String.concat " "

(* First sentence: cut after the first '.' that ends a word.  Inline
   code like [Q.t] never ends a word with '.', so it survives. *)
let first_sentence s =
  let s = collapse_ws s in
  let n = String.length s in
  let rec go i =
    if i >= n then s
    else if s.[i] = '.' && (i + 1 = n || s.[i + 1] = ' ') then
      String.sub s 0 (i + 1)
    else go (i + 1)
  in
  go 0

let scan_mli path =
  let base = Filename.remove_extension (Filename.basename path) in
  {
    path;
    modname = String.capitalize_ascii base;
    synopsis = Option.map first_sentence (leading_doc_comment (read_file path));
  }

(* The library name is the first (name ...) field of the dune file —
   every lib/ sublibrary declares exactly one library stanza. *)
let library_name dune_path =
  let text = read_file dune_path in
  let n = String.length text in
  let key = "(name" in
  let rec find i =
    if i + String.length key > n then None
    else if String.sub text i (String.length key) = key then begin
      let j = ref (i + String.length key) in
      while !j < n && is_space text.[!j] do incr j done;
      let k = ref !j in
      while !k < n && (not (is_space text.[!k])) && text.[!k] <> ')' do
        incr k
      done;
      if !k > !j then Some (String.sub text !j (!k - !j)) else None
    end
    else find (i + 1)
  in
  find 0

let scan_sublib dir =
  match library_name (Filename.concat dir "dune") with
  | None -> None
  | Some libname ->
      let mlis =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mli")
        |> List.sort compare
        |> List.map (fun f -> scan_mli (Filename.concat dir f))
      in
      Some { dir; libname; mlis }

(* All sublibraries under [root] (normally "lib"), sorted by path. *)
let scan root =
  Sys.readdir root |> Array.to_list |> List.sort compare
  |> List.filter_map (fun d ->
         let dir = Filename.concat root d in
         if Sys.is_directory dir then scan_sublib dir else None)
