(* Tests for Harness.Daemon (socket server, frame safety, cache and
   backpressure policy, drain) and its defender instantiation
   Service.Daemon_service, including the canonical-key property the
   solve cache rests on: two relabelings of one graph share an entry. *)

module J = Harness.Json
module D = Harness.Daemon

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let uniq = ref 0

let fresh_socket () =
  incr uniq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dfd_%d_%d.sock" (Unix.getpid ()) !uniq)

(* Fork a daemon around the given handler/cache_key; run [f path] in the
   test process once the child signals readiness; then shut the daemon
   down (politely first, SIGKILL as a backstop) and return both [f]'s
   result and the daemon's wait status. *)
let with_daemon ?(workers = 1) ?timeout ?max_inflight ?cache_entries ?max_frame
    ~cache_key handler f =
  let path = fresh_socket () in
  let ready_r, ready_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close ready_r;
      (try
         ignore
           (D.serve ~address:(D.Unix_socket path) ~workers ?timeout
              ?max_inflight ?cache_entries ?max_frame
              ~on_ready:(fun _ -> ignore (Unix.write ready_w (Bytes.of_string "R") 0 1))
              ~cache_key handler)
       with _ -> Unix._exit 2);
      Unix._exit 0
  | daemon ->
      Unix.close ready_w;
      let ready = Bytes.create 1 in
      (match Unix.read ready_r ready 0 1 with
      | 1 -> ()
      | _ -> Alcotest.fail "daemon never became ready"
      | exception Unix.Unix_error _ -> Alcotest.fail "daemon died on startup");
      Unix.close ready_r;
      let result =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill daemon Sys.sigterm
             with Unix.Unix_error _ -> ());
            let rec reap tries =
              match Unix.waitpid [ Unix.WNOHANG ] daemon with
              | 0, _ when tries > 0 ->
                  ignore (Unix.select [] [] [] 0.1);
                  reap (tries - 1)
              | 0, _ ->
                  Unix.kill daemon Sys.sigkill;
                  ignore (Harness.Wire.waitpid_retry daemon)
              | _ -> ()
              | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
            in
            reap 50;
            try Unix.unlink path with Unix.Unix_error _ -> ())
          (fun () -> f path)
      in
      result

let wait_status daemon_pid = Harness.Wire.waitpid_retry daemon_pid

(* The toy handler: echo, a cacheable op whose result embeds a
   worker-local call counter (so a cache hit is distinguishable from a
   quiet recomputation), a sleeper, a hard failure, and a crash. *)
let calls = ref 0

let toy_handler msg =
  match J.member "op" msg with
  | Some (J.String "echo") ->
      J.Obj
        [
          ("ok", J.Bool true);
          ("result", Option.value (J.member "x" msg) ~default:J.Null);
        ]
  | Some (J.String "cache") ->
      incr calls;
      J.Obj
        [
          ("ok", J.Bool true);
          ( "result",
            J.Obj
              [
                ("x", Option.value (J.member "x" msg) ~default:J.Null);
                ("calls", J.Int !calls);
              ] );
        ]
  | Some (J.String "slow") ->
      ignore (Unix.select [] [] [] 0.5);
      J.Obj [ ("ok", J.Bool true); ("result", J.String "slept") ]
  | Some (J.String "hang") ->
      ignore (Unix.select [] [] [] 30.0);
      J.Obj [ ("ok", J.Bool true); ("result", J.String "woke") ]
  | Some (J.String "fail") ->
      J.Obj [ ("ok", J.Bool false); ("error", J.String "handler says no") ]
  | Some (J.String "crash") -> Unix._exit 9
  | _ -> J.Obj [ ("ok", J.Bool false); ("error", J.String "unknown toy op") ]

let toy_cache_key msg =
  match (J.member "op" msg, J.member "x" msg) with
  | Some (J.String "cache"), Some x -> Some ("x:" ^ J.to_string x)
  | _ -> None

let request_ok conn msg =
  match D.Client.request conn msg with
  | Ok response -> response
  | Error e -> Alcotest.failf "request failed: %s" e

let get path msg =
  let conn = D.Client.connect (D.Unix_socket path) in
  Fun.protect
    ~finally:(fun () -> D.Client.close conn)
    (fun () -> request_ok conn msg)

let field name json =
  match J.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (J.to_string json)

let metric name json =
  match J.member name (field "metrics" json) with
  | Some (J.Int v) -> v
  | _ -> Alcotest.failf "no %s metric in %s" name (J.to_string json)

let check_counters label json ~requests ~hits ~busy =
  Alcotest.(check int) (label ^ ": daemon.requests") requests
    (metric "daemon.requests" json);
  Alcotest.(check int) (label ^ ": daemon.cache_hits") hits
    (metric "daemon.cache_hits" json);
  Alcotest.(check int) (label ^ ": daemon.busy_rejects") busy
    (metric "daemon.busy_rejects" json)

(* --- protocol basics --- *)

let test_ping_and_ids () =
  with_daemon ~cache_key:toy_cache_key toy_handler @@ fun path ->
  let r = get path (J.Obj [ ("id", J.Int 41); ("op", J.String "ping") ]) in
  Alcotest.(check bool) "ok" true (field "ok" r = J.Bool true);
  Alcotest.(check bool) "id echoed" true (field "id" r = J.Int 41);
  Alcotest.(check bool) "pong" true (field "result" r = J.String "pong");
  check_counters "first" r ~requests:1 ~hits:0 ~busy:0;
  (* a structured id is echoed verbatim too, and op-less requests error *)
  let r2 = get path (J.Obj [ ("id", J.List [ J.String "a" ]) ]) in
  Alcotest.(check bool) "ok false" true (field "ok" r2 = J.Bool false);
  Alcotest.(check bool) "id echoed" true (field "id" r2 = J.List [ J.String "a" ]);
  Alcotest.(check bool) "names the problem" true
    (match field "error" r2 with
    | J.String e -> contains e "op"
    | _ -> false)

(* The server must assemble frames from arbitrarily fragmented reads:
   send a request one byte at a time over the raw socket. *)
let test_byte_at_a_time_frames () =
  with_daemon ~cache_key:toy_cache_key toy_handler @@ fun path ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Harness.Wire.close_quietly fd) @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let payload =
    J.to_string (J.Obj [ ("id", J.Int 1); ("op", J.String "ping") ])
  in
  let bytes = string_of_int (String.length payload) ^ "\n" ^ payload in
  String.iter
    (fun c -> ignore (Unix.write fd (Bytes.make 1 c) 0 1))
    bytes;
  match Harness.Wire.read_frame fd with
  | Some (Ok r) ->
      Alcotest.(check bool) "pong through fragmentation" true
        (J.member "result" r = Some (J.String "pong"))
  | _ -> Alcotest.fail "no response to fragmented request"

(* --- frame safety: the server survives bad clients --- *)

let test_garbage_frame_rejected () =
  with_daemon ~cache_key:toy_cache_key toy_handler @@ fun path ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let junk = "not a frame at all\n" in
  ignore (Unix.write fd (Bytes.of_string junk) 0 (String.length junk));
  (match Harness.Wire.read_frame fd with
  | Some (Ok r) ->
      Alcotest.(check bool) "error response" true (field "ok" r = J.Bool false);
      Alcotest.(check bool) "names the frame" true
        (match field "error" r with
        | J.String e -> contains e "bad frame"
        | _ -> false)
  | _ -> Alcotest.fail "no diagnostic for garbage");
  (* the connection is closed after the diagnostic... *)
  Alcotest.(check bool) "connection closed" true
    (Harness.Wire.read_frame fd = None);
  Harness.Wire.close_quietly fd;
  (* ...but the server is fine *)
  let r = get path (J.Obj [ ("op", J.String "ping") ]) in
  Alcotest.(check bool) "server survived" true (field "ok" r = J.Bool true)

let test_oversized_frame_rejected () =
  with_daemon ~max_frame:64 ~cache_key:toy_cache_key toy_handler @@ fun path ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (* Declare a 10 MB payload but send none of it: the guard must fire
     from the header alone. *)
  let header = "10000000\n" in
  ignore (Unix.write fd (Bytes.of_string header) 0 (String.length header));
  (match Harness.Wire.read_frame fd with
  | Some (Ok r) ->
      Alcotest.(check bool) "rejected from header" true
        (match field "error" r with
        | J.String e -> contains e "exceeds limit"
        | _ -> false)
  | _ -> Alcotest.fail "no diagnostic for oversized frame");
  Alcotest.(check bool) "connection closed" true
    (Harness.Wire.read_frame fd = None);
  Harness.Wire.close_quietly fd;
  let r = get path (J.Obj [ ("op", J.String "ping") ]) in
  Alcotest.(check bool) "server survived" true (field "ok" r = J.Bool true)

(* --- cache policy and counter determinism --- *)

let test_cache_hits_and_counters () =
  with_daemon ~workers:1 ~cache_key:toy_cache_key toy_handler @@ fun path ->
  let q x = J.Obj [ ("id", J.Int x); ("op", J.String "cache"); ("x", J.Int x) ] in
  let r1 = get path (q 7) in
  Alcotest.(check bool) "cold miss" true (field "cached" r1 = J.Bool false);
  check_counters "cold" r1 ~requests:1 ~hits:0 ~busy:0;
  let r2 = get path (q 7) in
  Alcotest.(check bool) "warm hit" true (field "cached" r2 = J.Bool true);
  check_counters "warm" r2 ~requests:2 ~hits:1 ~busy:0;
  (* byte-identical result payload: the handler's call counter proves
     the worker was not consulted again *)
  Alcotest.(check string) "result bytes identical"
    (J.to_string (field "result" r1))
    (J.to_string (field "result" r2));
  let r3 = get path (q 8) in
  Alcotest.(check bool) "different key misses" true
    (field "cached" r3 = J.Bool false);
  check_counters "second cold" r3 ~requests:3 ~hits:1 ~busy:0;
  Alcotest.(check bool) "worker consulted for the new key" true
    (J.member "calls" (field "result" r3) = Some (J.Int 2));
  let r4 = get path (q 7) in
  check_counters "warm again" r4 ~requests:4 ~hits:2 ~busy:0;
  Alcotest.(check string) "still the first result"
    (J.to_string (field "result" r1))
    (J.to_string (field "result" r4))

let test_handler_errors_not_cached () =
  with_daemon ~workers:1 ~cache_key:(fun _ -> Some "same-key")
    toy_handler
  @@ fun path ->
  let r1 = get path (J.Obj [ ("op", J.String "fail") ]) in
  Alcotest.(check bool) "handler error surfaces" true
    (field "ok" r1 = J.Bool false);
  (* the error shares the cache key with a fine request; it must not
     have poisoned the cache *)
  let r2 = get path (J.Obj [ ("op", J.String "echo"); ("x", J.Int 1) ]) in
  Alcotest.(check bool) "ok after error" true (field "ok" r2 = J.Bool true);
  Alcotest.(check bool) "echo not served from a poisoned cache" true
    (field "cached" r2 = J.Bool false)

(* --- backpressure --- *)

let test_busy_rejects () =
  with_daemon ~workers:1 ~max_inflight:1 ~cache_key:toy_cache_key toy_handler
  @@ fun path ->
  let c1 = D.Client.connect (D.Unix_socket path) in
  let c2 = D.Client.connect (D.Unix_socket path) in
  Fun.protect
    ~finally:(fun () ->
      D.Client.close c1;
      D.Client.close c2)
  @@ fun () ->
  (* Occupy the single inflight slot with the sleeper, then query from a
     second connection while it holds the slot. *)
  let slow_sent = J.Obj [ ("id", J.Int 1); ("op", J.String "slow") ] in
  (match c1 with
  | _ ->
      (* send without waiting for the response *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Harness.Wire.write_frame fd slow_sent;
      ignore (Unix.select [] [] [] 0.15);
      let r = request_ok c2 (J.Obj [ ("id", J.Int 2); ("op", J.String "echo") ]) in
      Alcotest.(check bool) "busy flag" true (field "busy" r = J.Bool true);
      Alcotest.(check bool) "not ok" true (field "ok" r = J.Bool false);
      Alcotest.(check int) "busy counted" 1 (metric "daemon.busy_rejects" r);
      (* the occupant still completes *)
      (match Harness.Wire.read_frame fd with
      | Some (Ok slow_r) ->
          Alcotest.(check bool) "sleeper completed" true
            (J.member "result" slow_r = Some (J.String "slept"))
      | _ -> Alcotest.fail "sleeper lost");
      Harness.Wire.close_quietly fd;
      (* slot free again: the next request is served, reject count stays *)
      let r2 = get path (J.Obj [ ("op", J.String "echo"); ("x", J.Int 5) ]) in
      Alcotest.(check bool) "served after slot freed" true
        (field "ok" r2 = J.Bool true);
      Alcotest.(check int) "rejects stable" 1 (metric "daemon.busy_rejects" r2))

(* --- concurrency --- *)

let test_two_concurrent_clients () =
  with_daemon ~workers:2 ~cache_key:toy_cache_key toy_handler @@ fun path ->
  let c1 = D.Client.connect (D.Unix_socket path) in
  let c2 = D.Client.connect (D.Unix_socket path) in
  Fun.protect
    ~finally:(fun () ->
      D.Client.close c1;
      D.Client.close c2)
  @@ fun () ->
  for i = 1 to 5 do
    let r1 =
      request_ok c1
        (J.Obj [ ("id", J.Int (10 + i)); ("op", J.String "echo"); ("x", J.Int i) ])
    in
    let r2 =
      request_ok c2
        (J.Obj
           [ ("id", J.Int (20 + i)); ("op", J.String "echo"); ("x", J.Int (-i)) ])
    in
    Alcotest.(check bool)
      (Printf.sprintf "client 1 round %d" i)
      true
      (field "id" r1 = J.Int (10 + i) && field "result" r1 = J.Int i);
    Alcotest.(check bool)
      (Printf.sprintf "client 2 round %d" i)
      true
      (field "id" r2 = J.Int (20 + i) && field "result" r2 = J.Int (-i))
  done

(* --- worker faults surface as error envelopes --- *)

let test_worker_crash_and_timeout () =
  with_daemon ~workers:1 ~timeout:0.3 ~cache_key:toy_cache_key toy_handler
  @@ fun path ->
  let r = get path (J.Obj [ ("op", J.String "crash") ]) in
  Alcotest.(check bool) "crash becomes an error envelope" true
    (match (field "ok" r, field "error" r) with
    | J.Bool false, J.String e -> contains e "worker crashed"
    | _ -> false);
  let r2 = get path (J.Obj [ ("op", J.String "hang") ]) in
  Alcotest.(check bool) "deadline becomes an error envelope" true
    (match (field "ok" r2, field "error" r2) with
    | J.Bool false, J.String e -> contains e "timed out"
    | _ -> false);
  (* and the daemon still answers *)
  let r3 = get path (J.Obj [ ("op", J.String "ping") ]) in
  Alcotest.(check bool) "alive after faults" true (field "ok" r3 = J.Bool true)

(* --- shutdown and drain --- *)

let test_shutdown_op_drains () =
  let path = fresh_socket () in
  let ready_r, ready_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close ready_r;
      (try
         let stats =
           D.serve ~address:(D.Unix_socket path) ~workers:1
             ~on_ready:(fun _ ->
               ignore (Unix.write ready_w (Bytes.of_string "R") 0 1))
             ~cache_key:toy_cache_key toy_handler
         in
         (* the drain path must report the counters faithfully *)
         if stats.D.requests = 2 && stats.D.cache_hits = 0 then Unix._exit 0
         else Unix._exit 3
       with _ -> Unix._exit 2)
  | daemon -> (
      Unix.close ready_w;
      let b = Bytes.create 1 in
      (match Unix.read ready_r b 0 1 with
      | 1 -> ()
      | _ -> Alcotest.fail "daemon never ready");
      Unix.close ready_r;
      let r = get path (J.Obj [ ("op", J.String "ping") ]) in
      Alcotest.(check bool) "ping ok" true (field "ok" r = J.Bool true);
      let r2 = get path (J.Obj [ ("op", J.String "shutdown") ]) in
      Alcotest.(check bool) "shutdown acknowledged" true
        (field "result" r2 = J.String "draining");
      match wait_status daemon with
      | Unix.WEXITED 0 ->
          Alcotest.(check bool) "socket removed" false (Sys.file_exists path)
      | Unix.WEXITED c -> Alcotest.failf "daemon exited %d" c
      | _ -> Alcotest.fail "daemon killed by signal")

let test_sigterm_drains () =
  let path = fresh_socket () in
  let ready_r, ready_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close ready_r;
      (try
         ignore
           (D.serve ~address:(D.Unix_socket path) ~workers:2
              ~on_ready:(fun _ ->
                ignore (Unix.write ready_w (Bytes.of_string "R") 0 1))
              ~cache_key:toy_cache_key toy_handler)
       with _ -> Unix._exit 2);
      Unix._exit 0
  | daemon -> (
      Unix.close ready_w;
      let b = Bytes.create 1 in
      (match Unix.read ready_r b 0 1 with
      | 1 -> ()
      | _ -> Alcotest.fail "daemon never ready");
      Unix.close ready_r;
      let r = get path (J.Obj [ ("op", J.String "ping") ]) in
      Alcotest.(check bool) "ping ok" true (field "ok" r = J.Bool true);
      Unix.kill daemon Sys.sigterm;
      match wait_status daemon with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> Alcotest.failf "daemon exited %d on SIGTERM" c
      | Unix.WSIGNALED s ->
          Alcotest.failf "daemon killed by %s instead of draining"
            (Harness.Wire.signal_name s)
      | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped")

(* --- the real defender service: canonical key across relabelings --- *)

let test_service_solve_shares_cache_across_relabelings () =
  with_daemon ~workers:1 ~cache_key:Service.Daemon_service.cache_key
    Service.Daemon_service.handle
  @@ fun path ->
  let g6_a = Netgraph.Graph6.encode (Netgraph.Gen.path 6) in
  (* the same 6-path under the relabeling 3-5-1-0-2-4 *)
  let g6_b =
    Netgraph.Graph6.encode
      (Netgraph.Graph.make ~n:6 [ (3, 5); (5, 1); (1, 0); (0, 2); (2, 4) ])
  in
  Alcotest.(check bool) "relabeling changes the bytes" true (g6_a <> g6_b);
  let q g6 =
    J.Obj
      [
        ("id", J.Int 0);
        ("op", J.String "solve");
        ("graph6", J.String g6);
        ("k", J.Int 2);
        ("nu", J.Int 3);
      ]
  in
  let r1 = get path (q g6_a) in
  Alcotest.(check bool) "cold solve ok" true (field "ok" r1 = J.Bool true);
  Alcotest.(check bool) "cold is a miss" true (field "cached" r1 = J.Bool false);
  Alcotest.(check bool) "gain 2 = k*nu/|IS|" true
    (J.member "gain" (field "result" r1) = Some (J.String "2"));
  let r2 = get path (q g6_b) in
  Alcotest.(check bool) "relabeled query hits" true
    (field "cached" r2 = J.Bool true);
  Alcotest.(check string) "identical result payload"
    (J.to_string (field "result" r1))
    (J.to_string (field "result" r2));
  check_counters "relabeled" r2 ~requests:2 ~hits:1 ~busy:0;
  (* different parameters are different instances *)
  let r3 =
    get path
      (J.Obj
         [
           ("op", J.String "solve");
           ("graph6", J.String g6_b);
           ("k", J.Int 1);
           ("nu", J.Int 3);
         ])
  in
  Alcotest.(check bool) "different k misses" true
    (field "cached" r3 = J.Bool false)

let test_service_profit_and_check_not_cached () =
  with_daemon ~workers:1 ~cache_key:Service.Daemon_service.cache_key
    Service.Daemon_service.handle
  @@ fun path ->
  let g = Netgraph.Gen.path 6 in
  let m = Defender.Model.make ~graph:g ~nu:3 ~k:2 in
  let prof =
    match Defender.Tuple_nash.a_tuple_auto m with
    | Ok p -> p
    | Error e -> Alcotest.failf "solver failed: %s" e
  in
  let text = Defender.Profile_io.to_string prof in
  let q op =
    J.Obj
      [
        ("op", J.String op);
        ("graph6", J.String (Netgraph.Graph6.encode g));
        ("k", J.Int 2);
        ("nu", J.Int 3);
        ("profile", J.String text);
      ]
  in
  let r1 = get path (q "profit") in
  Alcotest.(check bool) "profit ok" true (field "ok" r1 = J.Bool true);
  Alcotest.(check bool) "gain reported" true
    (J.member "gain" (field "result" r1) = Some (J.String "2"));
  let r2 = get path (q "profit") in
  Alcotest.(check bool) "profit never cached" true
    (field "cached" r2 = J.Bool false);
  let r3 = get path (q "equilibrium-check") in
  Alcotest.(check bool) "equilibrium confirmed" true
    (J.member "confirmed" (field "result" r3) = Some (J.Bool true));
  let r4 = get path (q "equilibrium-check") in
  Alcotest.(check bool) "equilibrium-check never cached" true
    (field "cached" r4 = J.Bool false);
  (* malformed inputs come back as typed errors, not crashes *)
  let r5 =
    get path
      (J.Obj [ ("op", J.String "solve"); ("graph6", J.String "!!bogus!!") ])
  in
  Alcotest.(check bool) "bad graph6 is a clean error" true
    (match (field "ok" r5, field "error" r5) with
    | J.Bool false, J.String e -> not (contains e "crashed")
    | _ -> false)

let test_service_double_oracle_method () =
  with_daemon ~workers:1 ~cache_key:Service.Daemon_service.cache_key
    Service.Daemon_service.handle
  @@ fun path ->
  (* C5 with k=2: no closed-form characterization, but the double-oracle
     loop solves it (value 4/5 — see test_solver.ml). *)
  let g6 = Netgraph.Graph6.encode (Netgraph.Gen.cycle 5) in
  let q fields =
    J.Obj
      ([ ("op", J.String "solve"); ("graph6", J.String g6) ] @ fields)
  in
  let base = [ ("k", J.Int 2); ("nu", J.Int 2) ] in
  let r1 = get path (q (base @ [ ("method", J.String "double-oracle") ])) in
  Alcotest.(check bool) "double-oracle solve ok" true
    (field "ok" r1 = J.Bool true);
  Alcotest.(check bool) "value 4/5" true
    (J.member "value" (field "result" r1) = Some (J.String "4/5"));
  Alcotest.(check bool) "gain 8/5" true
    (J.member "gain" (field "result" r1) = Some (J.String "8/5"));
  Alcotest.(check bool) "verdict confirmed" true
    (J.member "verdict" (field "result" r1) = Some (J.String "confirmed"));
  (* the characterization answer for the same instance lives under a
     DIFFERENT cache key: it must be a miss, and a negative answer *)
  let r2 = get path (q base) in
  Alcotest.(check bool) "characterization is a separate key" true
    (field "cached" r2 = J.Bool false);
  Alcotest.(check bool) "characterization has no closed form" true
    (J.member "solvable" (field "result" r2) = Some (J.Bool false));
  (* resending the double-oracle request hits its own entry *)
  let r3 = get path (q (base @ [ ("method", J.String "double-oracle") ])) in
  Alcotest.(check bool) "double-oracle resend hits" true
    (field "cached" r3 = J.Bool true);
  Alcotest.(check string) "identical cached payload"
    (J.to_string (field "result" r1))
    (J.to_string (field "result" r3));
  (* spelling out the default method maps to the characterization key *)
  let r4 = get path (q (base @ [ ("method", J.String "characterization") ])) in
  Alcotest.(check bool) "explicit default method hits the same entry" true
    (field "cached" r4 = J.Bool true);
  (* the subgraph game solves under double-oracle only *)
  let r5 =
    get path
      (q
         [
           ("game", J.String "subgraph");
           ("lambda", J.Int 2);
           ("nu", J.Int 2);
           ("method", J.String "double-oracle");
         ])
  in
  Alcotest.(check bool) "subgraph double-oracle ok" true
    (field "ok" r5 = J.Bool true);
  Alcotest.(check bool) "subgraph value 2/5" true
    (J.member "value" (field "result" r5) = Some (J.String "2/5"))

let test_service_equilibrium_check_oracle_mode () =
  with_daemon ~workers:1 ~cache_key:Service.Daemon_service.cache_key
    Service.Daemon_service.handle
  @@ fun path ->
  let g = Netgraph.Gen.path 6 in
  let m = Defender.Model.make ~graph:g ~nu:3 ~k:2 in
  let prof =
    match Defender.Tuple_nash.a_tuple_auto m with
    | Ok p -> p
    | Error e -> Alcotest.failf "solver failed: %s" e
  in
  let r =
    get path
      (J.Obj
         [
           ("op", J.String "equilibrium-check");
           ("graph6", J.String (Netgraph.Graph6.encode g));
           ("k", J.Int 2);
           ("nu", J.Int 3);
           ("profile", J.String (Defender.Profile_io.to_string prof));
           ("mode", J.String "oracle");
         ])
  in
  Alcotest.(check bool) "oracle-mode check ok" true (field "ok" r = J.Bool true);
  Alcotest.(check bool) "confirmed" true
    (J.member "confirmed" (field "result" r) = Some (J.Bool true))

let () =
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and ids" `Quick test_ping_and_ids;
          Alcotest.test_case "byte-at-a-time frames" `Quick
            test_byte_at_a_time_frames;
          Alcotest.test_case "two concurrent clients" `Quick
            test_two_concurrent_clients;
        ] );
      ( "frame safety",
        [
          Alcotest.test_case "garbage frame" `Quick test_garbage_frame_rejected;
          Alcotest.test_case "oversized frame" `Quick
            test_oversized_frame_rejected;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits and counters" `Quick
            test_cache_hits_and_counters;
          Alcotest.test_case "handler errors not cached" `Quick
            test_handler_errors_not_cached;
        ] );
      ( "backpressure",
        [ Alcotest.test_case "busy rejects" `Quick test_busy_rejects ] );
      ( "faults",
        [
          Alcotest.test_case "worker crash and timeout" `Quick
            test_worker_crash_and_timeout;
        ] );
      ( "drain",
        [
          Alcotest.test_case "shutdown op" `Quick test_shutdown_op_drains;
          Alcotest.test_case "SIGTERM" `Quick test_sigterm_drains;
        ] );
      ( "service",
        [
          Alcotest.test_case "solve cache across relabelings" `Quick
            test_service_solve_shares_cache_across_relabelings;
          Alcotest.test_case "profit/check uncached" `Quick
            test_service_profit_and_check_not_cached;
          Alcotest.test_case "double-oracle method" `Quick
            test_service_double_oracle_method;
          Alcotest.test_case "oracle-mode equilibrium check" `Quick
            test_service_equilibrium_check_oracle_mode;
        ] );
    ]
