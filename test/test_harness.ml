(* Tests for the experiment harness: tables, statistics, timing. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* --- Table --- *)

let test_table_rendering () =
  let t = Harness.Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Harness.Table.add_row t [ "alpha"; "1" ];
  Harness.Table.add_row t [ "beta-long-cell"; "22" ];
  let s = Harness.Table.to_string t in
  Alcotest.(check bool) "has title" true (contains s "== demo ==");
  Alcotest.(check bool) "has header" true (contains s "name");
  Alcotest.(check bool) "has rows" true (contains s "beta-long-cell");
  (* alignment: every rendered line reaches the widest cell *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check bool) "several lines" true (List.length lines >= 4)

let test_table_row_padding () =
  let t = Harness.Table.create ~title:"pad" ~columns:[ "a"; "b"; "c" ] in
  Harness.Table.add_row t [ "only-one" ];
  let s = Harness.Table.to_string t in
  Alcotest.(check bool) "short row padded" true (contains s "only-one");
  (* overflow is a programming error, not data to silently drop *)
  Alcotest.check_raises "overflow raises"
    (Invalid_argument "Table.add_row: 4 cells for 3 columns in table \"pad\"")
    (fun () -> Harness.Table.add_row t [ "x"; "y"; "z"; "overflow" ])

let test_table_csv () =
  let t = Harness.Table.create ~title:"csv" ~columns:[ "a"; "b" ] in
  Harness.Table.add_row t [ "plain"; "1,5" ];
  Harness.Table.add_row t [ "quote\"inside"; "x" ];
  let csv = Harness.Table.to_csv t in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "a,b" (List.hd lines);
  Alcotest.(check bool) "comma cell quoted" true (contains csv "\"1,5\"");
  Alcotest.(check bool) "quote escaped" true (contains csv "\"quote\"\"inside\"")

let test_series_rendering () =
  let s =
    Harness.Table.series ~title:"fig" ~x_label:"k" ~y_label:"gain"
      [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ]
  in
  Alcotest.(check bool) "title" true (contains s "== fig ==");
  Alcotest.(check bool) "labels" true (contains s "y: gain");
  Alcotest.(check bool) "data points" true (contains s "(2, 4)")

let test_multi_series () =
  let s =
    Harness.Table.multi_series ~title:"multi" ~x_label:"x" ~y_label:"y"
      [ ("up", [ (0.0, 0.0); (1.0, 1.0) ]); ("down", [ (0.0, 1.0); (1.0, 0.0) ]) ]
  in
  Alcotest.(check bool) "first series named" true (contains s "up");
  Alcotest.(check bool) "second series named" true (contains s "down");
  Alcotest.(check bool) "distinct markers" true
    (contains s "series '*'" && contains s "series 'o'")

let test_series_empty () =
  let s = Harness.Table.multi_series ~title:"empty" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "handles no data" true (contains s "(no data)")

(* --- Stats --- *)

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Harness.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev of constant" 0.0
    (Harness.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  (* sample (n-1) estimator: variance of [1;2;3] is 2/2 = 1 *)
  Alcotest.(check (float 1e-9)) "stddev" 1.0
    (Harness.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev of singleton" 0.0
    (Harness.Stats.stddev [ 42.0 ]);
  Alcotest.check_raises "mean of []" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Harness.Stats.mean []));
  Alcotest.check_raises "stddev of []"
    (Invalid_argument "Stats.stddev: empty list") (fun () ->
      ignore (Harness.Stats.stddev []))

let test_linear_fit_exact () =
  let fit = Harness.Stats.linear_fit [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 fit.Harness.Stats.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 fit.Harness.Stats.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 fit.Harness.Stats.r_squared;
  Alcotest.(check bool) "is_linear" true
    (Harness.Stats.is_linear [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ])

let test_linear_fit_noisy () =
  let points = [ (1.0, 1.0); (2.0, 1.9); (3.0, 3.2); (4.0, 3.9) ] in
  let fit = Harness.Stats.linear_fit points in
  Alcotest.(check bool) "slope near 1" true (abs_float (fit.Harness.Stats.slope -. 1.0) < 0.1);
  Alcotest.(check bool) "r2 high but not 1" true
    (fit.Harness.Stats.r_squared > 0.9 && fit.Harness.Stats.r_squared < 1.0);
  Alcotest.(check bool) "not exactly linear" false (Harness.Stats.is_linear points)

let test_linear_fit_guards () =
  Alcotest.check_raises "single point"
    (Invalid_argument "Stats.linear_fit: need at least two points") (fun () ->
      ignore (Harness.Stats.linear_fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical line"
    (Invalid_argument "Stats.linear_fit: x values are all equal") (fun () ->
      ignore (Harness.Stats.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]))

let test_non_finite_guards () =
  (* A single NaN/inf sample must be rejected at the door, not averaged
     into a silent NaN that poisons downstream acceptance bands. *)
  let expect_invalid name f =
    match f () with
    | (_ : float) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (name ^ " names the culprit") true
          (String.length msg > 0)
  in
  expect_invalid "mean with nan" (fun () ->
      Harness.Stats.mean [ 1.0; Float.nan; 3.0 ]);
  expect_invalid "mean with +inf" (fun () ->
      Harness.Stats.mean [ 1.0; Float.infinity ]);
  expect_invalid "fit with nan y" (fun () ->
      (Harness.Stats.linear_fit [ (1.0, 1.0); (2.0, Float.nan) ])
        .Harness.Stats.slope);
  expect_invalid "fit with -inf x" (fun () ->
      (Harness.Stats.linear_fit [ (Float.neg_infinity, 1.0); (2.0, 2.0) ])
        .Harness.Stats.slope);
  (* stddev funnels through mean, so it inherits the guard. *)
  expect_invalid "stddev with nan" (fun () ->
      Harness.Stats.stddev [ 1.0; Float.nan; 3.0 ])

let test_power_law () =
  (* y = 3 x^2 *)
  let points = List.init 5 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 3.0 *. (x ** 2.0)))
  in
  Alcotest.(check (float 1e-6)) "exponent 2" 2.0 (Harness.Stats.power_law_exponent points);
  Alcotest.check_raises "non-positive data"
    (Invalid_argument "Stats.power_law_exponent: non-positive data") (fun () ->
      ignore (Harness.Stats.power_law_exponent [ (0.0, 1.0); (1.0, 2.0) ]))

(* --- Timer --- *)

let test_timer () =
  let result, elapsed = Harness.Timer.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result passed through" 42 result;
  Alcotest.(check bool) "non-negative time" true (elapsed >= 0.0);
  let med = Harness.Timer.time_median ~repeat:3 (fun () -> ignore (Sys.opaque_identity 1)) in
  Alcotest.(check bool) "median non-negative" true (med >= 0.0);
  Alcotest.check_raises "repeat 0"
    (Invalid_argument "Timer.time_median: repeat must be positive") (fun () ->
      ignore (Harness.Timer.time_median ~repeat:0 (fun () -> ())))

let test_median_of_sorted () =
  (* Odd counts: the middle sample, bit-identical to the historical
     behaviour. *)
  Alcotest.(check (float 0.0)) "singleton" 5.0
    (Harness.Timer.median_of_sorted [ 5.0 ]);
  Alcotest.(check (float 0.0)) "odd takes the middle" 2.0
    (Harness.Timer.median_of_sorted [ 1.0; 2.0; 7.0 ]);
  (* Even counts: the two central samples are averaged.  The old
     behaviour returned the upper one (3.0 here), biasing every
     even-repeat median upward by half the central gap. *)
  Alcotest.(check (float 0.0)) "even averages the central pair" 2.5
    (Harness.Timer.median_of_sorted [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check (float 0.0)) "pair" 2.0
    (Harness.Timer.median_of_sorted [ 1.0; 3.0 ]);
  Alcotest.check_raises "empty list"
    (Invalid_argument "Timer.median_of_sorted: empty list") (fun () ->
      ignore (Harness.Timer.median_of_sorted []))

let test_time_stats_even_repeat () =
  (* With an even repeat the median is an average of real samples, so it
     must still sit between min and max (the old upper-sample bias kept
     this true trivially; the averaged estimator must too). *)
  let s =
    Harness.Timer.time_stats ~repeat:4 (fun () ->
        ignore (Sys.opaque_identity (Array.make 64 0)))
  in
  Alcotest.(check int) "runs recorded" 4 s.Harness.Timer.runs;
  Alcotest.(check bool) "min <= median <= max" true
    (s.Harness.Timer.min <= s.Harness.Timer.median
    && s.Harness.Timer.median <= s.Harness.Timer.max);
  Alcotest.(check bool) "all non-negative" true (s.Harness.Timer.min >= 0.0)

let test_timer_monotonic () =
  (* Timer.now reads CLOCK_MONOTONIC: successive samples never go
     backwards (gettimeofday, the old source, can — NTP slews it), and
     measured durations are always non-negative. *)
  let prev = ref (Harness.Timer.now ()) in
  for _ = 1 to 1000 do
    let t = Harness.Timer.now () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %.9f after %.9f" t !prev;
    prev := t
  done;
  for _ = 1 to 100 do
    let _, elapsed = Harness.Timer.time (fun () -> Sys.opaque_identity ()) in
    Alcotest.(check bool) "duration non-negative" true (elapsed >= 0.0)
  done

let () =
  Alcotest.run "harness"
    [
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "row padding" `Quick test_table_row_padding;
          Alcotest.test_case "csv export" `Quick test_table_csv;
          Alcotest.test_case "series" `Quick test_series_rendering;
          Alcotest.test_case "multi series" `Quick test_multi_series;
          Alcotest.test_case "empty series" `Quick test_series_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
          Alcotest.test_case "linear fit noisy" `Quick test_linear_fit_noisy;
          Alcotest.test_case "linear fit guards" `Quick test_linear_fit_guards;
          Alcotest.test_case "non-finite guards" `Quick test_non_finite_guards;
          Alcotest.test_case "power law" `Quick test_power_law;
        ] );
      ( "timer",
        [
          Alcotest.test_case "timing" `Quick test_timer;
          Alcotest.test_case "median of sorted" `Quick test_median_of_sorted;
          Alcotest.test_case "even-repeat stats" `Quick
            test_time_stats_even_repeat;
          Alcotest.test_case "monotonic" `Quick test_timer_monotonic;
        ] );
    ]
