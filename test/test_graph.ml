(* Tests for the netgraph substrate: core structure, generators,
   traversal, bipartiteness, properties and serialization. *)

open Netgraph

let rng () = Prng.Rng.create 1234

let test_make_validation () =
  Alcotest.check_raises "negative n" (Invalid_argument "Graph.make: negative vertex count")
    (fun () -> ignore (Graph.make ~n:(-1) []));
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self-loop at 1")
    (fun () -> ignore (Graph.make ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.make: duplicate edge (0,1)")
    (fun () -> ignore (Graph.make ~n:3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.make: endpoint out of range (0,5)") (fun () ->
      ignore (Graph.make ~n:3 [ (0, 5) ]))

let test_basic_accessors () =
  let g = Graph.make ~n:4 [ (0, 1); (2, 1); (2, 3) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check (pair int int)) "normalized endpoints" (1, 2) (Graph.endpoints g 1);
  Alcotest.(check bool) "adjacent" true (Graph.is_adjacent g 1 0);
  Alcotest.(check bool) "not adjacent" false (Graph.is_adjacent g 0 3);
  Alcotest.(check (option int)) "find_edge both ways" (Some 2) (Graph.find_edge g 3 2);
  Alcotest.(check (option int)) "find_edge absent" None (Graph.find_edge g 0 2);
  Alcotest.(check (array int)) "neighbors sorted" [| 0; 2 |] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 2);
  Alcotest.(check int) "opposite" 1 (Graph.opposite g 0 0);
  Alcotest.check_raises "opposite non-endpoint"
    (Invalid_argument "Graph.opposite: 3 not an endpoint of edge 0") (fun () ->
      ignore (Graph.opposite g 0 3))

let test_folds () =
  let g = Gen.cycle 5 in
  Alcotest.(check int) "fold_vertices" 10
    (Graph.fold_vertices g ~init:0 ~f:(fun acc v -> acc + v));
  Alcotest.(check int) "fold_edges counts" 5
    (Graph.fold_edges g ~init:0 ~f:(fun acc _ _ -> acc + 1));
  let sum_deg = Graph.fold_vertices g ~init:0 ~f:(fun a v -> a + Graph.degree g v) in
  Alcotest.(check int) "handshake lemma" (2 * Graph.m g) sum_deg

let test_isolated () =
  let g = Graph.make ~n:4 [ (0, 1) ] in
  Alcotest.(check (list int)) "isolated" [ 2; 3 ] (Graph.isolated_vertices g);
  Alcotest.(check bool) "has isolated" true (Graph.has_isolated_vertex g);
  Alcotest.(check bool) "path has none" false (Gen.path 4 |> Graph.has_isolated_vertex)

let test_neighborhood () =
  let g = Gen.path 5 in
  Alcotest.(check (list int)) "N({0})" [ 1 ] (Graph.neighborhood g [ 0 ]);
  Alcotest.(check (list int)) "N({1,3})" [ 0; 2; 4 ] (Graph.neighborhood g [ 1; 3 ]);
  Alcotest.(check (list int)) "N({2}) in cycle" [ 1; 3 ]
    (Graph.neighborhood (Gen.cycle 5) [ 2 ])

let test_edge_subgraph () =
  let g = Gen.cycle 4 in
  let sub, mapping = Graph.edge_subgraph g [ 0; 2 ] in
  Alcotest.(check int) "same n" 4 (Graph.n sub);
  Alcotest.(check int) "two edges" 2 (Graph.m sub);
  Alcotest.(check (array int)) "id mapping" [| 0; 2 |] mapping;
  Alcotest.(check bool) "edge kept" true
    (let e = Graph.edge g 0 in
     Graph.is_adjacent sub e.Graph.u e.Graph.v)

let test_equal () =
  let a = Graph.make ~n:3 [ (0, 1); (1, 2) ] in
  let b = Graph.make ~n:3 [ (2, 1); (1, 0) ] in
  let c = Graph.make ~n:3 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "equal up to orientation/order" true (Graph.equal a b);
  Alcotest.(check bool) "different edges" false (Graph.equal a c)

let test_builder () =
  let bd = Graph.Builder.create ~edges_hint:1 ~n:5 () in
  Alcotest.(check int) "vertex count" 5 (Graph.Builder.vertex_count bd);
  Alcotest.(check int) "edge count empty" 0 (Graph.Builder.edge_count bd);
  (* past the hint, forcing the growable arrays to double *)
  List.iter
    (fun (u, v) -> Graph.Builder.add_edge bd u v)
    [ (3, 0); (0, 1); (4, 1); (2, 3) ];
  Alcotest.(check int) "edge count" 4 (Graph.Builder.edge_count bd);
  let g = Graph.Builder.finish bd in
  Alcotest.(check bool) "same graph as make" true
    (Graph.equal g (Graph.make ~n:5 [ (0, 3); (0, 1); (1, 4); (2, 3) ]));
  (* insertion order is preserved as edge ids, orientation normalized *)
  Alcotest.(check (pair int int)) "edge 0" (0, 3) (Graph.endpoints g 0);
  Alcotest.(check (pair int int)) "edge 2" (1, 4) (Graph.endpoints g 2);
  Alcotest.check_raises "builder self-loop"
    (Invalid_argument "Graph.make: self-loop at 2") (fun () ->
      Graph.Builder.add_edge (Graph.Builder.create ~n:3 ()) 2 2);
  Alcotest.check_raises "builder range"
    (Invalid_argument "Graph.make: endpoint out of range (3,1)") (fun () ->
      Graph.Builder.add_edge (Graph.Builder.create ~n:3 ()) 3 1);
  Alcotest.check_raises "builder duplicate"
    (Invalid_argument "Graph.make: duplicate edge (1,2)") (fun () ->
      let bd = Graph.Builder.create ~n:3 () in
      Graph.Builder.add_edge bd 1 2;
      Graph.Builder.add_edge bd 2 1;
      ignore (Graph.Builder.finish bd))

let test_iterators_match_copies () =
  let g = Graph.make ~n:6 [ (0, 1); (0, 2); (1, 2); (2, 3); (3, 4); (1, 4) ] in
  for v = 0 to Graph.n g - 1 do
    let seen = ref [] in
    Graph.iter_neighbors g v ~f:(fun w -> seen := w :: !seen);
    Alcotest.(check (array int))
      (Printf.sprintf "iter_neighbors %d" v)
      (Graph.neighbors g v)
      (Array.of_list (List.rev !seen));
    let ids = ref [] in
    Graph.iter_incident g v ~f:(fun w id ->
        Alcotest.(check int) "incident pairs" w (Graph.opposite g id v);
        ids := id :: !ids);
    Alcotest.(check (array int))
      (Printf.sprintf "iter_incident %d" v)
      (Graph.incident_edges g v)
      (Array.of_list (List.rev !ids));
    Alcotest.(check int)
      (Printf.sprintf "fold_neighbors %d" v)
      (Array.fold_left ( + ) 0 (Graph.neighbors g v))
      (Graph.fold_neighbors g v ~init:0 ~f:( + ));
    Alcotest.(check int)
      (Printf.sprintf "fold_incident %d" v)
      (Array.fold_left ( + ) 0 (Graph.incident_edges g v))
      (Graph.fold_incident g v ~init:0 ~f:(fun acc _ id -> acc + id))
  done;
  Graph.iter_edges g ~f:(fun id e ->
      Alcotest.(check int) "edge_u" e.Graph.u (Graph.edge_u g id);
      Alcotest.(check int) "edge_v" e.Graph.v (Graph.edge_v g id))

(* Int_sort backs the CSR build; gate it against the stdlib sort. *)
let test_int_sort () =
  let r = rng () in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> Prng.Rng.int r 50) in
      let expect = Array.copy a in
      Array.sort Int.compare expect;
      Int_sort.sort a;
      Alcotest.(check (array int)) (Printf.sprintf "sort n=%d" n) expect a)
    [ 0; 1; 2; 3; 15; 16; 17; 100; 1000; 5000 ];
  (* adversarial shapes for the introsort's quicksort phase *)
  List.iter
    (fun (name, a) ->
      let expect = Array.copy a in
      Array.sort Int.compare expect;
      Int_sort.sort a;
      Alcotest.(check (array int)) name expect a)
    [
      ("sorted", Array.init 1000 Fun.id);
      ("reversed", Array.init 1000 (fun i -> 999 - i));
      ("constant", Array.make 1000 7);
      ("organ pipe", Array.init 1000 (fun i -> min i (999 - i)));
    ];
  (* sort_pairs: payload follows its key *)
  let keys = Array.init 2000 (fun _ -> Prng.Rng.int r 10_000_000) in
  let payload = Array.mapi (fun i k -> (k lsl 11) lor i) keys in
  Int_sort.sort_pairs keys payload;
  Alcotest.(check bool) "keys sorted" true
    (Array.for_all Fun.id (Array.init 1999 (fun i -> keys.(i) <= keys.(i + 1))));
  Alcotest.(check bool) "payload rides its key" true
    (Array.for_all Fun.id
       (Array.init 2000 (fun i -> payload.(i) lsr 11 = keys.(i))));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Int_sort.sort_pairs: length mismatch") (fun () ->
      Int_sort.sort_pairs (Array.make 2 0) (Array.make 3 0))

(* Generators *)

let check_summary name g ~n ~m ~connected ~bipartite =
  let s = Props.summary g in
  Alcotest.(check int) (name ^ " n") n s.Props.n;
  Alcotest.(check int) (name ^ " m") m s.Props.m;
  Alcotest.(check bool) (name ^ " connected") connected s.Props.connected;
  Alcotest.(check bool) (name ^ " bipartite") bipartite s.Props.bipartite

let test_deterministic_generators () =
  check_summary "path" (Gen.path 6) ~n:6 ~m:5 ~connected:true ~bipartite:true;
  check_summary "cycle even" (Gen.cycle 6) ~n:6 ~m:6 ~connected:true ~bipartite:true;
  check_summary "cycle odd" (Gen.cycle 5) ~n:5 ~m:5 ~connected:true ~bipartite:false;
  check_summary "star" (Gen.star 7) ~n:7 ~m:6 ~connected:true ~bipartite:true;
  check_summary "complete" (Gen.complete 5) ~n:5 ~m:10 ~connected:true ~bipartite:false;
  check_summary "K23" (Gen.complete_bipartite 2 3) ~n:5 ~m:6 ~connected:true
    ~bipartite:true;
  check_summary "grid" (Gen.grid 3 4) ~n:12 ~m:17 ~connected:true ~bipartite:true;
  check_summary "hypercube" (Gen.hypercube 3) ~n:8 ~m:12 ~connected:true ~bipartite:true;
  check_summary "binary tree" (Gen.binary_tree 3) ~n:15 ~m:14 ~connected:true
    ~bipartite:true

let test_generator_validation () =
  Alcotest.check_raises "path 1" (Invalid_argument "Gen.path: need n >= 2") (fun () ->
      ignore (Gen.path 1));
  Alcotest.check_raises "cycle 2" (Invalid_argument "Gen.cycle: need n >= 3") (fun () ->
      ignore (Gen.cycle 2));
  Alcotest.check_raises "regular odd"
    (Invalid_argument "Gen.random_regular: n * d must be even") (fun () ->
      ignore (Gen.random_regular (rng ()) ~n:5 ~d:3))

let test_random_tree () =
  let r = rng () in
  for n = 2 to 20 do
    let t = Gen.random_tree r ~n in
    Alcotest.(check int) "tree edges" (n - 1) (Graph.m t);
    Alcotest.(check bool) "tree connected" true (Traverse.is_connected t)
  done

let test_gnp_connected () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = Gen.gnp_connected r ~n:30 ~p:0.05 in
    Alcotest.(check bool) "connected" true (Traverse.is_connected g);
    Alcotest.(check bool) "no isolated" false (Graph.has_isolated_vertex g)
  done

let test_random_bipartite () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = Gen.random_bipartite r ~a:8 ~b:12 ~p:0.1 in
    Alcotest.(check bool) "bipartite" true (Bipartite.is_bipartite g);
    Alcotest.(check bool) "connected" true (Traverse.is_connected g)
  done

let test_random_regular () =
  let r = rng () in
  let g = Gen.random_regular r ~n:20 ~d:4 in
  Graph.iter_vertices g ~f:(fun v ->
      Alcotest.(check int) "regular degree" 4 (Graph.degree g v))

let test_enterprise () =
  let r = rng () in
  let g = Gen.enterprise r ~core:5 ~leaves:20 ~uplinks:2 in
  Alcotest.(check int) "n" 25 (Graph.n g);
  Alcotest.(check int) "m" ((5 * 4 / 2) + (20 * 2)) (Graph.m g);
  Alcotest.(check bool) "connected" true (Traverse.is_connected g);
  for leaf = 5 to 24 do
    Alcotest.(check int) "leaf degree" 2 (Graph.degree g leaf)
  done

(* Scalable generators (the BigGraph tier's instances, tested small). *)

let test_preferential_attachment () =
  let r = rng () in
  List.iter
    (fun (n, c) ->
      let g = Gen.preferential_attachment r ~n ~c in
      (* m = 1 + sum_{i=2}^{n-1} min(c, i): each arrival adds min(c, i)
         distinct earlier targets. *)
      let expect =
        let s = ref 1 in
        for i = 2 to n - 1 do
          s := !s + min c i
        done;
        !s
      in
      Alcotest.(check int) (Printf.sprintf "PA n=%d c=%d edges" n c) expect
        (Graph.m g);
      Alcotest.(check bool) "PA connected" true (Traverse.is_connected g))
    [ (50, 1); (200, 2); (100, 3) ];
  (* c = 1 grows a random recursive tree: m = n - 1 *)
  Alcotest.(check int) "PA tree" 49 (Graph.m (Gen.preferential_attachment r ~n:50 ~c:1))

let test_chung_lu () =
  let r = rng () in
  let n = 4000 in
  let g = Gen.chung_lu r ~n ~gamma:2.5 ~avg_degree:4.0 in
  Alcotest.(check int) "n" n (Graph.n g);
  let mean = 2.0 *. float_of_int (Graph.m g) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean degree %.2f near target" mean)
    true
    (mean > 2.0 && mean < 6.0);
  (* power-law skew: the hub outweighs the mean by a wide margin *)
  let maxd =
    Graph.fold_vertices g ~init:0 ~f:(fun acc v -> max acc (Graph.degree g v))
  in
  Alcotest.(check bool)
    (Printf.sprintf "heavy tail (max degree %d)" maxd)
    true
    (float_of_int maxd > 5.0 *. mean)

let test_random_bipartite_sparse () =
  let r = rng () in
  List.iter
    (fun (a, b, d) ->
      let g = Gen.random_bipartite_sparse r ~a ~b ~d in
      Alcotest.(check int) "exactly a*d edges" (a * d) (Graph.m g);
      Graph.iter_edges g ~f:(fun _ e ->
          Alcotest.(check bool) "edge crosses the sides" true
            (e.Graph.u < a && e.Graph.v >= a));
      for u = 0 to a - 1 do
        Alcotest.(check int) "left degree d" d (Graph.degree g u)
      done)
    [ (40, 60, 3); (10, 12, 8); (5, 5, 5) ]

(* Traversal *)

let test_bfs_dfs () =
  let g = Gen.path 5 in
  Alcotest.(check (list int)) "bfs from 0" [ 0; 1; 2; 3; 4 ] (Traverse.bfs_order g 0);
  Alcotest.(check (list int)) "dfs from 0" [ 0; 1; 2; 3; 4 ] (Traverse.dfs_order g 0);
  Alcotest.(check (list int)) "bfs from middle" [ 2; 1; 3; 0; 4 ]
    (Traverse.bfs_order g 2)

let test_distances () =
  let g = Gen.cycle 6 in
  Alcotest.(check (array int)) "cycle distances" [| 0; 1; 2; 3; 2; 1 |]
    (Traverse.distances g 0);
  let disconnected = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  let d = Traverse.distances disconnected 0 in
  Alcotest.(check int) "unreachable" (-1) d.(2)

let test_components () =
  let g = Graph.make ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Traverse.components g);
  Alcotest.(check bool) "not connected" false (Traverse.is_connected g);
  Alcotest.(check bool) "path connected" true (Traverse.is_connected (Gen.path 3))

let test_dfs_deep_path () =
  (* Regression: the recursive dfs_order overflowed the stack near
     n = 10^5 on a path; the explicit-stack version must not. *)
  let n = 200_000 in
  let order = Traverse.dfs_order (Gen.path n) 0 in
  Alcotest.(check int) "visits everything" n (List.length order);
  Alcotest.(check (list int)) "preorder prefix" [ 0; 1; 2; 3 ]
    (List.filteri (fun i _ -> i < 4) order)

let test_shortest_path () =
  let g = Gen.cycle 6 in
  (match Traverse.shortest_path g 0 3 with
  | Some p ->
      Alcotest.(check int) "path length" 4 (List.length p);
      Alcotest.(check int) "starts" 0 (List.hd p);
      Alcotest.(check int) "ends" 3 (List.nth p 3)
  | None -> Alcotest.fail "expected path");
  let disconnected = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "no path" true (Traverse.shortest_path disconnected 0 3 = None)

(* Bipartite *)

let test_bipartite_coloring () =
  match Bipartite.coloring (Gen.path 4) with
  | None -> Alcotest.fail "path should be bipartite"
  | Some c ->
      Alcotest.(check (list int)) "side A" [ 0; 2 ] c.Bipartite.side_a;
      Alcotest.(check (list int)) "side B" [ 1; 3 ] c.Bipartite.side_b;
      Graph.iter_edges (Gen.path 4) ~f:(fun _ e ->
          Alcotest.(check bool) "proper coloring" true
            (c.Bipartite.color.(e.Graph.u) <> c.Bipartite.color.(e.Graph.v)))

let test_odd_cycle () =
  (match Bipartite.odd_cycle (Gen.cycle 5) with
  | None -> Alcotest.fail "C5 has an odd cycle"
  | Some cycle ->
      Alcotest.(check bool) "closed" true (List.hd cycle = List.nth cycle (List.length cycle - 1));
      Alcotest.(check bool) "odd length" true ((List.length cycle - 1) mod 2 = 1));
  Alcotest.(check bool) "bipartite has none" true
    (Bipartite.odd_cycle (Gen.grid 2 3) = None)

let test_odd_cycle_is_real_cycle () =
  match Bipartite.odd_cycle (Gen.complete 4) with
  | None -> Alcotest.fail "K4 has an odd cycle"
  | Some cycle ->
      let g = Gen.complete 4 in
      let rec consecutive = function
        | a :: b :: rest ->
            Alcotest.(check bool) "consecutive adjacent" true (Graph.is_adjacent g a b);
            consecutive (b :: rest)
        | _ -> ()
      in
      consecutive cycle

(* Props *)

let test_props () =
  let g = Gen.star 5 in
  let s = Props.summary g in
  Alcotest.(check int) "min degree" 1 s.Props.min_degree;
  Alcotest.(check int) "max degree" 4 s.Props.max_degree;
  Alcotest.(check (float 1e-9)) "mean degree" 1.6 s.Props.mean_degree;
  Alcotest.(check (list int)) "degree sequence" [ 4; 1; 1; 1; 1 ]
    (Props.degree_sequence g);
  Alcotest.(check bool) "valid instance" true (Props.is_valid_instance g);
  Alcotest.(check bool) "isolated invalid" false
    (Props.is_valid_instance (Graph.make ~n:3 [ (0, 1) ]));
  Alcotest.(check (float 1e-9)) "density of K4" 1.0 (Props.density (Gen.complete 4))

(* Family specs *)

let test_family_parse () =
  let rng () = Prng.Rng.create 7 in
  Alcotest.(check bool) "grid spec" true
    (Graph.equal (Family.parse ~rng:(rng ()) "grid:3x4") (Gen.grid 3 4));
  Alcotest.(check bool) "kbip spec" true
    (Graph.equal
       (Family.parse ~rng:(rng ()) "kbip:3x4")
       (Gen.complete_bipartite 3 4));
  Alcotest.(check bool) "petersen spec" true
    (Graph.equal (Family.parse ~rng:(rng ()) "petersen") (Gen.petersen ()));
  let b = Family.parse ~rng:(rng ()) "bipartite:5x7:0.4" in
  Alcotest.(check int) "random bipartite n" 12 (Graph.n b);
  Alcotest.(check bool) "random bipartite is bipartite" true
    (Bipartite.coloring b <> None)

let test_family_parse_errors () =
  let parse spec = ignore (Family.parse ~rng:(Prng.Rng.create 7) spec) in
  let raises spec check_msg =
    match parse spec with
    | () -> Alcotest.failf "%s: expected Invalid_argument" spec
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (spec ^ ": message mentions the problem")
          true (check_msg msg)
  in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i =
      i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
    in
    scan 0
  in
  (* the old CLI parser silently built a grid for this spec *)
  raises "bipartite:5x7" (fun m -> contains m "edge probability");
  raises "bipartite:5x7" (fun m -> contains m "kbip");
  raises "nonsense:3" (fun m -> contains m "unrecognized");
  raises "grid:3" (fun m -> contains m "unrecognized");
  raises "multipartite" (fun m -> contains m "unrecognized")

(* Serialization *)

let test_edge_list_roundtrip () =
  let g = Gen.grid 3 3 in
  let text = Edge_list.to_string g in
  let g' = Edge_list.of_string text in
  Alcotest.(check bool) "roundtrip" true (Graph.equal g g')

let test_edge_list_parsing () =
  let g = Edge_list.of_string "# comment\n3\n0 1\n\n1 2\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g);
  Alcotest.check_raises "empty" (Invalid_argument "Edge_list.of_string: empty input")
    (fun () -> ignore (Edge_list.of_string "# only comments\n"));
  Alcotest.check_raises "bad header"
    (Invalid_argument "Edge_list.of_string: bad vertex-count header") (fun () ->
      ignore (Edge_list.of_string "abc\n0 1\n"))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_output () =
  let g = Gen.path 3 in
  let dot = Dot.to_string ~highlight_vertices:[ 1 ] ~highlight_edges:[ 0 ] g in
  Alcotest.(check bool) "mentions graph" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  Alcotest.(check bool) "highlights vertex" true (contains dot "indianred");
  Alcotest.(check bool) "highlights edge" true (contains dot "penwidth");
  Alcotest.(check bool) "lists edges" true (contains dot "0 -- 1")

(* Property tests *)

let graph_gen =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let r = Prng.Rng.create seed in
         Gen.gnp_connected r ~n:(2 + Prng.Rng.int r 18) ~p:0.2)
       QCheck.Gen.int)

let props =
  [
    QCheck.Test.make ~name:"handshake lemma on random graphs" ~count:100 graph_gen
      (fun g ->
        Graph.fold_vertices g ~init:0 ~f:(fun a v -> a + Graph.degree g v)
        = 2 * Graph.m g);
    QCheck.Test.make ~name:"neighbors symmetric" ~count:100 graph_gen (fun g ->
        Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
            acc
            && Array.mem e.Graph.v (Graph.neighbors g e.Graph.u)
            && Array.mem e.Graph.u (Graph.neighbors g e.Graph.v)));
    QCheck.Test.make ~name:"edge-list roundtrip preserves graph" ~count:50 graph_gen
      (fun g -> Graph.equal g (Edge_list.of_string (Edge_list.to_string g)));
    QCheck.Test.make ~name:"BFS visits the whole connected graph" ~count:50 graph_gen
      (fun g -> List.length (Traverse.bfs_order g 0) = Graph.n g);
    QCheck.Test.make ~name:"distances satisfy edge Lipschitz" ~count:50 graph_gen
      (fun g ->
        let d = Traverse.distances g 0 in
        Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
            acc && abs (d.(e.Graph.u) - d.(e.Graph.v)) <= 1));
    (* CSR vs a naive reference model built from the same edge list:
       the packed representation must be observationally identical. *)
    QCheck.Test.make ~name:"CSR agrees with the reference model" ~count:100
      graph_gen (fun g ->
        let n = Graph.n g in
        let adj = Array.make n [] in
        Graph.iter_edges g ~f:(fun id e ->
            adj.(e.Graph.u) <- (e.Graph.v, id) :: adj.(e.Graph.u);
            adj.(e.Graph.v) <- (e.Graph.u, id) :: adj.(e.Graph.v));
        let adj = Array.map (List.sort compare) adj in
        let ok = ref true in
        for v = 0 to n - 1 do
          ok := !ok && Graph.degree g v = List.length adj.(v);
          ok :=
            !ok
            && Array.to_list (Graph.neighbors g v) = List.map fst adj.(v)
            && Array.to_list (Graph.incident_edges g v) = List.map snd adj.(v);
          for w = 0 to n - 1 do
            ok :=
              !ok
              && Graph.find_edge g v w
                 = Option.map snd (List.find_opt (fun (x, _) -> x = w) adj.(v))
          done
        done;
        !ok);
    QCheck.Test.make ~name:"non-allocating iterators agree with copies"
      ~count:100 graph_gen (fun g ->
        let ok = ref true in
        for v = 0 to Graph.n g - 1 do
          let ns = ref [] and ids = ref [] in
          Graph.iter_neighbors g v ~f:(fun w -> ns := w :: !ns);
          Graph.iter_incident g v ~f:(fun w id ->
              ok := !ok && Graph.opposite g id v = w;
              ids := id :: !ids);
          ok :=
            !ok
            && List.rev !ns = Array.to_list (Graph.neighbors g v)
            && List.rev !ids = Array.to_list (Graph.incident_edges g v)
            && Graph.fold_neighbors g v ~init:0 ~f:( + )
               = Array.fold_left ( + ) 0 (Graph.neighbors g v)
        done;
        !ok);
    QCheck.Test.make ~name:"rebuild from edges is equal" ~count:100 graph_gen
      (fun g ->
        let edges =
          List.rev
            (Graph.fold_edges g ~init:[] ~f:(fun acc _ e ->
                 (e.Graph.v, e.Graph.u) :: acc))
        in
        Graph.equal g (Graph.make ~n:(Graph.n g) edges));
  ]

let () =
  Alcotest.run "graph"
    [
      ( "core",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "folds" `Quick test_folds;
          Alcotest.test_case "isolated" `Quick test_isolated;
          Alcotest.test_case "neighborhood" `Quick test_neighborhood;
          Alcotest.test_case "edge subgraph" `Quick test_edge_subgraph;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "iterators vs copies" `Quick test_iterators_match_copies;
          Alcotest.test_case "int sort" `Quick test_int_sort;
        ] );
      ( "generators",
        [
          Alcotest.test_case "deterministic families" `Quick test_deterministic_generators;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "gnp connected" `Quick test_gnp_connected;
          Alcotest.test_case "random bipartite" `Quick test_random_bipartite;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "enterprise" `Quick test_enterprise;
          Alcotest.test_case "preferential attachment" `Quick
            test_preferential_attachment;
          Alcotest.test_case "chung-lu" `Quick test_chung_lu;
          Alcotest.test_case "sparse bipartite" `Quick
            test_random_bipartite_sparse;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs/dfs" `Quick test_bfs_dfs;
          Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "deep path dfs" `Quick test_dfs_deep_path;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "coloring" `Quick test_bipartite_coloring;
          Alcotest.test_case "odd cycle" `Quick test_odd_cycle;
          Alcotest.test_case "odd cycle validity" `Quick test_odd_cycle_is_real_cycle;
        ] );
      ("props", [ Alcotest.test_case "summary" `Quick test_props ]);
      ( "family",
        [
          Alcotest.test_case "parse" `Quick test_family_parse;
          Alcotest.test_case "parse errors" `Quick test_family_parse_errors;
        ] );
      ( "io",
        [
          Alcotest.test_case "edge list roundtrip" `Quick test_edge_list_roundtrip;
          Alcotest.test_case "edge list parsing" `Quick test_edge_list_parsing;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
