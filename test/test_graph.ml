(* Tests for the netgraph substrate: core structure, generators,
   traversal, bipartiteness, properties and serialization. *)

open Netgraph

let rng () = Prng.Rng.create 1234

let test_make_validation () =
  Alcotest.check_raises "negative n" (Invalid_argument "Graph.make: negative vertex count")
    (fun () -> ignore (Graph.make ~n:(-1) []));
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self-loop at 1")
    (fun () -> ignore (Graph.make ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.make: duplicate edge (0,1)")
    (fun () -> ignore (Graph.make ~n:3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.make: endpoint out of range (0,5)") (fun () ->
      ignore (Graph.make ~n:3 [ (0, 5) ]))

let test_basic_accessors () =
  let g = Graph.make ~n:4 [ (0, 1); (2, 1); (2, 3) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check (pair int int)) "normalized endpoints" (1, 2) (Graph.endpoints g 1);
  Alcotest.(check bool) "adjacent" true (Graph.is_adjacent g 1 0);
  Alcotest.(check bool) "not adjacent" false (Graph.is_adjacent g 0 3);
  Alcotest.(check (option int)) "find_edge both ways" (Some 2) (Graph.find_edge g 3 2);
  Alcotest.(check (option int)) "find_edge absent" None (Graph.find_edge g 0 2);
  Alcotest.(check (array int)) "neighbors sorted" [| 0; 2 |] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 2);
  Alcotest.(check int) "opposite" 1 (Graph.opposite g 0 0);
  Alcotest.check_raises "opposite non-endpoint"
    (Invalid_argument "Graph.opposite: 3 not an endpoint of edge 0") (fun () ->
      ignore (Graph.opposite g 0 3))

let test_folds () =
  let g = Gen.cycle 5 in
  Alcotest.(check int) "fold_vertices" 10
    (Graph.fold_vertices g ~init:0 ~f:(fun acc v -> acc + v));
  Alcotest.(check int) "fold_edges counts" 5
    (Graph.fold_edges g ~init:0 ~f:(fun acc _ _ -> acc + 1));
  let sum_deg = Graph.fold_vertices g ~init:0 ~f:(fun a v -> a + Graph.degree g v) in
  Alcotest.(check int) "handshake lemma" (2 * Graph.m g) sum_deg

let test_isolated () =
  let g = Graph.make ~n:4 [ (0, 1) ] in
  Alcotest.(check (list int)) "isolated" [ 2; 3 ] (Graph.isolated_vertices g);
  Alcotest.(check bool) "has isolated" true (Graph.has_isolated_vertex g);
  Alcotest.(check bool) "path has none" false (Gen.path 4 |> Graph.has_isolated_vertex)

let test_neighborhood () =
  let g = Gen.path 5 in
  Alcotest.(check (list int)) "N({0})" [ 1 ] (Graph.neighborhood g [ 0 ]);
  Alcotest.(check (list int)) "N({1,3})" [ 0; 2; 4 ] (Graph.neighborhood g [ 1; 3 ]);
  Alcotest.(check (list int)) "N({2}) in cycle" [ 1; 3 ]
    (Graph.neighborhood (Gen.cycle 5) [ 2 ])

let test_edge_subgraph () =
  let g = Gen.cycle 4 in
  let sub, mapping = Graph.edge_subgraph g [ 0; 2 ] in
  Alcotest.(check int) "same n" 4 (Graph.n sub);
  Alcotest.(check int) "two edges" 2 (Graph.m sub);
  Alcotest.(check (array int)) "id mapping" [| 0; 2 |] mapping;
  Alcotest.(check bool) "edge kept" true
    (let e = Graph.edge g 0 in
     Graph.is_adjacent sub e.Graph.u e.Graph.v)

let test_equal () =
  let a = Graph.make ~n:3 [ (0, 1); (1, 2) ] in
  let b = Graph.make ~n:3 [ (2, 1); (1, 0) ] in
  let c = Graph.make ~n:3 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "equal up to orientation/order" true (Graph.equal a b);
  Alcotest.(check bool) "different edges" false (Graph.equal a c)

(* Generators *)

let check_summary name g ~n ~m ~connected ~bipartite =
  let s = Props.summary g in
  Alcotest.(check int) (name ^ " n") n s.Props.n;
  Alcotest.(check int) (name ^ " m") m s.Props.m;
  Alcotest.(check bool) (name ^ " connected") connected s.Props.connected;
  Alcotest.(check bool) (name ^ " bipartite") bipartite s.Props.bipartite

let test_deterministic_generators () =
  check_summary "path" (Gen.path 6) ~n:6 ~m:5 ~connected:true ~bipartite:true;
  check_summary "cycle even" (Gen.cycle 6) ~n:6 ~m:6 ~connected:true ~bipartite:true;
  check_summary "cycle odd" (Gen.cycle 5) ~n:5 ~m:5 ~connected:true ~bipartite:false;
  check_summary "star" (Gen.star 7) ~n:7 ~m:6 ~connected:true ~bipartite:true;
  check_summary "complete" (Gen.complete 5) ~n:5 ~m:10 ~connected:true ~bipartite:false;
  check_summary "K23" (Gen.complete_bipartite 2 3) ~n:5 ~m:6 ~connected:true
    ~bipartite:true;
  check_summary "grid" (Gen.grid 3 4) ~n:12 ~m:17 ~connected:true ~bipartite:true;
  check_summary "hypercube" (Gen.hypercube 3) ~n:8 ~m:12 ~connected:true ~bipartite:true;
  check_summary "binary tree" (Gen.binary_tree 3) ~n:15 ~m:14 ~connected:true
    ~bipartite:true

let test_generator_validation () =
  Alcotest.check_raises "path 1" (Invalid_argument "Gen.path: need n >= 2") (fun () ->
      ignore (Gen.path 1));
  Alcotest.check_raises "cycle 2" (Invalid_argument "Gen.cycle: need n >= 3") (fun () ->
      ignore (Gen.cycle 2));
  Alcotest.check_raises "regular odd"
    (Invalid_argument "Gen.random_regular: n * d must be even") (fun () ->
      ignore (Gen.random_regular (rng ()) ~n:5 ~d:3))

let test_random_tree () =
  let r = rng () in
  for n = 2 to 20 do
    let t = Gen.random_tree r ~n in
    Alcotest.(check int) "tree edges" (n - 1) (Graph.m t);
    Alcotest.(check bool) "tree connected" true (Traverse.is_connected t)
  done

let test_gnp_connected () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = Gen.gnp_connected r ~n:30 ~p:0.05 in
    Alcotest.(check bool) "connected" true (Traverse.is_connected g);
    Alcotest.(check bool) "no isolated" false (Graph.has_isolated_vertex g)
  done

let test_random_bipartite () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = Gen.random_bipartite r ~a:8 ~b:12 ~p:0.1 in
    Alcotest.(check bool) "bipartite" true (Bipartite.is_bipartite g);
    Alcotest.(check bool) "connected" true (Traverse.is_connected g)
  done

let test_random_regular () =
  let r = rng () in
  let g = Gen.random_regular r ~n:20 ~d:4 in
  Graph.iter_vertices g ~f:(fun v ->
      Alcotest.(check int) "regular degree" 4 (Graph.degree g v))

let test_enterprise () =
  let r = rng () in
  let g = Gen.enterprise r ~core:5 ~leaves:20 ~uplinks:2 in
  Alcotest.(check int) "n" 25 (Graph.n g);
  Alcotest.(check int) "m" ((5 * 4 / 2) + (20 * 2)) (Graph.m g);
  Alcotest.(check bool) "connected" true (Traverse.is_connected g);
  for leaf = 5 to 24 do
    Alcotest.(check int) "leaf degree" 2 (Graph.degree g leaf)
  done

(* Traversal *)

let test_bfs_dfs () =
  let g = Gen.path 5 in
  Alcotest.(check (list int)) "bfs from 0" [ 0; 1; 2; 3; 4 ] (Traverse.bfs_order g 0);
  Alcotest.(check (list int)) "dfs from 0" [ 0; 1; 2; 3; 4 ] (Traverse.dfs_order g 0);
  Alcotest.(check (list int)) "bfs from middle" [ 2; 1; 3; 0; 4 ]
    (Traverse.bfs_order g 2)

let test_distances () =
  let g = Gen.cycle 6 in
  Alcotest.(check (array int)) "cycle distances" [| 0; 1; 2; 3; 2; 1 |]
    (Traverse.distances g 0);
  let disconnected = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  let d = Traverse.distances disconnected 0 in
  Alcotest.(check int) "unreachable" (-1) d.(2)

let test_components () =
  let g = Graph.make ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Traverse.components g);
  Alcotest.(check bool) "not connected" false (Traverse.is_connected g);
  Alcotest.(check bool) "path connected" true (Traverse.is_connected (Gen.path 3))

let test_shortest_path () =
  let g = Gen.cycle 6 in
  (match Traverse.shortest_path g 0 3 with
  | Some p ->
      Alcotest.(check int) "path length" 4 (List.length p);
      Alcotest.(check int) "starts" 0 (List.hd p);
      Alcotest.(check int) "ends" 3 (List.nth p 3)
  | None -> Alcotest.fail "expected path");
  let disconnected = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "no path" true (Traverse.shortest_path disconnected 0 3 = None)

(* Bipartite *)

let test_bipartite_coloring () =
  match Bipartite.coloring (Gen.path 4) with
  | None -> Alcotest.fail "path should be bipartite"
  | Some c ->
      Alcotest.(check (list int)) "side A" [ 0; 2 ] c.Bipartite.side_a;
      Alcotest.(check (list int)) "side B" [ 1; 3 ] c.Bipartite.side_b;
      Graph.iter_edges (Gen.path 4) ~f:(fun _ e ->
          Alcotest.(check bool) "proper coloring" true
            (c.Bipartite.color.(e.Graph.u) <> c.Bipartite.color.(e.Graph.v)))

let test_odd_cycle () =
  (match Bipartite.odd_cycle (Gen.cycle 5) with
  | None -> Alcotest.fail "C5 has an odd cycle"
  | Some cycle ->
      Alcotest.(check bool) "closed" true (List.hd cycle = List.nth cycle (List.length cycle - 1));
      Alcotest.(check bool) "odd length" true ((List.length cycle - 1) mod 2 = 1));
  Alcotest.(check bool) "bipartite has none" true
    (Bipartite.odd_cycle (Gen.grid 2 3) = None)

let test_odd_cycle_is_real_cycle () =
  match Bipartite.odd_cycle (Gen.complete 4) with
  | None -> Alcotest.fail "K4 has an odd cycle"
  | Some cycle ->
      let g = Gen.complete 4 in
      let rec consecutive = function
        | a :: b :: rest ->
            Alcotest.(check bool) "consecutive adjacent" true (Graph.is_adjacent g a b);
            consecutive (b :: rest)
        | _ -> ()
      in
      consecutive cycle

(* Props *)

let test_props () =
  let g = Gen.star 5 in
  let s = Props.summary g in
  Alcotest.(check int) "min degree" 1 s.Props.min_degree;
  Alcotest.(check int) "max degree" 4 s.Props.max_degree;
  Alcotest.(check (float 1e-9)) "mean degree" 1.6 s.Props.mean_degree;
  Alcotest.(check (list int)) "degree sequence" [ 4; 1; 1; 1; 1 ]
    (Props.degree_sequence g);
  Alcotest.(check bool) "valid instance" true (Props.is_valid_instance g);
  Alcotest.(check bool) "isolated invalid" false
    (Props.is_valid_instance (Graph.make ~n:3 [ (0, 1) ]));
  Alcotest.(check (float 1e-9)) "density of K4" 1.0 (Props.density (Gen.complete 4))

(* Family specs *)

let test_family_parse () =
  let rng () = Prng.Rng.create 7 in
  Alcotest.(check bool) "grid spec" true
    (Graph.equal (Family.parse ~rng:(rng ()) "grid:3x4") (Gen.grid 3 4));
  Alcotest.(check bool) "kbip spec" true
    (Graph.equal
       (Family.parse ~rng:(rng ()) "kbip:3x4")
       (Gen.complete_bipartite 3 4));
  Alcotest.(check bool) "petersen spec" true
    (Graph.equal (Family.parse ~rng:(rng ()) "petersen") (Gen.petersen ()));
  let b = Family.parse ~rng:(rng ()) "bipartite:5x7:0.4" in
  Alcotest.(check int) "random bipartite n" 12 (Graph.n b);
  Alcotest.(check bool) "random bipartite is bipartite" true
    (Bipartite.coloring b <> None)

let test_family_parse_errors () =
  let parse spec = ignore (Family.parse ~rng:(Prng.Rng.create 7) spec) in
  let raises spec check_msg =
    match parse spec with
    | () -> Alcotest.failf "%s: expected Invalid_argument" spec
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (spec ^ ": message mentions the problem")
          true (check_msg msg)
  in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i =
      i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
    in
    scan 0
  in
  (* the old CLI parser silently built a grid for this spec *)
  raises "bipartite:5x7" (fun m -> contains m "edge probability");
  raises "bipartite:5x7" (fun m -> contains m "kbip");
  raises "nonsense:3" (fun m -> contains m "unrecognized");
  raises "grid:3" (fun m -> contains m "unrecognized");
  raises "multipartite" (fun m -> contains m "unrecognized")

(* Serialization *)

let test_edge_list_roundtrip () =
  let g = Gen.grid 3 3 in
  let text = Edge_list.to_string g in
  let g' = Edge_list.of_string text in
  Alcotest.(check bool) "roundtrip" true (Graph.equal g g')

let test_edge_list_parsing () =
  let g = Edge_list.of_string "# comment\n3\n0 1\n\n1 2\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g);
  Alcotest.check_raises "empty" (Invalid_argument "Edge_list.of_string: empty input")
    (fun () -> ignore (Edge_list.of_string "# only comments\n"));
  Alcotest.check_raises "bad header"
    (Invalid_argument "Edge_list.of_string: bad vertex-count header") (fun () ->
      ignore (Edge_list.of_string "abc\n0 1\n"))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_output () =
  let g = Gen.path 3 in
  let dot = Dot.to_string ~highlight_vertices:[ 1 ] ~highlight_edges:[ 0 ] g in
  Alcotest.(check bool) "mentions graph" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  Alcotest.(check bool) "highlights vertex" true (contains dot "indianred");
  Alcotest.(check bool) "highlights edge" true (contains dot "penwidth");
  Alcotest.(check bool) "lists edges" true (contains dot "0 -- 1")

(* Property tests *)

let graph_gen =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let r = Prng.Rng.create seed in
         Gen.gnp_connected r ~n:(2 + Prng.Rng.int r 18) ~p:0.2)
       QCheck.Gen.int)

let props =
  [
    QCheck.Test.make ~name:"handshake lemma on random graphs" ~count:100 graph_gen
      (fun g ->
        Graph.fold_vertices g ~init:0 ~f:(fun a v -> a + Graph.degree g v)
        = 2 * Graph.m g);
    QCheck.Test.make ~name:"neighbors symmetric" ~count:100 graph_gen (fun g ->
        Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
            acc
            && Array.mem e.Graph.v (Graph.neighbors g e.Graph.u)
            && Array.mem e.Graph.u (Graph.neighbors g e.Graph.v)));
    QCheck.Test.make ~name:"edge-list roundtrip preserves graph" ~count:50 graph_gen
      (fun g -> Graph.equal g (Edge_list.of_string (Edge_list.to_string g)));
    QCheck.Test.make ~name:"BFS visits the whole connected graph" ~count:50 graph_gen
      (fun g -> List.length (Traverse.bfs_order g 0) = Graph.n g);
    QCheck.Test.make ~name:"distances satisfy edge Lipschitz" ~count:50 graph_gen
      (fun g ->
        let d = Traverse.distances g 0 in
        Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
            acc && abs (d.(e.Graph.u) - d.(e.Graph.v)) <= 1));
  ]

let () =
  Alcotest.run "graph"
    [
      ( "core",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "folds" `Quick test_folds;
          Alcotest.test_case "isolated" `Quick test_isolated;
          Alcotest.test_case "neighborhood" `Quick test_neighborhood;
          Alcotest.test_case "edge subgraph" `Quick test_edge_subgraph;
          Alcotest.test_case "equality" `Quick test_equal;
        ] );
      ( "generators",
        [
          Alcotest.test_case "deterministic families" `Quick test_deterministic_generators;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "gnp connected" `Quick test_gnp_connected;
          Alcotest.test_case "random bipartite" `Quick test_random_bipartite;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "enterprise" `Quick test_enterprise;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs/dfs" `Quick test_bfs_dfs;
          Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "coloring" `Quick test_bipartite_coloring;
          Alcotest.test_case "odd cycle" `Quick test_odd_cycle;
          Alcotest.test_case "odd cycle validity" `Quick test_odd_cycle_is_real_cycle;
        ] );
      ("props", [ Alcotest.test_case "summary" `Quick test_props ]);
      ( "family",
        [
          Alcotest.test_case "parse" `Quick test_family_parse;
          Alcotest.test_case "parse errors" `Quick test_family_parse_errors;
        ] );
      ( "io",
        [
          Alcotest.test_case "edge list roundtrip" `Quick test_edge_list_roundtrip;
          Alcotest.test_case "edge list parsing" `Quick test_edge_list_parsing;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
