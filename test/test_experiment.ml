(* Tests for the structured-experiment engine: the JSON emitter/parser,
   Experiment run/verdict semantics, Registry selection and roll-up, and
   the Timer.time_stats variant. *)

module J = Harness.Json
module E = Harness.Experiment
module R = Harness.Registry

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* --- Json --- *)

let test_json_escaping () =
  let s = J.to_string (J.String "a\"b\\c\nd\te\r\x01") in
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"" s;
  Alcotest.(check string) "plain" "\"plain\"" (J.to_string (J.String "plain"))

let test_json_numbers () =
  Alcotest.(check string) "int" "42" (J.to_string (J.Int 42));
  Alcotest.(check string) "negative" "-7" (J.to_string (J.Int (-7)));
  Alcotest.(check string) "float" "1.5" (J.to_string (J.Float 1.5));
  Alcotest.(check string) "integral float gets .0" "3.0" (J.to_string (J.Float 3.0));
  Alcotest.(check string) "nan is null" "null" (J.to_string (J.Float nan));
  Alcotest.(check string) "inf is null" "null" (J.to_string (J.Float infinity));
  Alcotest.(check string) "neg inf is null" "null"
    (J.to_string (J.Float neg_infinity))

let test_json_nesting () =
  let v =
    J.Obj
      [
        ("id", J.String "T6");
        ("checks", J.List [ J.Int 1; J.Bool true; J.Null ]);
        ("nested", J.Obj [ ("empty_list", J.List []); ("empty_obj", J.Obj []) ]);
      ]
  in
  Alcotest.(check string) "compact"
    "{\"id\":\"T6\",\"checks\":[1,true,null],\"nested\":{\"empty_list\":[],\"empty_obj\":{}}}"
    (J.to_string v);
  let pretty = J.to_string ~pretty:true v in
  Alcotest.(check bool) "pretty has newlines" true (contains pretty "\n");
  Alcotest.(check bool) "pretty indents" true (contains pretty "  \"id\"")

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.String "quote\" backslash\\ newline\n unicode\xe2\x9c\x93");
        ("xs", J.List [ J.Int 0; J.Float (-2.25); J.Bool false; J.Null ]);
        ("o", J.Obj [ ("k", J.List [ J.Obj [ ("deep", J.Int 9) ] ]) ]);
      ]
  in
  (match J.of_string (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match J.of_string (J.to_string ~pretty:true v) with
  | Ok v' -> Alcotest.(check bool) "pretty round-trips" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_json_parse () =
  (match J.of_string "  { \"a\" : [ 1 , 2.5 , \"x\" ] }  " with
  | Ok (J.Obj [ ("a", J.List [ J.Int 1; J.Float 2.5; J.String "x" ]) ]) -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match J.of_string "\"\\u0041\\u00e9\"" with
  | Ok (J.String "A\xc3\xa9") -> ()
  | Ok _ -> Alcotest.fail "unicode escape decoded wrong"
  | Error e -> Alcotest.failf "unicode parse failed: %s" e);
  Alcotest.(check bool) "trailing garbage rejected" true
    (Result.is_error (J.of_string "1 2"));
  Alcotest.(check bool) "unterminated string rejected" true
    (Result.is_error (J.of_string "\"abc"));
  Alcotest.(check bool) "bare word rejected" true
    (Result.is_error (J.of_string "yes"));
  Alcotest.(check bool) "missing comma rejected" true
    (Result.is_error (J.of_string "[1 2]"))

let test_json_surrogates () =
  (* A UTF-16 surrogate pair must combine into one astral code point:
     U+1F600 is \ud83d\ude00 and encodes as 4 UTF-8 bytes. *)
  (match J.of_string "\"\\ud83d\\ude00\"" with
  | Ok (J.String s) ->
      Alcotest.(check string) "pair combines to U+1F600" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "surrogate pair decoded to non-string"
  | Error e -> Alcotest.failf "surrogate pair rejected: %s" e);
  (* the emitter must round-trip the 4-byte sequence unharmed *)
  (match J.of_string (J.to_string (J.String "\xf0\x9f\x98\x80")) with
  | Ok (J.String "\xf0\x9f\x98\x80") -> ()
  | _ -> Alcotest.fail "astral code point does not round-trip");
  Alcotest.(check bool) "lone high surrogate rejected" true
    (Result.is_error (J.of_string "\"\\ud83d\""));
  Alcotest.(check bool) "high surrogate + non-escape rejected" true
    (Result.is_error (J.of_string "\"\\ud83dx\""));
  Alcotest.(check bool) "high surrogate + non-low escape rejected" true
    (Result.is_error (J.of_string "\"\\ud83d\\u0041\""));
  Alcotest.(check bool) "lone low surrogate rejected" true
    (Result.is_error (J.of_string "\"\\ude00\""))

let test_json_strict_numbers () =
  (* OCaml's float_of_string accepts underscores and leading zeros; the
     JSON grammar does not, and the parser must not inherit the leniency. *)
  Alcotest.(check bool) "underscore in \\u hex rejected" true
    (Result.is_error (J.of_string "\"\\u1_23\""));
  Alcotest.(check bool) "underscore in number rejected" true
    (Result.is_error (J.of_string "1_000"));
  Alcotest.(check bool) "leading zero rejected" true
    (Result.is_error (J.of_string "0123"));
  Alcotest.(check bool) "negative leading zero rejected" true
    (Result.is_error (J.of_string "-012"));
  Alcotest.(check bool) "bare zero accepted" true
    (J.of_string "0" = Ok (J.Int 0));
  Alcotest.(check bool) "negative zero accepted" true
    (Result.is_ok (J.of_string "-0"));
  Alcotest.(check bool) "zero-point-five accepted" true
    (J.of_string "0.5" = Ok (J.Float 0.5));
  Alcotest.(check bool) "zero exponent accepted" true
    (J.of_string "0e2" = Ok (J.Float 0.0));
  Alcotest.(check bool) "ten accepted" true (J.of_string "10" = Ok (J.Int 10))

let test_json_member () =
  let v = J.Obj [ ("a", J.Int 1); ("b", J.String "x") ] in
  Alcotest.(check bool) "present" true (J.member "b" v = Some (J.String "x"));
  Alcotest.(check bool) "absent" true (J.member "c" v = None);
  Alcotest.(check bool) "non-object" true (J.member "a" (J.Int 3) = None)

(* --- Experiment --- *)

let descr ~id run =
  {
    E.id;
    claim = "claim " ^ id;
    expected = "expected " ^ id;
    tag = E.Table;
    game = "tuple";
    run;
  }

let test_experiment_pass () =
  let r =
    E.run
      (descr ~id:"X1" (fun ctx ->
           E.out ctx "hello\n";
           ignore (E.check ctx ~label:"ok one" true);
           ignore (E.check ctx ~label:"ok two" (1 + 1 = 2));
           E.measure ctx "count" (E.Int 5);
           E.measure ctx "gain" (E.Rat (Exact.Q.make 8 3))))
  in
  Alcotest.(check bool) "pass" true (r.E.verdict = E.Pass);
  Alcotest.(check int) "checks total" 2 r.E.checks_total;
  Alcotest.(check int) "checks failed" 0 r.E.checks_failed;
  Alcotest.(check string) "text" "hello\n" r.E.text;
  Alcotest.(check bool) "scale default full" true
    (contains (E.scale_to_string E.Full) "full")

let test_experiment_degraded () =
  let r =
    E.run
      (descr ~id:"X2" (fun ctx ->
           ignore (E.check ctx ~label:"holds" true);
           ignore (E.check ctx ~label:"violated invariant" false)))
  in
  Alcotest.(check bool) "degraded" true (r.E.verdict = E.Degraded);
  Alcotest.(check int) "failed count" 1 r.E.checks_failed;
  Alcotest.(check (list string)) "failed labels" [ "violated invariant" ]
    r.E.failed_labels

let test_experiment_info () =
  let r = E.run (descr ~id:"X3" (fun ctx -> E.out ctx "timing only\n")) in
  Alcotest.(check bool) "info when no checks" true (r.E.verdict = E.Info)

let test_experiment_exception () =
  let r =
    E.run
      (descr ~id:"X4" (fun ctx ->
           ignore (E.check ctx ~label:"before crash" true);
           failwith "boom"))
  in
  Alcotest.(check bool) "degraded on raise" true (r.E.verdict = E.Degraded);
  Alcotest.(check bool) "exception recorded in text" true
    (contains r.E.text "RAISED" && contains r.E.text "boom")

let test_experiment_scale () =
  let seen = ref None in
  ignore
    (E.run ~scale:E.Smoke (descr ~id:"X5" (fun ctx -> seen := Some (E.is_smoke ctx))));
  Alcotest.(check bool) "smoke visible to run fn" true (!seen = Some true)

let test_experiment_degrade_hook () =
  let r = E.run (descr ~id:"X6" (fun ctx -> ignore (E.check ctx ~label:"ok" true))) in
  let d = E.degrade ~reason:"forced" r in
  Alcotest.(check bool) "was pass" true (r.E.verdict = E.Pass);
  Alcotest.(check bool) "forced degraded" true (d.E.verdict = E.Degraded);
  Alcotest.(check bool) "reason kept" true
    (List.exists (fun l -> contains l "forced") d.E.failed_labels)

let test_result_json () =
  let r =
    E.run
      (descr ~id:"X7" (fun ctx ->
           ignore (E.check ctx ~label:"ok" true);
           E.measure ctx "rat" (E.Rat (Exact.Q.make 1 3));
           E.measure ctx "f" (E.Float 2.5);
           E.record_timing ctx "step"
             { Harness.Timer.median = 0.25; min = 0.2; max = 0.3; runs = 5 }))
  in
  let j = E.result_to_json r in
  Alcotest.(check bool) "id" true (J.member "id" j = Some (J.String "X7"));
  Alcotest.(check bool) "verdict" true
    (J.member "verdict" j = Some (J.String "pass"));
  (* rationals are strings, exactly *)
  (match J.member "measures" j with
  | Some m -> Alcotest.(check bool) "rat as string" true (J.member "rat" m = Some (J.String "1/3"))
  | None -> Alcotest.fail "no measures");
  (* the object parses back, and one canonicalization pass is a fixpoint
     (wall_s is an arbitrary float, so the first %.12g render may round) *)
  match J.of_string (J.to_string ~pretty:true j) with
  | Error e -> Alcotest.failf "result json does not parse: %s" e
  | Ok j' -> (
      match J.of_string (J.to_string ~pretty:true j') with
      | Ok j'' -> Alcotest.(check bool) "round-trips" true (j' = j'')
      | Error e -> Alcotest.failf "re-rendered json does not parse: %s" e)

let test_wire_roundtrip () =
  let r =
    E.run
      (descr ~id:"X8" (fun ctx ->
           E.out ctx "wire me\n";
           ignore (E.check ctx ~label:"good" true);
           ignore (E.check ctx ~label:"bad" false);
           E.measure ctx "n" (E.Int 7);
           E.measure ctx "q" (E.Rat (Exact.Q.make 8 3));
           E.measure ctx "name" (E.Str "8/3");
           E.measure ctx "flag" (E.Bool false);
           E.measure ctx "x" (E.Float 1.25);
           E.record_timing ctx "step"
             { Harness.Timer.median = 0.25; min = 0.2; max = 0.3; runs = 5 }))
  in
  match E.result_of_wire (E.result_to_wire r) with
  | Error e -> Alcotest.failf "wire decode failed: %s" e
  | Ok r' ->
      Alcotest.(check string) "id" r.E.id r'.E.id;
      Alcotest.(check bool) "verdict" true (r.E.verdict = r'.E.verdict);
      Alcotest.(check int) "checks total" r.E.checks_total r'.E.checks_total;
      Alcotest.(check (list string)) "failed labels" r.E.failed_labels
        r'.E.failed_labels;
      Alcotest.(check string) "text survives" r.E.text r'.E.text;
      Alcotest.(check bool) "timings" true (r.E.timings = r'.E.timings);
      (* Rat comes back as Str with the same rendering — by design the
         re-emitted artifact bytes are identical even though the OCaml
         value typing is lossy. *)
      Alcotest.(check bool) "artifact bytes identical" true
        (J.to_string (E.result_to_json r) = J.to_string (E.result_to_json r'));
      Alcotest.(check bool) "rat decodes as its string rendering" true
        (List.assoc "q" r'.E.measures = E.Str "8/3")

let test_wire_rejects_garbage () =
  Alcotest.(check bool) "non-object rejected" true
    (Result.is_error (E.result_of_wire (J.Int 3)));
  Alcotest.(check bool) "missing fields rejected" true
    (Result.is_error (E.result_of_wire (J.Obj [ ("id", J.String "X") ])))

let test_crashed_constructor () =
  let t = descr ~id:"X9" (fun _ -> ()) in
  let r = E.crashed t ~reason:"worker killed by SIGKILL" ~wall:0.5 in
  Alcotest.(check bool) "verdict crashed" true (r.E.verdict = E.Crashed);
  Alcotest.(check string) "verdict renders" "crashed"
    (E.verdict_to_string E.Crashed);
  Alcotest.(check int) "one failed check" 1 r.E.checks_failed;
  Alcotest.(check (list string)) "reason is the failed label"
    [ "worker killed by SIGKILL" ] r.E.failed_labels;
  Alcotest.(check bool) "text names the experiment and reason" true
    (contains r.E.text "X9" && contains r.E.text "SIGKILL")

(* --- Registry --- *)

let with_clean_registry f =
  R.clear ();
  Fun.protect ~finally:R.clear f

let test_registry_register_find () =
  with_clean_registry (fun () ->
      R.register (descr ~id:"R1" (fun _ -> ()));
      R.register (descr ~id:"R2" (fun _ -> ()));
      Alcotest.(check (list string)) "ids in order" [ "R1"; "R2" ] (R.ids ());
      Alcotest.(check bool) "find hit" true (R.find "R2" <> None);
      Alcotest.(check bool) "find miss" true (R.find "R9" = None);
      Alcotest.check_raises "duplicate id"
        (Invalid_argument "Registry.register: duplicate experiment id \"R1\"")
        (fun () -> R.register (descr ~id:"R1" (fun _ -> ()))))

let test_registry_select () =
  with_clean_registry (fun () ->
      R.register (descr ~id:"T1" (fun _ -> ()));
      R.register (descr ~id:"F1" (fun _ -> ()));
      R.register (descr ~id:"T2" (fun _ -> ()));
      (match R.select ~only:[ "T2"; "T1" ] with
      | Ok es ->
          Alcotest.(check (list string)) "registration order kept" [ "T1"; "T2" ]
            (List.map (fun (e : E.t) -> e.E.id) es)
      | Error e -> Alcotest.failf "select failed: %s" e);
      match R.select ~only:[ "T1"; "ZZ" ] with
      | Ok _ -> Alcotest.fail "unknown id accepted"
      | Error msg -> Alcotest.(check bool) "names the unknown id" true (contains msg "ZZ"))

let test_registry_run_and_summary () =
  with_clean_registry (fun () ->
      R.register
        (descr ~id:"G1" (fun ctx -> ignore (E.check ctx ~label:"a" true)));
      R.register
        (descr ~id:"G2" (fun ctx -> ignore (E.check ctx ~label:"b" false)));
      R.register (descr ~id:"G3" (fun _ -> ()));
      let echoed = Buffer.create 16 in
      let results = R.run ~echo:(Buffer.add_string echoed) (R.all ()) in
      let s = R.summarize results in
      Alcotest.(check int) "total" 3 s.R.total;
      Alcotest.(check int) "pass" 1 s.R.pass;
      Alcotest.(check int) "degraded" 1 s.R.degraded;
      Alcotest.(check int) "info" 1 s.R.info;
      Alcotest.(check int) "checks" 2 s.R.checks_total;
      Alcotest.(check int) "failed" 1 s.R.checks_failed;
      let table = R.summary_table results in
      Alcotest.(check bool) "summary table lists ids" true
        (contains table "G1" && contains table "G2" && contains table "G3");
      Alcotest.(check bool) "totals line" true (contains table "3 experiments");
      let report = R.report_json ~scale:E.Full results in
      (match J.member "experiments" report with
      | Some (J.List xs) -> Alcotest.(check int) "report has all" 3 (List.length xs)
      | _ -> Alcotest.fail "no experiments array");
      match J.member "schema" report with
      | Some (J.String s) ->
          Alcotest.(check string) "schema tag" "defender-bench/v1" s
      | _ -> Alcotest.fail "no schema tag")

(* --- Parallel runner --- *)

let find_result id results =
  match List.find_opt (fun (r : E.result) -> r.E.id = id) results with
  | Some r -> r
  | None -> Alcotest.failf "no result for %s" id

let test_parallel_matches_sequential () =
  with_clean_registry (fun () ->
      (* deterministic experiments only: text, checks and exact measures
         must agree between the in-process and forked runs *)
      for i = 1 to 5 do
        let id = Printf.sprintf "P%d" i in
        R.register
          (descr ~id (fun ctx ->
               E.outf ctx "result %d\n" (i * i);
               ignore (E.check ctx ~label:"square" (i * i = i * i));
               E.measure ctx "sq" (E.Int (i * i));
               E.measure ctx "q" (E.Rat (Exact.Q.make i (i + 1)))))
      done;
      let seq = R.run ~echo:ignore (R.all ()) in
      let par = R.run_parallel ~jobs:3 ~echo:ignore (R.all ()) in
      Alcotest.(check (list string)) "registration order kept"
        (List.map (fun (r : E.result) -> r.E.id) seq)
        (List.map (fun (r : E.result) -> r.E.id) par);
      let strip results =
        J.to_string (R.strip_timings (R.report_json ~scale:E.Full results))
      in
      Alcotest.(check string) "stripped artifacts byte-identical" (strip seq)
        (strip par);
      Alcotest.(check bool) "no crashes" true
        ((R.summarize par).R.crashed = 0))

let test_parallel_crash_isolation () =
  with_clean_registry (fun () ->
      List.iter
        (fun id ->
          R.register
            (descr ~id (fun ctx -> ignore (E.check ctx ~label:"fine" true))))
        [ "C1"; "C2"; "C3" ];
      let results =
        R.run_parallel ~jobs:2 ~force_crash:[ "C2" ] ~echo:ignore (R.all ())
      in
      let c2 = find_result "C2" results in
      Alcotest.(check bool) "forced experiment crashed" true
        (c2.E.verdict = E.Crashed);
      Alcotest.(check bool) "reason names the signal" true
        (List.exists (fun l -> contains l "SIGKILL") c2.E.failed_labels);
      List.iter
        (fun id ->
          Alcotest.(check bool) (id ^ " unaffected") true
            ((find_result id results).E.verdict = E.Pass))
        [ "C1"; "C3" ];
      let s = R.summarize results in
      Alcotest.(check int) "summary counts the crash" 1 s.R.crashed;
      Alcotest.(check int) "others pass" 2 s.R.pass;
      Alcotest.(check bool) "summary table reports it" true
        (contains (R.summary_table results) "1 crashed");
      (* the artifact with a crashed verdict still round-trips (one
         canonicalization pass first: wall clocks are arbitrary floats,
         so the initial %.12g render may round) *)
      let report =
        match J.of_string (J.to_string ~pretty:true (R.report_json ~scale:E.Full results)) with
        | Ok j -> j
        | Error e -> Alcotest.failf "crashed artifact does not parse: %s" e
      in
      match J.of_string (J.to_string ~pretty:true report) with
      | Ok report' -> (
          Alcotest.(check bool) "artifact round-trips" true (report = report');
          match J.member "summary" report with
          | Some s ->
              Alcotest.(check bool) "summary json has crashed=1" true
                (J.member "crashed" s = Some (J.Int 1))
          | None -> Alcotest.fail "no summary")
      | Error e -> Alcotest.failf "crashed artifact does not parse: %s" e)

let test_parallel_timeout () =
  with_clean_registry (fun () ->
      R.register
        (descr ~id:"Q1" (fun ctx -> ignore (E.check ctx ~label:"fast" true)));
      R.register
        (descr ~id:"Q2" (fun _ ->
             (* signal-free sleep; would run for 30 s without the budget *)
             ignore (Unix.select [] [] [] 30.0)));
      let results =
        R.run_parallel ~jobs:2 ~timeout:0.2 ~echo:ignore (R.all ())
      in
      let q2 = find_result "Q2" results in
      Alcotest.(check bool) "sleeper crashed" true (q2.E.verdict = E.Crashed);
      Alcotest.(check bool) "reason says timed out" true
        (List.exists (fun l -> contains l "timed out") q2.E.failed_labels);
      Alcotest.(check bool) "fast sibling unaffected" true
        ((find_result "Q1" results).E.verdict = E.Pass))

let test_strip_timings () =
  let artifact =
    J.Obj
      [
        ("schema", J.String "defender-bench/v1");
        ( "experiments",
          J.List
            [
              J.Obj
                [
                  ("id", J.String "T1");
                  ( "measures",
                    J.Obj
                      [
                        ("rows", J.Int 44);
                        ("ns_per_run", J.Float 123.4);
                        ("gain", J.String "8/3");
                        ("skipped", J.Null);
                      ] );
                  ("timings", J.Obj [ ("kernel", J.Obj []) ]);
                  ("wall_s", J.Float 0.5);
                ];
            ] );
        ("wall_s", J.Float 1.5);
      ]
  in
  match R.strip_timings artifact with
  | J.Obj [ ("schema", _); ("experiments", J.List [ J.Obj fields ]) ] ->
      Alcotest.(check bool) "wall_s and timings dropped" true
        (not
           (List.exists
              (fun (k, _) -> k = "wall_s" || k = "timings")
              fields));
      (match List.assoc "measures" fields with
      | J.Obj m ->
          Alcotest.(check (list string))
            "float/null measures dropped, exact content kept"
            [ "rows"; "gain" ] (List.map fst m)
      | _ -> Alcotest.fail "measures not an object")
  | _ -> Alcotest.fail "unexpected stripped shape"

let test_registry_filter_tag () =
  with_clean_registry (fun () ->
      R.register { (descr ~id:"M1" (fun _ -> ())) with E.tag = E.Micro };
      R.register { (descr ~id:"M2" (fun _ -> ())) with E.tag = E.Figure };
      Alcotest.(check int) "one micro" 1 (List.length (R.filter_tag E.Micro));
      Alcotest.(check int) "no table" 0 (List.length (R.filter_tag E.Table)))

(* --- Timer.time_stats --- *)

let test_time_stats () =
  let calls = ref 0 in
  let st =
    Harness.Timer.time_stats ~repeat:5 (fun () ->
        incr calls;
        Sys.opaque_identity (ignore (Array.make 100 0.0)))
  in
  Alcotest.(check int) "runs all repeats" 5 !calls;
  Alcotest.(check int) "records runs" 5 st.Harness.Timer.runs;
  Alcotest.(check bool) "ordered" true
    (st.Harness.Timer.min <= st.Harness.Timer.median
    && st.Harness.Timer.median <= st.Harness.Timer.max);
  Alcotest.(check bool) "non-negative" true (st.Harness.Timer.min >= 0.0);
  Alcotest.check_raises "repeat must be positive"
    (Invalid_argument "Timer.time_stats: repeat must be positive") (fun () ->
      ignore (Harness.Timer.time_stats ~repeat:0 (fun () -> ())))

let () =
  Alcotest.run "experiment"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "nesting" `Quick test_json_nesting;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "surrogate pairs" `Quick test_json_surrogates;
          Alcotest.test_case "strict numbers" `Quick test_json_strict_numbers;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "pass" `Quick test_experiment_pass;
          Alcotest.test_case "degraded" `Quick test_experiment_degraded;
          Alcotest.test_case "info" `Quick test_experiment_info;
          Alcotest.test_case "exception" `Quick test_experiment_exception;
          Alcotest.test_case "scale" `Quick test_experiment_scale;
          Alcotest.test_case "degrade hook" `Quick test_experiment_degrade_hook;
          Alcotest.test_case "result json" `Quick test_result_json;
          Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "wire rejects garbage" `Quick
            test_wire_rejects_garbage;
          Alcotest.test_case "crashed constructor" `Quick
            test_crashed_constructor;
        ] );
      ( "registry",
        [
          Alcotest.test_case "register/find" `Quick test_registry_register_find;
          Alcotest.test_case "select" `Quick test_registry_select;
          Alcotest.test_case "run + summary" `Quick test_registry_run_and_summary;
          Alcotest.test_case "filter tag" `Quick test_registry_filter_tag;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "crash isolation" `Quick
            test_parallel_crash_isolation;
          Alcotest.test_case "timeout" `Quick test_parallel_timeout;
          Alcotest.test_case "strip timings" `Quick test_strip_timings;
        ] );
      ("timer", [ Alcotest.test_case "time_stats" `Quick test_time_stats ]);
    ]
