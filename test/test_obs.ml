(* Tests for the observability core (Harness.Obs) and its plumbing
   through the experiment engine: counter monotonicity, disabled-mode
   identity, span nesting, snapshot/delta semantics, metrics capture and
   wire round-trip, strip behavior (deterministic counters survive,
   durations and volatile counters do not) — and the determinism
   contract itself: a fixed registry of kernel-exercising experiments
   must strip to byte-identical artifacts between the sequential runner
   and a forked --jobs 2 sweep, counters included. *)

open Netgraph
module J = Harness.Json
module E = Harness.Experiment
module R = Harness.Registry
module Obs = Harness.Obs
module Q = Exact.Q
module Profile = Defender.Profile
module BR = Defender.Best_response

(* Obs state is process-global: force a level for one test and restore
   it (tests would otherwise leak recording into each other). *)
let with_level lvl f =
  let old = Obs.level () in
  Obs.set_level lvl;
  Fun.protect ~finally:(fun () -> Obs.set_level old) f

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* --- levels and the disabled-mode identity --- *)

let test_disabled_identity () =
  with_level Obs.Off @@ fun () ->
  let c = Obs.counter "test.obs.off" in
  let snap = Obs.snapshot () in
  Obs.incr c;
  Obs.add c 41;
  (* negative add only checks monotonicity when recording *)
  Obs.add c (-5);
  Alcotest.(check int) "span is f () when off" 7
    (Obs.span "test.obs.off_span" (fun () -> 7));
  Alcotest.(check bool) "nothing recorded" true (Obs.is_empty (Obs.delta snap));
  Alcotest.(check bool) "not recording" false (Obs.recording ())

let test_counter_monotonicity () =
  with_level Obs.Counters @@ fun () ->
  let c = Obs.counter "test.obs.mono" in
  let snap = Obs.snapshot () in
  Obs.incr c;
  Obs.add c 4;
  Obs.add c 0;
  let d = Obs.delta snap in
  Alcotest.(check (list (pair string int))) "accumulates" [ ("test.obs.mono", 5) ] d.Obs.counters;
  Alcotest.(check bool) "negative add raises when recording" true
    (raises_invalid (fun () -> Obs.add c (-1)));
  Alcotest.(check int) "failed add left the counter alone" 5
    (List.assoc "test.obs.mono" (Obs.delta snap).Obs.counters)

let test_kind_clash () =
  let _ = Obs.counter "test.obs.kind" in
  let _ = Obs.volatile "test.obs.kind_v" in
  Alcotest.(check bool) "deterministic name cannot become volatile" true
    (raises_invalid (fun () -> Obs.volatile "test.obs.kind"));
  Alcotest.(check bool) "volatile name cannot become deterministic" true
    (raises_invalid (fun () -> Obs.counter "test.obs.kind_v"));
  Alcotest.(check bool) "re-interning the same kind is fine" true
    (Obs.counter "test.obs.kind" == Obs.counter "test.obs.kind")

let test_delta_sorted_and_sparse () =
  with_level Obs.Counters @@ fun () ->
  let cb = Obs.counter "test.obs.sort_b" in
  let ca = Obs.counter "test.obs.sort_a" in
  let _untouched = Obs.counter "test.obs.sort_untouched" in
  let snap = Obs.snapshot () in
  Obs.incr cb;
  Obs.incr ca;
  let d = Obs.delta snap in
  Alcotest.(check (list (pair string int)))
    "sorted by name, untouched dropped"
    [ ("test.obs.sort_a", 1); ("test.obs.sort_b", 1) ]
    d.Obs.counters;
  (* a second snapshot isolates later increments from earlier ones *)
  let snap2 = Obs.snapshot () in
  Obs.add ca 10;
  Alcotest.(check (list (pair string int))) "delta is relative to its snapshot"
    [ ("test.obs.sort_a", 10) ]
    (Obs.delta snap2).Obs.counters

(* --- spans --- *)

(* Keep the optimizer from deleting the timed loop. *)
let busy () =
  let acc = ref 0 in
  for i = 1 to 20_000 do
    acc := !acc + (i * i)
  done;
  ignore (Sys.opaque_identity !acc)

let test_span_nesting () =
  with_level Obs.Trace @@ fun () ->
  let snap = Obs.snapshot () in
  Obs.span "test.obs.outer" (fun () ->
      Obs.span "test.obs.inner" busy;
      Obs.span "test.obs.inner" busy);
  let d = Obs.delta snap in
  let outer = List.assoc "test.obs.outer" d.Obs.spans in
  let inner = List.assoc "test.obs.inner" d.Obs.spans in
  Alcotest.(check int) "outer entered once" 1 outer.Obs.calls;
  Alcotest.(check int) "inner entered twice" 2 inner.Obs.calls;
  Alcotest.(check bool) "inclusive: outer secs >= inner secs" true
    (outer.Obs.secs >= inner.Obs.secs);
  Alcotest.(check bool) "trace accumulates wall time" true (inner.Obs.secs > 0.0)

let test_span_records_on_raise () =
  with_level Obs.Counters @@ fun () ->
  let snap = Obs.snapshot () in
  (try Obs.span "test.obs.raiser" (fun () -> raise Exit)
   with Exit -> ());
  let d = Obs.delta snap in
  Alcotest.(check int) "raising span still counted" 1
    (List.assoc "test.obs.raiser" d.Obs.spans).Obs.calls;
  Alcotest.(check (float 0.0)) "counters level never reads the clock" 0.0
    (List.assoc "test.obs.raiser" d.Obs.spans).Obs.secs

let test_unobserved () =
  with_level Obs.Counters @@ fun () ->
  let c = Obs.counter "test.obs.shielded" in
  let snap = Obs.snapshot () in
  Obs.unobserved (fun () ->
      Alcotest.(check bool) "not recording inside" false (Obs.recording ());
      Obs.incr c);
  Alcotest.(check bool) "shielded incr not recorded" true
    (Obs.is_empty (Obs.delta snap));
  Alcotest.(check bool) "level restored" true (Obs.level () = Obs.Counters);
  (try Obs.unobserved (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check bool) "level restored after exception" true
    (Obs.level () = Obs.Counters)

(* --- experiment-engine plumbing --- *)

(* A deterministic experiment exercising the instrumented subsystems:
   exact kernel queries (with replace_vp patches), blossom on a complete
   graph, Hopcroft–Karp on a complete bipartite one.  No randomness, so
   its counter delta is a constant of the code. *)
let kernel_exp id ~n =
  let run ctx =
    let g = Gen.complete n in
    let m = Defender.Model.make ~graph:g ~nu:3 ~k:2 in
    let t1 = Defender.Tuple.of_list g [ 0; 1 ] in
    let t2 = Defender.Tuple.of_list g [ 2; 3 ] in
    let prof =
      Profile.uniform m ~vp_support:[ 0; 1; 2 ] ~tp_support:[ t1; t2 ]
    in
    let v1 = BR.vp_best_value prof in
    let prof' = Profile.replace_vp prof 0 (Dist.Finite.point 1) in
    let v2 = BR.tp_greedy_value prof' in
    ignore (E.check ctx ~label:"best-response values positive"
              (Q.compare v1 Q.zero > 0 && Q.compare v2 Q.zero >= 0));
    let b = Matching.Blossom.max_matching g in
    let hk = Matching.Hopcroft_karp.max_matching_bipartite (Gen.complete_bipartite 3 4) in
    ignore (E.check ctx ~label:"matching sizes"
              (b.Matching.Blossom.size = n / 2 && hk.Matching.Hopcroft_karp.size = 3))
  in
  {
    E.id;
    claim = "obs test fixture";
    expected = "deterministic counter delta";
    tag = E.Micro;
    game = "tuple";
    run;
  }

let test_run_captures_metrics () =
  let exp = kernel_exp "OBS_CAP" ~n:6 in
  with_level Obs.Off (fun () ->
      let r = E.run ~scale:E.Smoke exp in
      Alcotest.(check bool) "no metrics when off" true (r.E.metrics = None));
  with_level Obs.Counters @@ fun () ->
  let r = E.run ~scale:E.Smoke exp in
  match r.E.metrics with
  | None -> Alcotest.fail "metrics missing under Counters"
  | Some m ->
      Alcotest.(check bool) "kernel counters captured" true
        (List.mem_assoc "kernel.builds" m.E.m_counters);
      Alcotest.(check bool) "span captured" true
        (List.mem_assoc "blossom.max_matching" m.E.m_spans);
      List.iter
        (fun (name, (s : E.span_metric)) ->
          Alcotest.(check bool) (name ^ " has no duration at Counters") true
            (s.E.total_s = None))
        m.E.m_spans

let test_trace_records_durations () =
  with_level Obs.Trace @@ fun () ->
  let r = E.run ~scale:E.Smoke (kernel_exp "OBS_TRACE" ~n:6) in
  match r.E.metrics with
  | None -> Alcotest.fail "metrics missing under Trace"
  | Some m ->
      let s = List.assoc "blossom.max_matching" m.E.m_spans in
      Alcotest.(check bool) "span duration present at Trace" true
        (match s.E.total_s with Some t -> t >= 0.0 | None -> false)

let test_wire_roundtrip_metrics () =
  with_level Obs.Counters @@ fun () ->
  let r = E.run ~scale:E.Smoke (kernel_exp "OBS_WIRE" ~n:6) in
  match E.result_of_wire (E.result_to_wire r) with
  | Error e -> Alcotest.failf "wire decode failed: %s" e
  | Ok r' ->
      Alcotest.(check bool) "metrics survive the worker pipe" true
        (r'.E.metrics = r.E.metrics)

let test_strip_keeps_counters () =
  (* Trace + a volatile counter: stripping must drop the durations and
     the volatile section but keep counters and span call counts. *)
  with_level Obs.Trace @@ fun () ->
  let vol = Obs.volatile "test.obs.strip_vol" in
  let exp = kernel_exp "OBS_STRIP" ~n:6 in
  let exp = { exp with E.run = (fun ctx -> Obs.add vol 123; exp.E.run ctx) } in
  let r = E.run ~scale:E.Smoke exp in
  let stripped = R.strip_timings (R.report_json ~scale:E.Smoke [ r ]) in
  let e =
    match J.member "experiments" stripped with
    | Some (J.List [ e ]) -> e
    | _ -> Alcotest.fail "experiments list missing"
  in
  let metrics =
    match J.member "metrics" e with
    | Some m -> m
    | None -> Alcotest.fail "metrics stripped away entirely"
  in
  Alcotest.(check bool) "deterministic counters kept" true
    (match J.member "counters" metrics with
    | Some (J.Obj fields) -> List.mem_assoc "kernel.builds" fields
    | _ -> false);
  Alcotest.(check bool) "volatile section dropped" true
    (J.member "volatile" metrics = None);
  (match J.member "spans" metrics with
  | Some (J.Obj spans) ->
      List.iter
        (fun (name, cell) ->
          Alcotest.(check bool) (name ^ " keeps count") true
            (match J.member "count" cell with Some (J.Int n) -> n > 0 | _ -> false);
          Alcotest.(check bool) (name ^ " loses total_s") true
            (J.member "total_s" cell = None))
        spans
  | _ -> Alcotest.fail "spans section missing");
  Alcotest.(check bool) "wall_s stripped too" true (J.member "wall_s" e = None)

(* --- the determinism contract, end to end --- *)

let test_parallel_counter_determinism () =
  R.clear ();
  List.iter R.register
    [ kernel_exp "OBS_P1" ~n:6; kernel_exp "OBS_P2" ~n:7; kernel_exp "OBS_P3" ~n:8 ];
  Fun.protect ~finally:R.clear @@ fun () ->
  with_level Obs.Counters @@ fun () ->
  let seq = R.run ~scale:E.Smoke ~echo:ignore (R.all ()) in
  let par = R.run_parallel ~scale:E.Smoke ~jobs:2 ~echo:ignore (R.all ()) in
  List.iter
    (fun (r : E.result) ->
      match r.E.metrics with
      | Some m ->
          Alcotest.(check bool) (r.E.id ^ ": counters non-vacuous") true
            (m.E.m_counters <> [])
      | None -> Alcotest.fail (r.E.id ^ ": metrics missing"))
    (seq @ par);
  let strip rs =
    J.to_string ~pretty:true (R.strip_timings (R.report_json ~scale:E.Smoke rs))
  in
  Alcotest.(check string)
    "sequential and --jobs 2 artifacts byte-identical after strip, counters included"
    (strip seq) (strip par)

let () =
  Obs.set_level Obs.Off;
  Alcotest.run "obs"
    [
      ( "core",
        [
          Alcotest.test_case "disabled-mode identity" `Quick test_disabled_identity;
          Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonicity;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "delta sorted and sparse" `Quick test_delta_sorted_and_sparse;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "unobserved" `Quick test_unobserved;
        ] );
      ( "engine",
        [
          Alcotest.test_case "run captures metrics" `Quick test_run_captures_metrics;
          Alcotest.test_case "trace records durations" `Quick test_trace_records_durations;
          Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip_metrics;
          Alcotest.test_case "strip keeps counters" `Quick test_strip_keeps_counters;
          Alcotest.test_case "parallel counter determinism" `Quick
            test_parallel_counter_determinism;
        ] );
    ]
