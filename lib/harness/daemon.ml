(* Batch-query daemon: a socket front-end over a service Pool with a
   canonical-instance response cache.  See daemon.mli for the protocol. *)

(* Mirrored into Obs so a traced serve run surfaces them alongside the
   pool's own counters; the daemon also keeps plain ints (below) so the
   counters it reports in every response envelope are live regardless of
   the Obs level. *)
let c_requests = Obs.counter "daemon.requests"
let c_cache_hits = Obs.counter "daemon.cache_hits"
let c_busy_rejects = Obs.counter "daemon.busy_rejects"

type address = Unix_socket of string | Tcp of string * int

type stats = { requests : int; cache_hits : int; busy_rejects : int }

let resolve_inet host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
      | _ | (exception Not_found) ->
          failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr_of = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve_inet host, port)

let listen_socket address =
  let sa = sockaddr_of address in
  let domain = Unix.domain_of_sockaddr sa in
  (match address with
  | Unix_socket path -> (
      (* A previous daemon's stale socket file would make bind fail;
         removing it is safe because a live daemon would be rebound
         anyway the moment two share a path. *)
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.set_close_on_exec fd with Unix.Unix_error _ -> ());
  (match address with
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix_socket _ -> ());
  (try
     Unix.bind fd sa;
     Unix.listen fd 64
   with e ->
     Wire.close_quietly fd;
     raise e);
  fd

type client = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable connected : bool;
}

type pending_req = { client : client; req_id : Json.t; key : string option }

let serve ~address ~workers ?timeout ?(max_inflight = 64)
    ?(cache_entries = 1024) ?(max_frame = 8 * 1024 * 1024) ?on_ready
    ~cache_key handler =
  if max_inflight < 1 then invalid_arg "Daemon.serve: max_inflight < 1";
  if max_frame < 1 then invalid_arg "Daemon.serve: max_frame < 1";
  Wire.ignore_sigpipe ();
  let listen_fd = listen_socket address in
  (* The pool forks before the drain handlers are installed, and the
     workers reset SIGTERM/SIGINT to lethal defaults anyway: a signal to
     the whole process group kills the workers outright while the parent
     merely flips [draining] and finishes what it owes. *)
  let pool = Pool.create_service ~workers ?timeout handler in
  let draining = ref false in
  let drain_handler = Sys.Signal_handle (fun _ -> draining := true) in
  let install s =
    try Some (Sys.signal s drain_handler)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let prev_term = install Sys.sigterm in
  let prev_int = install Sys.sigint in
  let restore s = function
    | None -> ()
    | Some prev -> (
        try Sys.set_signal s prev with Invalid_argument _ | Sys_error _ -> ())
  in
  let cache : Json.t Lru.t = Lru.create cache_entries in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let pending : (int, pending_req) Hashtbl.t = Hashtbl.create 64 in
  let next_ticket = ref 0 in
  let requests = ref 0 in
  let cache_hits = ref 0 in
  let busy_rejects = ref 0 in
  let metrics () =
    Json.Obj
      [
        ("daemon.requests", Json.Int !requests);
        ("daemon.cache_hits", Json.Int !cache_hits);
        ("daemon.busy_rejects", Json.Int !busy_rejects);
      ]
  in
  let drop_client c =
    if c.connected then begin
      c.connected <- false;
      Hashtbl.remove clients c.fd;
      Wire.close_quietly c.fd
    end
  in
  let send c envelope =
    if c.connected then
      match
        Wire.with_sigpipe_ignored (fun () -> Wire.write_frame c.fd envelope)
      with
      | () -> ()
      | exception Unix.Unix_error _ -> drop_client c
  in
  let respond c ~req_id ~cached body =
    send c
      (Json.Obj
         (("id", req_id) :: ("ok", Json.Bool true) :: ("cached", Json.Bool cached)
         :: body
         @ [ ("metrics", metrics ()) ]))
  in
  let respond_error ?(extra = []) c ~req_id msg =
    send c
      (Json.Obj
         (("id", req_id) :: ("ok", Json.Bool false)
         :: (extra @ [ ("error", Json.String msg); ("metrics", metrics ()) ])))
  in
  let handle_request c msg =
    incr requests;
    Obs.incr c_requests;
    let req_id = Option.value (Json.member "id" msg) ~default:Json.Null in
    match Json.member "op" msg with
    | Some (Json.String "ping") ->
        respond c ~req_id ~cached:false [ ("result", Json.String "pong") ]
    | Some (Json.String "stats") ->
        respond c ~req_id ~cached:false
          [
            ( "result",
              Json.Obj
                [
                  ("requests", Json.Int !requests);
                  ("cache_hits", Json.Int !cache_hits);
                  ("busy_rejects", Json.Int !busy_rejects);
                  ("cache_entries", Json.Int (Lru.length cache));
                  ("inflight", Json.Int (Hashtbl.length pending));
                  ("workers", Json.Int (Pool.worker_count pool));
                ] );
          ]
    | Some (Json.String "shutdown") ->
        draining := true;
        respond c ~req_id ~cached:false [ ("result", Json.String "draining") ]
    | Some (Json.String _) -> (
        if !draining then respond_error c ~req_id "daemon is draining"
        else
          let key = try cache_key msg with _ -> None in
          match Option.bind key (Lru.find cache) with
          | Some result ->
              incr cache_hits;
              Obs.incr c_cache_hits;
              respond c ~req_id ~cached:true [ ("result", result) ]
          | None ->
              if Hashtbl.length pending >= max_inflight then begin
                incr busy_rejects;
                Obs.incr c_busy_rejects;
                respond_error c ~req_id
                  ~extra:[ ("busy", Json.Bool true) ]
                  "server is at capacity, retry later"
              end
              else begin
                let ticket = !next_ticket in
                incr next_ticket;
                Hashtbl.replace pending ticket { client = c; req_id; key };
                Pool.submit pool ~arg:msg ticket
              end)
    | Some _ | None ->
        respond_error c ~req_id "request has no \"op\" string"
  in
  let settle (ticket, outcome) =
    match Hashtbl.find_opt pending ticket with
    | None -> ()
    | Some p -> (
        Hashtbl.remove pending ticket;
        match outcome with
        | Parallel.Crashed { reason; wall = _ } ->
            respond_error p.client ~req_id:p.req_id ("worker crashed: " ^ reason)
        | Parallel.Completed payload -> (
            (* The worker speaks the handler convention: an {"ok":…}
               envelope of its own, with "result" or "error".  Only a
               successful result is cacheable — a handler error (bad
               input, unsolvable instance parameters) must be recomputed
               because the cache key may not capture what went wrong. *)
            match
              ( Json.member "ok" payload,
                Json.member "result" payload,
                Json.member "error" payload )
            with
            | Some (Json.Bool true), Some result, _ ->
                (match p.key with
                | Some k -> Lru.add cache k result
                | None -> ());
                respond p.client ~req_id:p.req_id ~cached:false
                  [ ("result", result) ]
            | Some (Json.Bool false), _, Some (Json.String msg) ->
                respond_error p.client ~req_id:p.req_id msg
            | _ ->
                respond_error p.client ~req_id:p.req_id
                  "worker returned a malformed payload"))
  in
  let read_client chunk c =
    (match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> drop_client c
    | k -> Wire.feed c.dec chunk k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> drop_client c);
    let continue = ref c.connected in
    while !continue do
      match Wire.next_frame ~max_payload:max_frame c.dec with
      | None -> continue := false
      | Some (Ok msg) ->
          handle_request c msg;
          continue := c.connected
      | Some (Error e) ->
          (* The stream is desynchronized (or adversarially huge): one
             parting diagnostic, then the connection dies.  The daemon
             itself carries on. *)
          respond_error c ~req_id:Json.Null ("bad frame: " ^ e);
          drop_client c;
          continue := false
    done
  in
  (match on_ready with
  | Some f -> f (Unix.getsockname listen_fd)
  | None -> ());
  let chunk = Bytes.create 65536 in
  let finally () =
    Hashtbl.iter (fun _ c -> drop_client c) (Hashtbl.copy clients);
    Wire.close_quietly listen_fd;
    (match address with
    | Unix_socket path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    Pool.shutdown pool;
    restore Sys.sigterm prev_term;
    restore Sys.sigint prev_int
  in
  Fun.protect ~finally @@ fun () ->
  while (not !draining) || Pool.pending pool > 0 do
    let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let watch =
      (if !draining then [] else [ listen_fd ])
      @ client_fds @ Pool.resp_fds pool
    in
    let select_timeout =
      match Pool.next_deadline pool with
      | None -> -1.0
      | Some d -> Float.max 0.0 (d -. Timer.now ())
    in
    let readable, _, _ =
      try Unix.select watch [] [] select_timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if (not !draining) && List.mem listen_fd readable then begin
      match Unix.accept listen_fd with
      | fd, _ ->
          Hashtbl.replace clients fd
            { fd; dec = Wire.decoder (); connected = true }
      | exception Unix.Unix_error _ -> ()
    end;
    (* Client reads may submit pool work; step after them so fresh jobs
       reach idle workers inside the same iteration. *)
    List.iter
      (fun fd ->
        match Hashtbl.find_opt clients fd with
        | Some c when List.mem fd readable -> read_client chunk c
        | _ -> ())
      client_fds;
    List.iter settle (Pool.step pool ~readable)
  done;
  {
    requests = !requests;
    cache_hits = !cache_hits;
    busy_rejects = !busy_rejects;
  }

module Client = struct
  type conn = { fd : Unix.file_descr }

  let connect ?(retries = 0) ?(delay = 0.05) address =
    let sa = sockaddr_of address in
    let attempt () =
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      match Unix.connect fd sa with
      | () -> Ok { fd }
      | exception e ->
          Wire.close_quietly fd;
          Error e
    in
    let rec go left =
      match attempt () with
      | Ok conn -> conn
      | Error e ->
          if left <= 0 then raise e
          else begin
            Unix.sleepf delay;
            go (left - 1)
          end
    in
    go retries

  let request conn msg =
    match Wire.with_sigpipe_ignored (fun () -> Wire.write_frame conn.fd msg) with
    | exception Unix.Unix_error (err, _, _) ->
        Error ("write failed: " ^ Unix.error_message err)
    | () -> (
        match Wire.read_frame conn.fd with
        | Some (Ok response) -> Ok response
        | Some (Error e) -> Error ("bad response frame: " ^ e)
        | None -> Error "connection closed by daemon")

  let close conn = Wire.close_quietly conn.fd
end
