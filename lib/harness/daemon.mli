(** Batch-query daemon: a Unix/TCP socket server that dispatches JSON
    requests to a service {!Pool} and answers repeated questions from a
    canonical-instance cache.

    The daemon is the transport and policy layer only — it knows nothing
    of graphs or games.  The embedder supplies the [handler] (runs in
    the pool workers) and the [cache_key] function (runs in the parent);
    [Daemon_service] in the [service] library instantiates both for the
    defender solvers.

    {b Wire protocol.}  Both directions speak {!Wire}'s length-delimited
    compact {!Json} frames.  A request is an object
    [{"id": any, "op": string, ...}]; the [id] is echoed verbatim in the
    response so clients may pipeline.  Ops [ping], [stats] and
    [shutdown] are answered by the daemon itself; every other op is
    offered to [cache_key] and then to the pool.  A response is
    [{"id":…, "ok":bool, "cached":bool, "result":…|"error":…,
    "metrics":{…}}]; the [metrics] object carries the live values of the
    three daemon counters.  On a cache hit the ["result"] value is the
    {e identical} JSON value that was cached, so its serialization is
    byte-identical to the cold response's (only the envelope differs:
    [cached] flips to [true] and the metrics move).

    {b Backpressure.}  At most [max_inflight] requests may be dispatched
    and unanswered; past that, a non-cached request is rejected
    immediately with [{"ok":false, "busy":true, …}] and counted in
    [daemon.busy_rejects].  Cache hits and parent-side ops are never
    rejected — they cost no worker.

    {b Caching.}  [cache_key] maps a request to [Some key] when the
    answer is safely shareable under that key (for the defender service:
    canonical graph6 + game + parameters, solve only — label-dependent
    results must return [None]).  Only worker responses with
    [{"ok":true}] are stored; handler-level errors are recomputed each
    time.  Eviction is least-recently-used, capacity [cache_entries]
    (0 disables caching).

    {b Frame safety.}  A frame whose declared length exceeds [max_frame]
    is rejected from its header alone; that and any other framing error
    is answered with one [{"ok":false, "error":"bad frame: …"}]
    diagnostic and the connection is closed.  The daemon survives.

    {b Counters.}  [daemon.requests] (well-formed request frames
    received, every op), [daemon.cache_hits], [daemon.busy_rejects].
    All three are deterministic functions of the request sequence; they
    are reported live in every response envelope and mirrored into
    {!Obs} counters of the same names.

    {b Shutdown.}  A [shutdown] request, SIGTERM or SIGINT puts the
    daemon into drain: it stops accepting connections, answers new
    requests with a ["daemon is draining"] error, finishes everything
    already dispatched, tears the pool down, removes the Unix socket
    file, and returns its final {!stats}. *)

type address =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int  (** host (name or dotted quad), port *)

type stats = { requests : int; cache_hits : int; busy_rejects : int }

(** [serve ~address ~workers ~cache_key handler] binds, forks the worker
    pool, and runs the event loop until drained; returns the final
    counter values.  [handler] runs in the workers on each request
    object and must return [{"ok":true, "result":…}] or
    [{"ok":false, "error":"…"}] — it should catch its own exceptions,
    since an escaped one costs a worker respawn and (after one retry)
    surfaces as a ["worker crashed"] error.  [timeout] is the per-request
    budget in seconds, enforced by the pool ({!Pool.create_service}).
    [on_ready] is called with the bound socket address after [listen]
    succeeds and before the first [accept] — the hook tests and the CLI
    use to learn the actual port of [Tcp (_, 0)] and to signal
    readiness.
    @raise Invalid_argument when [workers < 1], [timeout <= 0],
    [max_inflight < 1] or [max_frame < 1].
    @raise Unix.Unix_error when the address cannot be bound. *)
val serve :
  address:address ->
  workers:int ->
  ?timeout:float ->
  ?max_inflight:int ->
  ?cache_entries:int ->
  ?max_frame:int ->
  ?on_ready:(Unix.sockaddr -> unit) ->
  cache_key:(Json.t -> string option) ->
  (Json.t -> Json.t) ->
  stats

(** Minimal blocking client for scripts and tests: one request, one
    response, in order. *)
module Client : sig
  type conn

  (** [connect address] opens a connection; with [retries] > 0 a refused
      or missing socket is retried that many times, [delay] seconds
      apart — for racing a daemon that is still binding.
      @raise Unix.Unix_error when every attempt fails. *)
  val connect : ?retries:int -> ?delay:float -> address -> conn

  (** [request conn msg] writes one frame and blocks for one response
      frame.  [Error _] covers transport failures (closed connection,
      unparseable response); protocol-level failures come back as
      [Ok {"ok":false, …}]. *)
  val request : conn -> Json.t -> (Json.t, string) result

  val close : conn -> unit
end
