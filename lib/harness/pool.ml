(* Persistent pre-forked worker pool.  See pool.mli for the contract.

   Topology: one request pipe and one response pipe per worker, both
   speaking Wire's length-delimited JSON frames.  The parent is the only
   scheduler — per-worker queues dealt round-robin, one job in flight
   per worker, steals from the longest queue when a worker runs dry — so
   there is no shared-memory coordination to get wrong: workers know
   nothing of each other and just answer frames until EOF on the
   request pipe tells them to exit.

   Two front-ends share the scheduling core: the synchronous batch API
   (run_batch — deal, steal, block until every job settles) and the
   asynchronous service API (submit/step — a caller-owned select loop
   feeds jobs in and drains completions out; the Daemon is the caller).
   The per-mode differences (where a settled outcome goes, where a
   retried job is requeued) are factored into a [sched] record so the
   crash/timeout/desync rules live in exactly one place. *)

(* Recorded in the parent: these are orchestration metrics, never part
   of an experiment's own delta.  Dispatches (retries included) and
   respawns are pure functions of the jobs run and the crashes suffered;
   how many dispatches crossed queues (steals) depends on completion
   timing and must stay out of the stripped artifact normal form. *)
let c_dispatches = Obs.counter "pool.dispatches"
let c_respawns = Obs.counter "pool.respawns"
let c_steals = Obs.volatile "pool.steals"

type job = {
  pos : int;  (* position in the batch, for result ordering *)
  jid : int;  (* the id handed to [f] (batch) or the caller's ticket *)
  arg : Json.t option;  (* request payload, for service pools *)
  mutable attempts : int;
  mutable started : float;
  mutable deadline : float option;
  mutable timed_out : bool;
  mutable settled : bool;
}

type state = Idle | Busy of job | Dead

type worker = {
  index : int;
  mutable pid : int;
  mutable req : Unix.file_descr;  (* parent writes job/ping frames *)
  mutable resp : Unix.file_descr;  (* parent reads response frames *)
  mutable dec : Wire.decoder;
  mutable state : state;
  queue : job Queue.t;  (* dealt but not yet dispatched (batch mode) *)
}

(* What a worker process runs: indexed jobs compute from the job id
   alone (the batch API), service jobs carry their request as a JSON
   payload in the frame (the daemon API). *)
type handler = Indexed of (int -> Json.t) | Service of (Json.t -> Json.t)

type async = {
  backlog : job Queue.t;  (* submitted, not yet dispatched *)
  done_q : (int * Parallel.outcome) Queue.t;  (* settled, not yet drained *)
  mutable unfinished : int;  (* submitted minus settled *)
}

type t = {
  f : handler;
  timeout : float option;
  ws : worker array;
  mutable shut : bool;
  async : async;
}

(* The per-mode halves of the scheduler: where a settled outcome goes,
   and where a crashed job's single retry is requeued ([requeue] takes
   the dead worker so batch mode can park the job on its queue for the
   respawned worker — or a thief — to pick up). *)
type sched = {
  settle : job -> Parallel.outcome -> unit;
  requeue : worker -> job -> unit;
}

let worker_count t = Array.length t.ws

let worker_pids t =
  Array.fold_right
    (fun w acc -> if w.state = Dead then acc else w.pid :: acc)
    t.ws []

exception Desync of string

let reason_of_status = function
  | Unix.WEXITED 0 -> "worker exited before answering"
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED s -> "worker killed by " ^ Wire.signal_name s
  | Unix.WSTOPPED s -> "worker stopped by " ^ Wire.signal_name s

(* --- worker side --- *)

(* The whole worker: answer frames until EOF.  A raised exception
   (inside the handler or writing to a dead parent — SIGPIPE is ignored
   so that surfaces as EPIPE) exits 3, the same code Parallel's workers
   use, so the parent-side crash report reads identically.

   Signal dispositions: a parent embedding the pool in a daemon installs
   SIGTERM/SIGINT handlers that merely set a drain flag.  Workers forked
   after that point inherit those handlers, and an inherited flag-setter
   is worse than useless in a worker: a SIGTERM delivered to the whole
   process group (the shape `kill -TERM -- -PGID`, or a supervisor
   signalling the job) would interrupt the blocking read, set a flag
   nobody reads, and leave the worker alive — orphaned once the parent
   is gone.  So the first thing a worker does is restore the default
   (lethal) dispositions; its clean-exit path stays what it always was:
   EOF on the request pipe. *)
let worker_loop handler ~req ~resp =
  Wire.ignore_sigpipe ();
  List.iter
    (fun s ->
      try Sys.set_signal s Sys.Signal_default
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  let rec loop () =
    match Wire.read_frame req with
    | None -> Unix._exit 0 (* graceful drain *)
    | Some (Error _) -> Unix._exit 3
    | Some (Ok msg) -> (
        match (Json.member "job" msg, Json.member "ping" msg) with
        | Some (Json.Int jid), _ ->
            let payload =
              match (handler, Json.member "arg" msg) with
              | Indexed f, None -> f jid
              | Service f, Some arg -> f arg
              | Indexed _, Some _ | Service _, None -> Unix._exit 3
            in
            Wire.write_frame resp
              (Json.Obj [ ("job", Json.Int jid); ("payload", payload) ]);
            loop ()
        | None, Some token ->
            Wire.write_frame resp (Json.Obj [ ("pong", token) ]);
            loop ()
        | _ -> Unix._exit 3)
  in
  (try loop () with _ -> ());
  Unix._exit 3

(* --- parent side --- *)

(* Fork worker [index].  The child closes the parent-side ends of its
   own pipes and both ends the parent holds for every other live worker:
   a child keeping another worker's request pipe open would delay that
   worker's EOF (and hence graceful drain) until this child exits. *)
let spawn t index =
  flush stdout;
  flush stderr;
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close resp_r;
      Array.iter
        (fun w ->
          if w.index <> index && w.state <> Dead then begin
            Wire.close_quietly w.req;
            Wire.close_quietly w.resp
          end)
        t.ws;
      worker_loop t.f ~req:req_r ~resp:resp_w
  | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      let w = t.ws.(index) in
      w.pid <- pid;
      w.req <- req_w;
      w.resp <- resp_r;
      w.dec <- Wire.decoder ();
      w.state <- Idle

let respawn t index =
  Obs.incr c_respawns;
  spawn t index

(* Callers settle or requeue a Busy worker's job before marking. *)
let mark_dead w =
  if w.state <> Dead then begin
    Wire.close_quietly w.req;
    Wire.close_quietly w.resp;
    w.state <- Dead
  end

let make_pool ~workers ?timeout f =
  if workers < 1 then invalid_arg "Pool.create: workers must be positive";
  (match timeout with
  | Some s when s <= 0.0 -> invalid_arg "Pool.create: timeout must be positive"
  | _ -> ());
  let t =
    {
      f;
      timeout;
      shut = false;
      async =
        { backlog = Queue.create (); done_q = Queue.create (); unfinished = 0 };
      ws =
        Array.init workers (fun index ->
            {
              index;
              pid = -1;
              req = Unix.stdin (* placeholder: Dead state is never closed *);
              resp = Unix.stdin;
              dec = Wire.decoder ();
              state = Dead;
              queue = Queue.create ();
            });
    }
  in
  Array.iter (fun w -> spawn t w.index) t.ws;
  t

let create ~workers ?timeout f = make_pool ~workers ?timeout (Indexed f)

let create_service ~workers ?timeout f = make_pool ~workers ?timeout (Service f)

(* --- the shared scheduling core --- *)

let wall_of (j : job) = Float.max 0.0 (Timer.now () -. j.started)

let process_frames sched w =
  let continue = ref true in
  while !continue do
    match Wire.next_frame w.dec with
    | None -> continue := false
    | Some (Error e) -> raise (Desync ("worker response does not parse: " ^ e))
    | Some (Ok msg) -> (
        match (w.state, Json.member "job" msg, Json.member "payload" msg) with
        | Busy j, Some (Json.Int jid), Some payload when jid = j.jid ->
            sched.settle j (Parallel.Completed payload);
            w.state <- Idle
        | _ -> raise (Desync "unexpected frame from worker"))
  done

(* A worker hit EOF (it died) or a dispatch write failed.  Deliver
   whatever it wrote first: a complete buffered response beats any
   crash or timeout verdict — Parallel.classify's rule, the worker
   that answered at the deadline completed.  Then decide the pending
   job: timeout crashes settle with no retry (re-running would double
   the blown budget), a first crash is requeued for one retry on a
   fresh worker, a second crash settles with the wait status's
   reason. *)
let reap_dead t sched chunk w =
  (try
     let eof = ref false in
     while not !eof do
       match Unix.read w.resp chunk 0 (Bytes.length chunk) with
       | 0 -> eof := true
       | k -> Wire.feed w.dec chunk k
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error _ -> eof := true
     done;
     process_frames sched w
   with Desync _ -> ());
  let status = Wire.waitpid_retry w.pid in
  let pending = match w.state with Busy j -> Some j | Idle | Dead -> None in
  (match w.state with Busy _ -> w.state <- Idle | Idle | Dead -> ());
  mark_dead w;
  match pending with
  | None -> ()
  | Some j ->
      if j.timed_out then
        sched.settle j
          (Parallel.Crashed
             {
               reason =
                 Printf.sprintf "timed out after %g s (worker killed)"
                   (Option.value t.timeout ~default:Float.nan);
               wall = wall_of j;
             })
      else if j.attempts <= 1 then sched.requeue w j
      else
        sched.settle j
          (Parallel.Crashed { reason = reason_of_status status; wall = wall_of j })

(* A desynchronized response stream is unrecoverable: settle the job
   as unparseable (Parallel's wording for a corrupt payload, and like
   there no retry — the worker "answered", wrongly) and replace the
   worker. *)
let kill_desynced sched w reason =
  (match w.state with
  | Busy j ->
      sched.settle j (Parallel.Crashed { reason; wall = wall_of j });
      w.state <- Idle
  | Idle | Dead -> ());
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Wire.waitpid_retry w.pid);
  mark_dead w

let dispatch t sched chunk w (j : job) =
  j.attempts <- j.attempts + 1;
  j.started <- Timer.now ();
  j.deadline <- Option.map (fun s -> j.started +. s) t.timeout;
  j.timed_out <- false;
  w.state <- Busy j;
  Obs.incr c_dispatches;
  let frame =
    match j.arg with
    | None -> Json.Obj [ ("job", Json.Int j.jid) ]
    | Some arg -> Json.Obj [ ("job", Json.Int j.jid); ("arg", arg) ]
  in
  match Wire.with_sigpipe_ignored (fun () -> Wire.write_frame w.req frame) with
  | () -> ()
  | exception Unix.Unix_error _ -> reap_dead t sched chunk w

(* Deadlines are enforced after responses are read: any response that
   raced its deadline was already settled, so only genuinely late
   workers are shot.  The kill is the whole enforcement — the EOF it
   provokes flows through reap_dead, which still prefers a completed
   buffered response over the timeout verdict. *)
let enforce_deadlines t =
  let tnow = Timer.now () in
  Array.iter
    (fun w ->
      match w.state with
      | Busy j -> (
          match j.deadline with
          | Some d when (not j.timed_out) && tnow >= d ->
              j.timed_out <- true;
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
          | _ -> ())
      | Idle | Dead -> ())
    t.ws

(* --- synchronous batch front-end --- *)

let run_batch t ids =
  if t.shut then invalid_arg "Pool.run_batch: pool is shut down";
  (match t.f with
  | Indexed _ -> ()
  | Service _ ->
      invalid_arg "Pool.run_batch: service pools take jobs through submit");
  if t.async.unfinished > 0 then
    invalid_arg "Pool.run_batch: submitted service jobs are still in flight";
  Array.iter
    (fun w ->
      match w.state with
      | Busy _ -> invalid_arg "Pool.run_batch: a batch is already in flight"
      | Idle | Dead -> ())
    t.ws;
  let jobs =
    Array.of_list
      (List.mapi
         (fun pos jid ->
           {
             pos;
             jid;
             arg = None;
             attempts = 0;
             started = 0.0;
             deadline = None;
             timed_out = false;
             settled = false;
           })
         ids)
  in
  let count = Array.length jobs in
  let results = Array.make (max count 1) None in
  let remaining = ref count in
  let n = Array.length t.ws in
  Array.iter (fun w -> Queue.clear w.queue) t.ws;
  Array.iteri (fun pos j -> Queue.push j t.ws.(pos mod n).queue) jobs;
  let chunk = Bytes.create 65536 in
  let sched =
    {
      settle =
        (fun j outcome ->
          if not j.settled then begin
            j.settled <- true;
            results.(j.pos) <- Some outcome;
            decr remaining
          end);
      requeue = (fun w j -> Queue.push j w.queue);
    }
  in
  let take_next w =
    if not (Queue.is_empty w.queue) then Some (Queue.pop w.queue)
    else begin
      let victim = ref None in
      Array.iter
        (fun v ->
          let len = Queue.length v.queue in
          if len > 0 then
            match !victim with
            | Some u when Queue.length u.queue >= len -> ()
            | _ -> victim := Some v)
        t.ws;
      match !victim with
      | None -> None
      | Some v ->
          Obs.incr c_steals;
          Some (Queue.pop v.queue)
    end
  in
  while !remaining > 0 do
    (* Respawns happen only here (and after the loop): never while a
       stale select result is alive, so a recycled descriptor number can
       never alias a just-closed one. *)
    Array.iter (fun w -> if w.state = Dead then respawn t w.index) t.ws;
    Array.iter
      (fun w ->
        if w.state = Idle then
          match take_next w with
          | Some j -> dispatch t sched chunk w j
          | None -> ())
      t.ws;
    let fds =
      Array.fold_left
        (fun acc w -> if w.state = Dead then acc else w.resp :: acc)
        [] t.ws
    in
    if fds <> [] then begin
      let nearest =
        Array.fold_left
          (fun acc w ->
            match w.state with
            | Busy j -> (
                match j.deadline with
                | Some d when not j.timed_out -> Float.min acc d
                | _ -> acc)
            | Idle | Dead -> acc)
          Float.infinity t.ws
      in
      let select_timeout =
        if nearest = Float.infinity then -1.0
        else Float.max 0.0 (nearest -. Timer.now ())
      in
      let readable, _, _ =
        try Unix.select fds [] [] select_timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      Array.iter
        (fun w ->
          if w.state <> Dead && List.mem w.resp readable then
            match Unix.read w.resp chunk 0 (Bytes.length chunk) with
            | 0 -> reap_dead t sched chunk w
            | k -> (
                Wire.feed w.dec chunk k;
                try process_frames sched w
                with Desync reason -> kill_desynced sched w reason)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        t.ws;
      enforce_deadlines t
    end
  done;
  (* Persistent-pool invariant: a batch ends at full strength, so the
     respawn count is exactly the death count however settlements were
     ordered. *)
  Array.iter (fun w -> if w.state = Dead then respawn t w.index) t.ws;
  List.map
    (fun (j : job) ->
      match results.(j.pos) with Some o -> (j.jid, o) | None -> assert false)
    (Array.to_list jobs)

(* --- asynchronous service front-end --- *)

let async_sched t =
  let a = t.async in
  {
    settle =
      (fun j outcome ->
        if not j.settled then begin
          j.settled <- true;
          a.unfinished <- a.unfinished - 1;
          Queue.push (j.jid, outcome) a.done_q
        end);
    (* No per-worker queues here: a retried job goes to the back of the
       shared backlog and the next idle worker takes it. *)
    requeue = (fun _w j -> Queue.push j a.backlog);
  }

let submit t ?arg ticket =
  if t.shut then invalid_arg "Pool.submit: pool is shut down";
  (match (t.f, arg) with
  | Indexed _, Some _ ->
      invalid_arg "Pool.submit: this pool's handler takes no payload"
  | Service _, None ->
      invalid_arg "Pool.submit: this pool's handler needs a payload"
  | Indexed _, None | Service _, Some _ -> ());
  Queue.push
    {
      pos = 0;
      jid = ticket;
      arg;
      attempts = 0;
      started = 0.0;
      deadline = None;
      timed_out = false;
      settled = false;
    }
    t.async.backlog;
  t.async.unfinished <- t.async.unfinished + 1

let pending t = t.async.unfinished

let resp_fds t =
  Array.fold_left
    (fun acc w -> if w.state = Dead then acc else w.resp :: acc)
    [] t.ws

let next_deadline t =
  Array.fold_left
    (fun acc w ->
      match w.state with
      | Busy j -> (
          match j.deadline with
          | Some d when not j.timed_out ->
              Some (match acc with None -> d | Some a -> Float.min a d)
          | _ -> acc)
      | Idle | Dead -> acc)
    None t.ws

let step t ~readable =
  if t.shut then invalid_arg "Pool.step: pool is shut down";
  let sched = async_sched t in
  let chunk = Bytes.create 65536 in
  let dispatch_backlog () =
    Array.iter
      (fun w ->
        if w.state = Idle && not (Queue.is_empty t.async.backlog) then
          dispatch t sched chunk w (Queue.pop t.async.backlog))
      t.ws
  in
  (* Same discipline as the batch loop: respawn and dispatch first,
     while no stale select result is alive for the new descriptors to
     alias... *)
  Array.iter (fun w -> if w.state = Dead then respawn t w.index) t.ws;
  dispatch_backlog ();
  (* ...then consume what the caller's select saw.  A freshly respawned
     worker's descriptor cannot be in [readable]: the caller collected
     the fds before this call. *)
  Array.iter
    (fun w ->
      if w.state <> Dead && List.mem w.resp readable then
        match Unix.read w.resp chunk 0 (Bytes.length chunk) with
        | 0 -> reap_dead t sched chunk w
        | k -> (
            Wire.feed w.dec chunk k;
            try process_frames sched w
            with Desync reason -> kill_desynced sched w reason)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    t.ws;
  enforce_deadlines t;
  (* Workers freed by the settlements above take more backlog now, so a
     submit-then-step cycle never leaves an idle worker facing queued
     work across the caller's select.  Deaths are respawned only after
     the readable list has been fully consumed (alias rule again). *)
  Array.iter (fun w -> if w.state = Dead then respawn t w.index) t.ws;
  dispatch_backlog ();
  let out = ref [] in
  while not (Queue.is_empty t.async.done_q) do
    out := Queue.pop t.async.done_q :: !out
  done;
  List.rev !out

(* --- health and teardown --- *)

let alive t =
  Array.to_list
    (Array.map
       (fun w ->
         match w.state with
         | Dead -> false
         | Idle | Busy _ -> (
             match Unix.waitpid [ Unix.WNOHANG ] w.pid with
             | 0, _ -> true
             | _ | (exception Unix.Unix_error (Unix.ECHILD, _, _)) ->
                 w.state <- Idle;
                 mark_dead w;
                 false))
       t.ws)

let ping ?(timeout_s = 5.0) t =
  let chunk = Bytes.create 4096 in
  let ping_idle w =
    let ok =
      match
        Wire.with_sigpipe_ignored (fun () ->
            Wire.write_frame w.req (Json.Obj [ ("ping", Json.Int w.index) ]))
      with
      | () ->
          let stop = Timer.now () +. timeout_s in
          let rec await () =
            match Wire.next_frame w.dec with
            | Some (Ok msg) -> Json.member "pong" msg <> None
            | Some (Error _) -> false
            | None -> (
                let left = stop -. Timer.now () in
                if left <= 0.0 then false
                else
                  match Unix.select [ w.resp ] [] [] left with
                  | [], _, _ -> false
                  | _ -> (
                      match Unix.read w.resp chunk 0 (Bytes.length chunk) with
                      | 0 -> false
                      | k ->
                          Wire.feed w.dec chunk k;
                          await ()
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ())
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ())
          in
          await ()
      | exception Unix.Unix_error _ -> false
    in
    if not ok then begin
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Wire.waitpid_retry w.pid);
      mark_dead w
    end;
    ok
  in
  Array.to_list
    (Array.map
       (fun w ->
         match w.state with
         | Dead -> false
         | Busy _ -> (
             (* Mid-job (only possible if a batch raised or a service
                job is in flight): liveness only, the response stream is
                not ours to consume. *)
             match Unix.waitpid [ Unix.WNOHANG ] w.pid with
             | 0, _ -> true
             | _ | (exception Unix.Unix_error (Unix.ECHILD, _, _)) ->
                 w.state <- Idle;
                 mark_dead w;
                 false)
         | Idle -> ping_idle w)
       t.ws)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Array.iter
      (fun w ->
        if w.state <> Dead then begin
          (match w.state with
          | Busy _ ->
              (* only reachable with a job still in flight (a batch
                 raised, or a service job was abandoned): don't wait on
                 a half-finished job, just kill *)
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
          | Idle | Dead -> ());
          Wire.close_quietly w.req;
          (* EOF: the worker exits 0 at its next frame boundary *)
          ignore (Wire.waitpid_retry w.pid);
          Wire.close_quietly w.resp;
          w.state <- Dead
        end)
      t.ws
  end

let run ~jobs ?timeout count f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be positive";
  (match timeout with
  | Some s when s <= 0.0 -> invalid_arg "Pool.run: timeout must be positive"
  | _ -> ());
  if count < 0 then invalid_arg "Pool.run: negative job count";
  if count = 0 then [||]
  else begin
    let t = create ~workers:(min jobs count) ?timeout f in
    Fun.protect ~finally:(fun () -> shutdown t) @@ fun () ->
    let outcomes = run_batch t (List.init count Fun.id) in
    let results = Array.make count None in
    List.iter (fun (jid, o) -> results.(jid) <- Some o) outcomes;
    Array.map (function Some o -> o | None -> assert false) results
  end
