(** Persistent pre-forked worker pool: {!Parallel}'s fault isolation
    without the per-job fork.

    {!Parallel.run} pays a full [fork] (and a cold address space) for
    every job, which is the right trade for a handful of heavy
    experiments and the wrong one for sweeps of many small ones — or for
    a long-lived solve service.  A pool forks its workers {e once}; each
    lives across jobs with whatever caches it has warmed, receives jobs
    as length-delimited {!Json} frames on a per-worker request pipe and
    answers on a response pipe ({!Wire} owns the framing), and is
    reaped only at {!shutdown}.

    Two front-ends share one scheduling core:

    - the {b batch} API ({!create} + {!run_batch}): a job is an integer
      id, the worker computes [f id], and the call blocks until every
      job settles.  Dispatch is least-loaded with work stealing: the
      batch is dealt round-robin into per-worker queues, each worker
      holds one job in flight, and a worker that drains its own queue
      steals the next job from the longest remaining queue — so one slow
      job cannot strand the work dealt behind it.
    - the {b service} API ({!create_service} + {!submit} + {!step}): a
      job carries a JSON request payload, the worker computes
      [f payload], and the caller owns the select loop — it collects
      {!resp_fds}, selects, and hands the readable descriptors to
      {!step}, which returns whatever completions materialized.  This is
      the {!Daemon}'s engine.

    {b Fault tolerance} (both front-ends).  A worker that dies mid-job
    (signal, OOM kill, nonzero exit, corrupt response stream) is
    respawned and the job is retried once on a fresh worker before being
    reported {!Parallel.Crashed}.  A worker past the per-job [timeout]
    is SIGKILLed and its job reported as a timeout crash with {e no}
    retry (re-running it would double the blown budget).  In both cases
    a complete buffered response beats the crash/timeout verdict — the
    {!Parallel.classify} rule: a worker that answered and died at the
    deadline completed.

    {b Worker signals.}  Workers restore the default (lethal)
    dispositions for SIGTERM and SIGINT on startup.  A parent embedding
    the pool in a daemon typically installs flag-setting drain handlers
    for those signals; inheriting such a handler would leave a worker
    alive — and soon orphaned — when a supervisor signals the whole
    process group.  The worker's {e graceful} exit path is unchanged:
    EOF on its request pipe.

    {b Counters} (recorded in the parent, so they surface as the
    driver's orchestration-side metrics, never inside an experiment's
    own delta): [pool.dispatches] (jobs sent to workers, retries
    included — deterministic), [pool.respawns] (workers replaced after a
    death — deterministic when the crashes are), and [pool.steals]
    (volatile: how many dispatches crossed queues depends on completion
    timing, so it may legitimately differ between identical runs). *)

type t

(** [create ~workers ?timeout f] forks [workers] persistent worker
    processes around [f].  [f] runs in the workers: state it mutates
    there is invisible to the parent and survives {e across jobs within
    one worker} (warm caches are the point), but never crosses workers.
    [timeout] is the per-job budget in seconds.
    @raise Invalid_argument when [workers < 1] or [timeout <= 0]. *)
val create : workers:int -> ?timeout:float -> (int -> Json.t) -> t

(** [create_service ~workers ?timeout f] forks a pool whose jobs carry a
    JSON payload: {!submit} with [?arg:req] makes some worker compute
    [f req].  Service pools are driven through {!submit}/{!step}
    ({!run_batch} rejects them).
    @raise Invalid_argument when [workers < 1] or [timeout <= 0]. *)
val create_service :
  workers:int -> ?timeout:float -> (Json.t -> Json.t) -> t

val worker_count : t -> int

(** Pids of the currently live workers, in slot order — for supervision
    and for tests that assert workers are reaped. *)
val worker_pids : t -> int list

(** Liveness snapshot without worker I/O: a non-blocking [waitpid] per
    worker.  A worker found dead is reaped and marked (the next batch
    respawns it). *)
val alive : t -> bool list

(** Active health check, valid between batches: each live idle worker is
    sent a ping frame and must answer the matching pong within
    [timeout_s] (default 5) seconds.  A worker that fails the check is
    killed, reaped and marked dead (the next batch respawns it). *)
val ping : ?timeout_s:float -> t -> bool list

(** [run_batch t ids] runs job id [i] as [f i] for each listed id across
    the pool and returns [(id, outcome)] in the argument order.  Dead
    workers are respawned first; crashes and timeouts follow the rules
    above.  Ids need not be distinct (each occurrence is its own job).
    @raise Invalid_argument after {!shutdown}, on a service pool, or
    while submitted service jobs are still in flight. *)
val run_batch : t -> int list -> (int * Parallel.outcome) list

(** {2 Asynchronous service interface}

    The caller owns the event loop.  Each iteration: {!submit} any new
    work, build a select set from {!resp_fds} (plus the caller's own
    descriptors), bound the wait by {!next_deadline}, select, then call
    {!step} with the pool descriptors that were readable.  {!step} also
    dispatches backlog and enforces deadlines, so it must be called
    periodically even when nothing was readable (a select timeout). *)

(** [submit t ~arg ticket] queues one job.  [ticket] is an opaque caller
    id echoed back with the outcome — the pool never interprets it, and
    duplicates are the caller's own affair.  [arg] is required on
    service pools and forbidden on batch pools.
    @raise Invalid_argument after {!shutdown} or on an arg mismatch. *)
val submit : t -> ?arg:Json.t -> int -> unit

(** Jobs submitted but not yet returned by {!step}. *)
val pending : t -> int

(** Response descriptors of the live workers — the pool's contribution
    to the caller's select set.  Collect these {e fresh before every
    select}: {!step} may close some (dead workers) and open others
    (respawns). *)
val resp_fds : t -> Unix.file_descr list

(** Earliest absolute deadline over in-flight jobs, as a {!Timer.now}
    value — the caller caps its select timeout at this so late workers
    are killed on time.  [None] when nothing in flight has a deadline. *)
val next_deadline : t -> float option

(** [step t ~readable] advances the pool: respawns dead workers,
    dispatches backlog to idle ones, consumes the [readable] response
    descriptors (completions, crash detection), kills workers past their
    deadline, dispatches again to workers just freed, and returns the
    jobs that settled as [(ticket, outcome)] in settlement order.
    [readable] entries that are not pool descriptors are ignored.
    @raise Invalid_argument after {!shutdown}. *)
val step : t -> readable:Unix.file_descr list -> (int * Parallel.outcome) list

(** Graceful drain, idempotent: close every request pipe — a worker
    reads EOF at its next frame boundary and exits 0 — then reap all
    workers.  Workers still busy (only possible if a batch raised or a
    service job is in flight) are killed rather than waited for. *)
val shutdown : t -> unit

(** {!Parallel.run}'s exact signature on a transient pool: fork
    [min jobs count] workers, run jobs [0 .. count-1] as one batch,
    drain, and return the outcomes indexed by job.
    @raise Invalid_argument when [jobs < 1], [timeout <= 0] or
    [count < 0]. *)
val run :
  jobs:int -> ?timeout:float -> int -> (int -> Json.t) -> Parallel.outcome array
