(** Persistent pre-forked worker pool: {!Parallel}'s fault isolation
    without the per-job fork.

    {!Parallel.run} pays a full [fork] (and a cold address space) for
    every job, which is the right trade for a handful of heavy
    experiments and the wrong one for sweeps of many small ones — or for
    a long-lived solve service.  A pool forks its workers {e once}; each
    lives across jobs with whatever caches it has warmed, receives jobs
    as length-delimited {!Json} frames on a per-worker request pipe and
    answers on a response pipe ({!Wire} owns the framing), and is
    reaped only at {!shutdown}.

    {b Dispatch} is least-loaded with work stealing: a batch is dealt
    round-robin into per-worker queues, each worker holds one job in
    flight, and a worker that drains its own queue steals the next job
    from the longest remaining queue — so one slow job cannot strand the
    work dealt behind it.

    {b Fault tolerance.}  A worker that dies mid-job (signal, OOM kill,
    nonzero exit, corrupt response stream) is respawned and the job is
    retried once on a fresh worker before being reported
    {!Parallel.Crashed}.  A worker past the per-job [timeout] is
    SIGKILLed and its job reported as a timeout crash with {e no} retry
    (re-running it would double the blown budget).  In both cases a
    complete buffered response beats the crash/timeout verdict — the
    {!Parallel.classify} rule: a worker that answered and died at the
    deadline completed.

    {b Counters} (recorded in the parent, so they surface as the
    driver's orchestration-side metrics, never inside an experiment's
    own delta): [pool.dispatches] (jobs sent to workers, retries
    included — deterministic), [pool.respawns] (workers replaced after a
    death — deterministic when the crashes are), and [pool.steals]
    (volatile: how many dispatches crossed queues depends on completion
    timing, so it may legitimately differ between identical runs). *)

type t

(** [create ~workers ?timeout f] forks [workers] persistent worker
    processes around [f].  [f] runs in the workers: state it mutates
    there is invisible to the parent and survives {e across jobs within
    one worker} (warm caches are the point), but never crosses workers.
    [timeout] is the per-job budget in seconds.
    @raise Invalid_argument when [workers < 1] or [timeout <= 0]. *)
val create : workers:int -> ?timeout:float -> (int -> Json.t) -> t

val worker_count : t -> int

(** Liveness snapshot without worker I/O: a non-blocking [waitpid] per
    worker.  A worker found dead is reaped and marked (the next batch
    respawns it). *)
val alive : t -> bool list

(** Active health check, valid between batches: each live idle worker is
    sent a ping frame and must answer the matching pong within
    [timeout_s] (default 5) seconds.  A worker that fails the check is
    killed, reaped and marked dead (the next batch respawns it). *)
val ping : ?timeout_s:float -> t -> bool list

(** [run_batch t ids] runs job id [i] as [f i] for each listed id across
    the pool and returns [(id, outcome)] in the argument order.  Dead
    workers are respawned first; crashes and timeouts follow the rules
    above.  Ids need not be distinct (each occurrence is its own job).
    @raise Invalid_argument after {!shutdown}. *)
val run_batch : t -> int list -> (int * Parallel.outcome) list

(** Graceful drain, idempotent: close every request pipe — a worker
    reads EOF at its next frame boundary and exits 0 — then reap all
    workers.  Workers still busy (only possible if a batch raised) are
    killed rather than waited for. *)
val shutdown : t -> unit

(** {!Parallel.run}'s exact signature on a transient pool: fork
    [min jobs count] workers, run jobs [0 .. count-1] as one batch,
    drain, and return the outcomes indexed by job.
    @raise Invalid_argument when [jobs < 1], [timeout <= 0] or
    [count < 0]. *)
val run :
  jobs:int -> ?timeout:float -> int -> (int -> Json.t) -> Parallel.outcome array
