(** Wall-clock timing helpers for the scaling figures (Bechamel handles
    the microbenchmarks; these cover one-shot algorithm timings).

    All readings come from the system's monotonic clock, not from
    [Unix.gettimeofday]: an NTP step cannot produce negative or skewed
    durations here.  Durations are clamped at zero regardless. *)

(** Monotonic timestamp in seconds.  The epoch is arbitrary (boot time on
    Linux) — only differences between two [now] readings are meaningful. *)
val now : unit -> float

(** [time f] is [(result, seconds)].  [seconds >= 0.] always. *)
val time : (unit -> 'a) -> 'a * float

(** Median of an already-sorted sample list, in seconds.  Tie-break for
    even sample counts: the two central samples are {e averaged} (the
    standard estimator — returning the upper one biases the median
    upward by half the central gap); odd counts return the middle sample
    unchanged, bit-identical to the historical behaviour.
    @raise Invalid_argument on an empty list. *)
val median_of_sorted : float list -> float

(** Median-of-[repeat] timing in seconds (default 5), discarding
    results.  Even [repeat] follows the {!median_of_sorted} tie-break. *)
val time_median : ?repeat:int -> (unit -> 'a) -> float

(** Repeated timing with spread, for structured timing artifacts: a
    single median point hides scheduler noise, so the JSON cells carry
    [(median, min, max, runs)].  All values in seconds. *)
type stats = { median : float; min : float; max : float; runs : int }

(** Like {!time_median} but returning the full [stats] (default 5 runs).
    @raise Invalid_argument when [repeat < 1]. *)
val time_stats : ?repeat:int -> (unit -> 'a) -> stats
