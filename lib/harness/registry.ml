let experiments : Experiment.t list ref = ref [] (* reversed *)

let register (e : Experiment.t) =
  if List.exists (fun (r : Experiment.t) -> r.id = e.id) !experiments then
    invalid_arg (Printf.sprintf "Registry.register: duplicate experiment id %S" e.id);
  experiments := e :: !experiments

let clear () = experiments := []
let all () = List.rev !experiments
let ids () = List.map (fun (e : Experiment.t) -> e.id) (all ())

let find id =
  List.find_opt (fun (e : Experiment.t) -> e.id = id) !experiments

let select ~only =
  let unknown = List.filter (fun id -> find id = None) only in
  if unknown <> [] then
    Error
      (Printf.sprintf "unknown experiment id(s): %s (try --list)"
         (String.concat ", " unknown))
  else
    Ok
      (List.filter
         (fun (e : Experiment.t) -> List.mem e.id only)
         (all ()))

let filter_tag tag =
  List.filter (fun (e : Experiment.t) -> e.tag = tag) (all ())

type summary = {
  total : int;
  pass : int;
  info : int;
  degraded : int;
  crashed : int;
  checks_total : int;
  checks_failed : int;
  wall : float;
}

let summarize (results : Experiment.result list) =
  List.fold_left
    (fun acc (r : Experiment.result) ->
      {
        total = acc.total + 1;
        pass = acc.pass + (if r.verdict = Experiment.Pass then 1 else 0);
        info = acc.info + (if r.verdict = Experiment.Info then 1 else 0);
        degraded =
          acc.degraded + (if r.verdict = Experiment.Degraded then 1 else 0);
        crashed =
          acc.crashed + (if r.verdict = Experiment.Crashed then 1 else 0);
        checks_total = acc.checks_total + r.checks_total;
        checks_failed = acc.checks_failed + r.checks_failed;
        wall = acc.wall +. r.wall;
      })
    {
      total = 0;
      pass = 0;
      info = 0;
      degraded = 0;
      crashed = 0;
      checks_total = 0;
      checks_failed = 0;
      wall = 0.0;
    }
    results

let summary_table (results : Experiment.result list) =
  let table =
    Table.create ~title:"experiment summary"
      ~columns:[ "id"; "tag"; "verdict"; "checks"; "wall" ]
  in
  List.iter
    (fun (r : Experiment.result) ->
      Table.add_row table
        [
          r.id;
          Experiment.tag_to_string r.tag;
          Experiment.verdict_to_string r.verdict;
          (if r.checks_total = 0 then "-"
           else
             Printf.sprintf "%d/%d" (r.checks_total - r.checks_failed)
               r.checks_total);
          Printf.sprintf "%.3fs" r.wall;
        ])
    results;
  let s = summarize results in
  (* The crashed count only appears when nonzero, so a healthy sweep's
     totals line stays byte-identical to the historical rendering. *)
  let crashed_cell =
    if s.crashed = 0 then "" else Printf.sprintf ", %d crashed" s.crashed
  in
  Table.to_string table
  ^ Printf.sprintf
      "total: %d experiments (%d pass, %d info, %d degraded%s); checks %d/%d; \
       %.2fs\n"
      s.total s.pass s.info s.degraded crashed_cell
      (s.checks_total - s.checks_failed)
      s.checks_total s.wall

let metrics_table ?driver (results : Experiment.result list) =
  let det : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let vol : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let spans : (string, int * float option) Hashtbl.t = Hashtbl.create 16 in
  let add tbl (k, n) =
    Hashtbl.replace tbl k (n + Option.value (Hashtbl.find_opt tbl k) ~default:0)
  in
  let add_span (k, (s : Experiment.span_metric)) =
    let c0, t0 = Option.value (Hashtbl.find_opt spans k) ~default:(0, None) in
    let t =
      match (t0, s.total_s) with
      | None, t | t, None -> t
      | Some a, Some b -> Some (a +. b)
    in
    Hashtbl.replace spans k (c0 + s.calls, t)
  in
  let absorb (m : Experiment.metrics) =
    List.iter (add det) m.m_counters;
    List.iter (add vol) m.m_volatile;
    List.iter add_span m.m_spans
  in
  List.iter (fun (r : Experiment.result) -> Option.iter absorb r.metrics) results;
  Option.iter absorb driver;
  let rows tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  let buf = Buffer.create 256 in
  let counter_rows =
    rows det @ List.map (fun (k, n) -> (k ^ " (volatile)", n)) (rows vol)
  in
  if counter_rows <> [] then begin
    let t =
      Table.create ~title:"observability counters (summed over sweep)"
        ~columns:[ "counter"; "total" ]
    in
    List.iter (fun (k, n) -> Table.add_row t [ k; string_of_int n ]) counter_rows;
    Buffer.add_string buf (Table.to_string t)
  end;
  let span_rows = rows spans in
  if span_rows <> [] then begin
    let t =
      Table.create ~title:"observability spans (summed over sweep)"
        ~columns:[ "span"; "calls"; "total_s" ]
    in
    List.iter
      (fun (k, (c, secs)) ->
        Table.add_row t
          [
            k;
            string_of_int c;
            (match secs with Some s -> Printf.sprintf "%.6f" s | None -> "-");
          ])
      span_rows;
    Buffer.add_string buf (Table.to_string t)
  end;
  Buffer.contents buf

let run ?(scale = Experiment.Full) ?(echo = fun _ -> ()) experiments =
  List.map
    (fun e ->
      let r = Experiment.run ~scale e in
      echo r.Experiment.text;
      r)
    experiments

let run_parallel ?(scale = Experiment.Full) ?(jobs = 1) ?timeout
    ?(force_crash = []) ?(dispatch = `Fork) ?(echo = fun _ -> ()) experiments =
  if jobs < 1 then invalid_arg "Registry.run_parallel: jobs must be positive";
  if dispatch = `Fork && jobs = 1 && timeout = None && force_crash = [] then
    (* The degenerate fork pool is the sequential runner itself — same
       code path, same streaming echo, byte-identical output.  The
       persistent pool never takes this shortcut: [--pool --jobs 1] must
       exercise the worker protocol it claims to. *)
    run ~scale ~echo experiments
  else begin
    let arr = Array.of_list experiments in
    let worker i =
      let e = arr.(i) in
      if List.mem e.Experiment.id force_crash then
        (* Fault injection: die the way an OOM-killed worker does,
           so the isolation path under test is the real one. *)
        Unix.kill (Unix.getpid ()) Sys.sigkill;
      Experiment.result_to_wire (Experiment.run ~scale e)
    in
    let outcomes =
      match dispatch with
      | `Fork -> Parallel.run ~jobs ?timeout (Array.length arr) worker
      | `Pool -> Pool.run ~jobs ?timeout (Array.length arr) worker
    in
    let results =
      Array.to_list
        (Array.mapi
           (fun i outcome ->
             let e = arr.(i) in
             match outcome with
             | Parallel.Completed json -> (
                 match Experiment.result_of_wire json with
                 | Ok r -> r
                 | Error msg ->
                     Experiment.crashed e
                       ~reason:("malformed worker result: " ^ msg) ~wall:0.0)
             | Parallel.Crashed { reason; wall } ->
                 Experiment.crashed e ~reason ~wall)
           outcomes)
    in
    (* Workers complete in machine order; echo in registration order
       once the sweep is done, matching the sequential rendering. *)
    List.iter (fun (r : Experiment.result) -> echo r.Experiment.text) results;
    results
  end

let report_json ~scale results =
  let s = summarize results in
  Json.Obj
    [
      ("schema", Json.String "defender-bench/v1");
      ( "source",
        Json.String
          "The Power of the Defender (ICDCS 2006) reproduction harness" );
      ("scale", Json.String (Experiment.scale_to_string scale));
      ("experiments", Json.List (List.map Experiment.result_to_json results));
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int s.total);
            ("pass", Json.Int s.pass);
            ("info", Json.Int s.info);
            ("degraded", Json.Int s.degraded);
            ("crashed", Json.Int s.crashed);
            ("checks_total", Json.Int s.checks_total);
            ("checks_failed", Json.Int s.checks_failed);
            ("wall_s", Json.Float s.wall);
          ] );
    ]

(* Timing data is the only nondeterminism a healthy artifact contains:
   wall clocks, Timer cells, and float-valued measures (OLS estimates,
   speedups, fitted slopes — every float measure in the registry derives
   from the clock; exact results are Int/Bool/rational-string).  Drop
   all of it and two sweeps of the same registry at the same scale must
   be byte-identical, however the work was scheduled.

   Metrics objects are deliberately only half stripped: span "total_s"
   durations and the "volatile" section go (clock- respectively
   payload-dependent), while deterministic counters and span call
   counts STAY — so the B14 sequential-vs-parallel byte-equality gate
   also proves the counters' determinism contract across --jobs. *)
let rec strip_timings json =
  match json with
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             match (k, v) with
             | ("wall_s" | "timings" | "total_s" | "volatile"), _ -> None
             | "measures", Json.Obj ms ->
                 Some
                   ( k,
                     Json.Obj
                       (List.filter
                          (fun (_, v) ->
                            match v with
                            | Json.Float _ | Json.Null -> false
                            | _ -> true)
                          ms) )
             | _ -> Some (k, strip_timings v))
           fields)
  | Json.List items -> Json.List (List.map strip_timings items)
  | other -> other
