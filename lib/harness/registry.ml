let experiments : Experiment.t list ref = ref [] (* reversed *)

let register (e : Experiment.t) =
  if List.exists (fun (r : Experiment.t) -> r.id = e.id) !experiments then
    invalid_arg (Printf.sprintf "Registry.register: duplicate experiment id %S" e.id);
  experiments := e :: !experiments

let clear () = experiments := []
let all () = List.rev !experiments
let ids () = List.map (fun (e : Experiment.t) -> e.id) (all ())

let find id =
  List.find_opt (fun (e : Experiment.t) -> e.id = id) !experiments

let select ~only =
  let unknown = List.filter (fun id -> find id = None) only in
  if unknown <> [] then
    Error
      (Printf.sprintf "unknown experiment id(s): %s (try --list)"
         (String.concat ", " unknown))
  else
    Ok
      (List.filter
         (fun (e : Experiment.t) -> List.mem e.id only)
         (all ()))

let filter_tag tag =
  List.filter (fun (e : Experiment.t) -> e.tag = tag) (all ())

type summary = {
  total : int;
  pass : int;
  info : int;
  degraded : int;
  checks_total : int;
  checks_failed : int;
  wall : float;
}

let summarize (results : Experiment.result list) =
  List.fold_left
    (fun acc (r : Experiment.result) ->
      {
        total = acc.total + 1;
        pass = acc.pass + (if r.verdict = Experiment.Pass then 1 else 0);
        info = acc.info + (if r.verdict = Experiment.Info then 1 else 0);
        degraded =
          acc.degraded + (if r.verdict = Experiment.Degraded then 1 else 0);
        checks_total = acc.checks_total + r.checks_total;
        checks_failed = acc.checks_failed + r.checks_failed;
        wall = acc.wall +. r.wall;
      })
    {
      total = 0;
      pass = 0;
      info = 0;
      degraded = 0;
      checks_total = 0;
      checks_failed = 0;
      wall = 0.0;
    }
    results

let summary_table (results : Experiment.result list) =
  let table =
    Table.create ~title:"experiment summary"
      ~columns:[ "id"; "tag"; "verdict"; "checks"; "wall" ]
  in
  List.iter
    (fun (r : Experiment.result) ->
      Table.add_row table
        [
          r.id;
          Experiment.tag_to_string r.tag;
          Experiment.verdict_to_string r.verdict;
          (if r.checks_total = 0 then "-"
           else
             Printf.sprintf "%d/%d" (r.checks_total - r.checks_failed)
               r.checks_total);
          Printf.sprintf "%.3fs" r.wall;
        ])
    results;
  let s = summarize results in
  Table.to_string table
  ^ Printf.sprintf
      "total: %d experiments (%d pass, %d info, %d degraded); checks %d/%d; \
       %.2fs\n"
      s.total s.pass s.info s.degraded
      (s.checks_total - s.checks_failed)
      s.checks_total s.wall

let run ?(scale = Experiment.Full) ?(echo = fun _ -> ()) experiments =
  List.map
    (fun e ->
      let r = Experiment.run ~scale e in
      echo r.Experiment.text;
      r)
    experiments

let report_json ~scale results =
  let s = summarize results in
  Json.Obj
    [
      ("schema", Json.String "defender-bench/v1");
      ( "source",
        Json.String
          "The Power of the Defender (ICDCS 2006) reproduction harness" );
      ("scale", Json.String (Experiment.scale_to_string scale));
      ("experiments", Json.List (List.map Experiment.result_to_json results));
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int s.total);
            ("pass", Json.Int s.pass);
            ("info", Json.Int s.info);
            ("degraded", Json.Int s.degraded);
            ("checks_total", Json.Int s.checks_total);
            ("checks_failed", Json.Int s.checks_failed);
            ("wall_s", Json.Float s.wall);
          ] );
    ]
