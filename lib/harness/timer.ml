let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

type stats = { median : float; min : float; max : float; runs : int }

let sorted_samples ~who ~repeat f =
  if repeat < 1 then invalid_arg (who ^ ": repeat must be positive");
  List.sort compare (List.init repeat (fun _ -> snd (time f)))

let time_median ?(repeat = 5) f =
  let samples = sorted_samples ~who:"Timer.time_median" ~repeat f in
  List.nth samples (repeat / 2)

let time_stats ?(repeat = 5) f =
  let samples = sorted_samples ~who:"Timer.time_stats" ~repeat f in
  {
    median = List.nth samples (repeat / 2);
    min = List.hd samples;
    max = List.nth samples (repeat - 1);
    runs = repeat;
  }
