(* The clock is monotonic (CLOCK_MONOTONIC via bechamel's stub): the
   previous Unix.gettimeofday source is subject to NTP steps, so a clock
   adjustment mid-measurement could produce negative or wildly skewed
   durations that flowed straight into time_stats medians and the
   B-series artifacts.  Durations are additionally clamped at zero as a
   belt-and-braces guard (a clamp can only fire if the clock source
   itself misbehaves). *)

let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let time f =
  let start = now () in
  let result = f () in
  (result, Float.max 0.0 (now () -. start))

type stats = { median : float; min : float; max : float; runs : int }

let sorted_samples ~who ~repeat f =
  if repeat < 1 then invalid_arg (who ^ ": repeat must be positive");
  List.sort compare (List.init repeat (fun _ -> snd (time f)))

let time_median ?(repeat = 5) f =
  let samples = sorted_samples ~who:"Timer.time_median" ~repeat f in
  List.nth samples (repeat / 2)

let time_stats ?(repeat = 5) f =
  let samples = sorted_samples ~who:"Timer.time_stats" ~repeat f in
  {
    median = List.nth samples (repeat / 2);
    min = List.hd samples;
    max = List.nth samples (repeat - 1);
    runs = repeat;
  }
