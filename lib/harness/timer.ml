(* The clock is monotonic (CLOCK_MONOTONIC via bechamel's stub): the
   previous Unix.gettimeofday source is subject to NTP steps, so a clock
   adjustment mid-measurement could produce negative or wildly skewed
   durations that flowed straight into time_stats medians and the
   B-series artifacts.  Durations are additionally clamped at zero as a
   belt-and-braces guard (a clamp can only fire if the clock source
   itself misbehaves). *)

let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let time f =
  let start = now () in
  let result = f () in
  (result, Float.max 0.0 (now () -. start))

type stats = { median : float; min : float; max : float; runs : int }

let sorted_samples ~who ~repeat f =
  if repeat < 1 then invalid_arg (who ^ ": repeat must be positive");
  List.sort compare (List.init repeat (fun _ -> snd (time f)))

(* Even sample counts have no middle element; taking the upper central
   sample (the old behaviour) biases every even-repeat median upward by
   half the central gap.  The standard estimator — average the two
   central samples — fixes that, while odd counts return the middle
   sample unchanged, so historical odd-repeat output is bit-identical. *)
let median_of_sorted = function
  | [] -> invalid_arg "Timer.median_of_sorted: empty list"
  | samples ->
      let n = List.length samples in
      if n mod 2 = 1 then List.nth samples (n / 2)
      else ((List.nth samples ((n / 2) - 1)) +. List.nth samples (n / 2)) /. 2.0

let time_median ?(repeat = 5) f =
  median_of_sorted (sorted_samples ~who:"Timer.time_median" ~repeat f)

let time_stats ?(repeat = 5) f =
  let samples = sorted_samples ~who:"Timer.time_stats" ~repeat f in
  {
    median = median_of_sorted samples;
    min = List.hd samples;
    max = List.nth samples (repeat - 1);
    runs = repeat;
  }
