(* String-keyed LRU map on an intrusive doubly-linked recency list.
   See lru.mli for the contract. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option; (* towards most recent *)
  mutable next : 'a node option; (* towards least recent *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
}

let create capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity; tbl = Hashtbl.create (max 16 capacity); head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let mem t key = Hashtbl.mem t.tbl key

let add t key value =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.tbl key with
    | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
    | None ->
        (if Hashtbl.length t.tbl >= t.capacity then
           match t.tail with
           | Some lru ->
               unlink t lru;
               Hashtbl.remove t.tbl lru.key
           | None -> assert false);
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key node;
        push_front t node

(* Most recent first — the recency order the eviction policy acts on,
   exposed so tests can assert it directly. *)
let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.key node.value) node.next
  in
  go init t.head
