(** Bounded string-keyed cache with least-recently-used eviction:
    constant-time find/add on a hash table threaded through an intrusive
    recency list.  This is the {!Daemon}'s canonical-instance solve
    cache, kept separate so the policy is testable without sockets. *)

type 'a t

(** [create capacity] holds at most [capacity] bindings; inserting past
    that evicts the least recently used one.  A capacity of [0] is a
    valid always-empty cache (every {!add} is a no-op) — the "caching
    disabled" configuration.
    @raise Invalid_argument on a negative capacity. *)
val create : int -> 'a t

val capacity : 'a t -> int

(** Bindings currently held. *)
val length : 'a t -> int

(** [find t key] returns the cached value and marks it most recently
    used. *)
val find : 'a t -> string -> 'a option

(** Membership without touching recency. *)
val mem : 'a t -> string -> bool

(** [add t key v] binds [key] to [v] as the most recently used entry,
    replacing any existing binding (and refreshing its recency),
    evicting the least recently used binding when full. *)
val add : 'a t -> string -> 'a -> unit

(** Fold over bindings, most recently used first. *)
val fold : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
