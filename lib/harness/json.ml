type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emitter --- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* keep floats recognizable as floats on re-parse *)
    let plain = String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s in
    Buffer.add_string buf (if plain then s ^ ".0" else s)

let to_string ?(pretty = false) t =
  let buf = Buffer.create 1024 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s -> add_escaped buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              pad (depth + 1)
            end;
            emit (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          pad depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              pad (depth + 1)
            end;
            add_escaped buf key;
            Buffer.add_string buf (if pretty then ": " else ":");
            emit (depth + 1) value)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          pad depth
        end;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error "invalid literal"
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  (* Exactly four hex digits: int_of_string on "0x" ^ hex would also
     accept underscores and a leading sign, so "\u1_23" must not reach
     it. *)
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> error "invalid \\u escape"
    in
    let v = ref 0 in
    for _ = 1 to 4 do
      v := (!v lsl 4) lor digit input.[!pos];
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = input.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'u' ->
              let code = hex4 () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: must pair with a following \u low
                   surrogate to form one astral code point — emitting
                   each half separately would be invalid UTF-8. *)
                if
                  !pos + 2 <= n
                  && input.[!pos] = '\\'
                  && input.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then
                    error "invalid low surrogate in \\u escape pair";
                  add_utf8 buf
                    (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
                end
                else error "unpaired high surrogate in \\u escape"
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                error "unpaired low surrogate in \\u escape"
              else add_utf8 buf code;
              loop ()
          | _ -> error "invalid escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then error "invalid number";
    let leading_zero = input.[!pos] = '0' in
    advance ();
    (* JSON grammar: the integer part is either a single 0 or starts
       with a nonzero digit — "0123" is not a number. *)
    if leading_zero && is_digit () then error "invalid number: leading zero";
    while is_digit () do advance () done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then error "invalid number";
      while is_digit () do advance () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then error "invalid number";
        while is_digit () do advance () done
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception _ -> Error "malformed JSON"

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
