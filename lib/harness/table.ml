type t = {
  title : string;
  columns : string array;
  mutable rows : string array list;  (* reversed *)
}

let create ~title ~columns =
  { title; columns = Array.of_list columns; rows = [] }

let add_row t cells =
  let width = Array.length t.columns in
  let given = List.length cells in
  if given > width then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns in table %S" given
         width t.title);
  let row = Array.make width "" in
  List.iteri (fun i cell -> row.(i) <- cell) cells;
  t.rows <- row :: t.rows

let to_string t =
  let rows = List.rev t.rows in
  let width = Array.length t.columns in
  let col_width = Array.map String.length t.columns in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> col_width.(i) <- max col_width.(i) (String.length cell)) row)
    rows;
  let buf = Buffer.create 512 in
  let hline () =
    for i = 0 to width - 1 do
      Buffer.add_string buf (String.make (col_width.(i) + 2) '-');
      if i < width - 1 then Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  let render_row row =
    for i = 0 to width - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf row.(i);
      Buffer.add_string buf (String.make (col_width.(i) - String.length row.(i) + 1) ' ');
      if i < width - 1 then Buffer.add_char buf '|'
    done;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  render_row t.columns;
  hline ();
  List.iter render_row rows;
  Buffer.contents buf

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let render row =
    String.concat "," (List.map escape (Array.to_list row)) ^ "\n"
  in
  String.concat "" (render t.columns :: List.rev_map render t.rows)

let print t = print_string (to_string t)

let chart ~height ~width named_points =
  let all = List.concat_map snd named_points in
  match all with
  | [] -> "(no data)\n"
  | _ ->
      let xs = List.map fst all and ys = List.map snd all in
      let fmin l = List.fold_left min (List.hd l) l in
      let fmax l = List.fold_left max (List.hd l) l in
      let x0 = fmin xs and x1 = fmax xs in
      let y0 = min 0.0 (fmin ys) and y1 = fmax ys in
      let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
      let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun series_index (_, points) ->
          let marker =
            "*ox+#@%&"
            |> fun s -> s.[series_index mod String.length s]
          in
          List.iter
            (fun (x, y) ->
              let col =
                int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- marker)
            points)
        named_points;
      let buf = Buffer.create (height * (width + 12)) in
      Array.iteri
        (fun row line ->
          let y_tick =
            y1 -. (float_of_int row /. float_of_int (height - 1) *. (y1 -. y0))
          in
          Buffer.add_string buf (Printf.sprintf "%10.3f |" y_tick);
          Buffer.add_string buf (String.init width (fun c -> line.(c)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (String.make 11 ' ');
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%s%.3f%s%.3f\n" (String.make 12 ' ') x0
           (String.make (max 1 (width - 12)) ' ')
           x1);
      Buffer.contents buf

let multi_series ~title ~x_label ~y_label named_points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n(y: %s, x: %s)\n" title y_label x_label);
  List.iteri
    (fun i (name, points) ->
      let marker = "*ox+#@%&".[i mod 8] in
      Buffer.add_string buf (Printf.sprintf "  series '%c': %s\n" marker name);
      Buffer.add_string buf "    ";
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "(%g, %g) " x y))
        points;
      Buffer.add_char buf '\n')
    named_points;
  Buffer.add_string buf (chart ~height:16 ~width:60 named_points);
  Buffer.contents buf

let series ~title ~x_label ~y_label points =
  multi_series ~title ~x_label ~y_label [ ("data", points) ]
