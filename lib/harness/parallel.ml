(* Fork-based worker pool.

   Process isolation, not OCaml domains, on purpose: a worker that
   overflows its stack, trips the OOM killer, or is signalled dies alone
   — the parent reaps a wait status instead of sharing the fate.  Jobs
   are closures inherited through fork (nothing is serialized on the way
   in); results come back over a pipe as a single JSON document, the
   harness's own wire format rather than Marshal, so a corrupted or
   truncated payload is a detectable Crashed outcome instead of a
   segfault in the reader.  The pipe/reap plumbing itself lives in
   {!Wire}, shared with the persistent {!Pool}. *)

type outcome =
  | Completed of Json.t
  | Crashed of { reason : string; wall : float }

(* Pool counters are recorded in the parent process, so they never land
   in an experiment's own delta — the driver surfaces them as the
   orchestration-side metrics.  Pipe byte volume is volatile by nature:
   worker payloads embed rendered timing floats whose widths vary run
   to run. *)
let c_spawns = Obs.counter "parallel.spawns"
let c_timeout_kills = Obs.counter "parallel.timeout_kills"
let c_crashed_workers = Obs.counter "parallel.crashed_workers"
let c_pipe_bytes = Obs.volatile "parallel.pipe_bytes"

type slot = {
  job : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  deadline : float option;
  mutable timed_out : bool;
}

(* Outcome of a reaped worker, as a pure function so the decision is
   unit-testable.  Order matters: a worker that exited 0 with a payload
   that parses COMPLETED, even if the deadline flag was raised — the
   worker can finish and exit in the same select round the deadline
   expires in, in which case the SIGKILL answers ESRCH (it was sent to a
   process that already exited) and calling the job a timeout would
   misreport a good result as a crash.  Only then does the timeout flag
   claim whatever is left: a killed worker (WSIGNALED SIGKILL) or a
   truncated payload from one that died mid-write. *)
let classify ~timed_out ~timeout ~status ~payload ~wall =
  match (status, Json.of_string payload) with
  | Unix.WEXITED 0, Ok json -> Completed json
  | _ when timed_out ->
      Crashed
        {
          reason =
            Printf.sprintf "timed out after %g s (worker killed)"
              (Option.value timeout ~default:Float.nan);
          wall;
        }
  | Unix.WEXITED 0, Error e ->
      Crashed { reason = "worker result does not parse: " ^ e; wall }
  | Unix.WEXITED c, _ ->
      Crashed { reason = Printf.sprintf "worker exited with code %d" c; wall }
  | Unix.WSIGNALED s, _ ->
      Crashed { reason = "worker killed by " ^ Wire.signal_name s; wall }
  | Unix.WSTOPPED s, _ ->
      Crashed { reason = "worker stopped by " ^ Wire.signal_name s; wall }

let run ~jobs ?timeout count f =
  if jobs < 1 then invalid_arg "Parallel.run: jobs must be positive";
  (match timeout with
  | Some t when t <= 0.0 -> invalid_arg "Parallel.run: timeout must be positive"
  | _ -> ());
  if count < 0 then invalid_arg "Parallel.run: negative job count";
  let results = Array.make (max count 1) None in
  let in_flight : slot list ref = ref [] in
  let next = ref 0 in
  (* Anything buffered on std channels would be duplicated into every
     worker's address space; flush so a worker that does write and exit
     cannot replay it. *)
  let spawn job =
    flush stdout;
    flush stderr;
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (* Worker.  Close our read end and every other worker's read end
           (holding one open would delay that worker's EOF until we
           exit), run the job, ship the JSON, and _exit without running
           at_exit handlers — the parent owns the std channels.  SIGPIPE
           is ignored first: if the parent died, the write must surface
           as EPIPE through the error path below, not kill us before the
           exit code is chosen. *)
        Wire.close_quietly rd;
        List.iter (fun s -> Wire.close_quietly s.fd) !in_flight;
        Wire.ignore_sigpipe ();
        let code =
          try
            Wire.write_all wr (Json.to_string (f job));
            0
          with _ -> 3
        in
        Wire.close_quietly wr;
        Unix._exit code
    | pid ->
        Unix.close wr;
        Obs.incr c_spawns;
        let started = Timer.now () in
        in_flight :=
          {
            job;
            pid;
            fd = rd;
            buf = Buffer.create 1024;
            started;
            deadline = Option.map (fun t -> started +. t) timeout;
            timed_out = false;
          }
          :: !in_flight
  in
  let chunk = Bytes.create 65536 in
  let reap slot =
    let status = Wire.waitpid_retry slot.pid in
    Wire.close_quietly slot.fd;
    let wall = Float.max 0.0 (Timer.now () -. slot.started) in
    let outcome =
      classify ~timed_out:slot.timed_out ~timeout ~status
        ~payload:(Buffer.contents slot.buf) ~wall
    in
    (match outcome with Crashed _ -> Obs.incr c_crashed_workers | Completed _ -> ());
    results.(slot.job) <- Some outcome
  in
  while !next < count || !in_flight <> [] do
    while List.length !in_flight < jobs && !next < count do
      spawn !next;
      incr next
    done;
    let now = Timer.now () in
    let select_timeout =
      match
        List.filter_map
          (fun s -> if s.timed_out then None else s.deadline)
          !in_flight
      with
      | [] -> -1.0 (* no deadlines pending: block until a worker writes *)
      | ds -> Float.max 0.0 (List.fold_left Float.min Float.infinity ds -. now)
    in
    let readable, _, _ =
      try Unix.select (List.map (fun s -> s.fd) !in_flight) [] [] select_timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let finished = ref [] in
    List.iter
      (fun slot ->
        if List.mem slot.fd readable then
          let k =
            try Unix.read slot.fd chunk 0 (Bytes.length chunk)
            with Unix.Unix_error (Unix.EINTR, _, _) -> -1
          in
          if k = 0 then finished := slot :: !finished
          else if k > 0 then begin
            Obs.add c_pipe_bytes k;
            Buffer.add_subbytes slot.buf chunk 0 k
          end)
      !in_flight;
    let now = Timer.now () in
    List.iter
      (fun slot ->
        match slot.deadline with
        | Some d when (not slot.timed_out) && now >= d ->
            slot.timed_out <- true;
            Obs.incr c_timeout_kills;
            (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ())
        | _ -> ())
      !in_flight;
    List.iter reap !finished;
    in_flight := List.filter (fun s -> not (List.memq s !finished)) !in_flight
  done;
  Array.init count (fun i ->
      match results.(i) with Some o -> o | None -> assert false)
