type tag = Table | Figure | Micro | Extension
type scale = Smoke | Full
type verdict = Pass | Info | Degraded

type value =
  | Int of int
  | Rat of Exact.Q.t
  | Float of float
  | Str of string
  | Bool of bool

type timing = Timer.stats = {
  median : float;
  min : float;
  max : float;
  runs : int;
}

type ctx = {
  ctx_scale : scale;
  buf : Buffer.t;
  mutable checks_total : int;
  mutable checks_failed : int;
  mutable failed_rev : string list;
  mutable measures_rev : (string * value) list;
  mutable timings_rev : (string * timing) list;
}

let scale ctx = ctx.ctx_scale
let is_smoke ctx = ctx.ctx_scale = Smoke
let out ctx s = Buffer.add_string ctx.buf s
let outf ctx fmt = Printf.ksprintf (out ctx) fmt

let check ctx ~label ok =
  ctx.checks_total <- ctx.checks_total + 1;
  if not ok then begin
    ctx.checks_failed <- ctx.checks_failed + 1;
    ctx.failed_rev <- label :: ctx.failed_rev
  end;
  ok

let measure ctx name v =
  ctx.measures_rev <- (name, v) :: List.remove_assoc name ctx.measures_rev

let record_timing ctx name t =
  ctx.timings_rev <- (name, t) :: List.remove_assoc name ctx.timings_rev

let time ctx name ?repeat f =
  let result = ref None in
  let stats =
    Timer.time_stats ?repeat (fun () -> result := Some (f ()))
  in
  record_timing ctx name stats;
  match !result with Some r -> r | None -> assert false

type t = {
  id : string;
  claim : string;
  expected : string;
  tag : tag;
  run : ctx -> unit;
}

type result = {
  id : string;
  claim : string;
  expected : string;
  tag : tag;
  verdict : verdict;
  checks_total : int;
  checks_failed : int;
  failed_labels : string list;
  measures : (string * value) list;
  timings : (string * timing) list;
  text : string;
  wall : float;
}

let run ?(scale = Full) (t : t) =
  let ctx =
    {
      ctx_scale = scale;
      buf = Buffer.create 1024;
      checks_total = 0;
      checks_failed = 0;
      failed_rev = [];
      measures_rev = [];
      timings_rev = [];
    }
  in
  let start = Unix.gettimeofday () in
  (try t.run ctx
   with exn ->
     let msg = Printf.sprintf "exception: %s" (Printexc.to_string exn) in
     ignore (check ctx ~label:msg false);
     outf ctx "EXPERIMENT %s RAISED: %s\n" t.id (Printexc.to_string exn));
  let wall = Unix.gettimeofday () -. start in
  let verdict =
    if ctx.checks_failed > 0 then Degraded
    else if ctx.checks_total = 0 then Info
    else Pass
  in
  {
    id = t.id;
    claim = t.claim;
    expected = t.expected;
    tag = t.tag;
    verdict;
    checks_total = ctx.checks_total;
    checks_failed = ctx.checks_failed;
    failed_labels = List.rev ctx.failed_rev;
    measures = List.rev ctx.measures_rev;
    timings = List.rev ctx.timings_rev;
    text = Buffer.contents ctx.buf;
    wall;
  }

let degrade ~reason r =
  {
    r with
    verdict = Degraded;
    checks_total = r.checks_total + 1;
    checks_failed = r.checks_failed + 1;
    failed_labels = r.failed_labels @ [ reason ];
  }

let tag_to_string = function
  | Table -> "table"
  | Figure -> "figure"
  | Micro -> "micro"
  | Extension -> "extension"

let verdict_to_string = function
  | Pass -> "pass"
  | Info -> "info"
  | Degraded -> "degraded"

let scale_to_string = function Smoke -> "smoke" | Full -> "full"

let value_to_json = function
  | Int i -> Json.Int i
  | Rat q -> Json.String (Exact.Q.to_string q)
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let timing_to_json (t : timing) =
  Json.Obj
    [
      ("median_s", Json.Float t.median);
      ("min_s", Json.Float t.min);
      ("max_s", Json.Float t.max);
      ("runs", Json.Int t.runs);
    ]

let result_to_json (r : result) =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("tag", Json.String (tag_to_string r.tag));
      ("claim", Json.String r.claim);
      ("expected", Json.String r.expected);
      ("verdict", Json.String (verdict_to_string r.verdict));
      ( "checks",
        Json.Obj
          [
            ("total", Json.Int r.checks_total);
            ("failed", Json.Int r.checks_failed);
            ( "failed_labels",
              Json.List (List.map (fun l -> Json.String l) r.failed_labels) );
          ] );
      ( "measures",
        Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) r.measures) );
      ( "timings",
        Json.Obj (List.map (fun (k, t) -> (k, timing_to_json t)) r.timings) );
      ("wall_s", Json.Float r.wall);
    ]
