type tag = Table | Figure | Micro | Extension
type scale = Smoke | Full
type verdict = Pass | Info | Degraded | Crashed

type value =
  | Int of int
  | Rat of Exact.Q.t
  | Float of float
  | Str of string
  | Bool of bool

type timing = Timer.stats = {
  median : float;
  min : float;
  max : float;
  runs : int;
}

type ctx = {
  ctx_scale : scale;
  buf : Buffer.t;
  mutable checks_total : int;
  mutable checks_failed : int;
  mutable failed_rev : string list;
  mutable measures_rev : (string * value) list;
  mutable timings_rev : (string * timing) list;
}

let scale ctx = ctx.ctx_scale
let is_smoke ctx = ctx.ctx_scale = Smoke
let out ctx s = Buffer.add_string ctx.buf s
let outf ctx fmt = Printf.ksprintf (out ctx) fmt

let check ctx ~label ok =
  ctx.checks_total <- ctx.checks_total + 1;
  if not ok then begin
    ctx.checks_failed <- ctx.checks_failed + 1;
    ctx.failed_rev <- label :: ctx.failed_rev
  end;
  ok

let measure ctx name v =
  ctx.measures_rev <- (name, v) :: List.remove_assoc name ctx.measures_rev

let record_timing ctx name t =
  ctx.timings_rev <- (name, t) :: List.remove_assoc name ctx.timings_rev

let time ctx name ?repeat f =
  let result = ref None in
  let stats =
    Timer.time_stats ?repeat (fun () -> result := Some (f ()))
  in
  record_timing ctx name stats;
  match !result with Some r -> r | None -> assert false

type t = {
  id : string;
  claim : string;
  expected : string;
  tag : tag;
  game : string;
  run : ctx -> unit;
}

(* One span as reported in an artifact.  The call count is part of the
   determinism contract; the accumulated duration only exists at Trace
   level and is stripped with the rest of the timing data. *)
type span_metric = { calls : int; total_s : float option }

type metrics = {
  m_counters : (string * int) list;
  m_volatile : (string * int) list;
  m_spans : (string * span_metric) list;
}

type result = {
  id : string;
  claim : string;
  expected : string;
  tag : tag;
  game : string;
  verdict : verdict;
  checks_total : int;
  checks_failed : int;
  failed_labels : string list;
  measures : (string * value) list;
  timings : (string * timing) list;
  metrics : metrics option;
  text : string;
  wall : float;
}

(* Durations only exist at Trace level: at Counters the span cells hold
   secs = 0.0, and emitting those would put a meaningless "total_s": 0
   in every artifact. *)
let metrics_of_obs (d : Obs.metrics) =
  let timed = Obs.level () = Obs.Trace in
  {
    m_counters = d.Obs.counters;
    m_volatile = d.Obs.volatile;
    m_spans =
      List.map
        (fun (name, (s : Obs.span_total)) ->
          (name, { calls = s.calls; total_s = (if timed then Some s.secs else None) }))
        d.Obs.spans;
  }

let run ?(scale = Full) (t : t) =
  let ctx =
    {
      ctx_scale = scale;
      buf = Buffer.create 1024;
      checks_total = 0;
      checks_failed = 0;
      failed_rev = [];
      measures_rev = [];
      timings_rev = [];
    }
  in
  (* Counters are global and monotone, so a delta against a snapshot
     taken here attributes exactly this experiment's work — including
     under nesting (an experiment that calls [run] itself sees its
     child's work, which is part of its own computation). *)
  let obs_before = if Obs.recording () then Some (Obs.snapshot ()) else None in
  let start = Timer.now () in
  (try t.run ctx
   with exn ->
     let msg = Printf.sprintf "exception: %s" (Printexc.to_string exn) in
     ignore (check ctx ~label:msg false);
     outf ctx "EXPERIMENT %s RAISED: %s\n" t.id (Printexc.to_string exn));
  let wall = Timer.now () -. start in
  let metrics =
    Option.map (fun snap -> metrics_of_obs (Obs.delta snap)) obs_before
  in
  let verdict =
    if ctx.checks_failed > 0 then Degraded
    else if ctx.checks_total = 0 then Info
    else Pass
  in
  {
    id = t.id;
    claim = t.claim;
    expected = t.expected;
    tag = t.tag;
    game = t.game;
    verdict;
    checks_total = ctx.checks_total;
    checks_failed = ctx.checks_failed;
    failed_labels = List.rev ctx.failed_rev;
    measures = List.rev ctx.measures_rev;
    timings = List.rev ctx.timings_rev;
    metrics;
    text = Buffer.contents ctx.buf;
    wall;
  }

let degrade ~reason r =
  {
    r with
    verdict = Degraded;
    checks_total = r.checks_total + 1;
    checks_failed = r.checks_failed + 1;
    failed_labels = r.failed_labels @ [ reason ];
  }

(* A worker process died (signal, timeout, abnormal exit) before it
   could report: synthesize the result from the descriptor alone.  The
   single failed check carries the reason, so artifact consumers that
   only look at check counters still see the failure. *)
let crashed (t : t) ~reason ~wall =
  {
    id = t.id;
    claim = t.claim;
    expected = t.expected;
    tag = t.tag;
    game = t.game;
    verdict = Crashed;
    checks_total = 1;
    checks_failed = 1;
    failed_labels = [ reason ];
    measures = [];
    timings = [];
    metrics = None;
    text = Printf.sprintf "EXPERIMENT %s CRASHED: %s\n" t.id reason;
    wall;
  }

let tag_to_string = function
  | Table -> "table"
  | Figure -> "figure"
  | Micro -> "micro"
  | Extension -> "extension"

let verdict_to_string = function
  | Pass -> "pass"
  | Info -> "info"
  | Degraded -> "degraded"
  | Crashed -> "crashed"

let scale_to_string = function Smoke -> "smoke" | Full -> "full"

let value_to_json = function
  | Int i -> Json.Int i
  | Rat q -> Json.String (Exact.Q.to_string q)
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let timing_to_json (t : timing) =
  Json.Obj
    [
      ("median_s", Json.Float t.median);
      ("min_s", Json.Float t.min);
      ("max_s", Json.Float t.max);
      ("runs", Json.Int t.runs);
    ]

let metrics_to_json (m : metrics) =
  let ints kvs = Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) kvs) in
  let span (k, s) =
    ( k,
      Json.Obj
        (("count", Json.Int s.calls)
        ::
        (match s.total_s with
        | Some t -> [ ("total_s", Json.Float t) ]
        | None -> [])) )
  in
  Json.Obj
    [
      ("counters", ints m.m_counters);
      ("volatile", ints m.m_volatile);
      ("spans", Json.Obj (List.map span m.m_spans));
    ]

let result_to_json (r : result) =
  Json.Obj
    ([ ("id", Json.String r.id); ("tag", Json.String (tag_to_string r.tag)) ]
    @ (* The game tag is versioned into the artifact only for non-tuple
         games, keeping historical tuple artifacts byte-identical. *)
    (if r.game = "tuple" then [] else [ ("game", Json.String r.game) ])
    @ [
       ("claim", Json.String r.claim);
       ("expected", Json.String r.expected);
       ("verdict", Json.String (verdict_to_string r.verdict));
       ( "checks",
         Json.Obj
           [
             ("total", Json.Int r.checks_total);
             ("failed", Json.Int r.checks_failed);
             ( "failed_labels",
               Json.List (List.map (fun l -> Json.String l) r.failed_labels) );
           ] );
       ( "measures",
         Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) r.measures) );
       ( "timings",
         Json.Obj (List.map (fun (k, t) -> (k, timing_to_json t)) r.timings) );
     ]
    @ (match r.metrics with
      | None -> []
      | Some m -> [ ("metrics", metrics_to_json m) ])
    @ [ ("wall_s", Json.Float r.wall) ])

(* --- wire codec for worker processes ---

   A worker sends its result back over a pipe as the artifact JSON
   object plus the text rendering (which the artifact deliberately
   omits).  The decode is lossless for everything the artifact itself
   carries: [Rat] comes back as [Str] holding the same "n/d" string and
   non-finite floats come back as nan, both of which re-render to the
   identical JSON bytes, so a re-assembled artifact matches a
   sequentially produced one field for field (timing values aside). *)

let result_to_wire r =
  match result_to_json r with
  | Json.Obj fields -> Json.Obj (fields @ [ ("text", Json.String r.text) ])
  | _ -> assert false

exception Wire of string

let wire_fail fmt = Printf.ksprintf (fun s -> raise (Wire s)) fmt

let result_of_wire json =
  let field k =
    match Json.member k json with
    | Some v -> v
    | None -> wire_fail "missing field %S" k
  in
  let as_string ~what = function
    | Json.String s -> s
    | _ -> wire_fail "%s must be a string" what
  in
  let as_int ~what = function
    | Json.Int i -> i
    | _ -> wire_fail "%s must be an integer" what
  in
  let as_float ~what = function
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | Json.Null -> Float.nan (* the emitter renders non-finite as null *)
    | _ -> wire_fail "%s must be a number" what
  in
  let tag_of_string = function
    | "table" -> Table
    | "figure" -> Figure
    | "micro" -> Micro
    | "extension" -> Extension
    | s -> wire_fail "unknown tag %S" s
  in
  let verdict_of_string = function
    | "pass" -> Pass
    | "info" -> Info
    | "degraded" -> Degraded
    | "crashed" -> Crashed
    | s -> wire_fail "unknown verdict %S" s
  in
  let value_of_json ~what = function
    | Json.Int i -> Int i
    | Json.Float f -> Float f
    | Json.String s -> Str s
    | Json.Bool b -> Bool b
    | Json.Null -> Float Float.nan
    | _ -> wire_fail "%s must be a scalar" what
  in
  let timing_of_json ~what j =
    let cell k = as_float ~what:(what ^ "." ^ k) (
      match Json.member k j with
      | Some v -> v
      | None -> wire_fail "%s: missing %S" what k)
    in
    {
      median = cell "median_s";
      min = cell "min_s";
      max = cell "max_s";
      runs =
        (match Json.member "runs" j with
        | Some v -> as_int ~what:(what ^ ".runs") v
        | None -> wire_fail "%s: missing \"runs\"" what);
    }
  in
  let counts_of_json ~what = function
    | Json.Obj fields ->
        List.map (fun (k, v) -> (k, as_int ~what:(what ^ "." ^ k) v)) fields
    | _ -> wire_fail "%s must be an object" what
  in
  let metrics_of_json ~what j =
    let section k =
      match Json.member k j with
      | Some v -> v
      | None -> wire_fail "%s: missing %S" what k
    in
    let span (k, sj) =
      let what = Printf.sprintf "%s.spans.%s" what k in
      let calls =
        match Json.member "count" sj with
        | Some v -> as_int ~what:(what ^ ".count") v
        | None -> wire_fail "%s: missing \"count\"" what
      in
      let total_s =
        Option.map (fun v -> as_float ~what:(what ^ ".total_s") v)
          (Json.member "total_s" sj)
      in
      (k, { calls; total_s })
    in
    {
      m_counters = counts_of_json ~what:(what ^ ".counters") (section "counters");
      m_volatile = counts_of_json ~what:(what ^ ".volatile") (section "volatile");
      m_spans =
        (match section "spans" with
        | Json.Obj fields -> List.map span fields
        | _ -> wire_fail "%s.spans must be an object" what);
    }
  in
  try
    let checks = field "checks" in
    let check_field k =
      match Json.member k checks with
      | Some v -> v
      | None -> wire_fail "checks: missing field %S" k
    in
    Ok
      {
        id = as_string ~what:"id" (field "id");
        claim = as_string ~what:"claim" (field "claim");
        expected = as_string ~what:"expected" (field "expected");
        tag = tag_of_string (as_string ~what:"tag" (field "tag"));
        game =
          (* absent in pre-tag and all tuple-game artifacts *)
          (match Json.member "game" json with
          | Some v -> as_string ~what:"game" v
          | None -> "tuple");
        verdict = verdict_of_string (as_string ~what:"verdict" (field "verdict"));
        checks_total = as_int ~what:"checks.total" (check_field "total");
        checks_failed = as_int ~what:"checks.failed" (check_field "failed");
        failed_labels =
          (match check_field "failed_labels" with
          | Json.List ls ->
              List.map (fun l -> as_string ~what:"failed label" l) ls
          | _ -> wire_fail "checks.failed_labels must be a list");
        measures =
          (match field "measures" with
          | Json.Obj fields ->
              List.map
                (fun (k, v) -> (k, value_of_json ~what:("measure " ^ k) v))
                fields
          | _ -> wire_fail "measures must be an object");
        timings =
          (match field "timings" with
          | Json.Obj fields ->
              List.map
                (fun (k, v) -> (k, timing_of_json ~what:("timing " ^ k) v))
                fields
          | _ -> wire_fail "timings must be an object");
        metrics =
          (* Absent when the producing run recorded nothing; artifacts
             without the field decode and re-render identically. *)
          Option.map (metrics_of_json ~what:"metrics") (Json.member "metrics" json);
        text = as_string ~what:"text" (field "text");
        wall = as_float ~what:"wall_s" (field "wall_s");
      }
  with Wire msg -> Error msg
