(** The experiment registry: registration, lookup, filtered execution
    and summary roll-up.

    A single process-global registry (the bench driver and the CLI both
    register the same experiment set); tests that need isolation call
    {!clear}.  Registration order is preserved everywhere — listings,
    selection, execution and the JSON report all follow it. *)

val register : Experiment.t -> unit
(** @raise Invalid_argument on a duplicate id. *)

val clear : unit -> unit
(** Empty the registry (for tests). *)

val all : unit -> Experiment.t list
(** Registered experiments, in registration order. *)

val ids : unit -> string list

val find : string -> Experiment.t option

val select : only:string list -> (Experiment.t list, string) result
(** The registered experiments whose id is in [only], in registration
    order; [Error] names the unknown ids if any. *)

val filter_tag : Experiment.tag -> Experiment.t list

type summary = {
  total : int;
  pass : int;
  info : int;
  degraded : int;
  crashed : int;  (** worker processes that died or timed out *)
  checks_total : int;
  checks_failed : int;
  wall : float;  (** summed experiment wall clock, seconds *)
}

val summarize : Experiment.result list -> summary

val summary_table : Experiment.result list -> string
(** Aligned per-experiment verdict/check/time table plus a totals line,
    rendered through {!Table}. *)

val metrics_table : ?driver:Experiment.metrics -> Experiment.result list -> string
(** Render the sweep's observability metrics: one table summing every
    deterministic and volatile counter over all results (volatile names
    are marked), and one summing span call counts (with total seconds
    when any run traced).  [driver] adds the orchestration-side delta —
    parallel-pool counters the parent process records outside any
    experiment.  Empty string when nothing was recorded. *)

val run :
  ?scale:Experiment.scale ->
  ?echo:(string -> unit) ->
  Experiment.t list ->
  Experiment.result list
(** Run the experiments in order.  [echo] (default: nothing) receives
    each experiment's text rendering as soon as it completes, so the
    driver can stream the legacy output. *)

val run_parallel :
  ?scale:Experiment.scale ->
  ?jobs:int ->
  ?timeout:float ->
  ?force_crash:string list ->
  ?dispatch:[ `Fork | `Pool ] ->
  ?echo:(string -> unit) ->
  Experiment.t list ->
  Experiment.result list
(** Run the experiments across [jobs] (default 1) concurrent worker
    processes, reassembling results in registration order regardless of
    completion order.  [dispatch] selects the worker engine: [`Fork]
    (default) forks one worker per experiment via {!Parallel}; [`Pool]
    runs the sweep on a transient persistent pool via {!Pool.run} —
    workers live across experiments (with {!Pool}'s retry-once crash
    handling and work stealing), which drops the per-job fork cost on
    sweeps of many small experiments.  Either way a worker that dies
    (signal, OOM kill, stack overflow) or exceeds [timeout] seconds
    yields an {!Experiment.crashed} result for that experiment only; the
    sweep still completes.  [force_crash] ids have their worker killed
    deliberately (fault-injection hook; under [`Pool] the retried worker
    dies again, so the verdict is the same).  With [`Fork], [jobs = 1],
    no [timeout] and no [force_crash], this {e is} {!run} — no fork,
    byte-identical streaming output.  [`Pool] never takes that shortcut:
    it always exercises the worker protocol, and [echo] receives the
    renderings in registration order after the sweep finishes.
    @raise Invalid_argument when [jobs < 1] or [timeout <= 0]. *)

val report_json :
  scale:Experiment.scale -> Experiment.result list -> Json.t
(** The full artifact: schema header, one object per experiment (see
    {!Experiment.result_to_json}) and the roll-up summary. *)

val strip_timings : Json.t -> Json.t
(** Remove every nondeterministic field from an artifact: [wall_s],
    [timings], span [total_s] durations and metrics [volatile] sections
    everywhere (the listed keys are dropped wherever they appear), and
    float-valued (or null) entries inside [measures] objects — all
    float measures in the registry derive from the clock, while exact
    content is [Int]/[Bool]/rational-string.  Deterministic counters
    and span call counts are {e kept}: two sweeps of the same registry
    at the same scale and recording level strip to byte-identical
    documents regardless of [--jobs], counters included. *)
