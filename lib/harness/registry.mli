(** The experiment registry: registration, lookup, filtered execution
    and summary roll-up.

    A single process-global registry (the bench driver and the CLI both
    register the same experiment set); tests that need isolation call
    {!clear}.  Registration order is preserved everywhere — listings,
    selection, execution and the JSON report all follow it. *)

val register : Experiment.t -> unit
(** @raise Invalid_argument on a duplicate id. *)

val clear : unit -> unit
(** Empty the registry (for tests). *)

val all : unit -> Experiment.t list
(** Registered experiments, in registration order. *)

val ids : unit -> string list

val find : string -> Experiment.t option

val select : only:string list -> (Experiment.t list, string) result
(** The registered experiments whose id is in [only], in registration
    order; [Error] names the unknown ids if any. *)

val filter_tag : Experiment.tag -> Experiment.t list

type summary = {
  total : int;
  pass : int;
  info : int;
  degraded : int;
  checks_total : int;
  checks_failed : int;
  wall : float;  (** summed experiment wall clock, seconds *)
}

val summarize : Experiment.result list -> summary

val summary_table : Experiment.result list -> string
(** Aligned per-experiment verdict/check/time table plus a totals line,
    rendered through {!Table}. *)

val run :
  ?scale:Experiment.scale ->
  ?echo:(string -> unit) ->
  Experiment.t list ->
  Experiment.result list
(** Run the experiments in order.  [echo] (default: nothing) receives
    each experiment's text rendering as soon as it completes, so the
    driver can stream the legacy output. *)

val report_json :
  scale:Experiment.scale -> Experiment.result list -> Json.t
(** The full artifact: schema header, one object per experiment (see
    {!Experiment.result_to_json}) and the roll-up summary. *)
