(** Minimal JSON tree, emitter and parser (zero dependencies).

    Backs the structured experiment artifacts ([BENCH_*.json]): every
    registered experiment renders its result through this module, and the
    smoke sweep re-parses the rendered report to assert well-formedness.
    The emitter is deterministic — object fields keep insertion order —
    so artifacts are diffable across runs (timing values excepted). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Render to a string.  [pretty] (default [false]) uses two-space
    indentation with one field/element per line; compact mode emits no
    whitespace.  Non-finite floats (nan, infinities) have no JSON
    representation and are emitted as [null]. *)
val to_string : ?pretty:bool -> t -> string

(** Parse a complete JSON document (surrounding whitespace allowed;
    trailing garbage is an error).  Numbers without [.], [e] or [E]
    parse as [Int] when they fit, else as [Float]; leading zeros are
    rejected per the JSON grammar.  [\uXXXX] escapes are decoded to
    UTF-8; UTF-16 surrogate pairs combine into the single astral code
    point they encode, and unpaired surrogates are an error (they have
    no UTF-8 representation). *)
val of_string : string -> (t, string) result

(** [member key json] is the value of field [key] when [json] is an
    object that has it. *)
val member : string -> t -> t option
