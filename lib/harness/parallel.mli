(** Fork-based worker pool with per-job timeouts and fault isolation.

    Runs jobs [0 .. count-1] across at most [jobs] concurrent forked
    worker processes.  Each worker computes its job's JSON payload and
    sends it back over a pipe ({!Json} wire format — never [Marshal], so
    a truncated or corrupt payload is detected, not segfaulted on); the
    parent reassembles outcomes indexed by job, independent of
    completion order.

    Process isolation is the point: a worker that stack-overflows, is
    OOM-killed, or exceeds the timeout produces a [Crashed] outcome for
    its job only — the pool keeps draining the remaining jobs. *)

type outcome =
  | Completed of Json.t  (** worker exited 0 with a parseable payload *)
  | Crashed of { reason : string; wall : float }
      (** worker died (signal, nonzero exit, unparseable payload) or was
          killed at the timeout; [wall] is seconds from fork to reap *)

(** Decide a reaped worker's outcome from its wait status and the bytes
    it managed to send — a pure function, shared with the regression
    tests.  A worker that exited 0 with a payload that parses is
    [Completed] {e even when the deadline flag was raised}: the worker
    can complete in the same select round its deadline expires in (the
    SIGKILL then answers ESRCH — it was already gone), and flagging that
    as a timeout would misreport a good result as a crash.  The timeout
    reason claims only what is left: a genuinely killed worker or a
    truncated payload. *)
val classify :
  timed_out:bool ->
  timeout:float option ->
  status:Unix.process_status ->
  payload:string ->
  wall:float ->
  outcome

(** [run ~jobs ?timeout count f] forks one worker per job (at most
    [jobs] alive at once, started in job order) and returns the
    outcome of [f i] for each [i < count].  [timeout] is per job, in
    seconds; an expired worker is killed with SIGKILL.  [f] runs in the
    forked child: shared state mutated there is invisible to the parent
    and to other jobs.
    @raise Invalid_argument when [jobs < 1], [timeout <= 0] or
    [count < 0]. *)
val run :
  jobs:int -> ?timeout:float -> int -> (int -> Json.t) -> outcome array
