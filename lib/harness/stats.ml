(* NaN or infinite samples would propagate silently through every moment
   and fit below (a NaN mean poisons stddev, acceptance bands, R²); fail
   loudly at the door instead. *)
let check_finite ~who x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "%s: non-finite sample %h" who x)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ ->
      List.iter (check_finite ~who:"Stats.mean") xs;
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  (* Sample (n−1) estimator: the population (n) estimator understates
     sigma on finite samples and silently tightens Monte-Carlo acceptance
     bands built from it (T7). *)
  match xs with
  | [] -> invalid_arg "Stats.stddev: empty list"
  | [ _ ] -> 0.0
  | _ ->
      let mu = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

type fit = { slope : float; intercept : float; r_squared : float }

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  List.iter
    (fun (x, y) ->
      check_finite ~who:"Stats.linear_fit" x;
      check_finite ~who:"Stats.linear_fit" y)
    points;
  let xs = List.map fst points and ys = List.map snd points in
  let mx = mean xs and my = mean ys in
  let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.0)) 0.0 xs in
  if sxx = 0.0 then invalid_arg "Stats.linear_fit: x values are all equal";
  let sxy =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.0)) 0.0 ys in
  let ss_res =
    List.fold_left2
      (fun acc x y ->
        let predicted = (slope *. x) +. intercept in
        acc +. ((y -. predicted) ** 2.0))
      0.0 xs ys
  in
  let r_squared = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let is_linear ?(tolerance = 1e-6) points =
  (linear_fit points).r_squared >= 1.0 -. tolerance

let power_law_exponent points =
  let logged =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Stats.power_law_exponent: non-positive data";
        (log x, log y))
      points
  in
  (linear_fit logged).slope
