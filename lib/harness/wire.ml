(* Shared process/pipe machinery for Parallel (fork-per-job) and Pool
   (persistent workers).  See wire.mli for the frame grammar. *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigpipe then "SIGPIPE"
  else Printf.sprintf "signal %d" s

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let with_sigpipe_ignored f =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | previous ->
      Fun.protect
        ~finally:(fun () ->
          try Sys.set_signal Sys.sigpipe previous
          with Invalid_argument _ | Sys_error _ -> ())
        f
  | exception (Invalid_argument _ | Sys_error _) -> f ()

(* A signal delivered mid-write makes the syscall return short or raise
   EINTR (OCaml installs handlers without SA_RESTART); on a descriptor
   someone flipped to non-blocking it can also be EAGAIN.  All three
   mean "try again from where we got to" — which is only sound with
   [Unix.single_write]: plain [Unix.write] loops over multiple write(2)
   calls internally and raises EINTR with some unknown prefix already
   on the pipe, so retrying from our own offset duplicates bytes and
   corrupts the stream.  [single_write] guarantees the error cases wrote
   nothing. *)
let write_all fd s =
  let bytes = Bytes.unsafe_of_string s in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    match Unix.single_write fd bytes !written (len - !written) with
    | k -> written := !written + k
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
  done

(* The header never legitimately exceeds the digits of max_int. *)
let max_header_digits = 19

let write_frame fd json =
  let payload = Json.to_string json in
  write_all fd (string_of_int (String.length payload) ^ "\n" ^ payload)

let rec read_retry fd buf pos len =
  try Unix.read fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf pos len

let read_frame fd =
  let byte = Bytes.create 1 in
  let header = Buffer.create 8 in
  let rec read_header () =
    if read_retry fd byte 0 1 = 0 then
      if Buffer.length header = 0 then None
      else Some (Error "EOF inside frame header")
    else
      let c = Bytes.get byte 0 in
      if c = '\n' then
        match int_of_string_opt (Buffer.contents header) with
        | Some n when n >= 0 -> Some (Ok n)
        | _ ->
            Some
              (Error
                 (Printf.sprintf "bad frame header %S" (Buffer.contents header)))
      else if Buffer.length header >= max_header_digits then
        Some (Error "frame header too long")
      else begin
        Buffer.add_char header c;
        read_header ()
      end
  in
  match read_header () with
  | None -> None
  | Some (Error _ as e) -> Some e
  | Some (Ok n) ->
      let payload = Bytes.create n in
      let rec fill off =
        if off = n then true
        else
          match read_retry fd payload off (n - off) with
          | 0 -> false
          | k -> fill (off + k)
      in
      if not (fill 0) then Some (Error "EOF inside frame payload")
      else Some (Json.of_string (Bytes.unsafe_to_string payload))

type decoder = {
  mutable data : Bytes.t;
  mutable len : int; (* bytes buffered *)
  mutable pos : int; (* bytes consumed *)
}

let decoder () = { data = Bytes.create 4096; len = 0; pos = 0 }

let feed d chunk k =
  (* Compact consumed bytes away first, growing only when the live tail
     plus the new chunk genuinely does not fit. *)
  if d.pos > 0 then begin
    let live = d.len - d.pos in
    Bytes.blit d.data d.pos d.data 0 live;
    d.pos <- 0;
    d.len <- live
  end;
  if d.len + k > Bytes.length d.data then begin
    let grown = Bytes.create (max (2 * Bytes.length d.data) (d.len + k)) in
    Bytes.blit d.data 0 grown 0 d.len;
    d.data <- grown
  end;
  Bytes.blit chunk 0 d.data d.len k;
  d.len <- d.len + k

let next_frame ?max_payload d =
  let rec newline i =
    if i >= d.len then -1
    else if Bytes.get d.data i = '\n' then i
    else if i - d.pos >= max_header_digits then -2
    else newline (i + 1)
  in
  match newline d.pos with
  | -1 -> None (* header still incomplete *)
  | -2 -> Some (Error "frame header too long")
  | nl -> (
      let header = Bytes.sub_string d.data d.pos (nl - d.pos) in
      match int_of_string_opt header with
      | Some n when n >= 0 -> (
          match max_payload with
          | Some limit when n > limit ->
              (* Reject from the header alone: an adversarial or corrupt
                 length must not make the reader buffer gigabytes before
                 discovering the stream is garbage. *)
              Some
                (Error
                   (Printf.sprintf "frame payload of %d bytes exceeds limit %d"
                      n limit))
          | _ ->
              if d.len - (nl + 1) < n then None (* payload still incomplete *)
              else begin
                let payload = Bytes.sub_string d.data (nl + 1) n in
                d.pos <- nl + 1 + n;
                Some (Json.of_string payload)
              end)
      | _ -> Some (Error (Printf.sprintf "bad frame header %S" header)))

let partial d = d.len > d.pos
