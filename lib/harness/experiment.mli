(** Typed experiment descriptors with structured results.

    Every experiment of EXPERIMENTS.md (tables T1–T12, ablations A1–A2,
    figures F1–F6, microbenchmarks B0–B12) is a first-class value: an id,
    the paper claim it regenerates, the expected outcome, a tag, and a
    run function.  Running one produces a {!result} that carries the
    legacy text rendering {e and} machine-readable data — check
    counters, typed measured values (exact rationals included), and
    timing cells with spread — so "44/44 rows agree" is data an external
    tool can diff, not prose.  {!Registry} collects descriptors and
    rolls results up into the [BENCH_*.json] artifacts. *)

type tag = Table | Figure | Micro | Extension

(** [Smoke] runs a reduced-size variant (fewer samples/rounds/sizes,
    same seeds) suitable for [dune runtest]; [Full] regenerates the
    published numbers. *)
type scale = Smoke | Full

(** Derived from the check counters: [Pass] when every recorded check
    held, [Degraded] when at least one failed (or the run raised),
    [Info] when the experiment records no checks (timing-only
    microbenchmarks).  [Crashed] is never produced by {!run} — it is
    synthesized (see {!crashed}) when a worker process running the
    experiment died outright: killed by a signal, out of memory, or past
    its timeout.  In-process exceptions are [Degraded]; only process
    death is [Crashed]. *)
type verdict = Pass | Info | Degraded | Crashed

(** A measured value.  Rationals stay exact ([Exact.Q.t]); they are
    rendered to JSON as strings like ["8/3"]. *)
type value =
  | Int of int
  | Rat of Exact.Q.t
  | Float of float
  | Str of string
  | Bool of bool

type timing = Timer.stats = {
  median : float;
  min : float;
  max : float;
  runs : int;
}

(** The mutable context threaded through a run: accumulates text output,
    checks, measures and timings. *)
type ctx

val scale : ctx -> scale
val is_smoke : ctx -> bool

(** Append to the experiment's text rendering (the driver echoes it, so
    full-scale table output stays byte-compatible with the historical
    [Table.print]-based harness). *)
val out : ctx -> string -> unit

val outf : ctx -> ('a, unit, string, unit) format4 -> 'a

(** [check ctx ~label ok] records one pass/fail check and returns [ok]
    (so table rows can render the same boolean).  Labels of failed
    checks are kept in the result for diagnostics. *)
val check : ctx -> label:string -> bool -> bool

(** Record a named measured value.  Re-measuring a name overwrites. *)
val measure : ctx -> string -> value -> unit

(** [time ctx name ?repeat f] times [f] with {!Timer.time_stats},
    records the timing cell under [name], and returns [f ()]'s result. *)
val time : ctx -> string -> ?repeat:int -> (unit -> 'a) -> 'a

(** Record an externally produced timing cell (e.g. from a figure's own
    sweep). *)
val record_timing : ctx -> string -> timing -> unit

type t = {
  id : string;  (** "T6", "F2", "B7", ... — unique within a registry *)
  claim : string;  (** the paper claim (or extension) being regenerated *)
  expected : string;  (** what outcome reproduces the claim *)
  tag : tag;
  game : string;
      (** which GAME instance the experiment exercises ("tuple",
          "subgraph"); versioned into artifacts for non-tuple games *)
  run : ctx -> unit;
}

(** One span's contribution to a result: how many times it was entered,
    and — only when the run traced ([--trace]) — the accumulated
    inclusive wall time.  The count obeys the {!Obs} determinism
    contract; the duration is timing data and is stripped with the rest
    (see {!Registry.strip_timings}). *)
type span_metric = { calls : int; total_s : float option }

(** The {!Obs} delta attributed to one experiment run, each section
    sorted by name (see {!Obs.delta}). *)
type metrics = {
  m_counters : (string * int) list;  (** deterministic counters *)
  m_volatile : (string * int) list;  (** volatile counters *)
  m_spans : (string * span_metric) list;
}

(** Convert an {!Obs.delta} into result metrics.  Span durations are
    kept only when the current level is {!Obs.Trace} — at [Counters]
    the clock was never read, so the accumulated 0.0s would be noise,
    not data.  {!run} uses this; the driver reuses it for its own
    (orchestration-side) delta. *)
val metrics_of_obs : Obs.metrics -> metrics

type result = {
  id : string;
  claim : string;
  expected : string;
  tag : tag;
  game : string;  (** defaults to ["tuple"] when absent from the wire *)
  verdict : verdict;
  checks_total : int;
  checks_failed : int;
  failed_labels : string list;  (** labels of failed checks, run order *)
  measures : (string * value) list;  (** insertion order *)
  timings : (string * timing) list;  (** insertion order *)
  metrics : metrics option;
      (** [Some] iff observability was recording when the run started
          ([--metrics]/[--trace]); [None] for {!crashed} results *)
  text : string;  (** the legacy text rendering *)
  wall : float;  (** whole-experiment wall clock, seconds *)
}

(** Execute the experiment (default scale [Full]).  A raised exception
    is captured as a failed check, so a crashing experiment yields a
    [Degraded] result instead of killing the sweep. *)
val run : ?scale:scale -> t -> result

(** Force a result's verdict to [Degraded] (testing/CI hook for
    exercising the driver's nonzero-exit path). *)
val degrade : reason:string -> result -> result

(** [crashed t ~reason ~wall] is the result recorded for an experiment
    whose worker process died before reporting: verdict [Crashed], one
    failed check labelled [reason], no measures or timings, and a
    one-line text rendering. *)
val crashed : t -> reason:string -> wall:float -> result

(** One JSON object per result: id, claim, expected, tag, verdict,
    check counts, measures, timings, metrics (only when recorded) and
    wall time.  The ["metrics"] object always carries its three
    sections ([counters], [volatile], [spans]); span cells are
    [{"count": n}] plus ["total_s"] at trace level. *)
val result_to_json : result -> Json.t

(** {!result_to_json} plus the ["text"] rendering — the envelope a
    worker process sends back over its pipe. *)
val result_to_wire : result -> Json.t

(** Inverse of {!result_to_wire}, up to value typing: [Rat] measures
    come back as [Str] with the same "n/d" content and non-finite floats
    as nan, both of which re-render to identical artifact bytes. *)
val result_of_wire : Json.t -> (result, string) Stdlib.result

val tag_to_string : tag -> string
val verdict_to_string : verdict -> string
val scale_to_string : scale -> string
