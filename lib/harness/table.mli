(** Aligned plain-text tables and ASCII series "figures" for the
    experiment reports (every table and figure in EXPERIMENTS.md is
    printed through this module, so outputs are uniform and diffable). *)

type t

(** [create ~title ~columns] starts a table. *)
val create : title:string -> columns:string list -> t

(** Append a row; short rows are padded with empty cells.  A row with
    {e more} cells than columns is a bug in the experiment, not a
    formatting matter, so it raises [Invalid_argument] rather than
    silently dropping data. *)
val add_row : t -> string list -> unit

(** Render with a title rule and aligned columns. *)
val to_string : t -> string

(** Render as RFC-4180-ish CSV (quotes around cells containing commas,
    quotes or newlines; header row first).  For piping experiment output
    into external plotting tools. *)
val to_csv : t -> string

val print : t -> unit

(** [series ~title ~x_label ~y_label points] renders an ASCII chart of the
    [(x, y)] points (plus the raw values), for the "figure" experiments. *)
val series :
  title:string ->
  x_label:string ->
  y_label:string ->
  (float * float) list ->
  string

(** Render several labelled series on a shared ASCII chart. *)
val multi_series :
  title:string ->
  x_label:string ->
  y_label:string ->
  (string * (float * float) list) list ->
  string
