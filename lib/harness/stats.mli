(** Summary statistics and ordinary least squares, used to check the
    paper's asymptotic and linearity claims quantitatively (F1–F3). *)

(** Arithmetic mean.
    @raise Invalid_argument on the empty list or any NaN/infinite sample
    (a single bad sample would otherwise poison every derived moment
    silently). *)
val mean : float list -> float

(** Sample standard deviation (the unbiased n−1 estimator); 0.0 for a
    single observation. @raise Invalid_argument on the empty list. *)
val stddev : float list -> float

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** 1.0 = perfect linear relationship *)
}

(** Least-squares line through the points.
    @raise Invalid_argument with fewer than two distinct x values, or on
    any NaN/infinite coordinate. *)
val linear_fit : (float * float) list -> fit

(** [is_linear ?tolerance points]: R² of the linear fit at least
    [1 - tolerance] (default 1e-6).  Positive-slope linearity is the
    "power of the defender" claim. *)
val is_linear : ?tolerance:float -> (float * float) list -> bool

(** Fit y = c·x^e by log–log regression (positive data only); returns the
    exponent [e].  Used to check O(k·n) scaling empirically.
    @raise Invalid_argument on non-positive coordinates. *)
val power_law_exponent : (float * float) list -> float
