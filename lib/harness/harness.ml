(* The library's root module.  It exists for one reason: to re-export
   the zero-dependency observability core as [Harness.Obs].  [Obs] must
   live below [exact]/[matching]/[defender] in the dependency graph so
   those libraries can instrument themselves, but harness users (the
   bench driver, the CLI, the tests) reach everything — experiment
   engine and observability alike — through the one [Harness] namespace. *)

module Daemon = Daemon
module Experiment = Experiment
module Json = Json
module Lru = Lru
module Obs = Obs
module Parallel = Parallel
module Pool = Pool
module Registry = Registry
module Stats = Stats
module Table = Table
module Timer = Timer
module Wire = Wire
