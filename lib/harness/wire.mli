(** Process and pipe machinery shared by the forked runners: robust
    syscall wrappers and the length-delimited {!Json} frame protocol.

    {!Parallel} (fork-per-job) and {!Pool} (persistent pre-forked
    workers) both move results between processes over pipes; this module
    owns the parts they share, so the retry/guard fixes live in exactly
    one place.  Two transport shapes are supported: the one-shot "write
    a single document, close, EOF is the delimiter" style of
    {!Parallel}, and framed streams for {!Pool}, where one pipe carries
    many documents in each direction and each must be delimited
    explicitly.

    A frame is an ASCII decimal byte length, a single ['\n'], then
    exactly that many bytes of compact {!Json}.  The length is written
    first so the reader never has to parse speculatively: a corrupted
    stream surfaces as a framing or JSON error, not as a blocked read. *)

(** Close, swallowing errors — for teardown paths where the descriptor
    may already be gone. *)
val close_quietly : Unix.file_descr -> unit

(** [waitpid] restarted on [EINTR]; returns the process status. *)
val waitpid_retry : int -> Unix.process_status

(** Human name of a signal number ([Sys.sigkill] -> ["SIGKILL"], unknown
    numbers as ["signal n"]) for crash-reason strings. *)
val signal_name : int -> string

(** Ignore SIGPIPE for the rest of the process.  Workers call this once
    before writing results: with the default disposition, a write to a
    pipe whose reader died kills the writer silently; ignored, the same
    write raises [EPIPE] and flows through the normal error path. *)
val ignore_sigpipe : unit -> unit

(** [with_sigpipe_ignored f] runs [f] with SIGPIPE ignored, restoring
    the previous disposition afterwards (also on exceptions).  For
    parent-side writes to a worker that may have died — the failure must
    come back as [EPIPE], not kill the whole pool. *)
val with_sigpipe_ignored : (unit -> 'a) -> 'a

(** Write the whole string, restarting interrupted or would-block
    writes ([EINTR]/[EAGAIN]/[EWOULDBLOCK]).  A short or interrupted
    write is a normal pipe event under signal load, not an error; any
    other [Unix_error] (notably [EPIPE] with {!ignore_sigpipe}
    installed) is re-raised.  Built on [Unix.single_write] — plain
    [Unix.write] raises [EINTR] with an unknown prefix already written,
    so a retry loop over it duplicates bytes into the stream. *)
val write_all : Unix.file_descr -> string -> unit

(** [write_frame fd json] writes one length-delimited frame via
    {!write_all}. *)
val write_frame : Unix.file_descr -> Json.t -> unit

(** Blocking read of one frame.  [None] on EOF at a frame boundary (the
    peer closed cleanly); [Some (Error _)] on a malformed header,
    truncated payload or JSON parse failure.  Reads are restarted on
    [EINTR].  This is the worker-side read loop primitive. *)
val read_frame : Unix.file_descr -> (Json.t, string) result option

(** Incremental frame decoder for the parent's select loop: bytes arrive
    in arbitrary chunks; complete frames are handed out as they
    materialize. *)
type decoder

val decoder : unit -> decoder

(** [feed d chunk len] appends the first [len] bytes of [chunk]. *)
val feed : decoder -> bytes -> int -> unit

(** The next complete frame, if the buffered bytes contain one.
    [Some (Error _)] means the stream is desynchronized (unparseable
    header or payload) and the connection should be abandoned.  The
    frame's bytes are consumed either way.  [max_payload] rejects a
    frame from its header alone when the declared length exceeds the
    limit — the guard a network-facing reader ({!Daemon}) needs so an
    adversarial length cannot make it buffer gigabytes before
    discovering the stream is garbage. *)
val next_frame : ?max_payload:int -> decoder -> (Json.t, string) result option

(** [true] when the decoder holds buffered bytes that do not yet form a
    complete frame — after EOF, evidence of a truncated write. *)
val partial : decoder -> bool
