(** The [Harness] namespace root: experiment engine, JSON codec, forked
    worker pool, statistics, tables and timers, plus the zero-dependency
    observability core re-exported as [Harness.Obs].

    [Obs] lives in its own library below [exact]/[matching]/[defender]
    in the dependency graph so those libraries can instrument
    themselves; this module folds it back into the one namespace that
    the bench driver, the CLI and the tests already use. *)

module Daemon = Daemon
module Experiment = Experiment
module Json = Json
module Lru = Lru
module Obs = Obs
module Parallel = Parallel
module Pool = Pool
module Registry = Registry
module Stats = Stats
module Table = Table
module Timer = Timer
module Wire = Wire
