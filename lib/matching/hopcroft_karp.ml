open Netgraph

type result = {
  size : int;
  mate : Graph.vertex array;
  edges : Graph.edge_id list;
}

let validate_sides g ~left ~right =
  let n = Graph.n g in
  let seen = Array.make n 0 in
  let register side v =
    if v < 0 || v >= n then invalid_arg "Hopcroft_karp: vertex out of range";
    if seen.(v) <> 0 then invalid_arg "Hopcroft_karp: sides intersect or repeat";
    seen.(v) <- side
  in
  List.iter (register 1) left;
  List.iter (register 2) right;
  seen

let inf = max_int

(* Phases bound the O(sqrt V) outer loop the algorithm is named for;
   augmentations equal the final matching size. *)
let c_phases = Obs.counter "hk.phases"
let c_augmentations = Obs.counter "hk.augmentations"

let max_matching g ~left ~right =
  Obs.span "hk.max_matching" @@ fun () ->
  let side = validate_sides g ~left ~right in
  let lefts = Array.of_list left in
  let nl = Array.length lefts in
  (* Crossing adjacency, left-indexed: (right graph-vertex, edge id). *)
  let adj =
    Array.map
      (fun v ->
        Graph.incident_edges g v
        |> Array.to_list
        |> List.filter_map (fun id ->
               let w = Graph.opposite g id v in
               if side.(w) = 2 then Some (w, id) else None)
        |> Array.of_list)
      lefts
  in
  let mate = Array.make (Graph.n g) (-1) in
  let dist = Array.make nl inf in
  let queue = Queue.create () in
  (* BFS over left vertices through alternating paths; returns true if some
     free right vertex is reachable. *)
  let left_index = Array.make (Graph.n g) (-1) in
  Array.iteri (fun i v -> left_index.(v) <- i) lefts;
  let bfs () =
    Queue.clear queue;
    let reachable_free = ref false in
    Array.iteri
      (fun i v ->
        if mate.(v) < 0 then begin
          dist.(i) <- 0;
          Queue.add i queue
        end
        else dist.(i) <- inf)
      lefts;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      Array.iter
        (fun (w, _) ->
          match mate.(w) with
          | -1 -> reachable_free := true
          | partner ->
              let j = left_index.(partner) in
              if dist.(j) = inf then begin
                dist.(j) <- dist.(i) + 1;
                Queue.add j queue
              end)
        adj.(i)
    done;
    !reachable_free
  in
  let rec dfs i =
    let found = ref false in
    let row = adj.(i) in
    let k = ref 0 in
    while (not !found) && !k < Array.length row do
      let w, _ = row.(!k) in
      incr k;
      let extendable =
        match mate.(w) with
        | -1 -> true
        | partner ->
            let j = left_index.(partner) in
            dist.(j) = dist.(i) + 1 && dfs j
      in
      if extendable then begin
        mate.(w) <- lefts.(i);
        mate.(lefts.(i)) <- w;
        found := true
      end
    done;
    if not !found then dist.(i) <- inf;
    !found
  in
  let size = ref 0 in
  while bfs () do
    Obs.incr c_phases;
    Array.iteri
      (fun i v ->
        if mate.(v) < 0 && dfs i then begin
          Obs.incr c_augmentations;
          incr size
        end)
      lefts
  done;
  (* Recover matching edge ids. *)
  let edges =
    Array.to_list lefts
    |> List.filter_map (fun v ->
           if mate.(v) >= 0 then Graph.find_edge g v mate.(v) else None)
  in
  { size = !size; mate; edges }

let max_matching_bipartite g =
  match Bipartite.coloring g with
  | None -> invalid_arg "Hopcroft_karp.max_matching_bipartite: graph not bipartite"
  | Some c -> max_matching g ~left:c.Bipartite.side_a ~right:c.Bipartite.side_b
