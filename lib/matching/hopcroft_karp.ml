open Netgraph

type result = {
  size : int;
  mate : Graph.vertex array;
  edges : Graph.edge_id list;
}

let validate_sides g ~left ~right =
  let n = Graph.n g in
  let seen = Array.make n 0 in
  let register side v =
    if v < 0 || v >= n then invalid_arg "Hopcroft_karp: vertex out of range";
    if seen.(v) <> 0 then invalid_arg "Hopcroft_karp: sides intersect or repeat";
    seen.(v) <- side
  in
  List.iter (register 1) left;
  List.iter (register 2) right;
  seen

let inf = max_int

(* Phases bound the O(sqrt V) outer loop the algorithm is named for;
   augmentations equal the final matching size. *)
let c_phases = Obs.counter "hk.phases"
let c_augmentations = Obs.counter "hk.augmentations"

let max_matching g ~left ~right =
  Obs.span "hk.max_matching" @@ fun () ->
  let side = validate_sides g ~left ~right in
  let lefts = Array.of_list left in
  let nl = Array.length lefts in
  (* Crossing adjacency, left-indexed, packed flat: the right graph
     vertices reachable from left slot i are
     lnbr.(loff.(i)) .. lnbr.(loff.(i+1) - 1), in increasing order
     (inherited from the CSR rows). *)
  let loff = Array.make (nl + 1) 0 in
  Array.iteri
    (fun i v ->
      loff.(i + 1) <-
        Graph.fold_neighbors g v ~init:0 ~f:(fun acc w ->
            if side.(w) = 2 then acc + 1 else acc))
    lefts;
  for i = 1 to nl do
    loff.(i) <- loff.(i) + loff.(i - 1)
  done;
  let lnbr = Array.make (max loff.(nl) 1) 0 in
  Array.iteri
    (fun i v ->
      let k = ref loff.(i) in
      Graph.iter_neighbors g v ~f:(fun w ->
          if side.(w) = 2 then begin
            lnbr.(!k) <- w;
            incr k
          end))
    lefts;
  let mate = Array.make (Graph.n g) (-1) in
  let dist = Array.make (max nl 1) inf in
  let left_index = Array.make (Graph.n g) (-1) in
  Array.iteri (fun i v -> left_index.(v) <- i) lefts;
  let queue = Array.make (max nl 1) 0 in
  (* BFS over left slots through alternating paths; returns true if
     some free right vertex is reachable. *)
  let bfs () =
    let head = ref 0 and tail = ref 0 in
    let reachable_free = ref false in
    Array.iteri
      (fun i v ->
        if mate.(v) < 0 then begin
          dist.(i) <- 0;
          queue.(!tail) <- i;
          incr tail
        end
        else dist.(i) <- inf)
      lefts;
    while !head < !tail do
      let i = queue.(!head) in
      incr head;
      for k = loff.(i) to loff.(i + 1) - 1 do
        let w = lnbr.(k) in
        match mate.(w) with
        | -1 -> reachable_free := true
        | partner ->
            let j = left_index.(partner) in
            if dist.(j) = inf then begin
              dist.(j) <- dist.(i) + 1;
              queue.(!tail) <- j;
              incr tail
            end
      done
    done;
    !reachable_free
  in
  (* Depth-first augmentation along dist-increasing layers, on explicit
     stacks: frame t examines left slot stack_i.(t), with stack_w.(t)
     the right vertex it is currently trying and ptr.(i) the scan
     cursor into row i (reset on push, exactly like the recursive
     formulation that re-scans the row on every call).  An alternating
     path visits each left slot at most once, so depth is bounded by
     nl — no OCaml stack frames, no overflow at 10^6 vertices. *)
  let ptr = Array.make (max nl 1) 0 in
  let stack_i = Array.make (max nl 1) 0 in
  let stack_w = Array.make (max nl 1) 0 in
  let dfs i0 =
    let sp = ref 0 in
    stack_i.(0) <- i0;
    ptr.(i0) <- loff.(i0);
    (* 0 = running, 1 = augmented, 2 = failed *)
    let result = ref 0 in
    while !result = 0 do
      let i = stack_i.(!sp) in
      if ptr.(i) < loff.(i + 1) then begin
        let w = lnbr.(ptr.(i)) in
        ptr.(i) <- ptr.(i) + 1;
        stack_w.(!sp) <- w;
        match mate.(w) with
        | -1 ->
            (* Free right vertex: flip mates along the whole stack. *)
            for t = !sp downto 0 do
              let it = stack_i.(t) and wt = stack_w.(t) in
              mate.(wt) <- lefts.(it);
              mate.(lefts.(it)) <- wt
            done;
            result := 1
        | partner ->
            let j = left_index.(partner) in
            if dist.(j) = dist.(i) + 1 then begin
              incr sp;
              stack_i.(!sp) <- j;
              ptr.(j) <- loff.(j)
            end
      end
      else begin
        (* Row exhausted: this slot is a dead end for the phase. *)
        dist.(i) <- inf;
        if !sp = 0 then result := 2 else decr sp
      end
    done;
    !result = 1
  in
  let size = ref 0 in
  while bfs () do
    Obs.incr c_phases;
    Array.iteri
      (fun i v ->
        if mate.(v) < 0 && dfs i then begin
          Obs.incr c_augmentations;
          incr size
        end)
      lefts
  done;
  (* Recover matching edge ids. *)
  let edges =
    Array.to_list lefts
    |> List.filter_map (fun v ->
           if mate.(v) >= 0 then Graph.find_edge g v mate.(v) else None)
  in
  { size = !size; mate; edges }

let max_matching_bipartite g =
  match Bipartite.coloring g with
  | None -> invalid_arg "Hopcroft_karp.max_matching_bipartite: graph not bipartite"
  | Some c -> max_matching g ~left:c.Bipartite.side_a ~right:c.Bipartite.side_b
