open Netgraph

let require_no_isolated g =
  if Graph.has_isolated_vertex g then
    invalid_arg "Edge_cover: graph has an isolated vertex"

let minimum g =
  require_no_isolated g;
  let { Blossom.mate; edges; _ } = Blossom.max_matching g in
  let extra = ref [] in
  for v = 0 to Graph.n g - 1 do
    if mate.(v) < 0 then begin
      (* Any incident edge covers the unmatched vertex; the first one
         in the CSR row will do, without copying the row. *)
      let first = ref (-1) in
      Graph.iter_incident g v ~f:(fun _ id -> if !first < 0 then first := id);
      extra := !first :: !extra
    end
  done;
  edges @ !extra

let rho g =
  require_no_isolated g;
  Graph.n g - Blossom.matching_number g

let of_size g k =
  require_no_isolated g;
  if k > Graph.m g then None
  else
    let cover = minimum g in
    let need = k - List.length cover in
    if need < 0 then None
    else begin
      let used = Array.make (Graph.m g) false in
      List.iter (fun id -> used.(id) <- true) cover;
      let padding = ref [] in
      let remaining = ref need in
      let id = ref 0 in
      while !remaining > 0 do
        if not used.(!id) then begin
          padding := !id :: !padding;
          decr remaining
        end;
        incr id
      done;
      Some (cover @ !padding)
    end

let exists_of_size g k = k <= Graph.m g && k >= rho g
