open Netgraph

type t = {
  vertex_cover : Graph.vertex list;
  independent_set : Graph.vertex list;
  matching : Hopcroft_karp.result;
}

let solve g =
  match Bipartite.coloring g with
  | None -> invalid_arg "Koenig.solve: graph not bipartite"
  | Some coloring ->
      let left = coloring.Bipartite.side_a in
      let matching = Hopcroft_karp.max_matching_bipartite g in
      let mate = matching.Hopcroft_karp.mate in
      let n = Graph.n g in
      let is_left = Array.make n false in
      List.iter (fun v -> is_left.(v) <- true) left;
      (* Alternating reachability from free left vertices: unmatched edges
         left->right, matched edges right->left. *)
      let reached = Array.make n false in
      let queue = Queue.create () in
      List.iter
        (fun v ->
          if mate.(v) < 0 then begin
            reached.(v) <- true;
            Queue.add v queue
          end)
        left;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        if is_left.(v) then
          Graph.iter_neighbors g v ~f:(fun w ->
              if mate.(v) <> w && not reached.(w) then begin
                reached.(w) <- true;
                Queue.add w queue
              end)
        else if mate.(v) >= 0 && not reached.(mate.(v)) then begin
          reached.(mate.(v)) <- true;
          Queue.add mate.(v) queue
        end
      done;
      (* König: VC = (L \ Z) ∪ (R ∩ Z). *)
      let vertex_cover = ref [] and independent_set = ref [] in
      for v = n - 1 downto 0 do
        let in_cover = if is_left.(v) then not reached.(v) else reached.(v) in
        if in_cover then vertex_cover := v :: !vertex_cover
        else independent_set := v :: !independent_set
      done;
      { vertex_cover = !vertex_cover; independent_set = !independent_set; matching }

let vertex_cover_number g = List.length (solve g).vertex_cover
