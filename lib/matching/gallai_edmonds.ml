open Netgraph

type t = {
  d : Graph.vertex list;
  a : Graph.vertex list;
  c : Graph.vertex list;
  mu : int;
}

let delete_vertex g v =
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc _ e ->
        if e.Graph.u = v || e.Graph.v = v then acc else (e.Graph.u, e.Graph.v) :: acc)
  in
  Graph.make ~n:(Graph.n g) edges

let is_inessential g v =
  Blossom.matching_number (delete_vertex g v) = Blossom.matching_number g

let decompose g =
  let mu = Blossom.matching_number g in
  let n = Graph.n g in
  let in_d = Array.make n false in
  for v = 0 to n - 1 do
    if Blossom.matching_number (delete_vertex g v) = mu then in_d.(v) <- true
  done;
  let in_a = Array.make n false in
  for v = 0 to n - 1 do
    if in_d.(v) then
      Graph.iter_neighbors g v ~f:(fun w ->
          if not in_d.(w) then in_a.(w) <- true)
  done;
  let collect pred =
    let out = ref [] in
    for v = n - 1 downto 0 do
      if pred v then out := v :: !out
    done;
    !out
  in
  {
    d = collect (fun v -> in_d.(v));
    a = collect (fun v -> in_a.(v));
    c = collect (fun v -> (not in_d.(v)) && not in_a.(v));
    mu;
  }

let has_perfect_matching g =
  Graph.n g mod 2 = 0 && 2 * Blossom.matching_number g = Graph.n g
