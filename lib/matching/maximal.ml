open Netgraph

let maximal_matching g =
  let used = Array.make (Graph.n g) false in
  Graph.fold_edges g ~init:[] ~f:(fun acc id e ->
      if used.(e.Graph.u) || used.(e.Graph.v) then acc
      else begin
        used.(e.Graph.u) <- true;
        used.(e.Graph.v) <- true;
        id :: acc
      end)
  |> List.rev

let two_approx_vertex_cover g =
  maximal_matching g
  |> List.concat_map (fun id ->
         let e = Graph.edge g id in
         [ e.Graph.u; e.Graph.v ])
  |> List.sort_uniq compare

let greedy_independent_set g =
  let order =
    List.init (Graph.n g) Fun.id
    |> List.sort (fun a b -> compare (Graph.degree g a) (Graph.degree g b))
  in
  let blocked = Array.make (Graph.n g) false in
  let chosen =
    List.filter
      (fun v ->
        if blocked.(v) then false
        else begin
          Graph.iter_neighbors g v ~f:(fun w -> blocked.(w) <- true);
          true
        end)
      order
  in
  List.sort compare chosen
