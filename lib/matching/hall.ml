open Netgraph

type verdict = {
  expander : bool;
  saturating_matching : Graph.edge_id list option;
  violating_set : Graph.vertex list option;
}

let complement g vs =
  let mark = Array.make (Graph.n g) false in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then invalid_arg "Hall: vertex out of range";
      if mark.(v) then invalid_arg "Hall: duplicate vertex";
      mark.(v) <- true)
    vs;
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not mark.(v) then out := v :: !out
  done;
  !out

let check g ~vc =
  let is = complement g vc in
  let { Hopcroft_karp.size; mate; edges } =
    Hopcroft_karp.max_matching g ~left:vc ~right:is
  in
  if size = List.length vc then
    { expander = true; saturating_matching = Some edges; violating_set = None }
  else begin
    (* Hall violator: vc vertices reachable from an unmatched vc vertex by
       alternating paths; their crossing neighbourhood is deficient. *)
    let n = Graph.n g in
    let in_vc = Array.make n false in
    List.iter (fun v -> in_vc.(v) <- true) vc;
    let reached = Array.make n false in
    let queue = Queue.create () in
    List.iter
      (fun v ->
        if mate.(v) < 0 then begin
          reached.(v) <- true;
          Queue.add v queue
        end)
      vc;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if in_vc.(v) then
        Graph.iter_neighbors g v ~f:(fun w ->
            if (not in_vc.(w)) && mate.(v) <> w && not reached.(w) then begin
              reached.(w) <- true;
              Queue.add w queue
            end)
      else if mate.(v) >= 0 && not reached.(mate.(v)) then begin
        reached.(mate.(v)) <- true;
        Queue.add mate.(v) queue
      end
    done;
    let violator = List.filter (fun v -> reached.(v)) vc in
    { expander = false; saturating_matching = None; violating_set = Some violator }
  end

let check_exhaustive g ~vc =
  let vc = Array.of_list vc in
  let size = Array.length vc in
  if size > 20 then invalid_arg "Hall.check_exhaustive: subset too large";
  let in_vc = Array.make (Graph.n g) false in
  Array.iter (fun v -> in_vc.(v) <- true) vc;
  let ok = ref true in
  for mask = 1 to (1 lsl size) - 1 do
    if !ok then begin
      let members = ref [] and cardinality = ref 0 in
      for i = 0 to size - 1 do
        if mask land (1 lsl i) <> 0 then begin
          members := vc.(i) :: !members;
          incr cardinality
        end
      done;
      let crossing_neighbors =
        Graph.neighborhood g !members |> List.filter (fun w -> not in_vc.(w))
      in
      if List.length crossing_neighbors < !cardinality then ok := false
    end
  done;
  !ok
