open Netgraph

type result = {
  size : int;
  mate : Graph.vertex array;
  edges : Graph.edge_id list;
}

(* The events that characterize a run's difficulty: greedy seeds say
   how much of the matching the maximal-matching warm start found,
   contractions say how non-bipartite the instance behaved, and seeds
   plus augmentations equal the matching size.  All are pure functions
   of the input graph. *)
let c_seeds = Obs.counter "blossom.seeds"
let c_contractions = Obs.counter "blossom.contractions"
let c_augmentations = Obs.counter "blossom.augmentations"

exception Found of int

(* Classic blossom formulation — grow an alternating BFS forest from
   each remaining free vertex, contracting blossoms on the fly via the
   [base] array, augmenting when a free vertex is reached — engineered
   for the BigGraph tier: a greedy maximal matching seeds the search
   (correct by Berge's theorem: augmenting paths from the seed reach
   the same maximum size), per-search state is epoch-stamped instead of
   O(n)-refilled, the blossom rebase scan walks only the vertices the
   search has touched, and traversal uses the non-allocating CSR row
   iterators.  Worst case stays O(n^3); on sparse instances each search
   is O(m alpha-ish) and most vertices are matched by the seed. *)
let max_matching g =
  Obs.span "blossom.max_matching" @@ fun () ->
  let n = Graph.n g in
  let mate = Array.make n (-1) in

  let seeds = ref 0 in
  for v = 0 to n - 1 do
    if mate.(v) < 0 then
      match
        try
          Graph.iter_neighbors g v ~f:(fun w ->
              if mate.(w) < 0 then raise (Found w));
          None
        with Found w -> Some w
      with
      | Some w ->
          mate.(v) <- w;
          mate.(w) <- v;
          incr seeds
      | None -> ()
  done;
  Obs.add c_seeds !seeds;

  let parent = Array.make n (-1) in
  let base = Array.init n Fun.id in
  let used = Array.make n false in
  (* [stamp.(v) = epoch] marks parent/base/used as valid for the
     current search; [touch] lazily resets them, recording v so the
     contraction rebase scan is bounded by the search's footprint. *)
  let stamp = Array.make n 0 in
  let epoch = ref 0 in
  let touched = Array.make n 0 in
  let n_touched = ref 0 in
  let touch v =
    if stamp.(v) <> !epoch then begin
      stamp.(v) <- !epoch;
      used.(v) <- false;
      parent.(v) <- -1;
      base.(v) <- v;
      touched.(!n_touched) <- v;
      incr n_touched
    end
  in
  let on_path_stamp = Array.make n 0 in
  let path_epoch = ref 0 in
  let in_blossom_stamp = Array.make n 0 in
  let blossom_epoch = ref 0 in
  let queue = Array.make n 0 in
  let qhead = ref 0 and qtail = ref 0 in
  let enqueue v =
    queue.(!qtail) <- v;
    incr qtail
  in

  (* Every vertex these walk (bases, mates and parents of forest
     vertices) is already touched, so the stamped arrays are valid. *)
  let lowest_common_ancestor a b =
    incr path_epoch;
    let rec mark v =
      on_path_stamp.(base.(v)) <- !path_epoch;
      if mate.(base.(v)) >= 0 then mark parent.(mate.(base.(v)))
    in
    mark a;
    let rec find v =
      if on_path_stamp.(base.(v)) = !path_epoch then base.(v)
      else find parent.(mate.(base.(v)))
    in
    find b
  in

  (* Mark blossom vertices on the path from [v] down to base [b],
     rerooting parents so the stem alternates through [child]. *)
  let rec mark_path v b child =
    touch v;
    if base.(v) <> b then begin
      let mv = mate.(v) in
      touch mv;
      in_blossom_stamp.(base.(v)) <- !blossom_epoch;
      in_blossom_stamp.(base.(mv)) <- !blossom_epoch;
      parent.(v) <- child;
      mark_path parent.(mv) b mv
    end
  in

  let find_augmenting_path root =
    incr epoch;
    n_touched := 0;
    qhead := 0;
    qtail := 0;
    touch root;
    used.(root) <- true;
    enqueue root;
    try
      while !qhead < !qtail do
        let v = queue.(!qhead) in
        incr qhead;
        Graph.iter_neighbors g v ~f:(fun w ->
            touch w;
            if base.(v) <> base.(w) && mate.(v) <> w then
              if
                w = root
                || mate.(w) >= 0
                   &&
                   let mw = mate.(w) in
                   touch mw;
                   parent.(mw) >= 0
              then begin
                (* An odd cycle: contract the blossom. *)
                Obs.incr c_contractions;
                let cur_base = lowest_common_ancestor v w in
                incr blossom_epoch;
                mark_path v cur_base w;
                mark_path w cur_base v;
                let i = ref 0 in
                while !i < !n_touched do
                  let u = touched.(!i) in
                  if in_blossom_stamp.(base.(u)) = !blossom_epoch then begin
                    base.(u) <- cur_base;
                    if not used.(u) then begin
                      used.(u) <- true;
                      enqueue u
                    end
                  end;
                  incr i
                done
              end
              else if parent.(w) < 0 then begin
                parent.(w) <- v;
                if mate.(w) < 0 then raise (Found w)
                else begin
                  let mw = mate.(w) in
                  touch mw;
                  used.(mw) <- true;
                  enqueue mw
                end
              end)
      done;
      -1
    with Found w -> w
  in

  let augment last =
    let rec flip v =
      if v >= 0 then begin
        let pv = parent.(v) in
        let next = mate.(pv) in
        mate.(v) <- pv;
        mate.(pv) <- v;
        flip next
      end
    in
    flip last
  in

  let size = ref !seeds in
  for v = 0 to n - 1 do
    if mate.(v) < 0 then begin
      let last = find_augmenting_path v in
      if last >= 0 then begin
        Obs.incr c_augmentations;
        augment last;
        incr size
      end
    end
  done;
  let edges = ref [] in
  for v = 0 to n - 1 do
    if mate.(v) > v then
      match Graph.find_edge g v mate.(v) with
      | Some id -> edges := id :: !edges
      | None -> assert false
  done;
  { size = !size; mate; edges = !edges }

let matching_number g = (max_matching g).size
