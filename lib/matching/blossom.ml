open Netgraph

type result = {
  size : int;
  mate : Graph.vertex array;
  edges : Graph.edge_id list;
}

(* The two events that characterize a run's difficulty: contractions
   say how non-bipartite the instance behaved, augmentations equal the
   matching size.  Both are pure functions of the input graph. *)
let c_contractions = Obs.counter "blossom.contractions"
let c_augmentations = Obs.counter "blossom.augmentations"

(* Classic O(n^3) formulation: repeatedly grow an alternating BFS forest
   from each free vertex, contracting blossoms on the fly via the [base]
   array, and augment when a free vertex is reached. *)
let max_matching g =
  Obs.span "blossom.max_matching" @@ fun () ->
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let base = Array.init n Fun.id in
  let used = Array.make n false in
  let in_blossom = Array.make n false in
  let queue = Queue.create () in

  let lowest_common_ancestor a b =
    let on_path = Array.make n false in
    let rec mark v =
      on_path.(base.(v)) <- true;
      if mate.(base.(v)) >= 0 then mark parent.(mate.(base.(v)))
    in
    mark a;
    let rec find v = if on_path.(base.(v)) then base.(v) else find parent.(mate.(base.(v))) in
    find b
  in

  (* Mark blossom vertices on the path from [v] down to base [b], rerooting
     parents so the stem alternates through [child]. *)
  let rec mark_path v b child =
    if base.(v) <> b then begin
      in_blossom.(base.(v)) <- true;
      in_blossom.(base.(mate.(v))) <- true;
      parent.(v) <- child;
      mark_path parent.(mate.(v)) b mate.(v)
    end
  in

  let find_augmenting_path root =
    Array.fill used 0 n false;
    Array.fill parent 0 n (-1);
    for i = 0 to n - 1 do
      base.(i) <- i
    done;
    used.(root) <- true;
    Queue.clear queue;
    Queue.add root queue;
    let augment_end = ref (-1) in
    while !augment_end < 0 && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let nbrs = Graph.neighbors g v in
      let i = ref 0 in
      while !augment_end < 0 && !i < Array.length nbrs do
        let w = nbrs.(!i) in
        incr i;
        if base.(v) <> base.(w) && mate.(v) <> w then begin
          if w = root || (mate.(w) >= 0 && parent.(mate.(w)) >= 0) then begin
            (* An odd cycle: contract the blossom. *)
            Obs.incr c_contractions;
            let cur_base = lowest_common_ancestor v w in
            Array.fill in_blossom 0 n false;
            mark_path v cur_base w;
            mark_path w cur_base v;
            for u = 0 to n - 1 do
              if in_blossom.(base.(u)) then begin
                base.(u) <- cur_base;
                if not used.(u) then begin
                  used.(u) <- true;
                  Queue.add u queue
                end
              end
            done
          end
          else if parent.(w) < 0 then begin
            parent.(w) <- v;
            if mate.(w) < 0 then augment_end := w
            else begin
              used.(mate.(w)) <- true;
              Queue.add mate.(w) queue
            end
          end
        end
      done
    done;
    !augment_end
  in

  let augment last =
    let rec flip v =
      if v >= 0 then begin
        let pv = parent.(v) in
        let next = mate.(pv) in
        mate.(v) <- pv;
        mate.(pv) <- v;
        flip next
      end
    in
    flip last
  in

  let size = ref 0 in
  for v = 0 to n - 1 do
    if mate.(v) < 0 then begin
      let last = find_augmenting_path v in
      if last >= 0 then begin
        Obs.incr c_augmentations;
        augment last;
        incr size
      end
    end
  done;
  let edges = ref [] in
  for v = 0 to n - 1 do
    if mate.(v) > v then
      match Graph.find_edge g v mate.(v) with
      | Some id -> edges := id :: !edges
      | None -> assert false
  done;
  { size = !size; mate; edges = !edges }

let matching_number g = (max_matching g).size
