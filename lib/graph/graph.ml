type vertex = int
type edge_id = int
type edge = { u : vertex; v : vertex }

(* Flat CSR adjacency.  [off] has n+1 entries; the neighbors of v are
   nbr.(off.(v)) .. nbr.(off.(v+1) - 1), sorted increasing, with
   eid.(i) the id of the edge joining v to nbr.(i).  Endpoints by edge
   id live in the parallel eu/ev arrays (normalized, eu.(id) < ev.(id)).
   No per-vertex heap structure, no boxed tuples: six flat arrays. *)
type t = {
  n : int;
  m : int;
  eu : int array;
  ev : int array;
  off : int array;
  nbr : int array;
  eid : int array;
}

(* Packed edge keys [(u lsl 31) lor v] with u < v need both endpoints
   below 2^31; the maximum key is then 2^62 - 1 = max_int on 64-bit. *)
let max_vertices = 0x7FFFFFFF

(* Shared construction core.  [eu]/[ev] hold [m] validated normalized
   endpoint pairs indexed by edge id (insertion order); the arrays may
   be longer than [m].  Sorting the packed keys once and filling both
   endpoint rows in key order leaves every row sorted by neighbor, so
   no per-row sort is needed: row w receives its a-side entries (a,w)
   in increasing a strictly before its b-side entries (w,b) in
   increasing b, and a < w < b throughout. *)
let build ~n eu ev m =
  let key = Array.make (max m 1) 0 and ids = Array.make (max m 1) 0 in
  for i = 0 to m - 1 do
    key.(i) <- (eu.(i) lsl 31) lor ev.(i);
    ids.(i) <- i
  done;
  let key = if Array.length key = m then key else Array.sub key 0 m in
  let ids = if Array.length ids = m then ids else Array.sub ids 0 m in
  Int_sort.sort_pairs key ids;
  for i = 1 to m - 1 do
    if key.(i) = key.(i - 1) then
      invalid_arg
        (Printf.sprintf "Graph.make: duplicate edge (%d,%d)" (key.(i) lsr 31)
           (key.(i) land max_vertices))
  done;
  let off = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    let k = key.(i) in
    let u = k lsr 31 and v = k land max_vertices in
    off.(u + 1) <- off.(u + 1) + 1;
    off.(v + 1) <- off.(v + 1) + 1
  done;
  for v = 1 to n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let cur = Array.sub off 0 (max n 1) in
  let nbr = Array.make (max (2 * m) 1) 0 in
  let eid = Array.make (max (2 * m) 1) 0 in
  for i = 0 to m - 1 do
    let k = key.(i) in
    let u = k lsr 31 and v = k land max_vertices in
    let id = ids.(i) in
    nbr.(cur.(u)) <- v;
    eid.(cur.(u)) <- id;
    cur.(u) <- cur.(u) + 1;
    nbr.(cur.(v)) <- u;
    eid.(cur.(v)) <- id;
    cur.(v) <- cur.(v) + 1
  done;
  let trim a len = if Array.length a = len then a else Array.sub a 0 len in
  { n; m; eu = trim eu m; ev = trim ev m; off; nbr; eid }

module Builder = struct
  type graph = t

  type t = {
    bn : int;
    mutable beu : int array;
    mutable bev : int array;
    mutable bm : int;
  }

  let create ?(edges_hint = 16) ~n () =
    if n < 0 then invalid_arg "Graph.make: negative vertex count";
    if n > max_vertices then
      invalid_arg "Graph.make: vertex count exceeds 2^31-1";
    let cap = max edges_hint 1 in
    { bn = n; beu = Array.make cap 0; bev = Array.make cap 0; bm = 0 }

  let vertex_count b = b.bn
  let edge_count b = b.bm

  let add_edge b u v =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg
        (Printf.sprintf "Graph.make: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u);
    if b.bm = Array.length b.beu then begin
      let cap = 2 * b.bm in
      let eu = Array.make cap 0 and ev = Array.make cap 0 in
      Array.blit b.beu 0 eu 0 b.bm;
      Array.blit b.bev 0 ev 0 b.bm;
      b.beu <- eu;
      b.bev <- ev
    end;
    if u < v then begin
      b.beu.(b.bm) <- u;
      b.bev.(b.bm) <- v
    end
    else begin
      b.beu.(b.bm) <- v;
      b.bev.(b.bm) <- u
    end;
    b.bm <- b.bm + 1

  let finish b = build ~n:b.bn b.beu b.bev b.bm
end

let make ~n edge_list =
  let b = Builder.create ~edges_hint:(List.length edge_list) ~n () in
  List.iter (fun (u, v) -> Builder.add_edge b u v) edge_list;
  Builder.finish b

let n g = g.n
let m g = g.m

let check_id g id =
  if id < 0 || id >= g.m then
    invalid_arg (Printf.sprintf "Graph.edge: id %d out of range" id)

let edge g id =
  check_id g id;
  { u = g.eu.(id); v = g.ev.(id) }

let edges g = Array.init g.m (fun id -> { u = g.eu.(id); v = g.ev.(id) })

let endpoints g id =
  check_id g id;
  (g.eu.(id), g.ev.(id))

let edge_u g id = g.eu.(id)
let edge_v g id = g.ev.(id)
let degree g v = g.off.(v + 1) - g.off.(v)

let find_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n || u = v then None
  else begin
    (* Binary search the sorted row of the lower-degree endpoint. *)
    let a, target = if degree g u <= degree g v then (u, v) else (v, u) in
    let rec search lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let w = g.nbr.(mid) in
        if w = target then Some g.eid.(mid)
        else if w < target then search (mid + 1) hi
        else search lo mid
    in
    search g.off.(a) g.off.(a + 1)
  end

let is_adjacent g u v = Option.is_some (find_edge g u v)
let neighbors g v = Array.sub g.nbr g.off.(v) (degree g v)
let incident_edges g v = Array.sub g.eid g.off.(v) (degree g v)

let iter_neighbors g v ~f =
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    f g.nbr.(i)
  done

let fold_neighbors g v ~init ~f =
  let acc = ref init in
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    acc := f !acc g.nbr.(i)
  done;
  !acc

let iter_incident g v ~f =
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    f g.nbr.(i) g.eid.(i)
  done

let fold_incident g v ~init ~f =
  let acc = ref init in
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    acc := f !acc g.nbr.(i) g.eid.(i)
  done;
  !acc

let opposite g id v =
  check_id g id;
  if g.eu.(id) = v then g.ev.(id)
  else if g.ev.(id) = v then g.eu.(id)
  else
    invalid_arg
      (Printf.sprintf "Graph.opposite: %d not an endpoint of edge %d" v id)

let fold_vertices g ~init ~f =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let iter_vertices g ~f =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  for id = 0 to g.m - 1 do
    acc := f !acc id { u = g.eu.(id); v = g.ev.(id) }
  done;
  !acc

let iter_edges g ~f =
  for id = 0 to g.m - 1 do
    f id { u = g.eu.(id); v = g.ev.(id) }
  done

let isolated_vertices g =
  List.rev
    (fold_vertices g ~init:[] ~f:(fun acc v ->
         if degree g v = 0 then v :: acc else acc))

let has_isolated_vertex g =
  let rec scan v = v < g.n && (degree g v = 0 || scan (v + 1)) in
  scan 0

let neighborhood g vs =
  let mark = Array.make g.n false in
  List.iter (fun v -> iter_neighbors g v ~f:(fun w -> mark.(w) <- true)) vs;
  let out = ref [] in
  for v = g.n - 1 downto 0 do
    if mark.(v) then out := v :: !out
  done;
  !out

let edge_subgraph g ids =
  let ids = List.sort_uniq Int.compare ids in
  let b = Builder.create ~edges_hint:(List.length ids) ~n:g.n () in
  List.iter
    (fun id ->
      check_id g id;
      Builder.add_edge b g.eu.(id) g.ev.(id))
    ids;
  (Builder.finish b, Array.of_list ids)

(* Rows are neighbor-sorted, so walking the upper adjacency in vertex
   order streams the edge set as sorted packed keys. *)
let sorted_keys g =
  let ks = Array.make (max g.m 1) 0 in
  let j = ref 0 in
  for v = 0 to g.n - 1 do
    for i = g.off.(v) to g.off.(v + 1) - 1 do
      let w = g.nbr.(i) in
      if w > v then begin
        ks.(!j) <- (v lsl 31) lor w;
        incr j
      end
    done
  done;
  ks

let equal a b =
  a.n = b.n && a.m = b.m
  &&
  let ka = sorted_keys a and kb = sorted_keys b in
  let ok = ref true in
  for i = 0 to a.m - 1 do
    if ka.(i) <> kb.(i) then ok := false
  done;
  !ok

let pp fmt g =
  Format.fprintf fmt "@[<hov 2>graph(n=%d, m=%d:" g.n g.m;
  for id = 0 to g.m - 1 do
    Format.fprintf fmt "@ %d-%d" g.eu.(id) g.ev.(id)
  done;
  Format.fprintf fmt ")@]"
