(** Graph generators: the topology atlas used by the experiments.

    Deterministic families take sizes; random families take an explicit
    {!Prng.Rng.t} so every experiment is reproducible from a seed.  All
    generators produce simple graphs; families documented as connected and
    isolated-vertex-free satisfy the Tuple model's instance requirements. *)

(** Path [0-1-...-(n-1)]. @raise Invalid_argument if [n < 2]. *)
val path : int -> Graph.t

(** Cycle on [n] vertices. @raise Invalid_argument if [n < 3]. *)
val cycle : int -> Graph.t

(** Star: centre [0], leaves [1..n-1]. @raise Invalid_argument if [n < 2]. *)
val star : int -> Graph.t

(** Complete graph K_n. @raise Invalid_argument if [n < 2]. *)
val complete : int -> Graph.t

(** Complete bipartite K_{a,b}; side A is [0..a-1].
    @raise Invalid_argument if [a < 1 || b < 1]. *)
val complete_bipartite : int -> int -> Graph.t

(** [grid rows cols] is the rows×cols king-free lattice (4-neighbour grid).
    @raise Invalid_argument unless both dimensions are positive and
    [rows * cols >= 2]. *)
val grid : int -> int -> Graph.t

(** Hypercube Q_d on [2^d] vertices. @raise Invalid_argument if [d < 1]. *)
val hypercube : int -> Graph.t

(** Perfect binary tree of the given depth (depth 1 = single edge root/two
    leaves... depth d has [2^(d+1)-1] vertices). @raise Invalid_argument if
    [depth < 1]. *)
val binary_tree : int -> Graph.t

(** Erdős–Rényi G(n, p): each pair independently an edge.  Not necessarily
    connected. @raise Invalid_argument if [n < 1] or [p] outside [0,1]. *)
val gnp : Prng.Rng.t -> n:int -> p:float -> Graph.t

(** Connected G(n, p): a uniform random spanning tree first, then each
    remaining pair with probability [p].  Always connected, no isolated
    vertices. @raise Invalid_argument as {!gnp}, and [n >= 2]. *)
val gnp_connected : Prng.Rng.t -> n:int -> p:float -> Graph.t

(** Random bipartite graph with sides [a], [b]: each cross pair with
    probability [p], then augmented with a random cross spanning structure
    so the result is connected. @raise Invalid_argument if sides are not
    positive or [p] outside [0,1]. *)
val random_bipartite : Prng.Rng.t -> a:int -> b:int -> p:float -> Graph.t

(** Uniform random labelled tree on [n] vertices (Prüfer sequence).
    @raise Invalid_argument if [n < 2]. *)
val random_tree : Prng.Rng.t -> n:int -> Graph.t

(** Random d-regular graph via the configuration model with restarts
    (simple, no self-loops).  @raise Invalid_argument if [n * d] is odd,
    [d < 1], or [d >= n]. *)
val random_regular : Prng.Rng.t -> n:int -> d:int -> Graph.t

(** Two-tier "enterprise" topology: [core] fully-meshed backbone vertices,
    [leaves] hosts each attached to [uplinks] distinct core vertices.
    Connected, bipartite iff core mesh is trivial. Used by the example
    scenarios. @raise Invalid_argument if [core < 1], [leaves < 0] or
    [uplinks] not in [1..core]. *)
val enterprise : Prng.Rng.t -> core:int -> leaves:int -> uplinks:int -> Graph.t

(** Wheel W_n: cycle on [n-1] outer vertices plus hub 0.
    @raise Invalid_argument if [n < 4]. *)
val wheel : int -> Graph.t

(** Complete multipartite graph with the given part sizes; vertices are
    numbered part by part. @raise Invalid_argument with fewer than two
    parts or a non-positive part. *)
val complete_multipartite : int list -> Graph.t

(** Barbell: two K_a cliques joined by a path of [bridge] intermediate
    vertices ([bridge = 0] joins them by a single edge).
    @raise Invalid_argument if [a < 3] or [bridge < 0]. *)
val barbell : int -> bridge:int -> Graph.t

(** Lollipop: K_a with a pendant path of [tail] vertices.
    @raise Invalid_argument if [a < 3] or [tail < 1]. *)
val lollipop : int -> tail:int -> Graph.t

(** Caterpillar: a spine path of [spine] vertices with [legs] pendant
    leaves on each spine vertex.  Always a tree.
    @raise Invalid_argument if [spine < 1], [legs < 0], or the result has
    fewer than two vertices. *)
val caterpillar : spine:int -> legs:int -> Graph.t

(** The Petersen graph (3-regular, girth 5, non-bipartite, n = 10). *)
val petersen : unit -> Graph.t

(** [preferential_attachment rng ~n ~c] grows a Barabási–Albert-style
    graph: a seed edge [{0, 1}], then each vertex [i >= 2] attaches to
    [min c i] distinct earlier vertices drawn proportionally to their
    current degree (endpoint-multiset sampling — O(m), no quadratic
    scan).  The result is connected with
    [m = 1 + sum_{i=2}^{n-1} min c i]; in particular [c = 1] yields a
    random recursive tree with [m = n - 1].
    @raise Invalid_argument unless [n >= 2] and [c >= 1]. *)
val preferential_attachment : Prng.Rng.t -> n:int -> c:int -> Graph.t

(** [chung_lu rng ~n ~gamma ~avg_degree] samples the Chung–Lu model
    with power-law expected degrees [w_i] proportional to
    [(i+1)^(-1/(gamma-1))] (degree-distribution exponent [gamma]),
    scaled to mean [avg_degree] and capped so every pair probability
    [w_u w_v / sum w] is at most 1.  Uses Miller–Hagberg geometric
    skipping: O(n + m) expected work, not O(n^2).
    @raise Invalid_argument unless [n >= 1], [gamma > 2] and
    [avg_degree > 0]. *)
val chung_lu : Prng.Rng.t -> n:int -> gamma:float -> avg_degree:float -> Graph.t

(** [random_bipartite_sparse rng ~a ~b ~d] puts sides [{0..a-1}] and
    [{a..a+b-1}]; each left vertex picks [d] distinct uniform right
    neighbors, so [m = a * d] exactly.  O(m) for [d] well below [b],
    O(a * b) at worst — unlike {!random_bipartite}, which is always
    quadratic in the side sizes.
    @raise Invalid_argument unless both sides are positive and
    [1 <= d <= b]. *)
val random_bipartite_sparse : Prng.Rng.t -> a:int -> b:int -> d:int -> Graph.t

(** The atlas: named deterministic instances of bounded size used by tests
    and tables ([name, graph] pairs, sizes suitable for brute force). *)
val atlas_small : unit -> (string * Graph.t) list

(** Larger named instances for scaling figures. *)
val atlas_large : seed:int -> (string * Graph.t) list
