(* Connected induced-subgraph enumeration (the connected-subgraph
   defender's strategy space).  The enumerator is the classic ESU walk:
   each subset is discovered exactly once, anchored at its minimum
   vertex, by growing an extension frontier restricted to vertices
   larger than the anchor that have not been touched on the current
   branch. *)

let check_vertex g v =
  if v < 0 || v >= Graph.n g then
    invalid_arg (Printf.sprintf "Induced: vertex %d out of range" v)

let is_connected_subset g vs =
  List.iter (check_vertex g) vs;
  match List.sort_uniq compare vs with
  | [] -> false
  | start :: _ as vs ->
      let in_set = Array.make (Graph.n g) false in
      List.iter (fun v -> in_set.(v) <- true) vs;
      let seen = Array.make (Graph.n g) false in
      let rec walk v =
        if not seen.(v) then begin
          seen.(v) <- true;
          Graph.iter_neighbors g v ~f:(fun u -> if in_set.(u) then walk u)
        end
      in
      walk start;
      List.for_all (fun v -> seen.(v)) vs

exception Stop

let fold_connected_subsets g ~size ~init ~f =
  let n = Graph.n g in
  if size < 1 || size > n then
    invalid_arg
      (Printf.sprintf "Induced.fold_connected_subsets: size %d outside [1, %d]"
         size n);
  let acc = ref init in
  let sub = Array.make size 0 in
  (* [seen.(u)] — u is the anchor, in the subset, or already on the
     extension frontier of the current branch (so it must not re-enter). *)
  let seen = Array.make n false in
  for anchor = 0 to n - 1 do
    seen.(anchor) <- true;
    sub.(0) <- anchor;
    (* Candidates above the anchor adjacent to some subset vertex. *)
    let admit u = u > anchor && not seen.(u) in
    let rec extend depth ext =
      if depth = size then
        acc := f !acc (List.sort compare (Array.to_list sub))
      else
        (* Consume the frontier left to right: recursing on [w] sees the
           remaining frontier plus w's fresh neighbours; siblings to the
           right never re-admit w (it stays marked), which is what makes
           each subset come out exactly once. *)
        let rec consume = function
          | [] -> ()
          | w :: rest ->
              sub.(depth) <- w;
              let added =
                Graph.fold_neighbors g w ~init:[] ~f:(fun fresh u ->
                    if admit u then begin
                      seen.(u) <- true;
                      u :: fresh
                    end
                    else fresh)
              in
              let added = List.rev added in
              extend (depth + 1) (rest @ added);
              List.iter (fun u -> seen.(u) <- false) added;
              consume rest
        in
        consume ext
    in
    let frontier =
      Graph.fold_neighbors g anchor ~init:[] ~f:(fun fr u ->
          if admit u then begin
            seen.(u) <- true;
            u :: fr
          end
          else fr)
    in
    let frontier = List.rev frontier in
    extend 1 frontier;
    List.iter (fun u -> seen.(u) <- false) frontier;
    seen.(anchor) <- false
  done;
  !acc

let count_connected_subsets g ~size ~limit =
  let count = ref 0 in
  match
    fold_connected_subsets g ~size ~init:() ~f:(fun () _ ->
        incr count;
        if !count > limit then raise Stop)
  with
  | () -> Some !count
  | exception Stop -> None
