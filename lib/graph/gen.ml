module Rng = Prng.Rng

let path n =
  if n < 2 then invalid_arg "Gen.path: need n >= 2";
  Graph.make ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.make ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let star n =
  if n < 2 then invalid_arg "Gen.star: need n >= 2";
  Graph.make ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  if n < 2 then invalid_arg "Gen.complete: need n >= 2";
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Gen.complete_bipartite: need positive sides";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n:(a + b) !edges

let grid rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Gen.grid: need positive dimensions and >= 2 vertices";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.make ~n:(rows * cols) !edges

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube: need d >= 1";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  Graph.make ~n !edges

let binary_tree depth =
  if depth < 1 then invalid_arg "Gen.binary_tree: need depth >= 1";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / 2, v) :: !edges
  done;
  Graph.make ~n !edges

let check_p p = if p < 0.0 || p > 1.0 then invalid_arg "Gen: p outside [0,1]"

let gnp rng ~n ~p =
  if n < 1 then invalid_arg "Gen.gnp: need n >= 1";
  check_p p;
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Rng.bool_with_prob rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n !edges

let random_tree rng ~n =
  if n < 2 then invalid_arg "Gen.random_tree: need n >= 2";
  if n = 2 then Graph.make ~n [ (0, 1) ]
  else begin
    (* Decode a uniformly random Prüfer sequence. *)
    let seq = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let module Pq = Set.Make (Int) in
    let leaves = ref Pq.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := Pq.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = Pq.min_elt !leaves in
        leaves := Pq.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := Pq.add v !leaves)
      seq;
    (match Pq.elements !leaves with
    | [ a; b ] -> edges := (a, b) :: !edges
    | _ -> assert false);
    Graph.make ~n !edges
  end

let gnp_connected rng ~n ~p =
  if n < 2 then invalid_arg "Gen.gnp_connected: need n >= 2";
  check_p p;
  let tree = random_tree rng ~n in
  let edges = ref (Array.to_list (Array.map (fun e -> (e.Graph.u, e.Graph.v)) (Graph.edges tree))) in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if (not (Graph.is_adjacent tree u v)) && Rng.bool_with_prob rng p then
        edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n !edges

let random_bipartite rng ~a ~b ~p =
  if a < 1 || b < 1 then invalid_arg "Gen.random_bipartite: need positive sides";
  check_p p;
  let n = a + b in
  let present = Hashtbl.create (a * b / 2) in
  let edges = ref [] in
  let add u v =
    if not (Hashtbl.mem present (u, v)) then begin
      Hashtbl.add present (u, v) ();
      edges := (u, v) :: !edges
    end
  in
  for u = 0 to a - 1 do
    for v = a to n - 1 do
      if Rng.bool_with_prob rng p then add u v
    done
  done;
  (* Connectivity repair: chain the sides with a random zig-zag so the
     bipartition stays intact. *)
  let left = Rng.shuffle rng (Array.init a (fun i -> i)) in
  let right = Rng.shuffle rng (Array.init b (fun i -> a + i)) in
  let steps = max a b in
  for i = 0 to steps - 1 do
    let u = left.(i mod a) and v = right.(i mod b) in
    add u v
  done;
  for i = 0 to steps - 2 do
    let u = left.((i + 1) mod a) and v = right.(i mod b) in
    add u v
  done;
  Graph.make ~n !edges

let random_regular rng ~n ~d =
  if d < 1 || d >= n then invalid_arg "Gen.random_regular: need 1 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Gen.random_regular: n * d must be even";
  (* Configuration model with restarts until the pairing is simple. *)
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      stubs.((v * d) + i) <- v
    done
  done;
  let rec attempt tries =
    if tries > 5000 then failwith "Gen.random_regular: too many restarts";
    let perm = Rng.shuffle rng stubs in
    let seen = Hashtbl.create (n * d) in
    let ok = ref true in
    let edges = ref [] in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = perm.(!i) and v = perm.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        edges := (u, v) :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Graph.make ~n !edges else attempt (tries + 1)
  in
  attempt 0

let enterprise rng ~core ~leaves ~uplinks =
  if core < 1 then invalid_arg "Gen.enterprise: need core >= 1";
  if leaves < 0 then invalid_arg "Gen.enterprise: negative leaves";
  if uplinks < 1 || uplinks > core then
    invalid_arg "Gen.enterprise: uplinks must be in [1, core]";
  let n = core + leaves in
  let edges = ref [] in
  for u = 0 to core - 2 do
    for v = u + 1 to core - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let core_ids = Array.init core (fun i -> i) in
  for leaf = core to n - 1 do
    let ups = Rng.sample_without_replacement rng ~count:uplinks core_ids in
    Array.iter (fun c -> edges := (c, leaf) :: !edges) ups
  done;
  if core = 1 && leaves = 0 then invalid_arg "Gen.enterprise: single isolated vertex";
  Graph.make ~n !edges

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: need n >= 4";
  let outer = n - 1 in
  let rim = List.init outer (fun i -> (1 + i, 1 + ((i + 1) mod outer))) in
  let spokes = List.init outer (fun i -> (0, 1 + i)) in
  Graph.make ~n (rim @ spokes)

let complete_multipartite parts =
  if List.length parts < 2 then
    invalid_arg "Gen.complete_multipartite: need at least two parts";
  List.iter
    (fun p -> if p < 1 then invalid_arg "Gen.complete_multipartite: empty part")
    parts;
  let n = List.fold_left ( + ) 0 parts in
  let part_of = Array.make n 0 in
  let _ =
    List.fold_left
      (fun (index, v) size ->
        for i = v to v + size - 1 do
          part_of.(i) <- index
        done;
        (index + 1, v + size))
      (0, 0) parts
  in
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if part_of.(u) <> part_of.(v) then edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n !edges

let clique_edges offset a =
  let edges = ref [] in
  for u = 0 to a - 2 do
    for v = u + 1 to a - 1 do
      edges := (offset + u, offset + v) :: !edges
    done
  done;
  !edges

let barbell a ~bridge =
  if a < 3 then invalid_arg "Gen.barbell: need cliques of size >= 3";
  if bridge < 0 then invalid_arg "Gen.barbell: negative bridge";
  let n = (2 * a) + bridge in
  let left = clique_edges 0 a and right = clique_edges (a + bridge) a in
  (* chain: last-left-vertex (a-1) — bridge vertices — first right vertex *)
  let chain =
    List.init (bridge + 1) (fun i -> (a - 1 + i, a + i))
  in
  Graph.make ~n (left @ right @ chain)

let lollipop a ~tail =
  if a < 3 then invalid_arg "Gen.lollipop: need clique of size >= 3";
  if tail < 1 then invalid_arg "Gen.lollipop: need tail >= 1";
  let n = a + tail in
  let path = List.init tail (fun i -> (a - 1 + i, a + i)) in
  Graph.make ~n (clique_edges 0 a @ path)

let caterpillar ~spine ~legs =
  if spine < 1 then invalid_arg "Gen.caterpillar: need spine >= 1";
  if legs < 0 then invalid_arg "Gen.caterpillar: negative legs";
  let n = spine * (1 + legs) in
  if n < 2 then invalid_arg "Gen.caterpillar: need at least two vertices";
  let spine_edges = List.init (spine - 1) (fun i -> (i, i + 1)) in
  let leg_edges =
    List.concat
      (List.init spine (fun s ->
           List.init legs (fun l -> (s, spine + (s * legs) + l))))
  in
  Graph.make ~n (spine_edges @ leg_edges)

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.make ~n:10 (outer @ spokes @ inner)

let atlas_small () =
  [
    ("path-4", path 4);
    ("path-7", path 7);
    ("cycle-5", cycle 5);
    ("cycle-8", cycle 8);
    ("star-6", star 6);
    ("complete-4", complete 4);
    ("complete-5", complete 5);
    ("K(2,3)", complete_bipartite 2 3);
    ("K(3,3)", complete_bipartite 3 3);
    ("grid-2x3", grid 2 3);
    ("grid-3x3", grid 3 3);
    ("hypercube-3", hypercube 3);
    ("binary-tree-2", binary_tree 2);
    ("binary-tree-3", binary_tree 3);
    ("wheel-6", wheel 6);
    ("K(2,2,2)", complete_multipartite [ 2; 2; 2 ]);
    ("barbell-3", barbell 3 ~bridge:1);
    ("lollipop-4+3", lollipop 4 ~tail:3);
    ("caterpillar-3x2", caterpillar ~spine:3 ~legs:2);
    ("petersen", petersen ());
  ]

let atlas_large ~seed =
  let rng = Rng.create seed in
  [
    ("path-200", path 200);
    ("cycle-200", cycle 200);
    ("star-200", star 200);
    ("grid-12x12", grid 12 12);
    ("hypercube-7", hypercube 7);
    ("K(20,30)", complete_bipartite 20 30);
    ("tree-150", random_tree rng ~n:150);
    ("gnp-120", gnp_connected rng ~n:120 ~p:0.05);
    ("bipartite-60+80", random_bipartite rng ~a:60 ~b:80 ~p:0.05);
    ("regular-100x4", random_regular rng ~n:100 ~d:4);
    ("enterprise-8+80", enterprise rng ~core:8 ~leaves:80 ~uplinks:2);
  ]

(* --- scalable generators (Builder-based, O(m), no quadratic scans) --- *)

let preferential_attachment rng ~n ~c =
  if n < 2 then invalid_arg "Gen.preferential_attachment: need n >= 2";
  if c < 1 then invalid_arg "Gen.preferential_attachment: need c >= 1";
  let total = ref 1 in
  for i = 2 to n - 1 do
    total := !total + min c i
  done;
  let b = Graph.Builder.create ~edges_hint:!total ~n () in
  (* Endpoint multiset: each vertex appears once per unit of degree, so
     a uniform draw from the prefix is a degree-proportional draw. *)
  let targets = Array.make (2 * !total) 0 in
  let tsize = ref 0 in
  let push v =
    targets.(!tsize) <- v;
    incr tsize
  in
  Graph.Builder.add_edge b 0 1;
  push 0;
  push 1;
  let chosen = Array.make (min c (n - 1)) (-1) in
  for i = 2 to n - 1 do
    let want = min c i in
    let cnt = ref 0 in
    while !cnt < want do
      let cand = targets.(Rng.int rng !tsize) in
      let dup = ref false in
      for j = 0 to !cnt - 1 do
        if chosen.(j) = cand then dup := true
      done;
      if not !dup then begin
        chosen.(!cnt) <- cand;
        incr cnt
      end
    done;
    for j = 0 to want - 1 do
      Graph.Builder.add_edge b chosen.(j) i;
      push chosen.(j);
      push i
    done
  done;
  Graph.Builder.finish b

let chung_lu rng ~n ~gamma ~avg_degree =
  if n < 1 then invalid_arg "Gen.chung_lu: need n >= 1";
  if gamma <= 2.0 then invalid_arg "Gen.chung_lu: need gamma > 2";
  if avg_degree <= 0.0 then invalid_arg "Gen.chung_lu: need avg_degree > 0";
  (* Power-law expected degrees w_i proportional to (i+1)^(-1/(gamma-1)),
     scaled to the requested mean and capped at sqrt(S) so that every
     pair probability w_u * w_v / S stays at most 1. *)
  let alpha = 1.0 /. (gamma -. 1.0) in
  let w = Array.init n (fun i -> float_of_int (i + 1) ** -.alpha) in
  let sum = Array.fold_left ( +. ) 0.0 w in
  let scale = avg_degree *. float_of_int n /. sum in
  let s = avg_degree *. float_of_int n in
  let cap = sqrt s in
  for i = 0 to n - 1 do
    w.(i) <- Float.min (w.(i) *. scale) cap
  done;
  (* Miller-Hagberg geometric skipping over each row u: weights are
     sorted decreasing, so the pair probability is monotone in v and a
     skip length drawn at the current probability, corrected by a
     q/p acceptance test, visits O(m) candidate pairs in total. *)
  let b = Graph.Builder.create ~edges_hint:(int_of_float (s /. 2.0) + n) ~n () in
  let u = ref 0 in
  while !u < n - 1 do
    let wu = w.(!u) in
    let v = ref (!u + 1) in
    let p = ref (Float.min 1.0 (wu *. w.(!v) /. s)) in
    while !v < n && !p > 0.0 do
      if !p < 1.0 then begin
        let r = Rng.float rng in
        let fskip = floor (log1p (-.r) /. log1p (-. !p)) in
        (* The skip can exceed the row on tiny probabilities; saturate
           instead of trusting int_of_float on a huge float. *)
        if fskip >= float_of_int (n - !v) then v := n
        else v := !v + int_of_float fskip
      end;
      if !v < n then begin
        let q = Float.min 1.0 (wu *. w.(!v) /. s) in
        if Rng.float rng < q /. !p then Graph.Builder.add_edge b !u !v;
        p := q;
        incr v
      end
    done;
    incr u
  done;
  Graph.Builder.finish b

let random_bipartite_sparse rng ~a ~b ~d =
  if a < 1 || b < 1 then
    invalid_arg "Gen.random_bipartite_sparse: need positive sides";
  if d < 1 || d > b then
    invalid_arg "Gen.random_bipartite_sparse: need 1 <= d <= b";
  let bd = Graph.Builder.create ~edges_hint:(a * d) ~n:(a + b) () in
  let chosen = Array.make d (-1) in
  for u = 0 to a - 1 do
    if 2 * d > b then begin
      (* Dense side: draw without replacement instead of retrying. *)
      let rights = Array.init b (fun i -> a + i) in
      let picks = Rng.sample_without_replacement rng ~count:d rights in
      Array.iter (fun v -> Graph.Builder.add_edge bd u v) picks
    end
    else begin
      let cnt = ref 0 in
      while !cnt < d do
        let cand = a + Rng.int rng b in
        let dup = ref false in
        for j = 0 to !cnt - 1 do
          if chosen.(j) = cand then dup := true
        done;
        if not !dup then begin
          chosen.(!cnt) <- cand;
          incr cnt
        end
      done;
      for j = 0 to d - 1 do
        Graph.Builder.add_edge bd u chosen.(j)
      done
    end
  done;
  Graph.Builder.finish bd
