type coloring = {
  side_a : Graph.vertex list;
  side_b : Graph.vertex list;
  color : int array;
}

(* BFS 2-colouring; also retains parents so a failure yields an odd cycle. *)
let attempt g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let conflict = ref None in
  let queue = Queue.create () in
  (try
     for root = 0 to n - 1 do
       if color.(root) < 0 then begin
         color.(root) <- 0;
         Queue.add root queue;
         while not (Queue.is_empty queue) do
           let v = Queue.pop queue in
           Graph.iter_neighbors g v ~f:(fun w ->
               if color.(w) < 0 then begin
                 color.(w) <- 1 - color.(v);
                 parent.(w) <- v;
                 Queue.add w queue
               end
               else if color.(w) = color.(v) then begin
                 conflict := Some (v, w);
                 raise Exit
               end)
         done
       end
     done
   with Exit -> ());
  (color, parent, !conflict)

let coloring g =
  let color, _, conflict = attempt g in
  match conflict with
  | Some _ -> None
  | None ->
      let side_a = ref [] and side_b = ref [] in
      for v = Graph.n g - 1 downto 0 do
        if color.(v) = 0 then side_a := v :: !side_a else side_b := v :: !side_b
      done;
      Some { side_a = !side_a; side_b = !side_b; color }

let is_bipartite g = Option.is_some (coloring g)

let odd_cycle g =
  let _, parent, conflict = attempt g in
  match conflict with
  | None -> None
  | Some (v, w) ->
      (* Climb to the lowest common ancestor in the BFS forest. *)
      let ancestors u =
        let rec up u acc = if u < 0 then acc else up parent.(u) (u :: acc) in
        up u []
      in
      let pa = ancestors v and pb = ancestors w in
      let rec common a b last =
        match (a, b) with
        | x :: a', y :: b' when x = y -> common a' b' (Some x)
        | _ -> (last, a, b)
      in
      (match common pa pb None with
      | Some lca, rest_a, rest_b ->
          let cycle = (lca :: rest_a) @ List.rev (lca :: rest_b) in
          (* cycle runs lca .. v, w .. lca; the v-w edge closes it. *)
          Some cycle
      | None, _, _ -> assert false)
