(* graph6 / sparse6 codecs (McKay's formats).  Both share the same
   printable-ASCII size header: one byte for n <= 62, '~' + 3 bytes
   (18-bit) for n <= 258047, "~~" + 6 bytes (36-bit) beyond.  Decoding
   streams straight into a Graph.Builder — no intermediate edge list —
   so a million-edge sparse6 line materializes exactly one CSR graph. *)

(* The CSR substrate packs endpoints into 31 bits, so anything beyond
   2^31 - 1 vertices is rejected up front rather than misparsed. *)
let max_n = 0x7FFFFFFF

let strip_newline line =
  match String.index_opt line '\n' with
  | Some i -> String.sub line 0 i
  | None -> line

let byte line len i =
  if i >= len then invalid_arg "Graph6.decode: truncated input";
  let c = Char.code line.[i] in
  if c < 63 || c > 126 then invalid_arg "Graph6.decode: invalid character";
  c - 63

(* Parse a size header at [pos]; returns (n, position after header). *)
let parse_size line len pos =
  let byte = byte line len in
  if byte pos < 63 then (byte pos, pos + 1)
  else if byte (pos + 1) < 63 then
    (* '~' prefix: 18-bit size in the next three bytes. *)
    ( (byte (pos + 1) lsl 12) lor (byte (pos + 2) lsl 6) lor byte (pos + 3),
      pos + 4 )
  else begin
    (* "~~" prefix: 36-bit size in the next six bytes.  (byte at pos+1
       = 63 can only be the second '~' — the 18-bit form would put the
       top size bits there, and 63 is outside their range.) *)
    let v = ref 0 in
    for i = pos + 2 to pos + 7 do
      v := (!v lsl 6) lor byte i
    done;
    (!v, pos + 8)
  end

let add_size buf ~force_long n =
  if force_long || n > 258047 then begin
    Buffer.add_char buf '~';
    Buffer.add_char buf '~';
    for i = 5 downto 0 do
      Buffer.add_char buf (Char.chr (((n lsr (6 * i)) land 63) + 63))
    done
  end
  else if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end

let encode ?(force_long = false) g =
  let n = Graph.n g in
  let buf = Buffer.create (8 + (n * n / 12)) in
  add_size buf ~force_long n;
  (* Upper-triangle bits in column order: (0,1), (0,2), (1,2), (0,3), ...
     Column j's bits come from a scratch mark array filled from row j —
     O(n^2 + m) overall instead of n^2/2 binary searches. *)
  let acc = ref 0 and filled = ref 0 in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr filled;
    if !filled = 6 then begin
      Buffer.add_char buf (Char.chr (!acc + 63));
      acc := 0;
      filled := 0
    end
  in
  let mark = Array.make (max n 1) false in
  for j = 1 to n - 1 do
    Graph.iter_neighbors g j ~f:(fun i -> if i < j then mark.(i) <- true);
    for i = 0 to j - 1 do
      push (if mark.(i) then 1 else 0)
    done;
    Graph.iter_neighbors g j ~f:(fun i -> if i < j then mark.(i) <- false)
  done;
  if !filled > 0 then
    Buffer.add_char buf (Char.chr ((!acc lsl (6 - !filled)) + 63));
  Buffer.contents buf

let decode_graph6 line =
  let line = strip_newline line in
  let len = String.length line in
  if len = 0 then invalid_arg "Graph6.decode: empty input";
  let byte = byte line len in
  let n, start = parse_size line len 0 in
  if n > max_n then invalid_arg "Graph6.decode: graph too large";
  let bits_needed = n * (n - 1) / 2 in
  let data_bytes = (bits_needed + 5) / 6 in
  let bit idx =
    let b = byte (start + (idx / 6)) in
    (b lsr (5 - (idx mod 6))) land 1
  in
  if data_bytes > len - start then
    invalid_arg "Graph6.decode: truncated adjacency data";
  if len - start > data_bytes then
    invalid_arg "Graph6.decode: trailing bytes after adjacency data";
  let padding = (data_bytes * 6) - bits_needed in
  if padding > 0 && byte (start + data_bytes - 1) land ((1 lsl padding) - 1) <> 0
  then invalid_arg "Graph6.decode: nonzero padding bits";
  let b = Graph.Builder.create ~n () in
  let idx = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit !idx = 1 then Graph.Builder.add_edge b i j;
      incr idx
    done
  done;
  Graph.Builder.finish b

(* Number of bits nauty uses for a sparse6 vertex index: enough to
   represent n-1, and at least 1. *)
let index_bits n =
  let k = ref 1 in
  while n - 1 >= 1 lsl !k do
    incr k
  done;
  !k

let decode_sparse6 line =
  let line = strip_newline line in
  let len = String.length line in
  if len = 0 then invalid_arg "Graph6.decode: empty input";
  if line.[0] <> ':' then
    invalid_arg "Graph6.decode: sparse6 input must start with ':'";
  let n, start = parse_size line len 1 in
  if n > max_n then invalid_arg "Graph6.decode: graph too large";
  let byte = byte line len in
  let total_bits = (len - start) * 6 in
  let bit idx =
    let b = byte (start + (idx / 6)) in
    (b lsr (5 - (idx mod 6))) land 1
  in
  let k = index_bits n in
  let b = Graph.Builder.create ~n () in
  let pos = ref 0 and v = ref 0 in
  (* (b, x) groups: b increments the current vertex, x > v jumps to x,
     x < v adds the edge {x, v}.  An incomplete trailing group and
     anything after the current vertex leaves the range are padding. *)
  (try
     while !pos + 1 + k <= total_bits && !v < n do
       let bflag = bit !pos in
       let x = ref 0 in
       for i = !pos + 1 to !pos + k do
         x := (!x lsl 1) lor bit i
       done;
       pos := !pos + 1 + k;
       if bflag = 1 then incr v;
       if !v >= n then raise Exit
       else if !x > !v then
         if !x >= n then raise Exit else v := !x
       else if !x = !v then
         invalid_arg "Graph6.decode: sparse6 self-loop"
       else Graph.Builder.add_edge b !x !v
     done
   with Exit -> ());
  Graph.Builder.finish b

let encode_sparse6 g =
  let n = Graph.n g in
  let buf = Buffer.create 32 in
  Buffer.add_char buf ':';
  add_size buf ~force_long:false n;
  let k = index_bits n in
  let acc = ref 0 and filled = ref 0 in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr filled;
    if !filled = 6 then begin
      Buffer.add_char buf (Char.chr (!acc + 63));
      acc := 0;
      filled := 0
    end
  in
  let push_val x =
    for i = k - 1 downto 0 do
      push ((x lsr i) land 1)
    done
  in
  (* Edges sorted by (larger endpoint, smaller endpoint) are exactly
     the lower-adjacency prefixes of the CSR rows in vertex order. *)
  let cur = ref 0 in
  for v = 0 to n - 1 do
    Graph.iter_neighbors g v ~f:(fun u ->
        if u < v then
          if v = !cur then begin
            push 0;
            push_val u
          end
          else if v = !cur + 1 then begin
            cur := v;
            push 1;
            push_val u
          end
          else begin
            cur := v;
            push 1;
            push_val v;
            push 0;
            push_val u
          end)
  done;
  if !filled > 0 then begin
    (* nauty's padding rule: fill with 1s, except that when n is a
       power of two, at least k+1 padding bits remain, and the current
       vertex is n-2, a single 0 bit goes first — all-ones padding
       would otherwise decode as the edge {n-1, n-1}. *)
    let r = 6 - !filled in
    if r >= k + 1 && n >= 2 && n land (n - 1) = 0 && !cur = n - 2 then push 0;
    while !filled > 0 do
      push 1
    done
  end;
  Buffer.contents buf

let decode line =
  let stripped = strip_newline line in
  if String.length stripped > 0 && stripped.[0] = ':' then
    decode_sparse6 stripped
  else decode_graph6 stripped

(* --- canonical labeling --- *)

(* Iterated degree refinement (1-WL color refinement): a vertex's
   signature is its current color plus the sorted multiset of its
   neighbors' colors; vertices are renumbered by sorted signature until
   the partition stops splitting.  The signature order depends only on
   color values, never on vertex indices, so the resulting coloring is
   invariant under relabeling — the property the Daemon's cache key
   rests on. *)
let refine g colors =
  let n = Graph.n g in
  let rec go colors ncolors =
    let sigs =
      Array.init n (fun v ->
          ( colors.(v),
            List.sort compare
              (Graph.fold_neighbors g v ~init:[] ~f:(fun acc w ->
                   colors.(w) :: acc)) ))
    in
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare sigs.(a) sigs.(b)) order;
    let colors' = Array.make n 0 in
    let c = ref 0 in
    Array.iteri
      (fun i v ->
        if i > 0 && compare sigs.(order.(i - 1)) sigs.(v) <> 0 then incr c;
        colors'.(v) <- !c)
      order;
    let nc = !c + 1 in
    (* A discrete partition is a fixed point: stop without the
       confirming pass (the exact search reaches a discrete leaf per
       node, so this halves its refinement work). *)
    if nc = n || nc = ncolors then colors' else go colors' nc
  in
  (* Starting "ncolors" below any possible count forces at least one
     renumbering pass, which maps whatever colors the caller supplied
     (e.g. an individualized vertex at an out-of-band value) onto the
     canonical 0..nc-1 range. *)
  go colors 0

(* Relabel vertex v to position perm.(v) and re-encode.  Only called
   with bijections, so the builder cannot see duplicates. *)
let apply_relabeling g perm =
  let b = Graph.Builder.create ~n:(Graph.n g) ~edges_hint:(Graph.m g) () in
  Array.iter
    (fun { Graph.u; v } -> Graph.Builder.add_edge b perm.(u) perm.(v))
    (Graph.edges g);
  Graph.Builder.finish b

(* Smallest color class with at least two members, as (color, members in
   index order); None when the partition is discrete.  The *cell* choice
   is invariant (colors are); the member order inside it is not, which
   is why the exact search tries every member and the heuristic path is
   documented as best-effort. *)
let first_non_singleton n colors =
  let count = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace count c (1 + Option.value (Hashtbl.find_opt count c) ~default:0))
    colors;
  let target = ref max_int in
  Hashtbl.iter (fun c k -> if k >= 2 && c < !target then target := c) count;
  if !target = max_int then None
  else begin
    let members = ref [] in
    for v = n - 1 downto 0 do
      if colors.(v) = !target then members := v :: !members
    done;
    Some !members
  end

exception Budget_exhausted

let encode_auto g = if Graph.n g <= 4096 then encode g else encode_sparse6 g

let canonical ?(exact_bound = 64) g =
  let n = Graph.n g in
  if n <= 1 then encode_auto g
  else begin
    let individualize colors v =
      let colors' = Array.copy colors in
      (* Any value outside 0..n-1 splits v into its own cell; the value
         itself is washed out by the renumbering pass in [refine]. *)
      colors'.(v) <- n;
      colors'
    in
    let heuristic colors0 =
      let colors = ref (refine g colors0) in
      let continue = ref true in
      while !continue do
        match first_non_singleton n !colors with
        | None -> continue := false
        | Some (v :: _) -> colors := refine g (individualize !colors v)
        | Some [] -> assert false
      done;
      encode_auto (apply_relabeling g !colors)
    in
    let colors = refine g (Array.make n 0) in
    match first_non_singleton n colors with
    | None -> encode_auto (apply_relabeling g colors)
    | Some _ when n > exact_bound -> heuristic colors
    | Some _ -> (
        (* Individualization-refinement search: branch on every member
           of the first non-singleton cell, refine, recurse; the
           canonical form is the lexicographically least leaf encoding.
           Trying the whole cell is what restores the invariance the
           member order lacks.  The node budget bounds pathological
           instances (refinement-resistant regular graphs); on
           exhaustion the heuristic answer is still a faithful encoding
           of an isomorphic graph — a cache key that may merely miss. *)
        let budget = ref 50_000 in
        let best = ref None in
        let rec search colors =
          decr budget;
          if !budget < 0 then raise Budget_exhausted;
          match first_non_singleton n colors with
          | None ->
              let candidate = encode_auto (apply_relabeling g colors) in
              (match !best with
              | Some b when b <= candidate -> ()
              | _ -> best := Some candidate)
          | Some members ->
              List.iter (fun v -> search (refine g (individualize colors v))) members
        in
        match search colors with
        | () -> ( match !best with Some b -> b | None -> assert false)
        | exception Budget_exhausted -> heuristic colors)
  end
