(* graph6 / sparse6 codecs (McKay's formats).  Both share the same
   printable-ASCII size header: one byte for n <= 62, '~' + 3 bytes
   (18-bit) for n <= 258047, "~~" + 6 bytes (36-bit) beyond.  Decoding
   streams straight into a Graph.Builder — no intermediate edge list —
   so a million-edge sparse6 line materializes exactly one CSR graph. *)

(* The CSR substrate packs endpoints into 31 bits, so anything beyond
   2^31 - 1 vertices is rejected up front rather than misparsed. *)
let max_n = 0x7FFFFFFF

let strip_newline line =
  match String.index_opt line '\n' with
  | Some i -> String.sub line 0 i
  | None -> line

let byte line len i =
  if i >= len then invalid_arg "Graph6.decode: truncated input";
  let c = Char.code line.[i] in
  if c < 63 || c > 126 then invalid_arg "Graph6.decode: invalid character";
  c - 63

(* Parse a size header at [pos]; returns (n, position after header). *)
let parse_size line len pos =
  let byte = byte line len in
  if byte pos < 63 then (byte pos, pos + 1)
  else if byte (pos + 1) < 63 then
    (* '~' prefix: 18-bit size in the next three bytes. *)
    ( (byte (pos + 1) lsl 12) lor (byte (pos + 2) lsl 6) lor byte (pos + 3),
      pos + 4 )
  else begin
    (* "~~" prefix: 36-bit size in the next six bytes.  (byte at pos+1
       = 63 can only be the second '~' — the 18-bit form would put the
       top size bits there, and 63 is outside their range.) *)
    let v = ref 0 in
    for i = pos + 2 to pos + 7 do
      v := (!v lsl 6) lor byte i
    done;
    (!v, pos + 8)
  end

let add_size buf ~force_long n =
  if force_long || n > 258047 then begin
    Buffer.add_char buf '~';
    Buffer.add_char buf '~';
    for i = 5 downto 0 do
      Buffer.add_char buf (Char.chr (((n lsr (6 * i)) land 63) + 63))
    done
  end
  else if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end

let encode ?(force_long = false) g =
  let n = Graph.n g in
  let buf = Buffer.create (8 + (n * n / 12)) in
  add_size buf ~force_long n;
  (* Upper-triangle bits in column order: (0,1), (0,2), (1,2), (0,3), ...
     Column j's bits come from a scratch mark array filled from row j —
     O(n^2 + m) overall instead of n^2/2 binary searches. *)
  let acc = ref 0 and filled = ref 0 in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr filled;
    if !filled = 6 then begin
      Buffer.add_char buf (Char.chr (!acc + 63));
      acc := 0;
      filled := 0
    end
  in
  let mark = Array.make (max n 1) false in
  for j = 1 to n - 1 do
    Graph.iter_neighbors g j ~f:(fun i -> if i < j then mark.(i) <- true);
    for i = 0 to j - 1 do
      push (if mark.(i) then 1 else 0)
    done;
    Graph.iter_neighbors g j ~f:(fun i -> if i < j then mark.(i) <- false)
  done;
  if !filled > 0 then
    Buffer.add_char buf (Char.chr ((!acc lsl (6 - !filled)) + 63));
  Buffer.contents buf

let decode_graph6 line =
  let line = strip_newline line in
  let len = String.length line in
  if len = 0 then invalid_arg "Graph6.decode: empty input";
  let byte = byte line len in
  let n, start = parse_size line len 0 in
  if n > max_n then invalid_arg "Graph6.decode: graph too large";
  let bits_needed = n * (n - 1) / 2 in
  let data_bytes = (bits_needed + 5) / 6 in
  let bit idx =
    let b = byte (start + (idx / 6)) in
    (b lsr (5 - (idx mod 6))) land 1
  in
  if data_bytes > len - start then
    invalid_arg "Graph6.decode: truncated adjacency data";
  if len - start > data_bytes then
    invalid_arg "Graph6.decode: trailing bytes after adjacency data";
  let padding = (data_bytes * 6) - bits_needed in
  if padding > 0 && byte (start + data_bytes - 1) land ((1 lsl padding) - 1) <> 0
  then invalid_arg "Graph6.decode: nonzero padding bits";
  let b = Graph.Builder.create ~n () in
  let idx = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit !idx = 1 then Graph.Builder.add_edge b i j;
      incr idx
    done
  done;
  Graph.Builder.finish b

(* Number of bits nauty uses for a sparse6 vertex index: enough to
   represent n-1, and at least 1. *)
let index_bits n =
  let k = ref 1 in
  while n - 1 >= 1 lsl !k do
    incr k
  done;
  !k

let decode_sparse6 line =
  let line = strip_newline line in
  let len = String.length line in
  if len = 0 then invalid_arg "Graph6.decode: empty input";
  if line.[0] <> ':' then
    invalid_arg "Graph6.decode: sparse6 input must start with ':'";
  let n, start = parse_size line len 1 in
  if n > max_n then invalid_arg "Graph6.decode: graph too large";
  let byte = byte line len in
  let total_bits = (len - start) * 6 in
  let bit idx =
    let b = byte (start + (idx / 6)) in
    (b lsr (5 - (idx mod 6))) land 1
  in
  let k = index_bits n in
  let b = Graph.Builder.create ~n () in
  let pos = ref 0 and v = ref 0 in
  (* (b, x) groups: b increments the current vertex, x > v jumps to x,
     x < v adds the edge {x, v}.  An incomplete trailing group and
     anything after the current vertex leaves the range are padding. *)
  (try
     while !pos + 1 + k <= total_bits && !v < n do
       let bflag = bit !pos in
       let x = ref 0 in
       for i = !pos + 1 to !pos + k do
         x := (!x lsl 1) lor bit i
       done;
       pos := !pos + 1 + k;
       if bflag = 1 then incr v;
       if !v >= n then raise Exit
       else if !x > !v then
         if !x >= n then raise Exit else v := !x
       else if !x = !v then
         invalid_arg "Graph6.decode: sparse6 self-loop"
       else Graph.Builder.add_edge b !x !v
     done
   with Exit -> ());
  Graph.Builder.finish b

let encode_sparse6 g =
  let n = Graph.n g in
  let buf = Buffer.create 32 in
  Buffer.add_char buf ':';
  add_size buf ~force_long:false n;
  let k = index_bits n in
  let acc = ref 0 and filled = ref 0 in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr filled;
    if !filled = 6 then begin
      Buffer.add_char buf (Char.chr (!acc + 63));
      acc := 0;
      filled := 0
    end
  in
  let push_val x =
    for i = k - 1 downto 0 do
      push ((x lsr i) land 1)
    done
  in
  (* Edges sorted by (larger endpoint, smaller endpoint) are exactly
     the lower-adjacency prefixes of the CSR rows in vertex order. *)
  let cur = ref 0 in
  for v = 0 to n - 1 do
    Graph.iter_neighbors g v ~f:(fun u ->
        if u < v then
          if v = !cur then begin
            push 0;
            push_val u
          end
          else if v = !cur + 1 then begin
            cur := v;
            push 1;
            push_val u
          end
          else begin
            cur := v;
            push 1;
            push_val v;
            push 0;
            push_val u
          end)
  done;
  if !filled > 0 then begin
    (* nauty's padding rule: fill with 1s, except that when n is a
       power of two, at least k+1 padding bits remain, and the current
       vertex is n-2, a single 0 bit goes first — all-ones padding
       would otherwise decode as the edge {n-1, n-1}. *)
    let r = 6 - !filled in
    if r >= k + 1 && n >= 2 && n land (n - 1) = 0 && !cur = n - 2 then push 0;
    while !filled > 0 do
      push 1
    done
  end;
  Buffer.contents buf

let decode line =
  let stripped = strip_newline line in
  if String.length stripped > 0 && stripped.[0] = ':' then
    decode_sparse6 stripped
  else decode_graph6 stripped
