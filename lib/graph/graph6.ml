let encode g =
  let n = Graph.n g in
  let buf = Buffer.create (8 + (n * n / 12)) in
  if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf (Char.chr 126);
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else invalid_arg "Graph6.encode: graph too large";
  (* Upper-triangle bits in column order: (0,1), (0,2), (1,2), (0,3), ... *)
  let acc = ref 0 and filled = ref 0 in
  let push bit =
    acc := (!acc lsl 1) lor bit;
    incr filled;
    if !filled = 6 then begin
      Buffer.add_char buf (Char.chr (!acc + 63));
      acc := 0;
      filled := 0
    end
  in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      push (if Graph.is_adjacent g i j then 1 else 0)
    done
  done;
  if !filled > 0 then
    Buffer.add_char buf (Char.chr ((!acc lsl (6 - !filled)) + 63));
  Buffer.contents buf

let decode line =
  let line =
    match String.index_opt line '\n' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let len = String.length line in
  if len = 0 then invalid_arg "Graph6.decode: empty input";
  let byte i =
    if i >= len then invalid_arg "Graph6.decode: truncated input";
    let c = Char.code line.[i] in
    if c < 63 || c > 126 then invalid_arg "Graph6.decode: invalid character";
    c - 63
  in
  let n, start =
    if byte 0 < 63 then (byte 0, 1)
    else if byte 1 < 63 then
      (* '~' prefix: 18-bit size in the next three bytes. *)
      ((byte 1 lsl 12) lor (byte 2 lsl 6) lor byte 3, 4)
    else
      (* "~~" prefix: 36-bit size in the next six bytes.  (byte 1 = 63
         can only be the second '~' — the 18-bit form would put the top
         size bits there, and 63 is outside their range.) *)
      let v = ref 0 in
      let () =
        for i = 2 to 7 do
          v := (!v lsl 6) lor byte i
        done
      in
      (!v, 8)
  in
  if n > 258047 then invalid_arg "Graph6.decode: graph too large";
  let bits_needed = n * (n - 1) / 2 in
  let data_bytes = (bits_needed + 5) / 6 in
  let bit idx =
    let b = byte (start + (idx / 6)) in
    (b lsr (5 - (idx mod 6))) land 1
  in
  if data_bytes > len - start then
    invalid_arg "Graph6.decode: truncated adjacency data";
  if len - start > data_bytes then
    invalid_arg "Graph6.decode: trailing bytes after adjacency data";
  let padding = (data_bytes * 6) - bits_needed in
  if padding > 0 && byte (start + data_bytes - 1) land ((1 lsl padding) - 1) <> 0
  then invalid_arg "Graph6.decode: nonzero padding bits";
  let edges = ref [] in
  let idx = ref 0 in
  for j = 1 to n - 1 do
    for i = 0 to j - 1 do
      if bit !idx = 1 then edges := (i, j) :: !edges;
      incr idx
    done
  done;
  Graph.make ~n !edges
