(** Undirected simple graphs with dense integer vertex and edge identifiers.

    Vertices are [0 .. n-1]; edges carry ids [0 .. m-1] in insertion order.
    Self-loops and parallel edges are rejected at construction.  The
    structure is immutable after [make]; adjacency is stored as flat CSR
    (an [int array] offset table plus packed neighbor/edge-id arrays, no
    per-vertex heap structures), each row sorted by neighbor, so
    membership queries are logarithmic, iteration is cheap, and the
    representation scales to millions of vertices.  The non-allocating
    {!iter_neighbors}/{!fold_neighbors}/{!iter_incident}/{!fold_incident}
    accessors walk a row without copying it; inner loops should prefer
    them over {!neighbors}/{!incident_edges}, which allocate a fresh
    array per call.

    This is the information network of the Tuple model: vertices are hosts,
    edges are communication links. *)

type t

type vertex = int
type edge_id = int

(** An undirected edge; normalized so that the first endpoint is the
    smaller vertex. *)
type edge = { u : vertex; v : vertex }

(** [make ~n edges] builds a graph on [n] vertices.
    @raise Invalid_argument on a negative [n], an endpoint out of range, a
    self-loop, or a duplicate edge (in either orientation). *)
val make : n:int -> (vertex * vertex) list -> t

(** Incremental construction without an intermediate edge list: streaming
    decoders and O(m) generators push edges one at a time into growable
    flat endpoint arrays, and [finish] runs the same monomorphic
    sort-and-pack pass as {!make}.  Endpoint and self-loop validation
    happens eagerly in [add_edge]; duplicate detection happens in
    [finish].  A builder is cheap (two int arrays) and single-use:
    after [finish] it should be dropped. *)
module Builder : sig
  type graph = t

  type t

  (** [create ~n ()] starts a builder for a graph on [n] vertices.
      [edges_hint] pre-sizes the endpoint arrays (they grow by doubling
      past it).
      @raise Invalid_argument on a negative [n] or [n > 2^31 - 1]. *)
  val create : ?edges_hint:int -> n:int -> unit -> t

  val vertex_count : t -> int

  (** Edges added so far; the next edge gets this id. *)
  val edge_count : t -> int

  (** [add_edge b u v] appends the undirected edge [{u, v}]; ids are
      assigned in insertion order, as in {!make}.
      @raise Invalid_argument on an endpoint out of range or a
      self-loop. *)
  val add_edge : t -> vertex -> vertex -> unit

  (** Sort, reject duplicates, and pack into CSR.
      @raise Invalid_argument on a duplicate edge (in either
      orientation). *)
  val finish : t -> graph
end

val n : t -> int

val m : t -> int

(** Endpoints of an edge id, normalized ([u < v]).
    @raise Invalid_argument if the id is out of range. *)
val edge : t -> edge_id -> edge

(** All edges, indexed by edge id. *)
val edges : t -> edge array

(** [endpoints g e] is [(u, v)] with [u < v]. *)
val endpoints : t -> edge_id -> vertex * vertex

(** The edge id joining two vertices, if present (orientation-insensitive). *)
val find_edge : t -> vertex -> vertex -> edge_id option

val is_adjacent : t -> vertex -> vertex -> bool

(** Sorted array of neighbours of [v]. *)
val neighbors : t -> vertex -> vertex array

(** Ids of edges incident to [v], sorted by the opposite endpoint. *)
val incident_edges : t -> vertex -> edge_id array

val degree : t -> vertex -> int

(** [iter_neighbors g v ~f] applies [f] to each neighbor of [v] in
    increasing order, without allocating.  The non-allocating
    counterpart of {!neighbors}. *)
val iter_neighbors : t -> vertex -> f:(vertex -> unit) -> unit

(** Left fold over the neighbors of [v] in increasing order, without
    allocating. *)
val fold_neighbors : t -> vertex -> init:'a -> f:('a -> vertex -> 'a) -> 'a

(** [iter_incident g v ~f] applies [f w id] to each incident edge of
    [v], where [w] is the opposite endpoint and [id] the edge id, in
    increasing order of [w], without allocating.  Replaces the
    [incident_edges]-then-[opposite] idiom in inner loops. *)
val iter_incident : t -> vertex -> f:(vertex -> edge_id -> unit) -> unit

(** Left fold over incident edges of [v] as [(opposite, id)] pairs in
    increasing order of the opposite endpoint, without allocating. *)
val fold_incident :
  t -> vertex -> init:'a -> f:('a -> vertex -> edge_id -> 'a) -> 'a

(** [edge_u g id] ([edge_v g id]) is the smaller (larger) endpoint of
    edge [id] — the unboxed fields of {!edge}, for inner loops that
    must not allocate the record.
    @raise Invalid_argument if the id is out of range (via the array
    bound check). *)
val edge_u : t -> edge_id -> vertex

val edge_v : t -> edge_id -> vertex

(** The endpoint of edge [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)
val opposite : t -> edge_id -> vertex -> vertex

val fold_vertices : t -> init:'a -> f:('a -> vertex -> 'a) -> 'a
val iter_vertices : t -> f:(vertex -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge_id -> edge -> 'a) -> 'a
val iter_edges : t -> f:(edge_id -> edge -> unit) -> unit

(** Vertices of degree zero. *)
val isolated_vertices : t -> vertex list

val has_isolated_vertex : t -> bool

(** [neighborhood g vs] is the set (sorted, deduplicated) of vertices
    adjacent to at least one vertex of [vs], including vertices of [vs]
    that happen to be adjacent to another member.  This is [Neigh_G(X)] of
    the paper. *)
val neighborhood : t -> vertex list -> vertex list

(** Subgraph induced by a set of edge ids: keeps all [n] vertices, only the
    given edges.  Used for "the graph obtained by [D(tp)]".  Edge ids are
    renumbered; the second component maps new ids back to old ids. *)
val edge_subgraph : t -> edge_id list -> t * edge_id array

(** Structural equality: same vertex count and same edge set. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
