(** Monomorphic sorting on flat [int array]s.

    The graph substrate sorts packed edge keys during CSR construction;
    the polymorphic [Array.sort compare] it replaces walks a comparison
    closure through [caml_compare] per element pair, which dominates
    build time at 10^6 edges.  These routines are specialized to
    unboxed [int] and allocate nothing. *)

val sort : int array -> unit
(** [sort a] sorts [a] in place in increasing order.  Introsort:
    median-of-three quicksort, insertion sort below a small cutoff,
    heapsort fallback past the depth limit, so the worst case stays
    O(n log n) even on crafted inputs. *)

val sort_pairs : int array -> int array -> unit
(** [sort_pairs keys payload] sorts [keys] in place in increasing
    order, applying the same permutation to [payload].  Equal keys may
    be reordered relative to each other (the CSR builder only has equal
    keys when the input has duplicate edges, which it rejects).

    @raise Invalid_argument if the arrays differ in length. *)
