(** Compact graph-family specs ("grid:3x4", "gnp:20:0.1", ...) shared by
    the CLI and tooling.

    Known specs: path:N, cycle:N, star:N, complete:N, kbip:AxB,
    grid:AxB, hypercube:D, wheel:N, petersen, barbell:A:BRIDGE,
    lollipop:A:TAIL, caterpillar:SPINE:LEGS, multipartite:N1:N2:...,
    tree:N, gnp:N:P, bipartite:AxB:P, regular:N:D,
    enterprise:CORE:LEAVES:UPLINKS.

    Note that [bipartite:AxB] {e requires} the edge probability
    ([bipartite:AxB:P]); the complete bipartite graph is [kbip:AxB].
    Omitting it is an explicit error (it used to silently build a
    grid). *)

(** Parse a spec; [rng] drives the randomized families.
    @raise Invalid_argument on an unrecognized or incomplete spec. *)
val parse : rng:Prng.Rng.t -> string -> Graph.t
