(* Monomorphic introsort on flat int arrays, with an optional co-sorted
   payload array.  Median-of-three quicksort with Hoare-style scans and
   sentinels, insertion sort below a small cutoff, heapsort once the
   recursion depth budget is spent. *)

let cutoff = 16

let swap keys pay i j =
  let k = keys.(i) in
  keys.(i) <- keys.(j);
  keys.(j) <- k;
  let p = pay.(i) in
  pay.(i) <- pay.(j);
  pay.(j) <- p

let insertion keys pay lo hi =
  for i = lo + 1 to hi do
    let k = keys.(i) and p = pay.(i) in
    let j = ref (i - 1) in
    while !j >= lo && keys.(!j) > k do
      keys.(!j + 1) <- keys.(!j);
      pay.(!j + 1) <- pay.(!j);
      decr j
    done;
    keys.(!j + 1) <- k;
    pay.(!j + 1) <- p
  done

(* Max-heap sift-down over the segment [lo..hi]; the heap is rooted at
   [lo], so the children of [i] sit at [2i - lo + 1] and [2i - lo + 2]. *)
let rec sift keys pay lo hi i =
  let l = (2 * i) - lo + 1 in
  if l <= hi then begin
    let c = if l < hi && keys.(l + 1) > keys.(l) then l + 1 else l in
    if keys.(c) > keys.(i) then begin
      swap keys pay i c;
      sift keys pay lo hi c
    end
  end

let heapsort keys pay lo hi =
  let n = hi - lo + 1 in
  if n > 1 then begin
    for i = lo + (n / 2) - 1 downto lo do
      sift keys pay lo hi i
    done;
    for j = hi downto lo + 1 do
      swap keys pay lo j;
      sift keys pay lo (j - 1) lo
    done
  end

let rec intro keys pay lo hi depth =
  if hi - lo >= cutoff then
    if depth = 0 then heapsort keys pay lo hi
    else begin
      (* Median-of-three: order keys at lo/mid/hi, park the median at
         hi-1 as the pivot.  keys.(lo) <= pivot <= keys.(hi) then act
         as scan sentinels, so the inner loops need no bound checks of
         their own. *)
      let mid = lo + ((hi - lo) / 2) in
      if keys.(mid) < keys.(lo) then swap keys pay mid lo;
      if keys.(hi) < keys.(lo) then swap keys pay hi lo;
      if keys.(hi) < keys.(mid) then swap keys pay hi mid;
      swap keys pay mid (hi - 1);
      let pivot = keys.(hi - 1) in
      let i = ref lo and j = ref (hi - 1) in
      (try
         while true do
           incr i;
           while keys.(!i) < pivot do
             incr i
           done;
           decr j;
           while keys.(!j) > pivot do
             decr j
           done;
           if !i >= !j then raise Exit;
           swap keys pay !i !j
         done
       with Exit -> ());
      swap keys pay !i (hi - 1);
      intro keys pay lo (!i - 1) (depth - 1);
      intro keys pay (!i + 1) hi (depth - 1)
    end

let depth_budget n =
  let d = ref 0 and m = ref n in
  while !m > 1 do
    incr d;
    m := !m / 2
  done;
  2 * !d

let sort_pairs keys pay =
  let n = Array.length keys in
  if Array.length pay <> n then
    invalid_arg "Int_sort.sort_pairs: length mismatch";
  if n > 1 then begin
    intro keys pay 0 (n - 1) (depth_budget n);
    insertion keys pay 0 (n - 1)
  end

let sort a =
  let n = Array.length a in
  if n > 1 then sort_pairs a (Array.make n 0)
