let parse ~rng spec =
  let fail () =
    raise (Invalid_argument (Printf.sprintf "unrecognized family spec %S" spec))
  in
  let int s = match int_of_string_opt s with Some v -> v | None -> fail () in
  let flt s = match float_of_string_opt s with Some v -> v | None -> fail () in
  let dims s =
    match String.split_on_char 'x' s with
    | [ a; b ] -> (int a, int b)
    | _ -> fail ()
  in
  match String.split_on_char ':' spec with
  | [ "path"; n ] -> Gen.path (int n)
  | [ "cycle"; n ] -> Gen.cycle (int n)
  | [ "star"; n ] -> Gen.star (int n)
  | [ "complete"; n ] -> Gen.complete (int n)
  | [ "hypercube"; d ] -> Gen.hypercube (int d)
  | [ "wheel"; n ] -> Gen.wheel (int n)
  | [ "petersen" ] -> Gen.petersen ()
  | [ "barbell"; a; bridge ] -> Gen.barbell (int a) ~bridge:(int bridge)
  | [ "lollipop"; a; tail ] -> Gen.lollipop (int a) ~tail:(int tail)
  | [ "caterpillar"; spine; legs ] ->
      Gen.caterpillar ~spine:(int spine) ~legs:(int legs)
  | "multipartite" :: (_ :: _ as parts) ->
      Gen.complete_multipartite (List.map int parts)
  | [ "tree"; n ] -> Gen.random_tree rng ~n:(int n)
  | [ "gnp"; n; p ] -> Gen.gnp_connected rng ~n:(int n) ~p:(flt p)
  | [ "regular"; n; d ] -> Gen.random_regular rng ~n:(int n) ~d:(int d)
  | [ "enterprise"; c; l; u ] ->
      Gen.enterprise rng ~core:(int c) ~leaves:(int l) ~uplinks:(int u)
  | [ "kbip"; d ] ->
      let a, b = dims d in
      Gen.complete_bipartite a b
  | [ "grid"; d ] ->
      let a, b = dims d in
      Gen.grid a b
  | [ "bipartite"; d; p ] ->
      let a, b = dims d in
      Gen.random_bipartite rng ~a ~b ~p:(flt p)
  | [ "bipartite"; d ] ->
      (* Without a probability this used to fall through to the grid
         branch and silently build the wrong graph. *)
      let _ = dims d in
      raise
        (Invalid_argument
           (Printf.sprintf
              "family spec %S: random bipartite needs an edge probability \
               (bipartite:AxB:P); for the complete bipartite graph use kbip:AxB"
              spec))
  | _ -> fail ()
