(* Traversals over the CSR substrate.  Everything here runs at the
   10^5-10^6 vertex scale of the BigGraph tier: flat int-array queues
   and stacks instead of Queue.t cells, non-allocating row iteration
   instead of [Graph.neighbors] copies, and no recursion deeper than
   O(log) anywhere (a path-shaped graph overflows the OCaml stack well
   before 10^5 vertices otherwise). *)

let bfs_order g root =
  let n = Graph.n g in
  let visited = Array.make n false in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  let push v =
    visited.(v) <- true;
    queue.(!tail) <- v;
    incr tail
  in
  push root;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    Graph.iter_neighbors g v ~f:(fun w -> if not visited.(w) then push w)
  done;
  (* BFS visit order is exactly enqueue order. *)
  Array.to_list (Array.sub queue 0 !tail)

let dfs_order g root =
  let visited = Array.make (Graph.n g) false in
  (* Each endpoint of each edge is pushed at most once, plus the root:
     the stack never holds more than 2m + 1 entries. *)
  let stack = Array.make ((2 * Graph.m g) + 1) 0 in
  let top = ref 0 in
  let push v =
    stack.(!top) <- v;
    incr top
  in
  push root;
  let order = ref [] in
  while !top > 0 do
    decr top;
    let v = stack.(!top) in
    if not visited.(v) then begin
      visited.(v) <- true;
      order := v :: !order;
      (* Push the unvisited neighbors, then reverse that stack segment
         so the smallest neighbor pops first — the same preorder the
         recursive formulation produced. *)
      let start = !top in
      Graph.iter_neighbors g v ~f:(fun w -> if not visited.(w) then push w);
      let i = ref start and j = ref (!top - 1) in
      while !i < !j do
        let tmp = stack.(!i) in
        stack.(!i) <- stack.(!j);
        stack.(!j) <- tmp;
        incr i;
        decr j
      done
    end
  done;
  List.rev !order

let distances g root =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(root) <- 0;
  queue.(!tail) <- root;
  incr tail;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    Graph.iter_neighbors g v ~f:(fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          queue.(!tail) <- w;
          incr tail
        end)
  done;
  dist

let components g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let comp = bfs_order g v in
      List.iter (fun w -> seen.(w) <- true) comp;
      comps := List.sort Int.compare comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g =
  match components g with [] | [ _ ] -> true | _ -> false

let shortest_path g u v =
  let dist = distances g u in
  if dist.(v) < 0 then None
  else begin
    (* Walk back from [v] along strictly decreasing distances. *)
    let rec back w acc =
      if w = u then w :: acc
      else begin
        let pred = ref (-1) in
        Graph.iter_neighbors g w ~f:(fun x ->
            if !pred < 0 && dist.(x) = dist.(w) - 1 then pred := x);
        back !pred (w :: acc)
      end
    in
    Some (back v [])
  end
