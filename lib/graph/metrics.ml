let require_connected g =
  if not (Traverse.is_connected g) then
    invalid_arg "Metrics: graph must be connected";
  if Graph.n g = 0 then invalid_arg "Metrics: empty graph"

let eccentricity g v =
  require_connected g;
  Array.fold_left max 0 (Traverse.distances g v)

let diameter g =
  require_connected g;
  Graph.fold_vertices g ~init:0 ~f:(fun acc v -> max acc (eccentricity g v))

let radius g =
  require_connected g;
  Graph.fold_vertices g ~init:max_int ~f:(fun acc v -> min acc (eccentricity g v))

(* Girth by per-edge deletion: the shortest cycle through edge e = (u,v)
   has length 1 + dist_{G-e}(u, v). *)
let girth g =
  let n = Graph.n g in
  let best = ref None in
  Graph.iter_edges g ~f:(fun id e ->
      let dist = Array.make n (-1) in
      let queue = Queue.create () in
      dist.(e.Graph.u) <- 0;
      Queue.add e.Graph.u queue;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        Graph.iter_incident g x ~f:(fun y eid ->
            if eid <> id && dist.(y) < 0 then begin
              dist.(y) <- dist.(x) + 1;
              Queue.add y queue
            end)
      done;
      if dist.(e.Graph.v) >= 0 then
        let cycle = dist.(e.Graph.v) + 1 in
        match !best with
        | Some b when b <= cycle -> ()
        | _ -> best := Some cycle);
  !best

(* Tarjan low-link DFS for articulation points and bridges. *)
let cut_structure g =
  let n = Graph.n g in
  let visited = Array.make n false in
  let depth = Array.make n 0 in
  let low = Array.make n 0 in
  let is_cut = Array.make n false in
  let bridge = ref [] in
  let rec dfs v parent_edge d =
    visited.(v) <- true;
    depth.(v) <- d;
    low.(v) <- d;
    let children = ref 0 in
    Graph.iter_incident g v ~f:(fun w id ->
        if id <> parent_edge then
          if visited.(w) then low.(v) <- min low.(v) depth.(w)
          else begin
            incr children;
            dfs w id (d + 1);
            low.(v) <- min low.(v) low.(w);
            if low.(w) > depth.(v) then bridge := id :: !bridge;
            if parent_edge >= 0 && low.(w) >= depth.(v) then is_cut.(v) <- true
          end);
    if parent_edge < 0 && !children > 1 then is_cut.(v) <- true
  in
  for v = 0 to n - 1 do
    if not visited.(v) then dfs v (-1) 0
  done;
  (is_cut, List.sort compare !bridge)

let articulation_points g =
  let is_cut, _ = cut_structure g in
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if is_cut.(v) then out := v :: !out
  done;
  !out

let bridges g = snd (cut_structure g)

let is_biconnected g =
  Graph.n g >= 3 && Traverse.is_connected g && articulation_points g = []
