(** graph6 encoding (McKay's format, as used by nauty/geng and most graph
    repositories): a printable-ASCII serialization of simple undirected
    graphs.  Lets the library exchange instances with the wider
    graph-theory toolchain. *)

(** Encode. @raise Invalid_argument for [n > 258047] (the 3-byte size
    form; longer forms are not needed at our scales). *)
val encode : Graph.t -> string

(** Decode one graph6 line (optional trailing newline tolerated).  All
    three size headers are understood (1-byte, ['~'] 18-bit and ["~~"]
    36-bit forms); sizes beyond the {!encode} limit are rejected rather
    than misparsed.  The input must be exact: nonzero padding bits or
    bytes after the adjacency data are errors.
    @raise Invalid_argument on malformed input. *)
val decode : string -> Graph.t
