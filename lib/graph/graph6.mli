(** graph6 and sparse6 encodings (McKay's formats, as used by
    nauty/geng and most graph repositories): printable-ASCII
    serializations of simple undirected graphs.  Lets the library
    exchange instances with the wider graph-theory toolchain.  Decoding
    streams straight into a {!Graph.Builder} — no intermediate edge
    list — so sparse million-edge inputs build exactly one CSR graph. *)

(** Encode in graph6 (dense) format.  All three size headers are
    emitted as needed: 1-byte for [n <= 62], ['~'] 18-bit for
    [n <= 258047], and ["~~"] 36-bit beyond that.  [~force_long:true]
    forces the 36-bit header regardless of size, which round-trips the
    long form without a multi-gigabyte test graph. *)
val encode : ?force_long:bool -> Graph.t -> string

(** Decode one graph6 or sparse6 line (optional trailing newline
    tolerated); a leading [':'] dispatches to {!decode_sparse6}.  All
    three size headers are understood; sizes beyond the [2^31 - 1]
    vertex-id range of the substrate are rejected rather than
    misparsed.  graph6 input must be exact: nonzero padding bits or
    bytes after the adjacency data are errors.
    @raise Invalid_argument on malformed input. *)
val decode : string -> Graph.t

(** Encode in sparse6 format (size proportional to [m log n] rather
    than [n^2]), including nauty's padding rule for power-of-two vertex
    counts. *)
val encode_sparse6 : Graph.t -> string

(** Decode one sparse6 line (leading [':'] required, optional trailing
    newline tolerated).  Inputs that encode a self-loop or a repeated
    edge are rejected: the substrate holds simple graphs only.
    @raise Invalid_argument on malformed input. *)
val decode_sparse6 : string -> Graph.t

(** [canonical g] is a canonical form of [g]: a graph6 (or, beyond 4096
    vertices, sparse6) encoding of an isomorphic relabeling of [g],
    chosen so that isomorphic graphs map to the same string.  This is
    the {e instance identity} the query daemon's solve cache is keyed
    on — two queries about relabelings of the same graph share one
    cache entry.

    The labeling is found by iterated degree refinement (1-WL color
    refinement) and, when refinement alone does not separate all
    vertices and [n <= exact_bound] (default 64), an
    individualization-refinement search over the first ambiguous cell
    whose result is the lexicographically least leaf encoding — exact
    canonicity on that range.  Past [exact_bound], or if the search
    exceeds its internal node budget (refinement-resistant regular
    graphs), a deterministic heuristic completes the labeling; the
    result is then still a faithful encoding of an isomorphic graph —
    sound as a cache key, at worst missing a possible hit — but two
    relabelings are no longer guaranteed to agree. *)
val canonical : ?exact_bound:int -> Graph.t -> string
