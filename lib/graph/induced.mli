(** Connected induced-subgraph enumeration: every size-[s] vertex subset
    whose induced subgraph is connected, each exactly once, in a
    deterministic order.  This is the defender strategy space of the
    connected-subgraph game (Akrida et al.), the way k-edge subsets are
    the tuple defender's. *)

open Graph

(** [is_connected_subset g vs] — does the subgraph induced by [vs]
    connect all of [vs]?  Duplicates are ignored; the empty set is not
    connected.  @raise Invalid_argument on an out-of-range vertex. *)
val is_connected_subset : Graph.t -> vertex list -> bool

(** [fold_connected_subsets g ~size ~init ~f] folds [f] over every
    vertex subset of cardinality [size] that induces a connected
    subgraph, exactly once each (ESU-style enumeration anchored at each
    subset's minimum vertex).  Subsets are passed sorted ascending; the
    overall order is deterministic but not lexicographic.
    @raise Invalid_argument if [size] is outside [1, n]. *)
val fold_connected_subsets :
  Graph.t -> size:int -> init:'a -> f:('a -> vertex list -> 'a) -> 'a

(** [count_connected_subsets g ~size ~limit] is [Some c] when the number
    of connected [size]-subsets is [c <= limit], [None] as soon as the
    enumeration exceeds [limit] (the walk stops early, so probing a huge
    space with a small limit is cheap).
    @raise Invalid_argument if [size] is outside [1, n]. *)
val count_connected_subsets : Graph.t -> size:int -> limit:int -> int option
