(** Exact Nash solutions of finite two-player zero-sum matrix games.

    [solve m] takes the m×n payoff matrix of the ROW player (the
    maximizer; the column player minimizes the same quantity) and
    returns the game value together with optimal mixed strategies for
    both sides, all as exact rationals — by the minimax theorem the pair
    is a Nash equilibrium and the value is unique.  The computation is
    one primal-simplex run ({!Simplex}): the matrix is shifted so every
    entry is ≥ 1, the column player's strategy is read off the packing
    optimum [max Σ w subject to M'w ≤ 1], and the row player's off the
    dual; exact arithmetic makes strong duality an equality, not an
    approximation.

    This is the restricted-game kernel of the double-oracle solver
    ({!Solver.Double_oracle}), which re-solves a slowly growing matrix
    every iteration — hence the warm-restart support threading the
    previous simplex basis through column growth. *)

module Q = Exact.Q

type solution = {
  value : Q.t;  (** the game value, payoff to the row maximizer *)
  row_strategy : Q.t array;  (** maximizer mix over rows; sums to 1 *)
  col_strategy : Q.t array;  (** minimizer mix over columns; sums to 1 *)
  basis : int array;  (** simplex basis certificate, for {!warm} *)
}

type warm
(** A warm-restart token: the basis of a previous {!solve} plus the
    shape it was computed for. *)

(** [warm ~rows ~cols sol] packages [sol] (obtained on a [rows]×[cols]
    matrix) for reuse by a later {!solve}. *)
val warm : rows:int -> cols:int -> solution -> warm

(** [solve ?warm m] computes value and optimal mixed strategies of the
    zero-sum game with row-maximizer payoff matrix [m] (m×n, m,n ≥ 1).

    When [?warm] is given and the new matrix extends the old one by
    appended columns only (same row count, [cols' ≥ cols], earlier
    columns unchanged in meaning), the previous basis is remapped and
    reused — appended columns enter at weight 0, so the old optimum
    stays feasible and the simplex merely prices the newcomers.  Any
    shape mismatch, or a basis the new data rejects, falls back to a
    cold solve.  Either way the result is an exact equilibrium at the
    unique game value; in degenerate games with several optimal bases
    the warm and cold paths may return different (equally optimal)
    strategies.
    @raise Invalid_argument on an empty or ragged matrix. *)
val solve : ?warm:warm -> Q.t array array -> solution

(** [is_equilibrium m sol] checks the certificate exactly: both
    strategies are distributions, no pure row deviation exceeds
    [sol.value] against [sol.col_strategy], and no pure column deviation
    drops below it against [sol.row_strategy]. *)
val is_equilibrium : Q.t array array -> solution -> bool
