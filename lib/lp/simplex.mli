(** Exact linear programming over rationals: primal simplex with Bland's
    anti-cycling rule on problems in packing form

      maximize    c . x
      subject to  A x <= b,   x >= 0,   with b >= 0.

    The non-negativity of [b] makes the all-slack basis feasible, so no
    phase-1 is needed; this covers the fractional covering/packing duals
    the defender analysis requires (see {!Defender.Minimax}) and the
    restricted matrix games of {!Matrix_game}.  All arithmetic is exact,
    so returned optima are certificates, not approximations. *)

module Q = Exact.Q

type solution = {
  objective : Q.t;
  x : Q.t array;  (** primal optimum, length = #columns *)
  dual : Q.t array;
      (** dual optimum (one multiplier per row), read off the slack
          reduced costs; certifies optimality by strong duality *)
  basis : int array;
      (** the optimal basis: one column index per row, structural
          variables first ([0..n-1]), then slacks ([n..n+m-1]).  Feed it
          back through [?warm_start] to re-solve a related problem. *)
}

type outcome =
  | Optimal of solution
  | Unbounded

(** [maximize ~a ~b ~c] solves the LP above from the all-slack basis.
    [a] is the m×n constraint matrix (rows of length n), [b] the m
    right-hand sides (all ≥ 0), [c] the n objective coefficients.
    @raise Invalid_argument on ragged input or a negative entry in [b]. *)
val maximize : a:Q.t array array -> b:Q.t array -> c:Q.t array -> outcome

(** [maximize_warm ~warm_start ~a ~b ~c] is {!maximize} restarted from a
    previously returned {!solution.basis}: the tableau is reconstructed
    by Gauss-Jordan pivoting on the given columns, which prices out a
    near-optimal start when the problem gained columns since the basis
    was recorded.  A basis that is singular or primal-infeasible for the
    current data (e.g. after new rows cut off the old optimum) silently
    falls back to the cold start, so warm-started calls return exactly
    what the cold call would — only faster when the basis still fits.
    @raise Invalid_argument additionally on a malformed basis (wrong
    length, out-of-range or duplicate index). *)
val maximize_warm :
  warm_start:int array ->
  a:Q.t array array ->
  b:Q.t array ->
  c:Q.t array ->
  outcome

(** [feasible ~a ~b ~x]: does [x ≥ 0] satisfy [A x ≤ b]? *)
val feasible : a:Q.t array array -> b:Q.t array -> x:Q.t array -> bool

(** Objective value [c . x]. *)
val value : c:Q.t array -> x:Q.t array -> Q.t
