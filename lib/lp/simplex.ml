module Q = Exact.Q

type solution = {
  objective : Q.t;
  x : Q.t array;
  dual : Q.t array;
  basis : int array;
}

type outcome = Optimal of solution | Unbounded

let feasible ~a ~b ~x =
  Array.for_all (fun v -> Q.( >= ) v Q.zero) x
  && Array.for_all Fun.id
       (Array.mapi
          (fun i row ->
            let lhs = ref Q.zero in
            Array.iteri (fun j aij -> lhs := Q.add !lhs (Q.mul aij x.(j))) row;
            Q.( <= ) !lhs b.(i))
          a)

let value ~c ~x =
  let acc = ref Q.zero in
  Array.iteri (fun j cj -> acc := Q.add !acc (Q.mul cj x.(j))) c;
  !acc

let solve ~warm_start ~a ~b ~c =
  let m = Array.length a in
  let n = Array.length c in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Simplex.maximize: ragged matrix")
    a;
  if Array.length b <> m then invalid_arg "Simplex.maximize: |b| <> rows";
  Array.iter
    (fun bi ->
      if Q.( < ) bi Q.zero then
        invalid_arg "Simplex.maximize: negative right-hand side (packing form)")
    b;
  let cols = n + m in
  (* Tableau rows: constraints with slack identity appended; the reduced
     cost row is kept separately. *)
  let fresh () =
    let tab = Array.init m (fun _ -> Array.make (cols + 1) Q.zero) in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        tab.(i).(j) <- a.(i).(j)
      done;
      tab.(i).(n + i) <- Q.one;
      tab.(i).(cols) <- b.(i)
    done;
    let reduced = Array.make cols Q.zero in
    for j = 0 to n - 1 do
      reduced.(j) <- c.(j)
    done;
    (tab, reduced, Array.init m (fun i -> n + i))
  in
  (* Pivot column [j] into row [r]: normalize, eliminate elsewhere, and
     keep the reduced-cost row in step.  Shared by the warm-start
     reconstruction and the main loop. *)
  let pivot_on tab reduced basis r j =
    let pivot = tab.(r).(j) in
    for jj = 0 to cols do
      tab.(r).(jj) <- Q.div tab.(r).(jj) pivot
    done;
    for i = 0 to m - 1 do
      if i <> r && not (Q.is_zero tab.(i).(j)) then begin
        let factor = tab.(i).(j) in
        for jj = 0 to cols do
          tab.(i).(jj) <- Q.sub tab.(i).(jj) (Q.mul factor tab.(r).(jj))
        done
      end
    done;
    let factor = reduced.(j) in
    if not (Q.is_zero factor) then
      for jj = 0 to cols - 1 do
        reduced.(jj) <- Q.sub reduced.(jj) (Q.mul factor tab.(r).(jj))
      done;
    basis.(r) <- j
  in
  (* A warm basis must be well-formed (one distinct column index per row);
     whether it is usable — nonsingular and primal feasible for THIS
     tableau — is checked by attempting the Gauss-Jordan reconstruction
     and falling back to the all-slack cold start if it fails.  That
     split matters: a malformed basis is a caller bug, while an unusable
     one is the expected outcome of reusing a basis after the problem
     changed shape (e.g. a new restricted-game row cutting off the old
     optimum). *)
  let try_warm wb =
    if Array.length wb <> m then
      invalid_arg "Simplex.maximize: warm-start basis length <> rows";
    let seen = Hashtbl.create m in
    Array.iter
      (fun j ->
        if j < 0 || j >= cols then
          invalid_arg "Simplex.maximize: warm-start basis index out of range";
        if Hashtbl.mem seen j then
          invalid_arg "Simplex.maximize: duplicate warm-start basis index";
        Hashtbl.add seen j ())
      wb;
    let tab, reduced, basis = fresh () in
    let assigned = Array.make m false in
    let ok = ref true in
    Array.iter
      (fun j ->
        if !ok then begin
          (* First unassigned row with a nonzero entry in column j keeps
             the reconstruction deterministic. *)
          let r = ref (-1) in
          (try
             for i = 0 to m - 1 do
               if (not assigned.(i)) && not (Q.is_zero tab.(i).(j)) then begin
                 r := i;
                 raise Exit
               end
             done
           with Exit -> ());
          if !r < 0 then ok := false (* singular: column dependent *)
          else begin
            pivot_on tab reduced basis !r j;
            assigned.(!r) <- true
          end
        end)
      wb;
    if !ok && Array.for_all (fun row -> Q.( >= ) row.(cols) Q.zero) tab then
      Some (tab, reduced, basis)
    else None
  in
  let tab, reduced, basis =
    match warm_start with
    | Some wb -> ( match try_warm wb with Some s -> s | None -> fresh ())
    | None -> fresh ()
  in
  let rec iterate () =
    (* Bland: entering variable = least index with positive reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to cols - 1 do
         if Q.( > ) reduced.(j) Q.zero then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then begin
      (* Optimal: read off the primal and dual solutions. *)
      let x = Array.make n Q.zero in
      Array.iteri
        (fun i var -> if var < n then x.(var) <- tab.(i).(cols))
        basis;
      let dual = Array.init m (fun i -> Q.neg reduced.(n + i)) in
      Optimal { objective = value ~c ~x; x; dual; basis = Array.copy basis }
    end
    else begin
      let j = !entering in
      (* Ratio test; Bland tie-break on the leaving basic variable. *)
      let leaving = ref (-1) in
      let best_ratio = ref Q.zero in
      for i = 0 to m - 1 do
        if Q.( > ) tab.(i).(j) Q.zero then begin
          let ratio = Q.div tab.(i).(cols) tab.(i).(j) in
          let better =
            !leaving < 0
            || Q.( < ) ratio !best_ratio
            || (Q.equal ratio !best_ratio && basis.(i) < basis.(!leaving))
          in
          if better then begin
            leaving := i;
            best_ratio := ratio
          end
        end
      done;
      if !leaving < 0 then Unbounded
      else begin
        pivot_on tab reduced basis !leaving j;
        iterate ()
      end
    end
  in
  iterate ()

let maximize ~a ~b ~c = solve ~warm_start:None ~a ~b ~c

let maximize_warm ~warm_start ~a ~b ~c =
  solve ~warm_start:(Some warm_start) ~a ~b ~c
