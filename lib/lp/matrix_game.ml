(* Zero-sum matrix games by one exact-simplex run.  See matrix_game.mli
   for the contract; the derivation used here:

   Shift M by s so that M' = M + s has every entry >= 1 (shifting the
   payoff changes the value by s and no strategy).  The column player's
   optimal mix solves  min_y max_i (M'y)_i ; substituting w = y / v'
   (v' the shifted value, > 0) turns it into the packing LP

     max sum_j w_j   s.t.  M'w <= 1,  w >= 0

   whose optimum is 1/v'.  Then y = w / sum w, and by strong duality the
   dual vector u (one multiplier per row) has sum u = sum w with
   x = u / sum u the row player's optimal mix.  Exact rationals make
   both read-offs equalities, so the result is a certificate. *)

module Q = Exact.Q

type solution = {
  value : Q.t;
  row_strategy : Q.t array;
  col_strategy : Q.t array;
  basis : int array;
}

type warm = { w_basis : int array; w_rows : int; w_cols : int }

let warm ~rows ~cols (sol : solution) =
  { w_basis = sol.basis; w_rows = rows; w_cols = cols }

let check_shape m =
  let rows = Array.length m in
  if rows = 0 then invalid_arg "Matrix_game.solve: empty matrix";
  let cols = Array.length m.(0) in
  if cols = 0 then invalid_arg "Matrix_game.solve: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Matrix_game.solve: ragged matrix")
    m;
  (rows, cols)

(* Remap a basis recorded on a rows×cols0 problem to the current
   rows×cols one: structural indices are stable, slack indices shift by
   the number of appended columns.  Only column growth is remappable —
   a changed row count changes the basis length itself. *)
let remap_warm ~rows ~cols = function
  | Some { w_basis; w_rows; w_cols }
    when w_rows = rows && w_cols <= cols && Array.length w_basis = rows ->
      Some
        (Array.map (fun j -> if j < w_cols then j else j - w_cols + cols) w_basis)
  | _ -> None

let solve ?warm m =
  let rows, cols = check_shape m in
  let lo =
    Array.fold_left
      (fun acc row -> Array.fold_left Q.min acc row)
      m.(0).(0) m
  in
  let shift = if Q.( < ) lo Q.one then Q.sub Q.one lo else Q.zero in
  let a =
    Array.map (fun row -> Array.map (fun v -> Q.add v shift) row) m
  in
  let b = Array.make rows Q.one in
  let c = Array.make cols Q.one in
  let outcome =
    match remap_warm ~rows ~cols warm with
    | Some warm_start -> Simplex.maximize_warm ~warm_start ~a ~b ~c
    | None -> Simplex.maximize ~a ~b ~c
  in
  match outcome with
  | Simplex.Unbounded ->
      (* Impossible: every entry of [a] is >= 1, so sum w <= 1 over any
         single constraint row. *)
      assert false
  | Simplex.Optimal { objective; x = w; dual = u; basis } ->
      (* objective = 1/v' > 0 since v' is finite and positive. *)
      assert (Q.( > ) objective Q.zero);
      let usum = Array.fold_left Q.add Q.zero u in
      (* Strong duality, exactly. *)
      assert (Q.equal usum objective);
      let value = Q.sub (Q.inv objective) shift in
      let col_strategy = Array.map (fun wj -> Q.div wj objective) w in
      let row_strategy = Array.map (fun ui -> Q.div ui objective) u in
      { value; row_strategy; col_strategy; basis }

let is_distribution p =
  Array.for_all (fun v -> Q.( >= ) v Q.zero) p
  && Q.equal (Array.fold_left Q.add Q.zero p) Q.one

let is_equilibrium m (sol : solution) =
  let rows, cols = check_shape m in
  Array.length sol.row_strategy = rows
  && Array.length sol.col_strategy = cols
  && is_distribution sol.row_strategy
  && is_distribution sol.col_strategy
  (* No row beats the value against the column mix... *)
  && Array.for_all
       (fun row ->
         let payoff = ref Q.zero in
         Array.iteri
           (fun j v -> payoff := Q.add !payoff (Q.mul v sol.col_strategy.(j)))
           row;
         Q.( <= ) !payoff sol.value)
       m
  (* ...and no column drops below it against the row mix. *)
  &&
  let ok = ref true in
  for j = 0 to cols - 1 do
    let payoff = ref Q.zero in
    for i = 0 to rows - 1 do
      payoff := Q.add !payoff (Q.mul m.(i).(j) sol.row_strategy.(i))
    done;
    if Q.( < ) !payoff sol.value then ok := false
  done;
  !ok
