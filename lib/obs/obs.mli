(** Process-wide observability: named monotone counters and span tracing
    for the hot subsystems, compiled down to a dead branch when disabled.

    This is the bottom of the dependency graph on purpose — [exact],
    [matching], [defender] and [harness] all instrument themselves
    against this interface, so it depends on nothing from the repo (the
    monotonic-clock stub is the only external bit).  [Harness.Obs]
    re-exports the module for harness users.

    Three recording levels:

    - {!Off} (the default): every primitive is a single load-and-branch
      no-op.  B15 gates this cost at ≤ 1.05× on the B7 best-response
      sweep.
    - {!Counters} ([--metrics]): counters and span {e call counts} are
      recorded; the clock is never read.
    - {!Trace} ([--trace]): additionally accumulates monotonic wall-time
      per span.

    {b Determinism contract.}  Plain counters and span call counts must
    be a pure function of the computation performed — never of the
    clock, the scheduler or payload encodings — so that an experiment's
    counter delta is bit-identical between a sequential sweep and a
    [--jobs N] worker (the B14 gate).  Quantities that cannot promise
    this (e.g. pipe byte volumes, which embed rendered timing floats)
    must use {!volatile} counters instead; [Registry.strip_timings]
    removes volatile values and span durations from artifacts but keeps
    everything deterministic. *)

type level = Off | Counters | Trace

val set_level : level -> unit
val level : unit -> level

(** [true] iff the level is {!Counters} or {!Trace}. *)
val recording : unit -> bool

(** [unobserved f] runs [f] with recording forced {!Off}, restoring the
    previous level afterwards (also on exceptions).  Used around
    benchmark driver loops whose iteration counts are time-quota driven:
    letting those record would make counters depend on machine speed,
    breaking the determinism contract. *)
val unobserved : (unit -> 'a) -> 'a

(** A named monotone counter handle.  Handles are interned: the same
    name always yields the same handle, so instrumented modules create
    them once at module initialization and hot paths pay no lookup. *)
type counter

(** Intern a deterministic counter.
    @raise Invalid_argument if [name] is already a volatile counter. *)
val counter : string -> counter

(** Intern a volatile counter: recorded and reported identically, but
    excluded from the timing-stripped artifact normal form because its
    value may legitimately differ between otherwise identical runs.
    @raise Invalid_argument if [name] is already a deterministic
    counter. *)
val volatile : string -> counter

(** Add 1 when recording; free otherwise. *)
val incr : counter -> unit

(** [add c k] adds [k >= 0] when recording; free otherwise.
    @raise Invalid_argument when recording and [k < 0] (counters are
    monotone). *)
val add : counter -> int -> unit

(** [span name f] runs [f], counting one call of span [name] and — at
    {!Trace} level — accumulating its inclusive monotonic duration
    (nested spans therefore overlap by design; durations are wall time,
    not self time).  The count and duration are recorded even when [f]
    raises.  When not recording this is exactly [f ()]. *)
val span : string -> (unit -> 'a) -> 'a

(** Accumulated duration and call count of one span. *)
type span_total = { calls : int; secs : float }

(** A consistent view of every recorded value, for later {!delta}. *)
type snapshot

val snapshot : unit -> snapshot

(** What was recorded since the snapshot: positive counter/span deltas
    only (untouched names are dropped), each section sorted by name so
    two identical computations produce structurally equal metrics
    wherever they ran. *)
type metrics = {
  counters : (string * int) list;
  volatile : (string * int) list;
  spans : (string * span_total) list;
}

val delta : snapshot -> metrics

val is_empty : metrics -> bool

(** Zero every recorded value (handles stay valid — they are interned
    for the life of the process).  For tests; the level is untouched. *)
val reset : unit -> unit
