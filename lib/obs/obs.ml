(* The disabled path is the design constraint: instrumented hot loops
   (kernel patches, big-rational fallbacks, blossom phases) run with
   observability off in production sweeps, so [incr]/[add]/[span] must
   cost one mutable-bool load and a conditional branch — no allocation,
   no hashing, no clock read.  Handles are interned up front; only the
   enabled path ever touches the registry tables. *)

type level = Off | Counters | Trace

(* Split the level into the two flags the hot paths test, so [incr]
   reads a single ref. *)
let rec_flag = ref false
let time_flag = ref false

let set_level = function
  | Off ->
      rec_flag := false;
      time_flag := false
  | Counters ->
      rec_flag := true;
      time_flag := false
  | Trace ->
      rec_flag := true;
      time_flag := true

let level () =
  if not !rec_flag then Off else if !time_flag then Trace else Counters

let recording () = !rec_flag

let unobserved f =
  let saved = level () in
  set_level Off;
  Fun.protect ~finally:(fun () -> set_level saved) f

(* --- counters --- *)

type kind = Deterministic | Volatile
type counter = { c_name : string; c_kind : kind; mutable n : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let intern_counter name kind =
  match Hashtbl.find_opt counters name with
  | Some c when c.c_kind = kind -> c
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Obs: counter %S already interned with the other volatility" name)
  | None ->
      let c = { c_name = name; c_kind = kind; n = 0 } in
      Hashtbl.add counters name c;
      c

let counter name = intern_counter name Deterministic
let volatile name = intern_counter name Volatile
let incr c = if !rec_flag then c.n <- c.n + 1

let add c k =
  if !rec_flag then begin
    if k < 0 then
      invalid_arg
        (Printf.sprintf "Obs.add: counter %s is monotone (add %d)" c.c_name k);
    c.n <- c.n + k
  end

(* --- spans --- *)

type span_cell = { mutable calls : int; mutable secs : float }

let spans : (string, span_cell) Hashtbl.t = Hashtbl.create 32

let intern_span name =
  match Hashtbl.find_opt spans name with
  | Some s -> s
  | None ->
      let s = { calls = 0; secs = 0.0 } in
      Hashtbl.add spans name s;
      s

let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let span name f =
  if not !rec_flag then f ()
  else begin
    let s = intern_span name in
    s.calls <- s.calls + 1;
    if not !time_flag then f ()
    else
      let start = now () in
      Fun.protect
        ~finally:(fun () -> s.secs <- s.secs +. Float.max 0.0 (now () -. start))
        f
  end

(* --- snapshots and deltas --- *)

type span_total = { calls : int; secs : float }

type snapshot = {
  snap_counters : (string, int) Hashtbl.t;
  snap_spans : (string, int * float) Hashtbl.t;
}

let snapshot () =
  let snap_counters = Hashtbl.create (Hashtbl.length counters) in
  Hashtbl.iter (fun name c -> Hashtbl.replace snap_counters name c.n) counters;
  let snap_spans = Hashtbl.create (Hashtbl.length spans) in
  Hashtbl.iter
    (fun name (s : span_cell) -> Hashtbl.replace snap_spans name (s.calls, s.secs))
    spans;
  { snap_counters; snap_spans }

type metrics = {
  counters : (string * int) list;
  volatile : (string * int) list;
  spans : (string * span_total) list;
}

let by_name (a, _) (b, _) = String.compare a b

(* Counters are monotone and never un-interned, so every delta is
   non-negative and the snapshot's name set is a subset of the current
   one.  Zero deltas are dropped: an interned-but-untouched counter must
   not appear, or metrics would depend on which modules happen to be
   linked rather than on the work performed. *)
let delta snap =
  let det = ref [] and vol = ref [] in
  Hashtbl.iter
    (fun name c ->
      let before =
        Option.value (Hashtbl.find_opt snap.snap_counters name) ~default:0
      in
      let d = c.n - before in
      if d > 0 then
        match c.c_kind with
        | Deterministic -> det := (name, d) :: !det
        | Volatile -> vol := (name, d) :: !vol)
    counters;
  let sp = ref [] in
  Hashtbl.iter
    (fun name (s : span_cell) ->
      let bc, bs =
        Option.value (Hashtbl.find_opt snap.snap_spans name) ~default:(0, 0.0)
      in
      if s.calls - bc > 0 then
        sp :=
          (name, { calls = s.calls - bc; secs = Float.max 0.0 (s.secs -. bs) })
          :: !sp)
    spans;
  {
    counters = List.sort by_name !det;
    volatile = List.sort by_name !vol;
    spans = List.sort by_name !sp;
  }

let is_empty m = m.counters = [] && m.volatile = [] && m.spans = []

let reset () =
  Hashtbl.iter (fun _ c -> c.n <- 0) counters;
  Hashtbl.iter
    (fun _ (s : span_cell) ->
      s.calls <- 0;
      s.secs <- 0.0)
    spans
