(** Arbitrary-precision signed integers: a sign and a {!Bignat} magnitude.

    Canonical: zero always carries sign [0], so structural equality is
    numeric equality.  Thin layer — all heavy lifting is in {!Bignat}. *)

type t

val zero : t
val one : t
val minus_one : t

(** Total: every native int (including [min_int]) is representable. *)
val of_int : int -> t

(** The native-int value when representable. *)
val to_int_opt : t -> int option

(** [make ~sign mag] with [sign] in {-1, 0, 1}; the sign is forced to 0
    when [mag] is zero. @raise Invalid_argument on other signs or on
    [sign = 0] with a nonzero magnitude. *)
val make : sign:int -> Bignat.t -> t

(** [-1], [0] or [1]. *)
val sign : t -> int

(** Magnitude. *)
val abs_nat : t -> Bignat.t

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Truncated division (round toward zero, as native [/] and [mod]):
    [fst (divmod a b) * b + snd (divmod a b) = a] and the remainder has
    the dividend's sign. @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val to_float : t -> float
val to_string : t -> string

(** Parse an optional ['-'] followed by decimal digits.
    @raise Invalid_argument on anything else. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
