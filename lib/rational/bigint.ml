type t = { sign : int; mag : Bignat.t }

let zero = { sign = 0; mag = Bignat.zero }
let one = { sign = 1; mag = Bignat.one }
let minus_one = { sign = -1; mag = Bignat.one }

let make ~sign mag =
  if Bignat.is_zero mag then
    if sign = 0 || sign = 1 || sign = -1 then zero
    else invalid_arg "Bigint.make: sign not in {-1, 0, 1}"
  else if sign = 1 || sign = -1 then { sign; mag }
  else invalid_arg "Bigint.make: sign must be -1 or 1 for nonzero magnitude"

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Bignat.of_int n }
  else if n = min_int then
    (* |min_int| is not a valid [abs]; build it as max_int + 1. *)
    { sign = -1; mag = Bignat.add (Bignat.of_int max_int) Bignat.one }
  else { sign = -1; mag = Bignat.of_int (-n) }

let to_int_opt a =
  match Bignat.to_int_opt a.mag with
  | Some m -> if a.sign >= 0 then Some m else Some (-m)
  | None ->
      (* max_int + 1 = |min_int| has 3 limbs yet fits as min_int. *)
      if a.sign < 0 && Bignat.equal a.mag (Bignat.add (Bignat.of_int max_int) Bignat.one)
      then Some min_int
      else None

let sign a = a.sign
let abs_nat a = a.mag
let is_zero a = a.sign = 0
let equal a b = a.sign = b.sign && Bignat.equal a.mag b.mag

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Bignat.compare a.mag b.mag
  else Bignat.compare b.mag a.mag

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then { a with sign = 1 } else a

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { a with mag = Bignat.add a.mag b.mag }
  else
    let c = Bignat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = Bignat.sub a.mag b.mag }
    else { sign = b.sign; mag = Bignat.sub b.mag a.mag }

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = Bignat.mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else
    let q, r = Bignat.divmod a.mag b.mag in
    ( make ~sign:(a.sign * b.sign) q,
      (* truncated division: the remainder keeps the dividend's sign *)
      make ~sign:a.sign r )

let to_float a = float_of_int a.sign *. Bignat.to_float a.mag

let to_string a =
  if a.sign < 0 then "-" ^ Bignat.to_string a.mag else Bignat.to_string a.mag

let of_string s =
  let negative = String.length s > 0 && s.[0] = '-' in
  let digits = if negative then String.sub s 1 (String.length s - 1) else s in
  let mag = Bignat.of_string digits in
  make ~sign:(if negative then -1 else 1) mag

let pp fmt a = Format.pp_print_string fmt (to_string a)
