(* Two-representation numeric tower.

   [S] is the seed representation — a normalized fraction of native 63-bit
   ints — and stays the only representation the equilibrium hot loops ever
   see (paper-sized instances have denominators far below [max_int]).
   Every primitive first attempts the overflow-checked native computation;
   the (rare) [Overflow] signal is caught and the operation replayed over
   [Bigint]/[Bignat], yielding a [B] value.  Results are demoted back to
   [S] whenever they fit, so the representation is canonical: a value is
   [B] iff its numerator or denominator exceeds the native range, and
   structural equality on the representation is numeric equality. *)

type t =
  | S of { num : int; den : int }
  | B of { bnum : Bigint.t; bden : Bignat.t }

exception Overflow
exception Division_by_zero

(* Observability sits only on the cold paths: a native S×S operation
   that falls through to big arithmetic (a promotion), the big-path
   operations themselves, and successful demotions back to S.  The S×S
   success path — the one B13 gates at ≤ 1.10× of the seed — records
   nothing and gains no code. *)
let c_promotions = Obs.counter "q.promotions"
let c_big_ops = Obs.counter "q.big_ops"
let c_demotions = Obs.counter "q.demotions"

(* --- overflow-checked native primitives (the fast path) --- *)

(* [min_int] is excluded outright from the S representation: its negation
   is itself, which breaks normalization. *)
let neg_ovf a = if a = min_int then raise Overflow else -a

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Invariant: den > 0 and gcd (|num|, den) = 1. *)
let norm num den =
  if den = 0 then raise Division_by_zero;
  let num, den = if den < 0 then (neg_ovf num, neg_ovf den) else (num, den) in
  if num = 0 then S { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    S { num = num / g; den = den / g }

let zero = S { num = 0; den = 1 }
let one = S { num = 1; den = 1 }
let minus_one = S { num = -1; den = 1 }

(* --- the big path --- *)

(* A 1- or 2-limb Bignat is always <= max_int, so a normalized big
   fraction demotes exactly when both components pass [to_int_opt]. *)
let demote bnum bden =
  match (Bigint.to_int_opt bnum, Bignat.to_int_opt bden) with
  | Some n, Some d when n <> min_int ->
      Obs.incr c_demotions;
      S { num = n; den = d }
  | _ -> B { bnum; bden }

let nat_div a b = fst (Bignat.divmod a b)

(* Normalized big fraction from a signed numerator/denominator pair. *)
let big_norm bnum bden =
  if Bigint.is_zero bden then raise Division_by_zero;
  let bnum = if Bigint.sign bden < 0 then Bigint.neg bnum else bnum in
  if Bigint.is_zero bnum then zero
  else
    let nmag = Bigint.abs_nat bnum and dmag = Bigint.abs_nat bden in
    let g = Bignat.gcd nmag dmag in
    demote
      (Bigint.make ~sign:(Bigint.sign bnum) (nat_div nmag g))
      (nat_div dmag g)

let to_big = function
  | S { num; den } -> (Bigint.of_int num, Bignat.of_int den)
  | B { bnum; bden } -> (bnum, bden)

let of_big ~num ~den = big_norm num den

let big_add a b =
  Obs.incr c_big_ops;
  let na, da = to_big a and nb, db = to_big b in
  let da' = Bigint.make ~sign:1 da and db' = Bigint.make ~sign:1 db in
  big_norm
    (Bigint.add (Bigint.mul na db') (Bigint.mul nb da'))
    (Bigint.mul da' db')

let big_mul a b =
  Obs.incr c_big_ops;
  let na, da = to_big a and nb, db = to_big b in
  big_norm (Bigint.mul na nb)
    (Bigint.mul (Bigint.make ~sign:1 da) (Bigint.make ~sign:1 db))

(* --- construction & accessors --- *)

let make num den =
  if num = min_int || den = min_int then
    big_norm (Bigint.of_int num) (Bigint.of_int den)
  else norm num den

let of_int n =
  if n = min_int then B { bnum = Bigint.of_int n; bden = Bignat.one }
  else S { num = n; den = 1 }

let num = function S { num; _ } -> num | B _ -> raise Overflow
let den = function S { den; _ } -> den | B _ -> raise Overflow
let is_small = function S _ -> true | B _ -> false

(* --- arithmetic --- *)

let neg = function
  | S { num; den } -> S { num = -num; den } (* num <> min_int by invariant *)
  | B { bnum; bden } -> B { bnum = Bigint.neg bnum; bden }

(* The three hot operations (add, mul, compare) detect overflow with
   branch predicates instead of try/with: installing an exception handler
   per operation costs a few percent against the seed's fixed-width
   arithmetic, which B13 gates at <= 10%.  A predicate failing routes to
   the big path exactly where the seed raised [Overflow]. *)

let add a b =
  match (a, b) with
  | S a', S b' ->
      (* Knuth's trick keeps intermediates small: work modulo the gcd of
         the denominators before cross-multiplying.  Denominators are
         positive and numerators are never [min_int] by the S invariant,
         so [p / q = expected] catches every wrap. *)
      let g = gcd a'.den b'.den in
      let da = a'.den / g and db = b'.den / g in
      let n1 = a'.num * db in
      let n2 = b'.num * da in
      let n = n1 + n2 in
      let d = a'.den * db in
      if
        n1 / db = a'.num
        && n1 <> min_int
        && n2 / da = b'.num
        && n2 <> min_int
        && not ((n1 >= 0) = (n2 >= 0) && (n >= 0) <> (n1 >= 0))
        && n <> min_int
        && d / db = a'.den
        && d <> min_int
      then norm n d
      else begin
        Obs.incr c_promotions;
        big_add a b
      end
  | _ -> big_add a b

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | S a', S b' ->
      let g1 = gcd (abs a'.num) b'.den and g2 = gcd (abs b'.num) a'.den in
      let na = a'.num / g1 and nb = b'.num / g2 in
      let da = a'.den / g2 and db = b'.den / g1 in
      let n = na * nb in
      let d = da * db in
      if
        (nb = 0 || (n / nb = na && n <> min_int))
        && d / db = da
        && d <> min_int
      then norm n d
      else begin
        Obs.incr c_promotions;
        big_mul a b
      end
  | _ -> big_mul a b

let inv = function
  | S { num; den } ->
      if num = 0 then raise Division_by_zero
      else if num > 0 then S { num = den; den = num }
      else S { num = -den; den = -num }
  | B { bnum; bden } ->
      if Bigint.is_zero bnum then raise Division_by_zero
      else begin
        Obs.incr c_big_ops;
        (* gcd (|bnum|, bden) = 1 already, so the swap needs no
           renormalization; it may demote (e.g. small num over big den). *)
        demote
          (Bigint.make ~sign:(Bigint.sign bnum) bden)
          (Bigint.abs_nat bnum)
      end

let div a b = mul a (inv b)
let mul_int q n = mul q (of_int n)
let div_int q n = div q (of_int n)

let binomial n k =
  if n < 0 || k < 0 then invalid_arg "Q.binomial: negative argument";
  if k > n then zero
  else begin
    (* Multiplicative form over the tower: after step i the accumulator
       is C(n-k+i, i), an integer, so the division is always exact and
       the result is the true count at any magnitude. *)
    let k = if k > n - k then n - k else k in
    let acc = ref one in
    for i = 1 to k do
      acc := div_int (mul_int !acc (n - k + i)) i
    done;
    !acc
  end

let sign = function
  | S { num; _ } -> compare num 0
  | B { bnum; _ } -> Bigint.sign bnum

let abs a = if sign a < 0 then neg a else a

let big_compare a b =
  Obs.incr c_big_ops;
  let na, da = to_big a and nb, db = to_big b in
  Bigint.compare
    (Bigint.mul na (Bigint.make ~sign:1 db))
    (Bigint.mul nb (Bigint.make ~sign:1 da))

let compare a b =
  match (a, b) with
  | S a', S b' ->
      (* Exact comparison via cross multiplication with shared-factor
         removal. *)
      if a'.den = b'.den then Stdlib.compare a'.num b'.num
      else
        let g = gcd a'.den b'.den in
        let da = a'.den / g and db = b'.den / g in
        let x = a'.num * db in
        let y = b'.num * da in
        if x / db = a'.num && x <> min_int && y / da = b'.num && y <> min_int
        then Stdlib.compare x y
        else begin
          Obs.incr c_promotions;
          big_compare a b
        end
  | _ -> big_compare a b

(* Canonical representations: cross-constructor values are never equal. *)
let equal a b =
  match (a, b) with
  | S a', S b' -> a'.num = b'.num && a'.den = b'.den
  | B a', B b' -> Bigint.equal a'.bnum b'.bnum && Bignat.equal a'.bden b'.bden
  | S _, B _ | B _, S _ -> false

let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let is_zero = function
  | S { num; _ } -> Stdlib.( = ) num 0
  | B _ -> false (* zero is small by canonicality *)

let is_integer = function
  | S { den; _ } -> Stdlib.( = ) den 1
  | B { bden; _ } -> Bignat.equal bden Bignat.one

let to_int_exn = function
  | S { num; den } ->
      if Stdlib.( = ) den 1 then num
      else invalid_arg "Q.to_int_exn: not an integer"
  | B { bden; _ } ->
      if Bignat.equal bden Bignat.one then raise Overflow
      else invalid_arg "Q.to_int_exn: not an integer"

let to_float = function
  | S { num; den } -> float_of_int num /. float_of_int den
  | B { bnum; bden } ->
      (* Scale both sides into float range before dividing, then undo the
         scaling; avoids inf/inf on very large fractions. *)
      let nmag = Bigint.abs_nat bnum in
      let sn = Stdlib.max 0 (Bignat.bit_length nmag - 64) in
      let sd = Stdlib.max 0 (Bignat.bit_length bden - 64) in
      let n = Bignat.to_float (Bignat.shift_right nmag sn) in
      let d = Bignat.to_float (Bignat.shift_right bden sd) in
      let v = n /. d *. (2.0 ** float_of_int (sn - sd)) in
      if Stdlib.( < ) (Bigint.sign bnum) 0 then -.v else v

let sum qs = List.fold_left add zero qs

let average = function
  | [] -> invalid_arg "Q.average: empty list"
  | qs -> div_int (sum qs) (List.length qs)

let min_list = function
  | [] -> invalid_arg "Q.min_list: empty list"
  | q :: qs -> List.fold_left min q qs

let max_list = function
  | [] -> invalid_arg "Q.max_list: empty list"
  | q :: qs -> List.fold_left max q qs

let to_string = function
  | S { num; den } ->
      if Stdlib.( = ) den 1 then string_of_int num
      else Printf.sprintf "%d/%d" num den
  | B { bnum; bden } ->
      if Bignat.equal bden Bignat.one then Bigint.to_string bnum
      else Bigint.to_string bnum ^ "/" ^ Bignat.to_string bden

let of_string_opt s =
  let parse_int part =
    (* fast path: native parse; fall back to big decimals *)
    match int_of_string_opt part with
    | Some n -> Some (Bigint.of_int n)
    | None -> ( try Some (Bigint.of_string part) with Invalid_argument _ -> None)
  in
  match String.split_on_char '/' s with
  | [ n ] -> (
      match parse_int n with
      | Some n -> Some (big_norm n Bigint.one)
      | None -> None)
  | [ n; d ] -> (
      match (parse_int n, parse_int d) with
      | Some n, Some d when not (Bigint.is_zero d) -> Some (big_norm n d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some q -> q
  | None -> invalid_arg ("Q.of_string: bad rational " ^ s)

let pp fmt a = Format.pp_print_string fmt (to_string a)
