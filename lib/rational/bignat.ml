(* Arbitrary-precision naturals on base-2^31 limbs (little-endian int
   arrays, canonical: no trailing zeros, zero = [||]).

   The base is chosen so every intermediate of the schoolbook loops fits a
   63-bit native int: a limb product is < 2^62, and product + carry +
   addend stays <= max_int = 2^62 - 1.  Knuth Algorithm D's quotient-digit
   estimate likewise needs only two-limb intermediates. *)

type t = int array

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

let zero = [||]
let one = [| 1 |]

let is_zero a = Array.length a = 0

(* Strip trailing zero limbs (shared normalization step). *)
let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative"
  else if n = 0 then zero
  else if n < base then [| n |]
  else [| n land mask; n lsr base_bits |]

(* Any value of <= 2 limbs is <= 2^62 - 1 = max_int, so it always fits. *)
let to_int_opt a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl base_bits))
  | _ -> None

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let int_bits n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let bit_length a =
  let l = Array.length a in
  if l = 0 then 0 else ((l - 1) * base_bits) + int_bits a.(l - 1)

let add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let out = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  out.(l) <- !carry;
  trim out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  trim out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          (* ai*bj < 2^62; + two sub-2^31 terms stays <= max_int *)
          let p = (ai * b.(j)) + out.(i + j) + !carry in
          out.(i + j) <- p land mask;
          carry := p lsr base_bits
        done;
        out.(i + lb) <- out.(i + lb) + !carry
      end
    done;
    trim out
  end

(* Left shift by [s] bits, 0 <= s < base_bits, into a fresh array of
   length [extra] + enough limbs (used by division normalization). *)
let shift_left_bits a s ~extra =
  let la = Array.length a in
  let out = Array.make (la + 1 + extra) 0 in
  if s = 0 then Array.blit a 0 out 0 la
  else begin
    let carry = ref 0 in
    for i = 0 to la - 1 do
      out.(i) <- ((a.(i) lsl s) lor !carry) land mask;
      carry := a.(i) lsr (base_bits - s)
    done;
    out.(la) <- !carry
  end;
  out

let shift_right_bits a s =
  if s = 0 then trim (Array.copy a)
  else begin
    let la = Array.length a in
    let out = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr s in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - s)) land mask else 0 in
      out.(i) <- lo lor hi
    done;
    trim out
  end

(* Division by a single limb: one pass of short division. *)
let divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (trim q, of_int !r)

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D. *)
let divmod_knuth a b =
  let n = Array.length b in
  (* D1: normalize so the divisor's top limb has its high bit set. *)
  let shift = base_bits - int_bits b.(n - 1) in
  let u = shift_left_bits a shift ~extra:0 in
  let v = trim (shift_left_bits b shift ~extra:0) in
  let m = Array.length u - n in
  let q = Array.make m 0 in
  let vtop = v.(n - 1) and vnext = v.(n - 2) in
  for j = m - 1 downto 0 do
    (* D3: estimate the quotient digit from the top two remainder limbs. *)
    let num2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (num2 / vtop) and rhat = ref (num2 mod vtop) in
    let continue = ref true in
    while
      !continue
      && (!qhat >= base
         || !qhat * vnext > (!rhat lsl base_bits) lor u.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + vtop;
      if !rhat >= base then continue := false
    done;
    (* D4: multiply and subtract. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(j + i) - (p land mask) - !borrow in
      if d < 0 then begin
        u.(j + i) <- d + base;
        borrow := 1
      end
      else begin
        u.(j + i) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* D6: qhat was one too large; add the divisor back. *)
      u.(j + n) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(j + i) + v.(i) + !carry in
        u.(j + i) <- s land mask;
        carry := s lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  (* D8: denormalize the remainder. *)
  (trim q, shift_right_bits (trim (Array.sub u 0 n)) shift)

(* The two entry points the rational layer leans on, counted so a
   sweep's metrics show how much long division the big path cost.  gcd
   counts once per Euclid run, not per internal division. *)
let c_divmods = Obs.counter "bignat.divmods"
let c_gcds = Obs.counter "bignat.gcds"

let divmod a b =
  Obs.incr c_divmods;
  match Array.length b with
  | 0 -> raise Division_by_zero
  | _ when compare a b < 0 -> (zero, trim (Array.copy a))
  | 1 -> divmod_small a b.(0)
  | _ -> divmod_knuth a b

let gcd a b =
  Obs.incr c_gcds;
  let rec go a b = if is_zero b then a else go b (snd (divmod a b)) in
  go a b

let shift_right a k =
  if k < 0 then invalid_arg "Bignat.shift_right: negative shift"
  else
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else shift_right_bits (Array.sub a limbs (la - limbs)) bits

let to_float a =
  Array.fold_right (fun limb acc -> (acc *. 2147483648.0) +. float_of_int limb) a 0.0

(* Decimal conversion works in chunks of 9 digits (10^9 < 2^31). *)
let chunk = 1_000_000_000

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a acc =
      if is_zero a then acc
      else
        let q, r = divmod_small a chunk in
        go q ((match to_int_opt r with Some r -> r | None -> assert false) :: acc)
    in
    (match go a [] with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let mul_add_small a m c =
  (* a * m + c for native m, c in [0, 2^31); one fused pass. *)
  let la = Array.length a in
  let out = Array.make (la + 2) 0 in
  let carry = ref c in
  for i = 0 to la - 1 do
    let p = (a.(i) * m) + !carry in
    out.(i) <- p land mask;
    carry := p lsr base_bits
  done;
  out.(la) <- !carry land mask;
  out.(la + 1) <- !carry lsr base_bits;
  trim out

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bignat.of_string: empty string";
  String.iter
    (function '0' .. '9' -> () | _ -> invalid_arg "Bignat.of_string: not a digit")
    s;
  let pow10 = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000;
                 100_000_000; 1_000_000_000 |] in
  let acc = ref zero in
  let i = ref 0 in
  while !i < len do
    let take = Stdlib.min 9 (len - !i) in
    let part = int_of_string (String.sub s !i take) in
    acc := mul_add_small !acc pow10.(take) part;
    i := !i + take
  done;
  !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)
