(** Exact rational arithmetic: a two-representation numeric tower.

    Values are kept normalized (denominator strictly positive, numerator
    and denominator coprime) in one of two representations: a fraction of
    native 63-bit ints — the fast path every hot loop stays on — or, when
    any component outgrows the native range, an arbitrary-precision
    fraction over {!Bigint}/{!Bignat}.  Promotion is transparent: an
    operation whose native intermediate would overflow is replayed over
    the big representation instead of failing, and results are demoted
    back to the native representation whenever they fit, so the
    representation of a value is canonical.  Arithmetic therefore never
    raises {!Overflow} — results are always exact — and the seed
    limitation (63-bit fractions crashing on long fictitious-play
    averages, uniform mixes over huge tuple spaces, or LP pivot growth)
    is gone. *)

type t

(** Raised only by the native-int {e accessors} ({!num}, {!den},
    {!to_int_exn}) when the value does not fit the native range.
    Arithmetic never raises this: overflowing operations promote to the
    arbitrary-precision representation instead. *)
exception Overflow

(** Raised by {!make}, {!of_big}, {!div} and {!inv} on a zero
    denominator. *)
exception Division_by_zero

val zero : t
val one : t
val minus_one : t

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)
val make : int -> int -> t

(** [of_int n] is the rational [n/1]. *)
val of_int : int -> t

(** [of_big ~num ~den] is the normalized arbitrary-precision rational
    [num/den] (demoted to the native representation when it fits).
    @raise Division_by_zero if [den] is zero. *)
val of_big : num:Bigint.t -> den:Bigint.t -> t

(** The normalized numerator/denominator pair, in arbitrary precision
    ([den] as a natural — it is always positive).  Total. *)
val to_big : t -> Bigint.t * Bignat.t

(** Numerator of the normalized representation.
    @raise Overflow when it exceeds the native range. *)
val num : t -> int

(** Denominator of the normalized representation; always [> 0].
    @raise Overflow when it exceeds the native range. *)
val den : t -> int

(** [true] iff the value is held in the native fast-path representation
    (numerator and denominator both native ints).  Diagnostic — used by
    the promotion tests and the B13 microbenchmark. *)
val is_small : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is zero. *)
val div : t -> t -> t

val neg : t -> t

(** Multiplicative inverse. @raise Division_by_zero on zero. *)
val inv : t -> t

(** [mul_int q n] is [q * n]. *)
val mul_int : t -> int -> t

(** [div_int q n] is [q / n]. @raise Division_by_zero if [n = 0]. *)
val div_int : t -> int -> t

(** [binomial n k] is the exact binomial coefficient C(n, k) as an
    integer rational, at any magnitude (the strategy-space counters use
    it instead of wrap-detecting native products).  [0] when [k > n].
    @raise Invalid_argument on negative arguments. *)
val binomial : int -> int -> t

val abs : t -> t

(** [-1], [0] or [1]. *)
val sign : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool

(** [true] iff the denominator is 1. *)
val is_integer : t -> bool

(** Exact integer value. @raise Invalid_argument if not an integer.
    @raise Overflow if integral but outside the native range. *)
val to_int_exn : t -> int

(** Nearest double (scaled division — correct even when both components
    exceed the float range). *)
val to_float : t -> float

(** Sum of a list; [zero] for the empty list. *)
val sum : t list -> t

(** Arithmetic mean. @raise Invalid_argument on the empty list. *)
val average : t list -> t

(** Minimum of a non-empty list. @raise Invalid_argument on []. *)
val min_list : t list -> t

(** Maximum of a non-empty list. @raise Invalid_argument on []. *)
val max_list : t list -> t

(** ["num/den"], or just ["num"] when the value is an integer.  Exact at
    any magnitude — the inverse of {!of_string}. *)
val to_string : t -> string

(** Parse [to_string]'s format — an optionally-signed decimal integer
    with an optional [/den] part — at any magnitude.
    @raise Invalid_argument on malformed input or a zero denominator. *)
val of_string : string -> t

(** [of_string] returning [None] instead of raising. *)
val of_string_opt : string -> t option

val pp : Format.formatter -> t -> unit
