(** Arbitrary-precision natural numbers (pure OCaml, no zarith).

    Little-endian arrays of base-2{^31} limbs: every limb fits in a native
    int with enough headroom that a limb product plus two carries stays
    below [max_int], so schoolbook multiplication and Knuth division need
    no wider intermediate type.  Values are canonical (no trailing zero
    limbs; zero is the empty array), so structural equality of the limb
    arrays coincides with numeric equality.

    This module is the substrate of {!Bigint} and of the big branch of the
    {!Q} numeric tower; it is not performance-critical on the small/fast
    path, only correctness-critical. *)

type t

val zero : t
val one : t

(** [of_int n] for [n >= 0]. @raise Invalid_argument on negative input. *)
val of_int : int -> t

(** The native-int value when it is representable ([<= max_int]). *)
val to_int_opt : t -> int option

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** Number of significant bits; 0 for zero. *)
val bit_length : t -> int

val add : t -> t -> t

(** [sub a b] requires [a >= b]. @raise Invalid_argument otherwise. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)] with [0 <= a mod b < b].
    Knuth Algorithm D. @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

(** Greatest common divisor; [gcd zero b = b]. *)
val gcd : t -> t -> t

(** [shift_right a k] is [a / 2{^k}] (any [k >= 0]).
    @raise Invalid_argument on negative [k]. *)
val shift_right : t -> int -> t

(** Closest double; [infinity] when the value exceeds the float range. *)
val to_float : t -> float

(** Decimal digits. *)
val to_string : t -> string

(** Parse a non-empty decimal digit string.
    @raise Invalid_argument on anything else. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
