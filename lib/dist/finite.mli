(** Finite probability distributions over integer-keyed outcomes with exact
    rational probabilities.

    Mixed strategies of both vertex players (over vertices) and the tuple
    player (over tuple indices) are values of this type; keys are dense in
    neither case, so the distribution stores only its support. *)

type t

(** [make pairs] builds a distribution from [(outcome, probability)] pairs.
    Zero-probability pairs are dropped; duplicate outcomes are summed.
    @raise Invalid_argument if a probability is negative or the total is
    not exactly 1. *)
val make : (int * Exact.Q.t) list -> t

(** Uniform distribution over the given outcomes (deduplicated).
    @raise Invalid_argument on the empty list. *)
val uniform : int list -> t

(** Point mass. *)
val point : int -> t

(** Probability of an outcome (zero off support). *)
val prob : t -> int -> Exact.Q.t

(** Support, sorted ascending; probabilities are strictly positive. *)
val support : t -> int list

val support_size : t -> int

(** [true] iff the distribution is a point mass. *)
val is_pure : t -> bool

(** The outcome of a point mass. @raise Invalid_argument otherwise. *)
val pure_outcome : t -> int

(** Expectation of a rational-valued function over the support. *)
val expect : t -> f:(int -> Exact.Q.t) -> Exact.Q.t

(** Left fold over the [(outcome, probability)] pairs, in outcome order. *)
val fold : t -> init:'a -> f:('a -> int -> Exact.Q.t -> 'a) -> 'a

(** Iterate over the [(outcome, probability)] pairs, in outcome order. *)
val iter : t -> f:(int -> Exact.Q.t -> unit) -> unit

(** Probability of a predicate. *)
val prob_of : t -> f:(int -> bool) -> Exact.Q.t

(** Total-variation distance. *)
val tv_distance : t -> t -> Exact.Q.t

(** Map outcomes (merging collisions). *)
val map : t -> f:(int -> int) -> t

val equal : t -> t -> bool

(** Sample an outcome (CDF inversion on exact probabilities converted to
    floats; exactness is irrelevant for sampling). *)
val sample : Prng.Rng.t -> t -> int

val pp : Format.formatter -> t -> unit
