module Q = Exact.Q

(* Sorted association array by outcome; probabilities strictly positive and
   summing to exactly one. *)
type t = { pairs : (int * Q.t) array }

let build ~caller pairs =
  let table = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (x, p) ->
      if Q.sign p < 0 then
        invalid_arg (Printf.sprintf "Finite.%s: negative probability" caller);
      if not (Q.is_zero p) then
        let prev = Option.value (Hashtbl.find_opt table x) ~default:Q.zero in
        Hashtbl.replace table x (Q.add prev p))
    pairs;
  let collected = Hashtbl.fold (fun x p acc -> (x, p) :: acc) table [] in
  let arr = Array.of_list collected in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

let make pairs =
  let arr = build ~caller:"make" pairs in
  let total = Array.fold_left (fun acc (_, p) -> Q.add acc p) Q.zero arr in
  if not (Q.equal total Q.one) then
    invalid_arg
      (Printf.sprintf "Finite.make: probabilities sum to %s, not 1" (Q.to_string total));
  { pairs = arr }

let uniform outcomes =
  match List.sort_uniq compare outcomes with
  | [] -> invalid_arg "Finite.uniform: empty support"
  | distinct ->
      let p = Q.make 1 (List.length distinct) in
      { pairs = Array.of_list (List.map (fun x -> (x, p)) distinct) }

let point x = { pairs = [| (x, Q.one) |] }

let prob t x =
  let rec search lo hi =
    if lo >= hi then Q.zero
    else
      let mid = (lo + hi) / 2 in
      let y, p = t.pairs.(mid) in
      if y = x then p else if y < x then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length t.pairs)

let support t = Array.to_list (Array.map fst t.pairs)
let support_size t = Array.length t.pairs
let is_pure t = Array.length t.pairs = 1

let pure_outcome t =
  if is_pure t then fst t.pairs.(0)
  else invalid_arg "Finite.pure_outcome: distribution is mixed"

let expect t ~f =
  Array.fold_left (fun acc (x, p) -> Q.add acc (Q.mul p (f x))) Q.zero t.pairs

let fold t ~init ~f =
  Array.fold_left (fun acc (x, p) -> f acc x p) init t.pairs

let iter t ~f = Array.iter (fun (x, p) -> f x p) t.pairs

let prob_of t ~f =
  Array.fold_left
    (fun acc (x, p) -> if f x then Q.add acc p else acc)
    Q.zero t.pairs

let tv_distance a b =
  let outcomes = List.sort_uniq compare (support a @ support b) in
  let sum =
    List.fold_left
      (fun acc x -> Q.add acc (Q.abs (Q.sub (prob a x) (prob b x))))
      Q.zero outcomes
  in
  Q.div_int sum 2

let map t ~f =
  let remapped = Array.to_list (Array.map (fun (x, p) -> (f x, p)) t.pairs) in
  { pairs = build ~caller:"map" remapped }

let equal a b =
  Array.length a.pairs = Array.length b.pairs
  && Array.for_all2 (fun (x, p) (y, q) -> x = y && Q.equal p q) a.pairs b.pairs

let sample rng t =
  let target = Prng.Rng.float rng in
  let len = Array.length t.pairs in
  let rec scan i acc =
    if i = len - 1 then fst t.pairs.(i)
    else
      let acc = acc +. Q.to_float (snd t.pairs.(i)) in
      if target < acc then fst t.pairs.(i) else scan (i + 1) acc
  in
  scan 0 0.0

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>{";
  Array.iteri
    (fun i (x, p) ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%d: %s" x (Q.to_string p))
    t.pairs;
  Format.fprintf fmt "}@]"
