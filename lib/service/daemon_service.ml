(* The defender instantiation of Harness.Daemon: request vocabulary,
   cache key, and the worker-side handler.  See daemon_service.mli. *)

module Json = Harness.Json

let get_string key msg =
  match Json.member key msg with
  | Some (Json.String s) -> Some s
  | _ -> None

let get_int ?default key msg =
  match Json.member key msg with
  | Some (Json.Int i) -> i
  | Some _ -> invalid_arg (Printf.sprintf "field %S must be an integer" key)
  | None -> (
      match default with
      | Some d -> d
      | None -> invalid_arg (Printf.sprintf "missing integer field %S" key))

let get_graph msg =
  match get_string "graph6" msg with
  | Some s -> Netgraph.Graph6.decode s
  | None -> invalid_arg "missing string field \"graph6\""

let get_game msg =
  match get_string "game" msg with
  | None | Some "tuple" -> `Tuple
  | Some "subgraph" -> `Subgraph
  | Some other -> invalid_arg (Printf.sprintf "unknown game %S" other)

let get_method msg =
  match get_string "method" msg with
  | None | Some "characterization" -> `Characterization
  | Some "double-oracle" -> `Double_oracle
  | Some other -> invalid_arg (Printf.sprintf "unknown solve method %S" other)

(* The solve cache key: canonical form of the graph plus every parameter
   the answer depends on.  Solve only — its result payload is built
   exclusively from isomorphism-invariant quantities (gain, escape
   probability, rho, a verdict), so two relabelings of one graph may
   share the entry.  profit and equilibrium-check take a profile written
   in the client's labeling; their answers are label-dependent, so they
   must never be cached under a label-erasing key.

   Canonicalization is the expensive part of the key, and clients
   overwhelmingly resend the graph as the same graph6 bytes — so the
   bytes-to-canonical mapping is memoized in its own small LRU.  This is
   sound because equal graph6 strings decode to the identical graph.  A
   relabeled resend misses the memo and pays one canonicalization, then
   lands on the same solve-cache entry. *)
let canon_memo : string Harness.Lru.t = Harness.Lru.create 4096

let canonical_of g6 =
  match Harness.Lru.find canon_memo g6 with
  | Some c -> c
  | None ->
      let c = Netgraph.Graph6.canonical (Netgraph.Graph6.decode g6) in
      Harness.Lru.add canon_memo g6 c;
      c

let cache_key msg =
  match get_string "op" msg with
  | Some "solve" -> (
      try
        let g6 =
          match get_string "graph6" msg with
          | Some s -> s
          | None -> invalid_arg "missing string field \"graph6\""
        in
        let game, power =
          match get_game msg with
          | `Tuple -> ("tuple", get_int "k" msg ~default:1)
          | `Subgraph -> ("subgraph", get_int "lambda" msg ~default:1)
        in
        (* The method joins the key only for double-oracle, so every key
           minted before the method field existed stays valid — a
           characterization solve hits the same entry whether or not the
           client spells out the default. *)
        let method_suffix =
          match get_method msg with
          | `Characterization -> ""
          | `Double_oracle -> "|method=double-oracle"
        in
        Some
          (Printf.sprintf "%s|game=%s|p=%d|nu=%d%s" (canonical_of g6) game
             power
             (get_int "nu" msg ~default:1)
             method_suffix)
      with _ -> None)
  | _ -> None

let ok result = Json.Obj [ ("ok", Json.Bool true); ("result", result) ]
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let q_string q = Json.String (Exact.Q.to_string q)

let model_of msg g =
  Defender.Model.make ~graph:g ~nu:(get_int "nu" msg ~default:1)
    ~k:(get_int "k" msg ~default:1)

let profile_of msg m =
  match get_string "profile" msg with
  | Some text -> Defender.Profile_io.of_string m text
  | None -> invalid_arg "missing string field \"profile\""

(* The double-oracle solve payloads carry only isomorphism-invariant
   quantities (value, gain, escape, a verdict) — NEVER the iteration or
   oracle-call counts, which depend on vertex labels through the seed
   sets and would poison the label-erasing cache key. *)
let solve_double_oracle_tuple msg g =
  let m = model_of msg g in
  let module DO = Solver.Instances.Tuple in
  let r = DO.solve m in
  let prof = DO.profile m r in
  ok
    (Json.Obj
       [
         ("solvable", Json.Bool true);
         ("value", q_string r.DO.value);
         ( "gain",
           q_string (Exact.Q.mul_int r.DO.value (get_int "nu" msg ~default:1))
         );
         ("escape", q_string (Exact.Q.sub Exact.Q.one r.DO.value));
         ("rho", Json.Int (Matching.Edge_cover.rho g));
         ( "verdict",
           Json.String
             (Defender.Verify.verdict_to_string
                (Defender.Verify.mixed_ne Defender.Verify.Oracle prof)) );
       ])

let solve_double_oracle_subgraph msg g =
  let inst =
    Defender.Subgraph_game.make ~graph:g
      ~nu:(get_int "nu" msg ~default:1)
      ~lambda:(get_int "lambda" msg ~default:1)
  in
  let module DOS = Solver.Instances.Subgraph in
  let module SEngine = Defender.Subgraph_instance.Engine in
  let r = DOS.solve inst in
  let prof = DOS.profile inst r in
  ok
    (Json.Obj
       [
         ("solvable", Json.Bool true);
         ("value", q_string r.DOS.value);
         ( "gain",
           q_string (Exact.Q.mul_int r.DOS.value (get_int "nu" msg ~default:1))
         );
         ("escape", q_string (Exact.Q.sub Exact.Q.one r.DOS.value));
         ( "verdict",
           Json.String
             (SEngine.Verify.verdict_to_string
                (SEngine.Verify.mixed_ne SEngine.Verify.Oracle prof)) );
       ])

let solve msg =
  let g = get_graph msg in
  match (get_method msg, get_game msg) with
  | `Double_oracle, `Tuple -> solve_double_oracle_tuple msg g
  | `Double_oracle, `Subgraph -> solve_double_oracle_subgraph msg g
  | `Characterization, `Subgraph ->
      invalid_arg
        "solve supports the tuple game only (no subgraph characterization); \
         use \"method\":\"double-oracle\""
  | `Characterization, `Tuple -> (
      let m = model_of msg g in
      match Defender.Tuple_nash.a_tuple_auto m with
      | Error reason ->
          (* A negative answer is still an isomorphism-invariant fact
             about the instance — cacheable, hence inside the ok
             envelope. *)
          ok
            (Json.Obj
               [ ("solvable", Json.Bool false); ("reason", Json.String reason) ])
      | Ok prof ->
          ok
            (Json.Obj
               [
                 ("solvable", Json.Bool true);
                 ("gain", q_string (Defender.Gain.defender_gain prof));
                 ("escape", q_string (Defender.Gain.escape_probability prof 0));
                 ("rho", Json.Int (Matching.Edge_cover.rho g));
                 ( "verdict",
                   Json.String
                     (Defender.Verify.verdict_to_string
                        (Defender.Verify.mixed_ne Defender.Verify.Certificate
                           prof)) );
               ]))

let profit msg =
  let g = get_graph msg in
  let m = model_of msg g in
  let prof = profile_of msg m in
  let nu = get_int "nu" msg ~default:1 in
  ok
    (Json.Obj
       [
         ("gain", q_string (Defender.Gain.defender_gain prof));
         ( "escape",
           Json.List
             (List.init nu (fun i ->
                  q_string (Defender.Gain.escape_probability prof i))) );
       ])

let equilibrium_check msg =
  let g = get_graph msg in
  let m = model_of msg g in
  let prof = profile_of msg m in
  let mode =
    match get_string "mode" msg with
    | None | Some "certificate" -> Defender.Verify.Certificate
    | Some "exhaustive" -> Defender.Verify.Exhaustive 2_000_000
    | Some "oracle" -> Defender.Verify.Oracle
    | Some other -> invalid_arg (Printf.sprintf "unknown verify mode %S" other)
  in
  let verdict = Defender.Verify.mixed_ne mode prof in
  ok
    (Json.Obj
       [
         ("confirmed", Json.Bool (Defender.Verify.verdict_is_confirmed verdict));
         ("verdict", Json.String (Defender.Verify.verdict_to_string verdict));
       ])

(* Total: every failure becomes an {"ok":false} payload.  An exception
   escaping here would cost a worker respawn and a retry that must fail
   identically — pure waste for what is always a bad-input condition. *)
let describe = function
  | Invalid_argument msg | Failure msg | Sys_error msg -> msg
  | e -> Printexc.to_string e

let handle msg =
  match get_string "op" msg with
  | Some "solve" -> ( try solve msg with e -> error (describe e))
  | Some "profit" -> ( try profit msg with e -> error (describe e))
  | Some "equilibrium-check" -> (
      try equilibrium_check msg with e -> error (describe e))
  | Some other -> error (Printf.sprintf "unknown op %S" other)
  | None -> error "request has no \"op\" string"

let serve ~address ~workers ?timeout ?max_inflight ?cache_entries ?max_frame
    ?on_ready () =
  Harness.Daemon.serve ~address ~workers ?timeout ?max_inflight ?cache_entries
    ?max_frame ?on_ready ~cache_key handle
