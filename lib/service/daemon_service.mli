(** The defender instantiation of {!Harness.Daemon}: the request
    vocabulary the query daemon speaks, the canonical-instance cache
    key, and the worker-side handler.

    {b Requests} (all fields beyond [op] and [graph6] optional, with
    defaults [k = 1], [nu = 1], [lambda = 1], [game = "tuple"],
    [method = "characterization"]):

    - [{"op":"solve", "graph6":G6, "k":K, "nu":NU}] — run the A_tuple
      solver; the result reports only isomorphism-invariant facts:
      [{"solvable":true, "gain":Q, "escape":Q, "rho":int,
      "verdict":string}] or [{"solvable":false, "reason":string}]
      (both cacheable answers).  Rational quantities are exact [p/q]
      strings.
    - [{"op":"solve", …, "method":"double-oracle"}] — run the
      {!Solver.Double_oracle} loop instead; works on any instance of
      either game (["game":"subgraph"] reads [lambda]).  The result
      again carries only invariants — [{"solvable":true, "value":Q,
      "gain":Q, "escape":Q, "verdict":string}] (plus ["rho"] for the
      tuple game), verified in the enumeration-free Oracle mode —
      never the iteration or oracle-call counts, which depend on the
      vertex labeling and would poison the label-erasing cache.
    - [{"op":"profit", "graph6":G6, "k":K, "nu":NU, "profile":text}] —
      evaluate a {!Defender.Profile_io}-format profile:
      [{"gain":Q, "escape":[Q, …]}] (one entry per attacker).
    - [{"op":"equilibrium-check", …, "profile":text,
      "mode":"certificate"|"exhaustive"|"oracle"}] — re-verify a
      profile: [{"confirmed":bool, "verdict":string}].

    {b Caching.}  Only [solve] is cached, keyed on
    [Graph6.canonical g ^ "|game=…|p=…|nu=…"] — so relabelings of one
    instance share a cache entry, which is sound precisely because the
    solve result carries no vertex or edge labels.  Double-oracle
    solves append ["|method=double-oracle"], keeping every
    pre-existing characterization key valid.  [profit] and
    [equilibrium-check] answers depend on the client's labeling (the
    profile names vertices and edges) and are never cached. *)

(** The parent-side cache-key function ({!Harness.Daemon.serve}'s
    [cache_key]): [Some key] for well-formed [solve] requests, [None]
    otherwise (including requests whose graph6 fails to decode — those
    proceed to the worker and fail there with a proper error). *)
val cache_key : Harness.Json.t -> string option

(** The worker-side handler: total — every failure, including malformed
    input, comes back as an [{"ok":false, "error":…}] payload rather
    than an exception (an escaped exception would cost a worker respawn
    and an identical-fate retry). *)
val handle : Harness.Json.t -> Harness.Json.t

(** {!Harness.Daemon.serve} specialized to {!cache_key} and {!handle}:
    the whole defender query daemon in one call.  Parameters are
    forwarded verbatim; see {!Harness.Daemon.serve}. *)
val serve :
  address:Harness.Daemon.address ->
  workers:int ->
  ?timeout:float ->
  ?max_inflight:int ->
  ?cache_entries:int ->
  ?max_frame:int ->
  ?on_ready:(Unix.sockaddr -> unit) ->
  unit ->
  Harness.Daemon.stats
