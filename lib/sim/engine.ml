(* Monte-Carlo play of a mixed tuple-game profile: the generic loop
   pinned to Tuple_game. *)

include Sim_instance.Tuple.Engine
