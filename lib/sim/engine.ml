open Netgraph
module Q = Exact.Q
module Rng = Prng.Rng

type round = {
  index : int;
  choices : Graph.vertex array;
  tuple : Defender.Tuple.t;
  caught : int;
}

type stats = {
  rounds : int;
  total_caught : int;
  mean_caught : float;
  stddev_caught : float;
  per_player_escapes : int array;
}

let escape_rate stats i =
  float_of_int stats.per_player_escapes.(i) /. float_of_int stats.rounds

let confidence95 stats =
  1.96 *. stats.stddev_caught /. sqrt (float_of_int stats.rounds)

let play ?record rng profile ~rounds =
  if rounds < 1 then invalid_arg "Engine.play: rounds must be positive";
  let model = Defender.Profile.model profile in
  let g = Defender.Model.graph model in
  let nu = Defender.Model.nu model in
  let strategies =
    Array.init nu (fun i -> Defender.Profile.vp_strategy profile i)
  in
  let tp = Array.of_list (Defender.Profile.tp_strategy profile) in
  (* Kernel-style precomputation: one float weight and one boolean
     coverage table per support tuple, so the per-round cost is O(ν)
     array probes instead of O(ν·k) Tuple.covers scans. *)
  let tp_probs = Array.map (fun (_, p) -> Q.to_float p) tp in
  let cover =
    Array.map
      (fun (t, _) ->
        let c = Array.make (Graph.n g) false in
        List.iter (fun v -> c.(v) <- true) (Defender.Tuple.vertices g t);
        c)
      tp
  in
  let sample_tuple_index () =
    let target = Rng.float rng in
    let last = Array.length tp - 1 in
    let rec scan j acc =
      if j = last then j
      else
        let acc = acc +. tp_probs.(j) in
        if target < acc then j else scan (j + 1) acc
    in
    scan 0 0.0
  in
  let per_player_escapes = Array.make nu 0 in
  let total = ref 0 and total_sq = ref 0 in
  let choices = Array.make nu 0 in
  for index = 0 to rounds - 1 do
    for i = 0 to nu - 1 do
      choices.(i) <- Dist.Finite.sample rng strategies.(i)
    done;
    let j = sample_tuple_index () in
    let covered = cover.(j) in
    let caught = ref 0 in
    for i = 0 to nu - 1 do
      if covered.(choices.(i)) then incr caught
      else per_player_escapes.(i) <- per_player_escapes.(i) + 1
    done;
    total := !total + !caught;
    total_sq := !total_sq + (!caught * !caught);
    match record with
    | Some f ->
        f { index; choices = Array.copy choices; tuple = fst tp.(j); caught = !caught }
    | None -> ()
  done;
  let n = float_of_int rounds in
  let mean = float_of_int !total /. n in
  (* Sample (n−1) variance estimator; the population estimator understates
     sigma and would silently tighten the T7 acceptance band. *)
  let variance =
    if rounds > 1 then
      (float_of_int !total_sq -. (n *. mean *. mean)) /. (n -. 1.0)
    else 0.0
  in
  {
    rounds;
    total_caught = !total;
    mean_caught = mean;
    stddev_caught = sqrt (max variance 0.0);
    per_player_escapes;
  }

let agrees_with_analytic ?(z = 4.0) ?naive stats profile =
  let exact = Q.to_float (Defender.Profit.expected_tp ?naive profile) in
  let half_width = z *. stats.stddev_caught /. sqrt (float_of_int stats.rounds) in
  abs_float (stats.mean_caught -. exact) <= half_width +. 1e-9
