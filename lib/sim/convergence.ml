(* Iteration traces with exact bound envelopes.  See convergence.mli. *)

module Q = Exact.Q

type point = { iteration : int; value : Q.t; lower : Q.t; upper : Q.t }
type t = { mutable rev : point list; mutable count : int }

let create () = { rev = []; count = 0 }

let record t p =
  if p.iteration <> t.count + 1 then
    invalid_arg
      (Printf.sprintf "Convergence.record: iteration %d after %d (gapless)"
         p.iteration t.count);
  t.rev <- p :: t.rev;
  t.count <- t.count + 1

let length t = t.count
let points t = List.rev t.rev
let final t = match t.rev with [] -> None | p :: _ -> Some p
let gaps t = List.map (fun p -> Q.sub p.upper p.lower) (points t)

let envelope t =
  match points t with
  | [] -> []
  | first :: rest ->
      let best_low = ref first.lower and best_high = ref first.upper in
      (* bind the head before the map: [::] gives no evaluation-order
         guarantee, and the map mutates the refs *)
      let head = Q.sub !best_high !best_low in
      head
      :: List.map
           (fun p ->
             best_low := Q.max !best_low p.lower;
             best_high := Q.min !best_high p.upper;
             Q.sub !best_high !best_low)
           rest

let converged_at t =
  let rec scan i = function
    | [] -> None
    | g :: rest -> if Q.is_zero g then Some i else scan (i + 1) rest
  in
  scan 1 (envelope t)
