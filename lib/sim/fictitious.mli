(** Fictitious play for the Tuple model.

    Each round every attacker best-responds to the defender's *empirical*
    scan frequencies (a least-scanned vertex) and the defender
    best-responds to the attackers' empirical location frequencies (a
    max-coverage tuple, exact by enumeration when C(m,k) is small, greedy
    otherwise).  The game is strategically zero-sum between the defender
    and the (symmetric) attacker population, so by Robinson's theorem the
    time-averaged play converges to equilibrium values: the long-run
    average catch approaches the k-matching NE gain k·ν/|IS| on instances
    that admit one.  Experiment F6 exhibits the convergence; it is an
    independent, learning-dynamics route to the paper's equilibrium
    quantities. *)

type result = Sim_instance.Tuple.Fictitious.result = {
  rounds : int;
  avg_gain : float;  (** time-averaged defender catches per round *)
  tail_avg_gain : float;  (** average over the last half (burn-in dropped) *)
  attack_frequency : float array;  (** empirical attacker distribution over vertices *)
  scan_frequency : float array;  (** empirical marginal scan rate per edge *)
  gain_series : float array;  (** prefix-averaged gain, for convergence plots *)
}

(** [run rng model ~rounds] plays the learning dynamics.

    The empirical tables (per-vertex scan hits and attack counts) are
    maintained {e incrementally} across rounds — the integer analogue of
    the {!Defender.Payoff_kernel} tables.  [~naive:true] instead
    re-derives both tables from the full play history at the start of
    every round (the per-query support re-scan of the naive payoff path);
    the two modes are bit-for-bit identical in output and are compared by
    the kernel microbenchmarks and equality tests.
    @raise Invalid_argument if [rounds < 2]. *)
val run : ?naive:bool -> Prng.Rng.t -> Defender.Model.t -> rounds:int -> result

(** Greedy max-coverage defender response to integer attack loads: k
    passes picking the edge with the best marginal covered load.  Total
    ties below the sentinel fall back to the lowest-id remaining edge
    rather than crashing (regression: the unguarded loop indexed edge -1
    on degenerate loads).
    @raise Invalid_argument if [k] is outside [1, m]. *)
val greedy_response :
  Netgraph.Graph.t -> int -> int array -> Defender.Tuple.t
