(** Convergence traces for iterative equilibrium computations.

    A recorder accumulates one {!point} per iteration — the solver's
    current value estimate bracketed by exact lower/upper bounds — and
    answers the questions the convergence experiments (bench family D)
    ask: the per-iteration gap series, the running best-so-far envelope
    (monotone by construction, since bounds once certified never expire),
    and whether/when the trace converged (gap exactly zero, in rationals
    — no epsilon).  Feed it from [Solver.Double_oracle]'s
    [?on_iteration] hook; the recorder itself is solver-agnostic. *)

module Q = Exact.Q

type point = {
  iteration : int;  (** 1-based *)
  value : Q.t;  (** the solver's current estimate *)
  lower : Q.t;  (** certified lower bound at this iteration *)
  upper : Q.t;  (** certified upper bound at this iteration *)
}

type t

val create : unit -> t

(** Append a point.  @raise Invalid_argument if its [iteration] is not
    exactly one past the previous point's (traces are gapless). *)
val record : t -> point -> unit

val length : t -> int

(** The recorded points, in iteration order. *)
val points : t -> point list

val final : t -> point option

(** Per-iteration gap [upper - lower], in iteration order. *)
val gaps : t -> Q.t list

(** Running best (smallest) certified gap after each iteration: the
    pointwise minimum of [max lower so far] subtracted from [min upper
    so far].  Non-increasing for any bound sequence. *)
val envelope : t -> Q.t list

(** First iteration whose envelope gap is exactly zero, if any. *)
val converged_at : t -> int option
