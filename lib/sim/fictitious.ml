(* Fictitious play for the tuple game: the generic loop pinned to
   Tuple_game, plus the standalone greedy responder the historical
   interface exported (with its historical error prefix). *)

include Sim_instance.Tuple.Fictitious

let greedy_response g k load =
  Defender.Tuple_game.greedy_edges ~err:"Fictitious.greedy_response" g k load
