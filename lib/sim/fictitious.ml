open Netgraph
module Rng = Prng.Rng

type result = {
  rounds : int;
  avg_gain : float;
  tail_avg_gain : float;
  attack_frequency : float array;
  scan_frequency : float array;
  gain_series : float array;
}

let enumeration_feasible g k limit =
  let m = Graph.m g in
  let rec go i acc =
    if i > k then acc <= limit
    else
      let next = acc * (m - k + i) in
      if next / (m - k + i) <> acc then false else go (i + 1) (next / i)
  in
  go 1 1

(* Defender best response to empirical attack counts: max total count
   over covered vertices. *)
let exact_response g k (load : int array) =
  let value t =
    List.fold_left (fun acc v -> acc + load.(v)) 0 (Defender.Tuple.vertices g t)
  in
  Defender.Tuple.fold_enumerate g ~k ~init:None ~f:(fun acc t ->
      match acc with
      | Some (_, best) when best >= value t -> acc
      | _ -> Some (t, value t))
  |> Option.get |> fst

let greedy_response g k (load : int array) =
  let m = Graph.m g in
  if k < 1 || k > m then
    invalid_arg
      (Printf.sprintf "Fictitious.greedy_response: k = %d outside [1, m = %d]"
         k m);
  let chosen = Array.make m false in
  let covered = Array.make (Graph.n g) false in
  let picks = ref [] in
  for _ = 1 to k do
    let best = ref (-1) and best_gain = ref (-1) in
    for id = 0 to m - 1 do
      if not chosen.(id) then begin
        let e = Graph.edge g id in
        let gain =
          (if covered.(e.Graph.u) then 0 else load.(e.Graph.u))
          + if covered.(e.Graph.v) then 0 else load.(e.Graph.v)
        in
        if gain > !best_gain then begin
          best_gain := gain;
          best := id
        end
      end
    done;
    (* Guard: if no pick beat the sentinel (possible when a caller hands
       in degenerate, e.g. negative, loads), fall back to the lowest-id
       remaining edge instead of indexing with -1.  The k <= m guard
       above ensures a remaining edge exists. *)
    let pick =
      if !best >= 0 then !best
      else begin
        let id = ref 0 in
        while chosen.(!id) do incr id done;
        !id
      end
    in
    chosen.(pick) <- true;
    let e = Graph.edge g pick in
    covered.(e.Graph.u) <- true;
    covered.(e.Graph.v) <- true;
    picks := pick :: !picks
  done;
  Defender.Tuple.of_list g !picks

let run ?(naive = false) rng model ~rounds =
  if rounds < 2 then invalid_arg "Fictitious.run: need at least two rounds";
  let g = Defender.Model.graph model in
  let nu = Defender.Model.nu model in
  let k = Defender.Model.k model in
  let n = Graph.n g in
  let exact_ok = enumeration_feasible g k 100_000 in
  let hit_count = Array.make n 0 in
  let attack_count = Array.make n 0 in
  let scan_count = Array.make (Graph.m g) 0 in
  let gain_series = Array.make rounds 0.0 in
  (* Full play history, needed by the naive path which re-derives the
     empirical tables from scratch every round (the analogue of the
     support re-scan in naive Profile.hit_prob); the default path keeps
     the tables incrementally and never reads the history. *)
  let tuple_history = Array.make rounds None in
  let choice_history = Array.make_matrix rounds nu 0 in
  let total = ref 0 and tail_total = ref 0 in
  (* Tie-break scratch for the attacker's least-scanned choice, allocated
     once for the whole run: the per-round set is written in place instead
     of being built as a list and converted to an array per call. *)
  let tie = Array.make n 0 in
  let attacker_choice () =
    (* least-scanned vertex, ties broken uniformly *)
    let ties = ref 0 and best_count = ref max_int in
    for v = 0 to n - 1 do
      if hit_count.(v) < !best_count then begin
        best_count := hit_count.(v);
        tie.(0) <- v;
        ties := 1
      end
      else if hit_count.(v) = !best_count then begin
        tie.(!ties) <- v;
        incr ties
      end
    done;
    (* [tie] is ascending where the old per-call list was descending;
       index from the top so the PRNG stream and the chosen vertex are
       bit-for-bit identical to the historical behavior. *)
    tie.(!ties - 1 - Rng.int rng !ties)
  in
  let recompute_from_history r =
    for v = 0 to n - 1 do
      let c = ref 0 in
      for s = 0 to r - 1 do
        match tuple_history.(s) with
        | Some t -> if Defender.Tuple.covers g t v then incr c
        | None -> ()
      done;
      hit_count.(v) <- !c
    done;
    Array.fill attack_count 0 n 0;
    for s = 0 to r - 1 do
      for i = 0 to nu - 1 do
        let v = choice_history.(s).(i) in
        attack_count.(v) <- attack_count.(v) + 1
      done
    done
  in
  let choices = Array.make nu 0 in
  for r = 0 to rounds - 1 do
    if naive then recompute_from_history r;
    for i = 0 to nu - 1 do
      choices.(i) <- attacker_choice ();
      choice_history.(r).(i) <- choices.(i)
    done;
    let tuple =
      if exact_ok then exact_response g k attack_count
      else greedy_response g k attack_count
    in
    tuple_history.(r) <- Some tuple;
    let covered = Defender.Tuple.vertices g tuple in
    let caught = ref 0 in
    for i = 0 to nu - 1 do
      if Defender.Tuple.covers g tuple choices.(i) then incr caught;
      attack_count.(choices.(i)) <- attack_count.(choices.(i)) + 1
    done;
    List.iter (fun v -> hit_count.(v) <- hit_count.(v) + 1) covered;
    List.iter
      (fun id -> scan_count.(id) <- scan_count.(id) + 1)
      (Defender.Tuple.to_list tuple);
    total := !total + !caught;
    if r >= rounds / 2 then tail_total := !tail_total + !caught;
    gain_series.(r) <- float_of_int !total /. float_of_int (r + 1)
  done;
  let denom = float_of_int rounds in
  {
    rounds;
    avg_gain = float_of_int !total /. denom;
    tail_avg_gain = float_of_int !tail_total /. float_of_int (rounds - (rounds / 2));
    attack_frequency =
      Array.map (fun c -> float_of_int c /. (denom *. float_of_int nu)) attack_count;
    scan_frequency = Array.map (fun c -> float_of_int c /. denom) scan_count;
    gain_series;
  }
