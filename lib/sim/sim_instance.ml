(* The simulation tower applied to the built-in games.  [Tuple] is the
   single application point the wrapper modules (Fictitious, Dynamics,
   Engine, Workload) include from; applicative functor semantics keep
   its profile types equal to Defender.Profile's. *)

module Tuple = Game_sim.Make (Defender.Tuple_game)
module Subgraph = Game_sim.Make (Defender.Subgraph_game)
