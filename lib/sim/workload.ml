(* Policy workloads for the tuple game: the generic loop pinned to
   Tuple_game. *)

include Sim_instance.Tuple.Workload
