open Netgraph
module Q = Exact.Q
module Rng = Prng.Rng

type attacker_policy =
  | Attacker_fixed of Dist.Finite.t
  | Attacker_uniform
  | Attacker_hotspot of { targets : Graph.vertex list; concentration : float }
  | Attacker_adaptive of { epsilon : float }

type defender_policy =
  | Defender_fixed of (Defender.Tuple.t * Exact.Q.t) list
  | Defender_uniform_tuple
  | Defender_greedy of { epsilon : float }
  | Defender_round_robin
  | Defender_flaky of { base : defender_policy; failure_rate : float }

type outcome = {
  rounds : int;
  total_caught : int;
  mean_caught : float;
  caught_series : int array;
}

let rec policy_name = function
  | Defender_fixed _ -> "fixed/NE"
  | Defender_uniform_tuple -> "uniform-tuple"
  | Defender_greedy _ -> "greedy"
  | Defender_round_robin -> "round-robin"
  | Defender_flaky { base; failure_rate } ->
      Printf.sprintf "flaky(%s, f=%.2f)" (policy_name base) failure_rate

let attacker_name = function
  | Attacker_fixed _ -> "fixed"
  | Attacker_uniform -> "uniform"
  | Attacker_hotspot _ -> "hotspot"
  | Attacker_adaptive _ -> "adaptive"

(* Mutable per-run state shared by the adaptive policies. *)
type state = {
  hit_count : int array;        (* times each vertex was scanned *)
  attack_count : int array;     (* times each vertex was attacked *)
  mutable cursor : int;         (* round-robin position *)
  tie : int array;              (* scratch for least-hit tie-breaking *)
}

let hotspot_distribution g ~targets ~concentration =
  if concentration < 0.0 || concentration > 1.0 then
    invalid_arg "Workload: concentration outside [0,1]";
  let targets = List.sort_uniq compare targets in
  if targets = [] then invalid_arg "Workload: empty hotspot target list";
  let n = Graph.n g in
  let others = List.filter (fun v -> not (List.mem v targets)) (List.init n Fun.id) in
  let weights = Array.make n 0.0 in
  let t_w = concentration /. float_of_int (List.length targets) in
  List.iter (fun v -> weights.(v) <- t_w) targets;
  if others <> [] then begin
    let o_w = (1.0 -. concentration) /. float_of_int (List.length others) in
    List.iter (fun v -> weights.(v) <- o_w) others
  end;
  weights

let least_hit_vertex rng state n =
  let ties = ref 0 and best_count = ref max_int in
  for v = 0 to n - 1 do
    if state.hit_count.(v) < !best_count then begin
      best_count := state.hit_count.(v);
      state.tie.(0) <- v;
      ties := 1
    end
    else if state.hit_count.(v) = !best_count then begin
      state.tie.(!ties) <- v;
      incr ties
    end
  done;
  (* [tie] is filled ascending where the old per-call list was descending;
     index from the top so the PRNG stream and the chosen vertex match the
     historical behavior exactly without a per-call allocation. *)
  state.tie.(!ties - 1 - Rng.int rng !ties)

let sample_attacker rng g state = function
  | Attacker_fixed d -> Dist.Finite.sample rng d
  | Attacker_uniform -> Rng.int rng (Graph.n g)
  | Attacker_hotspot { targets; concentration } ->
      (* weights recomputed lazily would be cleaner; cheap enough here *)
      Rng.weighted_index rng (hotspot_distribution g ~targets ~concentration)
  | Attacker_adaptive { epsilon } ->
      if Rng.bool_with_prob rng epsilon then Rng.int rng (Graph.n g)
      else least_hit_vertex rng state (Graph.n g)

let sample_fixed_tuple rng strategy =
  let target = Rng.float rng in
  let rec scan acc = function
    | [ (t, _) ] -> t
    | (t, p) :: rest ->
        let acc = acc +. Q.to_float p in
        if target < acc then t else scan acc rest
    | [] -> assert false
  in
  scan 0.0 strategy

let uniform_tuple rng g k =
  let ids = Array.init (Graph.m g) Fun.id in
  let sample = Rng.sample_without_replacement rng ~count:k ids in
  Defender.Tuple.of_list g (Array.to_list sample)

let greedy_tuple g state k =
  (* k edges maximizing the empirical load of their endpoints. *)
  let score id =
    let e = Graph.edge g id in
    state.attack_count.(e.Graph.u) + state.attack_count.(e.Graph.v)
  in
  let ids = Array.init (Graph.m g) Fun.id in
  Array.sort (fun a b -> compare (score b) (score a)) ids;
  Defender.Tuple.of_list g (Array.to_list (Array.sub ids 0 k))

let round_robin_tuple g state k =
  let m = Graph.m g in
  let start = state.cursor in
  state.cursor <- (state.cursor + k) mod m;
  Defender.Tuple.of_list g (List.init k (fun i -> (start + i) mod m))

let rec sample_defender rng g state k = function
  | Defender_fixed strategy -> Some (sample_fixed_tuple rng strategy)
  | Defender_uniform_tuple -> Some (uniform_tuple rng g k)
  | Defender_greedy { epsilon } ->
      if Rng.bool_with_prob rng epsilon then Some (uniform_tuple rng g k)
      else Some (greedy_tuple g state k)
  | Defender_round_robin -> Some (round_robin_tuple g state k)
  | Defender_flaky { base; failure_rate } ->
      (* outage: the scan produces nothing this round *)
      if Rng.bool_with_prob rng failure_rate then None
      else sample_defender rng g state k base

let validate_policies model ~attacker ~defender =
  let g = Defender.Model.graph model in
  (match attacker with
  | Attacker_fixed d ->
      List.iter
        (fun v ->
          if v < 0 || v >= Graph.n g then
            invalid_arg "Workload.run: fixed attacker distribution off-graph")
        (Dist.Finite.support d)
  | Attacker_uniform | Attacker_hotspot _ | Attacker_adaptive _ -> ());
  let rec check_defender = function
    | Defender_fixed strategy ->
        if strategy = [] then invalid_arg "Workload.run: empty defender strategy";
        List.iter
          (fun (t, _) ->
            if Defender.Tuple.size t <> Defender.Model.k model then
              invalid_arg "Workload.run: fixed defender tuple size <> k")
          strategy
    | Defender_flaky { base; failure_rate } ->
        if failure_rate < 0.0 || failure_rate >= 1.0 then
          invalid_arg "Workload.run: failure_rate outside [0, 1)";
        check_defender base
    | Defender_uniform_tuple | Defender_greedy _ | Defender_round_robin -> ()
  in
  check_defender defender

let run rng model ~attacker ~defender ~rounds =
  if rounds < 1 then invalid_arg "Workload.run: rounds must be positive";
  validate_policies model ~attacker ~defender;
  let g = Defender.Model.graph model in
  let nu = Defender.Model.nu model in
  let k = Defender.Model.k model in
  let state =
    {
      hit_count = Array.make (Graph.n g) 0;
      attack_count = Array.make (Graph.n g) 0;
      cursor = 0;
      tie = Array.make (Graph.n g) 0;
    }
  in
  let caught_series = Array.make rounds 0 in
  let total = ref 0 in
  let choices = Array.make nu 0 in
  for r = 0 to rounds - 1 do
    for i = 0 to nu - 1 do
      choices.(i) <- sample_attacker rng g state attacker
    done;
    let tuple = sample_defender rng g state k defender in
    let caught = ref 0 in
    for i = 0 to nu - 1 do
      state.attack_count.(choices.(i)) <- state.attack_count.(choices.(i)) + 1;
      match tuple with
      | Some t when Defender.Tuple.covers g t choices.(i) -> incr caught
      | Some _ | None -> ()
    done;
    (match tuple with
    | Some t ->
        List.iter
          (fun v -> state.hit_count.(v) <- state.hit_count.(v) + 1)
          (Defender.Tuple.vertices g t)
    | None -> ());
    caught_series.(r) <- !caught;
    total := !total + !caught
  done;
  {
    rounds;
    total_caught = !total;
    mean_caught = float_of_int !total /. float_of_int rounds;
    caught_series;
  }
