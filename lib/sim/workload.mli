(** Attack/defense policies beyond fixed mixed strategies, for scenario
    simulation: what happens off-equilibrium, and why the NE defense is
    the right thing to deploy (ablation experiments A1/A2).

    Policies are stateful round-by-round players.  Adaptive attackers
    epsilon-greedily re-target the links the defender has scanned least;
    the greedy defender chases the empirically hottest links.  Against the
    NE defense, adaptation buys the attackers nothing — that is Theorem
    3.4 read operationally. *)

open Netgraph

type attacker_policy = Sim_instance.Tuple.Workload.attacker_policy =
  | Attacker_fixed of Dist.Finite.t
      (** sample from a fixed distribution every round *)
  | Attacker_uniform  (** uniform over all vertices *)
  | Attacker_hotspot of { targets : Graph.vertex list; concentration : float }
      (** probability [concentration] spread over [targets], remainder over
          the other vertices *)
  | Attacker_adaptive of { epsilon : float }
      (** with prob [1-epsilon] pick a least-hit-so-far vertex, else
          explore uniformly *)

type defender_policy = Sim_instance.Tuple.Workload.defender_policy =
  | Defender_fixed of (Defender.Tuple.t * Exact.Q.t) list
      (** e.g. the NE strategy *)
  | Defender_uniform_tuple  (** k distinct edges uniformly at random *)
  | Defender_greedy of { epsilon : float }
      (** scan the k edges with the highest empirical attacker load;
          explore with prob [epsilon] *)
  | Defender_round_robin  (** deterministic cyclic sweep of the edge set *)
  | Defender_flaky of { base : defender_policy; failure_rate : float }
      (** failure injection: with probability [failure_rate] the round's
          scan silently produces nothing (sensor outage, dropped
          mirror-port traffic); otherwise delegates to [base].  The NE
          gain degrades exactly linearly: (1 − f)·k·ν/|IS|. *)

type outcome = Sim_instance.Tuple.Workload.outcome = {
  rounds : int;
  total_caught : int;
  mean_caught : float;
  caught_series : int array;  (** per-round catches, for time-series plots *)
}

(** [run rng model ~attacker ~defender ~rounds] plays the policies against
    each other. @raise Invalid_argument on [rounds < 1] or a fixed policy
    inconsistent with the model. *)
val run :
  Prng.Rng.t ->
  Defender.Model.t ->
  attacker:attacker_policy ->
  defender:defender_policy ->
  rounds:int ->
  outcome

val policy_name : defender_policy -> string
val attacker_name : attacker_policy -> string
