(** Monte-Carlo play of Π_k(G): repeated independent rounds in which every
    vertex player samples a vertex and the defender samples a tuple, used
    to validate the exact expected profits empirically (experiment T7). *)

open Netgraph

type round = Sim_instance.Tuple.Engine.round = {
  index : int;
  choices : Graph.vertex array;  (** attacker positions this round *)
  tuple : Defender.Tuple.t;      (** defender's scan this round *)
  caught : int;                  (** attackers arrested this round *)
}

type stats = Sim_instance.Tuple.Engine.stats = {
  rounds : int;
  total_caught : int;
  mean_caught : float;           (** empirical defender gain per round *)
  stddev_caught : float;         (** sample (n−1) estimator; 0 for one round *)
  per_player_escapes : int array;  (** rounds escaped, per attacker *)
}

(** Empirical per-attacker escape probability. *)
val escape_rate : stats -> int -> float

(** 95% confidence half-width for [mean_caught] (normal approximation). *)
val confidence95 : stats -> float

(** [play rng profile ~rounds] simulates i.i.d. rounds of the mixed
    configuration.  [record] (optional) observes every round.
    @raise Invalid_argument if [rounds < 1]. *)
val play :
  ?record:(round -> unit) -> Prng.Rng.t -> Defender.Profile.mixed -> rounds:int -> stats

(** [agrees_with_analytic ?z stats profile] — empirical mean within
    [z] standard errors (default 4, a ~1-in-16000 false-alarm band chosen
    so batched regression runs stay deterministic-green) of the exact
    expectation, plus an absolute slack of 1e-9 for degenerate
    zero-variance cases.  [~naive:true] computes the exact expectation on
    the support-rescanning oracle instead of the payoff kernel. *)
val agrees_with_analytic :
  ?z:float -> ?naive:bool -> stats -> Defender.Profile.mixed -> bool
