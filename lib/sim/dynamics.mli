(** Best-response dynamics in pure strategies.

    Operationalizes Theorem 3.1 / Corollary 3.3: starting from a random
    pure configuration, a randomly chosen dissatisfied player switches
    each step — attackers to a random uncovered vertex, the defender to a
    best-response tuple (exact by enumeration when the tuple space is
    small, greedy otherwise), moving only on a strict payoff improvement
    and breaking ties among best responses toward maximum vertex coverage.
    With that tie-break the process converges exactly when a pure NE
    exists (an edge cover of size k): any defender improvement step lands
    on a full cover, trapping every attacker.  When n ≥ 2k+1 there is no
    pure NE and the dynamics churn forever, which experiment T2
    demonstrates by step-budget timeout. *)

type result = Sim_instance.Tuple.Dynamics.result =
  | Converged of { steps : int; profile : Defender.Profile.pure }
  | Cycling of { steps : int }  (** step budget exhausted without a pure NE *)

type step_record = Sim_instance.Tuple.Dynamics.step_record = {
  step : int;
  mover : [ `Attacker of int | `Defender ];
  caught_after : int;
}

(** [run rng model ~max_steps] plays the dynamics.  A profile is only
    reported [Converged] after a stability check that is exact whenever
    C(m,k) ≤ 200000 (and greedy beyond, where a false convergence report
    is possible — callers doing science should stay in the exact regime).
    [record] observes each step. *)
val run :
  ?record:(step_record -> unit) ->
  Prng.Rng.t ->
  Defender.Model.t ->
  max_steps:int ->
  result

val is_converged : result -> bool
