open Netgraph
module Rng = Prng.Rng

type result =
  | Converged of { steps : int; profile : Defender.Profile.pure }
  | Cycling of { steps : int }

type step_record = {
  step : int;
  mover : [ `Attacker of int | `Defender ];
  caught_after : int;
}

let is_converged = function Converged _ -> true | Cycling _ -> false

let catch_count g choices tuple =
  Array.fold_left
    (fun acc v -> if Defender.Tuple.covers g tuple v then acc + 1 else acc)
    0 choices

let coverage g tuple = List.length (Defender.Tuple.vertices g tuple)

(* Greedy max-coverage response to the current attacker positions, with
   vertex coverage as the tie-break on zero-gain picks. *)
let greedy_response g k choices =
  let load = Array.make (Graph.n g) 0 in
  Array.iter (fun v -> load.(v) <- load.(v) + 1) choices;
  let chosen = Array.make (Graph.m g) false in
  let covered = Array.make (Graph.n g) false in
  let picks = ref [] in
  for _ = 1 to k do
    let best = ref (-1) and best_gain = ref (-1, -1) in
    for id = 0 to Graph.m g - 1 do
      if not chosen.(id) then begin
        let e = Graph.edge g id in
        let catch_gain =
          (if covered.(e.Graph.u) then 0 else load.(e.Graph.u))
          + if covered.(e.Graph.v) then 0 else load.(e.Graph.v)
        in
        let cover_gain =
          (if covered.(e.Graph.u) then 0 else 1)
          + if covered.(e.Graph.v) then 0 else 1
        in
        if (catch_gain, cover_gain) > !best_gain then begin
          best_gain := (catch_gain, cover_gain);
          best := id
        end
      end
    done;
    (* Same guard as Fictitious.greedy_response: never index with the -1
       sentinel; fall back to the lowest-id remaining edge. *)
    let pick =
      if !best >= 0 then !best
      else begin
        let id = ref 0 in
        while chosen.(!id) do incr id done;
        !id
      end
    in
    chosen.(pick) <- true;
    let e = Graph.edge g pick in
    covered.(e.Graph.u) <- true;
    covered.(e.Graph.v) <- true;
    picks := pick :: !picks
  done;
  Defender.Tuple.of_list g !picks

(* Exact best response by enumeration, maximizing (catch, coverage)
   lexicographically; [None] when the tuple space exceeds [limit]. *)
let exact_best_response g k choices =
  let better a b =
    let ca = catch_count g choices a and cb = catch_count g choices b in
    ca > cb || (ca = cb && coverage g a > coverage g b)
  in
  match
    Defender.Tuple.fold_enumerate g ~k ~init:None ~f:(fun acc t ->
        match acc with
        | Some best when not (better t best) -> acc
        | _ -> Some t)
  with
  | result -> result
  | exception Invalid_argument _ -> None

let enumeration_feasible g k limit =
  let m = Graph.m g in
  let rec go i acc =
    if i > k then acc <= limit
    else
      let next = acc * (m - k + i) in
      if next / (m - k + i) <> acc then false else go (i + 1) (next / i)
  in
  go 1 1

let uncovered_vertices g tuple =
  let covered = Array.make (Graph.n g) false in
  List.iter (fun v -> covered.(v) <- true) (Defender.Tuple.vertices g tuple);
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not covered.(v) then out := v :: !out
  done;
  Array.of_list !out

let run ?record rng model ~max_steps =
  let g = Defender.Model.graph model in
  let nu = Defender.Model.nu model in
  let k = Defender.Model.k model in
  let limit = 200_000 in
  let exact_ok = enumeration_feasible g k limit in
  let choices = Array.init nu (fun _ -> Rng.int rng (Graph.n g)) in
  let tuple = ref (greedy_response g k choices) in
  let emit step mover =
    match record with
    | Some f -> f { step; mover; caught_after = catch_count g choices !tuple }
    | None -> ()
  in
  let rec loop step =
    if step >= max_steps then Cycling { steps = step }
    else begin
      let uncovered = uncovered_vertices g !tuple in
      (* Dissatisfied attackers: caught while an escape vertex exists. *)
      let unhappy_attackers =
        if Array.length uncovered = 0 then []
        else
          List.filter
            (fun i -> Defender.Tuple.covers g !tuple choices.(i))
            (List.init nu Fun.id)
      in
      (* Defender's best response (exact when feasible); it moves only on a
         strict payoff improvement, breaking ties among best responses
         toward maximum coverage. *)
      let current = catch_count g choices !tuple in
      let candidate =
        if exact_ok then exact_best_response g k choices
        else Some (greedy_response g k choices)
      in
      let better_tuple =
        match candidate with
        | Some t when catch_count g choices t > current -> Some t
        | _ -> None
      in
      match (unhappy_attackers, better_tuple) with
      | [], None ->
          Converged
            {
              steps = step;
              profile =
                Defender.Profile.make_pure model
                  ~vp_choices:(Array.to_list choices)
                  ~tp_choice:!tuple;
            }
      | attackers, defender_move ->
          (* Pick a dissatisfied player uniformly; the defender counts as
             one entrant in the lottery.  Drawing an index directly keeps
             the PRNG stream identical to the historical list-to-array
             lottery while skipping the per-step option array. *)
          let na = List.length attackers in
          let entrants =
            na + match defender_move with Some _ -> 1 | None -> 0
          in
          let pick = Rng.int rng entrants in
          if pick < na then begin
            let i = List.nth attackers pick in
            choices.(i) <- Rng.choose rng uncovered;
            emit step (`Attacker i)
          end
          else begin
            tuple := Option.get better_tuple;
            emit step `Defender
          end;
          loop (step + 1)
    end
  in
  loop 0
