(* Pure best-response dynamics for the tuple game: the generic loop
   pinned to Tuple_game. *)

include Sim_instance.Tuple.Dynamics
