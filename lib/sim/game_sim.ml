(* Simulation loops generic over a GAME instance (Defender.Game.S):
   fictitious play, pure best-response dynamics, Monte-Carlo play of a
   mixed profile, and the policy workloads.  The tuple-game application
   lives in Sim_instance; the historical modules (Fictitious, Dynamics,
   Engine, Workload) are wrappers over it and must stay bit-for-bit —
   every PRNG draw, fold order and error string below is load-bearing.
   The historical error strings (".. tuple size <> k") are kept verbatim
   even in generic code: tests pin them, and "tuple" reads fine as the
   defender's pure strategy in every game. *)

open Netgraph
module Q = Exact.Q
module Rng = Prng.Rng

module Make (G : Defender.Game.S) = struct
  (* The exact engine for the same game, applicatively equal to any
     other application of Game_engine.Make to [G] — for the tuple game,
     [E.Profile] is Defender.Profile. *)
  module E = Defender.Game_engine.Make (G)

  module Fictitious = struct
    type result = {
      rounds : int;
      avg_gain : float;
      tail_avg_gain : float;
      attack_frequency : float array;
      scan_frequency : float array;
      gain_series : float array;
    }

    (* Defender best response to empirical attack counts: max total
       count over covered vertices. *)
    let exact_response inst (load : int array) =
      let value t =
        List.fold_left (fun acc v -> acc + load.(v)) 0 (G.covered inst t)
      in
      G.fold_strategies inst ~init:None ~f:(fun acc t ->
          match acc with
          | Some (_, best) when best >= value t -> acc
          | _ -> Some (t, value t))
      |> Option.get |> fst

    let run ?(naive = false) rng inst ~rounds =
      if rounds < 2 then invalid_arg "Fictitious.run: need at least two rounds";
      let g = G.graph inst in
      let nu = G.nu inst in
      let n = Graph.n g in
      let exact_ok = G.space_size_within inst ~limit:100_000 <> None in
      let hit_count = Array.make n 0 in
      let attack_count = Array.make n 0 in
      let scan_count = Array.make (G.scan_slots inst) 0 in
      let gain_series = Array.make rounds 0.0 in
      (* Full play history, needed by the naive path which re-derives
         the empirical tables from scratch every round (the analogue of
         the support re-scan in naive Profile.hit_prob); the default
         path keeps the tables incrementally and never reads the
         history. *)
      let tuple_history = Array.make rounds None in
      let choice_history = Array.make_matrix rounds nu 0 in
      let total = ref 0 and tail_total = ref 0 in
      (* Tie-break scratch for the attacker's least-scanned choice,
         allocated once for the whole run: the per-round set is written
         in place instead of being built as a list and converted to an
         array per call. *)
      let tie = Array.make n 0 in
      let attacker_choice () =
        (* least-scanned vertex, ties broken uniformly *)
        let ties = ref 0 and best_count = ref max_int in
        for v = 0 to n - 1 do
          if hit_count.(v) < !best_count then begin
            best_count := hit_count.(v);
            tie.(0) <- v;
            ties := 1
          end
          else if hit_count.(v) = !best_count then begin
            tie.(!ties) <- v;
            incr ties
          end
        done;
        (* [tie] is ascending where the old per-call list was
           descending; index from the top so the PRNG stream and the
           chosen vertex are bit-for-bit identical to the historical
           behavior. *)
        tie.(!ties - 1 - Rng.int rng !ties)
      in
      let recompute_from_history r =
        for v = 0 to n - 1 do
          let c = ref 0 in
          for s = 0 to r - 1 do
            match tuple_history.(s) with
            | Some t -> if G.covers inst t v then incr c
            | None -> ()
          done;
          hit_count.(v) <- !c
        done;
        Array.fill attack_count 0 n 0;
        for s = 0 to r - 1 do
          for i = 0 to nu - 1 do
            let v = choice_history.(s).(i) in
            attack_count.(v) <- attack_count.(v) + 1
          done
        done
      in
      let choices = Array.make nu 0 in
      for r = 0 to rounds - 1 do
        if naive then recompute_from_history r;
        for i = 0 to nu - 1 do
          choices.(i) <- attacker_choice ();
          choice_history.(r).(i) <- choices.(i)
        done;
        let tuple =
          if exact_ok then exact_response inst attack_count
          else G.greedy_response inst ~load:attack_count
        in
        tuple_history.(r) <- Some tuple;
        let covered = G.covered inst tuple in
        let caught = ref 0 in
        for i = 0 to nu - 1 do
          if G.covers inst tuple choices.(i) then incr caught;
          attack_count.(choices.(i)) <- attack_count.(choices.(i)) + 1
        done;
        List.iter (fun v -> hit_count.(v) <- hit_count.(v) + 1) covered;
        List.iter
          (fun id -> scan_count.(id) <- scan_count.(id) + 1)
          (G.scan_slot_ids inst tuple);
        total := !total + !caught;
        if r >= rounds / 2 then tail_total := !tail_total + !caught;
        gain_series.(r) <- float_of_int !total /. float_of_int (r + 1)
      done;
      let denom = float_of_int rounds in
      {
        rounds;
        avg_gain = float_of_int !total /. denom;
        tail_avg_gain =
          float_of_int !tail_total /. float_of_int (rounds - (rounds / 2));
        attack_frequency =
          Array.map
            (fun c -> float_of_int c /. (denom *. float_of_int nu))
            attack_count;
        scan_frequency = Array.map (fun c -> float_of_int c /. denom) scan_count;
        gain_series;
      }
  end

  module Dynamics = struct
    type result =
      | Converged of { steps : int; profile : E.Profile.pure }
      | Cycling of { steps : int }

    type step_record = {
      step : int;
      mover : [ `Attacker of int | `Defender ];
      caught_after : int;
    }

    let is_converged = function Converged _ -> true | Cycling _ -> false

    let catch_count inst choices tuple =
      Array.fold_left
        (fun acc v -> if G.covers inst tuple v then acc + 1 else acc)
        0 choices

    let coverage inst tuple = List.length (G.covered inst tuple)

    (* Greedy max-coverage response to the current attacker positions,
       with vertex coverage as the tie-break on zero-gain picks. *)
    let greedy_response inst choices =
      let load = Array.make (Graph.n (G.graph inst)) 0 in
      Array.iter (fun v -> load.(v) <- load.(v) + 1) choices;
      G.greedy_coverage_response inst ~load

    (* Exact best response by enumeration, maximizing (catch, coverage)
       lexicographically; [None] when the strategy space refuses to
       enumerate. *)
    let exact_best_response inst choices =
      let better a b =
        let ca = catch_count inst choices a
        and cb = catch_count inst choices b in
        ca > cb || (ca = cb && coverage inst a > coverage inst b)
      in
      match
        G.fold_strategies inst ~init:None ~f:(fun acc t ->
            match acc with
            | Some best when not (better t best) -> acc
            | _ -> Some t)
      with
      | result -> result
      | exception Invalid_argument _ -> None

    let uncovered_vertices inst tuple =
      let n = Graph.n (G.graph inst) in
      let covered = Array.make n false in
      List.iter (fun v -> covered.(v) <- true) (G.covered inst tuple);
      let out = ref [] in
      for v = n - 1 downto 0 do
        if not covered.(v) then out := v :: !out
      done;
      Array.of_list !out

    let run ?record rng inst ~max_steps =
      let g = G.graph inst in
      let nu = G.nu inst in
      let limit = 200_000 in
      let exact_ok = G.space_size_within inst ~limit <> None in
      let choices = Array.init nu (fun _ -> Rng.int rng (Graph.n g)) in
      let tuple = ref (greedy_response inst choices) in
      let emit step mover =
        match record with
        | Some f ->
            f { step; mover; caught_after = catch_count inst choices !tuple }
        | None -> ()
      in
      let rec loop step =
        if step >= max_steps then Cycling { steps = step }
        else begin
          let uncovered = uncovered_vertices inst !tuple in
          (* Dissatisfied attackers: caught while an escape vertex
             exists. *)
          let unhappy_attackers =
            if Array.length uncovered = 0 then []
            else
              List.filter
                (fun i -> G.covers inst !tuple choices.(i))
                (List.init nu Fun.id)
          in
          (* Defender's best response (exact when feasible); it moves
             only on a strict payoff improvement, breaking ties among
             best responses toward maximum coverage. *)
          let current = catch_count inst choices !tuple in
          let candidate =
            if exact_ok then exact_best_response inst choices
            else Some (greedy_response inst choices)
          in
          let better_tuple =
            match candidate with
            | Some t when catch_count inst choices t > current -> Some t
            | _ -> None
          in
          match (unhappy_attackers, better_tuple) with
          | [], None ->
              Converged
                {
                  steps = step;
                  profile =
                    E.Profile.make_pure inst
                      ~vp_choices:(Array.to_list choices)
                      ~tp_choice:!tuple;
                }
          | attackers, defender_move ->
              (* Pick a dissatisfied player uniformly; the defender
                 counts as one entrant in the lottery.  Drawing an index
                 directly keeps the PRNG stream identical to the
                 historical list-to-array lottery while skipping the
                 per-step option array. *)
              let na = List.length attackers in
              let entrants =
                na + match defender_move with Some _ -> 1 | None -> 0
              in
              let pick = Rng.int rng entrants in
              if pick < na then begin
                let i = List.nth attackers pick in
                choices.(i) <- Rng.choose rng uncovered;
                emit step (`Attacker i)
              end
              else begin
                tuple := Option.get better_tuple;
                emit step `Defender
              end;
              loop (step + 1)
        end
      in
      loop 0
  end

  module Engine = struct
    type round = {
      index : int;
      choices : Graph.vertex array;
      tuple : G.Strategy.t;
      caught : int;
    }

    type stats = {
      rounds : int;
      total_caught : int;
      mean_caught : float;
      stddev_caught : float;
      per_player_escapes : int array;
    }

    let escape_rate stats i =
      float_of_int stats.per_player_escapes.(i) /. float_of_int stats.rounds

    let confidence95 stats =
      1.96 *. stats.stddev_caught /. sqrt (float_of_int stats.rounds)

    let play ?record rng profile ~rounds =
      if rounds < 1 then invalid_arg "Engine.play: rounds must be positive";
      let inst = E.Profile.instance profile in
      let g = G.graph inst in
      let nu = G.nu inst in
      let strategies =
        Array.init nu (fun i -> E.Profile.vp_strategy profile i)
      in
      let tp = Array.of_list (E.Profile.tp_strategy profile) in
      (* Kernel-style precomputation: one float weight and one boolean
         coverage table per support tuple, so the per-round cost is
         O(ν) array probes instead of O(ν·k) coverage scans. *)
      let tp_probs = Array.map (fun (_, p) -> Q.to_float p) tp in
      let cover =
        Array.map
          (fun (t, _) ->
            let c = Array.make (Graph.n g) false in
            List.iter (fun v -> c.(v) <- true) (G.covered inst t);
            c)
          tp
      in
      let sample_tuple_index () =
        let target = Rng.float rng in
        let last = Array.length tp - 1 in
        let rec scan j acc =
          if j = last then j
          else
            let acc = acc +. tp_probs.(j) in
            if target < acc then j else scan (j + 1) acc
        in
        scan 0 0.0
      in
      let per_player_escapes = Array.make nu 0 in
      let total = ref 0 and total_sq = ref 0 in
      let choices = Array.make nu 0 in
      for index = 0 to rounds - 1 do
        for i = 0 to nu - 1 do
          choices.(i) <- Dist.Finite.sample rng strategies.(i)
        done;
        let j = sample_tuple_index () in
        let covered = cover.(j) in
        let caught = ref 0 in
        for i = 0 to nu - 1 do
          if covered.(choices.(i)) then incr caught
          else per_player_escapes.(i) <- per_player_escapes.(i) + 1
        done;
        total := !total + !caught;
        total_sq := !total_sq + (!caught * !caught);
        match record with
        | Some f ->
            f
              {
                index;
                choices = Array.copy choices;
                tuple = fst tp.(j);
                caught = !caught;
              }
        | None -> ()
      done;
      let n = float_of_int rounds in
      let mean = float_of_int !total /. n in
      (* Sample (n−1) variance estimator; the population estimator
         understates sigma and would silently tighten the T7 acceptance
         band. *)
      let variance =
        if rounds > 1 then
          (float_of_int !total_sq -. (n *. mean *. mean)) /. (n -. 1.0)
        else 0.0
      in
      {
        rounds;
        total_caught = !total;
        mean_caught = mean;
        stddev_caught = sqrt (max variance 0.0);
        per_player_escapes;
      }

    let agrees_with_analytic ?(z = 4.0) ?naive stats profile =
      let exact = Q.to_float (E.Profit.expected_tp ?naive profile) in
      let half_width =
        z *. stats.stddev_caught /. sqrt (float_of_int stats.rounds)
      in
      abs_float (stats.mean_caught -. exact) <= half_width +. 1e-9
  end

  module Workload = struct
    type attacker_policy =
      | Attacker_fixed of Dist.Finite.t
      | Attacker_uniform
      | Attacker_hotspot of {
          targets : Graph.vertex list;
          concentration : float;
        }
      | Attacker_adaptive of { epsilon : float }

    type defender_policy =
      | Defender_fixed of (G.Strategy.t * Exact.Q.t) list
      | Defender_uniform_tuple
      | Defender_greedy of { epsilon : float }
      | Defender_round_robin
      | Defender_flaky of { base : defender_policy; failure_rate : float }

    type outcome = {
      rounds : int;
      total_caught : int;
      mean_caught : float;
      caught_series : int array;
    }

    let rec policy_name = function
      | Defender_fixed _ -> "fixed/NE"
      | Defender_uniform_tuple -> "uniform-tuple"
      | Defender_greedy _ -> "greedy"
      | Defender_round_robin -> "round-robin"
      | Defender_flaky { base; failure_rate } ->
          Printf.sprintf "flaky(%s, f=%.2f)" (policy_name base) failure_rate

    let attacker_name = function
      | Attacker_fixed _ -> "fixed"
      | Attacker_uniform -> "uniform"
      | Attacker_hotspot _ -> "hotspot"
      | Attacker_adaptive _ -> "adaptive"

    (* Mutable per-run state shared by the adaptive policies. *)
    type state = {
      hit_count : int array;        (* times each vertex was scanned *)
      attack_count : int array;     (* times each vertex was attacked *)
      mutable rr_round : int;       (* round-robin calls so far *)
      tie : int array;              (* scratch for least-hit tie-breaking *)
    }

    let hotspot_distribution g ~targets ~concentration =
      if concentration < 0.0 || concentration > 1.0 then
        invalid_arg "Workload: concentration outside [0,1]";
      let targets = List.sort_uniq compare targets in
      if targets = [] then invalid_arg "Workload: empty hotspot target list";
      let n = Graph.n g in
      let others =
        List.filter (fun v -> not (List.mem v targets)) (List.init n Fun.id)
      in
      let weights = Array.make n 0.0 in
      let t_w = concentration /. float_of_int (List.length targets) in
      List.iter (fun v -> weights.(v) <- t_w) targets;
      if others <> [] then begin
        let o_w = (1.0 -. concentration) /. float_of_int (List.length others) in
        List.iter (fun v -> weights.(v) <- o_w) others
      end;
      weights

    let least_hit_vertex rng state n =
      let ties = ref 0 and best_count = ref max_int in
      for v = 0 to n - 1 do
        if state.hit_count.(v) < !best_count then begin
          best_count := state.hit_count.(v);
          state.tie.(0) <- v;
          ties := 1
        end
        else if state.hit_count.(v) = !best_count then begin
          state.tie.(!ties) <- v;
          incr ties
        end
      done;
      (* [tie] is filled ascending where the old per-call list was
         descending; index from the top so the PRNG stream and the
         chosen vertex match the historical behavior exactly without a
         per-call allocation. *)
      state.tie.(!ties - 1 - Rng.int rng !ties)

    let sample_attacker rng g state = function
      | Attacker_fixed d -> Dist.Finite.sample rng d
      | Attacker_uniform -> Rng.int rng (Graph.n g)
      | Attacker_hotspot { targets; concentration } ->
          (* weights recomputed lazily would be cleaner; cheap enough *)
          Rng.weighted_index rng (hotspot_distribution g ~targets ~concentration)
      | Attacker_adaptive { epsilon } ->
          if Rng.bool_with_prob rng epsilon then Rng.int rng (Graph.n g)
          else least_hit_vertex rng state (Graph.n g)

    let sample_fixed_tuple rng strategy =
      let target = Rng.float rng in
      let rec scan acc = function
        | [ (t, _) ] -> t
        | (t, p) :: rest ->
            let acc = acc +. Q.to_float p in
            if target < acc then t else scan acc rest
        | [] -> assert false
      in
      scan 0.0 strategy

    let round_robin_tuple inst state =
      let round = state.rr_round in
      state.rr_round <- round + 1;
      G.round_robin inst ~round

    let rec sample_defender rng inst state = function
      | Defender_fixed strategy -> Some (sample_fixed_tuple rng strategy)
      | Defender_uniform_tuple -> Some (G.random_strategy inst rng)
      | Defender_greedy { epsilon } ->
          if Rng.bool_with_prob rng epsilon then
            Some (G.random_strategy inst rng)
          else Some (G.greedy_by_counts inst ~counts:state.attack_count)
      | Defender_round_robin -> Some (round_robin_tuple inst state)
      | Defender_flaky { base; failure_rate } ->
          (* outage: the scan produces nothing this round *)
          if Rng.bool_with_prob rng failure_rate then None
          else sample_defender rng inst state base

    let validate_policies inst ~attacker ~defender =
      let g = G.graph inst in
      (match attacker with
      | Attacker_fixed d ->
          List.iter
            (fun v ->
              if v < 0 || v >= Graph.n g then
                invalid_arg "Workload.run: fixed attacker distribution off-graph")
            (Dist.Finite.support d)
      | Attacker_uniform | Attacker_hotspot _ | Attacker_adaptive _ -> ());
      let rec check_defender = function
        | Defender_fixed strategy ->
            if strategy = [] then
              invalid_arg "Workload.run: empty defender strategy";
            List.iter
              (fun (t, _) ->
                match G.validate inst t with
                | () -> ()
                | exception Invalid_argument _ ->
                    invalid_arg "Workload.run: fixed defender tuple size <> k")
              strategy
        | Defender_flaky { base; failure_rate } ->
            if failure_rate < 0.0 || failure_rate >= 1.0 then
              invalid_arg "Workload.run: failure_rate outside [0, 1)";
            check_defender base
        | Defender_uniform_tuple | Defender_greedy _ | Defender_round_robin ->
            ()
      in
      check_defender defender

    let run rng inst ~attacker ~defender ~rounds =
      if rounds < 1 then invalid_arg "Workload.run: rounds must be positive";
      validate_policies inst ~attacker ~defender;
      let g = G.graph inst in
      let nu = G.nu inst in
      let state =
        {
          hit_count = Array.make (Graph.n g) 0;
          attack_count = Array.make (Graph.n g) 0;
          rr_round = 0;
          tie = Array.make (Graph.n g) 0;
        }
      in
      let caught_series = Array.make rounds 0 in
      let total = ref 0 in
      let choices = Array.make nu 0 in
      for r = 0 to rounds - 1 do
        for i = 0 to nu - 1 do
          choices.(i) <- sample_attacker rng g state attacker
        done;
        let tuple = sample_defender rng inst state defender in
        let caught = ref 0 in
        for i = 0 to nu - 1 do
          state.attack_count.(choices.(i)) <-
            state.attack_count.(choices.(i)) + 1;
          match tuple with
          | Some t when G.covers inst t choices.(i) -> incr caught
          | Some _ | None -> ()
        done;
        (match tuple with
        | Some t ->
            List.iter
              (fun v -> state.hit_count.(v) <- state.hit_count.(v) + 1)
              (G.covered inst t)
        | None -> ());
        caught_series.(r) <- !caught;
        total := !total + !caught
      done;
      {
        rounds;
        total_caught = !total;
        mean_caught = float_of_int !total /. float_of_int rounds;
        caught_series;
      }
  end
end
