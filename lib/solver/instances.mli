(** The double-oracle solver applied to the built-in games.

    These are the single application points of {!Double_oracle.Make} —
    mirroring [Tuple_instance]/[Subgraph_instance] in [lib/core] — and
    the modules everything downstream (tests, bench family D, the CLI
    [solve --method double-oracle], the query daemon) uses.  OCaml's
    applicative functor semantics keep [Tuple]'s profile type equal to
    [Defender.Profile]'s and [Subgraph]'s to
    [Defender.Subgraph_instance.Engine]'s, so solver results flow
    straight into the existing verification, gain and I/O paths. *)

module Tuple : module type of Double_oracle.Make (Defender.Tuple_game)

module Subgraph : module type of Double_oracle.Make (Defender.Subgraph_game)
