(* The double-oracle functor applied to the built-in games — the single
   application points, mirroring Tuple_instance/Subgraph_instance in
   lib/core: applicative functor semantics keep [Tuple.Engine]'s types
   equal to Defender.Profile's and [Subgraph.Engine]'s to
   Defender.Subgraph_instance.Engine's, so results flow straight into
   the existing verification, gain and I/O paths. *)

module Tuple = Double_oracle.Make (Defender.Tuple_game)
module Subgraph = Double_oracle.Make (Defender.Subgraph_game)
