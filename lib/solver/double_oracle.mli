(** Double-oracle (column-generation) computation of exact symmetric
    Nash equilibria, for strategy spaces too large to enumerate.

    The (ν+1)-player game reduces to a two-player zero-sum game: a
    symmetric profile (σ,…,σ,p) is an NE iff (σ,p) is an equilibrium of
    the matrix game in which the attacker picks a vertex, the defender a
    pure strategy, and the payoff is the interception indicator — the
    attacker's payoff [1 − P(Hit)] depends only on the defender's mix,
    and the defender's best response only on the aggregate attacker
    load (DESIGN.md §13 and SOLVERS.md give the full argument).

    The loop (McMahan et al. 2003; applied to network attack/defense by
    Kaźmierowski–Dziubiński, arXiv:2309.04288) never materializes the
    full matrix: it keeps RESTRICTED sets of attacker vertices and
    defender strategies, solves the restricted game exactly
    ({!Lp.Matrix_game}, warm-restarted across column growth), then asks
    each side's exact best-response oracle for a profitable deviation
    against the opponent's current mix — the attacker side by a linear
    scan of per-vertex hit probabilities, the defender side through
    {!Defender.Game.S.best_response_weighted}.  Strict improvements
    join the restricted sets; when neither oracle improves, the
    restricted equilibrium is an equilibrium of the full game, with a
    zero oracle gap in exact rationals — a certificate, not an
    ε-approximation.  Termination is guaranteed: an improving deviation
    is never already in the restricted set, so each iteration strictly
    grows one of two finite sets.

    Everything is deterministic in the instance and the initial sets:
    restricted sets grow in insertion order, the simplex and both
    oracles break ties by fixed rules, so repeated solves (and solves
    across worker processes) agree to the bit, as the [do.*] Obs
    counters require. *)

module Q = Exact.Q

module Make (G : Defender.Game.S) : sig
  (** One loop iteration, as reported to [?on_iteration]: [value] is the
      restricted-game interception value, [lower]/[upper] the exact
      bounds the two oracles certify for the FULL game at this point
      ([lower ≤ value ≤ upper] always; convergence is [lower = upper]),
      and [rows]/[cols] the restricted matrix shape that was solved. *)
  type iteration = {
    iteration : int;  (** 1-based *)
    value : Q.t;
    lower : Q.t;
    upper : Q.t;
    rows : int;
    cols : int;
  }

  type stats = {
    iterations : int;
    oracle_calls : int;  (** 2 per iteration: one per side *)
    warm_solves : int;
        (** restricted solves entered with a reusable simplex basis
            (row set unchanged since the previous solve) *)
    final_rows : int;  (** attacker vertices in the final restricted game *)
    final_cols : int;  (** defender strategies in the final restricted game *)
  }

  (** An exact symmetric NE: every attacker plays [sigma], the defender
      plays [tp] (positive probabilities only), and [value] is the
      per-attacker interception probability — the defender's gain is
      [ν·value].  The defender support never exceeds [final_rows]+1
      strategies regardless of the space size. *)
  type result = {
    value : Q.t;
    sigma : Dist.Finite.t;
    tp : (G.Strategy.t * Q.t) list;
    stats : stats;
  }

  (** [solve inst] runs the loop to convergence.

      [?init_vertices]/[?init_strategies] seed the restricted sets
      (defaults: vertex 0 and the round-0 rotation strategy); seeding
      with the supports of a conjectured equilibrium makes the loop a
      one-iteration checker of that conjecture.  [?on_iteration] sees
      every iteration in order — convergence instrumentation
      ([Sim.Convergence]) hooks in here.  [?max_iterations] (default
      10_000) is a safety valve only, termination being guaranteed.
      @raise Invalid_argument on out-of-range seed vertices or an
      unplayable seed strategy.
      @raise Failure when [max_iterations] is exhausted. *)
  val solve :
    ?max_iterations:int ->
    ?init_vertices:Netgraph.Graph.vertex list ->
    ?init_strategies:G.Strategy.t list ->
    ?on_iteration:(iteration -> unit) ->
    G.instance ->
    result

  (** Package a result as a full (ν+1)-player mixed profile — every
      attacker on [sigma] — ready for [Verify.mixed_ne], gain/escape
      accounting, and profile I/O. *)
  val profile :
    G.instance -> result -> Defender.Game_engine.Make(G).Profile.mixed
end
