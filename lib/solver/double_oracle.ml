(* The double-oracle loop.  See double_oracle.mli for the reduction and
   the termination argument; the invariants the code below maintains:

   - The restricted matrix is the ESCAPE game: rows = attacker vertices
     maximizing 1 − [covered], columns = defender strategies minimizing
     it.  Solving from the attacker side puts the defender's strategies
     in the LP columns, which is what makes warm restarts pay: the
     defender side is the one that grows on almost every iteration, and
     appended columns keep the previous simplex basis feasible, while a
     new attacker row invalidates it (Matrix_game then falls back cold).
   - At a restricted equilibrium every restricted vertex is hit with
     probability ≥ v* and every restricted strategy intercepts ≤ v*, so
     a strictly improving oracle answer is provably NOT in the
     restricted set — the asserts below are the termination invariant,
     and would only fire on an inexact oracle (a contract violation).
   - Both restricted sets grow by appending in oracle order; with the
     deterministic simplex and oracles this makes the whole run a pure
     function of (instance, seeds), which the do.* counter determinism
     gates rely on. *)

open Netgraph
module Q = Exact.Q
module Finite = Dist.Finite

let c_iterations = Obs.counter "do.iterations"
let c_oracle_calls = Obs.counter "do.oracle_calls"
let c_support_size = Obs.counter "do.support_size"

module Make (G : Defender.Game.S) = struct
  module Engine = Defender.Game_engine.Make (G)
  module SSet = Set.Make (G.Strategy)

  type iteration = {
    iteration : int;
    value : Q.t;
    lower : Q.t;
    upper : Q.t;
    rows : int;
    cols : int;
  }

  type stats = {
    iterations : int;
    oracle_calls : int;
    warm_solves : int;
    final_rows : int;
    final_cols : int;
  }

  type result = {
    value : Q.t;
    sigma : Finite.t;
    tp : (G.Strategy.t * Q.t) list;
    stats : stats;
  }

  let solve ?(max_iterations = 10_000) ?(init_vertices = [])
      ?(init_strategies = []) ?on_iteration inst =
    let g = G.graph inst in
    let n = Graph.n g in
    let row_mem = Array.make n false in
    let rows_rev = ref [] in
    let add_vertex v =
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Double_oracle.solve: seed vertex %d out of range" v);
      if not row_mem.(v) then begin
        row_mem.(v) <- true;
        rows_rev := v :: !rows_rev
      end
    in
    let col_set = ref SSet.empty in
    let cols_rev = ref [] in
    let add_strategy s =
      G.validate inst s;
      if not (SSet.mem s !col_set) then begin
        col_set := SSet.add s !col_set;
        cols_rev := s :: !cols_rev
      end
    in
    (match init_vertices with
    | [] -> add_vertex 0
    | vs -> List.iter add_vertex vs);
    (match init_strategies with
    | [] -> add_strategy (G.round_robin inst ~round:0)
    | ss -> List.iter add_strategy ss);
    let prev = ref None in
    let iterations = ref 0 and warm_solves = ref 0 in
    let rec loop () =
      if !iterations >= max_iterations then
        failwith
          (Printf.sprintf
             "Double_oracle.solve: no convergence within %d iterations"
             max_iterations);
      incr iterations;
      Obs.incr c_iterations;
      let rows = Array.of_list (List.rev !rows_rev) in
      let cols = Array.of_list (List.rev !cols_rev) in
      let nr = Array.length rows and nc = Array.length cols in
      let matrix =
        Array.init nr (fun i ->
            Array.init nc (fun j ->
                if G.covers inst cols.(j) rows.(i) then Q.zero else Q.one))
      in
      let warm =
        match !prev with
        | Some (sol, pr, pc) when pr = nr ->
            incr warm_solves;
            Some (Lp.Matrix_game.warm ~rows:pr ~cols:pc sol)
        | _ -> None
      in
      let sol = Lp.Matrix_game.solve ?warm matrix in
      prev := Some (sol, nr, nc);
      let v_star = Q.sub Q.one sol.Lp.Matrix_game.value in
      (* Defender oracle: best pure interception against σ. *)
      let weight = Array.make n Q.zero in
      Array.iteri
        (fun i v -> weight.(v) <- sol.Lp.Matrix_game.row_strategy.(i))
        rows;
      let d_new = G.best_response_weighted inst ~weight in
      let upper =
        List.fold_left
          (fun acc v -> Q.add acc weight.(v))
          Q.zero (G.covered inst d_new)
      in
      (* Attacker oracle: least-hit vertex against the defender mix,
         lowest id on ties. *)
      let hit = Array.make n Q.zero in
      Array.iteri
        (fun j s ->
          let p = sol.Lp.Matrix_game.col_strategy.(j) in
          if not (Q.is_zero p) then
            List.iter (fun v -> hit.(v) <- Q.add hit.(v) p) (G.covered inst s))
        cols;
      let v_new = ref 0 in
      for v = 1 to n - 1 do
        if Q.( < ) hit.(v) hit.(!v_new) then v_new := v
      done;
      let lower = hit.(!v_new) in
      Obs.add c_oracle_calls 2;
      (match on_iteration with
      | Some f ->
          f
            {
              iteration = !iterations;
              value = v_star;
              lower;
              upper;
              rows = nr;
              cols = nc;
            }
      | None -> ());
      let defender_improves = Q.( > ) upper v_star in
      let attacker_improves = Q.( < ) lower v_star in
      if defender_improves || attacker_improves then begin
        if defender_improves then begin
          assert (not (SSet.mem d_new !col_set));
          add_strategy d_new
        end;
        if attacker_improves then begin
          assert (not row_mem.(!v_new));
          add_vertex !v_new
        end;
        loop ()
      end
      else begin
        let positive pairs =
          List.filter (fun (_, p) -> not (Q.is_zero p)) pairs
        in
        let sigma =
          Finite.make
            (positive
               (Array.to_list
                  (Array.mapi
                     (fun i v -> (v, sol.Lp.Matrix_game.row_strategy.(i)))
                     rows)))
        in
        let tp =
          positive
            (Array.to_list
               (Array.mapi
                  (fun j s -> (s, sol.Lp.Matrix_game.col_strategy.(j)))
                  cols))
        in
        Obs.add c_support_size (Finite.support_size sigma + List.length tp);
        {
          value = v_star;
          sigma;
          tp;
          stats =
            {
              iterations = !iterations;
              oracle_calls = 2 * !iterations;
              warm_solves = !warm_solves;
              final_rows = nr;
              final_cols = nc;
            };
        }
      end
    in
    loop ()

  let profile inst (r : result) =
    Engine.Profile.make_mixed inst
      ~vp:(List.init (G.nu inst) (fun _ -> r.sigma))
      ~tp:r.tp
end
