open Netgraph

(* The definitional checks (is_pure_ne, exists_brute_force) come from
   the generic engine; the polynomial Theorem 3.1 route below is
   tuple-specific (edge covers are a tuple-game notion). *)

include Tuple_instance.Engine.Pure

let exists model =
  Matching.Edge_cover.exists_of_size (Model.graph model) (Model.k model)

let construct model =
  match Matching.Edge_cover.of_size (Model.graph model) (Model.k model) with
  | None -> None
  | Some cover ->
      let g = Model.graph model in
      let tp_choice = Tuple.of_list g cover in
      Some
        (Profile.make_pure model
           ~vp_choices:(List.init (Model.nu model) (fun _ -> 0))
           ~tp_choice)

let cor33_applies model = Graph.n (Model.graph model) >= (2 * Model.k model) + 1
