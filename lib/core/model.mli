(** The Tuple model Π_k(G) (Definition 2.1 of the paper).

    An instance is a graph [G] (connected, no isolated vertices, [n ≥ 2]),
    a number ν of vertex players (attackers) and the defender's power [k]
    (number of links scanned, [1 ≤ k ≤ m]).  The Edge model of [7] is the
    special case [k = 1]. *)

open Netgraph

type t = private { graph : Graph.t; nu : int; k : int }

(** @raise Invalid_argument if the graph is not a valid instance
    (disconnected, isolated vertices, [n < 2]), [nu < 1], or [k] outside
    [1, m]. *)
val make : graph:Graph.t -> nu:int -> k:int -> t

(** Same instance with power 1 (the Edge-model instance Π₁(G)). *)
val edge_model : t -> t

(** Same instance with a different power.
    @raise Invalid_argument if [k] outside [1, m]. *)
val with_k : t -> k:int -> t

val graph : t -> Graph.t
val nu : t -> int
val k : t -> int

(** Number of pure defender strategies C(m, k), exactly, over the
    {!Exact.Q} bignum tower — no overflow at any [m], [k]. *)
val tuple_space_size_exact : t -> Exact.Q.t

(** The same count projected to a native [int]; [None] when it does not
    fit (the enumeration guards' interface).  Unlike the historical
    wrap-detecting product, the count itself is always exact. *)
val tuple_space_size : t -> int option

val pp : Format.formatter -> t -> unit
