(* The exact engine applied to the connected-subgraph defender; the one
   application point the experiment family S and the CLI share. *)

module Engine = Game_engine.Make (Subgraph_game)
