open Netgraph
module Q = Exact.Q

type failure =
  [ `Ambiguous | `Inconsistent | `Nonpositive | `Not_equilibrium of string ]

let failure_to_string = function
  | `Ambiguous -> "indifference system underdetermined"
  | `Inconsistent -> "no weights equalize the payoffs"
  | `Nonpositive -> "unique weights exist but are not all positive"
  | `Not_equilibrium why -> "weights found but not an equilibrium: " ^ why

(* Solve "pairwise equal linear forms + normalization = 1" for positive
   weights.  [forms] has one row of coefficients per equalized quantity;
   unknown count = columns. *)
let equalize_and_normalize forms =
  match forms with
  | [] -> Error `Inconsistent
  | first :: rest ->
      let unknowns = Array.length first in
      let difference row = Array.init unknowns (fun j -> Q.sub first.(j) row.(j)) in
      let a = Array.of_list (List.map difference rest @ [ Array.make unknowns Q.one ]) in
      let b =
        Array.init (List.length rest + 1) (fun i ->
            if i = List.length rest then Q.one else Q.zero)
      in
      (match Lp.Gauss.solve ~a ~b with
      | Lp.Gauss.Unique x ->
          if Array.for_all (fun w -> Q.sign w > 0) x then Ok x else Error `Nonpositive
      | Lp.Gauss.Underdetermined -> Error `Ambiguous
      | Lp.Gauss.Inconsistent -> Error `Inconsistent)

let solve ?(limit = 2_000_000) ?naive model ~vp_support ~tp_support =
  let g = Model.graph model in
  let vp_support = List.sort_uniq compare vp_support in
  if vp_support = [] then invalid_arg "Support_solver.solve: empty attacker support";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Support_solver.solve: vertex out of range")
    vp_support;
  if tp_support = [] then invalid_arg "Support_solver.solve: empty defender support";
  let tuples = Array.of_list tp_support in
  let vertices = Array.of_list vp_support in
  (* Defender weights: equalize Hit(v) over the attacker support. *)
  let hit_forms =
    List.map
      (fun v ->
        Array.map (fun t -> if Tuple.covers g t v then Q.one else Q.zero) tuples)
      vp_support
  in
  (* Attacker weights: equalize sum of sigma over S ∩ V(t) across T. *)
  let load_forms =
    List.map
      (fun t ->
        Array.map (fun v -> if Tuple.covers g t v then Q.one else Q.zero) vertices)
      tp_support
  in
  match equalize_and_normalize hit_forms with
  | Error _ as e -> e
  | Ok p -> (
      match equalize_and_normalize load_forms with
      | Error _ as e -> e
      | Ok sigma ->
          let vp_dist =
            Dist.Finite.make
              (List.mapi (fun j v -> (v, sigma.(j))) vp_support)
          in
          let tp =
            List.mapi (fun i t -> (t, p.(i))) tp_support
          in
          let profile =
            Profile.make_mixed model
              ~vp:(List.init (Model.nu model) (fun _ -> vp_dist))
              ~tp
          in
          (match Verify.mixed_ne ?naive (Verify.Exhaustive limit) profile with
          | Verify.Confirmed -> Ok profile
          | Verify.Refuted why | Verify.Unknown why ->
              Error (`Not_equilibrium why)))

let subsets_of_size items k =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let out = ref [] in
  let selection = Array.make k 0 in
  let rec choose pos lo =
    if pos = k then out := List.init k (fun i -> arr.(selection.(i))) :: !out
    else
      for i = lo to n - (k - pos) do
        selection.(pos) <- i;
        choose (pos + 1) (i + 1)
      done
  in
  if k >= 1 && k <= n then choose 0 0;
  List.rev !out

let search ?limit ?naive model ~candidate_tuples =
  let g = Model.graph model in
  let n = Graph.n g in
  if n > 8 then invalid_arg "Support_solver.search: graph too large (n > 8)";
  if List.length candidate_tuples > 10 then
    invalid_arg "Support_solver.search: too many candidate tuples (> 10)";
  let vertices = List.init n Fun.id in
  let found = ref [] in
  for size = 1 to min n (List.length candidate_tuples) do
    List.iter
      (fun vp_support ->
        List.iter
          (fun tp_support ->
            match solve ?limit ?naive model ~vp_support ~tp_support with
            | Ok profile -> found := profile :: !found
            | Error _ -> ())
          (subsets_of_size candidate_tuples size))
      (subsets_of_size vertices size)
  done;
  List.rev !found
