open Netgraph
module Q = Exact.Q

type defense = {
  value : Q.t;
  rho_star : Q.t;
  marginals : Q.t array;
  cover : Q.t array;
  packing : Q.t array;
}

let solve g =
  if Graph.has_isolated_vertex g then
    invalid_arg "Minimax.solve: graph has an isolated vertex";
  let n = Graph.n g and m = Graph.m g in
  (* Fractional vertex packing: max Σ y_v s.t. y_u + y_v <= 1 per edge.
     Its optimum is ρ*(G); the dual multipliers are the optimal
     fractional edge cover. *)
  let a =
    Array.init m (fun id ->
        let e = Graph.edge g id in
        Array.init n (fun v ->
            if v = e.Graph.u || v = e.Graph.v then Q.one else Q.zero))
  in
  let b = Array.make m Q.one in
  let c = Array.make n Q.one in
  match Lp.Simplex.maximize ~a ~b ~c with
  | Lp.Simplex.Unbounded -> assert false (* y <= 1 componentwise *)
  | Lp.Simplex.Optimal { objective; x = packing; dual = cover; _ } ->
      let rho_star = objective in
      let marginals = Array.map (fun xe -> Q.div xe rho_star) cover in
      {
        value = Q.inv rho_star;
        rho_star;
        marginals;
        cover;
        packing;
      }

let fractional_edge_cover_number g = (solve g).rho_star

let hit_floor g marginals =
  (* The hit probability of a fractional edge schedule is the per-vertex
     incidence sum of the marginals; answered by the kernel primitive. *)
  Q.min_list (Array.to_list (Payoff_kernel.vertex_incidence_sums g marginals))

let certified g d =
  let m = Graph.m g in
  (* cover feasibility: every vertex fractionally covered *)
  let cover_ok =
    Array.for_all
      (fun total -> Q.( >= ) total Q.one)
      (Payoff_kernel.vertex_incidence_sums g d.cover)
    && Array.for_all (fun xe -> Q.( >= ) xe Q.zero) d.cover
  in
  (* packing feasibility *)
  let packing_ok =
    Array.for_all (fun yv -> Q.( >= ) yv Q.zero) d.packing
    && List.for_all
         (fun id ->
           let e = Graph.edge g id in
           Q.( <= ) (Q.add d.packing.(e.Graph.u) d.packing.(e.Graph.v)) Q.one)
         (List.init m Fun.id)
  in
  (* zero duality gap and attained floor *)
  let cover_total = Array.fold_left Q.add Q.zero d.cover in
  let packing_total = Array.fold_left Q.add Q.zero d.packing in
  cover_ok && packing_ok
  && Q.equal cover_total d.rho_star
  && Q.equal packing_total d.rho_star
  && Q.equal (hit_floor g d.marginals) d.value
  && Q.equal d.value (Q.inv d.rho_star)
