open Netgraph
module Q = Exact.Q

let is_path g ids =
  match ids with
  | [] -> false
  | _ ->
      let ids = List.sort_uniq compare ids in
      let deg = Hashtbl.create 8 in
      let bump v = Hashtbl.replace deg v (1 + Option.value (Hashtbl.find_opt deg v) ~default:0) in
      List.iter
        (fun id ->
          let e = Graph.edge g id in
          bump e.Graph.u;
          bump e.Graph.v)
        ids;
      let k = List.length ids in
      let vertices = Hashtbl.fold (fun v _ acc -> v :: acc) deg [] in
      (* A simple path with k edges has k+1 vertices, two of degree 1 and
         k-1 of degree 2, and is connected.  The degree profile alone is
         NOT enough: a disjoint path-plus-cycle union matches it, so
         connectivity over the chosen edges is checked explicitly. *)
      List.length vertices = k + 1
      && (let ones =
            List.length (List.filter (fun v -> Hashtbl.find deg v = 1) vertices)
          in
          let twos =
            List.length (List.filter (fun v -> Hashtbl.find deg v = 2) vertices)
          in
          (k = 1 && ones = 2) || (k > 1 && ones = 2 && twos = k - 1))
      &&
      (* connectivity restricted to the chosen edge set *)
      let adj = Hashtbl.create 8 in
      List.iter
        (fun id ->
          let e = Graph.edge g id in
          let push a b =
            Hashtbl.replace adj a (b :: Option.value (Hashtbl.find_opt adj a) ~default:[])
          in
          push e.Graph.u e.Graph.v;
          push e.Graph.v e.Graph.u)
        ids;
      let seen = Hashtbl.create 8 in
      let rec visit v =
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          List.iter visit (Option.value (Hashtbl.find_opt adj v) ~default:[])
        end
      in
      visit (List.hd vertices);
      Hashtbl.length seen = k + 1

let enumerate_paths ?(limit = 2_000_000) g ~k =
  if k < 1 then invalid_arg "Path_model.enumerate_paths: k must be positive";
  let found = ref [] in
  let count = ref 0 in
  let on_path = Array.make (Graph.n g) false in
  (* DFS extending a path at its head; start from every vertex, keep only
     the traversal direction whose start vertex is the smaller endpoint. *)
  let rec extend head edges_so_far remaining start =
    if remaining = 0 then begin
      if start < head then begin
        incr count;
        if !count > limit then
          invalid_arg "Path_model.enumerate_paths: too many paths";
        found := Tuple.of_list g (List.rev edges_so_far) :: !found
      end
    end
    else
      Graph.iter_incident g head ~f:(fun w id ->
          if not on_path.(w) then begin
            on_path.(w) <- true;
            extend w (id :: edges_so_far) (remaining - 1) start;
            on_path.(w) <- false
          end)
  in
  Graph.iter_vertices g ~f:(fun v ->
      on_path.(v) <- true;
      extend v [] k v;
      on_path.(v) <- false);
  List.sort_uniq Tuple.compare !found

let hamiltonian_path g =
  let n = Graph.n g in
  if n > 22 then invalid_arg "Path_model.hamiltonian_path: n > 22";
  if n = 1 then Some [ 0 ]
  else begin
    let full = (1 lsl n) - 1 in
    (* reach.(v) = set of masks (as a Hashtbl per vertex is too slow);
       dp as bool array indexed mask*n + v, with parent recovery. *)
    let dp = Bytes.make ((full + 1) * n) '\000' in
    let get mask v = Bytes.get dp ((mask * n) + v) <> '\000' in
    let set mask v = Bytes.set dp ((mask * n) + v) '\001' in
    for v = 0 to n - 1 do
      set (1 lsl v) v
    done;
    for mask = 1 to full do
      for v = 0 to n - 1 do
        if mask land (1 lsl v) <> 0 && get mask v then
          Graph.iter_neighbors g v ~f:(fun w ->
              if mask land (1 lsl w) = 0 then set (mask lor (1 lsl w)) w)
      done
    done;
    let rec recover mask v acc =
      if mask = 1 lsl v then v :: acc
      else
        let prev_mask = mask lxor (1 lsl v) in
        let prev =
          let p = ref (-1) in
          Graph.iter_neighbors g v ~f:(fun w ->
              if !p < 0 && prev_mask land (1 lsl w) <> 0 && get prev_mask w
              then p := w);
          !p
        in
        recover prev_mask prev (v :: acc)
    in
    let rec find v =
      if v = n then None
      else if get full v then Some (recover full v [])
      else find (v + 1)
    in
    find 0
  end

let has_hamiltonian_path g = Option.is_some (hamiltonian_path g)

let pure_ne_exists model =
  let g = Model.graph model in
  Model.k model = Graph.n g - 1 && has_hamiltonian_path g

let construct_pure_ne model =
  let g = Model.graph model in
  if Model.k model <> Graph.n g - 1 then None
  else
    match hamiltonian_path g with
    | None -> None
    | Some vertices ->
        let rec edges = function
          | a :: (b :: _ as rest) ->
              Option.get (Graph.find_edge g a b) :: edges rest
          | _ -> []
        in
        let tuple = Tuple.of_list g (edges vertices) in
        Some
          (Profile.make_pure model
             ~vp_choices:(List.init (Model.nu model) (fun _ -> 0))
             ~tp_choice:tuple)

let tp_best_value ?limit m =
  let model = Profile.model m in
  let g = Model.graph model in
  let paths = enumerate_paths ?limit g ~k:(Model.k model) in
  match paths with
  | [] -> Q.zero
  | _ -> Q.max_list (List.map (Profile.expected_load_tuple m) paths)

let is_mixed_ne ?limit m =
  let g = Model.graph (Profile.model m) in
  let non_path =
    List.find_opt (fun t -> not (is_path g (Tuple.to_list t))) (Profile.tp_support m)
  in
  match non_path with
  | Some t ->
      Verify.Refuted
        (Format.asprintf "support tuple %a is not a simple path" Tuple.pp t)
  | None -> (
      match Verify.vp_side m with
      | Verify.Confirmed ->
          let best = tp_best_value ?limit m in
          let loads =
            List.map (fun (t, _) -> Profile.expected_load_tuple m t) (Profile.tp_strategy m)
          in
          let low = Q.min_list loads in
          if Q.( < ) low (Q.max_list loads) then
            Verify.Refuted "defender support mixes paths of different value"
          else if Q.( < ) low best then
            Verify.Refuted
              (Printf.sprintf "a path of value %s beats the support's %s"
                 (Q.to_string best) (Q.to_string low))
          else Verify.Confirmed
      | v -> v)

let pure_thresholds g =
  let rho = Matching.Edge_cover.rho g in
  (rho, if has_hamiltonian_path g then Some (Graph.n g - 1) else None)
