(** Individual profits (Definition 2.1) and expected individual profits
    (equations (1) and (2) of the paper), computed exactly. *)

module Q = Exact.Q

(** IP_i: 1 if vertex player [i] escapes the defender, 0 otherwise. *)
val pure_vp : Model.t -> Profile.pure -> int -> int

(** IP_tp: number of vertex players caught. *)
val pure_tp : Model.t -> Profile.pure -> int

(** The mixed-profile quantities are answered from the profile's
    {!Payoff_kernel} tables; [~naive:true] re-derives them by support
    re-scan (correctness oracle, exactly equal). *)

(** Expected IP_i per equation (1): Σ_v P(vp_i = v) (1 − P(Hit(v))). *)
val expected_vp : ?naive:bool -> Profile.mixed -> int -> Q.t

(** Expected IP_tp per equation (2): Σ_t P(tp = t) m_s(t). *)
val expected_tp : ?naive:bool -> Profile.mixed -> Q.t

(** Payoff of playing pure vertex [v] against the profile's defender:
    [1 − Hit(v)].  The best-response value for a vertex player. *)
val vp_payoff_of_vertex :
  ?naive:bool -> Profile.mixed -> Netgraph.Graph.vertex -> Q.t

(** Payoff of playing pure tuple [t] against the profile's attackers:
    [m_s(t)].  The best-response value for the defender. *)
val tp_payoff_of_tuple : ?naive:bool -> Profile.mixed -> Tuple.t -> Q.t
