(* Definitional NE verification: entirely generic — the engine's Verify
   pinned to the tuple game. *)

include Tuple_instance.Engine.Verify
