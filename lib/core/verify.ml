module Q = Exact.Q

type mode = Exhaustive of int | Certificate

type verdict = Confirmed | Refuted of string | Unknown of string

let verdict_is_confirmed = function Confirmed -> true | Refuted _ | Unknown _ -> false

let verdict_to_string = function
  | Confirmed -> "confirmed"
  | Refuted why -> "refuted: " ^ why
  | Unknown why -> "unknown: " ^ why

let vp_side ?naive m =
  let best = Best_response.vp_best_value ?naive m in
  let nu = Model.nu (Profile.model m) in
  let rec check i =
    if i = nu then Confirmed
    else
      let offending =
        List.find_opt
          (fun v -> Q.( < ) (Profit.vp_payoff_of_vertex ?naive m v) best)
          (Profile.vp_support m i)
      in
      match offending with
      | Some v ->
          Refuted
            (Printf.sprintf
               "vertex player %d puts weight on vertex %d with payoff %s < best %s"
               i v
               (Q.to_string (Profit.vp_payoff_of_vertex ?naive m v))
               (Q.to_string best))
      | None -> check (i + 1)
  in
  check 0

let support_load_range ?naive m =
  let loads =
    List.map
      (fun (t, _) -> Profile.expected_load_tuple ?naive m t)
      (Profile.tp_strategy m)
  in
  (Q.min_list loads, Q.max_list loads)

let tp_side ?naive mode m =
  let low, high = support_load_range ?naive m in
  if Q.( < ) low high then
    Refuted
      (Printf.sprintf
         "defender support mixes tuples of different value (%s vs %s)"
         (Q.to_string low) (Q.to_string high))
  else
    match mode with
    | Exhaustive limit ->
        let best = Best_response.tp_best_value_exhaustive ~limit ?naive m in
        if Q.( < ) low best then
          Refuted
            (Printf.sprintf "defender can deviate to a tuple of value %s > %s"
               (Q.to_string best) (Q.to_string low))
        else Confirmed
    | Certificate ->
        let bound = Best_response.tp_upper_bound ?naive m in
        if Q.equal low bound then Confirmed
        else
          Unknown
            (Printf.sprintf
               "support value %s below top-k edge-load bound %s; certificate \
                inconclusive"
               (Q.to_string low) (Q.to_string bound))

let mixed_ne ?naive mode m =
  match vp_side ?naive m with
  | Confirmed -> tp_side ?naive mode m
  | (Refuted _ | Unknown _) as v -> v
