(** Configurations (strategy profiles) of Π_k(G), pure and mixed, together
    with the standard equilibrium quantities Hit, m_s(v), m_s(t).

    The vertex players' strategies are distributions over vertex ids; the
    tuple player's strategy is a distribution over tuples, stored as an
    association list over canonical tuples. *)

open Netgraph
module Q = Exact.Q

type pure = Tuple_instance.Engine.Profile.pure = {
  vp_choices : Graph.vertex array;  (** one vertex per vertex player *)
  tp_choice : Tuple.t;
}

(** Equal to the engine's type so the generic simulation loops
    ([Sim.Game_sim.Make]) and this wrapper agree on one profile type;
    treat it as abstract. *)
type mixed = Tuple_instance.Engine.Profile.mixed

(** [make_pure model ~vp_choices ~tp_choice] validates arity, vertex range
    and tuple size ([= k]). @raise Invalid_argument otherwise. *)
val make_pure : Model.t -> vp_choices:Graph.vertex list -> tp_choice:Tuple.t -> pure

(** [make_mixed model ~vp ~tp] validates: one distribution per vertex
    player over valid vertices; tuple strategies of size [k] with positive
    probabilities summing to exactly 1. @raise Invalid_argument
    otherwise. *)
val make_mixed :
  Model.t -> vp:Dist.Finite.t list -> tp:(Tuple.t * Q.t) list -> mixed

(** Embed a pure configuration as point masses. *)
val of_pure : Model.t -> pure -> mixed

(** Uniform-support shorthand used by all structured equilibria: every
    vertex player uniform on [vp_support], the tuple player uniform on
    [tp_support]. @raise Invalid_argument on empty supports/duplicates. *)
val uniform : Model.t -> vp_support:Graph.vertex list -> tp_support:Tuple.t list -> mixed

val model : mixed -> Model.t

(** The configuration's precomputed exact payoff tables ({!Payoff_kernel}),
    kept in sync by the constructors and by {!replace_vp}/{!replace_tp}. *)
val kernel : mixed -> Payoff_kernel.t

(** Strategy of vertex player [i]. @raise Invalid_argument if out of
    range. *)
val vp_strategy : mixed -> int -> Dist.Finite.t

(** All vertex players' strategies, indexed by player (a copy). *)
val vp_strategies : mixed -> Dist.Finite.t array

(** The tuple player's strategy: support tuples with probabilities. *)
val tp_strategy : mixed -> (Tuple.t * Q.t) list

(** D_s(vp_i): support of player [i], sorted. *)
val vp_support : mixed -> int -> Graph.vertex list

(** D_s(VP) = union of vertex players' supports, sorted. *)
val vp_support_union : mixed -> Graph.vertex list

(** D_s(tp): support tuples. *)
val tp_support : mixed -> Tuple.t list

(** E(D_s(tp)): union of support edges, sorted. *)
val tp_support_edges : mixed -> Graph.edge_id list

(** Tuples_s(v): support tuples covering vertex [v]. *)
val tuples_hitting : mixed -> Graph.vertex -> (Tuple.t * Q.t) list

(** P_s(Hit(v)).  O(1) from the kernel table; [~naive:true] re-scans the
    defender's support instead (the correctness oracle — both paths are
    exactly equal). *)
val hit_prob : ?naive:bool -> mixed -> Graph.vertex -> Q.t

(** m_s(v): expected number of vertex players on [v].  O(1) from the
    kernel table; [~naive:true] re-scans the attackers' strategies. *)
val expected_load : ?naive:bool -> mixed -> Graph.vertex -> Q.t

(** m_s(e) = m_s(u) + m_s(v) for an edge. *)
val expected_load_edge : ?naive:bool -> mixed -> Graph.edge_id -> Q.t

(** m_s(t) = Σ_{v ∈ V(t)} m_s(v) for any tuple (not necessarily in the
    support). *)
val expected_load_tuple : ?naive:bool -> mixed -> Tuple.t -> Q.t

(** [replace_vp m i d] / [replace_tp m tp]: one-player deviations, used by
    best-response checks.  The kernel tables are patched incrementally —
    [replace_vp] touches only the two supports involved (the hit table is
    shared), [replace_tp] rebuilds only the hit table. *)
val replace_vp : mixed -> int -> Dist.Finite.t -> mixed

val replace_tp : mixed -> (Tuple.t * Q.t) list -> mixed

(** True when every player's strategy is a point mass. *)
val is_pure : mixed -> bool

val pp : Format.formatter -> mixed -> unit
