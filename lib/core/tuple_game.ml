(* The paper's game Π_k(G) as a GAME instance: ν vertex players and one
   defender choosing a k-edge tuple.  This module is instance #1 of the
   Game.S signature; the pre-functor modules (Payoff_kernel, Profile,
   Best_response, ...) are wrappers over Game_engine.Make applied to it
   (tuple_instance.ml) and their observable behavior — fold orders,
   tie-breaks, error strings — must not drift. *)

open Netgraph
module Q = Exact.Q

let name = "tuple"

type instance = Model.t

module Strategy = struct
  type t = Tuple.t

  let compare = Tuple.compare
  let equal = Tuple.equal
  let pp = Tuple.pp
  let to_ints = Tuple.to_list
end

let graph = Model.graph
let nu = Model.nu
let params inst = [ ("nu", Model.nu inst); ("k", Model.k inst) ]
let pp_instance = Model.pp

let validate inst t =
  if Tuple.size t <> Model.k inst then
    invalid_arg
      (Printf.sprintf "Profile: tuple size %d, expected k = %d" (Tuple.size t)
         (Model.k inst))

let strategy_of_ints inst ids = Tuple.of_list (Model.graph inst) ids
let covered inst t = Tuple.vertices (Model.graph inst) t
let covers inst t v = Tuple.covers (Model.graph inst) t v

let fold_strategies inst ~init ~f =
  Tuple.fold_enumerate (Model.graph inst) ~k:(Model.k inst) ~init ~f

let space_size inst = Model.tuple_space_size_exact inst

let space_size_within inst ~limit =
  match Model.tuple_space_size inst with
  | Some c when c <= limit -> Some c
  | Some _ | None -> None

(* Certificate bound: no k-tuple can cover more expected load than the
   sum of the k largest edge loads. *)
let value_upper_bound inst ~load:_ ~edge_load =
  let g = Model.graph inst in
  let k = Model.k inst in
  let loads =
    List.init (Graph.m g) edge_load |> List.sort (fun a b -> Q.compare b a)
  in
  let rec take i acc = function
    | [] -> acc
    | _ when i = k -> acc
    | l :: rest -> take (i + 1) (Q.add acc l) rest
  in
  take 0 Q.zero loads

(* Exact weighted best response: the k-edge tuple maximizing the summed
   weight of its covered vertices.  Weighted max coverage by k edges is
   NP-hard in general, so there is no polynomial shortcut; instead:
   depth-first branch-and-bound over edges sorted by endpoint weight sum
   (descending, id ascending to fix ties), bounding each subtree by the
   prefix sum of the best remaining edges — each counted with its full
   endpoint sum, an upper bound on its marginal gain.  A greedy
   incumbent seeds the search and only strict improvements replace it,
   so the answer is deterministic in (instance, weight). *)
let best_response_weighted inst ~weight =
  let g = Model.graph inst in
  let n = Graph.n g and m = Graph.m g and k = Model.k inst in
  if Array.length weight <> n then
    invalid_arg "Tuple_game.best_response_weighted: |weight| <> n";
  let ew =
    Array.init m (fun id ->
        let e = Graph.edge g id in
        Q.add weight.(e.Graph.u) weight.(e.Graph.v))
  in
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      match Q.compare ew.(b) ew.(a) with 0 -> compare a b | c -> c)
    order;
  let prefix = Array.make (m + 1) Q.zero in
  for i = 0 to m - 1 do
    prefix.(i + 1) <- Q.add prefix.(i) ew.(order.(i))
  done;
  let covered = Array.make n false in
  let mark_gain id =
    let e = Graph.edge g id in
    let gain =
      Q.add
        (if covered.(e.Graph.u) then Q.zero else weight.(e.Graph.u))
        (if covered.(e.Graph.v) then Q.zero else weight.(e.Graph.v))
    in
    covered.(e.Graph.u) <- true;
    covered.(e.Graph.v) <- true;
    gain
  in
  (* Greedy incumbent: k passes of best marginal gain, scanning in
     sorted order so the first maximum wins. *)
  let seed_picks = ref [] and seed_val = ref Q.zero in
  let chosen = Array.make m false in
  for _ = 1 to k do
    let best = ref (-1) and best_gain = ref Q.zero in
    for idx = 0 to m - 1 do
      let id = order.(idx) in
      if not chosen.(id) then begin
        let e = Graph.edge g id in
        let gain =
          Q.add
            (if covered.(e.Graph.u) then Q.zero else weight.(e.Graph.u))
            (if covered.(e.Graph.v) then Q.zero else weight.(e.Graph.v))
        in
        if !best < 0 || Q.( > ) gain !best_gain then begin
          best := id;
          best_gain := gain
        end
      end
    done;
    chosen.(!best) <- true;
    seed_val := Q.add !seed_val (mark_gain !best);
    seed_picks := !best :: !seed_picks
  done;
  Array.fill covered 0 n false;
  let best_picks = ref (List.rev !seed_picks) and best_val = ref !seed_val in
  let current = Array.make k 0 in
  let rec go pos taken value =
    if taken = k then begin
      if Q.( > ) value !best_val then begin
        best_val := value;
        best_picks := Array.to_list (Array.sub current 0 k)
      end
    end
    else if m - pos >= k - taken then begin
      let bound = Q.add value (Q.sub prefix.(pos + (k - taken)) prefix.(pos)) in
      if Q.( > ) bound !best_val then begin
        let id = order.(pos) in
        let e = Graph.edge g id in
        let u = e.Graph.u and v = e.Graph.v in
        let fresh_u = not covered.(u) and fresh_v = not covered.(v) in
        let gain =
          Q.add
            (if fresh_u then weight.(u) else Q.zero)
            (if fresh_v then weight.(v) else Q.zero)
        in
        current.(taken) <- id;
        if fresh_u then covered.(u) <- true;
        if fresh_v then covered.(v) <- true;
        go (pos + 1) (taken + 1) (Q.add value gain);
        if fresh_u then covered.(u) <- false;
        if fresh_v then covered.(v) <- false;
        go (pos + 1) taken value
      end
    end
  in
  go 0 0 Q.zero;
  Tuple.of_list g !best_picks

(* Greedy max-coverage response to integer vertex loads: k passes
   picking the edge with the best marginal covered load; shared by the
   sim loops (Fictitious keeps its historical error prefix via [err]).
   [coverage_tie_break] additionally prefers edges covering more fresh
   vertices on equal gain — the tie-break best-response dynamics need. *)
let greedy_edges ?(err = "Tuple_game.greedy_response")
    ?(coverage_tie_break = false) g k (load : int array) =
  let m = Graph.m g in
  if k < 1 || k > m then
    invalid_arg (Printf.sprintf "%s: k = %d outside [1, m = %d]" err k m);
  let chosen = Array.make m false in
  let covered = Array.make (Graph.n g) false in
  let picks = ref [] in
  for _ = 1 to k do
    let best = ref (-1) and best_gain = ref (-1, -1) in
    for id = 0 to m - 1 do
      if not chosen.(id) then begin
        let e = Graph.edge g id in
        let catch_gain =
          (if covered.(e.Graph.u) then 0 else load.(e.Graph.u))
          + if covered.(e.Graph.v) then 0 else load.(e.Graph.v)
        in
        let cover_gain =
          if not coverage_tie_break then 0
          else
            (if covered.(e.Graph.u) then 0 else 1)
            + if covered.(e.Graph.v) then 0 else 1
        in
        if (catch_gain, cover_gain) > !best_gain then begin
          best_gain := (catch_gain, cover_gain);
          best := id
        end
      end
    done;
    (* Guard: if no pick beat the sentinel (possible when a caller hands
       in degenerate, e.g. negative, loads), fall back to the lowest-id
       remaining edge instead of indexing with -1.  The k <= m guard
       above ensures a remaining edge exists. *)
    let pick =
      if !best >= 0 then !best
      else begin
        let id = ref 0 in
        while chosen.(!id) do incr id done;
        !id
      end
    in
    chosen.(pick) <- true;
    let e = Graph.edge g pick in
    covered.(e.Graph.u) <- true;
    covered.(e.Graph.v) <- true;
    picks := pick :: !picks
  done;
  Tuple.of_list g !picks

let greedy_response inst ~load =
  greedy_edges (Model.graph inst) (Model.k inst) load

let greedy_coverage_response inst ~load =
  greedy_edges ~coverage_tie_break:true (Model.graph inst) (Model.k inst) load

(* The workload greedy policy: the k globally hottest edges by endpoint
   attack counts (not marginal gain — historical policy behavior). *)
let greedy_by_counts inst ~counts =
  let g = Model.graph inst in
  let score id =
    let e = Graph.edge g id in
    counts.(e.Graph.u) + counts.(e.Graph.v)
  in
  let ids = Array.init (Graph.m g) Fun.id in
  Array.sort (fun a b -> compare (score b) (score a)) ids;
  Tuple.of_list g (Array.to_list (Array.sub ids 0 (Model.k inst)))

let random_strategy inst rng =
  let g = Model.graph inst in
  let ids = Array.init (Graph.m g) Fun.id in
  let sample =
    Prng.Rng.sample_without_replacement rng ~count:(Model.k inst) ids
  in
  Tuple.of_list g (Array.to_list sample)

let round_robin inst ~round =
  let g = Model.graph inst in
  let m = Graph.m g and k = Model.k inst in
  let start = round * k mod m in
  Tuple.of_list g (List.init k (fun i -> (start + i) mod m))

let scan_slots inst = Graph.m (Model.graph inst)
let scan_slot_ids _inst t = Tuple.to_list t
