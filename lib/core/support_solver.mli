(** Computing equilibrium probabilities from supports alone.

    The paper's equilibria carry uniform distributions by construction;
    this module answers the more general question: *given* a candidate
    attacker support S (shared by all ν symmetric attackers) and defender
    support T, do probability weights exist making the pair a Nash
    equilibrium?  The indifference conditions of Theorem 3.4 are linear
    and decouple —

    - defender weights p must equalize Hit(v) across S (|S|−1 equations
      plus normalization, unknowns indexed by T);
    - the attackers' common strategy σ must equalize m_s(t) across T
      (|T|−1 equations plus normalization, unknowns indexed by S)

    — so each side is an exact linear solve ({!Lp.Gauss}).  If both
    systems have a unique solution with positive weights, the resulting
    profile is checked against the full best-response conditions
    ({!Verify}).  Underdetermined systems are reported as [`Ambiguous]
    rather than guessed at.

    With support enumeration on top ({!search}) this is a complete solver
    for symmetric equilibria of small instances — it finds non-uniform
    equilibria the paper's constructions cannot produce. *)

open Netgraph

type failure =
  [ `Ambiguous  (** indifference system underdetermined *)
  | `Inconsistent  (** no weights equalize the payoffs *)
  | `Nonpositive  (** unique weights exist but are not all > 0 *)
  | `Not_equilibrium of string  (** weights found but a deviation beats them *) ]

val failure_to_string : failure -> string

(** [solve model ~vp_support ~tp_support] attempts the construction.
    The defender side of the best-response check enumerates C(m,k)
    tuples, guarded by [limit] (default 2_000_000); [~naive:true] runs
    that check on the support-rescanning oracle instead of the
    {!Payoff_kernel} tables.
    @raise Invalid_argument on empty supports or out-of-range members. *)
val solve :
  ?limit:int ->
  ?naive:bool ->
  Model.t ->
  vp_support:Graph.vertex list ->
  tp_support:Tuple.t list ->
  (Profile.mixed, failure) result

(** Exhaustive search over supports for symmetric equilibria: every
    non-empty vertex subset S paired with every equal-cardinality
    defender support drawn from [candidate_tuples] (equal cardinality is
    what makes both indifference systems square, hence decidable by
    {!solve}).  Returns the verified equilibria found, one per support
    pair.  Exponential; guarded to [n ≤ 8] and
    [|candidate_tuples| ≤ 10]. @raise Invalid_argument beyond the
    guards. *)
val search :
  ?limit:int ->
  ?naive:bool ->
  Model.t ->
  candidate_tuples:Tuple.t list ->
  Profile.mixed list
