open Netgraph
module Q = Exact.Q
module Finite = Dist.Finite

type pure = {
  vp_choices : Graph.vertex array;
  tp_choice : Tuple.t;
}

type mixed = {
  model : Model.t;
  vp : Finite.t array;
  tp : (Tuple.t * Q.t) list;  (* positive probs, canonical tuples, sums to 1 *)
  kernel : Payoff_kernel.t;  (* exact hit/load tables, kept in sync *)
}

let check_vertex g v =
  if v < 0 || v >= Graph.n g then
    invalid_arg (Printf.sprintf "Profile: vertex %d out of range" v)

let check_tuple model t =
  if Tuple.size t <> Model.k model then
    invalid_arg
      (Printf.sprintf "Profile: tuple size %d, expected k = %d" (Tuple.size t)
         (Model.k model))

let make_pure model ~vp_choices ~tp_choice =
  if List.length vp_choices <> Model.nu model then
    invalid_arg "Profile.make_pure: wrong number of vertex-player choices";
  List.iter (check_vertex (Model.graph model)) vp_choices;
  check_tuple model tp_choice;
  { vp_choices = Array.of_list vp_choices; tp_choice }

let check_tp model tp =
  if tp = [] then invalid_arg "Profile.make_mixed: empty tuple-player strategy";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (t, p) ->
      check_tuple model t;
      if Q.sign p <= 0 then
        invalid_arg "Profile.make_mixed: non-positive tuple probability";
      if Hashtbl.mem seen (Tuple.to_list t) then
        invalid_arg "Profile.make_mixed: duplicate tuple in support";
      Hashtbl.add seen (Tuple.to_list t) ())
    tp;
  let total = Q.sum (List.map snd tp) in
  if not (Q.equal total Q.one) then
    invalid_arg
      (Printf.sprintf "Profile.make_mixed: tuple probabilities sum to %s"
         (Q.to_string total))

let make_mixed model ~vp ~tp =
  if List.length vp <> Model.nu model then
    invalid_arg "Profile.make_mixed: wrong number of vertex-player strategies";
  List.iter
    (fun d -> List.iter (check_vertex (Model.graph model)) (Finite.support d))
    vp;
  check_tp model tp;
  let vp = Array.of_list vp in
  { model; vp; tp; kernel = Payoff_kernel.make model ~vp ~tp }

let of_pure model { vp_choices; tp_choice } =
  make_mixed model
    ~vp:(Array.to_list (Array.map Finite.point vp_choices))
    ~tp:[ (tp_choice, Q.one) ]

let uniform model ~vp_support ~tp_support =
  let vp_dist = Finite.uniform vp_support in
  let count = List.length tp_support in
  if count = 0 then invalid_arg "Profile.uniform: empty tuple support";
  let p = Q.make 1 count in
  make_mixed model
    ~vp:(List.init (Model.nu model) (fun _ -> vp_dist))
    ~tp:(List.map (fun t -> (t, p)) tp_support)

let model m = m.model
let kernel m = m.kernel

let vp_strategy m i =
  if i < 0 || i >= Array.length m.vp then
    invalid_arg "Profile.vp_strategy: player index out of range";
  m.vp.(i)

let vp_strategies m = Array.copy m.vp
let tp_strategy m = m.tp
let vp_support m i = Finite.support (vp_strategy m i)

let vp_support_union m =
  Array.to_list m.vp |> List.concat_map Finite.support |> List.sort_uniq compare

let tp_support m = List.map fst m.tp
let tp_support_edges m = Tuple.edge_union (tp_support m)

let tuples_hitting m v =
  let g = Model.graph m.model in
  List.filter (fun (t, _) -> Tuple.covers g t v) m.tp

(* The naive recomputations below re-scan the relevant support on every
   query; they are the correctness oracle for the kernel tables (the
   property tests assert exact Q-equality between the two paths).  The
   counter pairs with kernel.builds/kernel.*_patches: their ratio in a
   sweep's metrics shows how much rescanning the kernel tables avoid. *)

let c_naive_rescans = Obs.counter "kernel.naive_rescans"

let naive_hit_prob m v =
  Obs.incr c_naive_rescans;
  Q.sum (List.map snd (tuples_hitting m v))

let naive_expected_load m v =
  Obs.incr c_naive_rescans;
  Array.fold_left (fun acc d -> Q.add acc (Finite.prob d v)) Q.zero m.vp

let hit_prob ?(naive = false) m v =
  if naive then naive_hit_prob m v else Payoff_kernel.hit_prob m.kernel v

let expected_load ?(naive = false) m v =
  if naive then naive_expected_load m v
  else Payoff_kernel.expected_load m.kernel v

let expected_load_edge ?(naive = false) m id =
  if naive then
    let e = Graph.edge (Model.graph m.model) id in
    Q.add (naive_expected_load m e.Graph.u) (naive_expected_load m e.Graph.v)
  else Payoff_kernel.expected_load_edge m.kernel id

let expected_load_tuple ?(naive = false) m t =
  if naive then
    let g = Model.graph m.model in
    Q.sum (List.map (naive_expected_load m) (Tuple.vertices g t))
  else Payoff_kernel.expected_load_tuple m.kernel t

let replace_vp m i d =
  List.iter (check_vertex (Model.graph m.model)) (Finite.support d);
  if i < 0 || i >= Array.length m.vp then
    invalid_arg "Profile.replace_vp: player index out of range";
  let kernel = Payoff_kernel.replace_vp m.kernel ~old_d:m.vp.(i) ~new_d:d in
  let vp = Array.copy m.vp in
  vp.(i) <- d;
  { m with vp; kernel }

let replace_tp m tp =
  check_tp m.model tp;
  { m with tp; kernel = Payoff_kernel.replace_tp m.kernel ~tp }

let is_pure m =
  Array.for_all Finite.is_pure m.vp && List.length m.tp = 1

let pp fmt m =
  Format.fprintf fmt "@[<v 2>profile %a:@," Model.pp m.model;
  Array.iteri (fun i d -> Format.fprintf fmt "vp%d: %a@," i Finite.pp d) m.vp;
  Format.fprintf fmt "tp:";
  List.iter
    (fun (t, p) -> Format.fprintf fmt "@ %a:%s" Tuple.pp t (Q.to_string p))
    m.tp;
  Format.fprintf fmt "@]"
