(* Mixed/pure configurations of the tuple game: the generic engine's
   Profile pinned to Tuple_game, plus the tuple-specific conveniences
   the historical interface exposed. *)

module Q = Exact.Q

include Tuple_instance.Engine.Profile

let model = instance
let expected_load_tuple = expected_load_strategy
let tp_support_edges m = Tuple.edge_union (tp_support m)
