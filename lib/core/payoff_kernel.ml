open Netgraph
module Q = Exact.Q
module Finite = Dist.Finite

type t = {
  model : Model.t;
  hit : Q.t array;
  load : Q.t array;
  edge_load : Q.t array;
}

(* The patch-vs-rebuild economics this kernel exists for, as counters:
   how many full builds, how many O(deg) patches, and how many cells
   each copy-on-write patch actually duplicated.  Profile's naive_*
   rescans count on the other side (kernel.naive_rescans), so a sweep's
   metrics expose the ratio the incremental design is betting on. *)
let c_builds = Obs.counter "kernel.builds"
let c_vp_patches = Obs.counter "kernel.vp_patches"
let c_tp_patches = Obs.counter "kernel.tp_patches"
let c_cow_cells = Obs.counter "kernel.cow_cells"

let vertex_incidence_sums g weights =
  if Array.length weights <> Graph.m g then
    invalid_arg "Payoff_kernel.vertex_incidence_sums: need one weight per edge";
  Array.init (Graph.n g) (fun v ->
      Array.fold_left
        (fun acc id -> Q.add acc weights.(id))
        Q.zero (Graph.incident_edges g v))

let hit_table g tp =
  let hit = Array.make (Graph.n g) Q.zero in
  List.iter
    (fun (t, p) ->
      List.iter (fun v -> hit.(v) <- Q.add hit.(v) p) (Tuple.vertices g t))
    tp;
  hit

let load_table g vp =
  let load = Array.make (Graph.n g) Q.zero in
  Array.iter
    (fun d -> Finite.iter d ~f:(fun v p -> load.(v) <- Q.add load.(v) p))
    vp;
  load

let weighted_loads model ~weights ~vp =
  let g = Model.graph model in
  if Array.length weights <> Array.length vp then
    invalid_arg "Payoff_kernel.weighted_loads: need one weight per player";
  let load = Array.make (Graph.n g) Q.zero in
  Array.iteri
    (fun i d ->
      Finite.iter d ~f:(fun v p ->
          load.(v) <- Q.add load.(v) (Q.mul weights.(i) p)))
    vp;
  load

let edge_load_table g load =
  Array.init (Graph.m g) (fun id ->
      let e = Graph.edge g id in
      Q.add load.(e.Graph.u) load.(e.Graph.v))

let make model ~vp ~tp =
  Obs.incr c_builds;
  let g = Model.graph model in
  let load = load_table g vp in
  { model; hit = hit_table g tp; load; edge_load = edge_load_table g load }

let model k = k.model
let hit_prob k v = k.hit.(v)
let expected_load k v = k.load.(v)
let expected_load_edge k id = k.edge_load.(id)

let expected_load_tuple k t =
  let g = Model.graph k.model in
  List.fold_left (fun acc v -> Q.add acc k.load.(v)) Q.zero (Tuple.vertices g t)

let hit_table_copy k = Array.copy k.hit
let load_table_copy k = Array.copy k.load
let edge_load_table_copy k = Array.copy k.edge_load

let replace_vp k ~old_d ~new_d =
  Obs.incr c_vp_patches;
  Obs.add c_cow_cells (Array.length k.load + Array.length k.edge_load);
  let g = Model.graph k.model in
  let load = Array.copy k.load in
  let edge_load = Array.copy k.edge_load in
  let shift v delta =
    load.(v) <- Q.add load.(v) delta;
    Array.iter
      (fun id -> edge_load.(id) <- Q.add edge_load.(id) delta)
      (Graph.incident_edges g v)
  in
  Finite.iter old_d ~f:(fun v p -> shift v (Q.neg p));
  Finite.iter new_d ~f:(fun v p -> shift v p);
  { k with load; edge_load }

let replace_tp k ~tp =
  Obs.incr c_tp_patches;
  { k with hit = hit_table (Model.graph k.model) tp }
