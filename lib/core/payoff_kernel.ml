open Netgraph
module Q = Exact.Q
module Finite = Dist.Finite

(* The generic engine owns the tables and the incremental patches; this
   wrapper pins it to the tuple game and keeps the historical names. *)
include Tuple_instance.Engine.Kernel

let model = instance
let expected_load_tuple = expected_load_strategy

(* Tuple-agnostic extras that live outside the per-game engine: the
   primitives behind Minimax's fractional schedules and Weighted's
   damage-weighted loads. *)

let vertex_incidence_sums g weights =
  if Array.length weights <> Graph.m g then
    invalid_arg "Payoff_kernel.vertex_incidence_sums: need one weight per edge";
  Array.init (Graph.n g) (fun v ->
      Graph.fold_incident g v ~init:Q.zero ~f:(fun acc _ id ->
          Q.add acc weights.(id)))

let weighted_loads model ~weights ~vp =
  let g = Model.graph model in
  if Array.length weights <> Array.length vp then
    invalid_arg "Payoff_kernel.weighted_loads: need one weight per player";
  let load = Array.make (Graph.n g) Q.zero in
  Array.iteri
    (fun i d ->
      Finite.iter d ~f:(fun v p ->
          load.(v) <- Q.add load.(v) (Q.mul weights.(i) p)))
    vp;
  load
