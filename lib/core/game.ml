(* The GAME signature: everything the exact engine (Game_engine) and the
   simulation loops (Sim.Game_sim) need to know about one defender
   variant.  See game.mli for the contract each hook promises. *)

open Netgraph
module Q = Exact.Q

module type S = sig
  val name : string

  type instance

  module Strategy : sig
    type t

    val compare : t -> t -> int
    val equal : t -> t -> bool
    val pp : Format.formatter -> t -> unit
    val to_ints : t -> int list
  end

  val graph : instance -> Graph.t
  val nu : instance -> int
  val params : instance -> (string * int) list
  val pp_instance : Format.formatter -> instance -> unit
  val validate : instance -> Strategy.t -> unit
  val strategy_of_ints : instance -> int list -> Strategy.t
  val covered : instance -> Strategy.t -> Graph.vertex list
  val covers : instance -> Strategy.t -> Graph.vertex -> bool
  val fold_strategies : instance -> init:'a -> f:('a -> Strategy.t -> 'a) -> 'a
  val space_size : instance -> Q.t
  val space_size_within : instance -> limit:int -> int option

  val value_upper_bound :
    instance ->
    load:(Graph.vertex -> Q.t) ->
    edge_load:(Graph.edge_id -> Q.t) ->
    Q.t

  val best_response_weighted : instance -> weight:Q.t array -> Strategy.t
  val greedy_response : instance -> load:int array -> Strategy.t
  val greedy_coverage_response : instance -> load:int array -> Strategy.t
  val greedy_by_counts : instance -> counts:int array -> Strategy.t
  val random_strategy : instance -> Prng.Rng.t -> Strategy.t
  val round_robin : instance -> round:int -> Strategy.t
  val scan_slots : instance -> int
  val scan_slot_ids : instance -> Strategy.t -> int list
end
