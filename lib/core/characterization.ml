open Netgraph
module Q = Exact.Q

type report = {
  cond1_edge_cover : bool;
  cond1_vertex_cover : bool;
  cond2a_uniform_minimal_hit : bool;
  cond2b_tp_probability_sums : bool;
  cond3a_support_loads : Verify.verdict;
  cond3b_total_load : bool;
}

let verdict r =
  let fail name = Verify.Refuted (Printf.sprintf "condition %s fails" name) in
  if not r.cond1_edge_cover then fail "1 (edge cover)"
  else if not r.cond1_vertex_cover then fail "1 (vertex cover)"
  else if not r.cond2a_uniform_minimal_hit then fail "2a"
  else if not r.cond2b_tp_probability_sums then fail "2b"
  else if not r.cond3b_total_load then fail "3b"
  else r.cond3a_support_loads

let check ?naive mode m =
  let g = Model.graph (Profile.model m) in
  let support_edges = Profile.tp_support_edges m in
  let cond1_edge_cover = Matching.Checks.is_edge_cover g support_edges in
  let cond1_vertex_cover =
    let sub, _ = Graph.edge_subgraph g support_edges in
    Matching.Checks.is_vertex_cover sub (Profile.vp_support_union m)
  in
  let cond2a_uniform_minimal_hit =
    match Profile.vp_support_union m with
    | [] -> false
    | support ->
        let hits = List.map (Profile.hit_prob ?naive m) support in
        let h0 = List.hd hits in
        List.for_all (Q.equal h0) hits
        &&
        let global_min =
          Q.min_list
            (List.init (Graph.n g) (fun v -> Profile.hit_prob ?naive m v))
        in
        Q.equal h0 global_min
  in
  let cond2b_tp_probability_sums =
    Q.equal (Q.sum (List.map snd (Profile.tp_strategy m))) Q.one
  in
  let cond3a_support_loads = Verify.tp_side ?naive mode m in
  let cond3b_total_load =
    let covered = Tuple.vertex_union g (Profile.tp_support m) in
    let total = Q.sum (List.map (Profile.expected_load ?naive m) covered) in
    Q.equal total (Q.of_int (Model.nu (Profile.model m)))
  in
  {
    cond1_edge_cover;
    cond1_vertex_cover;
    cond2a_uniform_minimal_hit;
    cond2b_tp_probability_sums;
    cond3a_support_loads;
    cond3b_total_load;
  }

let holds ?naive mode m =
  Verify.verdict_is_confirmed (verdict (check ?naive mode m))

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>1.edge-cover: %b@,1.vertex-cover: %b@,2a.uniform-min-hit: %b@,\
     2b.prob-sums: %b@,3a.support-loads: %s@,3b.total-load: %b@]"
    r.cond1_edge_cover r.cond1_vertex_cover r.cond2a_uniform_minimal_hit
    r.cond2b_tp_probability_sums
    (Verify.verdict_to_string r.cond3a_support_loads)
    r.cond3b_total_load
