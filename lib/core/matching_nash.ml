open Netgraph

let require_edge_model m =
  if Model.k (Profile.model m) <> 1 then
    invalid_arg "Matching_nash: profile must belong to the Edge model (k = 1)"

let incident_support_count g support_edges v =
  List.length
    (List.filter
       (fun id ->
         let e = Graph.edge g id in
         e.Graph.u = v || e.Graph.v = v)
       support_edges)

let is_matching_configuration m =
  require_edge_model m;
  let g = Model.graph (Profile.model m) in
  let vp = Profile.vp_support_union m in
  let support_edges = Profile.tp_support_edges m in
  Matching.Checks.is_independent_set g vp
  && List.for_all (fun v -> incident_support_count g support_edges v = 1) vp

let lemma21_cover_conditions m =
  let g = Model.graph (Profile.model m) in
  let support_edges = Profile.tp_support_edges m in
  Matching.Checks.is_edge_cover g support_edges
  &&
  let sub, _ = Graph.edge_subgraph g support_edges in
  Matching.Checks.is_vertex_cover sub (Profile.vp_support_union m)

type partition = { is : Graph.vertex list; vc : Graph.vertex list }

let partition_of_is g is =
  let is = List.sort_uniq compare is in
  if not (Matching.Checks.is_independent_set g is) then
    invalid_arg "Matching_nash.partition_of_is: set is not independent";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg "Matching_nash.partition_of_is: vertex out of range")
    is;
  let in_is = Array.make (Graph.n g) false in
  List.iter (fun v -> in_is.(v) <- true) is;
  let vc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not in_is.(v) then vc := v :: !vc
  done;
  { is; vc = !vc }

let partition_admits g { is; vc } =
  is <> []
  && Matching.Checks.is_independent_set g is
  && (Matching.Hall.check g ~vc).Matching.Hall.expander

let find_partition g =
  if Bipartite.is_bipartite g then begin
    let koenig = Matching.Koenig.solve g in
    let p =
      {
        is = koenig.Matching.Koenig.independent_set;
        vc = koenig.Matching.Koenig.vertex_cover;
      }
    in
    if partition_admits g p then Some p else None
  end
  else if Graph.n g <= 20 then
    (* General graphs: try every maximal independent set.  Maximal ones
       suffice: if (IS, VC) is admissible and IS' ⊇ IS is a maximal
       independent superset, the matching saturating VC restricts to one
       saturating VC' = V \ IS' ⊆ VC with partners in IS ⊆ IS', so
       (IS', VC') is admissible too. *)
    Matching.Independent.all_maximal g
    |> List.map (partition_of_is g)
    |> List.find_opt (partition_admits g)
  else None

let all_partitions g =
  Matching.Independent.all_maximal g
  |> List.map (partition_of_is g)
  |> List.filter (partition_admits g)
  |> List.sort (fun a b -> compare (List.length a.is) (List.length b.is))

let extremal_partitions g =
  match all_partitions g with
  | [] -> None
  | first :: _ as all ->
      let last = List.nth all (List.length all - 1) in
      Some (first, last)

let support_edges g { is; vc } =
  if not (Matching.Checks.is_independent_set g is) then
    invalid_arg "Matching_nash.support_edges: IS not independent";
  if is = [] then Error "empty independent set"
  else
    match Matching.Hall.check g ~vc with
    | { Matching.Hall.expander = false; violating_set; _ } ->
        let witness =
          match violating_set with
          | Some vs -> String.concat "," (List.map string_of_int vs)
          | None -> "?"
        in
        Error
          (Printf.sprintf "graph is not a VC-expander; deficient set {%s}" witness)
    | { Matching.Hall.saturating_matching = Some matching; _ } ->
        (* f : IS -> VC.  Matched IS vertices keep their partner; the rest
           pick an arbitrary neighbour (always in VC by independence). *)
        let n = Graph.n g in
        let in_is = Array.make n false in
        List.iter (fun v -> in_is.(v) <- true) is;
        let assigned = Array.make n None in
        List.iter
          (fun id ->
            let e = Graph.edge g id in
            let is_side =
              if in_is.(e.Graph.u) then e.Graph.u else e.Graph.v
            in
            assigned.(is_side) <- Some id)
          matching;
        let edge_for v =
          match assigned.(v) with
          | Some id -> id
          | None ->
              let first = ref (-1) in
              Graph.iter_incident g v ~f:(fun _ id ->
                  if !first < 0 then first := id);
              assert (!first >= 0);
              !first
        in
        Ok (List.map edge_for is)
    | { Matching.Hall.saturating_matching = None; _ } -> assert false

let solve model partition =
  if Model.k model <> 1 then
    invalid_arg "Matching_nash.solve: model must have k = 1";
  let g = Model.graph model in
  match support_edges g partition with
  | Error _ as e -> e
  | Ok edges ->
      let tuples = List.map (fun id -> Tuple.of_list g [ id ]) edges in
      Ok (Profile.uniform model ~vp_support:partition.is ~tp_support:tuples)

let solve_auto model =
  let g = Model.graph model in
  match find_partition g with
  | None -> Error "no admissible (IS, VC) partition found"
  | Some p -> solve model p
