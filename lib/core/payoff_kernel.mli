(** Incremental exact-payoff kernel for the equilibrium hot loops.

    Every equilibrium routine (best responses, the Theorem 3.4
    characterization, NE verification, fictitious play) bottoms out in the
    quantities [Hit(v)], [m_s(v)] and [m_s(e)] of a mixed configuration.
    Computed naively these re-scan the defender's support (respectively
    the attackers' strategies) on every query, so a sweep over all
    vertices costs O(n · support · k).  The kernel precomputes three exact
    tables once per configuration —

    - [hit]: per-vertex hit probability P(Hit(v)),
    - [load]: per-vertex expected attacker load m_s(v),
    - [edge_load]: per-edge load m_s(e) = m_s(u) + m_s(v),

    — making every query O(1), and patches them {e incrementally} on
    one-player deviations instead of rebuilding:

    - {!replace_vp} touches only the supports of the outgoing and incoming
      distributions (plus their incident edges); the hit table is shared
      unchanged (it depends only on the defender);
    - {!replace_tp} rebuilds only the hit table; both load tables are
      shared unchanged (they depend only on the attackers).

    All arithmetic is exact ({!Exact.Q}), so kernel tables are {e equal},
    not approximately equal, to the naive recomputation; the property
    tests assert this with [Q.equal], no tolerance.  {!Profile} embeds a
    kernel in every mixed configuration and keeps the naive recomputation
    alive behind a [~naive:true] flag as the correctness oracle. *)

open Netgraph
module Q = Exact.Q

(** The tuple-game application of the generic engine's kernel
    ({!Game_engine.Make}): same tables, same incremental patches, for
    any {!Game.S} instance. *)
type t = Tuple_instance.Engine.Kernel.t

(** Build the tables from scratch: O(n + m + Σ_i |supp vp_i| · deg +
    Σ_t |V(t)|).  The inputs are assumed validated (by
    [Profile.make_mixed]). *)
val make : Model.t -> vp:Dist.Finite.t array -> tp:(Tuple.t * Q.t) list -> t

val model : t -> Model.t

(** P(Hit(v)), O(1). @raise Invalid_argument if [v] is out of range. *)
val hit_prob : t -> Graph.vertex -> Q.t

(** m_s(v), O(1). @raise Invalid_argument if [v] is out of range. *)
val expected_load : t -> Graph.vertex -> Q.t

(** m_s(e), O(1). @raise Invalid_argument if the id is out of range. *)
val expected_load_edge : t -> Graph.edge_id -> Q.t

(** m_s(t) by summing the load table over V(t): O(k), independent of ν
    and of the support sizes. *)
val expected_load_tuple : t -> Tuple.t -> Q.t

(** [replace_vp k ~old_d ~new_d]: the kernel after one vertex player moves
    from [old_d] to [new_d].  Cost O(n) for the copy plus
    O((|supp old_d| + |supp new_d|) · max-degree) for the patch; the hit
    table is shared with [k]. *)
val replace_vp : t -> old_d:Dist.Finite.t -> new_d:Dist.Finite.t -> t

(** [replace_tp k ~tp]: the kernel after the defender switches support;
    rebuilds the hit table only, sharing both load tables with [k]. *)
val replace_tp : t -> tp:(Tuple.t * Q.t) list -> t

(** Defensive copies of the tables, for bulk comparisons in tests and
    benchmarks. *)
val hit_table_copy : t -> Q.t array

val load_table_copy : t -> Q.t array
val edge_load_table_copy : t -> Q.t array

(** [vertex_incidence_sums g w]: per-vertex sums Σ_{e ∋ v} w(e) of
    arbitrary per-edge weights — the primitive behind the hit floor of a
    fractional edge schedule ({!Minimax}). *)
val vertex_incidence_sums : Graph.t -> Q.t array -> Q.t array

(** [weighted_loads model ~weights ~vp]: per-vertex damage-weighted loads
    Σ_i w_i · P(vp_i = v), the table behind {!Weighted}'s hot loops. *)
val weighted_loads :
  Model.t -> weights:Q.t array -> vp:Dist.Finite.t array -> Q.t array
