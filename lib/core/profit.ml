(* Exact individual profits: the engine's Profit pinned to the tuple
   game, with the defender's payoff under its historical name. *)

module Q = Exact.Q

include Tuple_instance.Engine.Profit

let tp_payoff_of_tuple = tp_payoff_of_strategy
