module Q = Exact.Q

let pure_vp model profile i =
  let g = Model.graph model in
  if i < 0 || i >= Array.length profile.Profile.vp_choices then
    invalid_arg "Profit.pure_vp: player index out of range";
  if Tuple.covers g profile.Profile.tp_choice profile.Profile.vp_choices.(i) then 0
  else 1

let pure_tp model profile =
  let g = Model.graph model in
  Array.fold_left
    (fun acc v -> if Tuple.covers g profile.Profile.tp_choice v then acc + 1 else acc)
    0 profile.Profile.vp_choices

let vp_payoff_of_vertex ?naive m v = Q.sub Q.one (Profile.hit_prob ?naive m v)

let tp_payoff_of_tuple ?naive m t = Profile.expected_load_tuple ?naive m t

let expected_vp ?naive m i =
  Dist.Finite.expect (Profile.vp_strategy m i) ~f:(fun v ->
      vp_payoff_of_vertex ?naive m v)

let expected_tp ?naive m =
  Q.sum
    (List.map
       (fun (t, p) -> Q.mul p (Profile.expected_load_tuple ?naive m t))
       (Profile.tp_strategy m))
