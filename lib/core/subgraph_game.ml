(* The connected-subgraph defender (Akrida et al., arXiv:1906.02774) as
   a GAME instance: ν vertex players and one defender choosing a
   λ-vertex connected induced subgraph.  An attacker is caught iff it
   sits on one of the λ chosen vertices, so [covered] is the strategy
   itself; the price of defense on this variant is at least n/λ, with
   equality on vertex-transitive families (cycles), which experiment
   family S reproduces. *)

open Netgraph
module Q = Exact.Q

let name = "subgraph"

type instance = { graph : Graph.t; nu : int; lambda : int }

let make ~graph ~nu ~lambda =
  if not (Props.is_valid_instance graph) then
    invalid_arg
      "Subgraph_game.make: instance graph must be connected, have no \
       isolated vertices, and at least two vertices";
  if nu < 1 then
    invalid_arg "Subgraph_game.make: need at least one vertex player";
  if lambda < 1 || lambda > Graph.n graph then
    invalid_arg
      (Printf.sprintf "Subgraph_game.make: lambda = %d outside [1, n = %d]"
         lambda (Graph.n graph));
  { graph; nu; lambda }

module Strategy = struct
  type t = Graph.vertex array
  (* sorted, distinct, inducing a connected subgraph *)

  let compare = Stdlib.compare
  let equal a b = Stdlib.compare a b = 0

  let pp fmt t =
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map string_of_int (Array.to_list t)))

  let to_ints = Array.to_list
end

let graph inst = inst.graph
let nu inst = inst.nu
let lambda inst = inst.lambda
let params inst = [ ("nu", inst.nu); ("lambda", inst.lambda) ]

let pp_instance fmt inst =
  Format.fprintf fmt "Sigma_%d(G[n=%d,m=%d], nu=%d)" inst.lambda
    (Graph.n inst.graph) (Graph.m inst.graph) inst.nu

let of_list g vs =
  if vs = [] then invalid_arg "Subgraph_game: empty vertex set";
  let sorted = List.sort_uniq compare vs in
  if List.length sorted <> List.length vs then
    invalid_arg "Subgraph_game: duplicate vertex in subgraph";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then
        invalid_arg
          (Printf.sprintf "Subgraph_game: vertex %d out of range" v))
    sorted;
  if not (Induced.is_connected_subset g sorted) then
    invalid_arg "Subgraph_game: vertex set does not induce a connected subgraph";
  Array.of_list sorted

let validate inst s =
  if Array.length s <> inst.lambda then
    invalid_arg
      (Printf.sprintf "Profile: subgraph size %d, expected lambda = %d"
         (Array.length s) inst.lambda);
  if not (Induced.is_connected_subset inst.graph (Array.to_list s)) then
    invalid_arg "Profile: defender subgraph not connected"

let strategy_of_ints inst ids = of_list inst.graph ids
let covered _inst s = Array.to_list s

let covers _inst s v =
  (* sorted array: binary search *)
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) = v then true
      else if s.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length s)

let fold_strategies inst ~init ~f =
  Induced.fold_connected_subsets inst.graph ~size:inst.lambda ~init
    ~f:(fun acc vs -> f acc (Array.of_list vs))

(* No closed form for the number of connected induced subgraphs; count
   by enumeration (exact at any magnitude, priced accordingly). *)
let space_size inst =
  fold_strategies inst ~init:Q.zero ~f:(fun acc _ -> Q.add acc Q.one)

let space_size_within inst ~limit =
  Induced.count_connected_subsets inst.graph ~size:inst.lambda ~limit

(* Certificate bound: the defender covers exactly lambda vertices, so no
   strategy beats the sum of the lambda largest vertex loads. *)
let value_upper_bound inst ~load ~edge_load:_ =
  let loads =
    List.init (Graph.n inst.graph) load |> List.sort (fun a b -> Q.compare b a)
  in
  let rec take i acc = function
    | [] -> acc
    | _ when i = inst.lambda -> acc
    | l :: rest -> take (i + 1) (Q.add acc l) rest
  in
  take 0 Q.zero loads

(* Exact weighted best response by enumeration: connectivity couples the
   choices, so unlike the tuple game there is no useful prefix bound —
   walk every connected λ-subset (the same reverse-search enumeration
   [fold_strategies] uses) and keep the first maximum.  Exactness is
   what the double-oracle loop's certificate rests on; the enumeration
   price is the price of the subgraph variant at this λ. *)
let best_response_weighted inst ~weight =
  if Array.length weight <> Graph.n inst.graph then
    invalid_arg "Subgraph_game.best_response_weighted: |weight| <> n";
  let value s =
    Array.fold_left (fun acc v -> Q.add acc weight.(v)) Q.zero s
  in
  let best =
    fold_strategies inst ~init:None ~f:(fun acc s ->
        let v = value s in
        match acc with
        | Some (_, bv) when Q.( >= ) bv v -> acc
        | _ -> Some (s, v))
  in
  match best with
  | Some (s, _) -> s
  | None -> assert false (* instance graphs are connected and λ <= n *)

(* [v] touches the current set iff some CSR-row neighbor is marked;
   scanned without copying the row, bailing at the first hit. *)
let touches_set g in_set v =
  try
    Graph.iter_neighbors g v ~f:(fun u -> if in_set.(u) then raise Exit);
    false
  with Exit -> true

(* Greedy connected growth: start from [start] and repeatedly absorb
   the frontier vertex (adjacent to the current set) with the best
   score, lowest id on ties.  The instance graph is connected, so the
   frontier stays non-empty until the set covers everything. *)
let grow inst ~score ~start =
  let g = inst.graph in
  let n = Graph.n g in
  let in_set = Array.make n false in
  in_set.(start) <- true;
  let members = ref [ start ] in
  for _ = 2 to inst.lambda do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if
        (not in_set.(v))
        && touches_set g in_set v
        && (!best < 0 || score v > score !best)
      then best := v
    done;
    in_set.(!best) <- true;
    members := !best :: !members
  done;
  Array.of_list (List.sort compare !members)

let argmax_vertex n score =
  let best = ref 0 in
  for v = 1 to n - 1 do
    if score v > score !best then best := v
  done;
  !best

let greedy_response inst ~load =
  let score v = load.(v) in
  grow inst ~score ~start:(argmax_vertex (Graph.n inst.graph) score)

(* Coverage is always exactly lambda vertices, so the coverage
   tie-break adds nothing here. *)
let greedy_coverage_response = greedy_response

let greedy_by_counts inst ~counts =
  let score v = counts.(v) in
  grow inst ~score ~start:(argmax_vertex (Graph.n inst.graph) score)

let random_strategy inst rng =
  let g = inst.graph in
  let n = Graph.n g in
  let in_set = Array.make n false in
  let start = Prng.Rng.int rng n in
  in_set.(start) <- true;
  let members = ref [ start ] in
  for _ = 2 to inst.lambda do
    let frontier = ref [] in
    for v = n - 1 downto 0 do
      if
        (not in_set.(v))
        && touches_set g in_set v
      then frontier := v :: !frontier
    done;
    let frontier = Array.of_list !frontier in
    let v = frontier.(Prng.Rng.int rng (Array.length frontier)) in
    in_set.(v) <- true;
    members := v :: !members
  done;
  Array.of_list (List.sort compare !members)

(* Deterministic rotation: anchor at [round mod n], then grow toward
   the lowest-id frontier vertices. *)
let round_robin inst ~round =
  let n = Graph.n inst.graph in
  grow inst ~score:(fun v -> -v) ~start:(round mod n)

let scan_slots inst = Graph.n inst.graph
let scan_slot_ids _inst s = Array.to_list s
