(** The GAME signature: one defender variant, abstracted.

    A game is a graph [G], ν attacker (vertex) players who each pick a
    vertex, and one defender whose pure-strategy space is game-specific
    (the paper's k-edge tuples; Akrida et al.'s λ-vertex connected
    subgraphs).  Everything downstream — the incremental exact-payoff
    kernel, best responses, equilibrium verification, profile I/O and
    the simulation loops — is a functor over this signature
    ({!Game_engine.Make}, [Sim.Game_sim.Make]).

    Payoffs derive entirely from {!S.covered}: an attacker on vertex [v]
    is caught by defender strategy [d] iff [v] is covered by [d], the
    attacker's exact payoff is [1 - P(Hit(v))] and the defender's is the
    expected number of attackers covered.  All probability mass lives in
    {!Exact.Q} — equilibrium checks are exact equalities, never float
    tolerances, and the kernel's incremental patches must agree with a
    naive support rescan to the bit. *)

open Netgraph

module type S = sig
  (** Wire/artifact tag ("tuple", "subgraph"): versioned into profile
      files, bench artifacts and the CLI's [--game] selector. *)
  val name : string

  (** One concrete game: graph, attacker count, and the defender's
      strategy-space parameters (k, λ, ...). *)
  type instance

  (** Defender pure strategies, with a canonical form: [compare] is a
      total order, [equal] agrees with it, and [to_ints] is an injective
      serialization (edge ids for tuples, vertex ids for subgraphs)
      consumed by [strategy_of_ints]. *)
  module Strategy : sig
    type t

    val compare : t -> t -> int
    val equal : t -> t -> bool
    val pp : Format.formatter -> t -> unit
    val to_ints : t -> int list
  end

  val graph : instance -> Graph.t
  val nu : instance -> int

  (** The instance's size parameters as ordered [(label, value)] pairs
      (e.g. [["nu", 3; "k", 2]]); profile files persist and re-validate
      them. *)
  val params : instance -> (string * int) list

  val pp_instance : Format.formatter -> instance -> unit

  (** @raise Invalid_argument when the strategy is not playable in this
      instance (wrong size, off-graph ids, disconnected subgraph...). *)
  val validate : instance -> Strategy.t -> unit

  (** Inverse of {!Strategy.to_ints}. @raise Invalid_argument on ids
      that denote no valid strategy. *)
  val strategy_of_ints : instance -> int list -> Strategy.t

  (** The vertices on which strategy [d] catches an attacker, sorted
      ascending without duplicates.  This is the single hook the exact
      payoff tables are built from: the kernel's per-vertex hit
      contribution of [d] is its membership here, and [d]'s load is the
      sum of attacker loads over exactly these vertices. *)
  val covered : instance -> Strategy.t -> Graph.vertex list

  (** [covers i d v] iff [v] is in [covered i d] (no list needed). *)
  val covers : instance -> Strategy.t -> Graph.vertex -> bool

  (** Enumerate the full pure-strategy space, each strategy exactly
      once, in a deterministic order. *)
  val fold_strategies : instance -> init:'a -> f:('a -> Strategy.t -> 'a) -> 'a

  (** Exact cardinality of the pure-strategy space (C(m,k) for tuples),
      at any magnitude. *)
  val space_size : instance -> Exact.Q.t

  (** [Some c] when the space has [c <= limit] strategies, else [None]:
      the guard every enumeration-based path checks before walking the
      space.  Must be exact — never a wrap-detecting heuristic. *)
  val space_size_within : instance -> limit:int -> int option

  (** A certificate-mode upper bound on the defender's best-response
      value against the given exact load tables (top-k edge loads for
      tuples, top-λ vertex loads for subgraphs).  Used by Verify's
      [Certificate] mode: support value = bound proves optimality
      without enumeration.  Loads are supplied as query functions so
      implementations probe only what they need — the naive-oracle
      paths count every probe. *)
  val value_upper_bound :
    instance ->
    load:(Graph.vertex -> Exact.Q.t) ->
    edge_load:(Graph.edge_id -> Exact.Q.t) ->
    Exact.Q.t

  (** An EXACT best response to nonnegative per-vertex weights: a pure
      strategy maximizing the total weight of its covered vertices,
      deterministically chosen (same instance and weights, same
      strategy).  [weight] has length [Graph.n (graph i)].  This is the
      defender-side oracle the double-oracle solver ([Solver]) column-
      generates with, so exactness is contractual: implementations may
      prune (branch-and-bound) but never approximate — a suboptimal
      answer silently corrupts the equilibrium certificate.
      @raise Invalid_argument on a weight vector of the wrong length. *)
  val best_response_weighted :
    instance -> weight:Exact.Q.t array -> Strategy.t

  (** Greedy heuristic response to integer attacker counts, for
      simulation loops on spaces too large to enumerate: maximize the
      marginal covered load. *)
  val greedy_response : instance -> load:int array -> Strategy.t

  (** As {!greedy_response}, but breaking zero-gain ties toward maximum
      vertex coverage (the tie-break best-response dynamics need for
      convergence). *)
  val greedy_coverage_response : instance -> load:int array -> Strategy.t

  (** The workload greedy policy's response to raw per-vertex attack
      counts (for tuples: the k edges with the hottest endpoint sums,
      chosen globally rather than by marginal gain — a deliberately
      different heuristic from {!greedy_response}). *)
  val greedy_by_counts : instance -> counts:int array -> Strategy.t

  (** A uniformly random pure strategy (workload baseline policy). *)
  val random_strategy : instance -> Prng.Rng.t -> Strategy.t

  (** Deterministic rotation through the resource set, one strategy per
      round (workload round-robin policy). *)
  val round_robin : instance -> round:int -> Strategy.t

  (** Slot count and per-strategy slot ids for empirical scan-frequency
      accounting (edges for tuples, vertices for subgraphs): playing a
      strategy increments each of its slots once. *)
  val scan_slots : instance -> int

  val scan_slot_ids : instance -> Strategy.t -> int list
end
