open Netgraph

type t = { graph : Graph.t; nu : int; k : int }

let make ~graph ~nu ~k =
  if not (Props.is_valid_instance graph) then
    invalid_arg
      "Model.make: instance graph must be connected, have no isolated \
       vertices, and at least two vertices";
  if nu < 1 then invalid_arg "Model.make: need at least one vertex player";
  if k < 1 || k > Graph.m graph then
    invalid_arg
      (Printf.sprintf "Model.make: k = %d outside [1, m = %d]" k (Graph.m graph));
  { graph; nu; k }

let edge_model t = { t with k = 1 }
let with_k t ~k = make ~graph:t.graph ~nu:t.nu ~k
let graph t = t.graph
let nu t = t.nu
let k t = t.k

module Q = Exact.Q

(* The true C(m, k) over the bignum tower — exact at any size.  The
   native-int projection below keeps the historical option interface for
   enumeration guards; the old wrap-detecting product could report None
   (and so refuse enumeration) for counts that actually fit, because an
   intermediate product overflowed before its exact division. *)
let tuple_space_size_exact t = Q.binomial (Graph.m t.graph) t.k

let tuple_space_size t =
  match Q.to_int_exn (tuple_space_size_exact t) with
  | c -> Some c
  | exception Q.Overflow -> None

let pp fmt t =
  Format.fprintf fmt "Pi_%d(G[n=%d,m=%d], nu=%d)" t.k (Graph.n t.graph)
    (Graph.m t.graph) t.nu
