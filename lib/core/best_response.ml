open Netgraph
module Q = Exact.Q

(* Best responses: the engine's generic sweeps pinned to the tuple game
   (vp scan, guarded tuple enumeration, certificate upper bound)... *)

include Tuple_instance.Engine.Best_response

let tp_best_tuple_exhaustive = tp_best_exhaustive

(* ... plus the tuple-specific greedy max-coverage baseline, counted
   separately from the exhaustive path (B15 gates on br.* counters). *)
let c_tp_greedy_sweeps = Obs.counter "br.tp_greedy_sweeps"

let tp_greedy_value ?naive m =
  Obs.incr c_tp_greedy_sweeps;
  let g = graph m in
  let k = Model.k (Profile.model m) in
  let chosen = Array.make (Graph.m g) false in
  let covered = Array.make (Graph.n g) false in
  let gain id =
    let e = Graph.edge g id in
    let value_of v =
      if covered.(v) then Q.zero else Profile.expected_load ?naive m v
    in
    Q.add (value_of e.Graph.u) (value_of e.Graph.v)
  in
  let total = ref Q.zero in
  for _ = 1 to k do
    let best = ref None in
    for id = 0 to Graph.m g - 1 do
      if not chosen.(id) then
        let value = gain id in
        match !best with
        | Some (_, v) when Q.( >= ) v value -> ()
        | _ -> best := Some (id, value)
    done;
    match !best with
    | None -> ()
    | Some (id, value) ->
        chosen.(id) <- true;
        let e = Graph.edge g id in
        covered.(e.Graph.u) <- true;
        covered.(e.Graph.v) <- true;
        total := Q.add !total value
  done;
  !total
