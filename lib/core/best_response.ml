open Netgraph
module Q = Exact.Q

let graph m = Model.graph (Profile.model m)

(* One count per full sweep over the vertex (resp. edge×k) space — the
   unit B7 times and B15 gates its observability overhead on. *)
let c_vp_sweeps = Obs.counter "br.vp_sweeps"
let c_tp_greedy_sweeps = Obs.counter "br.tp_greedy_sweeps"

let vp_best_vertex ?naive m =
  Obs.incr c_vp_sweeps;
  let g = graph m in
  let best = ref 0 and best_hit = ref (Profile.hit_prob ?naive m 0) in
  for v = 1 to Graph.n g - 1 do
    let h = Profile.hit_prob ?naive m v in
    if Q.( < ) h !best_hit then begin
      best := v;
      best_hit := h
    end
  done;
  !best

let vp_best_value ?naive m =
  Q.sub Q.one (Profile.hit_prob ?naive m (vp_best_vertex ?naive m))

let check_limit m limit =
  match Model.tuple_space_size (Profile.model m) with
  | Some c when c <= limit -> ()
  | _ -> invalid_arg "Best_response: tuple space too large for enumeration"

let tp_best_tuple_exhaustive ?(limit = 2_000_000) ?naive m =
  check_limit m limit;
  let g = graph m in
  let k = Model.k (Profile.model m) in
  let best = ref None in
  let _ =
    Tuple.fold_enumerate g ~k ~init:() ~f:(fun () t ->
        let value = Profile.expected_load_tuple ?naive m t in
        match !best with
        | Some (_, v) when Q.( >= ) v value -> ()
        | _ -> best := Some (t, value))
  in
  match !best with Some (t, _) -> t | None -> assert false

let tp_best_value_exhaustive ?limit ?naive m =
  Profile.expected_load_tuple ?naive m (tp_best_tuple_exhaustive ?limit ?naive m)

let tp_upper_bound ?naive m =
  let g = graph m in
  let k = Model.k (Profile.model m) in
  let loads =
    List.init (Graph.m g) (fun id -> Profile.expected_load_edge ?naive m id)
    |> List.sort (fun a b -> Q.compare b a)
  in
  let rec take i acc = function
    | [] -> acc
    | _ when i = k -> acc
    | l :: rest -> take (i + 1) (Q.add acc l) rest
  in
  take 0 Q.zero loads

let tp_greedy_value ?naive m =
  Obs.incr c_tp_greedy_sweeps;
  let g = graph m in
  let k = Model.k (Profile.model m) in
  let chosen = Array.make (Graph.m g) false in
  let covered = Array.make (Graph.n g) false in
  let gain id =
    let e = Graph.edge g id in
    let value_of v =
      if covered.(v) then Q.zero else Profile.expected_load ?naive m v
    in
    Q.add (value_of e.Graph.u) (value_of e.Graph.v)
  in
  let total = ref Q.zero in
  for _ = 1 to k do
    let best = ref None in
    for id = 0 to Graph.m g - 1 do
      if not chosen.(id) then
        let value = gain id in
        match !best with
        | Some (_, v) when Q.( >= ) v value -> ()
        | _ -> best := Some (id, value)
    done;
    match !best with
    | None -> ()
    | Some (id, value) ->
        chosen.(id) <- true;
        let e = Graph.edge g id in
        covered.(e.Graph.u) <- true;
        covered.(e.Graph.v) <- true;
        total := Q.add !total value
  done;
  !total
