(** The graph-theoretic characterization of mixed Nash equilibria
    (Theorem 3.4): a mixed configuration is an NE iff

    1. E(D(tp)) is an edge cover of G and D(VP) is a vertex cover of the
       graph obtained by E(D(tp));
    2. (a) hit probabilities are uniform over D(VP) and globally minimal,
       (b) the defender's probabilities sum to 1;
    3. (a) expected loads m_s(t) are uniform over D(tp) and globally
       maximal over E^k, (b) Σ_{v ∈ V(D(tp))} m_s(v) = ν.

    Condition 3(a)'s global maximality quantifies over C(m,k) tuples, so
    it inherits {!Verify.mode}. *)

type report = {
  cond1_edge_cover : bool;
  cond1_vertex_cover : bool;
  cond2a_uniform_minimal_hit : bool;
  cond2b_tp_probability_sums : bool;
  cond3a_support_loads : Verify.verdict;
  cond3b_total_load : bool;
}

(** Overall verdict implied by a report. *)
val verdict : report -> Verify.verdict

(** [~naive:true] answers the hit/load queries by support re-scan instead
    of the profile's {!Payoff_kernel} tables (correctness oracle). *)
val check : ?naive:bool -> Verify.mode -> Profile.mixed -> report

(** [holds mode m] = the characterization verdict is [Confirmed]. *)
val holds : ?naive:bool -> Verify.mode -> Profile.mixed -> bool

val pp_report : Format.formatter -> report -> unit
