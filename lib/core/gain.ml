module Q = Exact.Q

let defender_gain m = Profit.expected_tp m

let predicted_gain model ~is_size =
  if is_size < 1 then invalid_arg "Gain.predicted_gain: empty support";
  Q.make (Model.k model * Model.nu model) is_size

let predicted_escape_probability model ~is_size =
  if is_size < 1 then invalid_arg "Gain.predicted_escape_probability: empty support";
  Q.sub Q.one (Q.make (Model.k model) is_size)

let escape_probability m i = Profit.expected_vp m i

let gain_ratio high low = Q.div (defender_gain high) (defender_gain low)

let protection_quality m =
  Q.div_int (defender_gain m) (Model.nu (Profile.model m))

let price_of_defense m =
  Q.div (Q.of_int (Model.nu (Profile.model m))) (defender_gain m)

let predicted_price_of_defense model ~is_size =
  if is_size < 1 then invalid_arg "Gain.predicted_price_of_defense: empty support";
  Q.make is_size (Model.k model)
