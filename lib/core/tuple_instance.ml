(* The single application point of the exact engine to the paper's tuple
   game.  Applicative functor semantics make every other mention of
   [Game_engine.Make (Tuple_game)] — notably the one inside
   [Sim.Game_sim.Make] — share types with this one, so the wrapper
   modules (Payoff_kernel, Profile, ...) and the simulation loops all
   agree on one [Profile.mixed]. *)

module Engine = Game_engine.Make (Tuple_game)
