(** Best-response values against a mixed configuration.

    The vertex players' best response is polynomial (scan vertices for the
    minimum hit probability).  The defender's best response maximizes
    m_s(t) over all C(m,k) tuples — a weighted max-coverage problem — so we
    provide the exhaustive computation (guarded) plus a cheap upper bound
    used as an optimality certificate by the structured equilibria. *)

open Netgraph
module Q = Exact.Q

(** All functions answer payoff queries from the profile's
    {!Payoff_kernel} tables (O(1) per query); [~naive:true] re-scans the
    supports instead — the correctness oracle, exactly equal and used by
    the kernel-vs-naive microbenchmarks. *)

(** Max over vertices of [1 − Hit(v)]: the best payoff available to any
    vertex player. *)
val vp_best_value : ?naive:bool -> Profile.mixed -> Q.t

(** A vertex attaining {!vp_best_value} (minimum hit probability). *)
val vp_best_vertex : ?naive:bool -> Profile.mixed -> Graph.vertex

(** Max over all tuples [t ∈ E^k] of m_s(t), by enumeration.
    @raise Invalid_argument when C(m,k) exceeds [limit] (default
    2_000_000). *)
val tp_best_value_exhaustive : ?limit:int -> ?naive:bool -> Profile.mixed -> Q.t

(** A maximizing tuple (same enumeration and guard). *)
val tp_best_tuple_exhaustive :
  ?limit:int -> ?naive:bool -> Profile.mixed -> Tuple.t

(** Upper bound on [max_t m_s(t)]: the sum of the k largest edge loads
    m_s(e).  Valid because m_s(t) ≤ Σ_{e∈t} m_s(e); tight exactly when
    some k edges with maximal loads cover disjoint loaded vertices, which
    is the situation in every k-matching equilibrium. *)
val tp_upper_bound : ?naive:bool -> Profile.mixed -> Q.t

(** Greedy baseline (pick k edges by marginal coverage gain): a lower
    bound on the defender's best-response value; the classic (1 − 1/e)
    max-coverage heuristic, used in benchmarks. *)
val tp_greedy_value : ?naive:bool -> Profile.mixed -> Q.t
