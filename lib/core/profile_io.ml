(* Profile (de)serialization: the engine's Io pinned to the tuple game.
   Tuple profiles keep the original "profile v1" format bit-for-bit;
   the reader also accepts the tagged "profile v2" header (rejecting
   tags of other games). *)

include Tuple_instance.Engine.Io
