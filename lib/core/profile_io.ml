module Q = Exact.Q

(* Q's own string format ("num/den", "/den" omitted for integers) at any
   magnitude: probabilities with denominators beyond the native range
   (deep mixes, long-horizon averages) serialize losslessly. *)
let q_to_string = Q.to_string

let q_of_string s =
  match Q.of_string_opt s with
  | Some q -> q
  | None -> invalid_arg ("Profile_io: bad rational " ^ s)

let to_string profile =
  let model = Profile.model profile in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# defender mixed configuration\nprofile v1\n";
  Buffer.add_string buf
    (Printf.sprintf "nu %d k %d\n" (Model.nu model) (Model.k model));
  for i = 0 to Model.nu model - 1 do
    Buffer.add_string buf (Printf.sprintf "vp %d" i);
    let d = Profile.vp_strategy profile i in
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf " %d:%s" v (q_to_string (Dist.Finite.prob d v))))
      (Dist.Finite.support d);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "tp";
  List.iter
    (fun (t, p) ->
      Buffer.add_string buf
        (Printf.sprintf " %s:%s"
           (String.concat "," (List.map string_of_int (Tuple.to_list t)))
           (q_to_string p)))
    (Profile.tp_strategy profile);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_string model text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let split_pair token =
    match String.rindex_opt token ':' with
    | Some i ->
        ( String.sub token 0 i,
          q_of_string (String.sub token (i + 1) (String.length token - i - 1)) )
    | None -> invalid_arg ("Profile_io: missing probability in " ^ token)
  in
  match lines with
  | header :: sizes :: rest ->
      if header <> "profile v1" then invalid_arg "Profile_io: bad header";
      let nu, k =
        match String.split_on_char ' ' sizes with
        | [ "nu"; nu; "k"; k ] -> (
            match (int_of_string_opt nu, int_of_string_opt k) with
            | Some nu, Some k -> (nu, k)
            | _ -> invalid_arg "Profile_io: bad sizes line")
        | _ -> invalid_arg "Profile_io: bad sizes line"
      in
      if nu <> Model.nu model || k <> Model.k model then
        invalid_arg "Profile_io: profile does not match the model (nu or k)";
      let vp = Array.make nu None in
      let tp = ref None in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | "vp" :: index :: tokens ->
              let i =
                match int_of_string_opt index with
                | Some i when i >= 0 && i < nu -> i
                | _ -> invalid_arg "Profile_io: bad vp index"
              in
              let pairs =
                List.map
                  (fun token ->
                    let vertex, prob = split_pair token in
                    match int_of_string_opt vertex with
                    | Some v -> (v, prob)
                    | None -> invalid_arg ("Profile_io: bad vertex " ^ vertex))
                  tokens
              in
              vp.(i) <- Some (Dist.Finite.make pairs)
          | "tp" :: tokens ->
              let g = Model.graph model in
              let entries =
                List.map
                  (fun token ->
                    let ids, prob = split_pair token in
                    let edge_ids =
                      String.split_on_char ',' ids
                      |> List.map (fun s ->
                             match int_of_string_opt s with
                             | Some id -> id
                             | None -> invalid_arg ("Profile_io: bad edge id " ^ s))
                    in
                    (Tuple.of_list g edge_ids, prob))
                  tokens
              in
              tp := Some entries
          | _ -> invalid_arg ("Profile_io: unrecognized line: " ^ line))
        rest;
      let vp =
        Array.to_list
          (Array.mapi
             (fun i d ->
               match d with
               | Some d -> d
               | None ->
                   invalid_arg
                     (Printf.sprintf "Profile_io: missing strategy for vp %d" i))
             vp)
      in
      let tp =
        match !tp with
        | Some entries -> entries
        | None -> invalid_arg "Profile_io: missing tp line"
      in
      Profile.make_mixed model ~vp ~tp
  | _ -> invalid_arg "Profile_io: truncated input"

let save file profile =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string profile))

let load model file =
  let ic = open_in file in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      of_string model (really_input_string ic len))
