(* The exact game engine, generic over a GAME instance (game.mli).
   [Make] builds, for one game, the full tower the tuple modules used to
   hard-code: incremental payoff kernel, profiles, exact profits, best
   responses, pure-NE brute force, mixed-NE verification and profile
   I/O.  The tuple game's modules (Payoff_kernel, Profile, ...) are thin
   wrappers over [Make (Tuple_game)] (see tuple_instance.ml) and must
   stay byte-identical to their pre-functor behavior: every fold order,
   tie-break, error string and observability counter below is load-
   bearing.  Payoffs never leave Exact.Q. *)

open Netgraph
module Q = Exact.Q
module Finite = Dist.Finite

module Make (G : Game.S) = struct
  module Kernel = struct
    type t = {
      instance : G.instance;
      hit : Q.t array;
      load : Q.t array;
      edge_load : Q.t array;
    }

    (* The patch-vs-rebuild economics this kernel exists for, as
       counters: how many full builds, how many O(deg) patches, and how
       many cells each copy-on-write patch actually duplicated.  The
       handles are interned by name, so every Make application shares
       them — a sweep's metrics aggregate over all games. *)
    let c_builds = Obs.counter "kernel.builds"
    let c_vp_patches = Obs.counter "kernel.vp_patches"
    let c_tp_patches = Obs.counter "kernel.tp_patches"
    let c_cow_cells = Obs.counter "kernel.cow_cells"

    let hit_table inst tp =
      let g = G.graph inst in
      let hit = Array.make (Graph.n g) Q.zero in
      List.iter
        (fun (t, p) ->
          List.iter (fun v -> hit.(v) <- Q.add hit.(v) p) (G.covered inst t))
        tp;
      hit

    let load_table g vp =
      let load = Array.make (Graph.n g) Q.zero in
      Array.iter
        (fun d -> Finite.iter d ~f:(fun v p -> load.(v) <- Q.add load.(v) p))
        vp;
      load

    let edge_load_table g load =
      Array.init (Graph.m g) (fun id ->
          let e = Graph.edge g id in
          Q.add load.(e.Graph.u) load.(e.Graph.v))

    let make inst ~vp ~tp =
      Obs.incr c_builds;
      let g = G.graph inst in
      let load = load_table g vp in
      { instance = inst; hit = hit_table inst tp; load; edge_load = edge_load_table g load }

    let instance k = k.instance
    let hit_prob k v = k.hit.(v)
    let expected_load k v = k.load.(v)
    let expected_load_edge k id = k.edge_load.(id)

    let expected_load_strategy k t =
      List.fold_left
        (fun acc v -> Q.add acc k.load.(v))
        Q.zero
        (G.covered k.instance t)

    let hit_table_copy k = Array.copy k.hit
    let load_table_copy k = Array.copy k.load
    let edge_load_table_copy k = Array.copy k.edge_load

    let replace_vp k ~old_d ~new_d =
      Obs.incr c_vp_patches;
      Obs.add c_cow_cells (Array.length k.load + Array.length k.edge_load);
      let g = G.graph k.instance in
      let load = Array.copy k.load in
      let edge_load = Array.copy k.edge_load in
      let shift v delta =
        load.(v) <- Q.add load.(v) delta;
        Graph.iter_incident g v ~f:(fun _ id ->
            edge_load.(id) <- Q.add edge_load.(id) delta)
      in
      Finite.iter old_d ~f:(fun v p -> shift v (Q.neg p));
      Finite.iter new_d ~f:(fun v p -> shift v p);
      { k with load; edge_load }

    let replace_tp k ~tp = Obs.incr c_tp_patches; { k with hit = hit_table k.instance tp }
  end

  module Profile = struct
    type pure = {
      vp_choices : Graph.vertex array;
      tp_choice : G.Strategy.t;
    }

    type mixed = {
      instance : G.instance;
      vp : Finite.t array;
      tp : (G.Strategy.t * Q.t) list;
          (* positive probs, canonical strategies, sums to 1 *)
      kernel : Kernel.t;  (* exact hit/load tables, kept in sync *)
    }

    let check_vertex g v =
      if v < 0 || v >= Graph.n g then
        invalid_arg (Printf.sprintf "Profile: vertex %d out of range" v)

    let make_pure inst ~vp_choices ~tp_choice =
      if List.length vp_choices <> G.nu inst then
        invalid_arg "Profile.make_pure: wrong number of vertex-player choices";
      List.iter (check_vertex (G.graph inst)) vp_choices;
      G.validate inst tp_choice;
      { vp_choices = Array.of_list vp_choices; tp_choice }

    let check_tp inst tp =
      if tp = [] then
        invalid_arg "Profile.make_mixed: empty tuple-player strategy";
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (t, p) ->
          G.validate inst t;
          if Q.sign p <= 0 then
            invalid_arg "Profile.make_mixed: non-positive tuple probability";
          let key = G.Strategy.to_ints t in
          if Hashtbl.mem seen key then
            invalid_arg "Profile.make_mixed: duplicate tuple in support";
          Hashtbl.add seen key ())
        tp;
      let total = Q.sum (List.map snd tp) in
      if not (Q.equal total Q.one) then
        invalid_arg
          (Printf.sprintf "Profile.make_mixed: tuple probabilities sum to %s"
             (Q.to_string total))

    let make_mixed inst ~vp ~tp =
      if List.length vp <> G.nu inst then
        invalid_arg
          "Profile.make_mixed: wrong number of vertex-player strategies";
      List.iter
        (fun d -> List.iter (check_vertex (G.graph inst)) (Finite.support d))
        vp;
      check_tp inst tp;
      let vp = Array.of_list vp in
      { instance = inst; vp; tp; kernel = Kernel.make inst ~vp ~tp }

    let of_pure inst { vp_choices; tp_choice } =
      make_mixed inst
        ~vp:(Array.to_list (Array.map Finite.point vp_choices))
        ~tp:[ (tp_choice, Q.one) ]

    let uniform inst ~vp_support ~tp_support =
      let vp_dist = Finite.uniform vp_support in
      let count = List.length tp_support in
      if count = 0 then invalid_arg "Profile.uniform: empty tuple support";
      let p = Q.make 1 count in
      make_mixed inst
        ~vp:(List.init (G.nu inst) (fun _ -> vp_dist))
        ~tp:(List.map (fun t -> (t, p)) tp_support)

    let instance m = m.instance
    let kernel m = m.kernel

    let vp_strategy m i =
      if i < 0 || i >= Array.length m.vp then
        invalid_arg "Profile.vp_strategy: player index out of range";
      m.vp.(i)

    let vp_strategies m = Array.copy m.vp
    let tp_strategy m = m.tp
    let vp_support m i = Finite.support (vp_strategy m i)

    let vp_support_union m =
      Array.to_list m.vp |> List.concat_map Finite.support
      |> List.sort_uniq compare

    let tp_support m = List.map fst m.tp

    let tuples_hitting m v =
      List.filter (fun (t, _) -> G.covers m.instance t v) m.tp

    (* The naive recomputations below re-scan the relevant support on
       every query; they are the correctness oracle for the kernel
       tables (the property tests assert exact Q-equality between the
       two paths).  The counter pairs with kernel.builds /
       kernel.*_patches: their ratio in a sweep's metrics shows how much
       rescanning the kernel tables avoid. *)

    let c_naive_rescans = Obs.counter "kernel.naive_rescans"

    let naive_hit_prob m v =
      Obs.incr c_naive_rescans;
      Q.sum (List.map snd (tuples_hitting m v))

    let naive_expected_load m v =
      Obs.incr c_naive_rescans;
      Array.fold_left (fun acc d -> Q.add acc (Finite.prob d v)) Q.zero m.vp

    let hit_prob ?(naive = false) m v =
      if naive then naive_hit_prob m v else Kernel.hit_prob m.kernel v

    let expected_load ?(naive = false) m v =
      if naive then naive_expected_load m v else Kernel.expected_load m.kernel v

    let expected_load_edge ?(naive = false) m id =
      if naive then
        let e = Graph.edge (G.graph m.instance) id in
        Q.add
          (naive_expected_load m e.Graph.u)
          (naive_expected_load m e.Graph.v)
      else Kernel.expected_load_edge m.kernel id

    let expected_load_strategy ?(naive = false) m t =
      if naive then
        Q.sum (List.map (naive_expected_load m) (G.covered m.instance t))
      else Kernel.expected_load_strategy m.kernel t

    let replace_vp m i d =
      List.iter (check_vertex (G.graph m.instance)) (Finite.support d);
      if i < 0 || i >= Array.length m.vp then
        invalid_arg "Profile.replace_vp: player index out of range";
      let kernel = Kernel.replace_vp m.kernel ~old_d:m.vp.(i) ~new_d:d in
      let vp = Array.copy m.vp in
      vp.(i) <- d;
      { m with vp; kernel }

    let replace_tp m tp =
      check_tp m.instance tp;
      { m with tp; kernel = Kernel.replace_tp m.kernel ~tp }

    let is_pure m = Array.for_all Finite.is_pure m.vp && List.length m.tp = 1

    let pp fmt m =
      Format.fprintf fmt "@[<v 2>profile %a:@," G.pp_instance m.instance;
      Array.iteri
        (fun i d -> Format.fprintf fmt "vp%d: %a@," i Finite.pp d)
        m.vp;
      Format.fprintf fmt "tp:";
      List.iter
        (fun (t, p) ->
          Format.fprintf fmt "@ %a:%s" G.Strategy.pp t (Q.to_string p))
        m.tp;
      Format.fprintf fmt "@]"
  end

  module Profit = struct
    let pure_vp inst (profile : Profile.pure) i =
      if i < 0 || i >= Array.length profile.Profile.vp_choices then
        invalid_arg "Profit.pure_vp: player index out of range";
      if
        G.covers inst profile.Profile.tp_choice
          profile.Profile.vp_choices.(i)
      then 0
      else 1

    let pure_tp inst (profile : Profile.pure) =
      Array.fold_left
        (fun acc v ->
          if G.covers inst profile.Profile.tp_choice v then acc + 1 else acc)
        0 profile.Profile.vp_choices

    let vp_payoff_of_vertex ?naive m v =
      Q.sub Q.one (Profile.hit_prob ?naive m v)

    let tp_payoff_of_strategy ?naive m t =
      Profile.expected_load_strategy ?naive m t

    let expected_vp ?naive m i =
      Finite.expect (Profile.vp_strategy m i) ~f:(fun v ->
          vp_payoff_of_vertex ?naive m v)

    let expected_tp ?naive m =
      Q.sum
        (List.map
           (fun (t, p) -> Q.mul p (Profile.expected_load_strategy ?naive m t))
           (Profile.tp_strategy m))
  end

  module Best_response = struct
    let graph m = G.graph (Profile.instance m)

    (* One count per full sweep over the vertex space — the unit B7
       times and B15 gates its observability overhead on. *)
    let c_vp_sweeps = Obs.counter "br.vp_sweeps"

    let vp_best_vertex ?naive m =
      Obs.incr c_vp_sweeps;
      let g = graph m in
      let best = ref 0 and best_hit = ref (Profile.hit_prob ?naive m 0) in
      for v = 1 to Graph.n g - 1 do
        let h = Profile.hit_prob ?naive m v in
        if Q.( < ) h !best_hit then begin
          best := v;
          best_hit := h
        end
      done;
      !best

    let vp_best_value ?naive m =
      Q.sub Q.one (Profile.hit_prob ?naive m (vp_best_vertex ?naive m))

    let check_limit m limit =
      match G.space_size_within (Profile.instance m) ~limit with
      | Some _ -> ()
      | None ->
          invalid_arg "Best_response: tuple space too large for enumeration"

    let tp_best_exhaustive ?(limit = 2_000_000) ?naive m =
      check_limit m limit;
      let best = ref None in
      let _ =
        G.fold_strategies (Profile.instance m) ~init:() ~f:(fun () t ->
            let value = Profile.expected_load_strategy ?naive m t in
            match !best with
            | Some (_, v) when Q.( >= ) v value -> ()
            | _ -> best := Some (t, value))
      in
      match !best with Some (t, _) -> t | None -> assert false

    let tp_best_value_exhaustive ?limit ?naive m =
      Profile.expected_load_strategy ?naive m
        (tp_best_exhaustive ?limit ?naive m)

    let tp_upper_bound ?naive m =
      G.value_upper_bound (Profile.instance m)
        ~load:(fun v -> Profile.expected_load ?naive m v)
        ~edge_load:(fun id -> Profile.expected_load_edge ?naive m id)

    (* One count per weighted-oracle invocation — the double-oracle
       solver's per-iteration cost unit. *)
    let c_weighted_oracles = Obs.counter "br.weighted_oracles"

    (* Exact defender best response through the game's weighted oracle:
       the weights are the profile's expected per-vertex attacker loads,
       so unlike [tp_best_exhaustive] this never walks the strategy
       space and stays exact on spaces of any size. *)
    let tp_best_weighted ?naive m =
      Obs.incr c_weighted_oracles;
      let g = graph m in
      let weight =
        Array.init (Graph.n g) (fun v -> Profile.expected_load ?naive m v)
      in
      G.best_response_weighted (Profile.instance m) ~weight

    let tp_best_value_weighted ?naive m =
      Profile.expected_load_strategy ?naive m (tp_best_weighted ?naive m)
  end

  module Pure = struct
    let check_limit inst limit =
      match G.space_size_within inst ~limit with
      | Some _ -> ()
      | None ->
          invalid_arg
            "Pure_nash: tuple space too large for brute-force inspection"

    let is_pure_ne ?(limit = 2_000_000) inst (profile : Profile.pure) =
      check_limit inst limit;
      let g = G.graph inst in
      let t = profile.Profile.tp_choice in
      let all_covered = List.length (G.covered inst t) = Graph.n g in
      (* Vertex players: a caught player improves by moving to any
         uncovered vertex; an escaped player is already at its maximum
         profit 1. *)
      let vp_ok =
        Array.for_all
          (fun v -> all_covered || not (G.covers inst t v))
          profile.Profile.vp_choices
      in
      vp_ok
      &&
      (* Defender: compare with the best achievable coverage count. *)
      let catch choice =
        Array.fold_left
          (fun acc v -> if G.covers inst choice v then acc + 1 else acc)
          0 profile.Profile.vp_choices
      in
      let current = catch t in
      let best =
        G.fold_strategies inst ~init:0 ~f:(fun acc t' -> max acc (catch t'))
      in
      current = best

    let exists_brute_force ?(limit = 2_000_000) inst =
      check_limit inst limit;
      let n = Graph.n (G.graph inst) in
      (* Symmetry reduction: a pure NE exists iff some strategy covers
         every vertex; the search below is the definitional enumeration
         over defender choices with the attacker side resolved
         analytically. *)
      G.fold_strategies inst ~init:false ~f:(fun acc t ->
          acc || List.length (G.covered inst t) = n)
  end

  module Verify = struct
    type mode = Exhaustive of int | Certificate | Oracle
    type verdict = Confirmed | Refuted of string | Unknown of string

    let verdict_is_confirmed = function
      | Confirmed -> true
      | Refuted _ | Unknown _ -> false

    let verdict_to_string = function
      | Confirmed -> "confirmed"
      | Refuted why -> "refuted: " ^ why
      | Unknown why -> "unknown: " ^ why

    let vp_side ?naive m =
      let best = Best_response.vp_best_value ?naive m in
      let nu = G.nu (Profile.instance m) in
      let rec check i =
        if i = nu then Confirmed
        else
          let offending =
            List.find_opt
              (fun v -> Q.( < ) (Profit.vp_payoff_of_vertex ?naive m v) best)
              (Profile.vp_support m i)
          in
          match offending with
          | Some v ->
              Refuted
                (Printf.sprintf
                   "vertex player %d puts weight on vertex %d with payoff %s \
                    < best %s"
                   i v
                   (Q.to_string (Profit.vp_payoff_of_vertex ?naive m v))
                   (Q.to_string best))
          | None -> check (i + 1)
      in
      check 0

    let support_load_range ?naive m =
      let loads =
        List.map
          (fun (t, _) -> Profile.expected_load_strategy ?naive m t)
          (Profile.tp_strategy m)
      in
      (Q.min_list loads, Q.max_list loads)

    let tp_side ?naive mode m =
      let low, high = support_load_range ?naive m in
      if Q.( < ) low high then
        Refuted
          (Printf.sprintf
             "defender support mixes tuples of different value (%s vs %s)"
             (Q.to_string low) (Q.to_string high))
      else
        match mode with
        | Exhaustive limit ->
            let best = Best_response.tp_best_value_exhaustive ~limit ?naive m in
            if Q.( < ) low best then
              Refuted
                (Printf.sprintf
                   "defender can deviate to a tuple of value %s > %s"
                   (Q.to_string best) (Q.to_string low))
            else Confirmed
        | Certificate ->
            let bound = Best_response.tp_upper_bound ?naive m in
            if Q.equal low bound then Confirmed
            else
              Unknown
                (Printf.sprintf
                   "support value %s below top-k edge-load bound %s; \
                    certificate inconclusive"
                   (Q.to_string low) (Q.to_string bound))
        | Oracle ->
            (* Exact and complete at any space size: the weighted oracle
               returns a true best response, so the comparison decides. *)
            let best = Best_response.tp_best_value_weighted ?naive m in
            if Q.( < ) low best then
              Refuted
                (Printf.sprintf
                   "defender can deviate to a strategy of value %s > %s \
                    (weighted oracle)"
                   (Q.to_string best) (Q.to_string low))
            else Confirmed

    let mixed_ne ?naive mode m =
      match vp_side ?naive m with
      | Confirmed -> tp_side ?naive mode m
      | (Refuted _ | Unknown _) as v -> v
  end

  module Io = struct
    (* Q's own string format ("num/den", "/den" omitted for integers) at
       any magnitude: probabilities with denominators beyond the native
       range serialize losslessly. *)
    let q_to_string = Q.to_string

    let q_of_string s =
      match Q.of_string_opt s with
      | Some q -> q
      | None -> invalid_arg ("Profile_io: bad rational " ^ s)

    (* The tuple game keeps writing the original "profile v1" format
       bit-for-bit (old artifacts stay loadable and new tuple saves stay
       diffable against old ones); every other game writes "profile v2"
       plus an explicit "game <name>" tag line.  The reader accepts both:
       v1 implies the tuple game. *)
    let to_string profile =
      let inst = Profile.instance profile in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "# defender mixed configuration\n";
      if G.name = "tuple" then Buffer.add_string buf "profile v1\n"
      else
        Buffer.add_string buf (Printf.sprintf "profile v2\ngame %s\n" G.name);
      Buffer.add_string buf
        (String.concat " "
           (List.concat_map
              (fun (key, value) -> [ key; string_of_int value ])
              (G.params inst))
        ^ "\n");
      for i = 0 to G.nu inst - 1 do
        Buffer.add_string buf (Printf.sprintf "vp %d" i);
        let d = Profile.vp_strategy profile i in
        List.iter
          (fun v ->
            Buffer.add_string buf
              (Printf.sprintf " %d:%s" v (q_to_string (Finite.prob d v))))
          (Finite.support d);
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf "tp";
      List.iter
        (fun (t, p) ->
          Buffer.add_string buf
            (Printf.sprintf " %s:%s"
               (String.concat ","
                  (List.map string_of_int (G.Strategy.to_ints t)))
               (q_to_string p)))
        (Profile.tp_strategy profile);
      Buffer.add_char buf '\n';
      Buffer.contents buf

    let of_string inst text =
      let lines =
        String.split_on_char '\n' text
        |> List.map String.trim
        |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      in
      let split_pair token =
        match String.rindex_opt token ':' with
        | Some i ->
            ( String.sub token 0 i,
              q_of_string
                (String.sub token (i + 1) (String.length token - i - 1)) )
        | None -> invalid_arg ("Profile_io: missing probability in " ^ token)
      in
      (match lines with
      | [] | [ _ ] -> invalid_arg "Profile_io: truncated input"
      | _ -> ());
      (* Header: "profile v1" (implicitly the tuple game) or
         "profile v2" followed by a "game <name>" line. *)
      let lines =
        match lines with
        | "profile v1" :: rest ->
            if G.name <> "tuple" then
              invalid_arg
                (Printf.sprintf
                   "Profile_io: v1 profile is a tuple-game profile, model is \
                    game %s"
                   G.name);
            rest
        | "profile v2" :: game_line :: rest -> (
            match String.split_on_char ' ' game_line with
            | [ "game"; tag ] ->
                if tag <> G.name then
                  invalid_arg
                    (Printf.sprintf
                       "Profile_io: profile is for game %s, model is game %s"
                       tag G.name);
                rest
            | _ -> invalid_arg "Profile_io: bad game line")
        | _ -> invalid_arg "Profile_io: bad header"
      in
      match lines with
      | sizes :: rest ->
          let expected = G.params inst in
          let mismatch () =
            invalid_arg
              (Printf.sprintf
                 "Profile_io: profile does not match the model (%s)"
                 (String.concat " or " (List.map fst expected)))
          in
          (match String.split_on_char ' ' sizes with
          | tokens when List.length tokens = 2 * List.length expected ->
              let rec pair = function
                | [] -> []
                | key :: value :: rest -> (key, value) :: pair rest
                | [ _ ] -> invalid_arg "Profile_io: bad sizes line"
              in
              List.iter2
                (fun (key, value) (ekey, evalue) ->
                  if key <> ekey then invalid_arg "Profile_io: bad sizes line";
                  match int_of_string_opt value with
                  | Some v when v = evalue -> ()
                  | Some _ -> mismatch ()
                  | None -> invalid_arg "Profile_io: bad sizes line")
                (pair tokens) expected
          | _ -> invalid_arg "Profile_io: bad sizes line");
          let nu = G.nu inst in
          let vp = Array.make nu None in
          let tp = ref None in
          List.iter
            (fun line ->
              match String.split_on_char ' ' line with
              | "vp" :: index :: tokens ->
                  let i =
                    match int_of_string_opt index with
                    | Some i when i >= 0 && i < nu -> i
                    | _ -> invalid_arg "Profile_io: bad vp index"
                  in
                  let pairs =
                    List.map
                      (fun token ->
                        let vertex, prob = split_pair token in
                        match int_of_string_opt vertex with
                        | Some v -> (v, prob)
                        | None ->
                            invalid_arg ("Profile_io: bad vertex " ^ vertex))
                      tokens
                  in
                  vp.(i) <- Some (Finite.make pairs)
              | "tp" :: tokens ->
                  let entries =
                    List.map
                      (fun token ->
                        let ids, prob = split_pair token in
                        let int_ids =
                          String.split_on_char ',' ids
                          |> List.map (fun s ->
                                 match int_of_string_opt s with
                                 | Some id -> id
                                 | None ->
                                     invalid_arg
                                       ("Profile_io: bad edge id " ^ s))
                        in
                        (G.strategy_of_ints inst int_ids, prob))
                      tokens
                  in
                  tp := Some entries
              | _ -> invalid_arg ("Profile_io: unrecognized line: " ^ line))
            rest;
          let vp =
            Array.to_list
              (Array.mapi
                 (fun i d ->
                   match d with
                   | Some d -> d
                   | None ->
                       invalid_arg
                         (Printf.sprintf
                            "Profile_io: missing strategy for vp %d" i))
                 vp)
          in
          let tp =
            match !tp with
            | Some entries -> entries
            | None -> invalid_arg "Profile_io: missing tp line"
          in
          Profile.make_mixed inst ~vp ~tp
      | _ -> invalid_arg "Profile_io: truncated input"

    let save file profile =
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_string profile))

    let load inst file =
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string inst (really_input_string ic len))
  end
end
