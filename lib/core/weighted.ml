module Q = Exact.Q

type t = { model : Model.t; weights : Q.t array }

let make model ~weights =
  if List.length weights <> Model.nu model then
    invalid_arg "Weighted.make: need exactly nu weights";
  List.iter
    (fun w -> if Q.sign w <= 0 then invalid_arg "Weighted.make: weights must be positive")
    weights;
  { model; weights = Array.of_list weights }

let total_weight t = Array.fold_left Q.add Q.zero t.weights

let expected_load t profile v =
  let acc = ref Q.zero in
  Array.iteri
    (fun i w ->
      acc := Q.add !acc (Q.mul w (Dist.Finite.prob (Profile.vp_strategy profile i) v)))
    t.weights;
  !acc

let expected_load_tuple t profile tuple =
  let g = Model.graph t.model in
  Q.sum (List.map (expected_load t profile) (Tuple.vertices g tuple))

(* Hot loops precompute the per-vertex weighted-load table once
   (Payoff_kernel.weighted_loads) so each tuple query is O(k) instead of
   O(k·ν·log supp). *)
let load_table t profile =
  Payoff_kernel.weighted_loads t.model ~weights:t.weights
    ~vp:(Profile.vp_strategies profile)

let table_load_tuple t loads tuple =
  let g = Model.graph t.model in
  List.fold_left
    (fun acc v -> Q.add acc loads.(v))
    Q.zero
    (Tuple.vertices g tuple)

let expected_tp t profile =
  let loads = load_table t profile in
  Q.sum
    (List.map
       (fun (tuple, p) -> Q.mul p (table_load_tuple t loads tuple))
       (Profile.tp_strategy profile))

let expected_vp t profile i =
  Q.mul t.weights.(i) (Profit.expected_vp profile i)

let verify_ne ?(limit = 2_000_000) t profile =
  (* Attacker side is weight-invariant: minimum-hit support. *)
  match Verify.vp_side profile with
  | (Verify.Refuted _ | Verify.Unknown _) as v -> v
  | Verify.Confirmed -> (
      let g = Model.graph t.model in
      let k = Model.k t.model in
      (match Model.tuple_space_size t.model with
      | Some c when c <= limit -> ()
      | _ -> invalid_arg "Weighted.verify_ne: tuple space too large");
      let table = load_table t profile in
      let loads =
        List.map
          (fun (tuple, _) -> table_load_tuple t table tuple)
          (Profile.tp_strategy profile)
      in
      let low = Q.min_list loads and high = Q.max_list loads in
      if Q.( < ) low high then
        Verify.Refuted "defender support mixes tuples of different weighted value"
      else
        let best =
          Tuple.fold_enumerate g ~k ~init:Q.zero ~f:(fun acc tuple ->
              Q.max acc (table_load_tuple t table tuple))
        in
        if Q.( < ) low best then
          Verify.Refuted
            (Printf.sprintf "a tuple of weighted value %s beats the support's %s"
               (Q.to_string best) (Q.to_string low))
        else Verify.Confirmed)

let a_tuple t partition = Tuple_nash.a_tuple t.model partition

let predicted_gain t ~is_size =
  if is_size < 1 then invalid_arg "Weighted.predicted_gain: empty support";
  Q.div_int (Q.mul_int (total_weight t) (Model.k t.model)) is_size
