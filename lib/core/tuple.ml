open Netgraph

type t = Graph.edge_id array

let of_list g ids =
  if ids = [] then invalid_arg "Tuple.of_list: empty tuple";
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> List.length ids then
    invalid_arg "Tuple.of_list: duplicate edge in tuple";
  List.iter
    (fun id ->
      if id < 0 || id >= Graph.m g then
        invalid_arg (Printf.sprintf "Tuple.of_list: edge id %d out of range" id))
    sorted;
  Array.of_list sorted

let to_list t = Array.to_list t
let size t = Array.length t

let contains_edge t id =
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if t.(mid) = id then true
      else if t.(mid) < id then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length t)

let vertices g t =
  Array.to_list t
  |> List.concat_map (fun id ->
         let e = Graph.edge g id in
         [ e.Graph.u; e.Graph.v ])
  |> List.sort_uniq compare

let covers g t v =
  Array.exists
    (fun id ->
      let e = Graph.edge g id in
      e.Graph.u = v || e.Graph.v = v)
    t

let compare = Stdlib.compare
let equal a b = Stdlib.compare a b = 0

let fold_enumerate g ~k ~init ~f =
  let m = Graph.m g in
  if k < 1 || k > m then invalid_arg "Tuple.fold_enumerate: k outside [1, m]";
  let selection = Array.make k 0 in
  let acc = ref init in
  (* Standard k-subset recursion in lexicographic order. *)
  let rec choose pos lo =
    if pos = k then acc := f !acc (Array.copy selection)
    else
      for id = lo to m - (k - pos) do
        selection.(pos) <- id;
        choose (pos + 1) (id + 1)
      done
  in
  choose 0 0;
  !acc

let enumerate ?(limit = 2_000_000) g ~k =
  let m = Graph.m g in
  let count =
    match Exact.Q.to_int_exn (Exact.Q.binomial m k) with
    | c -> Some c
    | exception Exact.Q.Overflow -> None
  in
  (match count with
  | Some c when c <= limit -> ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Tuple.enumerate: C(%d,%d) exceeds limit %d" m k limit));
  List.rev (fold_enumerate g ~k ~init:[] ~f:(fun acc t -> t :: acc))

let edge_union ts =
  List.concat_map Array.to_list ts |> List.sort_uniq compare

let vertex_union g ts =
  List.concat_map (vertices g) ts |> List.sort_uniq compare

let pp fmt t =
  Format.fprintf fmt "<%s>"
    (String.concat "," (List.map string_of_int (Array.to_list t)))
