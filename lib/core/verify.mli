(** Direct Nash-equilibrium verification (definitional best-response test),
    independent of the paper's characterization — the ground-truth oracle
    the characterization is tested against.

    A mixed configuration is an NE iff every vertex player's support lies
    on minimum-hit-probability vertices, and every support tuple of the
    defender attains [max_{t ∈ E^k} m_s(t)].  The defender side needs the
    max over C(m,k) tuples; choose the mode accordingly. *)

type mode = Tuple_instance.Engine.Verify.mode =
  | Exhaustive of int
      (** enumerate all tuples; the int caps the enumeration size *)
  | Certificate
      (** compare against the top-k edge-load upper bound; sound but
          incomplete (can answer [Unknown]) *)
  | Oracle
      (** compare against the game's exact weighted best-response oracle
          ({!Game.S.best_response_weighted}): complete like [Exhaustive]
          but enumeration-free, so it decides on strategy spaces of any
          size *)

type verdict = Tuple_instance.Engine.Verify.verdict =
  | Confirmed
  | Refuted of string  (** human-readable witness of a profitable deviation *)
  | Unknown of string  (** certificate failed to decide *)

val verdict_is_confirmed : verdict -> bool
val verdict_to_string : verdict -> string

(** Check the vertex players only (always polynomial): [Confirmed] or
    [Refuted].  [~naive:true] bypasses the profile's {!Payoff_kernel}
    tables and re-scans the supports (correctness oracle). *)
val vp_side : ?naive:bool -> Profile.mixed -> verdict

(** Check the defender only. *)
val tp_side : ?naive:bool -> mode -> Profile.mixed -> verdict

(** Conjunction of both sides. *)
val mixed_ne : ?naive:bool -> mode -> Profile.mixed -> verdict
