open Netgraph
let () =
  let rng = Prng.Rng.create 42 in
  (* sparse6 round-trip including power-of-two padding corner *)
  for n = 0 to 40 do
    for _trial = 0 to 20 do
      let edges = ref [] in
      for u = 0 to n-1 do
        for v = u+1 to n-1 do
          if Rng.int rng 3 = 0 then edges := (u,v) :: !edges
        done
      done;
      let g = Graph.make ~n !edges in
      let s = Graph6.encode_sparse6 g in
      let g' = Graph6.decode s in
      if not (Graph.equal g g') then (Printf.printf "SPARSE6 FAIL n=%d %s\n" n s; exit 1);
      let d = Graph6.decode (Graph6.encode g) in
      if not (Graph.equal g d) then (Printf.printf "G6 FAIL n=%d\n" n; exit 1);
      let dl = Graph6.decode (Graph6.encode ~force_long:true g) in
      if not (Graph.equal g dl) then (Printf.printf "G6LONG FAIL n=%d\n" n; exit 1)
    done
  done;
  (* int_sort vs stdlib on adversarial patterns *)
  let check a =
    let b = Array.copy a in
    Array.sort compare b;
    Int_sort.sort a;
    if a <> b then (print_endline "SORT FAIL"; exit 1)
  in
  check (Array.init 1000 (fun i -> i));
  check (Array.init 1000 (fun i -> -i));
  check (Array.init 1000 (fun i -> i mod 7));
  check (Array.init 10000 (fun _ -> Rng.int rng 1000000));
  (* sort_pairs permutation consistency *)
  let keys = Array.init 5000 (fun _ -> Rng.int rng 1000000000) in
  let pay = Array.init 5000 (fun i -> i) in
  let orig = Array.copy keys in
  Int_sort.sort_pairs keys pay;
  Array.iteri (fun i k -> if orig.(pay.(i)) <> k then (print_endline "PAIR FAIL"; exit 1)) keys;
  (* blossom vs brute small graphs: use matching sizes vs hopcroft on bipartite *)
  for _ = 0 to 200 do
    let n = 2 + Rng.int rng 9 in
    let edges = ref [] in
    for u = 0 to n-1 do for v = u+1 to n-1 do
      if Rng.int rng 2 = 0 then edges := (u,v) :: !edges done done;
    let g = Graph.make ~n !edges in
    let mu = Matching.Blossom.matching_number g in
    (* brute force max matching *)
    let m = Graph.m g in
    let best = ref 0 in
    let rec go id used cnt =
      if id = m then (if cnt > !best then best := cnt)
      else begin
        go (id+1) used cnt;
        let u = Graph.edge_u g id and v = Graph.edge_v g id in
        if not (List.mem u used || List.mem v used) then
          go (id+1) (u::v::used) (cnt+1)
      end
    in
    go 0 [] 0;
    if mu <> !best then (Printf.printf "BLOSSOM FAIL n=%d mu=%d best=%d\n" n mu !best; exit 1)
  done;
  print_endline "ALL PROBES OK"
