lib/rational/q.mli: Format
