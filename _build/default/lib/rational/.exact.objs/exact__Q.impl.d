lib/rational/q.ml: Format List Printf Stdlib
