(** Exact rational arithmetic over native (63-bit) integers.

    Values are kept normalized: the denominator is strictly positive and the
    numerator and denominator are coprime.  All operations that could exceed
    the native integer range raise {!Overflow} instead of silently wrapping,
    so results are either exact or loudly absent.  The equilibrium quantities
    of the Tuple model have numerators and denominators bounded by small
    polynomials in the instance size, for which native integers are ample. *)

type t

(** Raised when an intermediate product or sum would exceed the native
    integer range. *)
exception Overflow

(** Raised by {!make}, {!div} and {!inv} on a zero denominator. *)
exception Division_by_zero

val zero : t
val one : t
val minus_one : t

(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)
val make : int -> int -> t

(** [of_int n] is the rational [n/1]. *)
val of_int : int -> t

(** Numerator of the normalized representation. *)
val num : t -> int

(** Denominator of the normalized representation; always [> 0]. *)
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is zero. *)
val div : t -> t -> t

val neg : t -> t

(** Multiplicative inverse. @raise Division_by_zero on zero. *)
val inv : t -> t

(** [mul_int q n] is [q * n]. *)
val mul_int : t -> int -> t

(** [div_int q n] is [q / n]. @raise Division_by_zero if [n = 0]. *)
val div_int : t -> int -> t

val abs : t -> t

(** [-1], [0] or [1]. *)
val sign : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool

(** [true] iff the denominator is 1. *)
val is_integer : t -> bool

(** Exact integer value. @raise Invalid_argument if not an integer. *)
val to_int_exn : t -> int

val to_float : t -> float

(** Sum of a list; [zero] for the empty list. *)
val sum : t list -> t

(** Arithmetic mean. @raise Invalid_argument on the empty list. *)
val average : t list -> t

(** Minimum of a non-empty list. @raise Invalid_argument on []. *)
val min_list : t list -> t

(** Maximum of a non-empty list. @raise Invalid_argument on []. *)
val max_list : t list -> t

(** ["num/den"], or just ["num"] when the value is an integer. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
