type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

(* Overflow-checked primitives.  [min_int] is excluded outright: its
   negation is itself, which breaks normalization. *)

let check_representable n = if n = min_int then raise Overflow else n

let add_ovf a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow
  else check_representable s

let mul_ovf a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then raise Overflow else check_representable p

let neg_ovf a = if a = min_int then raise Overflow else -a

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Invariant: den > 0 and gcd (|num|, den) = 1. *)
let norm num den =
  if den = 0 then raise Division_by_zero;
  let num, den = if den < 0 then (neg_ovf num, neg_ovf den) else (num, den) in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let make num den = norm (check_representable num) (check_representable den)
let of_int n = { num = check_representable n; den = 1 }
let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let minus_one = { num = -1; den = 1 }
let num q = q.num
let den q = q.den

let add a b =
  (* Knuth's trick keeps intermediates small: work modulo the gcd of the
     denominators before cross-multiplying. *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let n = add_ovf (mul_ovf a.num db) (mul_ovf b.num da) in
  norm n (mul_ovf a.den db)

let neg a = { a with num = neg_ovf a.num }
let sub a b = add a (neg b)

let mul a b =
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let n = mul_ovf (a.num / g1) (b.num / g2) in
  let d = mul_ovf (a.den / g2) (b.den / g1) in
  norm n d

let inv a =
  if a.num = 0 then raise Division_by_zero
  else if a.num > 0 then { num = a.den; den = a.num }
  else { num = neg_ovf a.den; den = neg_ovf a.num }

let div a b = mul a (inv b)
let mul_int q n = mul q (of_int n)
let div_int q n = div q (of_int n)
let abs a = if a.num < 0 then neg a else a
let sign a = compare a.num 0

let compare a b =
  (* Exact comparison via cross multiplication with shared-factor removal. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  else
    let g = gcd a.den b.den in
    let da = a.den / g and db = b.den / g in
    Stdlib.compare (mul_ovf a.num db) (mul_ovf b.num da)

let equal a b = a.num = b.num && a.den = b.den
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let is_zero a = Stdlib.( = ) a.num 0
let is_integer a = Stdlib.( = ) a.den 1

let to_int_exn a =
  if is_integer a then a.num
  else invalid_arg "Q.to_int_exn: not an integer"

let to_float a = float_of_int a.num /. float_of_int a.den
let sum qs = List.fold_left add zero qs

let average = function
  | [] -> invalid_arg "Q.average: empty list"
  | qs -> div_int (sum qs) (List.length qs)

let min_list = function
  | [] -> invalid_arg "Q.min_list: empty list"
  | q :: qs -> List.fold_left min q qs

let max_list = function
  | [] -> invalid_arg "Q.max_list: empty list"
  | q :: qs -> List.fold_left max q qs

let to_string a =
  if is_integer a then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)
