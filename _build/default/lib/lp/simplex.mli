(** Exact linear programming over rationals: primal simplex with Bland's
    anti-cycling rule on problems in packing form

      maximize    c . x
      subject to  A x <= b,   x >= 0,   with b >= 0.

    The non-negativity of [b] makes the all-slack basis feasible, so no
    phase-1 is needed; this covers the fractional covering/packing duals
    the defender analysis requires (see {!Defender.Minimax}).  All
    arithmetic is exact, so returned optima are certificates, not
    approximations. *)

module Q = Exact.Q

type solution = {
  objective : Q.t;
  x : Q.t array;  (** primal optimum, length = #columns *)
  dual : Q.t array;
      (** dual optimum (one multiplier per row), read off the slack
          reduced costs; certifies optimality by strong duality *)
}

type outcome =
  | Optimal of solution
  | Unbounded

(** [maximize ~a ~b ~c] solves the LP above.  [a] is the m×n constraint
    matrix (rows of length n), [b] the m right-hand sides (all ≥ 0),
    [c] the n objective coefficients.
    @raise Invalid_argument on ragged input or a negative entry in [b]. *)
val maximize : a:Q.t array array -> b:Q.t array -> c:Q.t array -> outcome

(** [feasible ~a ~b ~x]: does [x ≥ 0] satisfy [A x ≤ b]? *)
val feasible : a:Q.t array array -> b:Q.t array -> x:Q.t array -> bool

(** Objective value [c . x]. *)
val value : c:Q.t array -> x:Q.t array -> Q.t
