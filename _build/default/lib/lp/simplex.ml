module Q = Exact.Q

type solution = { objective : Q.t; x : Q.t array; dual : Q.t array }
type outcome = Optimal of solution | Unbounded

let feasible ~a ~b ~x =
  Array.for_all (fun v -> Q.( >= ) v Q.zero) x
  && Array.for_all Fun.id
       (Array.mapi
          (fun i row ->
            let lhs = ref Q.zero in
            Array.iteri (fun j aij -> lhs := Q.add !lhs (Q.mul aij x.(j))) row;
            Q.( <= ) !lhs b.(i))
          a)

let value ~c ~x =
  let acc = ref Q.zero in
  Array.iteri (fun j cj -> acc := Q.add !acc (Q.mul cj x.(j))) c;
  !acc

let maximize ~a ~b ~c =
  let m = Array.length a in
  let n = Array.length c in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Simplex.maximize: ragged matrix")
    a;
  if Array.length b <> m then invalid_arg "Simplex.maximize: |b| <> rows";
  Array.iter
    (fun bi ->
      if Q.( < ) bi Q.zero then
        invalid_arg "Simplex.maximize: negative right-hand side (packing form)")
    b;
  let cols = n + m in
  (* Tableau rows: constraints with slack identity appended; the reduced
     cost row is kept separately. *)
  let tab = Array.init m (fun _ -> Array.make (cols + 1) Q.zero) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      tab.(i).(j) <- a.(i).(j)
    done;
    tab.(i).(n + i) <- Q.one;
    tab.(i).(cols) <- b.(i)
  done;
  let reduced = Array.make cols Q.zero in
  for j = 0 to n - 1 do
    reduced.(j) <- c.(j)
  done;
  let basis = Array.init m (fun i -> n + i) in
  let rec iterate () =
    (* Bland: entering variable = least index with positive reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to cols - 1 do
         if Q.( > ) reduced.(j) Q.zero then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then begin
      (* Optimal: read off the primal and dual solutions. *)
      let x = Array.make n Q.zero in
      Array.iteri
        (fun i var -> if var < n then x.(var) <- tab.(i).(cols))
        basis;
      let dual = Array.init m (fun i -> Q.neg reduced.(n + i)) in
      Optimal { objective = value ~c ~x; x; dual }
    end
    else begin
      let j = !entering in
      (* Ratio test; Bland tie-break on the leaving basic variable. *)
      let leaving = ref (-1) in
      let best_ratio = ref Q.zero in
      for i = 0 to m - 1 do
        if Q.( > ) tab.(i).(j) Q.zero then begin
          let ratio = Q.div tab.(i).(cols) tab.(i).(j) in
          let better =
            !leaving < 0
            || Q.( < ) ratio !best_ratio
            || (Q.equal ratio !best_ratio && basis.(i) < basis.(!leaving))
          in
          if better then begin
            leaving := i;
            best_ratio := ratio
          end
        end
      done;
      if !leaving < 0 then Unbounded
      else begin
        let r = !leaving in
        (* Normalize the pivot row. *)
        let pivot = tab.(r).(j) in
        for jj = 0 to cols do
          tab.(r).(jj) <- Q.div tab.(r).(jj) pivot
        done;
        (* Eliminate the entering column elsewhere. *)
        for i = 0 to m - 1 do
          if i <> r && not (Q.is_zero tab.(i).(j)) then begin
            let factor = tab.(i).(j) in
            for jj = 0 to cols do
              tab.(i).(jj) <- Q.sub tab.(i).(jj) (Q.mul factor tab.(r).(jj))
            done
          end
        done;
        let factor = reduced.(j) in
        if not (Q.is_zero factor) then
          for jj = 0 to cols - 1 do
            reduced.(jj) <- Q.sub reduced.(jj) (Q.mul factor tab.(r).(jj))
          done;
        basis.(r) <- j;
        iterate ()
      end
    end
  in
  iterate ()
