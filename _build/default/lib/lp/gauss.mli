(** Exact Gaussian elimination over the rationals.

    Solves [A x = b] by row reduction with partial (first-nonzero)
    pivoting.  Distinguishes the three outcomes the support solver needs:
    a unique solution, an underdetermined system (free variables — the
    caller cannot trust any single completion), or inconsistency. *)

module Q = Exact.Q

type outcome =
  | Unique of Q.t array
  | Underdetermined  (** consistent but with free variables *)
  | Inconsistent

(** [solve ~a ~b] with [a] an m×n matrix (rows of length n) and [b] of
    length m. @raise Invalid_argument on ragged input. *)
val solve : a:Q.t array array -> b:Q.t array -> outcome
