lib/lp/simplex.ml: Array Exact Fun
