lib/lp/gauss.ml: Array Exact
