lib/lp/simplex.mli: Exact
