lib/lp/gauss.mli: Exact
