module Q = Exact.Q

type outcome = Unique of Q.t array | Underdetermined | Inconsistent

let solve ~a ~b =
  let m = Array.length a in
  let n = if m = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Gauss.solve: ragged matrix")
    a;
  if Array.length b <> m then invalid_arg "Gauss.solve: |b| <> rows";
  (* Work on an augmented copy. *)
  let aug = Array.init m (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let pivot_col = Array.make m (-1) in
  let rank = ref 0 in
  let col = ref 0 in
  while !rank < m && !col < n do
    (* find a pivot row *)
    let pivot = ref (-1) in
    (try
       for i = !rank to m - 1 do
         if not (Q.is_zero aug.(i).(!col)) then begin
           pivot := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !pivot >= 0 then begin
      let p = !pivot in
      let tmp = aug.(p) in
      aug.(p) <- aug.(!rank);
      aug.(!rank) <- tmp;
      let head = aug.(!rank).(!col) in
      for j = !col to n do
        aug.(!rank).(j) <- Q.div aug.(!rank).(j) head
      done;
      for i = 0 to m - 1 do
        if i <> !rank && not (Q.is_zero aug.(i).(!col)) then begin
          let factor = aug.(i).(!col) in
          for j = !col to n do
            aug.(i).(j) <- Q.sub aug.(i).(j) (Q.mul factor aug.(!rank).(j))
          done
        end
      done;
      pivot_col.(!rank) <- !col;
      incr rank
    end;
    incr col
  done;
  (* Inconsistency: a zero row with nonzero rhs. *)
  let inconsistent = ref false in
  for i = !rank to m - 1 do
    if not (Q.is_zero aug.(i).(n)) then inconsistent := true
  done;
  if !inconsistent then Inconsistent
  else if !rank < n then Underdetermined
  else begin
    let x = Array.make n Q.zero in
    for i = 0 to !rank - 1 do
      x.(pivot_col.(i)) <- aug.(i).(n)
    done;
    Unique x
  end
