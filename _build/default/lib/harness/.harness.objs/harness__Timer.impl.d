lib/harness/timer.ml: List Unix
