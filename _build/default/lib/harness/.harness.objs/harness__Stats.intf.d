lib/harness/stats.mli:
