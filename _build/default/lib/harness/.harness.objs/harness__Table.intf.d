lib/harness/table.mli:
