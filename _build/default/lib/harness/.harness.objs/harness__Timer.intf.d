lib/harness/timer.mli:
