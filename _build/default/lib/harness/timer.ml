let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ?(repeat = 5) f =
  if repeat < 1 then invalid_arg "Timer.time_median: repeat must be positive";
  let samples = List.init repeat (fun _ -> snd (time f)) in
  let sorted = List.sort compare samples in
  List.nth sorted (repeat / 2)
