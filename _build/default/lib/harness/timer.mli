(** Wall-clock timing helpers for the scaling figures (Bechamel handles
    the microbenchmarks; these cover one-shot algorithm timings). *)

(** [time f] is [(result, seconds)]. *)
val time : (unit -> 'a) -> 'a * float

(** Median-of-[repeat] timing in seconds (default 5), discarding results. *)
val time_median : ?repeat:int -> (unit -> 'a) -> float
