type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64, used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(* Non-negative 62-bit integer from the top bits (best-quality bits). *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] that fits in
     the 62-bit draw range [0, max_int]. *)
  let limit = max_int / bound * bound in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1.0p-53

let bool_with_prob t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bool_with_prob: p out of [0,1]";
  float t < p

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t arr =
  let copy = Array.copy arr in
  shuffle_in_place t copy;
  copy

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t ~count arr =
  let n = Array.length arr in
  if count < 0 || count > n then
    invalid_arg "Rng.sample_without_replacement: bad count";
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: the first [count] slots become the sample. *)
  for i = 0 to count - 1 do
    let j = int_in_range t ~lo:i ~hi:(n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 count

let weighted_index t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.weighted_index: empty weights";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    if weights.(i) < 0.0 then invalid_arg "Rng.weighted_index: negative weight";
    total := !total +. weights.(i)
  done;
  if !total <= 0.0 then invalid_arg "Rng.weighted_index: all weights zero";
  let target = float t *. !total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
