(** Deterministic pseudo-random number generation.

    A dependency-free xoshiro256** generator seeded through SplitMix64, as
    recommended by Blackman & Vigna.  Every simulator and random-graph
    generator in this project threads an explicit [Rng.t] so runs are
    reproducible from a single integer seed. *)

type t

(** [create seed] builds a generator whose full 256-bit state is derived
    from [seed] with SplitMix64 (so nearby seeds give unrelated streams). *)
val create : int -> t

(** An independent generator split off from [t]; advances [t]. *)
val split : t -> t

(** Next raw 64-bit word. *)
val bits64 : t -> int64

(** [int t bound] is uniform on [0, bound); rejection-sampled, unbiased.
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform on the inclusive range.
    @raise Invalid_argument if [lo > hi]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Bernoulli draw. @raise Invalid_argument unless [0 <= p <= 1]. *)
val bool_with_prob : t -> float -> bool

(** Fair coin. *)
val bool : t -> bool

(** In-place Fisher–Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit

(** Fresh shuffled copy of an array. *)
val shuffle : t -> 'a array -> 'a array

(** Uniformly random element. @raise Invalid_argument on empty array. *)
val choose : t -> 'a array -> 'a

(** [sample_without_replacement t ~count arr] is [count] distinct positions'
    elements in random order. @raise Invalid_argument if [count] exceeds the
    array length or is negative. *)
val sample_without_replacement : t -> count:int -> 'a array -> 'a array

(** [weighted_index t weights] draws an index with probability proportional
    to its (non-negative) weight. @raise Invalid_argument if weights are
    empty, negative, or all zero. *)
val weighted_index : t -> float array -> int
