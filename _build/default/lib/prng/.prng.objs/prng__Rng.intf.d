lib/prng/rng.mli:
