open Netgraph

type t = { graph : Graph.t; nu : int; k : int }

let make ~graph ~nu ~k =
  if not (Props.is_valid_instance graph) then
    invalid_arg
      "Model.make: instance graph must be connected, have no isolated \
       vertices, and at least two vertices";
  if nu < 1 then invalid_arg "Model.make: need at least one vertex player";
  if k < 1 || k > Graph.m graph then
    invalid_arg
      (Printf.sprintf "Model.make: k = %d outside [1, m = %d]" k (Graph.m graph));
  { graph; nu; k }

let edge_model t = { t with k = 1 }
let with_k t ~k = make ~graph:t.graph ~nu:t.nu ~k
let graph t = t.graph
let nu t = t.nu
let k t = t.k

let tuple_space_size t =
  let m = Graph.m t.graph and k = t.k in
  (* C(m, k) with overflow detection. *)
  let rec go i acc =
    if i > k then Some acc
    else
      let next = acc * (m - k + i) in
      if next / (m - k + i) <> acc then None else go (i + 1) (next / i)
  in
  go 1 1

let pp fmt t =
  Format.fprintf fmt "Pi_%d(G[n=%d,m=%d], nu=%d)" t.k (Graph.n t.graph)
    (Graph.m t.graph) t.nu
