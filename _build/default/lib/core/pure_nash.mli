(** Pure Nash equilibria of Π_k(G): Theorem 3.1 and Corollaries 3.2–3.3.

    Π_k(G) has a pure NE iff G has an edge cover of size k (iff
    ρ(G) ≤ k ≤ m); in particular no instance with n ≥ 2k + 1 has one. *)

(** Theorem 3.1 decision, in polynomial time (Corollary 3.2). *)
val exists : Model.t -> bool

(** A pure NE when one exists: the defender plays an edge cover of size k
    (catching everyone wherever they stand); attackers' choices are
    irrelevant and default to vertex 0. *)
val construct : Model.t -> Profile.pure option

(** Direct definition check: no player improves by any unilateral pure
    deviation.  The defender's best deviation maximizes coverage over all
    C(m,k) tuples, so this is exponential and guarded by [limit] (the
    maximum number of tuples inspected; default 2_000_000).
    @raise Invalid_argument when the tuple space exceeds the limit. *)
val is_pure_ne : ?limit:int -> Model.t -> Profile.pure -> bool

(** Brute-force existence: search all pure configurations up to attacker
    symmetry (attackers are interchangeable, and only whether each is
    caught matters, so it suffices to let all attackers sit on a common
    best-escape vertex per defender choice).  Used as a test oracle.
    @raise Invalid_argument when the tuple space exceeds [limit]. *)
val exists_brute_force : ?limit:int -> Model.t -> bool

(** Corollary 3.3: [n ≥ 2k+1] forces non-existence. *)
val cor33_applies : Model.t -> bool
