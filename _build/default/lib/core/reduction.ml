open Netgraph

let tuple_to_edge m =
  if not (Tuple_nash.is_k_matching_ne_support m) then
    invalid_arg "Reduction.tuple_to_edge: input is not a k-matching NE support";
  let model = Profile.model m in
  let g = Model.graph model in
  let edge_model = Model.edge_model model in
  let support_edges = Profile.tp_support_edges m in
  let tuples = List.map (fun id -> Tuple.of_list g [ id ]) support_edges in
  Profile.uniform edge_model ~vp_support:(Profile.vp_support_union m)
    ~tp_support:tuples

let edge_to_tuple ~k m =
  let model = Profile.model m in
  if Model.k model <> 1 then
    invalid_arg "Reduction.edge_to_tuple: input must be an Edge-model profile";
  if not (Matching_nash.is_matching_configuration m)
     || not (Matching_nash.lemma21_cover_conditions m)
  then invalid_arg "Reduction.edge_to_tuple: input is not a matching NE support";
  let g = Model.graph model in
  let edges = Profile.tp_support_edges m in
  let e_num = List.length edges in
  if k < 1 || k > Graph.m g then Error (Printf.sprintf "k = %d outside [1, m]" k)
  else if k > e_num then
    Error
      (Printf.sprintf "k = %d exceeds |D(tp)| = %d: cyclic lift impossible" k e_num)
  else
    let lifted_model = Model.with_k model ~k in
    let tuples = Tuple_nash.cyclic_tuples g edges ~k in
    Ok
      (Profile.uniform lifted_model ~vp_support:(Profile.vp_support_union m)
         ~tp_support:tuples)

let round_trip_preserves ~k m =
  match edge_to_tuple ~k m with
  | Error _ -> false
  | Ok lifted ->
      let back = tuple_to_edge lifted in
      Profile.vp_support_union back = Profile.vp_support_union m
      && Profile.tp_support_edges back = Profile.tp_support_edges m
