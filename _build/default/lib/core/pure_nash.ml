open Netgraph

let exists model =
  Matching.Edge_cover.exists_of_size (Model.graph model) (Model.k model)

let construct model =
  match Matching.Edge_cover.of_size (Model.graph model) (Model.k model) with
  | None -> None
  | Some cover ->
      let g = Model.graph model in
      let tp_choice = Tuple.of_list g cover in
      Some
        (Profile.make_pure model
           ~vp_choices:(List.init (Model.nu model) (fun _ -> 0))
           ~tp_choice)

let check_limit model limit =
  match Model.tuple_space_size model with
  | Some c when c <= limit -> ()
  | _ ->
      invalid_arg
        "Pure_nash: tuple space too large for brute-force inspection"

let is_pure_ne ?(limit = 2_000_000) model profile =
  check_limit model limit;
  let g = Model.graph model in
  let t = profile.Profile.tp_choice in
  let all_covered =
    List.length (Tuple.vertices g t) = Graph.n g
  in
  (* Vertex players: a caught player improves by moving to any uncovered
     vertex; an escaped player is already at its maximum profit 1. *)
  let vp_ok =
    Array.for_all
      (fun v -> all_covered || not (Tuple.covers g t v))
      profile.Profile.vp_choices
  in
  vp_ok
  &&
  (* Tuple player: compare with the best achievable coverage count. *)
  let catch choice =
    Array.fold_left
      (fun acc v -> if Tuple.covers g choice v then acc + 1 else acc)
      0 profile.Profile.vp_choices
  in
  let current = catch t in
  let best =
    Tuple.fold_enumerate g ~k:(Model.k model) ~init:0 ~f:(fun acc t' ->
        max acc (catch t'))
  in
  current = best

let exists_brute_force ?(limit = 2_000_000) model =
  check_limit model limit;
  let g = Model.graph model in
  let n = Graph.n g in
  (* Symmetry reduction (see mli): a pure NE exists iff some tuple covers
     every vertex; the search below is the definitional enumeration over
     defender choices with the attacker side resolved analytically. *)
  Tuple.fold_enumerate g ~k:(Model.k model) ~init:false ~f:(fun acc t ->
      acc || List.length (Tuple.vertices g t) = n)

let cor33_applies model = Graph.n (Model.graph model) >= (2 * Model.k model) + 1
