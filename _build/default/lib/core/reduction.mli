(** The polynomial-time reduction of Theorem 4.5 between k-matching NEs of
    Π_k(G) and matching NEs of Π₁(G) (Lemmas 4.6 and 4.8), plus the gain
    relation IP_tp(s) = k · IP_tp(s') (Corollaries 4.7 and 4.10). *)

(** Lemma 4.6: from a k-matching NE of Π_k(G), the matching NE of Π₁(G)
    with the same attacker support and D'(tp) = E(D(tp)), uniform.
    @raise Invalid_argument if the input is not a k-matching NE support. *)
val tuple_to_edge : Profile.mixed -> Profile.mixed

(** Lemma 4.8: from a matching NE of Π₁(G), the k-matching NE of Π_k(G)
    via the cyclic construction.  [Error] if [k > |D'(tp)|] (see the
    feasibility refinement in DESIGN.md).
    @raise Invalid_argument if the input is not a matching NE support. *)
val edge_to_tuple : k:int -> Profile.mixed -> (Profile.mixed, string) result

(** Support-level round-trip check:
    [tuple_to_edge ∘ edge_to_tuple] preserves the attacker support and the
    defender's support edge set. *)
val round_trip_preserves : k:int -> Profile.mixed -> bool
