(** The max-min ("paranoid") defense of the Edge model, for ARBITRARY
    graphs — an extension beyond the paper's matching equilibria.

    The defender choosing a distribution p over single edges to maximize
    the worst-case interception probability min_v Hit(v) solves a linear
    program whose value is 1/ρ*(G), with ρ* the *fractional* minimum
    edge-cover number: scale an optimal fractional edge cover x to a
    distribution p = x/ρ*, so Hit(v) = Σ_{e∋v} x_e / ρ* ≥ 1/ρ*, and no
    distribution beats 1/ρ* (certified by the dual fractional vertex
    packing y: Σ_v y_v·Hit(v) ≤ Σ_e p_e (y_u + y_v) ≤ 1).

    Relation to the paper: on graphs admitting matching NEs the
    equilibrium hit floor is 1/|IS| and (bipartite case) ρ* = ρ = |IS|,
    so the NE defense is exactly max-min optimal.  On graphs with NO
    matching NE (odd cycles, cliques, Petersen) the LP still yields the
    optimal conservative defense — e.g. min-hit 2/5 on C₅, strictly
    better than any integral-cover schedule's 1/3.  Experiment T8.

    Everything is computed by exact-rational simplex ({!Lp.Simplex}), so
    values are certificates. *)

open Netgraph
module Q = Exact.Q

type defense = {
  value : Q.t;  (** max-min interception probability = 1/ρ*(G) *)
  rho_star : Q.t;  (** fractional edge-cover number *)
  marginals : Q.t array;  (** edge distribution, indexed by edge id, sums to 1 *)
  cover : Q.t array;  (** the optimal fractional edge cover x (= ρ*·marginals) *)
  packing : Q.t array;  (** dual certificate y, indexed by vertex *)
}

(** @raise Invalid_argument on a graph with an isolated vertex. *)
val solve : Graph.t -> defense

(** Fractional edge-cover number ρ*(G). *)
val fractional_edge_cover_number : Graph.t -> Q.t

(** min_v Σ_{e∋v} marginals(e): the achieved hit floor (= [value]). *)
val hit_floor : Graph.t -> Q.t array -> Q.t

(** Sanity of a [defense]: cover feasibility, packing feasibility, zero
    duality gap, floor attained.  Used by tests; true for {!solve}. *)
val certified : Graph.t -> defense -> bool
