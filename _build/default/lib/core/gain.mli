(** The paper's headline quantity: the defender's gain and how it scales
    with the power k ("the power of the defender").

    In any k-matching NE with attacker support IS:
    IP_tp = k·ν / |IS| (Corollaries 4.7/4.10) — linear in k — and each
    attacker escapes with probability 1 − k/|IS|. *)

module Q = Exact.Q

(** Expected number of arrested attackers, from the profile (exact). *)
val defender_gain : Profile.mixed -> Q.t

(** Predicted k-matching-NE gain k·ν/|IS| for the profile's model and an
    attacker support of the given size. *)
val predicted_gain : Model.t -> is_size:int -> Q.t

(** Per-attacker escape probability in a k-matching NE: 1 − k/|IS|. *)
val predicted_escape_probability : Model.t -> is_size:int -> Q.t

(** Expected escape probability of attacker [i] from the profile. *)
val escape_probability : Profile.mixed -> int -> Q.t

(** [gain_ratio high low] = IP_tp(high) / IP_tp(low); equals k_high/k_low
    across the reduction (Theorem 4.5). *)
val gain_ratio : Profile.mixed -> Profile.mixed -> Q.t

(** Fraction of attackers arrested: gain/ν. *)
val protection_quality : Profile.mixed -> Q.t

(** Price of Defense (Mavronicolas et al., MFCS 2006 follow-up line):
    ν / IP_tp — how many attackers operate per arrested one.  For a
    k-matching NE this is |IS|/k, so the defender's power k divides the
    price down linearly. @raise Division_by_zero on a zero-gain profile. *)
val price_of_defense : Profile.mixed -> Q.t

(** Predicted Price of Defense |IS|/k of a k-matching NE. *)
val predicted_price_of_defense : Model.t -> is_size:int -> Q.t
