lib/core/model.ml: Format Graph Netgraph Printf Props
