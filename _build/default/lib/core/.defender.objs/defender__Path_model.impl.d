lib/core/path_model.ml: Array Bytes Exact Format Graph Hashtbl List Matching Model Netgraph Option Printf Profile Tuple Verify
