lib/core/pipeline.ml: Bipartite List Matching Matching_nash Model Netgraph Profile Tuple_nash
