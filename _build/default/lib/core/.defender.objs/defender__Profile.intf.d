lib/core/profile.mli: Dist Exact Format Graph Model Netgraph Tuple
