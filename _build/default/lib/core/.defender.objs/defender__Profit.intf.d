lib/core/profit.mli: Exact Model Netgraph Profile Tuple
