lib/core/verify.mli: Profile
