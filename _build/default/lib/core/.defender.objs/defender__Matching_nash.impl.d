lib/core/matching_nash.ml: Array Bipartite Graph List Matching Model Netgraph Printf Profile String Tuple
