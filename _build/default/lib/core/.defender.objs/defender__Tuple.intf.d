lib/core/tuple.mli: Format Graph Netgraph
