lib/core/support_solver.mli: Graph Model Netgraph Profile Tuple
