lib/core/characterization.mli: Format Profile Verify
