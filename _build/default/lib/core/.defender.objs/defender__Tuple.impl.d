lib/core/tuple.ml: Array Format Graph List Netgraph Printf Stdlib String
