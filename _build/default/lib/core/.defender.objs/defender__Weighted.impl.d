lib/core/weighted.ml: Array Dist Exact List Model Printf Profile Profit Tuple Tuple_nash Verify
