lib/core/robustness.mli: Exact Netgraph Profile Tuple
