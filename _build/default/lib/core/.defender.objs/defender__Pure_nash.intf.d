lib/core/pure_nash.mli: Model Profile
