lib/core/matching_nash.mli: Graph Model Netgraph Profile
