lib/core/support_solver.ml: Array Dist Exact Fun Graph List Lp Model Netgraph Profile Tuple Verify
