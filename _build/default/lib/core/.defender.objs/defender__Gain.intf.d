lib/core/gain.mli: Exact Model Profile
