lib/core/pipeline.mli: Matching_nash Model Netgraph Profile
