lib/core/robustness.ml: Best_response Dist Exact Fun List Model Profile Profit Tuple
