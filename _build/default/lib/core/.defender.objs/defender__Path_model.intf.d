lib/core/path_model.mli: Exact Graph Model Netgraph Profile Tuple Verify
