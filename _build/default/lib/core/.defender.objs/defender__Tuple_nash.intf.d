lib/core/tuple_nash.mli: Graph Matching_nash Model Netgraph Profile Tuple
