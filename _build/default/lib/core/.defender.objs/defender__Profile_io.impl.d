lib/core/profile_io.ml: Array Buffer Dist Exact Fun List Model Printf Profile String Tuple
