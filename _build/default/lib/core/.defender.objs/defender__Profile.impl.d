lib/core/profile.ml: Array Dist Exact Format Graph Hashtbl List Model Netgraph Printf Tuple
