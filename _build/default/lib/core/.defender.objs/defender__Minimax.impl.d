lib/core/minimax.ml: Array Exact Fun Graph List Lp Netgraph
