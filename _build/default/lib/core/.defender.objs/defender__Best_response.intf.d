lib/core/best_response.mli: Exact Graph Netgraph Profile Tuple
