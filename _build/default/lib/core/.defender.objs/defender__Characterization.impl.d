lib/core/characterization.ml: Exact Format Graph List Matching Model Netgraph Printf Profile Tuple Verify
