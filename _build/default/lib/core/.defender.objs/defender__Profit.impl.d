lib/core/profit.ml: Array Dist Exact List Model Profile Tuple
