lib/core/minimax.mli: Exact Graph Netgraph
