lib/core/best_response.ml: Array Exact Graph List Model Netgraph Profile Tuple
