lib/core/verify.ml: Best_response Exact List Model Printf Profile Profit
