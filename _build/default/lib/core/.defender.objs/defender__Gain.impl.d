lib/core/gain.ml: Exact Model Profile Profit
