lib/core/model.mli: Format Graph Netgraph
