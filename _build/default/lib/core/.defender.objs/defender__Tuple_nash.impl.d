lib/core/tuple_nash.ml: Array Graph List Matching Matching_nash Model Netgraph Printf Profile Tuple
