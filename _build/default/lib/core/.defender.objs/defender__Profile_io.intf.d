lib/core/profile_io.mli: Model Profile
