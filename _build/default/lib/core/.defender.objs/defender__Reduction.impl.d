lib/core/reduction.ml: Graph List Matching_nash Model Netgraph Printf Profile Tuple Tuple_nash
