lib/core/pure_nash.ml: Array Graph List Matching Model Netgraph Profile Tuple
