lib/core/weighted.mli: Exact Matching_nash Model Netgraph Profile Tuple Verify
