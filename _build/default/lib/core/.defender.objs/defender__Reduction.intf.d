lib/core/reduction.mli: Profile
