open Netgraph

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b
let delta ~e_num ~k = e_num / gcd e_num k
let multiplicity ~e_num ~k = k / gcd e_num k

let is_k_matching_configuration m =
  let g = Model.graph (Profile.model m) in
  let vp = Profile.vp_support_union m in
  let support_tuples = Profile.tp_support m in
  let support_edges = Tuple.edge_union support_tuples in
  let incident_count v =
    List.length
      (List.filter
         (fun id ->
           let e = Graph.edge g id in
           e.Graph.u = v || e.Graph.v = v)
         support_edges)
  in
  Matching.Checks.is_independent_set g vp
  && List.for_all (fun v -> incident_count v = 1) vp
  &&
  (* Condition (3): equal tuple-multiplicity for each support edge. *)
  match support_edges with
  | [] -> false
  | first :: rest ->
      let count id =
        List.length (List.filter (fun t -> Tuple.contains_edge t id) support_tuples)
      in
      let reference = count first in
      List.for_all (fun id -> count id = reference) rest

let is_k_matching_ne_support m =
  let g = Model.graph (Profile.model m) in
  let support_edges = Profile.tp_support_edges m in
  is_k_matching_configuration m
  && Matching.Checks.is_edge_cover g support_edges
  &&
  let sub, _ = Graph.edge_subgraph g support_edges in
  Matching.Checks.is_vertex_cover sub (Profile.vp_support_union m)

let cyclic_tuples g edges ~k =
  let arr = Array.of_list edges in
  let e_num = Array.length arr in
  if List.length (List.sort_uniq compare edges) <> e_num then
    invalid_arg "Tuple_nash.cyclic_tuples: repeated edge id";
  if k < 1 || k > e_num then
    invalid_arg "Tuple_nash.cyclic_tuples: k outside [1, |edges|]";
  let count = delta ~e_num ~k in
  List.init count (fun i ->
      let window = List.init k (fun j -> arr.(((i * k) + j) mod e_num)) in
      Tuple.of_list g window)

let a_tuple model partition =
  let g = Model.graph model in
  let k = Model.k model in
  match Matching_nash.support_edges g partition with
  | Error _ as e -> e
  | Ok edges ->
      let e_num = List.length edges in
      if k > e_num then
        Error
          (Printf.sprintf
             "k = %d exceeds |IS| = %d: no k-matching NE exists on this \
              partition (|E(D(tp))| = |IS| in any k-matching NE)"
             k e_num)
      else
        let tuples = cyclic_tuples g edges ~k in
        Ok (Profile.uniform model ~vp_support:partition.Matching_nash.is ~tp_support:tuples)

let a_tuple_auto model =
  match Matching_nash.find_partition (Model.graph model) with
  | None -> Error "no admissible (IS, VC) partition found"
  | Some p -> a_tuple model p
