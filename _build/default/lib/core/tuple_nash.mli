(** k-matching configurations and k-matching Nash equilibria of the Tuple
    model (Definition 4.1, Lemma 4.1) and Algorithm [A_tuple] (Figure 1).

    Feasibility refinement (see DESIGN.md): in any k-matching NE,
    [|E(D(tp))| = |IS|], so such equilibria exist only for [k ≤ |IS|];
    the constructors return [Error] beyond that bound. *)

open Netgraph

(** Definition 4.1: (1) D(VP) independent, (2) each support vertex incident
    to exactly one edge of E(D(tp)), (3) every edge of E(D(tp)) appears in
    the same number of support tuples. *)
val is_k_matching_configuration : Profile.mixed -> bool

(** Definition 4.2: a k-matching configuration additionally satisfying
    condition 1 of Theorem 3.4 (supports only; probabilities are checked
    separately by {!Characterization}). *)
val is_k_matching_ne_support : Profile.mixed -> bool

(** Step 3 of [A_tuple]: the cyclic windows over an ordered edge list.
    [cyclic_tuples g edges ~k] returns δ = E_num / gcd(E_num, k) tuples,
    each of k consecutive edges (mod E_num), each edge appearing in
    exactly k / gcd(E_num, k) of them (Claim 4.9; the paper's displayed
    formula [k·gcd/E_num] is a typo for this value — its own derivation
    δ·k/E_num gives k/gcd).
    @raise Invalid_argument if [k > |edges|] or [edges] repeats an id. *)
val cyclic_tuples : Graph.t -> Graph.edge_id list -> k:int -> Tuple.t list

(** δ = E_num / gcd(E_num, k): number of tuples built by {!cyclic_tuples}. *)
val delta : e_num:int -> k:int -> int

(** Per-edge multiplicity k / gcd(E_num, k) in the cyclic construction. *)
val multiplicity : e_num:int -> k:int -> int

(** Algorithm [A_tuple] (Figure 1): matching NE of Π₁(G) via algorithm
    [A], then the cyclic lift, then uniform probabilities per Lemma 4.1.
    Fails when the partition is inadmissible or [k > |is|]. *)
val a_tuple : Model.t -> Matching_nash.partition -> (Profile.mixed, string) result

(** [A_tuple] with the partition discovered automatically
    ({!Matching_nash.find_partition}). *)
val a_tuple_auto : Model.t -> (Profile.mixed, string) result

val gcd : int -> int -> int
val lcm : int -> int -> int
