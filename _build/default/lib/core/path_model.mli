(** The Path model: the variation of [8] cited by the paper's related
    work, in which the defender cleans a simple path of k links instead
    of an arbitrary k-tuple.

    A path strategy is a tuple of k edges that forms a simple path
    (k+1 distinct vertices).  Restricting the defender's strategy space
    changes the pure-equilibrium landscape sharply: a k-edge path covers
    exactly k+1 vertices, so (by the Theorem 3.1 argument, which carries
    over verbatim) a pure NE exists iff k = n−1 and G has a Hamiltonian
    path — a far stronger demand than the Tuple model's ρ(G) ≤ k.
    Experiment P1 contrasts the two thresholds. *)

open Netgraph

(** [is_path g ids]: do these edge ids form a simple path (connected,
    all internal degrees 2, endpoints degree 1, no repeated vertex)?  A
    single edge is a path. *)
val is_path : Graph.t -> Graph.edge_id list -> bool

(** All simple paths with exactly [k] edges, as canonical tuples
    (deduplicated across the two traversal directions).  Exponential;
    guarded. @raise Invalid_argument if more than [limit] paths are
    produced (default 2_000_000) or [k < 1]. *)
val enumerate_paths : ?limit:int -> Graph.t -> k:int -> Tuple.t list

(** A Hamiltonian path, by Held–Karp bitmask DP.
    @raise Invalid_argument if [n > 22]. *)
val hamiltonian_path : Graph.t -> Graph.vertex list option

val has_hamiltonian_path : Graph.t -> bool

(** Pure NE existence in the Path model: [k = n-1] and a Hamiltonian
    path exists (see above). @raise Invalid_argument if [n > 22]. *)
val pure_ne_exists : Model.t -> bool

(** A pure NE profile of the Path model (defender on a Hamiltonian
    path), when one exists. *)
val construct_pure_ne : Model.t -> Profile.pure option

(** Best-response value of the path-constrained defender against a mixed
    profile: max over k-edge simple paths of m_s(t).  Same enumeration
    guard as {!enumerate_paths}. *)
val tp_best_value : ?limit:int -> Profile.mixed -> Exact.Q.t

(** Definitional mixed-NE check for the Path model: the profile's support
    tuples must all be simple paths, attackers must sit on minimum-hit
    vertices, and every support path must attain {!tp_best_value}. *)
val is_mixed_ne : ?limit:int -> Profile.mixed -> Verify.verdict

(** Smallest defender power granting a pure NE, Tuple vs Path model:
    [(rho g, Some (n-1))] when a Hamiltonian path exists, [(rho g, None)]
    otherwise. @raise Invalid_argument if [n > 22]. *)
val pure_thresholds : Graph.t -> int * int option
