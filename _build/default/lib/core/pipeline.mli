(** Theorem 5.1: the bipartite application, end to end.

    For bipartite G: compute a minimum vertex cover VC by König, set
    IS = V \ VC, and run [A_tuple].  Total time
    max{O(k·n), O(m√n)} — dominated by Hopcroft–Karp. *)

type outcome = {
  profile : Profile.mixed;
  partition : Matching_nash.partition;
  edge_profile : Profile.mixed;  (** the intermediate Π₁ matching NE *)
}

(** @raise Invalid_argument if the model's graph is not bipartite.
    [Error] when [k > |IS|] (feasibility refinement). *)
val solve : Model.t -> (outcome, string) result

(** Largest power admitting a k-matching NE on bipartite G: |IS| of the
    König partition. @raise Invalid_argument if not bipartite. *)
val max_feasible_k : Netgraph.Graph.t -> int
