(** Text serialization of mixed configurations, so computed equilibria can
    be stored, audited, and re-verified later (CLI: `solve --save`,
    `verify --load`).

    Format (line-oriented, '#' comments):
    {v
    profile v1
    nu <int> k <int>
    vp <i> <vertex>:<num>/<den> ...
    tp <edge,edge,...>:<num>/<den> ...
    v}
    Probabilities are exact rationals, so a round trip is lossless.  The
    graph itself is not embedded — the loader takes it as an argument and
    validates the profile against it. *)

(** Render a profile (without its graph). *)
val to_string : Profile.mixed -> string

(** Parse against a model.  @raise Invalid_argument on syntax errors or
    inconsistency with the model (wrong ν, k, out-of-range vertices or
    edges, probabilities not summing to 1). *)
val of_string : Model.t -> string -> Profile.mixed

val save : string -> Profile.mixed -> unit
val load : Model.t -> string -> Profile.mixed
