(** Matching configurations and matching Nash equilibria of the Edge model
    (Definition 2.2, Lemma 2.1, Theorem 2.2 — all from [7]), including the
    reconstruction of the algorithm [A] that {!Tuple_nash} uses as a
    subroutine (see DESIGN.md for the reconstruction). *)

open Netgraph

(** Definition 2.2 on a Π₁ profile: D(VP) independent and every support
    vertex incident to exactly one support edge.
    @raise Invalid_argument if the profile's model has [k <> 1]. *)
val is_matching_configuration : Profile.mixed -> bool

(** Conditions (ii)–(iii) of Lemma 2.1: support edges form an edge cover
    and D(VP) is a vertex cover of the graph they span. *)
val lemma21_cover_conditions : Profile.mixed -> bool

(** Validated input partition for algorithm [A]. *)
type partition = { is : Graph.vertex list; vc : Graph.vertex list }

(** [partition_of_is g is] completes an independent set to a partition.
    @raise Invalid_argument if [is] is not independent or not within
    range. *)
val partition_of_is : Graph.t -> Graph.vertex list -> partition

(** Theorem 2.2 test for a specific partition: [is] independent (checked)
    and G a [vc]-expander (Hall, polynomial). *)
val partition_admits : Graph.t -> partition -> bool

(** Search for a partition satisfying Theorem 2.2.  Fast path: bipartite
    graphs via König (Theorem 5.1's route).  General graphs fall back to
    enumerating maximal independent sets, exponential and guarded to
    [n ≤ 20]. *)
val find_partition : Graph.t -> partition option

(** All admissible partitions with maximal independent [is] (maximal ones
    suffice, see {!find_partition}), sorted by |is| ascending.

    Selection-independence invariant (proved in DESIGN.md, verified by
    experiment T11): every admissible partition has
    [|is| = α(G) = ρ(G)] — admissibility forces [|is| ≥ n − μ = ρ] via
    the saturating matching while independence caps [|is| ≤ α ≤ ρ] — so
    distinct matching NEs all share the same gain k·ν/ρ, and such
    equilibria exist only on König–Egerváry graphs ([τ = μ]).
    Exponential; @raise Invalid_argument if [n > 20]. *)
val all_partitions : Graph.t -> partition list

(** The admissible partitions of minimum and maximum |is|; by the
    invariant above the two sizes coincide.  [None] if none exists.
    @raise Invalid_argument if [n > 20]. *)
val extremal_partitions : Graph.t -> (partition * partition) option

(** Algorithm [A]: a matching NE of Π₁(G) from a valid partition.
    Returns [Error] (with the Hall violator) when G is not a
    [vc]-expander. @raise Invalid_argument if the model has [k <> 1] or
    [is] is not independent. *)
val solve : Model.t -> partition -> (Profile.mixed, string) result

(** The support edges algorithm [A] picks — one per [is] vertex, jointly
    covering [vc] — exposed for the reduction and for tests. *)
val support_edges : Graph.t -> partition -> (Graph.edge_id list, string) result

(** End-to-end convenience: find a partition and solve. *)
val solve_auto : Model.t -> (Profile.mixed, string) result
