open Netgraph

type outcome = {
  profile : Profile.mixed;
  partition : Matching_nash.partition;
  edge_profile : Profile.mixed;
}

let koenig_partition g =
  if not (Bipartite.is_bipartite g) then
    invalid_arg "Pipeline: graph is not bipartite";
  let koenig = Matching.Koenig.solve g in
  {
    Matching_nash.is = koenig.Matching.Koenig.independent_set;
    vc = koenig.Matching.Koenig.vertex_cover;
  }

let solve model =
  let g = Model.graph model in
  let partition = koenig_partition g in
  match Matching_nash.solve (Model.edge_model model) partition with
  | Error _ as e -> e
  | Ok edge_profile -> (
      match Tuple_nash.a_tuple model partition with
      | Error _ as e -> e
      | Ok profile -> Ok { profile; partition; edge_profile })

let max_feasible_k g = List.length (koenig_partition g).Matching_nash.is
