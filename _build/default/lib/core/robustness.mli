(** Equilibrium sensitivity: how fast does a Nash equilibrium degrade
    under strategy perturbation?

    Operationally relevant: a deployed scan schedule drifts (clock skew,
    operator overrides).  The regret of a profile is the largest gain any
    single player could realize by a unilateral best response; it is 0
    exactly at an NE, and a profile with regret ≤ ε is an ε-NE.
    Experiment F5 shows regret grows linearly in the tilt ε around the
    constructed equilibria. *)

module Q = Exact.Q

type regret = {
  attacker : Q.t;  (** max over vertex players of best-response gain *)
  defender : Q.t;  (** defender's best-response gain *)
}

(** Exact regrets; the defender side uses the given {!Verify.mode}-style
    enumeration limit. @raise Invalid_argument when the tuple space
    exceeds [limit] (default 2_000_000). *)
val regret : ?limit:int -> Profile.mixed -> regret

val max_regret : regret -> Q.t

(** [is_epsilon_ne ?limit profile ~epsilon]: every unilateral deviation
    improves by at most [epsilon]. *)
val is_epsilon_ne : ?limit:int -> Profile.mixed -> epsilon:Q.t -> bool

(** [tilt_vp profile i ~epsilon ~towards] replaces player [i]'s strategy
    by [(1-epsilon)·current + epsilon·point towards].
    @raise Invalid_argument unless [0 <= epsilon <= 1]. *)
val tilt_vp : Profile.mixed -> int -> epsilon:Q.t -> towards:Netgraph.Graph.vertex -> Profile.mixed

(** Same for the defender, tilting toward one tuple of its support.
    @raise Invalid_argument unless [0 <= epsilon <= 1] and [towards] has
    the right size. *)
val tilt_tp : Profile.mixed -> epsilon:Q.t -> towards:Tuple.t -> Profile.mixed
