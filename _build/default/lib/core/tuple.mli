(** Defender pure strategies: tuples of k distinct edges.

    Payoffs depend only on the edge set, so tuples are canonicalized as
    strictly increasing arrays of edge ids; structural equality is value
    equality. *)

open Netgraph

type t = private Graph.edge_id array

(** Canonicalize a list of edge ids.
    @raise Invalid_argument on duplicates, an empty list, or ids outside
    the graph. *)
val of_list : Graph.t -> Graph.edge_id list -> t

(** The edge ids, ascending. *)
val to_list : t -> Graph.edge_id list

val size : t -> int

val contains_edge : t -> Graph.edge_id -> bool

(** V(t): distinct endpoints of the tuple's edges, sorted. *)
val vertices : Graph.t -> t -> Graph.vertex list

(** [covers g t v]: is [v] an endpoint of some edge of [t]? *)
val covers : Graph.t -> t -> Graph.vertex -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

(** All tuples of [k] distinct edges of the graph, in lexicographic order.
    Exponential; guarded. @raise Invalid_argument if C(m,k) > [limit]
    (default 2_000_000). *)
val enumerate : ?limit:int -> Graph.t -> k:int -> t list

(** Fold over all k-subsets without materializing the list. *)
val fold_enumerate : Graph.t -> k:int -> init:'a -> f:('a -> t -> 'a) -> 'a

(** E(T) for a set of tuples: union of their edges, sorted. *)
val edge_union : t list -> Graph.edge_id list

(** V(T): union of endpoint sets, sorted. *)
val vertex_union : Graph.t -> t list -> Graph.vertex list

val pp : Format.formatter -> t -> unit
