(** Weighted attackers: a generalization beyond the paper in which vertex
    player i carries a positive damage weight w_i (a high-value worm vs a
    nuisance scanner).  The defender's profit becomes the expected
    arrested *damage* Σ_i w_i·[caught i]; each attacker still maximizes
    its own escape probability (scaling by its own weight changes
    nothing for it).

    The paper's k-matching construction survives verbatim: hit
    probabilities do not depend on weights (attacker side unchanged), and
    with every attacker uniform on IS the weighted load is W/|IS| per IS
    vertex (W = Σw), so support tuples still tie at the maximum
    k·W/|IS|.  Hence the gain law generalizes to IP_tp = k·W/|IS| — the
    defender's power multiplies expected damage interdicted, not just
    the body count.  Verified by tests and experiment T10. *)

module Q = Exact.Q

type t = private { model : Model.t; weights : Q.t array }

(** @raise Invalid_argument unless exactly ν strictly positive weights. *)
val make : Model.t -> weights:Q.t list -> t

val total_weight : t -> Q.t

(** Weighted load mw_s(v) = Σ_i w_i·P(vp_i = v). *)
val expected_load : t -> Profile.mixed -> Netgraph.Graph.vertex -> Q.t

(** Weighted load of a tuple: Σ_{v ∈ V(t)} mw_s(v). *)
val expected_load_tuple : t -> Profile.mixed -> Tuple.t -> Q.t

(** Defender's expected arrested damage. *)
val expected_tp : t -> Profile.mixed -> Q.t

(** Attacker i's expected escaped damage: w_i·(1 − caught prob). *)
val expected_vp : t -> Profile.mixed -> int -> Q.t

(** Definitional weighted-NE check; the defender's best response
    maximizes weighted coverage over C(m,k) tuples (enumerated, guarded
    by [limit], default 2_000_000). *)
val verify_ne : ?limit:int -> t -> Profile.mixed -> Verify.verdict

(** The k-matching construction on a valid partition; an NE for every
    weight vector (see above). *)
val a_tuple : t -> Matching_nash.partition -> (Profile.mixed, string) result

(** Predicted equilibrium gain k·W/|IS|. *)
val predicted_gain : t -> is_size:int -> Q.t
