module Q = Exact.Q
module Finite = Dist.Finite

type regret = { attacker : Q.t; defender : Q.t }

let regret ?(limit = 2_000_000) m =
  let nu = Model.nu (Profile.model m) in
  let best_vp = Best_response.vp_best_value m in
  let attacker =
    List.fold_left
      (fun acc i -> Q.max acc (Q.sub best_vp (Profit.expected_vp m i)))
      Q.zero
      (List.init nu Fun.id)
  in
  let best_tp = Best_response.tp_best_value_exhaustive ~limit m in
  let defender = Q.max Q.zero (Q.sub best_tp (Profit.expected_tp m)) in
  { attacker; defender }

let max_regret r = Q.max r.attacker r.defender

let is_epsilon_ne ?limit m ~epsilon = Q.( <= ) (max_regret (regret ?limit m)) epsilon

let check_epsilon epsilon =
  if Q.( < ) epsilon Q.zero || Q.( > ) epsilon Q.one then
    invalid_arg "Robustness: epsilon outside [0, 1]"

let tilt_vp m i ~epsilon ~towards =
  check_epsilon epsilon;
  let current = Profile.vp_strategy m i in
  let keep = Q.sub Q.one epsilon in
  let outcomes = List.sort_uniq compare (towards :: Finite.support current) in
  let mixed =
    List.map
      (fun v ->
        let base = Q.mul keep (Finite.prob current v) in
        let bonus = if v = towards then epsilon else Q.zero in
        (v, Q.add base bonus))
      outcomes
  in
  Profile.replace_vp m i (Finite.make mixed)

let tilt_tp m ~epsilon ~towards =
  check_epsilon epsilon;
  let keep = Q.sub Q.one epsilon in
  let strategy = Profile.tp_strategy m in
  let present = List.exists (fun (t, _) -> Tuple.equal t towards) strategy in
  let scaled = List.map (fun (t, p) -> (t, Q.mul keep p)) strategy in
  let with_bonus =
    if present then
      List.map
        (fun (t, p) -> if Tuple.equal t towards then (t, Q.add p epsilon) else (t, p))
        scaled
    else (towards, epsilon) :: scaled
  in
  let positive = List.filter (fun (_, p) -> Q.sign p > 0) with_bonus in
  Profile.replace_tp m positive
