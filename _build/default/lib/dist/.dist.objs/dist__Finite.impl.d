lib/dist/finite.ml: Array Exact Format Hashtbl List Option Printf Prng
