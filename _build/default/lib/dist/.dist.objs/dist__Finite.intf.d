lib/dist/finite.mli: Exact Format Prng
