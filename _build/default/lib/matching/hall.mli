(** The `VC`-expander condition of the paper (Section 2.1), under the
    reading documented in DESIGN.md: with [is = V \ vc],

      G is a [vc]-expander  iff  ∀ X ⊆ vc, |Neigh_G(X) ∩ is| ≥ |X|,

    i.e. Hall's condition on the bipartite graph of G-edges crossing the
    partition.  By Hall's theorem this holds iff that bipartite graph has a
    matching saturating [vc] — giving a polynomial-time decision procedure
    and, when satisfied, the saturating matching that the matching-NE
    construction of [7] needs. *)

open Netgraph

type verdict = {
  expander : bool;
  saturating_matching : Graph.edge_id list option;
      (** for each [vc] vertex one crossing edge to a distinct [is]
          vertex; present iff [expander] *)
  violating_set : Graph.vertex list option;
      (** a deficient [X ⊆ vc] (|N(X) ∩ is| < |X|); present iff not
          [expander] *)
}

(** Decide the expander condition for subset [vc] expanding into its
    complement. @raise Invalid_argument on out-of-range/duplicate
    vertices. *)
val check : Graph.t -> vc:Graph.vertex list -> verdict

(** Exhaustive reference (2^|vc| subsets) used to validate [check] in
    tests. @raise Invalid_argument if [|vc| > 20]. *)
val check_exhaustive : Graph.t -> vc:Graph.vertex list -> bool
