open Netgraph

let adjacency_masks g =
  let n = Graph.n g in
  let masks = Array.make n 0 in
  Graph.iter_edges g ~f:(fun _ e ->
      masks.(e.Graph.u) <- masks.(e.Graph.u) lor (1 lsl e.Graph.v);
      masks.(e.Graph.v) <- masks.(e.Graph.v) lor (1 lsl e.Graph.u));
  masks

let vertices_of_mask n mask =
  let out = ref [] in
  for v = n - 1 downto 0 do
    if mask land (1 lsl v) <> 0 then out := v :: !out
  done;
  !out

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

let maximum g =
  let n = Graph.n g in
  if n > 30 then invalid_arg "Independent.maximum: graph too large";
  let adj = adjacency_masks g in
  let best = ref 0 and best_mask = ref 0 in
  (* Branch on the lowest candidate vertex: include it (dropping its
     neighbours) or exclude it; prune when even taking everything left
     cannot beat the incumbent. *)
  let rec go candidates chosen count =
    if count + popcount candidates <= !best then ()
    else if candidates = 0 then begin
      best := count;
      best_mask := chosen
    end
    else begin
      let v = candidates land -candidates in
      let vi =
        (* index of the single set bit *)
        let rec idx m i = if m = 1 then i else idx (m lsr 1) (i + 1) in
        idx v 0
      in
      go (candidates land lnot (v lor adj.(vi))) (chosen lor v) (count + 1);
      go (candidates land lnot v) chosen count
    end
  in
  go ((1 lsl n) - 1) 0 0;
  vertices_of_mask n !best_mask

let independence_number g = List.length (maximum g)

let all_maximal g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Independent.all_maximal: graph too large";
  let adj = adjacency_masks g in
  let results = ref [] in
  (* Bron–Kerbosch (no pivot; fine at this size) on the complement:
     maximal independent sets of g. *)
  let rec go chosen candidates excluded =
    if candidates = 0 && excluded = 0 then
      results := vertices_of_mask n chosen :: !results
    else begin
      let rec loop candidates excluded =
        if candidates <> 0 then begin
          let v = candidates land -candidates in
          let vi =
            let rec idx m i = if m = 1 then i else idx (m lsr 1) (i + 1) in
            idx v 0
          in
          let non_adj = lnot (v lor adj.(vi)) in
          go (chosen lor v) (candidates land non_adj) (excluded land non_adj);
          loop (candidates land lnot v) (excluded lor v)
        end
      in
      loop candidates excluded
    end
  in
  go 0 ((1 lsl n) - 1) 0;
  List.sort compare !results
