(** König's theorem machinery for bipartite graphs: minimum vertex cover and
    maximum independent set from a maximum matching.

    These feed Theorem 5.1: the bipartite application computes a minimum
    vertex cover [VC] and uses [IS = V \ VC] as the attacker support. *)

open Netgraph

type t = {
  vertex_cover : Graph.vertex list;  (** a minimum vertex cover, sorted *)
  independent_set : Graph.vertex list;  (** its complement (maximum IS), sorted *)
  matching : Hopcroft_karp.result;  (** the maximum matching used *)
}

(** @raise Invalid_argument if [g] is not bipartite. *)
val solve : Graph.t -> t

(** Minimum vertex-cover size of a bipartite graph (= μ by König). *)
val vertex_cover_number : Graph.t -> int
