(** Greedy baselines: cheap structures used as references and baselines in
    tests and benchmarks (a maximal matching is a 1/2-approximation of the
    maximum; its endpoints are a 2-approximation of minimum vertex cover). *)

open Netgraph

(** Greedy maximal matching in edge-id order. *)
val maximal_matching : Graph.t -> Graph.edge_id list

(** Endpoints of a greedy maximal matching: a vertex cover of size at most
    twice the minimum. *)
val two_approx_vertex_cover : Graph.t -> Graph.vertex list

(** Greedy independent set by ascending degree. *)
val greedy_independent_set : Graph.t -> Graph.vertex list
