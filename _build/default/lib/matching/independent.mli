(** Exact maximum independent set for small graphs (branch and bound).
    Used as a test oracle against König on bipartite instances, and to
    enumerate candidate supports in the brute-force NE search. *)

open Netgraph

(** A maximum independent set. @raise Invalid_argument if [n > 30]. *)
val maximum : Graph.t -> Graph.vertex list

(** Independence number α(G). @raise Invalid_argument if [n > 30]. *)
val independence_number : Graph.t -> int

(** All maximal independent sets (each sorted). @raise Invalid_argument if
    [n > 20]. *)
val all_maximal : Graph.t -> Graph.vertex list list
