open Netgraph

let covered_mark g ids =
  let mark = Array.make (Graph.n g) false in
  List.iter
    (fun id ->
      let e = Graph.edge g id in
      mark.(e.Graph.u) <- true;
      mark.(e.Graph.v) <- true)
    ids;
  mark

let is_matching g ids =
  let count = Array.make (Graph.n g) 0 in
  List.for_all
    (fun id ->
      let e = Graph.edge g id in
      count.(e.Graph.u) <- count.(e.Graph.u) + 1;
      count.(e.Graph.v) <- count.(e.Graph.v) + 1;
      count.(e.Graph.u) <= 1 && count.(e.Graph.v) <= 1)
    ids

let is_edge_cover g ids =
  let mark = covered_mark g ids in
  Array.for_all Fun.id mark

let covers_vertices g ids vs =
  let mark = covered_mark g ids in
  List.for_all (fun v -> mark.(v)) vs

let is_vertex_cover g vs =
  let mark = Array.make (Graph.n g) false in
  List.iter (fun v -> mark.(v) <- true) vs;
  Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
      acc && (mark.(e.Graph.u) || mark.(e.Graph.v)))

let is_independent_set g vs =
  let mark = Array.make (Graph.n g) false in
  List.iter (fun v -> mark.(v) <- true) vs;
  Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
      acc && not (mark.(e.Graph.u) && mark.(e.Graph.v)))

let saturates g ids vs = covers_vertices g ids vs

let covered_vertices g ids =
  let mark = covered_mark g ids in
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if mark.(v) then out := v :: !out
  done;
  !out

let uncovered_vertices g ids =
  let mark = covered_mark g ids in
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not mark.(v) then out := v :: !out
  done;
  !out
