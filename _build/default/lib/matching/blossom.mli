(** Edmonds' blossom algorithm: maximum matching in general graphs, O(n³).

    Needed because the Tuple model is defined on arbitrary graphs: the
    minimum edge cover behind Theorem 3.1 is [n - μ(G)] with [μ] the general
    maximum-matching number (Gallai), not the bipartite one. *)

open Netgraph

type result = {
  size : int;  (** number of matched pairs, μ(G) *)
  mate : Graph.vertex array;  (** partner per vertex, [-1] if unmatched *)
  edges : Graph.edge_id list;  (** the matching as edge ids *)
}

val max_matching : Graph.t -> result

(** Maximum matching size μ(G) only. *)
val matching_number : Graph.t -> int
