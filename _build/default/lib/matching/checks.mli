(** Predicates for the covering/matching structures of the paper's Section
    2.1.  All take edge ids / vertices of the ambient graph. *)

open Netgraph

(** No two edges share a vertex. *)
val is_matching : Graph.t -> Graph.edge_id list -> bool

(** Every vertex of [g] is an endpoint of some listed edge. *)
val is_edge_cover : Graph.t -> Graph.edge_id list -> bool

(** Every listed vertex is covered (touched) by some listed edge. *)
val covers_vertices : Graph.t -> Graph.edge_id list -> Graph.vertex list -> bool

(** Every edge of [g] has an endpoint in the set. *)
val is_vertex_cover : Graph.t -> Graph.vertex list -> bool

(** No edge of [g] joins two vertices of the set. *)
val is_independent_set : Graph.t -> Graph.vertex list -> bool

(** [saturates g matching vs]: every vertex of [vs] is matched. *)
val saturates : Graph.t -> Graph.edge_id list -> Graph.vertex list -> bool

(** Vertices covered by the listed edges, sorted and deduplicated. *)
val covered_vertices : Graph.t -> Graph.edge_id list -> Graph.vertex list

(** Vertices NOT covered by the listed edges, sorted. *)
val uncovered_vertices : Graph.t -> Graph.edge_id list -> Graph.vertex list
