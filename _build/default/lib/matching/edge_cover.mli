(** Minimum edge covers via Gallai's identity ρ(G) = n − μ(G).

    All functions require a graph without isolated vertices (an isolated
    vertex admits no edge cover); they raise [Invalid_argument] otherwise. *)

open Netgraph

(** Minimum edge-cover size ρ(G). *)
val rho : Graph.t -> int

(** A minimum edge cover: a maximum matching completed by one arbitrary
    incident edge per unmatched vertex. *)
val minimum : Graph.t -> Graph.edge_id list

(** [of_size g k] is an edge cover with exactly [k] distinct edges — a
    minimum cover padded with unused edges — or [None] when [k < ρ(G)] or
    [k > m].  This is the witness for Theorem 3.1's pure NE. *)
val of_size : Graph.t -> int -> Graph.edge_id list option

(** [exists_of_size g k] decides [ρ(G) ≤ k ≤ m] (Corollary 3.2's
    polynomial-time test). *)
val exists_of_size : Graph.t -> int -> bool
