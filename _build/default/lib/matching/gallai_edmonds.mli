(** The Gallai–Edmonds decomposition: the canonical structure theorem of
    maximum matchings.

    [d]: inessential vertices (missed by at least one maximum matching);
    [a]: their outside neighbours (the separating set);
    [c]: the rest (perfectly matchable among themselves).

    Computed by the robust definitional route — v ∈ D iff
    μ(G − v) = μ(G) — at O(n) blossom runs, which is plenty for the
    instance sizes this project analyses.  Used to reason about which
    graphs can carry matching equilibria: admissible partitions force
    τ = μ (König–Egerváry, see DESIGN.md), and deviations from KE-ness
    show up as odd structure inside [d]. *)

open Netgraph

type t = {
  d : Graph.vertex list;  (** inessential vertices, sorted *)
  a : Graph.vertex list;  (** N(D) \ D, sorted *)
  c : Graph.vertex list;  (** remaining vertices, sorted *)
  mu : int;  (** maximum matching size of the whole graph *)
}

val decompose : Graph.t -> t

(** [is_inessential g v]: some maximum matching misses [v]
    (μ(G−v) = μ(G)). *)
val is_inessential : Graph.t -> Graph.vertex -> bool

(** Gallai–Edmonds consequences used as test oracles: every component of
    G[D] is factor-critical, so in particular G has a perfect matching
    iff [d = []]. *)
val has_perfect_matching : Graph.t -> bool
