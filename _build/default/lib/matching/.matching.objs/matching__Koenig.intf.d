lib/matching/koenig.mli: Graph Hopcroft_karp Netgraph
