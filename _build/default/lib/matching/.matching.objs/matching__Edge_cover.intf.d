lib/matching/edge_cover.mli: Graph Netgraph
