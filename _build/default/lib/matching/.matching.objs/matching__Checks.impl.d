lib/matching/checks.ml: Array Fun Graph List Netgraph
