lib/matching/maximal.ml: Array Fun Graph List Netgraph
