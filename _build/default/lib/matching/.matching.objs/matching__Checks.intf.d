lib/matching/checks.mli: Graph Netgraph
