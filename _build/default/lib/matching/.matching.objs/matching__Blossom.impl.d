lib/matching/blossom.ml: Array Fun Graph Netgraph Queue
