lib/matching/independent.mli: Graph Netgraph
