lib/matching/maximal.mli: Graph Netgraph
