lib/matching/edge_cover.ml: Array Blossom Graph List Netgraph
