lib/matching/independent.ml: Array Graph List Netgraph
