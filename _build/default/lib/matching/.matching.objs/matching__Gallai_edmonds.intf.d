lib/matching/gallai_edmonds.mli: Graph Netgraph
