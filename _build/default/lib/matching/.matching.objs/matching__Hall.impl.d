lib/matching/hall.ml: Array Graph Hopcroft_karp List Netgraph Queue
