lib/matching/blossom.mli: Graph Netgraph
