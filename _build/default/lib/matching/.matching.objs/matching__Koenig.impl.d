lib/matching/koenig.ml: Array Bipartite Graph Hopcroft_karp List Netgraph Queue
