lib/matching/hopcroft_karp.ml: Array Bipartite Graph List Netgraph Queue
