lib/matching/hall.mli: Graph Netgraph
