lib/matching/hopcroft_karp.mli: Graph Netgraph
