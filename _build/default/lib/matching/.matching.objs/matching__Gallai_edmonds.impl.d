lib/matching/gallai_edmonds.ml: Array Blossom Graph Netgraph
