(** Hopcroft–Karp maximum bipartite matching, O(m √n).

    Operates on an arbitrary graph restricted to the edges crossing a given
    disjoint vertex bipartition [(left, right)].  Vertices outside the two
    sides (and edges not crossing them) are ignored, which is exactly what
    the `VC`-expander test needs on general graphs. *)

open Netgraph

type result = {
  size : int;  (** number of matched pairs *)
  mate : Graph.vertex array;
      (** [mate.(v)] is [v]'s partner, or [-1]; indexed by graph vertex *)
  edges : Graph.edge_id list;  (** matching as edge ids of the host graph *)
}

(** @raise Invalid_argument if [left] and [right] intersect or contain
    out-of-range or duplicated vertices. *)
val max_matching : Graph.t -> left:Graph.vertex list -> right:Graph.vertex list -> result

(** Convenience: maximum matching of a bipartite graph using its
    2-colouring. @raise Invalid_argument if [g] is not bipartite. *)
val max_matching_bipartite : Graph.t -> result
