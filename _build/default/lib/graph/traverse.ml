let bfs_order g root =
  let visited = Array.make (Graph.n g) false in
  let queue = Queue.create () in
  Queue.add root queue;
  visited.(root) <- true;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    Array.iter
      (fun w ->
        if not visited.(w) then begin
          visited.(w) <- true;
          Queue.add w queue
        end)
      (Graph.neighbors g v)
  done;
  List.rev !order

let dfs_order g root =
  let visited = Array.make (Graph.n g) false in
  let order = ref [] in
  let rec go v =
    if not visited.(v) then begin
      visited.(v) <- true;
      order := v :: !order;
      Array.iter go (Graph.neighbors g v)
    end
  in
  go root;
  List.rev !order

let distances g root =
  let dist = Array.make (Graph.n g) (-1) in
  let queue = Queue.create () in
  dist.(root) <- 0;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Graph.neighbors g v)
  done;
  dist

let components g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let comp = bfs_order g v in
      List.iter (fun w -> seen.(w) <- true) comp;
      comps := List.sort compare comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g =
  match components g with [] | [ _ ] -> true | _ -> false

let shortest_path g u v =
  let dist = distances g u in
  if dist.(v) < 0 then None
  else begin
    (* Walk back from [v] along strictly decreasing distances. *)
    let rec back w acc =
      if w = u then w :: acc
      else
        let pred =
          Array.to_list (Graph.neighbors g w)
          |> List.find (fun x -> dist.(x) = dist.(w) - 1)
        in
        back pred (w :: acc)
    in
    Some (back v [])
  end
