(** graph6 encoding (McKay's format, as used by nauty/geng and most graph
    repositories): a printable-ASCII serialization of simple undirected
    graphs.  Lets the library exchange instances with the wider
    graph-theory toolchain. *)

(** Encode. @raise Invalid_argument for [n > 258047] (the 3-byte size
    form; longer forms are not needed at our scales). *)
val encode : Graph.t -> string

(** Decode one graph6 line (optional trailing newline tolerated).
    @raise Invalid_argument on malformed input. *)
val decode : string -> Graph.t
