lib/graph/dot.ml: Buffer Graph Hashtbl List Printf
