lib/graph/graph6.mli: Graph
