lib/graph/graph6.ml: Buffer Char Graph String
