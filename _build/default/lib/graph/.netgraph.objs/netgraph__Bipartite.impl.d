lib/graph/bipartite.ml: Array Graph List Option Queue
