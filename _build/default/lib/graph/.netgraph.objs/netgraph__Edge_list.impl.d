lib/graph/edge_list.ml: Buffer Fun Graph List Printf String
