lib/graph/gen.mli: Graph Prng
