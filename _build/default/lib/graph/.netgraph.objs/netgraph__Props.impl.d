lib/graph/props.ml: Bipartite Format Graph List Traverse
