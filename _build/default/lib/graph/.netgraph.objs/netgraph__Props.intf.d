lib/graph/props.mli: Format Graph
