let to_string g =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "# netgraph edge list\n%d\n" (Graph.n g));
  Graph.iter_edges g ~f:(fun _ e ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" e.Graph.u e.Graph.v));
  Buffer.contents buf

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | [] -> invalid_arg "Edge_list.of_string: empty input"
  | header :: rest ->
      let n =
        match int_of_string_opt header with
        | Some n -> n
        | None -> invalid_arg "Edge_list.of_string: bad vertex-count header"
      in
      let parse_edge line =
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v -> (u, v)
            | _ -> invalid_arg ("Edge_list.of_string: bad edge line: " ^ line))
        | _ -> invalid_arg ("Edge_list.of_string: bad edge line: " ^ line)
      in
      Graph.make ~n (List.map parse_edge rest)

let save file g =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string g))

let load file =
  let ic = open_in file in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
