(** Structural summaries of a graph. *)

type summary = {
  n : int;
  m : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  connected : bool;
  bipartite : bool;
  isolated : int;  (** number of degree-0 vertices *)
  components : int;
}

val summary : Graph.t -> summary

(** Valid Tuple-model instance: connected, no isolated vertices, [n >= 2]. *)
val is_valid_instance : Graph.t -> bool

(** Density [2m / (n (n-1))]; 0 for [n < 2]. *)
val density : Graph.t -> float

(** Sorted degree sequence (descending). *)
val degree_sequence : Graph.t -> int list

val pp_summary : Format.formatter -> summary -> unit
