(** Undirected simple graphs with dense integer vertex and edge identifiers.

    Vertices are [0 .. n-1]; edges carry ids [0 .. m-1] in insertion order.
    Self-loops and parallel edges are rejected at construction.  The
    structure is immutable after [make]; adjacency is stored per-vertex and
    sorted, so membership queries are logarithmic and iteration is cheap.

    This is the information network of the Tuple model: vertices are hosts,
    edges are communication links. *)

type t

type vertex = int
type edge_id = int

(** An undirected edge; normalized so that the first endpoint is the
    smaller vertex. *)
type edge = { u : vertex; v : vertex }

(** [make ~n edges] builds a graph on [n] vertices.
    @raise Invalid_argument on a negative [n], an endpoint out of range, a
    self-loop, or a duplicate edge (in either orientation). *)
val make : n:int -> (vertex * vertex) list -> t

val n : t -> int

val m : t -> int

(** Endpoints of an edge id, normalized ([u < v]).
    @raise Invalid_argument if the id is out of range. *)
val edge : t -> edge_id -> edge

(** All edges, indexed by edge id. *)
val edges : t -> edge array

(** [endpoints g e] is [(u, v)] with [u < v]. *)
val endpoints : t -> edge_id -> vertex * vertex

(** The edge id joining two vertices, if present (orientation-insensitive). *)
val find_edge : t -> vertex -> vertex -> edge_id option

val is_adjacent : t -> vertex -> vertex -> bool

(** Sorted array of neighbours of [v]. *)
val neighbors : t -> vertex -> vertex array

(** Ids of edges incident to [v], sorted by the opposite endpoint. *)
val incident_edges : t -> vertex -> edge_id array

val degree : t -> vertex -> int

(** The endpoint of edge [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)
val opposite : t -> edge_id -> vertex -> vertex

val fold_vertices : t -> init:'a -> f:('a -> vertex -> 'a) -> 'a
val iter_vertices : t -> f:(vertex -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge_id -> edge -> 'a) -> 'a
val iter_edges : t -> f:(edge_id -> edge -> unit) -> unit

(** Vertices of degree zero. *)
val isolated_vertices : t -> vertex list

val has_isolated_vertex : t -> bool

(** [neighborhood g vs] is the set (sorted, deduplicated) of vertices
    adjacent to at least one vertex of [vs], including vertices of [vs]
    that happen to be adjacent to another member.  This is [Neigh_G(X)] of
    the paper. *)
val neighborhood : t -> vertex list -> vertex list

(** Subgraph induced by a set of edge ids: keeps all [n] vertices, only the
    given edges.  Used for "the graph obtained by [D(tp)]".  Edge ids are
    renumbered; the second component maps new ids back to old ids. *)
val edge_subgraph : t -> edge_id list -> t * edge_id array

(** Structural equality: same vertex count and same edge set. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
