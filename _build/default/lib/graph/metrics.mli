(** Distance and cycle metrics.

    Used by the atlas/CLI reporting layer and by experiments relating a
    topology's structure to its defendability (e.g. girth determines
    whether matching equilibria can exist on cycles). *)

(** Eccentricity of a vertex: max hop distance to any vertex.
    @raise Invalid_argument if the graph is disconnected. *)
val eccentricity : Graph.t -> Graph.vertex -> int

(** Max over vertices of eccentricity.
    @raise Invalid_argument if the graph is disconnected or empty. *)
val diameter : Graph.t -> int

(** Min over vertices of eccentricity.
    @raise Invalid_argument if the graph is disconnected or empty. *)
val radius : Graph.t -> int

(** Length of a shortest cycle; [None] for forests. *)
val girth : Graph.t -> int option

(** Cut vertices (articulation points), sorted.  A cut vertex is a
    single point of failure of the communication network. *)
val articulation_points : Graph.t -> Graph.vertex list

(** Bridges: edges whose removal disconnects their component, sorted by
    edge id. *)
val bridges : Graph.t -> Graph.edge_id list

(** [true] iff connected with no articulation point ([n >= 3]). *)
val is_biconnected : Graph.t -> bool
