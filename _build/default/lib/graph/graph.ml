type vertex = int
type edge_id = int
type edge = { u : vertex; v : vertex }

type t = {
  n : int;
  edges : edge array;
  (* adj.(v) lists (neighbour, edge id) pairs sorted by neighbour. *)
  adj : (vertex * edge_id) array array;
}

let normalize u v = if u < v then { u; v } else { u = v; v = u }

let make ~n edge_list =
  if n < 0 then invalid_arg "Graph.make: negative vertex count";
  let seen = Hashtbl.create (List.length edge_list) in
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.make: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u);
    let e = normalize u v in
    if Hashtbl.mem seen (e.u, e.v) then
      invalid_arg (Printf.sprintf "Graph.make: duplicate edge (%d,%d)" e.u e.v);
    Hashtbl.add seen (e.u, e.v) ();
    e
  in
  let edges = Array.of_list (List.map check edge_list) in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id e ->
      adj.(e.u).(fill.(e.u)) <- (e.v, id);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, id);
      fill.(e.v) <- fill.(e.v) + 1)
    edges;
  Array.iter (fun row -> Array.sort compare row) adj;
  { n; edges; adj }

let n g = g.n
let m g = Array.length g.edges

let edge g id =
  if id < 0 || id >= Array.length g.edges then
    invalid_arg (Printf.sprintf "Graph.edge: id %d out of range" id);
  g.edges.(id)

let edges g = Array.copy g.edges

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let find_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n || u = v then None
  else
    (* Binary search the sorted adjacency row of the lower-degree endpoint. *)
    let row = if Array.length g.adj.(u) <= Array.length g.adj.(v) then g.adj.(u) else g.adj.(v) in
    let target = if row == g.adj.(u) then v else u in
    let rec search lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let w, id = row.(mid) in
        if w = target then Some id
        else if w < target then search (mid + 1) hi
        else search lo mid
    in
    search 0 (Array.length row)

let is_adjacent g u v = Option.is_some (find_edge g u v)
let neighbors g v = Array.map fst g.adj.(v)
let incident_edges g v = Array.map snd g.adj.(v)
let degree g v = Array.length g.adj.(v)

let opposite g id v =
  let e = edge g id in
  if e.u = v then e.v
  else if e.v = v then e.u
  else invalid_arg (Printf.sprintf "Graph.opposite: %d not an endpoint of edge %d" v id)

let fold_vertices g ~init ~f =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let iter_vertices g ~f =
  for v = 0 to g.n - 1 do
    f v
  done

let fold_edges g ~init ~f =
  let acc = ref init in
  Array.iteri (fun id e -> acc := f !acc id e) g.edges;
  !acc

let iter_edges g ~f = Array.iteri f g.edges

let isolated_vertices g =
  List.rev
    (fold_vertices g ~init:[] ~f:(fun acc v ->
         if degree g v = 0 then v :: acc else acc))

let has_isolated_vertex g = isolated_vertices g <> []

let neighborhood g vs =
  let mark = Array.make g.n false in
  List.iter
    (fun v -> Array.iter (fun (w, _) -> mark.(w) <- true) g.adj.(v))
    vs;
  let out = ref [] in
  for v = g.n - 1 downto 0 do
    if mark.(v) then out := v :: !out
  done;
  !out

let edge_subgraph g ids =
  let ids = List.sort_uniq compare ids in
  let pairs = List.map (fun id -> let e = edge g id in (e.u, e.v)) ids in
  (make ~n:g.n pairs, Array.of_list ids)

let equal a b =
  a.n = b.n
  &&
  let key e = (e.u, e.v) in
  let sorted g = List.sort compare (Array.to_list (Array.map key g.edges)) in
  sorted a = sorted b

let pp fmt g =
  Format.fprintf fmt "@[<hov 2>graph(n=%d, m=%d:" g.n (m g);
  Array.iter (fun e -> Format.fprintf fmt "@ %d-%d" e.u e.v) g.edges;
  Format.fprintf fmt ")@]"
