(** Graph traversal: BFS/DFS orders, distances, connectivity. *)

(** [bfs_order g root] lists vertices of [root]'s component in BFS order. *)
val bfs_order : Graph.t -> Graph.vertex -> Graph.vertex list

(** [dfs_order g root] lists vertices of [root]'s component in preorder. *)
val dfs_order : Graph.t -> Graph.vertex -> Graph.vertex list

(** [distances g root] gives hop distances from [root]; unreachable
    vertices get [-1]. *)
val distances : Graph.t -> Graph.vertex -> int array

(** Connected components, each a sorted vertex list; components ordered by
    smallest member. *)
val components : Graph.t -> Graph.vertex list list

val is_connected : Graph.t -> bool

(** [shortest_path g u v] is a vertex path from [u] to [v] (inclusive),
    or [None] when disconnected. *)
val shortest_path : Graph.t -> Graph.vertex -> Graph.vertex -> Graph.vertex list option
