type summary = {
  n : int;
  m : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  connected : bool;
  bipartite : bool;
  isolated : int;
  components : int;
}

let degree_sequence g =
  Graph.fold_vertices g ~init:[] ~f:(fun acc v -> Graph.degree g v :: acc)
  |> List.sort (fun a b -> compare b a)

let summary g =
  let n = Graph.n g and m = Graph.m g in
  let degs = degree_sequence g in
  let min_degree = match List.rev degs with d :: _ -> d | [] -> 0 in
  let max_degree = match degs with d :: _ -> d | [] -> 0 in
  let mean_degree = if n = 0 then 0.0 else 2.0 *. float_of_int m /. float_of_int n in
  let comps = Traverse.components g in
  {
    n;
    m;
    min_degree;
    max_degree;
    mean_degree;
    connected = List.length comps <= 1;
    bipartite = Bipartite.is_bipartite g;
    isolated = List.length (Graph.isolated_vertices g);
    components = List.length comps;
  }

let is_valid_instance g =
  Graph.n g >= 2 && (not (Graph.has_isolated_vertex g)) && Traverse.is_connected g

let density g =
  let n = Graph.n g in
  if n < 2 then 0.0
  else 2.0 *. float_of_int (Graph.m g) /. (float_of_int n *. float_of_int (n - 1))

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d m=%d deg=[%d..%d] mean=%.2f %s %s components=%d isolated=%d" s.n s.m
    s.min_degree s.max_degree s.mean_degree
    (if s.connected then "connected" else "disconnected")
    (if s.bipartite then "bipartite" else "non-bipartite")
    s.components s.isolated
