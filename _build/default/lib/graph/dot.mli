(** Graphviz DOT export, with optional highlighting of a defender support
    (edges) and attacker support (vertices) for visualizing equilibria. *)

val to_string :
  ?name:string ->
  ?highlight_vertices:Graph.vertex list ->
  ?highlight_edges:Graph.edge_id list ->
  Graph.t ->
  string

val to_channel :
  ?name:string ->
  ?highlight_vertices:Graph.vertex list ->
  ?highlight_edges:Graph.edge_id list ->
  out_channel ->
  Graph.t ->
  unit
