(** Plain-text edge-list serialization.

    Format: first non-comment line is [n], then one [u v] pair per line.
    Lines starting with ['#'] and blank lines are ignored. *)

val to_string : Graph.t -> string

(** @raise Invalid_argument on malformed input (bad header, non-integer
    tokens, or edges rejected by {!Graph.make}). *)
val of_string : string -> Graph.t

val save : string -> Graph.t -> unit
val load : string -> Graph.t
