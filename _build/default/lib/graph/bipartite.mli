(** Bipartiteness testing and two-colourings. *)

type coloring = {
  side_a : Graph.vertex list;  (** colour 0, sorted *)
  side_b : Graph.vertex list;  (** colour 1, sorted *)
  color : int array;           (** per-vertex colour, 0 or 1 *)
}

(** [coloring g] is a proper 2-colouring if one exists.  Vertices in
    components of a single vertex are assigned colour 0. *)
val coloring : Graph.t -> coloring option

val is_bipartite : Graph.t -> bool

(** An odd cycle (as a vertex list, first = last) witnessing
    non-bipartiteness, or [None] for bipartite graphs. *)
val odd_cycle : Graph.t -> Graph.vertex list option
