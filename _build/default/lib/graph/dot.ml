let to_string ?(name = "G") ?(highlight_vertices = []) ?(highlight_edges = []) g =
  let buf = Buffer.create 256 in
  let vset = Hashtbl.create 16 and eset = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace vset v ()) highlight_vertices;
  List.iter (fun e -> Hashtbl.replace eset e ()) highlight_edges;
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Graph.iter_vertices g ~f:(fun v ->
      if Hashtbl.mem vset v then
        Buffer.add_string buf
          (Printf.sprintf "  %d [style=filled, fillcolor=indianred];\n" v)
      else Buffer.add_string buf (Printf.sprintf "  %d;\n" v));
  Graph.iter_edges g ~f:(fun id e ->
      if Hashtbl.mem eset id then
        Buffer.add_string buf
          (Printf.sprintf "  %d -- %d [color=blue, penwidth=2.0];\n" e.Graph.u e.Graph.v)
      else Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" e.Graph.u e.Graph.v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_channel ?name ?highlight_vertices ?highlight_edges oc g =
  output_string oc (to_string ?name ?highlight_vertices ?highlight_edges g)
