open Netgraph
module Q = Exact.Q
module Rng = Prng.Rng

type round = {
  index : int;
  choices : Graph.vertex array;
  tuple : Defender.Tuple.t;
  caught : int;
}

type stats = {
  rounds : int;
  total_caught : int;
  mean_caught : float;
  stddev_caught : float;
  per_player_escapes : int array;
}

let escape_rate stats i =
  float_of_int stats.per_player_escapes.(i) /. float_of_int stats.rounds

let confidence95 stats =
  1.96 *. stats.stddev_caught /. sqrt (float_of_int stats.rounds)

let sample_tuple rng strategy =
  let target = Rng.float rng in
  let rec scan acc = function
    | [ (t, _) ] -> t
    | (t, p) :: rest ->
        let acc = acc +. Q.to_float p in
        if target < acc then t else scan acc rest
    | [] -> assert false
  in
  scan 0.0 strategy

let play ?record rng profile ~rounds =
  if rounds < 1 then invalid_arg "Engine.play: rounds must be positive";
  let model = Defender.Profile.model profile in
  let g = Defender.Model.graph model in
  let nu = Defender.Model.nu model in
  let strategies =
    Array.init nu (fun i -> Defender.Profile.vp_strategy profile i)
  in
  let tp_strategy = Defender.Profile.tp_strategy profile in
  let per_player_escapes = Array.make nu 0 in
  let total = ref 0 and total_sq = ref 0 in
  let choices = Array.make nu 0 in
  for index = 0 to rounds - 1 do
    for i = 0 to nu - 1 do
      choices.(i) <- Dist.Finite.sample rng strategies.(i)
    done;
    let tuple = sample_tuple rng tp_strategy in
    let caught = ref 0 in
    for i = 0 to nu - 1 do
      if Defender.Tuple.covers g tuple choices.(i) then incr caught
      else per_player_escapes.(i) <- per_player_escapes.(i) + 1
    done;
    total := !total + !caught;
    total_sq := !total_sq + (!caught * !caught);
    match record with
    | Some f -> f { index; choices = Array.copy choices; tuple; caught = !caught }
    | None -> ()
  done;
  let n = float_of_int rounds in
  let mean = float_of_int !total /. n in
  let variance = (float_of_int !total_sq /. n) -. (mean *. mean) in
  {
    rounds;
    total_caught = !total;
    mean_caught = mean;
    stddev_caught = sqrt (max variance 0.0);
    per_player_escapes;
  }

let agrees_with_analytic ?(z = 4.0) stats profile =
  let exact = Q.to_float (Defender.Profit.expected_tp profile) in
  let half_width = z *. stats.stddev_caught /. sqrt (float_of_int stats.rounds) in
  abs_float (stats.mean_caught -. exact) <= half_width +. 1e-9
