(** Fictitious play for the Tuple model.

    Each round every attacker best-responds to the defender's *empirical*
    scan frequencies (a least-scanned vertex) and the defender
    best-responds to the attackers' empirical location frequencies (a
    max-coverage tuple, exact by enumeration when C(m,k) is small, greedy
    otherwise).  The game is strategically zero-sum between the defender
    and the (symmetric) attacker population, so by Robinson's theorem the
    time-averaged play converges to equilibrium values: the long-run
    average catch approaches the k-matching NE gain k·ν/|IS| on instances
    that admit one.  Experiment F6 exhibits the convergence; it is an
    independent, learning-dynamics route to the paper's equilibrium
    quantities. *)

type result = {
  rounds : int;
  avg_gain : float;  (** time-averaged defender catches per round *)
  tail_avg_gain : float;  (** average over the last half (burn-in dropped) *)
  attack_frequency : float array;  (** empirical attacker distribution over vertices *)
  scan_frequency : float array;  (** empirical marginal scan rate per edge *)
  gain_series : float array;  (** prefix-averaged gain, for convergence plots *)
}

(** @raise Invalid_argument if [rounds < 2]. *)
val run : Prng.Rng.t -> Defender.Model.t -> rounds:int -> result
