lib/sim/engine.ml: Array Defender Dist Exact Graph Netgraph Prng
