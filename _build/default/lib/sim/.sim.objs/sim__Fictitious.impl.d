lib/sim/fictitious.ml: Array Defender Graph List Netgraph Option Prng
