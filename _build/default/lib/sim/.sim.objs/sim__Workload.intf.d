lib/sim/workload.mli: Defender Dist Exact Graph Netgraph Prng
