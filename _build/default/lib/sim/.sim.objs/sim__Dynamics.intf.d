lib/sim/dynamics.mli: Defender Prng
