lib/sim/fictitious.mli: Defender Prng
