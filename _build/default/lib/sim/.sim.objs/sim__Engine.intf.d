lib/sim/engine.mli: Defender Graph Netgraph Prng
