lib/sim/dynamics.ml: Array Defender Fun Graph List Netgraph Option Prng
