lib/sim/workload.ml: Array Defender Dist Exact Fun Graph List Netgraph Printf Prng
