(* Paranoid defense: what to deploy when the theory says "no equilibrium".

   Odd cycles, cliques, the Petersen graph: none of them admits a
   matching Nash equilibrium (their complements of independent sets fail
   the expander condition), so the paper's constructions return nothing.
   The max-min extension (Minimax, exact LP over rationals) still
   produces the optimal conservative scan distribution — the one
   maximizing the worst-case interception probability — together with a
   dual certificate that no schedule does better.  Fictitious play then
   confirms the value empirically: learning attackers and a learning
   defender settle exactly on it.

     dune exec examples/paranoid_defense.exe
*)

module Q = Exact.Q

let show name g =
  Printf.printf "\n--- %s ---\n" name;
  (match Defender.Matching_nash.find_partition g with
  | Some _ -> print_endline "(admits a matching NE; shown for comparison)"
  | None -> print_endline "no matching NE exists (Theorem 2.2 obstruction)");
  let d = Defender.Minimax.solve g in
  Printf.printf "fractional edge-cover number rho* = %s\n"
    (Q.to_string d.Defender.Minimax.rho_star);
  Printf.printf "max-min interception probability  = %s (certified: %b)\n"
    (Q.to_string d.Defender.Minimax.value)
    (Defender.Minimax.certified g d);
  Printf.printf "integral-cover defense would give = 1/%d\n"
    (Matching.Edge_cover.rho g);
  Printf.printf "optimal scan marginals:";
  Array.iteri
    (fun id p ->
      if not (Q.is_zero p) then
        let e = Netgraph.Graph.edge g id in
        Printf.printf " (%d-%d):%s" e.Netgraph.Graph.u e.Netgraph.Graph.v
          (Q.to_string p))
    d.Defender.Minimax.marginals;
  print_newline ();
  (* empirical confirmation by fictitious play *)
  let nu = 3 in
  let m = Defender.Model.make ~graph:g ~nu ~k:1 in
  let fp = Sim.Fictitious.run (Prng.Rng.create 11) m ~rounds:30_000 in
  Printf.printf
    "fictitious play (nu = %d, 30k rounds): avg gain %.4f vs predicted nu*value = %s*%d = %.4f\n"
    nu fp.Sim.Fictitious.tail_avg_gain
    (Q.to_string d.Defender.Minimax.value)
    nu
    (Q.to_float (Q.mul_int d.Defender.Minimax.value nu))

let () =
  show "cycle C5" (Netgraph.Gen.cycle 5);
  show "clique K5" (Netgraph.Gen.complete 5);
  show "Petersen graph" (Netgraph.Gen.petersen ());
  show "lollipop K4 + P3" (Netgraph.Gen.lollipop 4 ~tail:3);
  show "path P6 (baseline with a matching NE)" (Netgraph.Gen.path 6)
