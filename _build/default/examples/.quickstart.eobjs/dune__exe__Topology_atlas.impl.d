examples/topology_atlas.ml: Bipartite Defender Exact Format Gen Graph Harness List Matching Netgraph Printf String
