examples/topology_atlas.mli:
