examples/quickstart.mli:
