examples/paranoid_defense.mli:
