examples/enterprise_network.mli:
