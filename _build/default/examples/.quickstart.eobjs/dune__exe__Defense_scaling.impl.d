examples/defense_scaling.ml: Defender Exact Format Harness List Netgraph Printf Prng Sim
