examples/quickstart.ml: Defender Exact Format Netgraph Prng Sim
