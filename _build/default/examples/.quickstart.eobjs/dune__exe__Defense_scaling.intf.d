examples/defense_scaling.mli:
