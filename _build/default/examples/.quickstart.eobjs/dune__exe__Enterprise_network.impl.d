examples/enterprise_network.ml: Defender Exact Format Harness List Netgraph Printf Prng Sim
