examples/paranoid_defense.ml: Array Defender Exact Matching Netgraph Printf Prng Sim
