(* "The power of the defender" as a story: sweep the defender's power k on
   one network and watch the protection quality grow — exactly linearly,
   as Theorem 4.5 / Corollaries 4.7 and 4.10 promise — in three
   independent ways: the closed form k*nu/|IS|, the exact expected profit
   of the constructed equilibrium, and a Monte-Carlo simulation of it.

     dune exec examples/defense_scaling.exe
*)

module Q = Exact.Q

let () =
  let g = Netgraph.Gen.grid 4 5 in
  let nu = 10 in
  Format.printf "network: %a@." Netgraph.Props.pp_summary (Netgraph.Props.summary g);

  let m1 = Defender.Model.make ~graph:g ~nu ~k:1 in
  let edge_profile =
    match Defender.Matching_nash.solve_auto m1 with
    | Ok p -> p
    | Error e ->
        prerr_endline ("no matching NE: " ^ e);
        exit 1
  in
  let is_size = List.length (Defender.Profile.vp_support_union edge_profile) in
  Printf.printf "attacker support |IS| = %d, so k ranges over 1..%d\n\n" is_size is_size;

  let table =
    Harness.Table.create ~title:"defender gain vs power k"
      ~columns:[ "k"; "closed form k*nu/|IS|"; "exact profit"; "simulated"; "escape prob" ]
  in
  let points = ref [] in
  for k = 1 to is_size do
    let profile =
      match Defender.Reduction.edge_to_tuple ~k edge_profile with
      | Ok p -> p
      | Error e -> failwith e
    in
    let closed_form = Q.make (k * nu) is_size in
    let exact = Defender.Gain.defender_gain profile in
    assert (Q.equal closed_form exact);
    let stats = Sim.Engine.play (Prng.Rng.create (100 + k)) profile ~rounds:20_000 in
    Harness.Table.add_row table
      [
        string_of_int k;
        Q.to_string closed_form;
        Q.to_string exact;
        Printf.sprintf "%.3f" stats.Sim.Engine.mean_caught;
        Q.to_string (Defender.Gain.escape_probability profile 0);
      ];
    points := (float_of_int k, Q.to_float exact) :: !points
  done;
  Harness.Table.print table;

  let fit = Harness.Stats.linear_fit !points in
  Printf.printf
    "\nlinear fit: gain = %.4f * k + %.4f   (R^2 = %.6f; slope prediction nu/|IS| = %.4f)\n"
    fit.Harness.Stats.slope fit.Harness.Stats.intercept fit.Harness.Stats.r_squared
    (float_of_int nu /. float_of_int is_size);

  print_string
    (Harness.Table.series ~title:"the power of the defender" ~x_label:"k (links scanned)"
       ~y_label:"expected attackers arrested" (List.rev !points))
