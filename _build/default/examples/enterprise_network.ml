(* Enterprise scenario: a two-tier corporate network — a meshed backbone of
   core routers and leaf hosts multihomed into it — defended by an IDS
   appliance that can mirror (scan) k links at a time.

   The example:
     1. builds the topology and reports its structure;
     2. computes the defender's game-theoretically optimal mixed scan
        schedule where one exists, and explains the obstruction otherwise;
     3. stress-tests the deployed schedule against four attacker behaviours
        (uniform, hotspot-on-the-core, fixed, adaptive) and three naive
        defender baselines, in simulation.

     dune exec examples/enterprise_network.exe
*)

module Q = Exact.Q

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  let rng = Prng.Rng.create 7 in
  (* A bipartite two-tier network: no core mesh (core = clean uplink tier)
     keeps the topology bipartite so Theorem 5.1 applies verbatim. *)
  let core = 6 and leaves = 18 in
  let g =
    Netgraph.Gen.random_bipartite rng ~a:core ~b:leaves ~p:0.15
  in
  let attackers = 8 in
  let scan_capacity = 4 in

  section "Topology";
  Format.printf "%a@." Netgraph.Props.pp_summary (Netgraph.Props.summary g);
  Printf.printf "attackers: %d, IDS scan capacity k = %d links/round\n" attackers
    scan_capacity;

  let model = Defender.Model.make ~graph:g ~nu:attackers ~k:scan_capacity in

  section "Equilibrium defense (Theorem 5.1 pipeline)";
  let outcome =
    match Defender.Pipeline.solve model with
    | Ok o -> o
    | Error e ->
        Printf.printf "pipeline failed: %s\n" e;
        exit 1
  in
  let profile = outcome.Defender.Pipeline.profile in
  let partition = outcome.Defender.Pipeline.partition in
  Printf.printf "attacker-side support IS: %d vertices, defender VC side: %d\n"
    (List.length partition.Defender.Matching_nash.is)
    (List.length partition.Defender.Matching_nash.vc);
  Printf.printf "scan schedule: %d tuples of %d links each\n"
    (List.length (Defender.Profile.tp_support profile))
    scan_capacity;
  Printf.printf "verification: %s\n"
    (Defender.Verify.verdict_to_string
       (Defender.Verify.mixed_ne Defender.Verify.Certificate profile));
  Printf.printf "expected intrusions stopped per round: %s of %d\n"
    (Q.to_string (Defender.Gain.defender_gain profile))
    attackers;
  Printf.printf "per-attacker escape probability: %s\n"
    (Q.to_string (Defender.Gain.escape_probability profile 0));

  section "Deployment stress test (20k rounds each)";
  let ne_defense = Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy profile) in
  let defenses =
    [
      ne_defense;
      Sim.Workload.Defender_uniform_tuple;
      Sim.Workload.Defender_greedy { epsilon = 0.1 };
      Sim.Workload.Defender_round_robin;
    ]
  in
  let hotspot_targets = List.filteri (fun i _ -> i < 2) partition.Defender.Matching_nash.vc in
  let attacks =
    [
      Sim.Workload.Attacker_uniform;
      Sim.Workload.Attacker_hotspot { targets = hotspot_targets; concentration = 0.9 };
      Sim.Workload.Attacker_fixed (Defender.Profile.vp_strategy profile 0);
      Sim.Workload.Attacker_adaptive { epsilon = 0.1 };
    ]
  in
  let table =
    Harness.Table.create ~title:"mean intrusions stopped per round"
      ~columns:
        ("defense \\ attack"
        :: List.map Sim.Workload.attacker_name attacks)
  in
  List.iter
    (fun defender ->
      let cells =
        List.map
          (fun attacker ->
            let o =
              Sim.Workload.run (Prng.Rng.create 1001) model ~attacker ~defender
                ~rounds:20_000
            in
            Printf.sprintf "%.3f" o.Sim.Workload.mean_caught)
          attacks
      in
      Harness.Table.add_row table (Sim.Workload.policy_name defender :: cells))
    defenses;
  Harness.Table.print table;
  Printf.printf
    "\nReading: the fixed/NE row never drops below %s no matter the attack —\n\
     that worst-case floor is what the equilibrium buys; the adaptive column\n\
     shows learning attackers punishing the predictable baselines.\n"
    (Q.to_string (Defender.Gain.defender_gain profile))
