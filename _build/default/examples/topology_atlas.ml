(* Topology atlas: walk the generator families and report, for each
   network, which defenses the theory grants it — pure equilibria
   (Theorem 3.1), matching equilibria of the Edge model (Theorem 2.2) and
   k-matching equilibria of the Tuple model (Corollary 4.11 + the
   feasibility bound k <= |IS|) — and why the obstruction bites when one
   does not exist.

     dune exec examples/topology_atlas.exe
*)

open Netgraph

let () =
  let table =
    Harness.Table.create ~title:"equilibrium atlas (nu = 3)"
      ~columns:
        [ "graph"; "n"; "m"; "rho"; "pure NE k>="; "matching NE"; "max k-matching k"; "note" ]
  in
  List.iter
    (fun (name, g) ->
      let rho = Matching.Edge_cover.rho g in
      let partition = Defender.Matching_nash.find_partition g in
      let matching_ne, max_k, note =
        match partition with
        | Some p ->
            let is_size = List.length p.Defender.Matching_nash.is in
            ("yes", string_of_int is_size,
             Printf.sprintf "IS = {%s}"
               (String.concat ","
                  (List.map string_of_int
                     (List.filteri (fun i _ -> i < 5) p.Defender.Matching_nash.is))
               ^ if is_size > 5 then ",..." else ""))
        | None ->
            let why =
              if not (Bipartite.is_bipartite g) then
                "no admissible (IS,VC): expander condition fails"
              else "no admissible partition"
            in
            ("no", "-", why)
      in
      Harness.Table.add_row table
        [
          name;
          string_of_int (Graph.n g);
          string_of_int (Graph.m g);
          string_of_int rho;
          string_of_int rho;
          matching_ne;
          max_k;
          note;
        ])
    (Gen.atlas_small ());
  Harness.Table.print table;

  (* Spot-check the table's promises on one admitting and one refusing
     instance. *)
  print_newline ();
  let grid = Gen.grid 3 3 in
  let m = Defender.Model.make ~graph:grid ~nu:3 ~k:2 in
  (match Defender.Tuple_nash.a_tuple_auto m with
  | Ok prof ->
      Format.printf "grid-3x3, k=2: k-matching NE with gain %s — %s@."
        (Exact.Q.to_string (Defender.Gain.defender_gain prof))
        (Defender.Verify.verdict_to_string
           (Defender.Verify.mixed_ne Defender.Verify.Certificate prof))
  | Error e -> Format.printf "grid-3x3, k=2: %s@." e);
  let c5 = Gen.cycle 5 in
  (match
     Defender.Matching_nash.solve_auto (Defender.Model.make ~graph:c5 ~nu:3 ~k:1)
   with
  | Ok _ -> Format.printf "cycle-5: unexpectedly found a matching NE@."
  | Error e -> Format.printf "cycle-5: correctly refused — %s@." e);

  (* Pure equilibria across the atlas at the threshold power. *)
  print_newline ();
  let pure_table =
    Harness.Table.create ~title:"pure NE threshold check (Theorem 3.1)"
      ~columns:[ "graph"; "rho"; "exists at k=rho"; "exists at k=rho-1" ]
  in
  List.iter
    (fun (name, g) ->
      let rho = Matching.Edge_cover.rho g in
      let at k =
        if k < 1 || k > Graph.m g then "-"
        else
          string_of_bool
            (Defender.Pure_nash.exists (Defender.Model.make ~graph:g ~nu:3 ~k))
      in
      Harness.Table.add_row pure_table
        [ name; string_of_int rho; at rho; at (rho - 1) ])
    (Gen.atlas_small ());
  Harness.Table.print pure_table
