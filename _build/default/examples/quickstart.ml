(* Quickstart: build a network, give the defender power k, compute a
   k-matching Nash equilibrium, verify it, and read off the guarantees.

     dune exec examples/quickstart.exe
*)

let () =
  (* A 3x3 grid network: 9 hosts, 12 links. *)
  let network = Netgraph.Gen.grid 3 3 in

  (* 5 attackers; the security software can scan 3 links at a time. *)
  let game = Defender.Model.make ~graph:network ~nu:5 ~k:3 in

  match Defender.Tuple_nash.a_tuple_auto game with
  | Error reason -> prerr_endline ("no k-matching equilibrium: " ^ reason)
  | Ok equilibrium ->
      Format.printf "Equilibrium found:@.%a@.@." Defender.Profile.pp equilibrium;

      (* Independent verification against the definition of a Nash
         equilibrium (defender side enumerated exhaustively). *)
      let verdict =
        Defender.Verify.mixed_ne (Defender.Verify.Exhaustive 100_000) equilibrium
      in
      Format.printf "verification: %s@." (Defender.Verify.verdict_to_string verdict);

      (* The quantities the paper is about. *)
      let gain = Defender.Gain.defender_gain equilibrium in
      let quality = Defender.Gain.protection_quality equilibrium in
      Format.printf "expected attackers arrested per round: %s@."
        (Exact.Q.to_string gain);
      Format.printf "fraction of attack traffic stopped:    %s@."
        (Exact.Q.to_string quality);

      (* Cross-check by simulation. *)
      let stats =
        Sim.Engine.play (Prng.Rng.create 42) equilibrium ~rounds:50_000
      in
      Format.printf "simulated over %d rounds:              %.4f (+/- %.4f)@."
        stats.Sim.Engine.rounds stats.Sim.Engine.mean_caught
        (Sim.Engine.confidence95 stats)
