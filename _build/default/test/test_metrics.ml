(* Tests for graph metrics (distances, girth, cut structure) and the
   extended generator families. *)

open Netgraph

(* --- Metrics --- *)

let test_eccentricity_diameter_radius () =
  let p5 = Gen.path 5 in
  Alcotest.(check int) "ecc of end" 4 (Metrics.eccentricity p5 0);
  Alcotest.(check int) "ecc of centre" 2 (Metrics.eccentricity p5 2);
  Alcotest.(check int) "diameter P5" 4 (Metrics.diameter p5);
  Alcotest.(check int) "radius P5" 2 (Metrics.radius p5);
  Alcotest.(check int) "diameter C6" 3 (Metrics.diameter (Gen.cycle 6));
  Alcotest.(check int) "radius C6" 3 (Metrics.radius (Gen.cycle 6));
  Alcotest.(check int) "diameter K5" 1 (Metrics.diameter (Gen.complete 5));
  Alcotest.(check int) "diameter star" 2 (Metrics.diameter (Gen.star 6));
  Alcotest.(check int) "radius star" 1 (Metrics.radius (Gen.star 6));
  Alcotest.(check int) "diameter hypercube-3" 3 (Metrics.diameter (Gen.hypercube 3));
  Alcotest.check_raises "disconnected rejected"
    (Invalid_argument "Metrics: graph must be connected") (fun () ->
      ignore (Metrics.diameter (Graph.make ~n:4 [ (0, 1); (2, 3) ])))

let test_girth () =
  Alcotest.(check (option int)) "girth C5" (Some 5) (Metrics.girth (Gen.cycle 5));
  Alcotest.(check (option int)) "girth C8" (Some 8) (Metrics.girth (Gen.cycle 8));
  Alcotest.(check (option int)) "girth K4" (Some 3) (Metrics.girth (Gen.complete 4));
  Alcotest.(check (option int)) "girth K(2,3)" (Some 4)
    (Metrics.girth (Gen.complete_bipartite 2 3));
  Alcotest.(check (option int)) "girth grid" (Some 4) (Metrics.girth (Gen.grid 3 3));
  Alcotest.(check (option int)) "girth tree" None (Metrics.girth (Gen.binary_tree 3));
  Alcotest.(check (option int)) "girth path" None (Metrics.girth (Gen.path 6));
  Alcotest.(check (option int)) "girth petersen" (Some 5)
    (Metrics.girth (Gen.petersen ()))

let test_articulation_points () =
  Alcotest.(check (list int)) "path interior" [ 1; 2; 3 ]
    (Metrics.articulation_points (Gen.path 5));
  Alcotest.(check (list int)) "cycle has none" []
    (Metrics.articulation_points (Gen.cycle 6));
  Alcotest.(check (list int)) "star centre" [ 0 ]
    (Metrics.articulation_points (Gen.star 5));
  Alcotest.(check (list int)) "lollipop joint" [ 3; 4; 5 ]
    (Metrics.articulation_points (Gen.lollipop 4 ~tail:3));
  Alcotest.(check bool) "complete biconnected" true
    (Metrics.is_biconnected (Gen.complete 5));
  Alcotest.(check bool) "path not biconnected" false
    (Metrics.is_biconnected (Gen.path 5));
  Alcotest.(check bool) "petersen biconnected" true
    (Metrics.is_biconnected (Gen.petersen ()))

let test_bridges () =
  Alcotest.(check (list int)) "all path edges" [ 0; 1; 2 ]
    (Metrics.bridges (Gen.path 4));
  Alcotest.(check (list int)) "cycle has none" [] (Metrics.bridges (Gen.cycle 5));
  let barbell = Gen.barbell 3 ~bridge:0 in
  (* two triangles joined by one edge: exactly that edge is a bridge *)
  Alcotest.(check int) "barbell bridge count" 1
    (List.length (Metrics.bridges barbell));
  let bridge_id = List.hd (Metrics.bridges barbell) in
  let e = Graph.edge barbell bridge_id in
  Alcotest.(check (pair int int)) "the joining edge" (2, 3) (e.Graph.u, e.Graph.v)

(* --- New generators --- *)

let test_wheel () =
  let w = Gen.wheel 6 in
  Alcotest.(check int) "n" 6 (Graph.n w);
  Alcotest.(check int) "m = 2(n-1)" 10 (Graph.m w);
  Alcotest.(check int) "hub degree" 5 (Graph.degree w 0);
  for v = 1 to 5 do
    Alcotest.(check int) "rim degree" 3 (Graph.degree w v)
  done;
  Alcotest.(check (option int)) "girth 3" (Some 3) (Metrics.girth w)

let test_complete_multipartite () =
  let g = Gen.complete_multipartite [ 2; 2; 2 ] in
  Alcotest.(check int) "K(2,2,2) n" 6 (Graph.n g);
  Alcotest.(check int) "K(2,2,2) m" 12 (Graph.m g);
  Alcotest.(check bool) "parts independent" true
    (Matching.Checks.is_independent_set g [ 0; 1 ]);
  Alcotest.(check bool) "across parts adjacent" true (Graph.is_adjacent g 0 2);
  let bip = Gen.complete_multipartite [ 3; 4 ] in
  Alcotest.(check bool) "two parts = complete bipartite" true
    (Graph.equal bip (Gen.complete_bipartite 3 4));
  Alcotest.check_raises "single part"
    (Invalid_argument "Gen.complete_multipartite: need at least two parts")
    (fun () -> ignore (Gen.complete_multipartite [ 5 ]))

let test_barbell_lollipop () =
  let b = Gen.barbell 4 ~bridge:2 in
  Alcotest.(check int) "barbell n" 10 (Graph.n b);
  Alcotest.(check int) "barbell m" (6 + 6 + 3) (Graph.m b);
  Alcotest.(check bool) "connected" true (Traverse.is_connected b);
  let l = Gen.lollipop 4 ~tail:3 in
  Alcotest.(check int) "lollipop n" 7 (Graph.n l);
  Alcotest.(check int) "lollipop m" 9 (Graph.m l);
  Alcotest.(check int) "tail end degree" 1 (Graph.degree l 6)

let test_caterpillar () =
  let c = Gen.caterpillar ~spine:4 ~legs:2 in
  Alcotest.(check int) "n" 12 (Graph.n c);
  Alcotest.(check int) "m (tree)" 11 (Graph.m c);
  Alcotest.(check bool) "connected" true (Traverse.is_connected c);
  Alcotest.(check (option int)) "acyclic" None (Metrics.girth c);
  Alcotest.(check int) "interior spine degree" 4 (Graph.degree c 1)

let test_petersen () =
  let p = Gen.petersen () in
  Alcotest.(check int) "n" 10 (Graph.n p);
  Alcotest.(check int) "m" 15 (Graph.m p);
  Graph.iter_vertices p ~f:(fun v ->
      Alcotest.(check int) "3-regular" 3 (Graph.degree p v));
  Alcotest.(check bool) "not bipartite" false (Bipartite.is_bipartite p);
  Alcotest.(check int) "diameter 2" 2 (Metrics.diameter p)

(* --- Properties --- *)

let tree_gen =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let r = Prng.Rng.create seed in
         Gen.random_tree r ~n:(2 + Prng.Rng.int r 18))
       QCheck.Gen.int)

let connected_gen =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let r = Prng.Rng.create seed in
         Gen.gnp_connected r ~n:(3 + Prng.Rng.int r 12) ~p:0.3)
       QCheck.Gen.int)

let props =
  [
    QCheck.Test.make ~name:"trees have no girth and all edges bridges" ~count:60
      tree_gen (fun t ->
        Metrics.girth t = None
        && List.length (Metrics.bridges t) = Graph.m t);
    QCheck.Test.make ~name:"radius <= diameter <= 2 radius" ~count:60 connected_gen
      (fun g ->
        let r = Metrics.radius g and d = Metrics.diameter g in
        r <= d && d <= 2 * r);
    QCheck.Test.make ~name:"girth >= 3 when present" ~count:60 connected_gen (fun g ->
        match Metrics.girth g with None -> true | Some c -> c >= 3);
    QCheck.Test.make ~name:"removing a bridge disconnects" ~count:40 connected_gen
      (fun g ->
        match Metrics.bridges g with
        | [] -> true
        | id :: _ ->
            let remaining =
              Graph.fold_edges g ~init:[] ~f:(fun acc eid e ->
                  if eid = id then acc else (e.Graph.u, e.Graph.v) :: acc)
            in
            not (Traverse.is_connected (Graph.make ~n:(Graph.n g) remaining)));
  ]

let () =
  Alcotest.run "metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "eccentricity/diameter/radius" `Quick
            test_eccentricity_diameter_radius;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "articulation points" `Quick test_articulation_points;
          Alcotest.test_case "bridges" `Quick test_bridges;
        ] );
      ( "generators",
        [
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "complete multipartite" `Quick test_complete_multipartite;
          Alcotest.test_case "barbell/lollipop" `Quick test_barbell_lollipop;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "petersen" `Quick test_petersen;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
