(* Tests for finite probability distributions with exact weights. *)

module Q = Exact.Q
module F = Dist.Finite

let q = Alcotest.testable Q.pp Q.equal

let test_make_validation () =
  Alcotest.check_raises "negative prob"
    (Invalid_argument "Finite.make: negative probability") (fun () ->
      ignore (F.make [ (0, Q.make (-1) 2); (1, Q.make 3 2) ]));
  Alcotest.check_raises "bad total"
    (Invalid_argument "Finite.make: probabilities sum to 1/2, not 1") (fun () ->
      ignore (F.make [ (0, Q.make 1 2) ]))

let test_make_merges_duplicates () =
  let d = F.make [ (3, Q.make 1 4); (3, Q.make 1 4); (5, Q.make 1 2) ] in
  Alcotest.check q "merged" (Q.make 1 2) (F.prob d 3);
  Alcotest.(check (list int)) "support" [ 3; 5 ] (F.support d)

let test_make_drops_zeros () =
  let d = F.make [ (0, Q.zero); (1, Q.one) ] in
  Alcotest.(check (list int)) "zero dropped" [ 1 ] (F.support d);
  Alcotest.(check bool) "pure" true (F.is_pure d);
  Alcotest.(check int) "outcome" 1 (F.pure_outcome d)

let test_uniform () =
  let d = F.uniform [ 2; 4; 6 ] in
  Alcotest.check q "each 1/3" (Q.make 1 3) (F.prob d 4);
  Alcotest.check q "off support" Q.zero (F.prob d 3);
  Alcotest.(check int) "support size" 3 (F.support_size d);
  let dedup = F.uniform [ 1; 1; 2 ] in
  Alcotest.check q "dedup uniform" (Q.make 1 2) (F.prob dedup 1);
  Alcotest.check_raises "empty" (Invalid_argument "Finite.uniform: empty support")
    (fun () -> ignore (F.uniform []))

let test_point () =
  let d = F.point 7 in
  Alcotest.check q "prob 1" Q.one (F.prob d 7);
  Alcotest.(check bool) "pure" true (F.is_pure d);
  Alcotest.check_raises "mixed pure_outcome"
    (Invalid_argument "Finite.pure_outcome: distribution is mixed") (fun () ->
      ignore (F.pure_outcome (F.uniform [ 1; 2 ])))

let test_expect () =
  let d = F.uniform [ 1; 2; 3 ] in
  Alcotest.check q "mean" (Q.of_int 2) (F.expect d ~f:Q.of_int);
  Alcotest.check q "indicator = prob_of" (F.prob_of d ~f:(fun x -> x >= 2))
    (F.expect d ~f:(fun x -> if x >= 2 then Q.one else Q.zero))

let test_tv_distance () =
  let a = F.uniform [ 0; 1 ] and b = F.uniform [ 1; 2 ] in
  Alcotest.check q "disjoint halves" (Q.make 1 2) (F.tv_distance a b);
  Alcotest.check q "self distance" Q.zero (F.tv_distance a a);
  Alcotest.check q "point masses" Q.one (F.tv_distance (F.point 0) (F.point 1))

let test_map () =
  let d = F.uniform [ 0; 1; 2; 3 ] in
  let halved = F.map d ~f:(fun x -> x / 2) in
  Alcotest.check q "merged probabilities" (Q.make 1 2) (F.prob halved 0);
  Alcotest.check q "merged probabilities" (Q.make 1 2) (F.prob halved 1)

let test_equal () =
  Alcotest.(check bool) "uniform = make" true
    (F.equal (F.uniform [ 1; 2 ]) (F.make [ (2, Q.make 1 2); (1, Q.make 1 2) ]));
  Alcotest.(check bool) "different" false (F.equal (F.point 1) (F.point 2))

let test_sampling_frequencies () =
  let rng = Prng.Rng.create 7 in
  let d = F.make [ (0, Q.make 1 4); (1, Q.make 3 4) ] in
  let n = 40_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if F.sample rng d = 1 then incr ones
  done;
  let rate = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "frequency near 3/4" true (abs_float (rate -. 0.75) < 0.02)

let test_sample_support_only () =
  let rng = Prng.Rng.create 9 in
  let d = F.uniform [ 5; 9 ] in
  for _ = 1 to 1000 do
    let x = F.sample rng d in
    Alcotest.(check bool) "in support" true (x = 5 || x = 9)
  done

let props =
  let dist_gen =
    QCheck.make
      (QCheck.Gen.map
         (fun (seed, size) ->
           let r = Prng.Rng.create seed in
           let outcomes = List.init (1 + (size mod 8)) (fun _ -> Prng.Rng.int r 100) in
           F.uniform outcomes)
         QCheck.Gen.(pair int small_nat))
  in
  [
    QCheck.Test.make ~name:"probabilities sum to one" ~count:200 dist_gen (fun d ->
        Q.equal Q.one (Q.sum (List.map (F.prob d) (F.support d))));
    QCheck.Test.make ~name:"support probabilities positive" ~count:200 dist_gen
      (fun d -> List.for_all (fun x -> Q.sign (F.prob d x) > 0) (F.support d));
    QCheck.Test.make ~name:"tv distance symmetric" ~count:100
      QCheck.(pair dist_gen dist_gen)
      (fun (a, b) -> Q.equal (F.tv_distance a b) (F.tv_distance b a));
    QCheck.Test.make ~name:"tv distance within [0,1]" ~count:100
      QCheck.(pair dist_gen dist_gen)
      (fun (a, b) ->
        let d = F.tv_distance a b in
        Q.( >= ) d Q.zero && Q.( <= ) d Q.one);
    QCheck.Test.make ~name:"expectation linear" ~count:100 dist_gen (fun d ->
        let f x = Q.of_int (2 * x) and g x = Q.of_int (x + 1) in
        Q.equal
          (F.expect d ~f:(fun x -> Q.add (f x) (g x)))
          (Q.add (F.expect d ~f) (F.expect d ~f:g)));
  ]

let () =
  Alcotest.run "dist"
    [
      ( "finite",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "make merges duplicates" `Quick test_make_merges_duplicates;
          Alcotest.test_case "make drops zeros" `Quick test_make_drops_zeros;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "point" `Quick test_point;
          Alcotest.test_case "expect" `Quick test_expect;
          Alcotest.test_case "tv distance" `Quick test_tv_distance;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "sampling frequencies" `Quick test_sampling_frequencies;
          Alcotest.test_case "sample support only" `Quick test_sample_support_only;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
