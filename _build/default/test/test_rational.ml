(* Unit and property tests for the exact rational substrate. *)

module Q = Exact.Q

let q = Alcotest.testable Q.pp Q.equal

let check_q = Alcotest.check q

let test_normalization () =
  check_q "6/8 = 3/4" (Q.make 3 4) (Q.make 6 8);
  check_q "-6/8 = -3/4" (Q.make (-3) 4) (Q.make 6 (-8));
  check_q "0/5 = 0" Q.zero (Q.make 0 5);
  Alcotest.(check int) "den of -2/-4" 2 (Q.den (Q.make (-2) (-4)));
  Alcotest.(check int) "num of -2/-4" 1 (Q.num (Q.make (-2) (-4)));
  Alcotest.(check int) "den always positive" 3 (Q.den (Q.make 5 (-3)) * -1 * -1)

let test_zero_denominator () =
  Alcotest.check_raises "make x/0" Q.Division_by_zero (fun () ->
      ignore (Q.make 1 0));
  Alcotest.check_raises "div by zero" Q.Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Q.Division_by_zero (fun () ->
      ignore (Q.inv Q.zero))

let test_arithmetic () =
  check_q "1/2 + 1/3" (Q.make 5 6) (Q.add (Q.make 1 2) (Q.make 1 3));
  check_q "1/2 - 1/3" (Q.make 1 6) (Q.sub (Q.make 1 2) (Q.make 1 3));
  check_q "2/3 * 3/4" (Q.make 1 2) (Q.mul (Q.make 2 3) (Q.make 3 4));
  check_q "(1/2) / (3/4)" (Q.make 2 3) (Q.div (Q.make 1 2) (Q.make 3 4));
  check_q "neg" (Q.make (-1) 2) (Q.neg (Q.make 1 2));
  check_q "inv -2/3" (Q.make (-3) 2) (Q.inv (Q.make (-2) 3));
  check_q "mul_int" (Q.make 3 2) (Q.mul_int (Q.make 1 2) 3);
  check_q "div_int" (Q.make 1 6) (Q.div_int (Q.make 1 2) 3);
  check_q "abs" (Q.make 1 2) (Q.abs (Q.make (-1) 2))

let test_comparisons () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(make 1 3 < make 1 2);
  Alcotest.(check bool) "1/2 <= 1/2" true Q.(make 1 2 <= make 2 4);
  Alcotest.(check bool) "2/3 > 1/2" true Q.(make 2 3 > make 1 2);
  Alcotest.(check int) "sign neg" (-1) (Q.sign (Q.make (-3) 7));
  Alcotest.(check int) "sign zero" 0 (Q.sign Q.zero);
  check_q "min" (Q.make 1 3) (Q.min (Q.make 1 3) (Q.make 1 2));
  check_q "max" (Q.make 1 2) (Q.max (Q.make 1 3) (Q.make 1 2))

let test_aggregates () =
  check_q "sum" Q.one (Q.sum [ Q.make 1 2; Q.make 1 3; Q.make 1 6 ]);
  check_q "sum empty" Q.zero (Q.sum []);
  check_q "average" (Q.make 1 2) (Q.average [ Q.make 1 4; Q.make 3 4 ]);
  check_q "min_list" (Q.make 1 4) (Q.min_list [ Q.make 1 2; Q.make 1 4; Q.one ]);
  check_q "max_list" Q.one (Q.max_list [ Q.make 1 2; Q.make 1 4; Q.one ]);
  Alcotest.check_raises "average of []" (Invalid_argument "Q.average: empty list")
    (fun () -> ignore (Q.average []))

let test_conversions () =
  Alcotest.(check string) "to_string fraction" "5/6" (Q.to_string (Q.make 5 6));
  Alcotest.(check string) "to_string integer" "7" (Q.to_string (Q.make 14 2));
  Alcotest.(check bool) "is_integer" true (Q.is_integer (Q.make 14 2));
  Alcotest.(check bool) "not is_integer" false (Q.is_integer (Q.make 1 2));
  Alcotest.(check int) "to_int_exn" 7 (Q.to_int_exn (Q.make 14 2));
  Alcotest.(check (float 1e-12)) "to_float" 0.5 (Q.to_float (Q.make 1 2));
  Alcotest.(check bool) "is_zero" true (Q.is_zero (Q.sub Q.one Q.one))

let test_overflow () =
  let big = Q.of_int max_int in
  Alcotest.check_raises "add overflow" Q.Overflow (fun () ->
      ignore (Q.add big Q.one));
  Alcotest.check_raises "mul overflow" Q.Overflow (fun () ->
      ignore (Q.mul big (Q.of_int 2)));
  (* Knuth-reduced operations that fit must not raise. *)
  check_q "large but reducible" (Q.of_int max_int)
    (Q.mul (Q.make max_int 3) (Q.of_int 3))

(* Property tests: the rationals form an ordered field. *)
let small_q =
  QCheck.map
    (fun (n, d) -> Q.make n (1 + abs d))
    QCheck.(pair (int_range (-1000) 1000) (int_range 0 1000))

let props =
  [
    QCheck.Test.make ~name:"add commutative" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    QCheck.Test.make ~name:"add associative" ~count:500
      QCheck.(triple small_q small_q small_q)
      (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)));
    QCheck.Test.make ~name:"mul commutative" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.equal (Q.mul a b) (Q.mul b a));
    QCheck.Test.make ~name:"mul distributes over add" ~count:500
      QCheck.(triple small_q small_q small_q)
      (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    QCheck.Test.make ~name:"additive inverse" ~count:500 small_q (fun a ->
        Q.is_zero (Q.add a (Q.neg a)));
    QCheck.Test.make ~name:"multiplicative inverse" ~count:500 small_q (fun a ->
        Q.is_zero a || Q.equal Q.one (Q.mul a (Q.inv a)));
    QCheck.Test.make ~name:"sub then add roundtrips" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.equal a (Q.add (Q.sub a b) b));
    QCheck.Test.make ~name:"normalized invariant" ~count:500 small_q (fun a ->
        let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
        Q.den a > 0 && (Q.is_zero a || gcd (abs (Q.num a)) (Q.den a) = 1));
    QCheck.Test.make ~name:"compare agrees with float compare" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) ->
        let fc = compare (Q.to_float a) (Q.to_float b) in
        fc = 0 || compare (Q.compare a b) 0 = compare fc 0);
    QCheck.Test.make ~name:"compare antisymmetric" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    QCheck.Test.make ~name:"triangle: |a+b| <= |a|+|b|" ~count:500
      QCheck.(pair small_q small_q)
      (fun (a, b) ->
        Q.( <= ) (Q.abs (Q.add a b)) (Q.add (Q.abs a) (Q.abs b)));
  ]

let () =
  Alcotest.run "rational"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "overflow" `Quick test_overflow;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
