(* Tests for the xoshiro256** / SplitMix64 PRNG substrate. *)

module Rng = Prng.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "nearby seeds diverge" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  (* Chi-squared with 9 dof; 99.9% critical value is 27.9. *)
  let expected = float_of_int n /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.2f < 27.9" chi2) true (chi2 < 27.9)

let test_int_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 4 (Rng.int_in_range rng ~lo:4 ~hi:4);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_in_range: lo > hi")
    (fun () -> ignore (Rng.int_in_range rng ~lo:2 ~hi:1))

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_float_mean () =
  let rng = Rng.create 13 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (abs_float (mean -. 0.5) < 0.01)

let test_bool_with_prob () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool_with_prob rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02);
  Alcotest.(check bool) "p=0 never" false (Rng.bool_with_prob rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bool_with_prob rng 1.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Rng.bool_with_prob: p out of [0,1]") (fun () ->
      ignore (Rng.bool_with_prob rng 1.5))

let test_shuffle_permutation () =
  let rng = Rng.create 23 in
  let original = Array.init 50 Fun.id in
  let shuffled = Rng.shuffle rng original in
  Alcotest.(check (array int)) "original untouched" (Array.init 50 Fun.id) original;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" original sorted

let test_shuffle_uniformity () =
  (* Position of element 0 after shuffling [0;1;2] should be uniform. *)
  let rng = Rng.create 29 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let arr = Rng.shuffle rng [| 0; 1; 2 |] in
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) arr;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  Array.iter
    (fun c ->
      let rate = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "near 1/3" true (abs_float (rate -. (1.0 /. 3.0)) < 0.02))
    counts

let test_choose () =
  let rng = Rng.create 31 in
  for _ = 1 to 100 do
    let v = Rng.choose rng [| 10; 20; 30 |] in
    Alcotest.(check bool) "member" true (List.mem v [ 10; 20; 30 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create 37 in
  let arr = Array.init 20 Fun.id in
  for _ = 1 to 200 do
    let sample = Rng.sample_without_replacement rng ~count:5 arr in
    Alcotest.(check int) "size" 5 (Array.length sample);
    let sorted = List.sort_uniq compare (Array.to_list sample) in
    Alcotest.(check int) "distinct" 5 (List.length sorted)
  done;
  Alcotest.(check int) "count = length ok" 20
    (Array.length (Rng.sample_without_replacement rng ~count:20 arr));
  Alcotest.check_raises "count too large"
    (Invalid_argument "Rng.sample_without_replacement: bad count") (fun () ->
      ignore (Rng.sample_without_replacement rng ~count:21 arr))

let test_weighted_index () =
  let rng = Rng.create 41 in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let i = Rng.weighted_index rng [| 1.0; 2.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let rate i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "w0 ~ 1/6" true (abs_float (rate 0 -. (1.0 /. 6.0)) < 0.02);
  Alcotest.(check bool) "w1 ~ 2/6" true (abs_float (rate 1 -. (2.0 /. 6.0)) < 0.02);
  Alcotest.(check bool) "w2 ~ 3/6" true (abs_float (rate 2 -. 0.5) < 0.02);
  Alcotest.(check int) "zero weights skipped" 1
    (Rng.weighted_index rng [| 0.0; 5.0; 0.0 |]);
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.weighted_index: all weights zero") (fun () ->
      ignore (Rng.weighted_index rng [| 0.0; 0.0 |]))

let test_split_independence () =
  let parent = Rng.create 53 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool_with_prob" `Quick test_bool_with_prob;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle uniformity" `Quick test_shuffle_uniformity;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
          Alcotest.test_case "split independence" `Quick test_split_independence;
        ] );
    ]
